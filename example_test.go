package latencyhide_test

import (
	"fmt"

	"latencyhide"
)

// Simulating a unit-delay guest ring on a heterogeneous NOW with algorithm
// OVERLAP, verified against the sequential reference executor.
func Example_simulateRing() {
	host := latencyhide.LineDelays([]int{1, 1, 64, 1, 1, 1, 64, 1, 1})
	out, err := latencyhide.SimulateLine(hostDelays(host), latencyhide.Options{
		Variant: latencyhide.TwoLevel,
		Beta:    2,
		SqrtD:   8, // replication margins sized to hide the 64-delay links
		Steps:   16,
		Seed:    1,
		Check:   true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("verified=%v load=%d copies=%d\n", out.Sim.Checked, out.Load, out.MaxCopies)
	// Output:
	// verified=true load=32 copies=2
}

func hostDelays(g *latencyhide.Network) []int {
	out := make([]int, g.NumLinks())
	for i, e := range g.Edges() {
		out[i] = e.Delay
	}
	return out
}

// The Theorem 4 schedule: sqrt(d) guest steps per batch of at most 5d host
// steps on a uniform-delay host, value-exact.
func ExampleSimulateUniform() {
	r, err := latencyhide.SimulateUniform(8, 64, 2, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("s=%d stepsPerBatch=%d (<= 5d=%d) verified=%v\n",
		r.S, r.StepsPerBatch, 5*r.D, r.Checked)
	// Output:
	// s=8 stepsPerBatch=266 (<= 5d=320) verified=true
}

// Certifying the Theorem 9 lower bound: any single-copy placement on H1
// pays slowdown at least sqrt(n).
func ExampleH1() {
	h1 := latencyhide.H1(256)
	fmt.Printf("d_ave<2: %v, d_max=%d\n", h1.AvgDelay() < 2, h1.MaxDelay())
	// Output:
	// d_ave<2: true, d_max=16
}

// Running a real kernel (neighborhood averaging) through the simulated NOW
// via a custom guest op.
func ExampleGuestSpec_customOp() {
	op := latencyhide.GuestOp(func(_ uint64, _ int, _ int, self uint64, ns []uint64) uint64 {
		v := self
		for _, x := range ns {
			v += x
		}
		return v / uint64(len(ns)+1)
	})
	a, _ := latencyhide.SingleCopyBlocks(4, 16)
	res, err := latencyhide.RunSimulation(latencyhide.SimConfig{
		Delays: []int{2, 2, 2},
		Guest: latencyhide.GuestSpec{
			Graph: latencyhide.NewGuestLine(16),
			Steps: 8,
			Op:    op,
			Init:  func(node int, _ int64) uint64 { return uint64(node * 100) },
		},
		Assign: a,
		Check:  true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("verified=%v pebbles=%d\n", res.Checked, res.PebblesComputed)
	// Output:
	// verified=true pebbles=128
}

// A butterfly guest (the FFT pattern) on a host line, arranged by rank.
func ExampleSimulateGuest() {
	g := latencyhide.NewGuestButterfly(3)
	l := latencyhide.LayoutIdentity(g.NumNodes())
	delays := make([]int, 15)
	for i := range delays {
		delays[i] = 1 + i%4
	}
	r, err := latencyhide.SimulateGuest(g, l, delays, latencyhide.GuestLayoutOptions{
		Steps: 4,
		Check: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s on 16 workstations: verified=%v\n", r.Guest, r.Sim.Checked)
	// Output:
	// guest-butterfly(3) on 16 workstations: verified=true
}
