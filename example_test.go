package latencyhide_test

import (
	"fmt"
	"os"

	"latencyhide"
)

// Simulating a unit-delay guest ring on a heterogeneous NOW with algorithm
// OVERLAP, verified against the sequential reference executor.
func Example_simulateRing() {
	host := latencyhide.LineDelays([]int{1, 1, 64, 1, 1, 1, 64, 1, 1})
	out, err := latencyhide.SimulateLine(hostDelays(host), latencyhide.Options{
		Variant: latencyhide.TwoLevel,
		Beta:    2,
		SqrtD:   8, // replication margins sized to hide the 64-delay links
		Steps:   16,
		Seed:    1,
		Check:   true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("verified=%v load=%d copies=%d\n", out.Sim.Checked, out.Load, out.MaxCopies)
	// Output:
	// verified=true load=32 copies=2
}

func hostDelays(g *latencyhide.Network) []int {
	out := make([]int, g.NumLinks())
	for i, e := range g.Edges() {
		out[i] = e.Delay
	}
	return out
}

// The Theorem 4 schedule: sqrt(d) guest steps per batch of at most 5d host
// steps on a uniform-delay host, value-exact.
func ExampleSimulateUniform() {
	r, err := latencyhide.SimulateUniform(8, 64, 2, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("s=%d stepsPerBatch=%d (<= 5d=%d) verified=%v\n",
		r.S, r.StepsPerBatch, 5*r.D, r.Checked)
	// Output:
	// s=8 stepsPerBatch=266 (<= 5d=320) verified=true
}

// Certifying the Theorem 9 lower bound: any single-copy placement on H1
// pays slowdown at least sqrt(n).
func ExampleH1() {
	h1 := latencyhide.H1(256)
	fmt.Printf("d_ave<2: %v, d_max=%d\n", h1.AvgDelay() < 2, h1.MaxDelay())
	// Output:
	// d_ave<2: true, d_max=16
}

// Running a real kernel (neighborhood averaging) through the simulated NOW
// via a custom guest op.
func ExampleGuestSpec_customOp() {
	op := latencyhide.GuestOp(func(_ uint64, _ int, _ int, self uint64, ns []uint64) uint64 {
		v := self
		for _, x := range ns {
			v += x
		}
		return v / uint64(len(ns)+1)
	})
	a, _ := latencyhide.SingleCopyBlocks(4, 16)
	res, err := latencyhide.RunSimulation(latencyhide.SimConfig{
		Delays: []int{2, 2, 2},
		Guest: latencyhide.GuestSpec{
			Graph: latencyhide.NewGuestLine(16),
			Steps: 8,
			Op:    op,
			Init:  func(node int, _ int64) uint64 { return uint64(node * 100) },
		},
		Assign: a,
		Check:  true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("verified=%v pebbles=%d\n", res.Checked, res.PebblesComputed)
	// Output:
	// verified=true pebbles=128
}

// A butterfly guest (the FFT pattern) on a host line, arranged by rank.
func ExampleSimulateGuest() {
	g := latencyhide.NewGuestButterfly(3)
	l := latencyhide.LayoutIdentity(g.NumNodes())
	delays := make([]int, 15)
	for i := range delays {
		delays[i] = 1 + i%4
	}
	r, err := latencyhide.SimulateGuest(g, l, delays, latencyhide.GuestLayoutOptions{
		Steps: 4,
		Check: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s on 16 workstations: verified=%v\n", r.Guest, r.Sim.Checked)
	// Output:
	// guest-butterfly(3) on 16 workstations: verified=true
}

// Fault injection: the same OVERLAP run under a deterministic fault plan —
// probabilistic outage windows on every link plus one crash-stop
// workstation — still verifies against the reference executor, because the
// surviving replicas cover every database.
func Example_faultInjection() {
	plan, err := latencyhide.ParseFaultPlan("7:outage=0.1x8;crash=3@40")
	if err != nil {
		fmt.Println(err)
		return
	}
	out, err := latencyhide.SimulateLine([]int{1, 1, 32, 1, 1, 1, 32, 1, 1}, latencyhide.Options{
		Variant: latencyhide.TwoLevel,
		Beta:    2,
		SqrtD:   8,
		Steps:   16,
		Seed:    1,
		Check:   true,
		Faults:  plan,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("faults=%q verified=%v live=%d/%d\n", plan.String(), out.Sim.Checked, out.LiveProcs, out.HostN)
	// Output:
	// faults="7:outage=0.1x8;crash=3@40" verified=true live=10/10
}

// Model-based verification of one scenario: the spec round-trips through
// ParseScenario, runs through both engines and the invariant oracle, and
// reports which metamorphic relations applied.
func ExampleCheckScenario() {
	sc, err := latencyhide.ParseScenario("g=mesh:3:3;n=5;d=uniform:1:4;bw=2;rep=2;steps=5;w=2;seed=8")
	if err != nil {
		fmt.Println(err)
		return
	}
	rep, err := latencyhide.CheckScenario(sc)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("relations=%v violations=%d\n", rep.Relations, len(rep.Violations))
	// Output:
	// relations=[engine-equivalence seed-invariance replication-bound] violations=0
}

// A miniature verification soak: three generated scenarios, every check
// clean. `latencysim verify -seed 1 -n 200` runs the same machinery.
func ExampleVerifySoak() {
	res, err := latencyhide.VerifySoak(1, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	res.Summary(os.Stdout)
	// Output:
	// verify: seed=1 scenarios=3 events=1233
	//   adaptive-replication-bound 1 checked
	//   engine-equivalence   3 checked
	//   outage-monotone      1 checked
	//   replication-bound    1 checked
	//   seed-invariance      3 checked
	// verify: PASS (0 violations)
}
