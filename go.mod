module latencyhide

go 1.22
