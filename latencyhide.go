// Package latencyhide is a Go implementation of Andrews, Leighton, Metaxas
// and Zhang, "Improved Methods for Hiding Latency in High Bandwidth
// Networks" (SPAA 1996): automatic latency hiding for the database model of
// computation on networks of workstations (NOWs) with arbitrary link delays.
//
// The package is a facade over the subsystems in internal/: host topologies
// (internal/network), the guest database model (internal/guest), the
// interval tree and database assignments (internal/tree, internal/assign),
// the latency/bandwidth-accurate simulation engines (internal/sim), the
// dilation-3 line embedding (internal/embedding), algorithm OVERLAP end to
// end (internal/overlap), the Theorem 4 uniform-delay schedule
// (internal/uniform), 2-D array emulation (internal/mesharray), 1-D layouts
// of arbitrary guests (internal/layout), the dataflow model of [2]
// (internal/dataflow), the lower-bound machinery (internal/lower),
// prior-approach baselines (internal/baseline) and the experiment harness
// (internal/expt).
//
// Quick start — simulate a unit-delay ring on a random NOW:
//
//	host := latencyhide.RandomNOW(256, 4, latencyhide.ExpDelay{Mean: 3}, 1)
//	out, err := latencyhide.Simulate(host, latencyhide.Options{
//		Variant: latencyhide.TwoLevel,
//		Steps:   64,
//		Check:   true,
//	})
//	fmt.Printf("guest %d cols, slowdown %.1f\n", out.GuestCols, out.Sim.Slowdown)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package latencyhide

import (
	"io"

	"latencyhide/internal/assign"
	"latencyhide/internal/baseline"
	"latencyhide/internal/dataflow"
	"latencyhide/internal/embedding"
	"latencyhide/internal/expt"
	"latencyhide/internal/fault"
	"latencyhide/internal/guest"
	"latencyhide/internal/layout"
	"latencyhide/internal/mesharray"
	"latencyhide/internal/network"
	"latencyhide/internal/overlap"
	"latencyhide/internal/sim"
	"latencyhide/internal/uniform"
	"latencyhide/internal/verify"
)

// Network is a host network of workstations with arbitrary link delays.
type Network = network.Network

// DelaySource generates link delays for topology constructors.
type DelaySource = network.DelaySource

// Delay distributions.
type (
	// ConstDelay gives every link the same delay.
	ConstDelay = network.ConstDelay
	// UniformDelay draws delays uniformly from a range.
	UniformDelay = network.UniformDelay
	// BimodalDelay mixes fast local links with rare slow long-haul links.
	BimodalDelay = network.BimodalDelay
	// ParetoDelay draws heavy-tailed delays.
	ParetoDelay = network.ParetoDelay
	// ExpDelay draws exponentially distributed delays.
	ExpDelay = network.ExpDelay
)

// Topology constructors.
var (
	// NewNetwork returns an empty host with n workstations.
	NewNetwork = network.New
	// Line builds a host linear array.
	Line = network.Line
	// LineDelays builds a host linear array from explicit link delays.
	LineDelays = network.LineDelays
	// Ring builds a host ring.
	Ring = network.Ring
	// Mesh2D builds a host grid.
	Mesh2D = network.Mesh2D
	// Torus2D builds a host torus.
	Torus2D = network.Torus2D
	// Hypercube builds a host hypercube.
	Hypercube = network.Hypercube
	// CompleteBinaryTree builds a host tree.
	CompleteBinaryTree = network.CompleteBinaryTree
	// RandomNOW builds a connected random bounded-degree NOW.
	RandomNOW = network.RandomNOW
	// CCC builds a cube-connected-cycles host (degree exactly 3).
	CCC = network.CCC
	// H1 builds the Theorem 9 lower-bound host.
	H1 = network.H1
	// H2 builds the Theorem 10 level-box lower-bound host.
	H2 = network.H2
	// CliqueChain builds the Section 4 unbounded-degree counterexample.
	CliqueChain = network.CliqueChain
)

// Options configures an OVERLAP simulation; see internal/overlap.
type Options = overlap.Options

// Variant selects the OVERLAP flavour.
type Variant = overlap.Variant

// OVERLAP variants (Theorems 2, 3 and 5).
const (
	LoadOne       = overlap.LoadOne
	WorkEfficient = overlap.WorkEfficient
	TwoLevel      = overlap.TwoLevel
)

// Outcome bundles an OVERLAP run's measurements.
type Outcome = overlap.Outcome

// Simulate runs OVERLAP on an arbitrary connected host (Theorem 6): it
// embeds a linear array with dilation 3 and simulates a unit-delay guest
// ring on it.
func Simulate(host *Network, opt Options) (*Outcome, error) {
	return overlap.Simulate(host, opt)
}

// SimulateLine runs OVERLAP on a host that is already a linear array.
func SimulateLine(delays []int, opt Options) (*Outcome, error) {
	return overlap.SimulateLine(delays, opt)
}

// EmbedLine computes the dilation-3 one-to-one line embedding of a connected
// host (Fact 3), rooted at node 0.
func EmbedLine(host *Network) (*embedding.Line, error) {
	return embedding.Embed(host, 0)
}

// UniformResult reports a Theorem 4 phase-scheduled run.
type UniformResult = uniform.Result

// SimulateUniform runs the Theorem 4 schedule: a guest of hostN*sqrt(d)
// columns on a hostN-processor array whose links all have delay d, for
// batches*sqrt(d) guest steps, verifying every database replica.
func SimulateUniform(hostN, d, batches int, seed int64) (*UniformResult, error) {
	return uniform.Run(hostN, d, batches, 0, seed)
}

// MeshOptions configures 2-D array emulation; see internal/mesharray.
type MeshOptions = mesharray.Options

// MeshResult reports a 2-D array emulation run.
type MeshResult = mesharray.Result

// SimulateMeshOnNOW emulates a 2-D guest array on an arbitrary connected
// host (Theorem 8).
func SimulateMeshOnNOW(host *Network, opt MeshOptions) (*MeshResult, error) {
	return mesharray.OnNOW(host, opt)
}

// SimulateMeshOnUniformLine emulates a 2-D guest array on a uniform-delay
// host line (Theorem 7).
func SimulateMeshOnUniformLine(hostN, d, cols int, opt MeshOptions) (*MeshResult, error) {
	return mesharray.OnUniformLine(hostN, d, cols, opt)
}

// BaselineResult reports a prior-approach baseline run.
type BaselineResult = baseline.Result

// SingleCopyBaseline simulates the natural no-redundancy approach on a host
// line (the Theorem 9 regime).
func SingleCopyBaseline(delays []int, columns, steps int, seed int64) (*BaselineResult, error) {
	return baseline.SingleCopy(delays, columns, steps, seed, false)
}

// SlowClockSlowdown is the analytic slowdown of clocking the whole host at
// its maximum latency.
func SlowClockSlowdown(delays []int) float64 {
	return baseline.SlowClockSlowdown(delays)
}

// Assignment maps guest databases to the host workstations replicating
// them.
type Assignment = assign.Assignment

// Assignment constructors for raw-engine use.
var (
	// AssignmentFromOwned builds an assignment from per-workstation
	// column lists.
	AssignmentFromOwned = assign.FromOwned
	// SingleCopyBlocks is the natural no-redundancy assignment.
	SingleCopyBlocks = assign.SingleCopyBlocks
	// UniformBlocks is the Theorem 4 overlapping block assignment.
	UniformBlocks = assign.UniformBlocks
)

// SimConfig exposes the raw engine for custom guests and assignments.
type SimConfig = sim.Config

// SimResult is the raw engine measurement.
type SimResult = sim.Result

// RunSimulation executes a raw engine configuration.
func RunSimulation(cfg SimConfig) (*SimResult, error) {
	return sim.Run(cfg)
}

// GuestSpec describes a guest computation in the database model.
type GuestSpec = guest.Spec

// GuestOp is a pluggable per-pebble computation (see guest.Op).
type GuestOp = guest.Op

// GuestReference runs the sequential unit-delay reference executor and
// returns every pebble value — ground truth for host simulations and the
// way applications read out results after a verified run.
var GuestReference = guest.Run

// Database is one guest processor's local memory.
type Database = guest.Database

// Guest topology constructors.
var (
	// NewGuestLine builds a unit-delay guest linear array.
	NewGuestLine = guest.NewLinearArray
	// NewGuestRing builds a unit-delay guest ring.
	NewGuestRing = guest.NewRing
	// NewGuestMesh builds a unit-delay guest 2-D array.
	NewGuestMesh = guest.NewMesh
	// NewMixDB is the fast digest-state database factory.
	NewMixDB = guest.NewMixDB
	// KVFactory returns a key-value store database factory.
	KVFactory = guest.KVFactory
)

// Guest topology constructors for the Section 7 targets.
var (
	// NewGuestBinaryTree builds a complete binary tree guest.
	NewGuestBinaryTree = guest.NewBinaryTree
	// NewGuestHypercube builds a hypercube guest.
	NewGuestHypercube = guest.NewHypercube
	// NewGuestButterfly builds a butterfly guest (the FFT pattern).
	NewGuestButterfly = guest.NewButterfly
	// NewGuestArrayND builds a d-dimensional array guest.
	NewGuestArrayND = guest.NewArrayND
	// NewGuestTorus2D builds a torus guest.
	NewGuestTorus2D = guest.NewTorus2D
)

// GuestLayout is a one-to-one arrangement of guest nodes along a line; see
// internal/layout for constructors (BFS, Bisection, Gray, InOrder, ...).
type GuestLayout = layout.Layout

// GuestLayoutOptions configures a general-guest simulation.
type GuestLayoutOptions = layout.Options

// GuestLayoutResult reports a general-guest run.
type GuestLayoutResult = layout.Result

// Layout constructors.
var (
	// LayoutBFS is a Cuthill-McKee-style locality layout for any guest.
	LayoutBFS = layout.BFS
	// LayoutIdentity is the natural id-order layout.
	LayoutIdentity = layout.Identity
	// LayoutInOrder is the in-order layout for binary trees.
	LayoutInOrder = layout.InOrder
	// LayoutGray is the Gray-code layout for hypercubes.
	LayoutGray = layout.Gray
	// LayoutMeasure computes stretch/cutwidth quality metrics.
	LayoutMeasure = layout.Measure
	// LayoutAnneal improves any layout by simulated annealing on edge
	// stretch.
	LayoutAnneal = layout.Anneal
)

// SimulateGuest runs an arbitrary unit-delay guest (tree, butterfly,
// hypercube, d-dimensional array, ...) on a host line via a 1-D layout —
// the Section 7 direction.
func SimulateGuest(g guest.Graph, l *GuestLayout, delays []int, opt GuestLayoutOptions) (*GuestLayoutResult, error) {
	return layout.Simulate(g, l, delays, opt)
}

// SimulateGuestOnNOW embeds a line in the host first (Fact 3).
func SimulateGuestOnNOW(g guest.Graph, l *GuestLayout, host *Network, opt GuestLayoutOptions) (*GuestLayoutResult, error) {
	return layout.SimulateOnNOW(g, l, host, opt)
}

// DataflowResult reports a dataflow-model diamond-schedule run.
type DataflowResult = dataflow.Result

// SimulateDataflow runs the dataflow model of [2] (no local databases,
// computation migrates instead of replicating) on a uniform-delay host:
// the diamond schedule achieves ~3*sqrt(d) slowdown at replication exactly
// 1 — the contrast with the database model that Section 6 draws.
func SimulateDataflow(hostN, d, batches int, seed int64) (*DataflowResult, error) {
	return dataflow.Run(hostN, d, batches, 0, seed)
}

// OverlapSchedule is the executable s_t^(k) recurrence of Theorem 1; see
// internal/overlap.BuildSchedule.
type OverlapSchedule = overlap.Schedule

// NewNullDB is the dataflow-model database factory (constant digest,
// stateless).
var NewNullDB = guest.NewNullDB

// FaultPlan is a deterministic fault-injection plan: link jitter, outage
// windows, compute slowdowns and crash-stop workstations, all derived by
// pure hashing from the plan seed (see internal/fault).
type FaultPlan = fault.Plan

// ParseFaultPlan reads the compact fault spec format, e.g.
// "7:outage=0.1x8;crash=3@40". Pass the plan via Options.Faults.
var ParseFaultPlan = fault.Parse

// Scenario is a compact, seeded description of one randomized verification
// run: guest shape, host line, delay profile, bandwidth, replication and an
// optional fault plan (see internal/verify).
type Scenario = verify.Scenario

// Scenario constructors: ParseScenario reads the spec format
// ("g=ring:24;n=8;d=uniform:1:9;..."), GenerateScenario derives the i-th
// scenario of a seed's deterministic stream.
var (
	ParseScenario    = verify.Parse
	GenerateScenario = verify.Generate
)

// VerifyReport is the outcome of checking one scenario: the metamorphic
// relations exercised and every invariant violation found.
type VerifyReport = verify.Report

// VerifySoakResult aggregates a verification soak.
type VerifySoakResult = verify.SoakResult

// CheckScenario runs one scenario through the invariant oracle, both
// engines and every applicable metamorphic relation.
func CheckScenario(sc *Scenario) (*VerifyReport, error) {
	return verify.CheckScenario(sc)
}

// VerifySoak generates and checks n scenarios from a seeded stream — the
// library entry point behind `latencysim verify`.
func VerifySoak(seed uint64, n int) (*VerifySoakResult, error) {
	return verify.Soak(seed, n)
}

// ExperimentScale selects Quick or Full experiment sizes.
type ExperimentScale = expt.Scale

// Experiment scales.
const (
	Quick = expt.Quick
	Full  = expt.Full
)

// RunExperiments regenerates every paper table/figure experiment (see
// DESIGN.md E1-E12), writing results to w; markdown selects the output
// format.
func RunExperiments(w io.Writer, scale ExperimentScale, markdown bool) error {
	return expt.RunAll(w, scale, markdown)
}
