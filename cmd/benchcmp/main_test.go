package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeBaseline persists a minimal BENCH_n.json into dir.
func writeBaseline(t *testing.T, dir string, n string, benches []Benchmark) {
	t.Helper()
	b := Baseline{RecordedAt: "test", Benchmarks: benches}
	data, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+n+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiffLatest(t *testing.T) {
	seqOK := Benchmark{Name: "BenchmarkEngineSequential", NsPerOp: 1e8, Metrics: map[string]float64{}, PebblesPS: 5e6}
	seqSlow := seqOK
	seqSlow.PebblesPS = 4e6 // 20% throughput regression
	parOK := Benchmark{Name: "BenchmarkEngineParallel4", NsPerOp: 5e7, Metrics: map[string]float64{}, PebblesPS: 1e7}
	parSlow := parOK
	parSlow.PebblesPS = 8e6 // 20% regression, ungated by default

	cases := []struct {
		name     string
		prev     []Benchmark
		cur      []Benchmark
		only     string
		gateAll  bool
		report   bool
		wantExit int
	}{
		{"no regression", []Benchmark{seqOK, parOK}, []Benchmark{seqOK, parOK}, "", false, false, 0},
		{"seq regression gated", []Benchmark{seqOK}, []Benchmark{seqSlow}, "", false, false, 1},
		{"seq regression report-only", []Benchmark{seqOK}, []Benchmark{seqSlow}, "", false, true, 0},
		{"parallel regression ungated", []Benchmark{parOK}, []Benchmark{parSlow}, "", false, false, 0},
		{"parallel regression gate-all", []Benchmark{parOK}, []Benchmark{parSlow}, "", true, false, 1},
		{"only matches, clean", []Benchmark{seqOK, parOK}, []Benchmark{seqOK, parOK}, "EngineSequential", false, false, 0},
		{"only hides the regression", []Benchmark{seqOK, parOK}, []Benchmark{seqSlow, parOK}, "EngineParallel4", false, false, 0},
		{"only matches nothing", []Benchmark{seqOK}, []Benchmark{seqOK}, "EngineRenamed", false, false, 1},
		{"only matches nothing report-only", []Benchmark{seqOK}, []Benchmark{seqOK}, "EngineRenamed", false, true, 1},
		{"only gate-all regression", []Benchmark{parOK}, []Benchmark{parSlow}, "EngineParallel4", true, false, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeBaseline(t, dir, "3", tc.prev)
			writeBaseline(t, dir, "4", tc.cur)
			if got := diffLatest(dir, 0.15, tc.report, tc.only, tc.gateAll, 0); got != tc.wantExit {
				t.Errorf("diffLatest exit = %d, want %d", got, tc.wantExit)
			}
		})
	}
}

// The memory gate fails bytes/pebble growth beyond -mem-threshold on any
// compared benchmark (not just the sequential engine), leaves improvements
// and sub-threshold noise alone, and stays report-only at threshold 0.
func TestDiffLatestMemThreshold(t *testing.T) {
	mem := func(name string, bpp float64) Benchmark {
		return Benchmark{Name: name, NsPerOp: 1e8, PebblesPS: 5e6, BytesPerPebble: bpp}
	}
	seqOld := mem("BenchmarkEngineSequential", 50)
	parOld := mem("BenchmarkEngineParallel4", 60)

	cases := []struct {
		name         string
		prev, cur    []Benchmark
		memThreshold float64
		report       bool
		wantExit     int
	}{
		{"flat memory passes", []Benchmark{seqOld}, []Benchmark{seqOld}, 0.10, false, 0},
		{"improvement passes", []Benchmark{seqOld}, []Benchmark{mem("BenchmarkEngineSequential", 30)}, 0.10, false, 0},
		{"below threshold passes", []Benchmark{seqOld}, []Benchmark{mem("BenchmarkEngineSequential", 52)}, 0.10, false, 0},
		{"seq growth gated", []Benchmark{seqOld}, []Benchmark{mem("BenchmarkEngineSequential", 60)}, 0.10, false, 1},
		{"parallel growth gated too", []Benchmark{parOld}, []Benchmark{mem("BenchmarkEngineParallel4", 80)}, 0.10, false, 1},
		{"growth ungated at zero threshold", []Benchmark{seqOld}, []Benchmark{mem("BenchmarkEngineSequential", 500)}, 0, false, 0},
		{"growth report-only", []Benchmark{seqOld}, []Benchmark{mem("BenchmarkEngineSequential", 60)}, 0.10, true, 0},
		{"no memory figures, gate vacuous", []Benchmark{{Name: "BenchmarkEngineSequential", NsPerOp: 1e8, PebblesPS: 5e6}},
			[]Benchmark{{Name: "BenchmarkEngineSequential", NsPerOp: 1e8, PebblesPS: 5e6}}, 0.10, false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			writeBaseline(t, dir, "3", tc.prev)
			writeBaseline(t, dir, "4", tc.cur)
			if got := diffLatest(dir, 0.15, tc.report, "", false, tc.memThreshold); got != tc.wantExit {
				t.Errorf("diffLatest exit = %d, want %d", got, tc.wantExit)
			}
		})
	}
}

func TestDiffLatestTooFewBaselines(t *testing.T) {
	dir := t.TempDir()
	if got := diffLatest(dir, 0.15, false, "", false, 0); got != 0 {
		t.Errorf("empty dir exit = %d, want 0", got)
	}
	writeBaseline(t, dir, "1", []Benchmark{{Name: "BenchmarkEngineSequential", NsPerOp: 1e8, PebblesPS: 5e6}})
	if got := diffLatest(dir, 0.15, false, "", false, 0); got != 0 {
		t.Errorf("single baseline exit = %d, want 0", got)
	}
}

func TestParseDerivesBytesPerPebble(t *testing.T) {
	out := `
goos: linux
BenchmarkEngineSequential-8   3   200000000 ns/op   520960 pebbles/op   150000000 rss-bytes   93696000 B/op   1200 allocs/op
BenchmarkE10Killing-8         5   300000 ns/op
PASS
`
	benches, raw := parse(out)
	if len(benches) != 2 || len(raw) != 2 {
		t.Fatalf("parsed %d benches, %d raw", len(benches), len(raw))
	}
	seq := benches[0]
	if seq.Name != "BenchmarkEngineSequential" {
		t.Fatalf("name %q (CPU suffix not trimmed?)", seq.Name)
	}
	if want := 520960 / 0.2; seq.PebblesPS != want {
		t.Errorf("pebbles/sec = %f, want %f", seq.PebblesPS, want)
	}
	if want := 93696000.0 / 520960; seq.BytesPerPebble != want {
		t.Errorf("bytes/pebble = %f, want %f", seq.BytesPerPebble, want)
	}
	if seq.PeakRSSBytes != 150000000 {
		t.Errorf("peak RSS = %f, want 150000000", seq.PeakRSSBytes)
	}
	if benches[1].PebblesPS != 0 {
		t.Errorf("non-engine bench grew a throughput figure: %f", benches[1].PebblesPS)
	}
}
