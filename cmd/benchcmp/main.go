// Command benchcmp is the benchmark regression harness: it parses `go test
// -bench` output, maintains a JSON baseline (BENCH_1.json at the repo root),
// and flags pebbles/sec regressions beyond a threshold.
//
// The baseline keeps the raw benchmark lines alongside the parsed figures,
// so `jq -r '.raw[]' BENCH_1.json > old.txt` yields a file benchstat can
// consume directly against a fresh run.
//
// Usage:
//
//	go test -run '^$' -bench Engine -benchtime 3x . > bench.out
//	benchcmp -write BENCH_1.json bench.out            # record a baseline
//	benchcmp -baseline BENCH_1.json bench.out         # compare, exit 1 on regression
//	benchcmp -baseline BENCH_1.json -report-only bench.out  # compare, always exit 0
//	benchcmp -diff-latest .                           # newest two BENCH_*.json vs each other
//
// -diff-latest compares the two highest-numbered BENCH_*.json files in a
// directory (the PR-over-PR history) and fails only on sequential-engine
// regressions beyond 15%: parallel figures vary with the runner's core
// count, but the sequential engine must never get slower.
//
// -mem-threshold (with -diff-latest) additionally gates bytes/pebble: unlike
// wall time, allocation per pebble is nearly machine-independent, so the
// memory gate applies to every compared benchmark, not just the sequential
// engine. Zero (the default) leaves memory report-only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result. Metrics holds every per-op
// figure go test reported (ns/op, pebbles/op, custom ReportMetric units).
type Benchmark struct {
	Name      string             `json:"name"`
	Iters     int64              `json:"iters"`
	NsPerOp   float64            `json:"ns_per_op"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	PebblesPS float64            `json:"pebbles_per_sec,omitempty"`
	// BytesPerPebble is B/op divided by pebbles/op — the engine's allocation
	// footprint per unit of useful work (needs -benchmem or b.ReportAllocs).
	BytesPerPebble float64 `json:"bytes_per_pebble,omitempty"`
	// PeakRSSBytes is the "rss-bytes" custom metric (ReportMetric): peak
	// resident set during the benchmark, 0 where the bench doesn't report it.
	PeakRSSBytes float64 `json:"peak_rss_bytes,omitempty"`
}

// Baseline is the persisted BENCH_1.json schema.
type Baseline struct {
	RecordedAt string      `json:"recorded_at"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Notes      []string    `json:"notes,omitempty"`
	Raw        []string    `json:"raw"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// noteFlags collects repeated -note values.
type noteFlags []string

func (n *noteFlags) String() string     { return strings.Join(*n, "; ") }
func (n *noteFlags) Set(s string) error { *n = append(*n, s); return nil }

// benchLine matches e.g.
//
//	BenchmarkEngineSequential-8   3   289148195 ns/op   520960 pebbles/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// trimCPU drops the -N GOMAXPROCS suffix so baselines transfer across
// machines with different core counts.
func trimCPU(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func parse(data string) ([]Benchmark, []string) {
	var out []Benchmark
	var raw []string
	for _, line := range strings.Split(data, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		b := Benchmark{Name: trimCPU(m[1]), Iters: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			b.Metrics[unit] = v
			if unit == "ns/op" {
				b.NsPerOp = v
			}
		}
		if p, ok := b.Metrics["pebbles/op"]; ok && b.NsPerOp > 0 {
			b.PebblesPS = p / (b.NsPerOp * 1e-9)
			if alloc, ok := b.Metrics["B/op"]; ok && p > 0 {
				b.BytesPerPebble = alloc / p
			}
		}
		if rss, ok := b.Metrics["rss-bytes"]; ok {
			b.PeakRSSBytes = rss
		}
		out = append(out, b)
		raw = append(raw, strings.TrimSpace(line))
	}
	return out, raw
}

func readInput(path string) (string, error) {
	if path == "-" {
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := os.Stdin.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				return sb.String(), nil
			}
		}
	}
	data, err := os.ReadFile(path)
	return string(data), err
}

// seqEngine reports whether a benchmark exercises the sequential engine —
// the regression gate for -diff-latest. Parallel figures vary with the
// runner's core count; the sequential engine must never get slower.
func seqEngine(name string) bool {
	return strings.Contains(name, "EngineSequential") || strings.HasSuffix(name, "workers=0")
}

// loadBaseline reads and parses one persisted baseline JSON.
func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &b, nil
}

// diffLatest compares the two highest-numbered BENCH_*.json files in dir.
// Only sequential-engine regressions beyond the threshold fail (gateAll
// widens the gate to every compared benchmark); everything else is reported.
// A non-empty only restricts the comparison to benchmarks whose name
// contains it — and failing when it matches nothing, so a renamed benchmark
// cannot silently turn a CI gate into a no-op. memThreshold > 0 gates
// bytes/pebble growth on every compared benchmark (allocation per pebble is
// nearly machine-independent, unlike wall time); 0 leaves memory
// report-only. Returns the process exit code.
func diffLatest(dir string, threshold float64, reportOnly bool, only string, gateAll bool, memThreshold float64) int {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		return 1
	}
	numRE := regexp.MustCompile(`BENCH_(\d+)\.json$`)
	type numbered struct {
		n    int
		path string
	}
	var files []numbered
	for _, p := range paths {
		if m := numRE.FindStringSubmatch(p); m != nil {
			n, _ := strconv.Atoi(m[1])
			files = append(files, numbered{n, p})
		}
	}
	if len(files) < 2 {
		fmt.Printf("benchcmp: found %d baseline(s) in %s, nothing to diff\n", len(files), dir)
		return 0
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n < files[j].n })
	prev, cur := files[len(files)-2], files[len(files)-1]
	prevBase, err := loadBaseline(prev.path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		return 1
	}
	curBase, err := loadBaseline(cur.path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		return 1
	}
	gate := "sequential engine"
	if gateAll {
		gate = "all compared"
	}
	memGate := "report-only"
	if memThreshold > 0 {
		memGate = fmt.Sprintf("%.0f%%", 100*memThreshold)
	}
	fmt.Printf("benchcmp: diffing %s -> %s (gate: %s, %.0f%%; memory: %s)\n",
		prev.path, cur.path, gate, 100*threshold, memGate)
	byName := make(map[string]Benchmark, len(prevBase.Benchmarks))
	for _, b := range prevBase.Benchmarks {
		byName[b.Name] = b
	}
	regressions, compared := 0, 0
	for _, b := range curBase.Benchmarks {
		if only != "" && !strings.Contains(b.Name, only) {
			continue
		}
		compared++
		old, ok := byName[b.Name]
		if !ok {
			fmt.Printf("%-55s NEW (no entry in %s)\n", b.Name, prev.path)
			continue
		}
		var delta float64
		var unit string
		switch {
		case b.PebblesPS > 0 && old.PebblesPS > 0:
			delta = -(b.PebblesPS/old.PebblesPS - 1) // higher throughput is better
			unit = fmt.Sprintf("%12.0f -> %12.0f pebbles/sec", old.PebblesPS, b.PebblesPS)
		case b.NsPerOp > 0 && old.NsPerOp > 0:
			delta = b.NsPerOp/old.NsPerOp - 1 // higher wall time is worse
			unit = fmt.Sprintf("%12.0f -> %12.0f ns/op      ", old.NsPerOp, b.NsPerOp)
		default:
			fmt.Printf("%-55s no comparable metric\n", b.Name)
			continue
		}
		status := "ok"
		if delta > threshold {
			if gateAll || seqEngine(b.Name) {
				status = "REGRESSION"
				regressions++
			} else {
				status = "slower (ungated)"
			}
		}
		fmt.Printf("%-55s %s  %+6.1f%%  %s\n", b.Name, unit, -100*delta, status)
		if b.BytesPerPebble > 0 && old.BytesPerPebble > 0 {
			memDelta := b.BytesPerPebble/old.BytesPerPebble - 1
			memStatus := "(memory, ungated)"
			if memThreshold > 0 {
				memStatus = "memory ok"
				if memDelta > memThreshold {
					memStatus = "MEMORY REGRESSION"
					regressions++
				}
			}
			fmt.Printf("%-55s %12.1f -> %12.1f bytes/pebble %+6.1f%%  %s\n",
				"", old.BytesPerPebble, b.BytesPerPebble, 100*memDelta, memStatus)
		}
		if b.PeakRSSBytes > 0 && old.PeakRSSBytes > 0 {
			// Peak RSS depends on GC timing and the host; always report-only.
			fmt.Printf("%-55s %12.1f -> %12.1f MB peak RSS  %+6.1f%%  (rss, ungated)\n",
				"", old.PeakRSSBytes/(1<<20), b.PeakRSSBytes/(1<<20),
				100*(b.PeakRSSBytes/old.PeakRSSBytes-1))
		}
	}
	if only != "" && compared == 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: -only %q matched no benchmark in %s — the gate would be vacuous\n",
			only, cur.path)
		return 1
	}
	if regressions > 0 {
		fmt.Printf("benchcmp: %d gated regression(s) beyond %.0f%%\n", regressions, 100*threshold)
		if !reportOnly {
			return 1
		}
		fmt.Println("benchcmp: report-only mode, not failing")
	}
	return 0
}

func main() {
	write := flag.String("write", "", "record a baseline JSON at this path and exit")
	baseline := flag.String("baseline", "", "compare against this baseline JSON")
	threshold := flag.Float64("threshold", 0.10, "pebbles/sec regression fraction that fails the comparison")
	reportOnly := flag.Bool("report-only", false, "report regressions but always exit 0")
	latest := flag.String("diff-latest", "", "compare the newest two BENCH_*.json files in this directory (gate: sequential engine, 15% unless -threshold is set)")
	only := flag.String("only", "", "with -diff-latest, restrict the comparison to benchmarks whose name contains this substring (fails if nothing matches)")
	gateAll := flag.Bool("gate-all", false, "with -diff-latest, gate every compared benchmark on the threshold, not just the sequential engine")
	memThreshold := flag.Float64("mem-threshold", 0, "with -diff-latest, bytes/pebble growth fraction that fails the comparison for every compared benchmark (0 = report-only)")
	var notes noteFlags
	flag.Var(&notes, "note", "free-form note stored in the baseline (repeatable, with -write)")
	flag.Parse()

	if *latest != "" {
		th := 0.15
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "threshold" {
				th = *threshold
			}
		})
		os.Exit(diffLatest(*latest, th, *reportOnly, *only, *gateAll, *memThreshold))
	}

	if flag.NArg() != 1 || (*write == "") == (*baseline == "") {
		fmt.Fprintln(os.Stderr, "usage: benchcmp (-write out.json | -baseline base.json [-report-only] | -diff-latest dir) bench.out|-")
		os.Exit(2)
	}
	data, err := readInput(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	benches, raw := parse(data)
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmark lines found in input")
		os.Exit(1)
	}

	if *write != "" {
		b := Baseline{
			RecordedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			Notes:      notes,
			Raw:        raw,
			Benchmarks: benches,
		}
		out, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*write, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(1)
		}
		fmt.Printf("benchcmp: recorded %d benchmarks to %s\n", len(benches), *write)
		return
	}

	var base Baseline
	bdata, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	if err := json.Unmarshal(bdata, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %s: %v\n", *baseline, err)
		os.Exit(1)
	}
	byName := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}

	regressions := 0
	for _, b := range benches {
		old, ok := byName[b.Name]
		if !ok {
			fmt.Printf("%-55s NEW (no baseline entry)\n", b.Name)
			continue
		}
		switch {
		case b.PebblesPS > 0 && old.PebblesPS > 0:
			delta := b.PebblesPS/old.PebblesPS - 1
			status := "ok"
			if delta < -*threshold {
				status = "REGRESSION"
				regressions++
			}
			fmt.Printf("%-55s %12.0f -> %12.0f pebbles/sec  %+6.1f%%  %s\n",
				b.Name, old.PebblesPS, b.PebblesPS, 100*delta, status)
		case b.NsPerOp > 0 && old.NsPerOp > 0:
			// No throughput metric: fall back to wall time (higher is worse).
			delta := b.NsPerOp/old.NsPerOp - 1
			status := "ok"
			if delta > *threshold {
				status = "REGRESSION"
				regressions++
			}
			fmt.Printf("%-55s %12.0f -> %12.0f ns/op        %+6.1f%%  %s\n",
				b.Name, old.NsPerOp, b.NsPerOp, 100*delta, status)
		default:
			fmt.Printf("%-55s no comparable metric\n", b.Name)
		}
	}
	if regressions > 0 {
		fmt.Printf("benchcmp: %d regression(s) beyond %.0f%%\n", regressions, 100**threshold)
		if !*reportOnly {
			os.Exit(1)
		}
		fmt.Println("benchcmp: report-only mode, not failing")
	}
}
