// Command benchcmp is the benchmark regression harness: it parses `go test
// -bench` output, maintains a JSON baseline (BENCH_1.json at the repo root),
// and flags pebbles/sec regressions beyond a threshold.
//
// The baseline keeps the raw benchmark lines alongside the parsed figures,
// so `jq -r '.raw[]' BENCH_1.json > old.txt` yields a file benchstat can
// consume directly against a fresh run.
//
// Usage:
//
//	go test -run '^$' -bench Engine -benchtime 3x . > bench.out
//	benchcmp -write BENCH_1.json bench.out            # record a baseline
//	benchcmp -baseline BENCH_1.json bench.out         # compare, exit 1 on regression
//	benchcmp -baseline BENCH_1.json -report-only bench.out  # compare, always exit 0
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result. Metrics holds every per-op
// figure go test reported (ns/op, pebbles/op, custom ReportMetric units).
type Benchmark struct {
	Name      string             `json:"name"`
	Iters     int64              `json:"iters"`
	NsPerOp   float64            `json:"ns_per_op"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	PebblesPS float64            `json:"pebbles_per_sec,omitempty"`
}

// Baseline is the persisted BENCH_1.json schema.
type Baseline struct {
	RecordedAt string      `json:"recorded_at"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Notes      []string    `json:"notes,omitempty"`
	Raw        []string    `json:"raw"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// noteFlags collects repeated -note values.
type noteFlags []string

func (n *noteFlags) String() string     { return strings.Join(*n, "; ") }
func (n *noteFlags) Set(s string) error { *n = append(*n, s); return nil }

// benchLine matches e.g.
//
//	BenchmarkEngineSequential-8   3   289148195 ns/op   520960 pebbles/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// trimCPU drops the -N GOMAXPROCS suffix so baselines transfer across
// machines with different core counts.
func trimCPU(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func parse(data string) ([]Benchmark, []string) {
	var out []Benchmark
	var raw []string
	for _, line := range strings.Split(data, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		b := Benchmark{Name: trimCPU(m[1]), Iters: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			b.Metrics[unit] = v
			if unit == "ns/op" {
				b.NsPerOp = v
			}
		}
		if p, ok := b.Metrics["pebbles/op"]; ok && b.NsPerOp > 0 {
			b.PebblesPS = p / (b.NsPerOp * 1e-9)
		}
		out = append(out, b)
		raw = append(raw, strings.TrimSpace(line))
	}
	return out, raw
}

func readInput(path string) (string, error) {
	if path == "-" {
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, err := os.Stdin.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				return sb.String(), nil
			}
		}
	}
	data, err := os.ReadFile(path)
	return string(data), err
}

func main() {
	write := flag.String("write", "", "record a baseline JSON at this path and exit")
	baseline := flag.String("baseline", "", "compare against this baseline JSON")
	threshold := flag.Float64("threshold", 0.10, "pebbles/sec regression fraction that fails the comparison")
	reportOnly := flag.Bool("report-only", false, "report regressions but always exit 0")
	var notes noteFlags
	flag.Var(&notes, "note", "free-form note stored in the baseline (repeatable, with -write)")
	flag.Parse()

	if flag.NArg() != 1 || (*write == "") == (*baseline == "") {
		fmt.Fprintln(os.Stderr, "usage: benchcmp (-write out.json | -baseline base.json [-report-only]) bench.out|-")
		os.Exit(2)
	}
	data, err := readInput(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	benches, raw := parse(data)
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmark lines found in input")
		os.Exit(1)
	}

	if *write != "" {
		b := Baseline{
			RecordedAt: time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			Notes:      notes,
			Raw:        raw,
			Benchmarks: benches,
		}
		out, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*write, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(1)
		}
		fmt.Printf("benchcmp: recorded %d benchmarks to %s\n", len(benches), *write)
		return
	}

	var base Baseline
	bdata, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	if err := json.Unmarshal(bdata, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %s: %v\n", *baseline, err)
		os.Exit(1)
	}
	byName := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}

	regressions := 0
	for _, b := range benches {
		old, ok := byName[b.Name]
		if !ok {
			fmt.Printf("%-55s NEW (no baseline entry)\n", b.Name)
			continue
		}
		switch {
		case b.PebblesPS > 0 && old.PebblesPS > 0:
			delta := b.PebblesPS/old.PebblesPS - 1
			status := "ok"
			if delta < -*threshold {
				status = "REGRESSION"
				regressions++
			}
			fmt.Printf("%-55s %12.0f -> %12.0f pebbles/sec  %+6.1f%%  %s\n",
				b.Name, old.PebblesPS, b.PebblesPS, 100*delta, status)
		case b.NsPerOp > 0 && old.NsPerOp > 0:
			// No throughput metric: fall back to wall time (higher is worse).
			delta := b.NsPerOp/old.NsPerOp - 1
			status := "ok"
			if delta > *threshold {
				status = "REGRESSION"
				regressions++
			}
			fmt.Printf("%-55s %12.0f -> %12.0f ns/op        %+6.1f%%  %s\n",
				b.Name, old.NsPerOp, b.NsPerOp, 100*delta, status)
		default:
			fmt.Printf("%-55s no comparable metric\n", b.Name)
		}
	}
	if regressions > 0 {
		fmt.Printf("benchcmp: %d regression(s) beyond %.0f%%\n", regressions, 100**threshold)
		if !*reportOnly {
			os.Exit(1)
		}
		fmt.Println("benchcmp: report-only mode, not failing")
	}
}
