package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"latencyhide/internal/telemetry"
)

// mrun carries the telemetry plumbing for one CLI invocation that asked for a
// machine-readable run manifest (-manifest-out) and/or a live status line
// (-live): the metrics registry handed to the engine, the memory sampler, the
// repainting TTY line, and the manifest being assembled. A nil *mrun is a
// valid no-op on every method, so command bodies call it unconditionally.
type mrun struct {
	path    string
	reg     *telemetry.Registry
	sampler *telemetry.Sampler
	live    *telemetry.Live
	start   time.Time
	alloc0  uint64
	m       *telemetry.RunManifest
}

// manifestFlags registers the shared -manifest-out / -live flags.
func manifestFlags(fs *flag.FlagSet) (manifestOut *string, live *bool) {
	manifestOut = fs.String("manifest-out", "",
		"write a machine-readable run manifest (JSON) to this file")
	live = fs.Bool("live", false,
		"render a refreshing status line (pebbles/sec, ETA, progress) while running")
	return
}

// startMRun begins manifest/live capture for one command invocation. args is
// the command's raw argument list (hashed into the config identity). Returns
// nil — a no-op — when neither flag was given.
func startMRun(command string, args []string, manifestOut string, live bool) *mrun {
	if manifestOut == "" && !live {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r := &mrun{
		path:   manifestOut,
		reg:    telemetry.NewRegistry(),
		start:  time.Now(),
		alloc0: ms.TotalAlloc,
		m: &telemetry.RunManifest{
			Schema:     telemetry.ManifestSchema,
			Command:    command,
			ConfigHash: telemetry.ConfigHash(append([]string{command}, args...)),
			StartedAt:  time.Now().UTC().Format(time.RFC3339),
		},
	}
	return r
}

// registry returns the engine registry to attach to the run (nil when no
// capture is active, which disables engine telemetry entirely).
func (r *mrun) registry() *telemetry.Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// active reports whether a manifest file was requested.
func (r *mrun) active() bool { return r != nil && r.path != "" }

// startSampling launches the periodic memory sampler. Call after the engine
// registry is wired so progress (pebbles_computed) lands in the series.
func (r *mrun) startSampling() {
	if r == nil {
		return
	}
	r.sampler = telemetry.StartSampler(r.reg, 0)
}

// startLive begins repainting the status line with render (no-op unless
// -live was given).
func (r *mrun) startLive(enabled bool, render func() string) {
	if r == nil || !enabled {
		return
	}
	r.live = telemetry.StartLive(os.Stderr, 0, render)
}

// engineStatus is the default -live renderer for engine-backed commands:
// pebble progress against the registered total, throughput, and ETA.
func (r *mrun) engineStatus() string {
	snap := r.reg.Snapshot()
	done := snap.Counter("pebbles_computed")
	total := snap.Counter("pebbles_total")
	elapsed := time.Since(r.start)
	rate := float64(done) / elapsed.Seconds()
	return fmt.Sprintf("run: %d/%d pebbles  %s  eta %s",
		done, total, telemetry.Rate(rate), telemetry.ETA(done, total, elapsed))
}

// stopLive halts the status line (idempotent; safe on nil). Call before
// printing normal output so the repainting line cannot interleave with it.
func (r *mrun) stopLive() {
	if r == nil || r.live == nil {
		return
	}
	r.live.Stop()
	r.live = nil
}

// finish stops the live line and the sampler, fills the cross-command
// manifest fields (wall time, metric snapshot, memory series, peak RSS,
// bytes/pebble from the pebble count the caller stored in m.Pebbles), and
// writes the manifest when -manifest-out was given. Safe on nil.
func (r *mrun) finish() error {
	if r == nil {
		return nil
	}
	r.stopLive()
	if r.sampler != nil {
		r.m.MemSeries = r.sampler.Stop()
	}
	r.m.WallSeconds = time.Since(r.start).Seconds()
	r.m.Metrics = r.reg.Snapshot()
	r.m.PeakRSSBytes = telemetry.ReadPeakRSS()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if r.m.Pebbles > 0 {
		r.m.PebblesPerSec = float64(r.m.Pebbles) / r.m.WallSeconds
		r.m.BytesPerPebble = float64(ms.TotalAlloc-r.alloc0) / float64(r.m.Pebbles)
	}
	if r.path == "" {
		return nil
	}
	if err := r.m.WriteFile(r.path); err != nil {
		return err
	}
	fmt.Printf("manifest: wrote %s\n", r.path)
	return nil
}

// cmdManifest inspects and validates manifests written by the other
// commands: `latencysim manifest -check m.json` exits non-zero when the file
// violates the schema contract (the CI telemetry-smoke job hangs off this).
func cmdManifest(args []string) error {
	fs := flag.NewFlagSet("manifest", flag.ExitOnError)
	check := fs.Bool("check", false, "validate the manifest against the schema contract")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: latencysim manifest [-check] <file.json>")
	}
	m, err := telemetry.LoadManifest(fs.Arg(0))
	if err != nil {
		return err
	}
	if *check {
		if err := m.Validate(); err != nil {
			return err
		}
	}
	fmt.Printf("schema:   %s\n", m.Schema)
	fmt.Printf("command:  %s  (config %s)\n", m.Command, m.ConfigHash)
	if m.Scenario != "" {
		fmt.Printf("scenario: %s\n", m.Scenario)
	}
	if m.Engine != "" {
		fmt.Printf("engine:   %s workers=%d\n", m.Engine, m.Workers)
	}
	fmt.Printf("wall:     %.3fs\n", m.WallSeconds)
	if m.Pebbles > 0 {
		fmt.Printf("pebbles:  %d  (%s, %.1f B/pebble)\n",
			m.Pebbles, telemetry.Rate(m.PebblesPerSec), m.BytesPerPebble)
	}
	if m.PeakRSSBytes > 0 {
		fmt.Printf("peak rss: %.1f MiB\n", float64(m.PeakRSSBytes)/(1<<20))
	}
	if m.Stalls != nil {
		s := m.Stalls
		fmt.Printf("stalls:   busy=%d idle=%d dep=%d bw=%d fault=%d of %d proc-steps\n",
			s.Busy, s.Idle, s.Dependency, s.Bandwidth, s.Fault, s.ProcSteps)
	}
	if m.Metrics != nil {
		names := make([]string, 0, len(m.Metrics.Counters))
		for n := range m.Metrics.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("counters:\n")
		for _, n := range names {
			fmt.Printf("  %-24s %d\n", n, m.Metrics.Counters[n])
		}
		names = names[:0]
		for n := range m.Metrics.Gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("gauges:\n")
		for _, n := range names {
			fmt.Printf("  %-24s %d\n", n, m.Metrics.Gauges[n])
		}
	}
	if len(m.Sweep) > 0 {
		fmt.Printf("sweep:    %d points\n", len(m.Sweep))
	}
	if len(m.Experiments) > 0 {
		fmt.Printf("exp:      %d experiments timed\n", len(m.Experiments))
	}
	if m.Verify != nil {
		fmt.Printf("verify:   seed=%d scenarios=%d events=%d failures=%d\n",
			m.Verify.Seed, m.Verify.Scenarios, m.Verify.Events, m.Verify.Failures)
	}
	if *check {
		fmt.Println("manifest: OK")
	}
	return nil
}
