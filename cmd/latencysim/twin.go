package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"latencyhide/internal/fleet"
	"latencyhide/internal/metrics"
	"latencyhide/internal/telemetry"
	"latencyhide/internal/twin"
)

// cmdTwin joins measured slowdowns against the analytical twin
// (internal/twin) and scores each theorem family:
//
//	latencysim twin -report -seed 1 -n 500          measure inline, then score
//	latencysim twin -report -store 'shards/*.jsonl' score existing fleet stores
//	latencysim twin -fit -seed 1 -n 2000            re-derive the fitted constants
//
// -report exits nonzero if any family breaches its MAPE ceiling or any
// measurement beats its certified floor — the CI twin-gate runs exactly
// this.
func cmdTwin(args []string) error {
	return runTwin(args, os.Stdout)
}

func runTwin(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("twin", flag.ExitOnError)
	report := fs.Bool("report", false, "score measured slowdowns against the twin's predictions per theorem family")
	fit := fs.Bool("fit", false, "fit the per-family constants to the corpus and print them (does not change the frozen model)")
	store := fs.String("store", "", "glob of fleet result stores to join (default: measure inline from -seed/-n)")
	seed := fs.Uint64("seed", 1, "scenario stream seed for inline measurement")
	n := fs.Int("n", 500, "number of generated scenarios for inline measurement")
	workers := fs.Int("workers", 4, "concurrent measurement workers for inline mode")
	csv := fs.Bool("csv", false, "emit the report as CSV instead of an aligned table")
	manifestOut, liveFlag := manifestFlags(fs)
	fs.Parse(args)

	if *report == *fit {
		return fmt.Errorf("twin: pass exactly one of -report or -fit")
	}
	mr := startMRun("twin", args, *manifestOut, *liveFlag)
	results, source, err := twinResults(mr, *liveFlag, *store, *seed, *n, *workers)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("twin: no results to score (empty stores?)")
	}

	if *fit {
		t := metrics.NewTable(fmt.Sprintf("twin -fit over %s (%d scenarios)", source, len(results)),
			"family", "n", "c0", "c_load", "c_floor", "spread_q95")
		for _, p := range twin.Predictors() {
			samples := fleet.Samples(results, p.Name)
			if len(samples) < 3 {
				t.AddRow(p.Name, len(samples), "-", "-", "-", "-")
				continue
			}
			c, err := twin.Fit(samples, p.Name == "cliquechain")
			if err != nil {
				return fmt.Errorf("twin: fitting %s: %v", p.Name, err)
			}
			t.AddRow(p.Name, len(samples),
				fmt.Sprintf("%.4f", c.C0), fmt.Sprintf("%.4f", c.CLoad),
				fmt.Sprintf("%.4f", c.CFloor), fmt.Sprintf("%.4f", c.Spread))
		}
		t.AddNote("point = c0 + c_load*Load + c_floor*PropFloor (clamped >= 1); see DESIGN.md §11")
		if *csv {
			t.CSV(w)
		} else {
			t.Fprint(w)
		}
		return mr.finish()
	}

	reports, allPass := fleet.Report(results)
	t := metrics.NewTable(fmt.Sprintf("analytical twin vs measured slowdown, %s (%d scenarios)", source, len(results)),
		"family", "n", "mape", "ceiling", "in_band", "cert_viol", "status")
	for _, r := range reports {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
		}
		mape := "-"
		band := "-"
		if r.N > 0 {
			mape = fmt.Sprintf("%.4f", r.MAPE)
			band = fmt.Sprintf("%.3f", r.InBand)
		}
		t.AddRow(r.Name, r.N, mape, fmt.Sprintf("%.2f", r.Ceiling), band, r.CertViolations, status)
		if mr != nil {
			mr.m.Twin = append(mr.m.Twin, telemetry.TwinFamily{
				Name: r.Name, N: r.N, MAPE: r.MAPE, Ceiling: r.Ceiling,
				InBand: r.InBand, CertViolations: r.CertViolations, Pass: r.Pass,
			})
		}
	}
	for _, r := range reports {
		if r.N > 0 {
			t.AddNote("%s: %s", r.Name, r.Theorem)
		}
	}
	if *csv {
		t.CSV(w)
	} else {
		t.Fprint(w)
	}
	if mr != nil {
		mr.m.Scenario = fmt.Sprintf("twin report %s", source)
	}
	if err := mr.finish(); err != nil {
		return err
	}
	if !allPass {
		return fmt.Errorf("twin: model validation failed (MAPE ceiling breached or certified floor violated)")
	}
	return nil
}

// runFleetSweep is `latencysim sweep -fleet N`: measure one shard of a
// fleet plan into a resumable JSONL store. Already-stored results are
// skipped, so re-running after a kill only computes the remainder — and
// the store file comes out byte-identical to an uninterrupted run.
func runFleetSweep(w io.Writer, plan fleet.Plan, outPath string, workers int, mr *mrun, live bool) error {
	if plan.Shards < 1 {
		return fmt.Errorf("sweep: -shards must be >= 1, got %d", plan.Shards)
	}
	if plan.Shard < 0 || plan.Shard >= plan.Shards {
		return fmt.Errorf("sweep: -shard %d outside [0,%d)", plan.Shard, plan.Shards)
	}
	if outPath == "" {
		outPath = fmt.Sprintf("fleet-shard%d.jsonl", plan.Shard)
	}
	st, err := fleet.Open(outPath)
	if err != nil {
		return err
	}
	defer st.Close()
	resumed := st.Len()
	var done, total atomic.Int64
	mr.startSampling()
	mr.startLive(live, func() string {
		return fmt.Sprintf("fleet: %d/%d items", done.Load(), total.Load())
	})
	err = fleet.RunShard(plan, st, workers, func(d, t int) {
		done.Store(int64(d))
		total.Store(int64(t))
	})
	mr.stopLive()
	if err != nil {
		return err
	}
	items := plan.ShardItems()
	fmt.Fprintf(w, "fleet: seed=%d n=%d shards=%d shard=%d items=%d resumed=%d\n",
		plan.Seed, plan.N, plan.Shards, plan.Shard, len(items), resumed)
	byFamily := map[string]int{}
	for _, r := range st.Results() {
		byFamily[r.Family]++
	}
	for _, p := range twin.Predictors() {
		if c := byFamily[p.Name]; c > 0 {
			fmt.Fprintf(w, "fleet: family %-11s %d measured\n", p.Name, c)
		}
	}
	fmt.Fprintf(w, "fleet: %d results in %s\n", st.Len(), outPath)
	if mr != nil {
		mr.m.Scenario = fmt.Sprintf("fleet seed=%d n=%d shard=%d/%d", plan.Seed, plan.N, plan.Shard, plan.Shards)
		mr.m.Fleet = &telemetry.FleetSummary{
			Seed: plan.Seed, N: plan.N, Shards: plan.Shards, Shard: plan.Shard,
			Items: len(items), Resumed: resumed, Store: outPath,
		}
	}
	return mr.finish()
}

// twinResults loads the corpus: from fleet stores when -store was given,
// otherwise by measuring the plan inline into a throwaway in-memory-ish
// store (a temp file, so the same single-writer code path runs).
func twinResults(mr *mrun, live bool, storeGlob string, seed uint64, n, workers int) ([]fleet.Result, string, error) {
	if storeGlob != "" {
		paths, err := filepath.Glob(storeGlob)
		if err != nil {
			return nil, "", fmt.Errorf("twin: bad -store glob: %v", err)
		}
		if len(paths) == 0 {
			return nil, "", fmt.Errorf("twin: -store %q matches no files", storeGlob)
		}
		sort.Strings(paths)
		results, err := fleet.ReadAll(paths...)
		if err != nil {
			return nil, "", err
		}
		return results, fmt.Sprintf("%d stores", len(paths)), nil
	}
	if n < 1 {
		return nil, "", fmt.Errorf("twin: -n must be >= 1, got %d", n)
	}
	dir, err := os.MkdirTemp("", "latencysim-twin-*")
	if err != nil {
		return nil, "", err
	}
	defer os.RemoveAll(dir)
	st, err := fleet.Open(filepath.Join(dir, "inline.jsonl"))
	if err != nil {
		return nil, "", err
	}
	defer st.Close()
	plan := fleet.Plan{Seed: seed, N: n}
	var done, total atomic.Int64
	mr.startSampling()
	mr.startLive(live, func() string {
		return fmt.Sprintf("twin: %d/%d scenarios", done.Load(), total.Load())
	})
	err = fleet.RunShard(plan, st, workers, func(d, t int) {
		done.Store(int64(d))
		total.Store(int64(t))
	})
	mr.stopLive()
	if err != nil {
		return nil, "", err
	}
	return st.Results(), fmt.Sprintf("seed=%d n=%d", seed, n), nil
}
