package main

import (
	"flag"
	"fmt"
	"os"

	"latencyhide/internal/assign"
	"latencyhide/internal/lower"
	"latencyhide/internal/metrics"
	"latencyhide/internal/network"
)

// cmdLower certifies the paper's lower bounds on the special hosts: the
// Theorem 9 single-copy adversary on H1 and the Theorem 10 two-copy case
// analysis on H2.
func cmdLower(args []string) error {
	fs := flag.NewFlagSet("lower", flag.ExitOnError)
	which := fs.String("host", "h1", "lower-bound host: h1 (Theorem 9) | h2 (Theorem 10)")
	n := fs.Int("n", 1024, "host parameter n")
	showPath := fs.Bool("path", false, "print the Figure 6 zigzag witness path (h2)")
	fs.Parse(args)

	switch *which {
	case "h1":
		minLB, details, err := lower.H1Adversary(*n, *n)
		if err != nil {
			return err
		}
		t := metrics.NewTable(fmt.Sprintf("Theorem 9 on H1(n=%d): certified slowdown bounds per strategy", *n),
			"strategy", "hosts used", "certified LB")
		for _, d := range details {
			t.AddRow(d.Name, d.Used, d.LB)
		}
		t.AddNote("theorem: every single-copy placement pays >= sqrt(n) = %d; weakest strategy certifies %d",
			network.ISqrt(*n), minLB)
		t.Fprint(os.Stdout)
		return nil
	case "h2":
		spec := network.H2(*n)
		hostN := spec.Net.NumNodes()
		m := hostN / 2
		strategies := map[string]func(c int) (int, int){
			"mirrored-halves": func(c int) (int, int) { p := c * (hostN / 2) / m; return p, p + hostN/2 },
			"adjacent-pair":   func(c int) (int, int) { p := c * (hostN - 1) / m; return p, p + 1 },
			"single-copy":     func(c int) (int, int) { p := c * hostN / m; return p, p },
		}
		t := metrics.NewTable(fmt.Sprintf("Theorem 10 on H2(n=%d, %d processors, %d segments)",
			*n, hostN, spec.NumSegments()),
			"strategy", "load", "case", "certified slowdown LB")
		for name, place := range strategies {
			owned := make([][]int, hostN)
			for c := 0; c < m; c++ {
				p, q := place(c)
				owned[p] = append(owned[p], c)
				if q != p {
					owned[q] = append(owned[q], c)
				}
			}
			a, err := assign.FromOwned(hostN, m, owned)
			if err != nil {
				return err
			}
			cert, err := lower.CertifyTwoCopy(spec, a, a.Load())
			if err != nil {
				return err
			}
			t.AddRow(name, a.Load(), cert.Case, cert.SlowdownLB)
		}
		t.AddNote("theorem: any <=2-copy constant-load placement pays Omega(log n); log n = %d here",
			network.Log2Ceil(spec.N))
		t.Fprint(os.Stdout)
		if *showPath {
			// the proof's 4j-pebble dependency path (Figure 6) for a
			// small overlap run
			j := 4
			path, err := lower.ZigzagPath(0, j, 4*j)
			if err != nil {
				return err
			}
			if err := lower.VerifyZigzag(path); err != nil {
				return err
			}
			fmt.Printf("\nFigure 6 zigzag path (j=%d, %d pebbles, dependency-checked):\n", j, len(path))
			for k, p := range path {
				fmt.Printf("  tau_%-2d = (col %2d, step %2d)\n", k+1, p.Col, p.Step)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown lower-bound host %q (h1|h2)", *which)
	}
}
