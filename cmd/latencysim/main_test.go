package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"latencyhide/internal/fleet"
	"latencyhide/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file when -update is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestParseVariant(t *testing.T) {
	good := map[string]string{
		"loadone": "load-one", "load-one": "load-one", "load1": "load-one",
		"workefficient": "work-efficient", "we": "work-efficient",
		"twolevel": "two-level", "2l": "two-level", "TwoLevel": "two-level",
	}
	for in, want := range good {
		v, err := parseVariant(in)
		if err != nil || v.String() != want {
			t.Errorf("parseVariant(%q) = %v, %v", in, v, err)
		}
	}
	if _, err := parseVariant("bogus"); err == nil {
		t.Fatal("bogus variant accepted")
	}
}

func buildHost(t *testing.T, args ...string) *hostFlags {
	t.Helper()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	hf := addHostFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return hf
}

func TestHostFlagsBuild(t *testing.T) {
	for _, kind := range []string{"line", "ring", "mesh", "torus", "hypercube", "btree", "random", "ccc", "h1", "h2", "cliquechain"} {
		hf := buildHost(t, "-host", kind, "-n", "64")
		g, err := hf.build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.NumNodes() < 8 {
			t.Fatalf("%s: %d nodes", kind, g.NumNodes())
		}
		if !g.IsConnected() {
			t.Fatalf("%s: disconnected", kind)
		}
	}
	hf := buildHost(t, "-host", "nonsense")
	if _, err := hf.build(); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestHostFlagsDelaySources(t *testing.T) {
	for _, d := range []string{"const", "uniform", "bimodal", "pareto", "exp"} {
		hf := buildHost(t, "-delay", d, "-n", "32")
		g, err := hf.build()
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if g.MaxDelay() < 1 {
			t.Fatalf("%s: no delays", d)
		}
	}
}

func TestHostFromJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "host.json")
	if err := os.WriteFile(path, []byte(`{"nodes":3,"links":[[0,1,2],[1,2,5]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	hf := buildHost(t, "-host", "@"+path)
	g, err := hf.build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.MaxDelay() != 5 {
		t.Fatalf("loaded %v", g)
	}
	hf = buildHost(t, "-host", "@"+filepath.Join(dir, "missing.json"))
	if _, err := hf.build(); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSpark(t *testing.T) {
	s := spark([]float64{0, 0.5, 1, -3, 9})
	if len([]rune(s)) != 5 {
		t.Fatalf("spark %q", s)
	}
	r := []rune(s)
	if r[0] != ' ' || r[2] != '@' || r[3] != ' ' || r[4] != '@' {
		t.Fatalf("spark clamps wrong: %q", s)
	}
}

// Smoke tests: drive each subcommand's implementation directly on tiny
// inputs (they print to stdout, which `go test` captures).
func TestSubcommandSmoke(t *testing.T) {
	if err := cmdPlan([]string{"-host", "line", "-n", "64"}); err != nil {
		t.Fatalf("plan: %v", err)
	}
	if err := cmdLower([]string{"-host", "h1", "-n", "64"}); err != nil {
		t.Fatalf("lower h1: %v", err)
	}
	if err := cmdLower([]string{"-host", "h2", "-n", "64"}); err != nil {
		t.Fatalf("lower h2: %v", err)
	}
	if err := cmdLower([]string{"-host", "zzz"}); err == nil {
		t.Fatal("bad lower host accepted")
	}
	if err := cmdGuest([]string{"-guest", "tree", "-gn", "4", "-host", "line", "-n", "32", "-steps", "3"}); err != nil {
		t.Fatalf("guest: %v", err)
	}
	if err := cmdGuest([]string{"-guest", "zzz"}); err == nil {
		t.Fatal("bad guest accepted")
	}
	if err := cmdGuest([]string{"-guest", "ring", "-gn", "12", "-layout", "zzz"}); err == nil {
		t.Fatal("bad layout accepted")
	}
	if err := cmdRun([]string{"-host", "line", "-n", "48", "-steps", "8", "-variant", "loadone"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := cmdRun([]string{"-host", "line", "-n", "48", "-steps", "8", "-variant", "loadone", "-trace"}); err != nil {
		t.Fatalf("run -trace: %v", err)
	}
	if err := cmdTopo([]string{"-host", "ring", "-n", "32", "-tree"}); err != nil {
		t.Fatalf("topo: %v", err)
	}
	if err := cmdSweep([]string{"-host", "line", "-from", "32", "-to", "64", "-steps", "4", "-csv"}); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if err := cmdExp([]string{"-only", "E10"}); err != nil {
		t.Fatalf("exp: %v", err)
	}
	if err := cmdExp([]string{"-only", "E99"}); err == nil {
		t.Fatal("bad experiment accepted")
	}
	if err := cmdExp([]string{"-scale", "zzz"}); err == nil {
		t.Fatal("bad scale accepted")
	}
}

// The trace subcommand must emit a structurally valid Chrome trace-event
// file plus the JSON summary and CSV exports.
func TestTraceSubcommand(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	sumPath := filepath.Join(dir, "summary.json")
	csvPath := filepath.Join(dir, "links.csv")
	err := cmdTrace([]string{
		"-host", "random", "-n", "64", "-steps", "8",
		"-out", tracePath, "-summary", sumPath, "-csv", csvPath, "-heatmap",
	})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	for _, field := range []string{"ph", "ts", "pid", "tid"} {
		if _, ok := doc.TraceEvents[0][field]; !ok {
			t.Fatalf("chrome event missing %q: %v", field, doc.TraceEvents[0])
		}
	}
	sumRaw, err := os.ReadFile(sumPath)
	if err != nil {
		t.Fatal(err)
	}
	var sum map[string]interface{}
	if err := json.Unmarshal(sumRaw, &sum); err != nil {
		t.Fatalf("summary not valid JSON: %v", err)
	}
	if _, ok := sum["bandwidthShare"]; !ok {
		t.Fatalf("summary missing bandwidthShare: %v", sum)
	}
	csvRaw, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvRaw)), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "link,dir,") {
		t.Fatalf("links CSV malformed: %q", lines[0])
	}
}

func TestCoarsen(t *testing.T) {
	got := coarsen([]int64{1, 2, 3, 4, 5}, 2)
	want := []int64{3, 7, 5}
	if len(got) != len(want) {
		t.Fatalf("coarsen %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coarsen %v want %v", got, want)
		}
	}
	if out := coarsen([]int64{1, 2}, 1); len(out) != 2 {
		t.Fatalf("k=1 should be identity, got %v", out)
	}
}

// Flag validation must reject bad inputs with one-line errors before any
// simulation starts.
func TestValidateRunFlags(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		workers int
		out     string
		faults  string
		adapt   string
		wantErr string // substring; empty = must succeed
	}{
		{"defaults", 0, "", "", "", ""},
		{"workers ok", 4, "", "", "", ""},
		{"negative workers", -1, "", "", "", "-workers"},
		{"out in existing dir", 0, filepath.Join(dir, "t.json"), "", "", ""},
		{"out in missing dir", 0, filepath.Join(dir, "nope", "t.json"), "", "", "does not exist"},
		{"out under a file", 0, filepath.Join(file, "t.json"), "", "", "not a directory"},
		{"good faults", 0, "", "7:outage=0.1x8;crash=3@40", "", ""},
		{"all fault kinds", 0, "", "1:jitter=4@0.5;spike=32@0.01~1.5;outage=0.2x6#2;drift=0.2x8/4;churn=12x4#1;slow=0.3x8/0#1;crash=0@9", "", ""},
		{"faults missing seed", 0, "", "outage=0.1x8", "", "-faults"},
		{"faults bad kind", 0, "", "7:meteor=1", "", "-faults"},
		{"faults bad fraction", 0, "", "7:outage=1.5x8", "", "-faults"},
		{"faults garbage", 0, "", "::::", "", "-faults"},
		{"good adapt", 0, "", "", "epoch=64,thresh=0.35,extra=2,budget=8", ""},
		{"adapt mode any without faults", 0, "", "", "epoch=64,mode=any", ""},
		{"adapt mode fault with faults", 0, "", "7:churn=12x4", "epoch=64,mode=fault", ""},
		{"adapt mode fault without faults", 0, "", "", "epoch=64,mode=fault", "mode=fault requires a -faults plan"},
		{"adapt missing epoch", 0, "", "", "thresh=0.5", "-adapt"},
		{"adapt bad key", 0, "", "", "epoch=64,zeal=9", "-adapt"},
		{"adapt bad epoch", 0, "", "", "epoch=0", "-adapt"},
	}
	for _, tc := range cases {
		plan, pol, err := validateRunFlags(tc.workers, tc.out, tc.faults, tc.adapt)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			if tc.faults != "" && plan == nil {
				t.Errorf("%s: no plan parsed", tc.name)
			}
			if tc.faults == "" && plan != nil {
				t.Errorf("%s: plan from empty spec", tc.name)
			}
			if tc.adapt != "" && pol == nil {
				t.Errorf("%s: no policy parsed", tc.name)
			}
			if tc.adapt == "" && pol != nil {
				t.Errorf("%s: policy from empty spec", tc.name)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: bad input accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.wantErr)
		}
		if !strings.Contains(tc.name, "faults") || err == nil {
			continue
		}
		if strings.Count(err.Error(), "\n") != 0 {
			t.Errorf("%s: error is not one line: %q", tc.name, err)
		}
	}
}

// The verify subcommand's soak summary is deterministic for a fixed seed
// and scenario count, so it is pinned as a golden file.
func TestVerifySubcommandGolden(t *testing.T) {
	var sb strings.Builder
	if err := runVerify([]string{"-seed", "1", "-n", "8"}, &sb); err != nil {
		t.Fatalf("verify: %v", err)
	}
	checkGolden(t, "verify_summary", sb.String())
}

// Every flag-validation failure across run/trace/verify must be a one-line
// error; the exact wording is pinned as a golden file.
func TestFlagErrorsGolden(t *testing.T) {
	var sb strings.Builder
	collect := func(label string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: bad input accepted", label)
		}
		if strings.Count(err.Error(), "\n") != 0 {
			t.Fatalf("%s: error is not one line: %q", label, err)
		}
		fmt.Fprintf(&sb, "%s: %v\n", label, err)
	}
	_, _, err := validateRunFlags(-1, "", "", "")
	collect("run/trace -workers", err)
	_, _, err = validateRunFlags(0, filepath.Join("no", "such", "dir", "t.json"), "", "")
	collect("run/trace -trace-out", err)
	_, _, err = validateRunFlags(0, "", "outage=0.1x8", "")
	collect("run/trace -faults no seed", err)
	_, _, err = validateRunFlags(0, "", "7:meteor=1", "")
	collect("run/trace -faults bad kind", err)
	_, _, err = validateRunFlags(0, "", "", "epoch=0")
	collect("run/sweep -adapt bad epoch", err)
	_, _, err = validateRunFlags(0, "", "", "epoch=64,mode=fault")
	collect("run/sweep -adapt fault mode without -faults", err)
	collect("verify -n", runVerify([]string{"-n", "0"}, io.Discard))
	checkGolden(t, "flag_errors", sb.String())
}

// End-to-end: `run -manifest-out` must emit a manifest that passes the
// schema contract (parallel engine by default, so boundary telemetry is
// present), and `manifest -check` must accept it.
func TestRunManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	if err := cmdRun([]string{"-host", "line", "-n", "64", "-steps", "16",
		"-variant", "loadone", "-manifest-out", path}); err != nil {
		t.Fatalf("run -manifest-out: %v", err)
	}
	m, err := telemetry.LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("manifest fails its own contract: %v", err)
	}
	if m.Command != "run" || m.Engine != "parallel" || m.Workers != 2 {
		t.Fatalf("manifest run identity wrong: command=%q engine=%q workers=%d",
			m.Command, m.Engine, m.Workers)
	}
	if m.Pebbles <= 0 || m.BytesPerPebble <= 0 {
		t.Fatalf("memory accounting missing: pebbles=%d bytes/pebble=%f",
			m.Pebbles, m.BytesPerPebble)
	}
	if m.Stalls == nil || m.Stalls.Busy != m.Pebbles {
		t.Fatalf("stall tiling missing or inconsistent: %+v (pebbles=%d)", m.Stalls, m.Pebbles)
	}
	if got := m.Metrics.Counter("pebbles_computed"); got != m.Pebbles {
		t.Fatalf("telemetry pebbles %d != result pebbles %d", got, m.Pebbles)
	}
	// Memory-budget gauges: knowledge rings always exist; this scenario
	// replicates, so it must also report a route-table footprint. Peak RSS
	// is best-effort, but on Linux (where CI runs) it should be real.
	if v := m.Metrics.Gauge("know_ring_bytes_peak"); v <= 0 {
		t.Fatalf("know_ring_bytes_peak = %d, want > 0", v)
	}
	if v := m.Metrics.Gauge("route_bytes"); v <= 0 {
		t.Fatalf("route_bytes = %d, want > 0", v)
	}
	if rss := m.Metrics.Gauge("rss_peak_bytes"); rss < 0 {
		t.Fatalf("rss_peak_bytes = %d, want >= 0", rss)
	} else if telemetry.ReadPeakRSS() > 0 && rss == 0 {
		t.Fatal("rss_peak_bytes = 0 although /proc reports a peak RSS")
	}
	if err := cmdManifest([]string{"-check", path}); err != nil {
		t.Fatalf("manifest -check: %v", err)
	}
	// An explicitly sequential run must also validate (boundary gauges exempt).
	seqPath := filepath.Join(dir, "seq.json")
	if err := cmdRun([]string{"-host", "line", "-n", "64", "-steps", "16",
		"-variant", "loadone", "-workers", "0", "-manifest-out", seqPath}); err != nil {
		t.Fatalf("sequential run -manifest-out: %v", err)
	}
	if err := cmdManifest([]string{"-check", seqPath}); err != nil {
		t.Fatalf("sequential manifest -check: %v", err)
	}
	if err := cmdManifest([]string{filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing manifest accepted")
	}
}

// verify and sweep manifests must carry their per-command sections.
func TestVerifySweepManifests(t *testing.T) {
	dir := t.TempDir()
	vPath := filepath.Join(dir, "v.json")
	if err := runVerify([]string{"-seed", "1", "-n", "2", "-manifest-out", vPath}, io.Discard); err != nil {
		t.Fatalf("verify -manifest-out: %v", err)
	}
	vm, err := telemetry.LoadManifest(vPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Validate(); err != nil {
		t.Fatal(err)
	}
	if vm.Verify == nil || vm.Verify.Scenarios != 2 || vm.Verify.Events <= 0 {
		t.Fatalf("verify section wrong: %+v", vm.Verify)
	}
	sPath := filepath.Join(dir, "s.json")
	if err := cmdSweep([]string{"-host", "line", "-from", "32", "-to", "64",
		"-steps", "4", "-csv", "-manifest-out", sPath}); err != nil {
		t.Fatalf("sweep -manifest-out: %v", err)
	}
	sm, err := telemetry.LoadManifest(sPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sm.Sweep) != 2 || sm.Sweep[0].N != 32 || sm.Sweep[1].N != 64 {
		t.Fatalf("sweep points wrong: %+v", sm.Sweep)
	}
	if sm.Sweep[0].Pebbles <= 0 || sm.Pebbles != sm.Sweep[0].Pebbles+sm.Sweep[1].Pebbles {
		t.Fatalf("sweep pebble accounting wrong: total=%d points=%+v", sm.Pebbles, sm.Sweep)
	}
}

// The twin report over a fixed inline corpus is fully deterministic (no
// wall-clock in the table), so it is pinned as a golden file. This also
// gates the frozen constants: if someone edits them, every family must
// still clear its MAPE ceiling or runTwin errors here.
func TestTwinReportGolden(t *testing.T) {
	var sb strings.Builder
	if err := runTwin([]string{"-report", "-seed", "1", "-n", "60"}, &sb); err != nil {
		t.Fatalf("twin -report: %v", err)
	}
	checkGolden(t, "twin_report", sb.String())
}

func TestTwinFitGolden(t *testing.T) {
	var sb strings.Builder
	if err := runTwin([]string{"-fit", "-seed", "1", "-n", "60", "-csv"}, &sb); err != nil {
		t.Fatalf("twin -fit: %v", err)
	}
	checkGolden(t, "twin_fit", sb.String())
}

func TestTwinFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                     // neither -report nor -fit
		{"-report", "-fit"},    // both
		{"-report", "-n", "0"}, // empty inline corpus
		{"-report", "-store", filepath.Join(t.TempDir(), "*.jsonl")}, // glob matches nothing
	} {
		err := runTwin(args, io.Discard)
		if err == nil {
			t.Fatalf("twin %v accepted", args)
		}
		if strings.Count(err.Error(), "\n") != 0 {
			t.Fatalf("twin %v: error is not one line: %q", args, err)
		}
	}
}

// Fleet mode end-to-end through the CLI layer: a sharded run writes a
// resumable store, a re-run computes nothing new, and the console summary
// is pinned (with the temp path normalized out).
func TestFleetSweepGolden(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "shard0.jsonl")
	plan := fleet.Plan{Seed: 4, N: 20, Shards: 2, Shard: 0}
	var sb strings.Builder
	if err := runFleetSweep(&sb, plan, out, 2, nil, false); err != nil {
		t.Fatalf("fleet sweep: %v", err)
	}
	if err := runFleetSweep(&sb, plan, out, 2, nil, false); err != nil {
		t.Fatalf("fleet resume: %v", err)
	}
	got := strings.ReplaceAll(sb.String(), out, "<store>")
	checkGolden(t, "fleet_sweep", got)

	// Shard parameter validation fails fast.
	if err := runFleetSweep(io.Discard, fleet.Plan{N: 4, Shards: 0}, out, 1, nil, false); err == nil {
		t.Fatal("shards=0 accepted")
	}
	if err := runFleetSweep(io.Discard, fleet.Plan{N: 4, Shards: 2, Shard: 2}, out, 1, nil, false); err == nil {
		t.Fatal("shard out of range accepted")
	}
}

// Sharded fleet stores feed twin -report through -store, and both commands
// carry their manifest sections.
func TestFleetTwinManifests(t *testing.T) {
	dir := t.TempDir()
	fPath := filepath.Join(dir, "fleet-manifest.json")
	if err := cmdSweep([]string{"-fleet", "12", "-fleet-seed", "4", "-shards", "2", "-shard", "1",
		"-fleet-out", filepath.Join(dir, "shard1.jsonl"), "-manifest-out", fPath}); err != nil {
		t.Fatalf("sweep -fleet -manifest-out: %v", err)
	}
	fm, err := telemetry.LoadManifest(fPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.Validate(); err != nil {
		t.Fatal(err)
	}
	if fm.Fleet == nil || fm.Fleet.Seed != 4 || fm.Fleet.Shards != 2 || fm.Fleet.Shard != 1 ||
		fm.Fleet.Items <= 0 || fm.Fleet.Resumed != 0 {
		t.Fatalf("fleet section wrong: %+v", fm.Fleet)
	}
	if len(fm.Sweep) != 0 {
		t.Fatalf("fleet manifest has host-sweep points: %+v", fm.Sweep)
	}

	tPath := filepath.Join(dir, "twin-manifest.json")
	var sb strings.Builder
	if err := runTwin([]string{"-report", "-store", filepath.Join(dir, "*.jsonl"),
		"-manifest-out", tPath}, &sb); err != nil {
		t.Fatalf("twin -store: %v\n%s", err, sb.String())
	}
	tm, err := telemetry.LoadManifest(tPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tm.Twin) == 0 {
		t.Fatal("twin manifest has no family reports")
	}
	for _, f := range tm.Twin {
		if f.N > 0 && !f.Pass {
			t.Fatalf("family %s fails on its own fit corpus: %+v", f.Name, f)
		}
	}
}

// End-to-end: run with a fault plan completes and prints the plan; a
// malformed plan fails fast.
func TestRunWithFaults(t *testing.T) {
	if err := cmdRun([]string{"-host", "line", "-n", "48", "-steps", "8",
		"-variant", "loadone", "-faults", "7:outage=0.1x8"}); err != nil {
		t.Fatalf("run -faults: %v", err)
	}
	if err := cmdRun([]string{"-host", "line", "-n", "48",
		"-faults", "bogus"}); err == nil {
		t.Fatal("malformed -faults accepted")
	}
	if err := cmdRun([]string{"-host", "line", "-n", "48", "-workers", "-2"}); err == nil {
		t.Fatal("negative -workers accepted")
	}
	if err := cmdTrace([]string{"-host", "line", "-n", "48", "-workers", "-2"}); err == nil {
		t.Fatal("trace: negative -workers accepted")
	}
}
