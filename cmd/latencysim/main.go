// Command latencysim is the CLI for the latencyhide library: it inspects
// host topologies, runs single OVERLAP simulations, sweeps parameters and
// regenerates the paper experiments.
//
// Usage:
//
//	latencysim topo   -host mesh -n 256 [-delay exp -mean 3] [-tree] [-o host.json]
//	latencysim run    -host random -n 256 -variant twolevel -steps 64 -check [-trace] [-trace-out t.json] [-profile cpu.pprof]
//	latencysim trace  -host random -n 256 -out trace.json [-summary s.json] [-csv links.csv] [-heatmap]
//	latencysim sweep  -host line -from 128 -to 2048 -csv
//	latencysim guest  -guest butterfly -gn 5 -host random -layout auto
//	latencysim plan   -host @host.json
//	latencysim lower  -host h2 -n 1024 [-path]
//	latencysim verify -seed 1 -n 200
//	latencysim exp    [-scale full] [-md] [-only E3]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"latencyhide/internal/adapt"
	"latencyhide/internal/embedding"
	"latencyhide/internal/expt"
	"latencyhide/internal/fault"
	"latencyhide/internal/fleet"
	"latencyhide/internal/metrics"
	"latencyhide/internal/network"
	"latencyhide/internal/obs"
	"latencyhide/internal/overlap"
	"latencyhide/internal/telemetry"
	"latencyhide/internal/tree"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "topo":
		err = cmdTopo(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "exp", "experiments":
		err = cmdExp(os.Args[2:])
	case "lower":
		err = cmdLower(os.Args[2:])
	case "plan":
		err = cmdPlan(os.Args[2:])
	case "guest":
		err = cmdGuest(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "twin":
		err = cmdTwin(os.Args[2:])
	case "manifest":
		err = cmdManifest(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "latencysim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "latencysim: %v\n", err)
		os.Exit(1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func usage() {
	fmt.Fprintln(os.Stderr, `latencysim <command> [flags]

commands:
  topo    describe a host topology and its dilation-3 line embedding
  run     run one OVERLAP simulation and print measurements
  trace   run with full observability: stall causes, critical path, link gauges, Chrome trace
  sweep   sweep host size and print a slowdown table (or CSV)
  guest   simulate a tree/hypercube/butterfly/array guest via a 1-D layout
  plan    analyse a host and recommend OVERLAP parameters
  lower   certify the Theorem 9 / Theorem 10 lower bounds on H1 / H2
  verify  soak randomized scenarios through the invariant oracle and metamorphic relations
  twin    score measured slowdowns against the analytical theorem predictors (-report | -fit)
  exp     regenerate the paper experiments (E1..E19)
  manifest  inspect or validate a run manifest written with -manifest-out

sweep also runs in fleet mode (-fleet N [-shards K -shard I] [-fleet-out s.jsonl]):
thousands of generated scenarios sharded across worker processes into
resumable JSONL stores that "twin -report -store" joins and scores.

run, sweep, exp and verify accept -manifest-out <file.json> (machine-readable
run record: config hash, engine metrics, memory series, bytes/pebble) and
-live (refreshing progress line on stderr).`)
}

// hostFlags builds a host network from common flags.
type hostFlags struct {
	kind  *string
	n     *int
	deg   *int
	delay *string
	mean  *float64
	far   *int
	p     *float64
	seed  *int64
}

func addHostFlags(fs *flag.FlagSet) *hostFlags {
	return &hostFlags{
		kind:  fs.String("host", "line", "topology: line|ring|mesh|torus|hypercube|btree|random|ccc|h1|h2|cliquechain, or @file.json"),
		n:     fs.Int("n", 256, "approximate workstation count"),
		deg:   fs.Int("deg", 4, "max degree for random hosts"),
		delay: fs.String("delay", "bimodal", "delay distribution: const|uniform|bimodal|pareto|exp"),
		mean:  fs.Float64("mean", 4, "mean for exp/const delays"),
		far:   fs.Int("far", 64, "far delay for bimodal"),
		p:     fs.Float64("p", 0.02, "far-link probability for bimodal"),
		seed:  fs.Int64("seed", 1, "topology seed"),
	}
}

func (h *hostFlags) source() network.DelaySource {
	switch *h.delay {
	case "const":
		return network.ConstDelay(int(*h.mean))
	case "uniform":
		return network.UniformDelay{Lo: 1, Hi: int(2**h.mean - 1)}
	case "pareto":
		return network.ParetoDelay{Alpha: 1.2, Scale: *h.mean - 1, Cap: 100 * *h.n}
	case "exp":
		return network.ExpDelay{Mean: *h.mean}
	default:
		return network.BimodalDelay{Near: 1, Far: *h.far, P: *h.p}
	}
}

func (h *hostFlags) build() (*network.Network, error) {
	if strings.HasPrefix(*h.kind, "@") {
		f, err := os.Open((*h.kind)[1:])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return network.ReadJSON(f)
	}
	n, seed, src := *h.n, *h.seed, h.source()
	switch *h.kind {
	case "line":
		return network.Line(n, src, seed), nil
	case "ring":
		return network.Ring(n, src, seed), nil
	case "mesh":
		s := network.ISqrt(n)
		return network.Mesh2D(s, s, src, seed), nil
	case "torus":
		s := network.ISqrt(n)
		return network.Torus2D(s, s, src, seed), nil
	case "hypercube":
		return network.Hypercube(network.Log2Floor(n), src, seed), nil
	case "btree":
		h := network.Log2Floor(n+1) - 1
		return network.CompleteBinaryTree(h, src, seed), nil
	case "random":
		return network.RandomNOW(n, *h.deg, src, seed), nil
	case "ccc":
		return network.CCC(network.Log2Floor(max(n/3, 8)), src, seed), nil
	case "h1":
		return network.H1(n), nil
	case "h2":
		return network.H2(n).Net, nil
	case "cliquechain":
		return network.CliqueChain(network.ISqrt(n)), nil
	default:
		return nil, fmt.Errorf("unknown host kind %q", *h.kind)
	}
}

func cmdTopo(args []string) error {
	fs := flag.NewFlagSet("topo", flag.ExitOnError)
	hf := addHostFlags(fs)
	out := fs.String("o", "", "also write the topology as JSON to this file")
	showTree := fs.Bool("tree", false, "render the interval tree over the embedded line")
	fs.Parse(args)
	g, err := hf.build()
	if err != nil {
		return err
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := g.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	s := g.Stats()
	fmt.Printf("%s\n", g)
	fmt.Printf("  nodes=%d links=%d connected=%v\n", s.Nodes, s.Links, s.Connected)
	fmt.Printf("  d_ave=%.3f d_max=%d d_min=%d max_degree=%d\n", s.AvgDelay, s.MaxDelay, s.MinDelay, s.MaxDegree)
	line, err := embedding.Embed(g, 0)
	if err != nil {
		return err
	}
	es := line.Stats(g)
	fmt.Printf("  line embedding: dilation=%d line_d_ave=%.3f line_d_max=%d inflation=%.2fx\n",
		es.Dilation, es.LineAvgDelay, es.LineMaxDelay, es.Inflation)
	if *showTree {
		tr := tree.Build(line.Delays, 4)
		if err := tr.CheckLemmas(); err != nil {
			return err
		}
		tr.Render(os.Stdout, 72)
	}
	return nil
}

// validateRunFlags rejects flag combinations that would otherwise surface as
// confusing mid-run failures: negative worker counts, output paths in
// directories that do not exist, malformed fault or adapt specs, and an
// adaptive policy that can never fire (mode=fault gates activation on
// injected-fault forensics, so it needs a fault plan to read). It returns
// the parsed fault plan and adapt policy (nil when the specs are empty).
func validateRunFlags(workers int, outPath, faultsSpec, adaptSpec string) (*fault.Plan, *adapt.Policy, error) {
	if workers < 0 {
		return nil, nil, fmt.Errorf("-workers must be >= 0, got %d", workers)
	}
	if outPath != "" {
		dir := filepath.Dir(outPath)
		if fi, err := os.Stat(dir); err != nil {
			return nil, nil, fmt.Errorf("output directory %q does not exist", dir)
		} else if !fi.IsDir() {
			return nil, nil, fmt.Errorf("output path parent %q is not a directory", dir)
		}
	}
	var plan *fault.Plan
	if faultsSpec != "" {
		var err error
		plan, err = fault.Parse(faultsSpec)
		if err != nil {
			return nil, nil, fmt.Errorf("-faults: %v", err)
		}
	}
	var pol *adapt.Policy
	if adaptSpec != "" {
		var err error
		pol, err = adapt.Parse(adaptSpec)
		if err != nil {
			return nil, nil, fmt.Errorf("-adapt: %v", err)
		}
		if pol.RequireFault && !plan.Enabled() {
			return nil, nil, fmt.Errorf("-adapt: mode=fault requires a -faults plan to correlate stalls against (use mode=any for fault-free adaptation)")
		}
	}
	return plan, pol, nil
}

func parseVariant(s string) (overlap.Variant, error) {
	switch strings.ToLower(s) {
	case "loadone", "load-one", "load1":
		return overlap.LoadOne, nil
	case "workefficient", "work-efficient", "we":
		return overlap.WorkEfficient, nil
	case "twolevel", "two-level", "2l":
		return overlap.TwoLevel, nil
	default:
		return 0, fmt.Errorf("unknown variant %q (loadone|workefficient|twolevel)", s)
	}
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	hf := addHostFlags(fs)
	variant := fs.String("variant", "twolevel", "overlap variant: loadone|workefficient|twolevel")
	steps := fs.Int("steps", 64, "guest steps")
	beta := fs.Int("beta", 0, "database block size (0 = default)")
	bw := fs.Int("bw", 0, "link bandwidth in pebbles/step (0 = log n)")
	workers := fs.Int("workers", 0, "parallel engine chunks (0 = sequential)")
	check := fs.Bool("check", false, "verify replica digests against the reference executor")
	seed := fs.Int64("guestseed", 7, "guest computation seed")
	trace := fs.Bool("trace", false, "print a utilization timeline")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON of the run to this file")
	profile := fs.String("profile", "", "write a CPU pprof profile of the run to this file")
	faults := fs.String("faults", "", "deterministic fault plan, e.g. '7:outage=0.1x8;crash=3@40' (see DESIGN.md)")
	adaptSpec := fs.String("adapt", "", "adaptive replication policy, e.g. 'epoch=64,thresh=0.35,extra=1,budget=16,mode=fault' (see DESIGN.md)")
	manifestOut, liveFlag := manifestFlags(fs)
	fs.Parse(args)

	plan, pol, err := validateRunFlags(*workers, *traceOut, *faults, *adaptSpec)
	if err != nil {
		return err
	}
	mr := startMRun("run", args, *manifestOut, *liveFlag)
	if mr.active() {
		// A manifest promises boundary telemetry (ring occupancy, published
		// clock lag), which only the parallel engine produces; default to two
		// chunks unless the user picked an engine explicitly.
		workersSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "workers" {
				workersSet = true
			}
		})
		if !workersSet {
			*workers = 2
			fmt.Println("manifest: defaulting to -workers 2 so boundary telemetry is captured (pass -workers to override)")
		}
	}
	g, err := hf.build()
	if err != nil {
		return err
	}
	v, err := parseVariant(*variant)
	if err != nil {
		return err
	}
	opts := overlap.Options{
		Variant: v, Steps: *steps, Beta: *beta, Seed: *seed,
		Bandwidth: *bw, Workers: *workers, Check: *check, Faults: plan,
		Adapt: pol, Telemetry: mr.registry(),
	}
	if *trace {
		// Collect the timeline during the one and only run; printTrace
		// coarsens it to a sparkline afterwards.
		opts.TraceWindow = 8
	}
	var rec *obs.Buffer
	if *traceOut != "" || mr.active() {
		// The manifest's stall tiling needs the event stream too.
		rec = obs.NewBuffer()
		opts.Recorder = rec
	}
	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("profile: wrote %s\n", *profile)
		}()
	}
	mr.startSampling()
	mr.startLive(*liveFlag, mr.engineStatus)
	out, err := overlap.Simulate(g, opts)
	mr.stopLive()
	if err != nil {
		return err
	}
	fmt.Printf("host: %s\n", g)
	fmt.Printf("embedding: dilation=%d line_d_ave=%.3f\n", out.Dilation, out.Dave)
	fmt.Printf("tree: live=%d/%d killed=(%d,%d) guest_units=%d\n",
		out.LiveProcs, out.HostN, out.KilledStage1, out.KilledStage2, out.GuestUnits)
	fmt.Printf("assignment: variant=%s guest_cols=%d load=%d copies<=%d redundancy=%.2f\n",
		out.Variant, out.GuestCols, out.Load, out.MaxCopies, out.Redundancy)
	if plan != nil {
		fmt.Printf("faults: %s\n", plan)
	}
	if pol != nil {
		fmt.Printf("adapt: %s activations=%d\n", pol, out.Sim.AdaptActivations)
	}
	fmt.Printf("run: guest_steps=%d host_steps=%d slowdown=%.2f (bound ~ %.0f)\n",
		out.Sim.GuestSteps, out.Sim.HostSteps, out.Sim.Slowdown, out.PredictedSlowdown)
	if line, err2 := embedding.Embed(g, 0); err2 == nil {
		if sched, err2 := overlap.BuildSchedule(tree.Build(line.Delays, 4), 1); err2 == nil {
			fmt.Printf("schedule: Theorem 1 timetable bounds one round of %d steps by %d host steps (slowdown %.0f)\n",
				sched.RoundSteps(), sched.RoundBound(), sched.SlowdownBound())
		}
	}
	fmt.Printf("work: pebbles=%d redundancy=%.2f efficiency=%.2f msgs=%d hops=%d\n",
		out.Sim.PebblesComputed, out.Sim.Redundancy, out.Efficiency(), out.Sim.Messages, out.Sim.MessageHops)
	if out.Sim.Checked {
		fmt.Println("check: all database replicas match the sequential reference executor")
	}
	if len(out.Sim.Chunks) > 0 {
		obs.ChunkTable(out.Sim.Chunks).Fprint(os.Stdout)
	}
	if *trace {
		if err := printTrace(out); err != nil {
			return err
		}
	}
	if rec != nil {
		a := obs.Analyze(rec.Events(), *out.ObsInfo)
		if *traceOut != "" {
			if err := obs.WriteChromeTraceFile(*traceOut, rec.Events(), a.StallSpans(), *out.ObsInfo); err != nil {
				return err
			}
			fmt.Printf("trace-out: wrote %s (%d events; open in chrome://tracing or Perfetto)\n",
				*traceOut, rec.Len())
		}
		if mr != nil {
			s := a.Stalls()
			mr.m.Stalls = &telemetry.StallSummary{
				ProcSteps: s.ProcSteps, Busy: s.Busy, Idle: s.Idle,
				Dependency: s.Dependency, Bandwidth: s.Bandwidth, Fault: s.Fault,
			}
		}
	}
	if mr != nil {
		mr.m.Scenario = fmt.Sprintf("%s variant=%s steps=%d", g, out.Variant, *steps)
		mr.m.Engine = "sequential"
		if len(out.Sim.Chunks) > 1 {
			mr.m.Engine = "parallel"
		}
		mr.m.Workers = *workers
		mr.m.GuestSteps = out.Sim.GuestSteps
		mr.m.HostSteps = out.Sim.HostSteps
		mr.m.Slowdown = out.Sim.Slowdown
		mr.m.Pebbles = out.Sim.PebblesComputed
	}
	return mr.finish()
}

// coarsen sums groups of k adjacent counters.
func coarsen(xs []int64, k int) []int64 {
	if k <= 1 {
		return xs
	}
	out := make([]int64, 0, (len(xs)+k-1)/k)
	for i, x := range xs {
		if i%k == 0 {
			out = append(out, 0)
		}
		out[len(out)-1] += x
	}
	return out
}

// printTrace renders compute-utilization and traffic sparklines from the
// timeline the run already collected, coarsened to at most 60 buckets.
func printTrace(out *overlap.Outcome) error {
	tr := out.Sim.Trace
	if tr == nil {
		return fmt.Errorf("run collected no trace")
	}
	k := (len(tr.Computes) + 59) / 60
	if k < 1 {
		k = 1
	}
	computes := coarsen(tr.Computes, k)
	bucket := k * tr.Window
	util := make([]float64, len(computes))
	if den := float64(out.LiveProcs * bucket); den > 0 {
		for i, c := range computes {
			util[i] = float64(c) / den
		}
	}
	fmt.Printf("trace (window = %d host steps):\n", bucket)
	fmt.Printf("  compute utilization  %s\n", spark(util))
	hopsC := coarsen(tr.Hops, k)
	hops := make([]float64, len(hopsC))
	var hmax float64
	for i, h := range hopsC {
		hops[i] = float64(h)
		if hops[i] > hmax {
			hmax = hops[i]
		}
	}
	if hmax > 0 {
		for i := range hops {
			hops[i] /= hmax
		}
	}
	fmt.Printf("  link traffic (rel.)  %s\n", spark(hops))
	return nil
}

// cmdTrace runs one simulation with full observability: it records the
// structured event stream, prints the stall-cause breakdown, critical-path
// decomposition and busiest link gauges, and optionally exports a Chrome
// trace, a JSON summary and a link-gauge CSV.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	hf := addHostFlags(fs)
	variant := fs.String("variant", "twolevel", "overlap variant: loadone|workefficient|twolevel")
	steps := fs.Int("steps", 64, "guest steps")
	beta := fs.Int("beta", 0, "database block size (0 = default)")
	bw := fs.Int("bw", 0, "link bandwidth in pebbles/step (0 = log n)")
	workers := fs.Int("workers", 0, "parallel engine chunks (0 = sequential)")
	seed := fs.Int64("guestseed", 7, "guest computation seed")
	out := fs.String("out", "", "write Chrome trace-event JSON to this file")
	summary := fs.String("summary", "", "write the JSON run summary to this file")
	csvPath := fs.String("csv", "", "write the link gauges as CSV to this file")
	heatmap := fs.Bool("heatmap", false, "print the per-workstation compute heatmap")
	links := fs.Int("links", 8, "how many busiest directed links to print")
	faults := fs.String("faults", "", "deterministic fault plan, e.g. '7:outage=0.1x8;crash=3@40' (see DESIGN.md)")
	adaptSpec := fs.String("adapt", "", "adaptive replication policy, e.g. 'epoch=64,thresh=0.35,mode=fault' (see DESIGN.md)")
	fs.Parse(args)

	plan, pol, err := validateRunFlags(*workers, *out, *faults, *adaptSpec)
	if err != nil {
		return err
	}
	g, err := hf.build()
	if err != nil {
		return err
	}
	v, err := parseVariant(*variant)
	if err != nil {
		return err
	}
	rec := obs.NewBuffer()
	o, err := overlap.Simulate(g, overlap.Options{
		Variant: v, Steps: *steps, Beta: *beta, Seed: *seed,
		Bandwidth: *bw, Workers: *workers, Recorder: rec, Faults: plan,
		Adapt: pol,
	})
	if err != nil {
		return err
	}
	fmt.Printf("host: %s\n", g)
	fmt.Printf("run: guest_steps=%d host_steps=%d slowdown=%.2f events=%d\n\n",
		o.Sim.GuestSteps, o.Sim.HostSteps, o.Sim.Slowdown, rec.Len())

	a := obs.Analyze(rec.Events(), *o.ObsInfo)
	obs.StallTable(a.Stalls()).Fprint(os.Stdout)
	fmt.Println()
	obs.CritPathTable(a.CriticalPath()).Fprint(os.Stdout)
	fmt.Println()

	gauges := a.LinkGauges()
	busiest := append([]obs.LinkGauge(nil), gauges...)
	sort.Slice(busiest, func(i, j int) bool { return busiest[i].Injects > busiest[j].Injects })
	if *links > 0 && len(busiest) > *links {
		busiest = busiest[:*links]
	}
	lt := obs.LinkTable(busiest)
	lt.Title = fmt.Sprintf("busiest %d of %d directed links", len(busiest), len(gauges))
	lt.Fprint(os.Stdout)

	if *heatmap {
		window := int(o.Sim.HostSteps / 60)
		if window < 1 {
			window = 1
		}
		fmt.Printf("\ncompute heatmap (window = %d host steps):\n", window)
		fmt.Print(obs.HeatmapString(a.Heatmap(window), 32))
	}
	if *out != "" {
		if err := obs.WriteChromeTraceFile(*out, rec.Events(), a.StallSpans(), *o.ObsInfo); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (open in chrome://tracing or Perfetto)\n", *out)
	}
	if *summary != "" {
		f, err := os.Create(*summary)
		if err != nil {
			return err
		}
		if err := a.Summarize().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *summary)
	}
	if *csvPath != "" {
		full := obs.LinkTable(gauges)
		if err := full.CSVFile(*csvPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	return nil
}

// spark renders values in [0,1] as a unicode sparkline.
func spark(vals []float64) string {
	ramp := []rune(" .:-=+*#%@")
	out := make([]rune, len(vals))
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out[i] = ramp[int(v*float64(len(ramp)-1)+0.5)]
	}
	return string(out)
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	hf := addHostFlags(fs)
	variant := fs.String("variant", "twolevel", "overlap variant")
	steps := fs.Int("steps", 48, "guest steps")
	from := fs.Int("from", 128, "smallest n")
	to := fs.Int("to", 1024, "largest n")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	faults := fs.String("faults", "", "deterministic fault plan applied at every sweep point (see DESIGN.md)")
	adaptSpec := fs.String("adapt", "", "adaptive replication policy applied at every sweep point (see DESIGN.md)")
	fleetN := fs.Int("fleet", 0, "fleet mode: measure this many generated scenarios (plus the clique-chain ladder) into a resumable store instead of a host-size sweep")
	fleetSeed := fs.Uint64("fleet-seed", 1, "fleet scenario stream seed")
	shards := fs.Int("shards", 1, "fleet mode: total shard count")
	shard := fs.Int("shard", 0, "fleet mode: this worker's shard in [0,shards)")
	fleetOut := fs.String("fleet-out", "", "fleet mode: result store path (JSONL, default fleet-shard<shard>.jsonl)")
	fleetWorkers := fs.Int("workers", 4, "fleet mode: concurrent measurement workers")
	manifestOut, liveFlag := manifestFlags(fs)
	fs.Parse(args)

	if *fleetN > 0 {
		mr := startMRun("sweep", args, *manifestOut, *liveFlag)
		p := fleet.Plan{Seed: *fleetSeed, N: *fleetN, Shards: *shards, Shard: *shard}
		return runFleetSweep(os.Stdout, p, *fleetOut, *fleetWorkers, mr, *liveFlag)
	}

	plan, pol, err := validateRunFlags(0, "", *faults, *adaptSpec)
	if err != nil {
		return err
	}
	v, err := parseVariant(*variant)
	if err != nil {
		return err
	}
	mr := startMRun("sweep", args, *manifestOut, *liveFlag)
	var status struct {
		sync.Mutex
		line string
	}
	setStatus := func(format string, a ...any) {
		status.Lock()
		status.line = fmt.Sprintf(format, a...)
		status.Unlock()
	}
	mr.startSampling()
	mr.startLive(*liveFlag, func() string {
		status.Lock()
		defer status.Unlock()
		return status.line
	})
	t := metrics.NewTable(fmt.Sprintf("sweep %s host, variant %s", *hf.kind, v),
		"n", "d_ave", "d_max", "guest", "load", "slowdown", "efficiency")
	var xs, ys []float64
	for n := *from; n <= *to; n *= 2 {
		setStatus("sweep: n=%d (of %d..%d)", n, *from, *to)
		*hf.n = n
		g, err := hf.build()
		if err != nil {
			return err
		}
		pointStart := time.Now()
		out, err := overlap.Simulate(g, overlap.Options{
			Variant: v, Steps: *steps, Seed: 7, Faults: plan, Adapt: pol,
			Telemetry: mr.registry(),
		})
		if err != nil {
			return err
		}
		t.AddRow(n, out.Dave, out.Dmax, out.GuestCols, out.Load, out.Sim.Slowdown, out.Efficiency())
		xs = append(xs, float64(n))
		ys = append(ys, out.Sim.Slowdown)
		if mr != nil {
			mr.m.Sweep = append(mr.m.Sweep, telemetry.SweepPoint{
				N: n, Slowdown: out.Sim.Slowdown, Efficiency: out.Efficiency(),
				Pebbles:     out.Sim.PebblesComputed,
				WallSeconds: time.Since(pointStart).Seconds(),
			})
			mr.m.Pebbles += out.Sim.PebblesComputed
		}
	}
	mr.stopLive()
	t.AddNote("log-log slope of slowdown vs n: %.2f", metrics.LogLogSlope(xs, ys))
	if *csv {
		t.CSV(os.Stdout)
	} else {
		t.Fprint(os.Stdout)
	}
	if mr != nil {
		mr.m.Scenario = fmt.Sprintf("%s host %d..%d variant=%s steps=%d", *hf.kind, *from, *to, v, *steps)
	}
	return mr.finish()
}

func cmdExp(args []string) error {
	fs := flag.NewFlagSet("exp", flag.ExitOnError)
	scaleStr := fs.String("scale", "quick", "experiment scale: quick|full")
	md := fs.Bool("md", false, "emit markdown tables")
	only := fs.String("only", "", "run a single experiment, e.g. E3")
	manifestOut, liveFlag := manifestFlags(fs)
	fs.Parse(args)

	scale, err := expt.ParseScale(*scaleStr)
	if err != nil {
		return err
	}
	mr := startMRun("exp", args, *manifestOut, *liveFlag)
	mr.startSampling()
	if *only != "" {
		e := expt.Get(strings.ToUpper(*only))
		if e == nil {
			return fmt.Errorf("unknown experiment %q", *only)
		}
		fmt.Printf("=== %s: %s (%s) ===\n\n", e.ID, e.Title, e.Paper)
		start := time.Now()
		tables, err := e.Run(scale)
		wall := time.Since(start)
		if err != nil {
			return err
		}
		for _, t := range tables {
			if *md {
				t.Markdown(os.Stdout)
			} else {
				t.Fprint(os.Stdout)
				fmt.Println()
			}
		}
		if mr != nil {
			mr.m.Scenario = fmt.Sprintf("experiment %s scale=%s", e.ID, *scaleStr)
			mr.m.Experiments = []telemetry.ExpTiming{{ID: e.ID, WallSeconds: wall.Seconds()}}
		}
		return mr.finish()
	}
	var status struct {
		sync.Mutex
		line string
	}
	mr.startLive(*liveFlag, func() string {
		status.Lock()
		defer status.Unlock()
		return status.line
	})
	// Render into a buffer while the live line owns the terminal; flush after.
	var buf bytes.Buffer
	out := io.Writer(os.Stdout)
	if mr != nil && mr.live != nil {
		out = &buf
	}
	timings, runErr := expt.RunAllTimed(out, scale, *md, 0, func(done, total int, id string) {
		status.Lock()
		status.line = fmt.Sprintf("exp: %d/%d done (last %s)", done, total, id)
		status.Unlock()
	})
	mr.stopLive()
	if buf.Len() > 0 {
		os.Stdout.Write(buf.Bytes())
	}
	if runErr != nil {
		return runErr
	}
	if mr != nil {
		mr.m.Scenario = fmt.Sprintf("all experiments scale=%s", *scaleStr)
		for _, tm := range timings {
			mr.m.Experiments = append(mr.m.Experiments,
				telemetry.ExpTiming{ID: tm.ID, WallSeconds: tm.Wall.Seconds()})
		}
	}
	return mr.finish()
}
