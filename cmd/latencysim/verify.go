package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"latencyhide/internal/verify"
)

// cmdVerify runs the model-based verification soak: n generated scenarios
// from a seeded stream, each checked by the invariant oracle, both engines
// and every applicable metamorphic relation (see DESIGN.md "Verification").
func cmdVerify(args []string) error {
	return runVerify(args, os.Stdout)
}

func runVerify(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "scenario stream seed")
	n := fs.Int("n", 100, "number of generated scenarios to check")
	fs.Parse(args)
	if *n < 1 {
		return fmt.Errorf("-n must be >= 1, got %d", *n)
	}
	res, err := verify.Soak(*seed, *n)
	if err != nil {
		return err
	}
	res.Summary(w)
	if !res.OK() {
		return fmt.Errorf("verification failed: %d of %d scenarios violated invariants",
			len(res.Failures), res.Scenarios)
	}
	return nil
}
