package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"latencyhide/internal/adapt"
	"latencyhide/internal/telemetry"
	"latencyhide/internal/verify"
)

// cmdVerify runs the model-based verification soak: n generated scenarios
// from a seeded stream, each checked by the invariant oracle, both engines
// and every applicable metamorphic relation (see DESIGN.md "Verification").
func cmdVerify(args []string) error {
	return runVerify(args, os.Stdout)
}

func runVerify(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "scenario stream seed")
	n := fs.Int("n", 100, "number of generated scenarios to check")
	chaos := fs.Bool("chaos", false, "restrict the stream to adversarial regimes (spike/drift/churn, half adaptive)")
	adaptSpec := fs.String("adapt", "", "force this adaptive policy onto every scenario (epoch=E,thresh=F,extra=K,budget=B,mode=any|fault)")
	manifestOut, liveFlag := manifestFlags(fs)
	fs.Parse(args)
	if *n < 1 {
		return fmt.Errorf("-n must be >= 1, got %d", *n)
	}
	gen := verify.Generate
	if *chaos {
		gen = verify.GenerateChaos
	}
	if *adaptSpec != "" {
		pol, err := adapt.Parse(*adaptSpec)
		if err != nil {
			return err
		}
		base := gen
		gen = func(seed uint64, i int) *verify.Scenario {
			sc := base(seed, i)
			sc.Adapt = pol
			return sc
		}
	}
	mr := startMRun("verify", args, *manifestOut, *liveFlag)
	var done atomic.Int64
	mr.startSampling()
	mr.startLive(*liveFlag, func() string {
		return fmt.Sprintf("verify: %d/%d scenarios", done.Load(), *n)
	})
	res, err := verify.SoakGen(*seed, *n, gen, func(d int) { done.Store(int64(d)) })
	mr.stopLive()
	if err != nil {
		return err
	}
	res.Summary(w)
	if mr != nil {
		mr.m.Scenario = fmt.Sprintf("soak seed=%d n=%d", *seed, *n)
		mr.m.Verify = &telemetry.VerifySummary{
			Seed: res.Seed, Scenarios: res.Scenarios, Events: res.Events,
			Relations: res.Relations, Failures: len(res.Failures),
		}
	}
	if err := mr.finish(); err != nil {
		return err
	}
	if !res.OK() {
		return fmt.Errorf("verification failed: %d of %d scenarios violated invariants",
			len(res.Failures), res.Scenarios)
	}
	return nil
}
