package main

import (
	"flag"
	"fmt"

	"latencyhide/internal/guest"
	"latencyhide/internal/layout"
)

// cmdGuest simulates one of the Section 7 guest families (tree, hypercube,
// butterfly, d-dimensional array, ring) on a host, comparing layouts.
func cmdGuest(args []string) error {
	fs := flag.NewFlagSet("guest", flag.ExitOnError)
	hf := addHostFlags(fs)
	kind := fs.String("guest", "hypercube", "guest family: tree|hypercube|butterfly|array2d|array3d|ring")
	size := fs.Int("gn", 6, "guest size parameter (height/dim/levels/side)")
	steps := fs.Int("steps", 8, "guest steps")
	lay := fs.String("layout", "auto", "layout: auto|bfs|identity|bisection|anneal")
	check := fs.Bool("check", false, "verify against the reference executor")
	workers := fs.Int("workers", 0, "parallel engine chunks")
	fs.Parse(args)

	var g guest.Graph
	var natural *layout.Layout
	switch *kind {
	case "tree":
		t := guest.NewBinaryTree(*size)
		g, natural = t, layout.InOrder(t)
	case "hypercube":
		h := guest.NewHypercube(*size)
		g, natural = h, layout.Identity(h.NumNodes())
	case "butterfly":
		b := guest.NewButterfly(*size)
		g, natural = b, layout.RankMajor(b)
	case "array2d":
		a := guest.NewArrayND(*size, *size)
		g, natural = a, layout.BFS(a)
	case "array3d":
		a := guest.NewArrayND(*size, *size, *size)
		g, natural = a, layout.BFS(a)
	case "ring":
		r := guest.NewRing(*size)
		g, natural = r, layout.BFS(r)
	default:
		return fmt.Errorf("unknown guest %q", *kind)
	}

	var l *layout.Layout
	switch *lay {
	case "auto":
		l = natural
	case "bfs":
		l = layout.BFS(g)
	case "identity":
		l = layout.Identity(g.NumNodes())
	case "bisection":
		l = layout.Bisection(g, 1)
	case "anneal":
		l = layout.Anneal(g, natural, 1, 0)
	default:
		return fmt.Errorf("unknown layout %q", *lay)
	}

	host, err := hf.build()
	if err != nil {
		return err
	}
	m := layout.Measure(g, l)
	fmt.Printf("host:  %s\n", host)
	fmt.Printf("guest: %s (%d nodes, %d edges)\n", g.Name(), g.NumNodes(), m.Edges)
	fmt.Printf("layout %s: cutwidth=%d max_stretch=%d avg_stretch=%.2f\n",
		l.Name, m.CutWidth, m.MaxStretch, m.AvgStretch)
	r, err := layout.SimulateOnNOW(g, l, host, layout.Options{
		Steps: *steps, Seed: 7, Check: *check, Workers: *workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("run: guest_steps=%d host_steps=%d slowdown=%.2f load=%d redundancy=%.2f\n",
		r.Sim.GuestSteps, r.Sim.HostSteps, r.Sim.Slowdown, r.Sim.Load, r.Sim.Redundancy)
	if r.Sim.Checked {
		fmt.Println("check: all database replicas match the sequential reference executor")
	}
	return nil
}
