package main

import (
	"flag"
	"fmt"
	"os"

	"latencyhide/internal/embedding"
	"latencyhide/internal/metrics"
	"latencyhide/internal/network"
	"latencyhide/internal/overlap"
	"latencyhide/internal/tree"
)

// cmdPlan analyses a host and recommends OVERLAP parameters: it embeds the
// line, runs the interval tree, evaluates the Theorem 1 schedule bound, and
// sizes the Theorem 4/5 replication margins to the measured delay profile.
func cmdPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	hf := addHostFlags(fs)
	c := fs.Int("c", 4, "tree constant (> 2)")
	fs.Parse(args)

	g, err := hf.build()
	if err != nil {
		return err
	}
	line, err := embedding.EmbedBest(g)
	if err != nil {
		return err
	}
	es := line.Stats(g)
	tr := tree.Build(line.Delays, *c)
	if err := tr.CheckLemmas(); err != nil {
		return err
	}
	sched, err := overlap.BuildSchedule(tr, 1)
	if err != nil {
		return err
	}

	dmax := 0
	for _, d := range line.Delays {
		if d > dmax {
			dmax = d
		}
	}
	sMax := network.ISqrt(dmax)
	sAve := network.ISqrt(int(tr.Dave + 0.5))
	if sAve < 1 {
		sAve = 1
	}

	fmt.Printf("host: %s\n", g)
	fmt.Printf("embedded line: d_ave=%.2f d_max=%d dilation=%d (best of 3 roots)\n",
		es.LineAvgDelay, dmax, es.Dilation)
	fmt.Printf("interval tree: live=%d/%d killed=(%d,%d) guest units n'=%d\n",
		tr.LiveCount(), tr.N, tr.KilledStage1, tr.KilledStage2, tr.GuestSize())
	fmt.Printf("Theorem 1 schedule: one round of %d guest steps within %d host steps (slowdown bound %.0f)\n\n",
		sched.RoundSteps(), sched.RoundBound(), sched.SlowdownBound())

	t := metrics.NewTable("recommended configurations",
		"goal", "variant", "params", "load/unit", "expected slowdown")
	t.AddRow("min memory", "loadone", "-", 1,
		fmt.Sprintf("~d_max = %d (no margins)", dmax))
	t.AddRow("hide average delay", "twolevel",
		fmt.Sprintf("-beta 2 (s=sqrt(d_ave)=%d)", sAve), (2+2)*sAve,
		fmt.Sprintf("~5*sqrt(d_ave) = %d", 5*sAve))
	t.AddRow("hide worst link", "twolevel",
		fmt.Sprintf("-beta 2 (SqrtD=sqrt(d_max)=%d)", sMax), (2+2)*sMax,
		fmt.Sprintf("~5*sqrt(d_max) = %d", 5*sMax))
	beta := overlap.DefaultBeta(tr.Dave, tr.N, 512)
	t.AddRow("work-preserving", "workefficient",
		fmt.Sprintf("-beta %d", beta), beta,
		"~load (efficiency ~1)")
	t.Fprint(os.Stdout)
	fmt.Println("\nnote: expected slowdowns are the mechanism's scale, not guarantees; run `latencysim run -check` to measure")
	return nil
}
