package latencyhide_test

import (
	"bytes"
	"math"
	"testing"

	"latencyhide"
)

func TestFacadeEndToEnd(t *testing.T) {
	host := latencyhide.RandomNOW(128, 4, latencyhide.BimodalDelay{Near: 1, Far: 64, P: 0.03}, 1)
	out, err := latencyhide.Simulate(host, latencyhide.Options{
		Variant: latencyhide.TwoLevel,
		Beta:    2,
		Steps:   32,
		Seed:    42,
		Check:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Sim.Checked || out.Dilation > 3 || out.GuestCols < 64 {
		t.Fatalf("outcome %+v", out)
	}

	line, err := latencyhide.EmbedLine(host)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := latencyhide.SingleCopyBaseline(line.Delays, out.GuestCols, 32, 42)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Sim.Slowdown <= 0 {
		t.Fatal("baseline")
	}
	if latencyhide.SlowClockSlowdown(line.Delays) < 65 {
		t.Fatal("slow clock should track d_max")
	}
}

func TestFacadeUniformAndMesh(t *testing.T) {
	u, err := latencyhide.SimulateUniform(8, 64, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Checked || u.Slowdown < float64(u.S) {
		t.Fatalf("uniform %+v", u)
	}
	m, err := latencyhide.SimulateMeshOnUniformLine(8, 8, 8, latencyhide.MeshOptions{
		Rows: 8, Steps: 4, Seed: 3, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Sim.Checked {
		t.Fatal("mesh unchecked")
	}
	host := latencyhide.Mesh2D(8, 8, latencyhide.ExpDelay{Mean: 2}, 5)
	mn, err := latencyhide.SimulateMeshOnNOW(host, latencyhide.MeshOptions{Rows: 4, Steps: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if mn.Sim.Slowdown <= 0 {
		t.Fatal("mesh on NOW")
	}
}

func TestFacadeCustomGuestOp(t *testing.T) {
	// run a float kernel through the raw engine via the facade
	op := latencyhide.GuestOp(func(_ uint64, _ int, _ int, self uint64, ns []uint64) uint64 {
		u := math.Float64frombits(self)
		for _, v := range ns {
			u += math.Float64frombits(v)
		}
		return math.Float64bits(u / float64(len(ns)+1))
	})
	a, err := latencyhide.UniformBlocks(4, 4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := latencyhide.RunSimulation(latencyhide.SimConfig{
		Delays: []int{3, 3, 3},
		Guest: latencyhide.GuestSpec{
			Graph: latencyhide.NewGuestLine(a.Columns),
			Steps: 8,
			Op:    op,
			Init:  func(node int, _ int64) uint64 { return math.Float64bits(float64(node)) },
		},
		Assign: a,
		Check:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Checked {
		t.Fatal("unchecked")
	}
	ref, err := latencyhide.GuestReference(latencyhide.GuestSpec{
		Graph: latencyhide.NewGuestLine(a.Columns),
		Steps: 8,
		Op:    op,
		Init:  func(node int, _ int64) uint64 { return math.Float64bits(float64(node)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64frombits(ref.Value(3, 8)) <= 0 {
		t.Fatal("kernel produced nonsense")
	}
}

func TestFacadeExperimentsSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	// run the cheapest experiment through the facade entry point by
	// filtering... RunExperiments runs all; quick scale keeps it fast.
	if err := latencyhide.RunExperiments(&buf, latencyhide.Quick, true); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestFacadeLowerBoundHosts(t *testing.T) {
	h1 := latencyhide.H1(256)
	if h1.MaxDelay() != 16 {
		t.Fatalf("H1 d_max %d", h1.MaxDelay())
	}
	h2 := latencyhide.H2(256)
	if h2.NumSegments() < 3 {
		t.Fatal("H2 segments")
	}
	cc := latencyhide.CliqueChain(6)
	if cc.NumNodes() != 36 {
		t.Fatal("clique chain")
	}
}

func TestFacadeDataflowAndExtensions(t *testing.T) {
	df, err := latencyhide.SimulateDataflow(6, 49, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !df.Checked || df.Replication != 1 {
		t.Fatalf("%+v", df)
	}
	g := latencyhide.NewGuestHypercube(4)
	l := latencyhide.LayoutAnneal(g, latencyhide.LayoutGray(g), 1, 2000)
	m := latencyhide.LayoutMeasure(g, l)
	if m.Edges != 32 {
		t.Fatalf("hypercube(4) has %d edges", m.Edges)
	}
	host := latencyhide.CCC(4, latencyhide.ConstDelay(2), 1)
	if host.Stats().MaxDegree != 3 {
		t.Fatal("CCC degree")
	}
	delays := make([]int, 15)
	for i := range delays {
		delays[i] = 1
	}
	r, err := latencyhide.SimulateGuest(latencyhide.NewGuestArrayND(4, 4), latencyhide.LayoutBFS(latencyhide.NewGuestArrayND(4, 4)), delays,
		latencyhide.GuestLayoutOptions{Steps: 3, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Checked {
		t.Fatal("unchecked")
	}
}
