# latencyhide — build / test / reproduce targets

GO ?= go
BENCH_BASELINE ?= BENCH_1.json
BENCH_PATTERN  ?= Engine
BENCH_TIME     ?= 3x

.PHONY: all build test race bench bench-baseline bench-all ci experiments examples clean

all: build test

# Everything the CI workflow runs (see .github/workflows/ci.yml).
# staticcheck runs when installed (CI installs it; locally it is optional).
ci:
	$(GO) build ./...
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	$(GO) test -race ./...

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim ./internal/overlap ./internal/mesharray

# Engine benchmark regression harness: run the engine micro-benchmarks and
# compare pebbles/sec against the committed baseline ($(BENCH_BASELINE)),
# failing on >10% regressions. With no baseline present, record one instead.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -count 1 . | tee bench.out
	@if [ -f $(BENCH_BASELINE) ]; then \
		$(GO) run ./cmd/benchcmp -baseline $(BENCH_BASELINE) bench.out; \
	else \
		$(GO) run ./cmd/benchcmp -write $(BENCH_BASELINE) bench.out; \
	fi

# Re-record the baseline (after an intentional perf change).
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -count 1 . | tee bench.out
	$(GO) run ./cmd/benchcmp -write $(BENCH_BASELINE) bench.out

# The full benchmark suite (every experiment bench), no comparison.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the full paper reproduction record (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -scale full -o EXPERIMENTS-data.md
	$(GO) run ./cmd/experiments -scale full -csvdir experiments-csv

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heatring
	$(GO) run ./examples/kvreplay
	$(GO) run ./examples/mesh2d
	$(GO) run ./examples/butterfly
	$(GO) run ./examples/sortarray

clean:
	rm -rf experiments-csv bench.out
