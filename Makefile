# latencyhide — build / test / reproduce targets

GO ?= go

.PHONY: all build test race bench ci experiments examples clean

all: build test

# Everything the CI workflow runs (see .github/workflows/ci.yml).
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim ./internal/overlap ./internal/mesharray

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the full paper reproduction record (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -scale full -o EXPERIMENTS-data.md
	$(GO) run ./cmd/experiments -scale full -csvdir experiments-csv

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heatring
	$(GO) run ./examples/kvreplay
	$(GO) run ./examples/mesh2d
	$(GO) run ./examples/butterfly
	$(GO) run ./examples/sortarray

clean:
	rm -rf experiments-csv
