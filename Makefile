# latencyhide — build / test / reproduce targets

GO ?= go
BENCH_BASELINE ?= BENCH_1.json
BENCH_PATTERN  ?= Engine|Telemetry|FaultQuery
BENCH_TIME     ?= 3x

COVER_MIN ?= 80

.PHONY: all build test race bench bench-baseline bench-diff bench-telemetry-gate bench-parallel-gate bench-fault-gate bench-mem-gate bench-huge-smoke bench-all ci check-binaries cover verify chaos twin-gate fleet experiments examples clean

all: build test

# Everything the CI workflow runs (see .github/workflows/ci.yml).
# staticcheck runs when installed (CI installs it; locally it is optional).
ci: check-binaries
	$(GO) build ./...
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	$(GO) test -race -shuffle=on ./...

# Fail if any tracked file is a compiled binary (ELF or Mach-O magic) or a
# test/benchmark artifact by name (bench.out, cover.out, *.test, fleet
# stores): build outputs belong in .gitignore, never in the repository.
check-binaries:
	@bad=""; for f in $$(git ls-files); do \
		[ -f "$$f" ] || continue; \
		case "$$(basename "$$f")" in \
			bench.out|cover.out|*.test|fleet-shard*.jsonl) bad="$$bad $$f"; continue;; \
		esac; \
		magic=$$(head -c 4 "$$f" | od -An -tx1 | tr -d ' \n'); \
		case "$$magic" in \
			7f454c46|feedface|feedfacf|cefaedfe|cffaedfe) bad="$$bad $$f";; \
		esac; \
	done; \
	if [ -n "$$bad" ]; then echo "tracked binaries or build artifacts:$$bad"; exit 1; fi; \
	echo "check-binaries: no tracked binaries"

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

# Coverage gate: the statement coverage of the whole module must not fall
# below COVER_MIN percent (the seed baseline; currently measured 83.9).
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub("%","",$$3); print $$3 }'); \
	echo "total coverage: $$total% (gate $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }'

# Model-based verification soak (see DESIGN.md "Verification").
verify:
	$(GO) run -race ./cmd/latencysim verify -seed 1 -n 200

# Adversarial-regime soak: every scenario carries a spike/drift/churn plan
# and every other one runs the adaptive controller (see DESIGN.md §10).
chaos:
	$(GO) run -race ./cmd/latencysim verify -chaos -seed 1 -n 200

# Analytical-twin gate: measure a fresh scenario fleet and require every
# theorem family's MAPE under its frozen ceiling with zero certified-floor
# violations (see DESIGN.md §11). Nonzero exit on any breach.
twin-gate:
	$(GO) run ./cmd/latencysim twin -report -seed 1 -n 500

# Sharded fleet sweep into resumable JSONL stores (kill and re-run freely;
# finished scenarios are never recomputed). Join with:
#   go run ./cmd/latencysim twin -report -store 'fleet-shard*.jsonl'
FLEET_N      ?= 2000
FLEET_SHARDS ?= 4
fleet:
	@for s in $$(seq 0 $$(( $(FLEET_SHARDS) - 1 ))); do \
		$(GO) run ./cmd/latencysim sweep -fleet $(FLEET_N) -shards $(FLEET_SHARDS) -shard $$s & \
	done; wait
	$(GO) run ./cmd/latencysim twin -report -store 'fleet-shard*.jsonl'

race:
	$(GO) test -race ./internal/sim ./internal/overlap ./internal/mesharray

# Engine benchmark regression harness: run the engine micro-benchmarks and
# compare pebbles/sec against the committed baseline ($(BENCH_BASELINE)),
# failing on >10% regressions. With no baseline present, record one instead.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -count 1 . | tee bench.out
	@if [ -f $(BENCH_BASELINE) ]; then \
		$(GO) run ./cmd/benchcmp -baseline $(BENCH_BASELINE) bench.out; \
	else \
		$(GO) run ./cmd/benchcmp -write $(BENCH_BASELINE) bench.out; \
	fi

# Re-record the baseline (after an intentional perf change).
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(BENCH_TIME) -count 1 . | tee bench.out
	$(GO) run ./cmd/benchcmp -write $(BENCH_BASELINE) bench.out

# Diff the newest two committed BENCH_*.json records, failing on a >15%
# sequential-engine regression (parallel lines are reported but ungated).
bench-diff:
	$(GO) run ./cmd/benchcmp -diff-latest .

# Tight telemetry-disabled gate: the sequential engine with a nil registry
# must stay within 2% of the previous committed baseline (deterministic —
# both records are committed files, no benchmarks run here).
bench-telemetry-gate:
	$(GO) run ./cmd/benchcmp -diff-latest . -threshold 0.02 -only EngineSequential

# Same deterministic 2% gate for the 4-worker parallel engine (-gate-all
# because parallel benchmarks sit outside the default sequential-only gate).
bench-parallel-gate:
	$(GO) run ./cmd/benchcmp -diff-latest . -threshold 0.02 -only EngineParallel4 -gate-all

# Deterministic 2% faults-disabled gate, mirroring bench-telemetry-gate:
# the engine with Config.Faults nil must pay nothing for the regime
# machinery (one pointer check per run, no per-injection queries). The gate
# arms itself: until a committed baseline records FaultQueryOff it reports
# and passes (diffing records that predate the benchmark would always be
# vacuous); once one does, absence or regression fails the build.
bench-fault-gate:
	@latest=$$(ls BENCH_*.json | sort -t_ -k2 -n | tail -1); \
	if grep -q FaultQueryOff "$$latest"; then \
		$(GO) run ./cmd/benchcmp -diff-latest . -threshold 0.02 -only FaultQueryOff -gate-all; \
	else \
		echo "bench-fault-gate: $$latest predates BenchmarkFaultQueryOff; gate arms with the next bench-baseline"; \
	fi

# Deterministic memory gate: bytes/pebble on the engine benchmarks must not
# grow more than 10% PR-over-PR. Unlike wall time, allocation per pebble is
# nearly machine-independent, so the memory gate covers every compared
# engine benchmark (both records are committed files, no benchmarks run
# here). The 100% time threshold neutralizes the wall-clock gate so this
# target fails on memory only.
bench-mem-gate:
	$(GO) run ./cmd/benchcmp -diff-latest . -threshold 1.0 -mem-threshold 0.10 -only Engine

# Reduced-scale EngineHuge smoke: the 10M-pebble tier's code path and its
# declared RSS budget, scaled down to a line CI can run in seconds. The
# pebble floor is waived at reduced scale but the RSS gate still applies —
# a catastrophic working-set blowup shows at any size.
HUGE_SMOKE_HOSTS ?= 1024
bench-huge-smoke:
	LATENCYHIDE_HUGE_HOSTS=$(HUGE_SMOKE_HOSTS) $(GO) test -run '^$$' -bench BenchmarkEngineHuge -benchtime 1x -count 1 .

# The full benchmark suite (every experiment bench), no comparison.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the full paper reproduction record (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -scale full -o EXPERIMENTS-data.md
	$(GO) run ./cmd/experiments -scale full -csvdir experiments-csv

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heatring
	$(GO) run ./examples/kvreplay
	$(GO) run ./examples/mesh2d
	$(GO) run ./examples/butterfly
	$(GO) run ./examples/sortarray

clean:
	rm -rf experiments-csv bench.out cover.out fleet-shard*.jsonl
