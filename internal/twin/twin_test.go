package twin_test

// Canonical-topology tests: every predictor's floor and closed form is
// checked against hand-computed theorem values on the constructions the
// paper itself uses — uniform-delay lines, the Theorem 4 overlapping
// blocks, H1 (Theorem 9), H2 (Theorem 10), the Section 4 clique chain,
// and torus/hypercube guests — plus the degenerate inputs (single node,
// single host, zero steps, zero delays).
//
// The test package is external on purpose: internal/twin itself imports
// nothing from this repository (so the twin cannot lean on the engine),
// while the tests build real topologies with the production constructors.

import (
	"math"
	"testing"

	"latencyhide/internal/assign"
	"latencyhide/internal/embedding"
	"latencyhide/internal/guest"
	"latencyhide/internal/lower"
	"latencyhide/internal/network"
	"latencyhide/internal/tree"
	"latencyhide/internal/twin"
)

func almost(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %.9f, want %.9f", name, got, want)
	}
}

func constDelays(n, d int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = d
	}
	return out
}

// lineDelays extracts the link delays of a Network that is a linear array.
func lineDelays(g *network.Network) []int {
	out := make([]int, g.NumNodes()-1)
	for i := range out {
		out[i] = g.LinkDelay(i, i+1)
	}
	return out
}

// Uniform-delay line, one column per host: adjacent guest nodes sit one
// d-delay link apart, so the ping-pong floor is exactly d — the Theorem 2
// regime before replication buys the sqrt.
func TestFloorsLineConstDelay(t *testing.T) {
	for _, d := range []int{1, 3, 5} {
		a, err := assign.SingleCopyBlocks(6, 6)
		if err != nil {
			t.Fatal(err)
		}
		g := guest.NewLinearArray(6)
		prop, cert := twin.Floors(g, a.Holders, constDelays(5, d), 9)
		almost(t, "prop", prop, float64(d))
		// cert: the w=1 chain alone gives 2*d*floor(8/2)/9 = 8d/9, no longer
		// window beats it on a constant-delay line (2*w*d*floor(8/2w) is
		// maximised at w=1 and w=4, both 8d/9), and the bound never reports
		// below the trivial slowdown 1.
		almost(t, "cert", cert, math.Max(1, float64(8*d)/9))
	}
}

// Theorem 4's overlapping blocks (stride s = sqrt(d) = 4, width 3s) on a
// uniform d=16 line: the floor climbs toward sqrt(d) = 4 but stays below
// it — the exact maximum is ratio 16*g/w with g = ceil((w-3)/4) - 2
// holder hops over w guest hops, which is 4*(1 - 3/w) < 4. Within the
// documented BFS window (W = 32 for m = 256 columns) the maximising pair
// is u=3, v=32: 16*6/29 = 96/29. This is the structural content of
// Theorem 2: replication caps the per-hop transfer at sqrt(d).
func TestFloorsTheorem4UniformBlocks(t *testing.T) {
	a, err := assign.UniformBlocks(64, 4, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Columns != 256 {
		t.Fatalf("columns = %d, want 256", a.Columns)
	}
	g := guest.NewLinearArray(a.Columns)
	prop, cert := twin.Floors(g, a.Holders, constDelays(63, 16), 16)
	almost(t, "prop", prop, 96.0/29)
	if prop >= 4 {
		t.Fatalf("prop = %.4f, must stay below sqrt(d) = 4", prop)
	}
	// Every positively-separated pair has w >= 9, so floor((T-1)/(2w)) = 0
	// at T=16 and the finite-horizon bound degenerates to 1.
	almost(t, "cert", cert, 1)
}

// H1 (Theorem 9): every sqrt(n)-th link has delay sqrt(n). A single-copy
// assignment puts some adjacent guest pair across a slow link, so the
// floor is exactly d_max = sqrt(n) — the theorem's bound, realised by the
// pair (3, 4) ping-ponging over the first slow link.
func TestFloorsH1SingleCopy(t *testing.T) {
	net := network.H1(16)
	a, err := assign.SingleCopyBlocks(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	g := guest.NewLinearArray(16)
	prop, cert := twin.Floors(g, a.Holders, lineDelays(net), 12)
	almost(t, "prop", prop, 4) // d_max = sqrt(16)
	if net.MaxDelay() != 4 {
		t.Fatalf("H1(16) d_max = %d, want 4", net.MaxDelay())
	}
	almost(t, "cert", cert, float64(2*4*5)/12) // w=1, dist=4, floor(11/2)=5
}

// H2 (Theorem 10): a two-copy assignment on the level-box host floors at
// exactly log2(n) — the Fact 4 mechanism (any pair of level-l segments is
// min-segment-size * log(n)/2 delay apart) surfaces through the generic
// ping-pong bound with no H2-specific code in the twin.
func TestFloorsH2TwoCopy(t *testing.T) {
	spec := network.H2(256)
	n := spec.Net.NumNodes()
	a, err := assign.ReplicatedBlocks(n, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := guest.NewLinearArray(n)
	prop, _ := twin.Floors(g, a.Holders, lineDelays(spec.Net), 16)
	almost(t, "prop", prop, math.Log2(256))
	if prop < math.Log2(float64(spec.N)) {
		t.Fatalf("prop = %.4f below the Omega(log n) = %.4f bound", prop, math.Log2(float64(spec.N)))
	}
}

// Section 4 clique chain: after embedding, the production Overlap
// assignment floors at n+2 (adjacent cliques are one n-delay link apart,
// and the guest hop between them is 1) — far above the certified n^(1/4)
// lower bound, as the paper predicts for any simulation.
func TestFloorsCliqueChain(t *testing.T) {
	const k = 6
	net := network.CliqueChain(k)
	line, err := embedding.Embed(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := assign.Overlap(tree.Build(line.Delays, 4))
	if err != nil {
		t.Fatal(err)
	}
	g := guest.NewLinearArray(a.Columns)
	prop, cert := twin.Floors(g, a.Holders, line.Delays, 16)
	almost(t, "prop", prop, float64(k*k+2))
	if prop < lower.CliqueChainBestLB(k) {
		t.Fatalf("prop = %.4f below the certified n^(1/4) = %.4f", prop, lower.CliqueChainBestLB(k))
	}
	if cert < lower.CliqueChainBestLB(k) {
		t.Fatalf("cert = %.4f below the certified n^(1/4) = %.4f", cert, lower.CliqueChainBestLB(k))
	}
}

// A 4x4 torus guest, one node per unit-delay host: the wrap edge joins
// rows 0 and 3 at guest distance 1 but host distance cols*(rows-1) = 12,
// so the floor is exactly 12 — guest wrap-arounds are what make
// non-line guests expensive on a line host.
func TestFloorsTorusGuest(t *testing.T) {
	g := guest.NewTorus2D(4, 4)
	a, err := assign.SingleCopyBlocks(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	prop, cert := twin.Floors(g, a.Holders, constDelays(15, 1), 9)
	almost(t, "prop", prop, 12)
	almost(t, "cert", cert, float64(2*12*4)/9) // w=1, dist=12, floor(8/2)=4
}

// A dim-3 hypercube guest on 8 hosts with delay-3 links: the top-bit edge
// (0, 4) spans half the line at guest distance 1, so the floor is
// d * m/2 = 3 * 4 = 12.
func TestFloorsHypercubeGuest(t *testing.T) {
	g := guest.NewHypercube(3)
	a, err := assign.SingleCopyBlocks(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	prop, cert := twin.Floors(g, a.Holders, constDelays(7, 3), 9)
	almost(t, "prop", prop, 12)
	almost(t, "cert", cert, float64(2*12*4)/9)
}

func TestFloorsDegenerate(t *testing.T) {
	one := guest.NewLinearArray(1)
	prop, cert := twin.Floors(one, [][]int{{0}}, nil, 8)
	if prop != 0 || cert != 1 {
		t.Fatalf("single node: got (%v, %v), want (0, 1)", prop, cert)
	}
	// All guest nodes on one host: every holder distance is 0.
	g := guest.NewLinearArray(4)
	prop, cert = twin.Floors(g, [][]int{{0}, {0}, {0}, {0}}, nil, 8)
	if prop != 0 || cert != 1 {
		t.Fatalf("single host: got (%v, %v), want (0, 1)", prop, cert)
	}
	// Zero steps: no horizon to certify.
	a, _ := assign.SingleCopyBlocks(4, 4)
	prop, cert = twin.Floors(g, a.Holders, constDelays(3, 2), 0)
	if prop != 0 || cert != 1 {
		t.Fatalf("zero steps: got (%v, %v), want (0, 1)", prop, cert)
	}
	// Zero-delay links: distances collapse, floors degenerate.
	prop, cert = twin.Floors(g, a.Holders, constDelays(3, 0), 8)
	if prop != 0 || cert != 1 {
		t.Fatalf("zero delays: got (%v, %v), want (0, 1)", prop, cert)
	}
}

// The closed forms the report prints next to the structural prediction.
func TestPredictorForms(t *testing.T) {
	cases := []struct {
		name string
		s    twin.Stats
		want float64
	}{
		{"uniform", twin.Stats{DAve: 16}, 4},                // sqrt(d)
		{"combined", twin.Stats{DAve: 4, Hosts: 8}, 2 * 27}, // sqrt(d) log^3 n
		{"singlecopy", twin.Stats{DMax: 7}, 7},              // d_max
		{"cliquechain", twin.Stats{Cols: 81}, 3},            // n^(1/4)
		{"uniform", twin.Stats{DAve: 0}, 1},                 // degenerate d=0
		{"combined", twin.Stats{DAve: 1, Hosts: 1}, 1},      // degenerate n=1
		{"singlecopy", twin.Stats{DMax: 0}, 1},              // degenerate d=0
		{"cliquechain", twin.Stats{Cols: 0}, 1},             // degenerate n=0
	}
	for _, c := range cases {
		p := twin.ByName(c.name)
		if p == nil {
			t.Fatalf("no predictor %q", c.name)
		}
		almost(t, c.name+" form", p.Form(c.s), c.want)
	}
	if twin.ByName("nope") != nil {
		t.Fatal("ByName(nope) should be nil")
	}
	if got := len(twin.Predictors()); got != 4 {
		t.Fatalf("predictors = %d, want 4", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		s    twin.Stats
		want string
	}{
		{twin.Stats{Rep: 1, DAve: 3, DMax: 9}, "singlecopy"},
		{twin.Stats{Rep: 2, DAve: 4, DMax: 4}, "uniform"},  // const delays
		{twin.Stats{Rep: 3, DAve: 4, DMax: 6}, "uniform"},  // dmax = 1.5 dave
		{twin.Stats{Rep: 2, DAve: 4, DMax: 7}, "combined"}, // heterogeneous
		{twin.Stats{Rep: 0, DAve: 1, DMax: 1}, "singlecopy"},
	}
	for _, c := range cases {
		if got := twin.Classify(c.s).Name; got != c.want {
			t.Errorf("Classify(%+v) = %s, want %s", c.s, got, c.want)
		}
	}
}

func TestPredictClampsAndBands(t *testing.T) {
	p := twin.ByName("uniform")
	// Tiny stats drive the affine form below 1; the point and the band's
	// low edge must clamp there (slowdown < 1 is impossible).
	b := p.Predict(twin.Stats{Load: 1, PropFloor: 0})
	if b.Point != 1 || b.Lo != 1 {
		t.Fatalf("clamp: got %+v, want Point=Lo=1", b)
	}
	if b.Hi < b.Point || b.Lo > b.Point {
		t.Fatalf("band out of order: %+v", b)
	}
	big := p.Predict(twin.Stats{Load: 10, PropFloor: 20})
	if !big.Contains(big.Point) {
		t.Fatalf("band must contain its own point: %+v", big)
	}
	if big.Contains(big.Hi+1) || big.Contains(0.5) {
		t.Fatalf("band contains out-of-range values: %+v", big)
	}
}

// Fit must recover an exactly-linear relation and report ~0 spread.
func TestFitRecoversLinear(t *testing.T) {
	var samples []twin.Sample
	for load := 1; load <= 6; load++ {
		for _, f := range []float64{0, 1.5, 3, 7} {
			s := twin.Stats{Load: load, PropFloor: f}
			samples = append(samples, twin.Sample{
				Stats:    s,
				Measured: 2 + 0.5*float64(load) + 1.5*f,
			})
		}
	}
	c, err := twin.Fit(samples, false)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "C0", c.C0, 2)
	almost(t, "CLoad", c.CLoad, 0.5)
	almost(t, "CFloor", c.CFloor, 1.5)
	if c.Spread > 1e-9 {
		t.Fatalf("spread = %v, want ~0", c.Spread)
	}
	// dropLoad: constant-load corpora (the clique-chain ladder) must fit
	// the two-column basis instead of failing on a singular system.
	var flat []twin.Sample
	for _, f := range []float64{2, 5, 9, 14} {
		flat = append(flat, twin.Sample{
			Stats:    twin.Stats{Load: 1, PropFloor: f},
			Measured: 1 + 0.9*f,
		})
	}
	c2, err := twin.Fit(flat, true)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, "C0", c2.C0, 1)
	almost(t, "CFloor", c2.CFloor, 0.9)
	if c2.CLoad != 0 {
		t.Fatalf("dropLoad fit must zero CLoad, got %v", c2.CLoad)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := twin.Fit(nil, false); err == nil {
		t.Fatal("empty fit must error")
	}
	// Identical rows make the normal equations singular.
	same := twin.Sample{Stats: twin.Stats{Load: 2, PropFloor: 3}, Measured: 5}
	if _, err := twin.Fit([]twin.Sample{same, same, same, same}, false); err == nil {
		t.Fatal("singular fit must error")
	}
}

func TestMAPE(t *testing.T) {
	p := &twin.Predictor{Fitted: twin.Constants{C0: 0, CLoad: 1, CFloor: 0, Spread: 0.1}}
	samples := []twin.Sample{
		{Stats: twin.Stats{Load: 4}, Measured: 5},  // pred 4, err 0.2
		{Stats: twin.Stats{Load: 10}, Measured: 8}, // pred 10, err 0.25
	}
	almost(t, "mape", p.MAPE(samples), (0.2+0.25)/2)
	if !math.IsNaN(p.MAPE(nil)) {
		t.Fatal("MAPE of no samples must be NaN")
	}
}
