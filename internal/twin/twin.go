// Package twin is the analytical twin of the simulator: closed-form
// slowdown predictors for the paper's theorems, evaluated from a scenario's
// topology statistics alone — no simulation. Each theorem family pairs two
// quantities the paper reasons with:
//
//   - a work term, the assignment load (Theorem 2's "load O(sqrt d)"
//     budget, Theorem 3's work-efficiency constraint), and
//   - a propagation term, the ping-pong dependency floor of Theorem 9
//     generalised to arbitrary guest graphs: for guest nodes u, v at guest
//     distance w, pebble (u, t) transitively requires (v, t-w) and vice
//     versa, so sustained slowdown is at least dist(holders(u),
//     holders(v))/w.
//
// On the paper's canonical constructions the propagation term reduces to
// exactly the theorems' closed forms — d/s = Theta(sqrt d) for the
// Theorem 4 overlapping blocks on a uniform-delay line, d_max = sqrt(n)
// for single-copy assignments on H1 (Theorem 9), Omega(log n) for two-copy
// assignments on H2 (Theorem 10), and ~n (>= the certified n^(1/4)) for
// the Section 4 clique chain — the unit tests pin those reductions against
// hand-computed values. Across the verify generator's scenario space the
// twin's point prediction is the affine combination
//
//	slowdown ~= C0 + CLoad*Load + CFloor*PropFloor
//
// with per-theorem constants fitted ONCE from the seed corpus (seed 1,
// 2000 fault-free scenarios; `latencysim twin -fit` regenerates them — see
// DESIGN.md §11 for the fit and the holdout methodology). Divergence
// beyond a family's MAPE ceiling is a test failure: either the engine
// regressed or the model no longer explains the system.
//
// The package is dependency-free by design: predictors consume plain
// numbers (Stats), and the floor computation takes any guest graph through
// the minimal GuestGraph interface, so the twin can never "cheat" by
// calling back into the engine.
package twin

import (
	"fmt"
	"math"
	"sort"
)

// GuestGraph is the slice of guest.Graph the floor computation needs;
// guest.Graph satisfies it structurally.
type GuestGraph interface {
	NumNodes() int
	Neighbors(i int) []int
}

// Stats are the closed-form topology statistics of one scenario: the host
// line, the replication structure and the two theorem terms. Everything
// here is computable from the scenario description alone.
type Stats struct {
	// Hosts is the host line size n; Cols the guest column count.
	Hosts, Cols int
	// Load is the maximum number of databases on any host (the work term).
	Load int
	// Rep is the nominal replication factor (1 = single copy).
	Rep int
	// Steps is the guest horizon T the run simulates.
	Steps int
	// Bandwidth is the per-link bandwidth in pebbles/step (the engine's
	// realized value, never 0).
	Bandwidth int
	// DAve and DMax summarise the host line's link delays.
	DAve float64
	DMax int
	// PropFloor is the generalised ping-pong floor: max over guest pairs
	// (u, v) at guest distance w of minHolderDist(u, v)/w. It is the
	// sustained-rate bound of Theorem 9's argument and the twin's main
	// regressor.
	PropFloor float64
	// CertFloor is the finite-horizon certified bound derived from the
	// same chains: max over pairs of 2*dist*floor((T-1)/(2w))/T, never
	// below 1. Every measured slowdown must respect it exactly; the
	// report treats a violation as a hard failure.
	CertFloor float64
}

// Floors computes the generalised ping-pong propagation terms for a guest
// graph assigned to a host line: holders[c] lists the line positions
// replicating guest node c (ascending), delays the n-1 link delays, and
// steps the guest horizon T. The search window is 2*sqrt(m) guest hops —
// wide enough that on every host in this repository the maximising pair is
// inside it (doubling the window moves no corpus floor).
//
// Degenerate inputs are well-defined: a single guest node (or single host)
// has no pairs and floors (0, 1); zero-delay links contribute distance 0.
func Floors(g GuestGraph, holders [][]int, delays []int, steps int) (propFloor, certFloor float64) {
	m := g.NumNodes()
	certFloor = 1
	if m < 2 || steps < 1 {
		return 0, certFloor
	}
	prefix := make([]int64, len(delays)+1)
	for i, d := range delays {
		prefix[i+1] = prefix[i] + int64(d)
	}
	dist := func(p, q int) int64 {
		if p > q {
			p, q = q, p
		}
		return prefix[q] - prefix[p]
	}
	window := 1
	for window*window < 4*m {
		window++
	}
	depth := make([]int, m)
	queue := make([]int, 0, m)
	for u := 0; u < m; u++ {
		for i := range depth {
			depth[i] = -1
		}
		depth[u] = 0
		queue = append(queue[:0], u)
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			if depth[x] >= window {
				continue
			}
			for _, y := range g.Neighbors(x) {
				if depth[y] < 0 {
					depth[y] = depth[x] + 1
					queue = append(queue, y)
				}
			}
		}
		for v := u + 1; v < m; v++ {
			w := depth[v]
			if w < 1 {
				continue
			}
			best := int64(-1)
			for _, p := range holders[u] {
				for _, q := range holders[v] {
					if d := dist(p, q); best < 0 || d < best {
						best = d
					}
				}
			}
			if best <= 0 {
				continue
			}
			if f := float64(best) / float64(w); f > propFloor {
				propFloor = f
			}
			if k := (steps - 1) / (2 * w); k > 0 {
				if f := float64(2*best*int64(k)) / float64(steps); f > certFloor {
					certFloor = f
				}
			}
		}
	}
	return propFloor, certFloor
}

// Band is a predicted slowdown interval around a point prediction.
type Band struct {
	Lo, Point, Hi float64
}

// Contains reports whether the measured slowdown falls inside the band.
func (b Band) Contains(measured float64) bool {
	return measured >= b.Lo && measured <= b.Hi
}

// Constants are one theorem family's fitted model: point = C0 + CLoad*Load
// + CFloor*PropFloor (clamped to >= 1), band = point*(1 +- Spread).
type Constants struct {
	C0, CLoad, CFloor float64
	// Spread is the relative half-width of the band, set to the fitting
	// corpus's q95 relative residual.
	Spread float64
}

// Predictor is one theorem family of the analytical twin.
type Predictor struct {
	// Name keys the family: "uniform", "combined", "singlecopy" or
	// "cliquechain".
	Name string
	// Theorem cites the paper result the family validates.
	Theorem string
	// Fitted holds the frozen constants (see DESIGN.md §11).
	Fitted Constants
	// MAPECeiling is the hard pass/fail threshold on mean absolute
	// percentage error; `latencysim twin -report` and CI fail above it.
	MAPECeiling float64
	// Form evaluates the theorem's closed-form expression on the stats —
	// sqrt(d_ave), sqrt(d_ave)*log^3 n, d_max, or n^(1/4) — reported for
	// reference next to the structural prediction.
	Form func(s Stats) float64
}

// Predict evaluates the family's point prediction and band.
func (p *Predictor) Predict(s Stats) Band {
	point := p.Fitted.C0 + p.Fitted.CLoad*float64(s.Load) + p.Fitted.CFloor*s.PropFloor
	if point < 1 {
		point = 1 // slowdown below 1 is impossible
	}
	lo := point * (1 - p.Fitted.Spread)
	if lo < 1 {
		lo = 1
	}
	return Band{Lo: lo, Point: point, Hi: point * (1 + p.Fitted.Spread)}
}

// log2 of n clamped to >= 1 so degenerate hosts (n = 1) stay finite.
func log2c(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(float64(n))
}

// The four theorem families. Constants were fitted once from the seed
// corpus (`latencysim twin -fit -seed 1 -n 2000`; holdout seed 2 — see
// DESIGN.md §11) and are intentionally hard-coded: the twin must not
// re-fit itself on the data it is validating.
var predictors = []*Predictor{
	{
		Name:        "uniform",
		Theorem:     "Theorems 2/4: uniform-delay hosts pay Theta(sqrt d)",
		Fitted:      Constants{C0: -1.0790, CLoad: 0.9927, CFloor: 0.7690, Spread: 0.40},
		MAPECeiling: 0.20,
		Form:        func(s Stats) float64 { return math.Sqrt(math.Max(s.DAve, 1)) },
	},
	{
		Name:        "combined",
		Theorem:     "Theorems 5/6: combined protocol pays O(sqrt(d_ave) log^3 n)",
		Fitted:      Constants{C0: 0.3004, CLoad: 0.7505, CFloor: 0.7708, Spread: 0.40},
		MAPECeiling: 0.20,
		Form: func(s Stats) float64 {
			l := log2c(s.Hosts)
			return math.Sqrt(math.Max(s.DAve, 1)) * l * l * l
		},
	},
	{
		Name:        "singlecopy",
		Theorem:     "Theorem 9: one copy per database forces slowdown d_max",
		Fitted:      Constants{C0: -0.7822, CLoad: 0.7235, CFloor: 0.8221, Spread: 0.30},
		MAPECeiling: 0.16,
		Form:        func(s Stats) float64 { return math.Max(float64(s.DMax), 1) },
	},
	{
		Name:        "cliquechain",
		Theorem:     "Section 4: clique chain pays >= n^(1/4) despite d_ave = O(1)",
		Fitted:      Constants{C0: 0.0764, CLoad: 0, CFloor: 0.9236, Spread: 0.08},
		MAPECeiling: 0.10,
		Form:        func(s Stats) float64 { return math.Pow(math.Max(float64(s.Cols), 1), 0.25) },
	},
}

// Predictors returns the four theorem families in report order.
func Predictors() []*Predictor { return predictors }

// ByName returns the named family, or nil.
func ByName(name string) *Predictor {
	for _, p := range predictors {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Classify maps a generated scenario's stats to its theorem family:
// single-copy assignments belong to Theorem 9; replicated scenarios split
// on delay homogeneity — near-uniform lines (d_max <= 1.5 d_ave) are the
// Theorem 2/4 regime, heterogeneous lines the Theorems 5/6 regime. The
// clique-chain family is never inferred from stats; the fleet tags those
// items explicitly (the construction, not the numbers, is what Section 4
// is about).
func Classify(s Stats) *Predictor {
	switch {
	case s.Rep <= 1:
		return ByName("singlecopy")
	case float64(s.DMax) <= 1.5*math.Max(s.DAve, 1):
		return ByName("uniform")
	default:
		return ByName("combined")
	}
}

// Sample is one (stats, measured slowdown) observation for fitting.
type Sample struct {
	Stats    Stats
	Measured float64
}

// Fit solves the least-squares problem measured ~= C0 + CLoad*Load +
// CFloor*PropFloor over the samples and returns the constants with Spread
// set to the q95 relative residual — the procedure that produced the
// frozen constants above. When dropLoad is set the load column is removed
// (the clique-chain ladder has constant load 1, which would make the
// system singular) and CLoad is 0.
func Fit(samples []Sample, dropLoad bool) (Constants, error) {
	if len(samples) < 3 {
		return Constants{}, fmt.Errorf("twin: need >= 3 samples to fit, got %d", len(samples))
	}
	cols := 3
	if dropLoad {
		cols = 2
	}
	row := func(s Stats) []float64 {
		if dropLoad {
			return []float64{1, s.PropFloor}
		}
		return []float64{1, float64(s.Load), s.PropFloor}
	}
	// Normal equations, solved by Gauss-Jordan with partial pivoting —
	// a 3x3 system, so numerically benign.
	m := make([][]float64, cols)
	for i := range m {
		m[i] = make([]float64, cols+1)
	}
	for _, sm := range samples {
		r := row(sm.Stats)
		for i := 0; i < cols; i++ {
			for j := 0; j < cols; j++ {
				m[i][j] += r[i] * r[j]
			}
			m[i][cols] += r[i] * sm.Measured
		}
	}
	for i := 0; i < cols; i++ {
		p := i
		for r := i + 1; r < cols; r++ {
			if math.Abs(m[r][i]) > math.Abs(m[p][i]) {
				p = r
			}
		}
		m[i], m[p] = m[p], m[i]
		if math.Abs(m[i][i]) < 1e-12 {
			return Constants{}, fmt.Errorf("twin: singular fit (column %d); is the corpus degenerate?", i)
		}
		for r := 0; r < cols; r++ {
			if r == i {
				continue
			}
			f := m[r][i] / m[i][i]
			for c := i; c <= cols; c++ {
				m[r][c] -= f * m[i][c]
			}
		}
	}
	sol := make([]float64, cols)
	for i := range sol {
		sol[i] = m[i][cols] / m[i][i]
	}
	out := Constants{C0: sol[0]}
	if dropLoad {
		out.CFloor = sol[1]
	} else {
		out.CLoad, out.CFloor = sol[1], sol[2]
	}
	// Spread = q95 of relative residuals of the clamped point prediction.
	res := make([]float64, 0, len(samples))
	for _, sm := range samples {
		point := out.C0 + out.CLoad*float64(sm.Stats.Load) + out.CFloor*sm.Stats.PropFloor
		if point < 1 {
			point = 1
		}
		if sm.Measured > 0 {
			res = append(res, math.Abs(point-sm.Measured)/sm.Measured)
		}
	}
	sort.Float64s(res)
	if len(res) > 0 {
		idx := (len(res) * 95) / 100
		if idx >= len(res) {
			idx = len(res) - 1
		}
		out.Spread = res[idx]
	}
	return out, nil
}

// MAPE is the mean absolute percentage error of the family's point
// prediction over the samples; NaN when empty.
func (p *Predictor) MAPE(samples []Sample) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, sm := range samples {
		pred := p.Predict(sm.Stats).Point
		sum += math.Abs(pred-sm.Measured) / sm.Measured
	}
	return sum / float64(len(samples))
}
