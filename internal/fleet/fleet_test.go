package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"latencyhide/internal/twin"
	"latencyhide/internal/verify"
)

func TestPlanItems(t *testing.T) {
	p := Plan{Seed: 7, N: 10}
	items := p.Items()
	wantLadder := len(ccLadderK) * len(ccLadderSteps)
	if len(items) != 10+wantLadder {
		t.Fatalf("items = %d, want %d", len(items), 10+wantLadder)
	}
	for i, it := range items {
		if it.Index != i {
			t.Fatalf("item %d has index %d", i, it.Index)
		}
		if i < 10 {
			if it.Kind != "verify" {
				t.Fatalf("item %d kind %q", i, it.Kind)
			}
			// Specs reconstruct the generator's scenario, dynamics stripped.
			sc, err := verify.Parse(it.Spec)
			if err != nil {
				t.Fatalf("item %d: %v", i, err)
			}
			if sc.Faults != nil || sc.Adapt != nil {
				t.Fatalf("item %d kept dynamics: %s", i, it.Spec)
			}
		} else if it.Kind != "cc" {
			t.Fatalf("item %d kind %q, want cc", i, it.Kind)
		}
	}
	// Plans are pure: the same parameters derive the same items.
	again := Plan{Seed: 7, N: 10}.Items()
	for i := range items {
		if items[i] != again[i] {
			t.Fatalf("plan not deterministic at %d", i)
		}
	}
}

func TestShardItemsPartition(t *testing.T) {
	p := Plan{Seed: 3, N: 21, Shards: 4}
	seen := map[int]int{}
	total := 0
	for shard := 0; shard < 4; shard++ {
		p.Shard = shard
		for _, it := range p.ShardItems() {
			if it.Index%4 != shard {
				t.Fatalf("item %d landed in shard %d", it.Index, shard)
			}
			seen[it.Index]++
			total++
		}
	}
	full := p.Items()
	if total != len(full) {
		t.Fatalf("shards cover %d items, plan has %d", total, len(full))
	}
	for _, it := range full {
		if seen[it.Index] != 1 {
			t.Fatalf("item %d covered %d times", it.Index, seen[it.Index])
		}
	}
}

func TestParseCC(t *testing.T) {
	k, steps, seed, err := parseCC("k=6;steps=16;seed=81")
	if err != nil || k != 6 || steps != 16 || seed != 81 {
		t.Fatalf("got k=%d steps=%d seed=%d err=%v", k, steps, seed, err)
	}
	for _, bad := range []string{"k=1;steps=8;seed=1", "k=4;steps=0;seed=1", "nope", "k=x;steps=8;seed=1", "k=4;zz=1"} {
		if _, _, _, err := parseCC(bad); err == nil {
			t.Fatalf("parseCC(%q) accepted", bad)
		}
	}
}

// Measure must agree with the uncached path: same stats as TwinStats,
// slowdown respecting the certified floor, and the family classifier.
func TestMeasureMatchesTwinStats(t *testing.T) {
	m := NewMeasurer()
	p := Plan{Seed: 5, N: 12}
	for _, it := range p.Items() {
		res, err := m.Measure(it)
		if err != nil {
			t.Fatalf("item %d: %v", it.Index, err)
		}
		if res.Key != it.Key() || res.Index != it.Index || res.Spec != it.Spec {
			t.Fatalf("item %d: identity fields wrong: %+v", it.Index, res)
		}
		if res.Slowdown < res.Stats.CertFloor-1e-9 {
			t.Fatalf("item %d: slowdown %.4f beats certified floor %.4f", it.Index, res.Slowdown, res.Stats.CertFloor)
		}
		if it.Kind == "verify" {
			sc, _ := verify.Parse(it.Spec)
			want, err := sc.TwinStats()
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats != want {
				t.Fatalf("item %d: cached stats %+v != TwinStats %+v", it.Index, res.Stats, want)
			}
			if got := twin.Classify(want).Name; res.Family != got {
				t.Fatalf("item %d: family %q != classifier %q", it.Index, res.Family, got)
			}
		} else if res.Family != "cliquechain" {
			t.Fatalf("cc item %d classified %q", it.Index, res.Family)
		}
	}
	if _, err := m.Measure(Item{Kind: "nope", Spec: ""}); err == nil {
		t.Fatal("unknown kind must error")
	}
}

// The acceptance property, in miniature: killing a shard run partway and
// resuming produces a byte-identical store to an uninterrupted run, and
// concurrent workers never change the bytes either.
func TestRunShardResumeByteIdentical(t *testing.T) {
	p := Plan{Seed: 9, N: 16}
	dir := t.TempDir()

	uninterrupted := filepath.Join(dir, "full.jsonl")
	st, err := Open(uninterrupted)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunShard(p, st, 1, nil); err != nil {
		t.Fatal(err)
	}
	st.Close()
	want, err := os.ReadFile(uninterrupted)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("uninterrupted run wrote nothing")
	}

	// "Kill" after a partial prefix: simulate by truncating the full file
	// at an arbitrary byte inside line 6, then resume with 4 workers.
	resumed := filepath.Join(dir, "resumed.jsonl")
	cut := 0
	for lines := 0; lines < 6 && cut < len(want); cut++ {
		if want[cut] == '\n' {
			lines++
		}
	}
	cut += 20 // leave a torn 7th line
	if cut > len(want) {
		cut = len(want)
	}
	if err := os.WriteFile(resumed, want[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunShard(p, st2, 4, nil); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	got, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed store differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}

	// Re-running a complete store is a no-op.
	st3, err := Open(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunShard(p, st3, 2, nil); err != nil {
		t.Fatal(err)
	}
	st3.Close()
	again, _ := os.ReadFile(resumed)
	if !bytes.Equal(again, want) {
		t.Fatal("re-running a complete shard changed the store")
	}
}

// Sharded stores merge to the same results as a single-store run.
func TestShardsMergeToFullPlan(t *testing.T) {
	base := Plan{Seed: 11, N: 10}
	dir := t.TempDir()
	var shardPaths []string
	for shard := 0; shard < 3; shard++ {
		p := base
		p.Shards, p.Shard = 3, shard
		path := filepath.Join(dir, filepath.Base("shard")+string(rune('0'+shard))+".jsonl")
		st, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := RunShard(p, st, 2, nil); err != nil {
			t.Fatal(err)
		}
		st.Close()
		shardPaths = append(shardPaths, path)
	}
	merged, err := ReadAll(shardPaths...)
	if err != nil {
		t.Fatal(err)
	}
	full := base.Items()
	if len(merged) != len(full) {
		t.Fatalf("merged %d results, plan has %d items", len(merged), len(full))
	}
	for i, r := range merged {
		if r.Index != full[i].Index || r.Key != full[i].Key() {
			t.Fatalf("merged result %d does not match plan item: %+v", i, r)
		}
	}
	// Progress callback sees monotone counts on a fresh run.
	p := base
	last := -1
	st, err := Open(filepath.Join(dir, "progress.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	err = RunShard(p, st, 2, func(done, total int) {
		if done < last || total != len(full) {
			t.Errorf("progress went backwards: done=%d last=%d total=%d", done, last, total)
		}
		last = done
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != len(full) {
		t.Fatalf("final progress %d, want %d", last, len(full))
	}
}

func TestReportScoresFamilies(t *testing.T) {
	mk := func(family string, point, slow, cert float64) Result {
		return Result{
			Family:    family,
			Slowdown:  slow,
			Stats:     twin.Stats{CertFloor: cert},
			Predicted: twin.Band{Lo: point * 0.5, Point: point, Hi: point * 1.5},
		}
	}
	results := []Result{
		mk("uniform", 4, 5, 1),    // APE 0.2, in band [2, 6]
		mk("uniform", 20, 5, 1),   // APE 3.0, out of band [10, 30]
		mk("singlecopy", 6, 6, 1), // APE 0, in band
	}
	reports, allPass := Report(results)
	if len(reports) != len(twin.Predictors()) {
		t.Fatalf("reports = %d, want %d", len(reports), len(twin.Predictors()))
	}
	byName := map[string]FamilyReport{}
	for _, r := range reports {
		byName[r.Name] = r
	}
	u := byName["uniform"]
	if u.N != 2 || u.MAPE != 1.6 || u.InBand != 0.5 || u.Pass {
		t.Fatalf("uniform report = %+v", u)
	}
	if allPass {
		t.Fatal("allPass must be false when a family breaches its ceiling")
	}
	s := byName["singlecopy"]
	if s.N != 1 || s.MAPE != 0 || !s.Pass {
		t.Fatalf("singlecopy report = %+v", s)
	}
	// Empty families pass vacuously.
	if cc := byName["cliquechain"]; cc.N != 0 || !cc.Pass {
		t.Fatalf("cliquechain report = %+v", cc)
	}
	// A certified-floor violation fails the family even under the ceiling.
	viol := []Result{mk("combined", 6, 6, 8)}
	reports, allPass = Report(viol)
	for _, r := range reports {
		if r.Name == "combined" && (r.CertViolations != 1 || r.Pass) {
			t.Fatalf("combined report = %+v", r)
		}
	}
	if allPass {
		t.Fatal("cert violation must fail the report")
	}
}

func TestSamplesFilter(t *testing.T) {
	results := []Result{
		{Family: "uniform", Slowdown: 2, Stats: twin.Stats{Load: 1}},
		{Family: "combined", Slowdown: 3, Stats: twin.Stats{Load: 2}},
	}
	if got := len(Samples(results, "")); got != 2 {
		t.Fatalf("all samples = %d", got)
	}
	one := Samples(results, "combined")
	if len(one) != 1 || one[0].Measured != 3 || one[0].Stats.Load != 2 {
		t.Fatalf("filtered = %+v", one)
	}
}
