package fleet

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"latencyhide/internal/assign"
	"latencyhide/internal/embedding"
	"latencyhide/internal/guest"
	"latencyhide/internal/network"
	"latencyhide/internal/sim"
	"latencyhide/internal/tree"
	"latencyhide/internal/twin"
	"latencyhide/internal/verify"
)

// Plan enumerates a fleet corpus: N fault-free scenarios from the verify
// generator's seed stream, followed by the clique-chain ladder (the
// Section 4 family cannot be sampled from topology stats — the
// construction itself is the point, so the plan tags those items
// explicitly). A plan is pure data: any process that agrees on
// (Seed, N, Shards) derives the same items in the same order.
type Plan struct {
	// Seed selects the verify generator stream.
	Seed uint64
	// N is the number of generator scenarios.
	N int
	// Shards and Shard select a slice of the plan for this worker
	// process: item i belongs to shard i mod Shards. Shards <= 1 means
	// the whole plan.
	Shards int
	// Shard is this worker's id in [0, Shards).
	Shard int
}

// Item is one unit of fleet work.
type Item struct {
	// Index is the item's global position in the plan.
	Index int
	// Kind is "verify" or "cc".
	Kind string
	// Spec reconstructs the scenario (verify.Parse or the cc ladder
	// format "k=K;steps=T;seed=S").
	Spec string
}

// Key is the item's content-hash store identity.
func (it Item) Key() string { return Key(it.Kind, it.Spec) }

// The clique-chain ladder: every (k, steps) rung measured once. The
// guest seed only permutes data values, never the schedule, so one seed
// per rung suffices.
var ccLadderK = []int{4, 5, 6, 8, 10, 12}
var ccLadderSteps = []int{8, 16, 24}

const ccLadderSeed = 81

// Items derives the full plan in order: generator scenarios first
// (dynamics stripped — the twin models the fault-free protocol; the
// adversarial regimes keep their own validation in E13/E18 and
// `verify -chaos`), then the clique-chain ladder.
func (p Plan) Items() []Item {
	items := make([]Item, 0, p.N+len(ccLadderK)*len(ccLadderSteps))
	for i := 0; i < p.N; i++ {
		sc := verify.Generate(p.Seed, i).StripDynamics()
		items = append(items, Item{Index: i, Kind: "verify", Spec: sc.String()})
	}
	idx := p.N
	for _, k := range ccLadderK {
		for _, steps := range ccLadderSteps {
			items = append(items, Item{
				Index: idx,
				Kind:  "cc",
				Spec:  fmt.Sprintf("k=%d;steps=%d;seed=%d", k, steps, ccLadderSeed),
			})
			idx++
		}
	}
	return items
}

// ShardItems derives only this worker's slice of the plan, in order.
func (p Plan) ShardItems() []Item {
	all := p.Items()
	if p.Shards <= 1 {
		return all
	}
	var out []Item
	for _, it := range all {
		if it.Index%p.Shards == p.Shard {
			out = append(out, it)
		}
	}
	return out
}

// parseCC reads a clique-chain ladder spec "k=K;steps=T;seed=S".
func parseCC(spec string) (k, steps int, seed int64, err error) {
	for _, item := range strings.Split(spec, ";") {
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return 0, 0, 0, fmt.Errorf("fleet: cc item %q is not key=value", item)
		}
		switch key {
		case "k":
			k, err = strconv.Atoi(val)
		case "steps":
			steps, err = strconv.Atoi(val)
		case "seed":
			seed, err = strconv.ParseInt(val, 10, 64)
		default:
			err = fmt.Errorf("fleet: unknown cc item %q", item)
		}
		if err != nil {
			return 0, 0, 0, err
		}
	}
	if k < 2 || steps < 1 {
		return 0, 0, 0, fmt.Errorf("fleet: cc spec %q needs k >= 2, steps >= 1", spec)
	}
	return k, steps, seed, nil
}

// ccBundle is the cached construction of one clique-chain rung size: the
// embedded host line, the OVERLAP assignment and the guest array are
// identical across all steps/seed rungs of the same k, so the fleet
// builds them once per process.
type ccBundle struct {
	delays []int
	a      *assign.Assignment
	g      guest.Graph
}

// Measurer runs fleet items with per-process construction caches: guest
// graphs keyed by shape/dims, assignments keyed by (hosts, columns, rep)
// — the verify generator draws from small ranges, so thousands of
// scenarios share a few hundred distinct structures — and the embedded
// clique-chain bundles keyed by k. All caches hold immutable values
// (engines never mutate graphs or assignments), so a Measurer is safe
// for concurrent use.
type Measurer struct {
	mu      sync.Mutex
	guests  map[string]guest.Graph
	assigns map[string]*assign.Assignment
	ccs     map[int]*ccBundle
}

// NewMeasurer returns a Measurer with empty caches.
func NewMeasurer() *Measurer {
	return &Measurer{
		guests:  map[string]guest.Graph{},
		assigns: map[string]*assign.Assignment{},
		ccs:     map[int]*ccBundle{},
	}
}

func (m *Measurer) guestFor(sc *verify.Scenario) (guest.Graph, error) {
	key := fmt.Sprintf("%s:%d:%d", sc.Shape, sc.GA, sc.GB)
	m.mu.Lock()
	g, ok := m.guests[key]
	m.mu.Unlock()
	if ok {
		return g, nil
	}
	g, err := sc.Graph()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.guests[key] = g
	m.mu.Unlock()
	return g, nil
}

func (m *Measurer) assignFor(sc *verify.Scenario, cols int) (*assign.Assignment, error) {
	key := fmt.Sprintf("%d:%d:%d", sc.HostN, cols, sc.Rep)
	m.mu.Lock()
	a, ok := m.assigns[key]
	m.mu.Unlock()
	if ok {
		return a, nil
	}
	a, err := sc.Assignment(cols)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.assigns[key] = a
	m.mu.Unlock()
	return a, nil
}

func (m *Measurer) ccFor(k int) (*ccBundle, error) {
	m.mu.Lock()
	b, ok := m.ccs[k]
	m.mu.Unlock()
	if ok {
		return b, nil
	}
	net := network.CliqueChain(k)
	line, err := embedding.Embed(net, 0)
	if err != nil {
		return nil, err
	}
	a, err := assign.Overlap(tree.Build(line.Delays, 4))
	if err != nil {
		return nil, err
	}
	b = &ccBundle{delays: line.Delays, a: a, g: guest.NewLinearArray(a.Columns)}
	m.mu.Lock()
	m.ccs[k] = b
	m.mu.Unlock()
	return b, nil
}

// statsFrom assembles twin.Stats from prebuilt structures (the cached
// twin of verify.Scenario.TwinStats).
func statsFrom(hosts, rep, steps, bw int, g guest.Graph, a *assign.Assignment, delays []int) twin.Stats {
	st := twin.Stats{
		Hosts: hosts, Cols: g.NumNodes(), Load: a.Load(),
		Rep: rep, Steps: steps, Bandwidth: bw,
	}
	if st.Bandwidth < 1 {
		st.Bandwidth = network.Log2Ceil(hosts)
		if st.Bandwidth < 1 {
			st.Bandwidth = 1
		}
	}
	var sum float64
	for _, d := range delays {
		sum += float64(d)
		if d > st.DMax {
			st.DMax = d
		}
	}
	if len(delays) > 0 {
		st.DAve = sum / float64(len(delays))
	}
	st.PropFloor, st.CertFloor = twin.Floors(g, a.Holders, delays, steps)
	return st
}

// Measure runs one item on the sequential engine and joins it with the
// twin's prediction.
func (m *Measurer) Measure(it Item) (Result, error) {
	var (
		cfg    sim.Config
		stats  twin.Stats
		family *twin.Predictor
	)
	switch it.Kind {
	case "verify":
		sc, err := verify.Parse(it.Spec)
		if err != nil {
			return Result{}, err
		}
		g, err := m.guestFor(sc)
		if err != nil {
			return Result{}, err
		}
		a, err := m.assignFor(sc, g.NumNodes())
		if err != nil {
			return Result{}, err
		}
		delays := sc.Delays()
		stats = statsFrom(sc.HostN, sc.Rep, sc.Steps, sc.BW, g, a, delays)
		family = twin.Classify(stats)
		cfg = sim.Config{
			Delays:    delays,
			Guest:     guest.Spec{Graph: g, Steps: sc.Steps, Seed: sc.Seed},
			Assign:    a,
			Bandwidth: sc.BW,
		}
	case "cc":
		k, steps, seed, err := parseCC(it.Spec)
		if err != nil {
			return Result{}, err
		}
		b, err := m.ccFor(k)
		if err != nil {
			return Result{}, err
		}
		stats = statsFrom(len(b.delays)+1, b.a.MaxCopies(), steps, 0, b.g, b.a, b.delays)
		family = twin.ByName("cliquechain")
		cfg = sim.Config{
			Delays: b.delays,
			Guest:  guest.Spec{Graph: b.g, Steps: steps, Seed: seed},
			Assign: b.a,
		}
	default:
		return Result{}, fmt.Errorf("fleet: unknown item kind %q", it.Kind)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("fleet: %s item %d (%s): %w", it.Kind, it.Index, it.Spec, err)
	}
	return Result{
		Key:       it.Key(),
		Index:     it.Index,
		Kind:      it.Kind,
		Spec:      it.Spec,
		Family:    family.Name,
		Stats:     stats,
		Slowdown:  res.Slowdown,
		HostSteps: res.HostSteps,
		Predicted: family.Predict(stats),
	}, nil
}

// RunShard measures this plan shard's pending items and appends them to
// the store in plan order. Workers compute concurrently, but a single
// collector writes: out-of-order completions are buffered until their
// turn, which is what keeps a killed-then-resumed store byte-identical
// to an uninterrupted one. Already-stored keys are skipped entirely.
func RunShard(p Plan, st *Store, workers int, progress func(done, total int)) error {
	items := p.ShardItems()
	var pending []Item
	for _, it := range items {
		if !st.Has(it.Key()) {
			pending = append(pending, it)
		}
	}
	if progress != nil {
		progress(len(items)-len(pending), len(items))
	}
	if len(pending) == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	m := NewMeasurer()
	type outcome struct {
		pos int
		res Result
		err error
	}
	jobs := make(chan int)
	results := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pos := range jobs {
				res, err := m.Measure(pending[pos])
				results <- outcome{pos: pos, res: res, err: err}
			}
		}()
	}
	go func() {
		for pos := range pending {
			jobs <- pos
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()
	// Single writer: buffer completions, append strictly in plan order.
	buffered := map[int]outcome{}
	next := 0
	done := len(items) - len(pending)
	var firstErr error
	for out := range results {
		buffered[out.pos] = out
		for {
			o, ok := buffered[next]
			if !ok {
				break
			}
			delete(buffered, next)
			next++
			if o.err != nil {
				if firstErr == nil {
					firstErr = o.err
				}
				continue
			}
			if firstErr == nil {
				if err := st.Append(o.res); err != nil {
					firstErr = err
				}
				done++
				if progress != nil {
					progress(done, len(items))
				}
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return st.Sync()
}

// FamilyReport scores one theorem family over a result set.
type FamilyReport struct {
	// Name and Theorem identify the twin predictor.
	Name, Theorem string
	// N is the number of scenarios scored.
	N int
	// MAPE is the mean absolute percentage error of the twin's point
	// prediction; Ceiling is the family's hard threshold.
	MAPE, Ceiling float64
	// InBand is the fraction of measurements inside the predicted band.
	InBand float64
	// CertViolations counts measurements below their certified
	// finite-horizon floor — always 0 unless the engine is broken.
	CertViolations int
	// Pass is MAPE <= Ceiling with no certified-floor violations
	// (vacuously true for an empty family).
	Pass bool
}

// Report scores every twin family over the results. allPass is false if
// any non-empty family breaches its MAPE ceiling or any measurement
// beats its certified floor.
func Report(results []Result) (reports []FamilyReport, allPass bool) {
	allPass = true
	for _, p := range twin.Predictors() {
		fr := FamilyReport{Name: p.Name, Theorem: p.Theorem, Ceiling: p.MAPECeiling, Pass: true}
		var sumAPE float64
		inBand := 0
		for _, r := range results {
			if r.Family != p.Name || r.Slowdown <= 0 {
				continue
			}
			fr.N++
			sumAPE += math.Abs(r.Predicted.Point-r.Slowdown) / r.Slowdown
			if r.Predicted.Contains(r.Slowdown) {
				inBand++
			}
			if r.Slowdown < r.Stats.CertFloor-1e-9 {
				fr.CertViolations++
			}
		}
		if fr.N > 0 {
			fr.MAPE = sumAPE / float64(fr.N)
			fr.InBand = float64(inBand) / float64(fr.N)
			fr.Pass = fr.MAPE <= fr.Ceiling && fr.CertViolations == 0
		}
		if !fr.Pass {
			allPass = false
		}
		reports = append(reports, fr)
	}
	return reports, allPass
}

// Samples converts results to twin fit samples, optionally restricted to
// one family ("" = all) — the input to `latencysim twin -fit`.
func Samples(results []Result, family string) []twin.Sample {
	var out []twin.Sample
	for _, r := range results {
		if family != "" && r.Family != family {
			continue
		}
		out = append(out, twin.Sample{Stats: r.Stats, Measured: r.Slowdown})
	}
	return out
}
