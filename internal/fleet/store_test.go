package fleet

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"latencyhide/internal/twin"
)

func mkResult(i int) Result {
	spec := fmt.Sprintf("spec-%d", i)
	return Result{
		Key:       Key("verify", spec),
		Index:     i,
		Kind:      "verify",
		Spec:      spec,
		Family:    "uniform",
		Stats:     twin.Stats{Hosts: i + 2, Load: 1, PropFloor: float64(i)},
		Slowdown:  1.5 + float64(i),
		Predicted: twin.Band{Lo: 1, Point: 2, Hi: 3},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Append(mkResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate appends are no-ops.
	if err := st.Append(mkResult(2)); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 5 {
		t.Fatalf("len = %d, want 5", st.Len())
	}
	st.Close()

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 5 {
		t.Fatalf("reopened len = %d, want 5", st2.Len())
	}
	for i := 0; i < 5; i++ {
		if !st2.Has(mkResult(i).Key) {
			t.Fatalf("missing key %d after reopen", i)
		}
	}
	res := st2.Results()
	for i, r := range res {
		if r.Index != i || r.Spec != fmt.Sprintf("spec-%d", i) {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
}

// A killed writer leaves a half-written last line; Open must truncate it
// and keep every intact line.
func TestStoreTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		st.Append(mkResult(i))
	}
	st.Close()
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, torn := range []string{
		`{"key":"deadbeef","ind`, // mid-line kill
		"not json at all\n",      // corrupt but newline-terminated
		"\x00\x00\x00",           // binary garbage
	} {
		if err := os.WriteFile(path, append(append([]byte{}, intact...), torn...), 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path)
		if err != nil {
			t.Fatalf("torn %q: %v", torn, err)
		}
		if st.Len() != 3 {
			t.Fatalf("torn %q: len = %d, want 3", torn, st.Len())
		}
		st.Close()
		got, _ := os.ReadFile(path)
		if !bytes.Equal(got, intact) {
			t.Fatalf("torn %q: truncation did not restore the intact prefix", torn)
		}
	}
}

func TestMergeDedupsAndSorts(t *testing.T) {
	dir := t.TempDir()
	shard0 := filepath.Join(dir, "shard0.jsonl")
	shard1 := filepath.Join(dir, "shard1.jsonl")
	s0, _ := Open(shard0)
	s1, _ := Open(shard1)
	// Interleaved indexes with one overlapping result.
	for _, i := range []int{0, 2, 4} {
		s0.Append(mkResult(i))
	}
	for _, i := range []int{1, 3, 4} {
		s1.Append(mkResult(i))
	}
	s0.Close()
	s1.Close()

	merged := filepath.Join(dir, "merged.jsonl")
	if err := Merge(merged, shard0, shard1); err != nil {
		t.Fatal(err)
	}
	results, err := ReadAll(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("merged %d results, want 5", len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("merged order broken at %d: %+v", i, r)
		}
	}
	// Merge is idempotent and order-free: merging again, in any source
	// order, and even merging the merge with its sources, is byte-stable.
	first, _ := os.ReadFile(merged)
	if err := Merge(merged, shard1, shard0); err != nil {
		t.Fatal(err)
	}
	second, _ := os.ReadFile(merged)
	if !bytes.Equal(first, second) {
		t.Fatal("merge output depends on source order")
	}
	if err := Merge(merged, merged, shard0, shard1); err != nil {
		t.Fatal(err)
	}
	third, _ := os.ReadFile(merged)
	if !bytes.Equal(first, third) {
		t.Fatal("re-merging the merge changed the bytes")
	}
}

// FuzzFleetStoreResume drives the store through random kill/resume/merge
// sequences: results are appended in order, the file is truncated at a
// random byte (a simulated kill, possibly mid-line), reopened (resume),
// and the missing results re-appended. Whatever the kill pattern, the
// final store must hold every result exactly once, in order, with bytes
// identical to an uninterrupted run — idempotent and lossless.
func FuzzFleetStoreResume(f *testing.F) {
	f.Add([]byte{10, 200, 40}, uint8(6))
	f.Add([]byte{0, 0, 255, 3, 17}, uint8(12))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, cuts []byte, n8 uint8) {
		n := int(n8)%16 + 1
		want := make([]Result, n)
		for i := range want {
			want[i] = mkResult(i)
		}
		dir := t.TempDir()
		// Reference: one uninterrupted writer.
		refPath := filepath.Join(dir, "ref.jsonl")
		ref, err := Open(refPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range want {
			ref.Append(r)
		}
		ref.Close()
		refBytes, err := os.ReadFile(refPath)
		if err != nil {
			t.Fatal(err)
		}

		// Fuzzed: append / kill at a random offset / resume, repeatedly.
		path := filepath.Join(dir, "fuzzed.jsonl")
		for round := 0; ; round++ {
			st, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range want {
				if !st.Has(r.Key) {
					if err := st.Append(r); err != nil {
						t.Fatal(err)
					}
				}
			}
			st.Close()
			if round >= len(cuts) {
				break
			}
			// Kill: truncate the file at a byte offset derived from the
			// fuzz input (mod current size + 1 so every offset is legal).
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			cut := int(cuts[round]) * 37 % (len(data) + 1)
			if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, refBytes) {
			t.Fatalf("resumed store differs from uninterrupted run:\n got %d bytes\nwant %d bytes", len(got), len(refBytes))
		}
		// And a merge of the survivor with itself is still byte-stable.
		merged := filepath.Join(dir, "merged.jsonl")
		if err := Merge(merged, path, path); err != nil {
			t.Fatal(err)
		}
		mergedBytes, err := os.ReadFile(merged)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mergedBytes, refBytes) {
			t.Fatal("self-merge changed the bytes")
		}
	})
}
