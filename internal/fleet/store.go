// Package fleet is the sharded sweep harness: it fans thousands of
// verify-generated scenarios (plus the Section 4 clique-chain ladder)
// across worker processes, measures each one once, and joins the measured
// slowdowns against the analytical twin's predictions (internal/twin).
//
// Results live in resumable JSONL stores keyed by a content hash of the
// scenario spec. A store is written strictly in plan order by a single
// writer, so a killed-then-resumed run produces a byte-identical file to
// an uninterrupted one: reopening truncates any torn tail line, already-
// stored keys are skipped, and the remainder is appended in the same
// order. Merging shard stores is a pure function of their contents
// (dedup by key, sort by plan index), so merge order never matters.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"

	"latencyhide/internal/twin"
)

// Result is one measured scenario joined with the twin's prediction —
// one JSONL line in a store. Every field is deterministic (no wall-clock,
// no hostnames), which is what makes byte-identical resume possible.
type Result struct {
	// Key is the fnv64a content hash of Kind+Spec — the store's identity.
	Key string `json:"key"`
	// Index is the item's position in the fleet plan; stores are written
	// and merged in increasing index order.
	Index int `json:"index"`
	// Kind is "verify" (generator scenario) or "cc" (clique-chain ladder).
	Kind string `json:"kind"`
	// Spec reconstructs the item: a verify.Scenario spec or a cc ladder
	// spec "k=K;steps=T;seed=S".
	Spec string `json:"spec"`
	// Family is the twin theorem family the item was scored against.
	Family string `json:"family"`
	// Stats are the closed-form topology statistics the twin consumed.
	Stats twin.Stats `json:"stats"`
	// Slowdown and HostSteps are the measured engine outcome.
	Slowdown  float64 `json:"slowdown"`
	HostSteps int64   `json:"hostSteps"`
	// Predicted is the twin's band for this scenario (frozen constants).
	Predicted twin.Band `json:"predicted"`
}

// Key hashes an item's kind and spec into the store identity.
func Key(kind, spec string) string {
	h := fnv.New64a()
	io.WriteString(h, kind)
	io.WriteString(h, "\x00")
	io.WriteString(h, spec)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Store is an append-only JSONL result store with content-hash dedup.
// One Store has one writer; concurrent readers use Results' copies.
type Store struct {
	path  string
	f     *os.File
	byKey map[string]struct{}
	items []Result
}

// Open opens (or creates) a store, loading every intact line and
// truncating a torn tail — the half-written last line a killed process
// leaves behind. The returned store is ready for in-order appends.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	s := &Store{path: path, f: f, byKey: map[string]struct{}{}}
	good := 0 // byte offset after the last intact line
	for len(data) > good {
		nl := bytes.IndexByte(data[good:], '\n')
		if nl < 0 {
			break // no terminating newline: torn tail
		}
		line := data[good : good+nl]
		var r Result
		if err := json.Unmarshal(line, &r); err != nil || r.Key == "" {
			break // torn or corrupt: drop this line and everything after
		}
		if _, dup := s.byKey[r.Key]; !dup {
			s.byKey[r.Key] = struct{}{}
			s.items = append(s.items, r)
		}
		good += nl + 1
	}
	if good != len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: truncating torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Has reports whether a result with this key is already stored.
func (s *Store) Has(key string) bool {
	_, ok := s.byKey[key]
	return ok
}

// Len is the number of stored results.
func (s *Store) Len() int { return len(s.items) }

// Append writes one result line. Appending an already-stored key is a
// no-op (idempotence is what makes kill/resume sequences lossless); the
// caller is responsible for appending in plan order.
func (s *Store) Append(r Result) error {
	if s.Has(r.Key) {
		return nil
	}
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := s.f.Write(line); err != nil {
		return err
	}
	s.byKey[r.Key] = struct{}{}
	s.items = append(s.items, r)
	return nil
}

// Results returns a copy of the stored results sorted by plan index.
func (s *Store) Results() []Result {
	out := make([]Result, len(s.items))
	copy(out, s.items)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Sync flushes the store to disk.
func (s *Store) Sync() error { return s.f.Sync() }

// Close closes the underlying file.
func (s *Store) Close() error { return s.f.Close() }

// ReadAll loads, dedups (by key) and index-sorts the results of several
// stores — the join step of `latencysim twin -report` over shard files.
// Dedup keeps the first occurrence, and since a key determines its spec
// (and therefore its deterministic measurement), overlapping stores can
// never disagree about a kept result.
func ReadAll(paths ...string) ([]Result, error) {
	seen := map[string]struct{}{}
	var out []Result
	for _, p := range paths {
		s, err := Open(p)
		if err != nil {
			return nil, err
		}
		for _, r := range s.items {
			if _, dup := seen[r.Key]; !dup {
				seen[r.Key] = struct{}{}
				out = append(out, r)
			}
		}
		s.Close()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}

// Merge writes the deduped, index-sorted union of the source stores to
// dst (atomically, via rename). Merging is idempotent and order-free:
// any sequence of merges over the same shard files yields byte-identical
// output.
func Merge(dst string, srcs ...string) error {
	results, err := ReadAll(srcs...)
	if err != nil {
		return err
	}
	tmp := dst + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	for _, r := range results {
		line, err := json.Marshal(r)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		line = append(line, '\n')
		if _, err := f.Write(line); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, dst)
}
