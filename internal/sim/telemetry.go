package sim

import (
	"fmt"

	"latencyhide/internal/telemetry"
)

// This file wires the engines into package telemetry. The contract with the
// hot path is layered by cost:
//
//   - Always-on plain counters. The cheapest signals (waiter-pool reuse,
//     calendar due/overflow totals, depth peaks) are plain int64 fields on
//     the proc / bucketCal they describe, maintained unconditionally — an
//     increment or compare on state the hot path already touches.
//
//   - Periodic flush. Every 64 simulated steps (and once at collect) a chunk
//     pushes the accumulated deltas into its telemetry shard and samples
//     peaks: ready heaps and injection queues by scanning, the dense
//     knowledge stores by reading the O(1) occupancy counters they maintain
//     inline (dense.go). With telemetry disabled the per-step cost is a
//     single nil check.
//
//   - Event-grained writes. Rare-but-interesting events (boundary flushes,
//     worker parks, watchdog ticks) write straight to the shard at the point
//     they happen; they are orders of magnitude rarer than pebbles.
//
// The metric names below are the engine's telemetry schema; the manifest
// validator (telemetry.RunManifest.Validate) and the docs reference them by
// name, so treat renames as schema changes.

// engineMetrics holds the resolved metric IDs for one run's registry.
type engineMetrics struct {
	// counters
	pebblesComputed   telemetry.CounterID // pebbles computed (includes redundant replicas)
	pebblesTotal      telemetry.CounterID // pebbles the run will compute (for progress/ETA)
	calDueEvents      telemetry.CounterID // calendar keys popped by takeDue
	calOverflowEvents telemetry.CounterID // arrivals beyond the ring span (heap path)
	messagesInjected  telemetry.CounterID // pebble transmissions entering link queues
	linkHops          telemetry.CounterID // individual link crossings
	deliveries        telemetry.CounterID // values delivered to a knowledge table
	waiterPoolHits    telemetry.CounterID // waiter nodes recycled from the freelist
	waiterPoolGrows   telemetry.CounterID // waiter nodes that grew the pool
	knowRingGrows     telemetry.CounterID // dense knowledge rings that outgrew their window
	knowRingShrinks   telemetry.CounterID // dense knowledge rings shrunk back after a spike
	boundaryFlushes   telemetry.CounterID // coalesced boundary batches shipped
	boundaryMsgs      telemetry.CounterID // messages carried by those batches
	ringFullStalls    telemetry.CounterID // producer retries against a full SPSC ring
	workerParks       telemetry.CounterID // workers parked at their horizon
	workerWakes       telemetry.CounterID // parked workers woken by a neighbor
	watchdogTicks     telemetry.CounterID // watchdog wakeups that found progress pending

	// high-water-mark gauges
	calRingDepthPeak  telemetry.GaugeID // peak pending calendar entries (ring + overflow)
	calOverflowPeak   telemetry.GaugeID // peak overflow-heap size
	readyHeapPeak     telemetry.GaugeID // deepest per-proc ready heap sampled
	txQueuePeak       telemetry.GaugeID // deepest link injection queue
	knowLivePeak      telemetry.GaugeID // peak live knowledge slots on any workstation
	knowSlotsPeak     telemetry.GaugeID // peak allocated knowledge ring slots on any workstation
	knowRetireLagPeak telemetry.GaugeID // peak unretired steps behind a column's frontier
	ringOccupancyPeak telemetry.GaugeID // peak SPSC boundary-ring occupancy (batches)
	pubclockLagMax    telemetry.GaugeID // max (local clock - neighbor's published clock)

	// memory-budget gauges (fleet sweeps read these to budget per shard)
	routeBytes        telemetry.GaugeID // resident footprint of the shared route table
	knowRingBytesPeak telemetry.GaugeID // peak knowledge-ring bytes across a chunk's stores
	rssPeakBytes      telemetry.GaugeID // process peak RSS at collect time (0 if unknown)

	// histograms
	duePerStep telemetry.HistID // calendar keys due per busy step
	batchSize  telemetry.HistID // messages per coalesced boundary batch
}

// registerEngineMetrics registers (or re-resolves) the engine schema on reg.
// Must run before the first shard is cut from reg.
func registerEngineMetrics(reg *telemetry.Registry) *engineMetrics {
	return &engineMetrics{
		pebblesComputed:   reg.Counter("pebbles_computed"),
		pebblesTotal:      reg.Counter("pebbles_total"),
		calDueEvents:      reg.Counter("cal_due_events"),
		calOverflowEvents: reg.Counter("cal_overflow_events"),
		messagesInjected:  reg.Counter("messages_injected"),
		linkHops:          reg.Counter("link_hops"),
		deliveries:        reg.Counter("deliveries"),
		waiterPoolHits:    reg.Counter("waiter_pool_hits"),
		waiterPoolGrows:   reg.Counter("waiter_pool_grows"),
		knowRingGrows:     reg.Counter("know_ring_grows"),
		knowRingShrinks:   reg.Counter("know_ring_shrinks"),
		boundaryFlushes:   reg.Counter("boundary_flushes"),
		boundaryMsgs:      reg.Counter("boundary_msgs"),
		ringFullStalls:    reg.Counter("ring_full_stalls"),
		workerParks:       reg.Counter("worker_parks"),
		workerWakes:       reg.Counter("worker_wakes"),
		watchdogTicks:     reg.Counter("watchdog_ticks"),

		calRingDepthPeak:  reg.Gauge("cal_ring_depth_peak"),
		calOverflowPeak:   reg.Gauge("cal_overflow_peak"),
		readyHeapPeak:     reg.Gauge("ready_heap_peak"),
		txQueuePeak:       reg.Gauge("tx_queue_peak"),
		knowLivePeak:      reg.Gauge("know_live_peak"),
		knowSlotsPeak:     reg.Gauge("know_slots_peak"),
		knowRetireLagPeak: reg.Gauge("know_retire_lag_peak"),
		ringOccupancyPeak: reg.Gauge("ring_occupancy_peak"),
		pubclockLagMax:    reg.Gauge("pubclock_lag_max"),

		routeBytes:        reg.Gauge("route_bytes"),
		knowRingBytesPeak: reg.Gauge("know_ring_bytes_peak"),
		rssPeakBytes:      reg.Gauge("rss_peak_bytes"),

		duePerStep: reg.Histogram("cal_due_per_step"),
		batchSize:  reg.Histogram("boundary_batch_size"),
	}
}

// telFlushInterval is how many simulated steps pass between shard flushes
// (power of two: the step loop masks against it).
const telFlushInterval = 64

// initTelemetry attaches a shard to the chunk when the run carries a
// registry. Called from newChunk after the chunk's work is counted.
func (c *chunk) initTelemetry() {
	if c.cfg.em == nil {
		return
	}
	c.met = c.cfg.em
	c.tel = c.cfg.Telemetry.NewShard(fmt.Sprintf("chunk[%d,%d)", c.lo, c.hi))
	c.telInitWork = c.remaining
	c.tel.Add(c.met.pebblesTotal, c.remaining)
	// The route table is shared across chunks; every chunk reports the same
	// figure and the gauge keeps the max, so it never double-counts.
	c.tel.SetMax(c.met.routeBytes, c.rt.bytes())
}

// flushTelemetry pushes the chunk's plain accumulators into its shard:
// counter deltas since the last flush, peaks that need a scan (ready heaps,
// injection queues), and the dense knowledge stores' inline occupancy
// counters, so the per-flush cost stays O(procs).
func (c *chunk) flushTelemetry() {
	if c.tel == nil {
		return
	}
	flush := func(id telemetry.CounterID, cur int64, last *int64) {
		if d := cur - *last; d != 0 {
			c.tel.Add(id, d)
			*last = cur
		}
	}
	flush(c.met.pebblesComputed, c.telInitWork-c.remaining, &c.telPebbles)
	flush(c.met.calDueEvents, c.cal.dueTotal, &c.telDue)
	flush(c.met.calOverflowEvents, c.cal.overflowTotal, &c.telOverflow)
	flush(c.met.messagesInjected, c.messages, &c.telMsgs)
	flush(c.met.linkHops, c.hops, &c.telHops)
	flush(c.met.deliveries, c.delivered, &c.telDeliv)

	var hits, grows, readyPeak int64
	var knowGrows, knowShrinks, livePeak, slotsPeak, ringBytesPeak, lagPeak int64
	for i := range c.procs {
		p := &c.procs[i]
		hits += p.waitHits
		grows += p.waitGrows
		if n := int64(len(p.ready)); n > readyPeak {
			readyPeak = n
		}
		// Dense-store occupancy gauges are O(1) per proc: the store
		// maintains them inline, unlike the old rotating u64map probe scan.
		knowGrows += p.know.grows
		knowShrinks += p.know.shrinks
		if v := int64(p.know.livePeak); v > livePeak {
			livePeak = v
		}
		if v := int64(p.know.slotsPeak); v > slotsPeak {
			slotsPeak = v
		}
		ringBytesPeak += int64(p.know.slotsPeak) * 16
		if v := int64(p.know.retireLag); v > lagPeak {
			lagPeak = v
		}
	}
	flush(c.met.waiterPoolHits, hits, &c.telWaitHits)
	flush(c.met.waiterPoolGrows, grows, &c.telWaitGrows)
	flush(c.met.knowRingGrows, knowGrows, &c.telKnowGrows)
	flush(c.met.knowRingShrinks, knowShrinks, &c.telKnowShrinks)

	c.tel.SetMax(c.met.calRingDepthPeak, int64(c.cal.depthPeak))
	c.tel.SetMax(c.met.calOverflowPeak, int64(c.cal.overflowPeak))
	c.tel.SetMax(c.met.readyHeapPeak, readyPeak)
	c.tel.SetMax(c.met.txQueuePeak, int64(c.peakQueue()))
	c.tel.SetMax(c.met.knowLivePeak, livePeak)
	c.tel.SetMax(c.met.knowSlotsPeak, slotsPeak)
	c.tel.SetMax(c.met.knowRetireLagPeak, lagPeak)
	// Sum of per-store peaks (16 bytes per kslot): an upper bound on the
	// chunk's true simultaneous ring footprint, cheap and O(procs).
	c.tel.SetMax(c.met.knowRingBytesPeak, ringBytesPeak)
}
