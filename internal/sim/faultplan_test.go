package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"latencyhide/internal/assign"
	"latencyhide/internal/fault"
	"latencyhide/internal/guest"
	"latencyhide/internal/obs"
)

// Both engines must produce bit-identical Results and obs event streams under
// every fault kind; these tests sweep each kind separately and combined.

// stripGauges copies a parallel result with its wall-clock chunk gauges
// zeroed: gauges are engine-specific telemetry, deliberately outside the
// bit-identity contract.
func stripGauges(r *Result) *Result {
	if r == nil || r.Chunks == nil {
		return r
	}
	cp := *r
	cp.Chunks = nil
	return &cp
}

// runBoth runs cfg sequentially and with each worker count, asserting
// bit-identical Result and event stream, and returns the sequential result.
func runBoth(t *testing.T, cfg Config, label string) *Result {
	t.Helper()
	seqBuf := obs.NewBuffer()
	cfg.Workers = 0
	cfg.Recorder = seqBuf
	seqRes, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s seq: %v", label, err)
	}
	for _, workers := range []int{2, 3} {
		parBuf := obs.NewBuffer()
		pcfg := cfg
		pcfg.Workers = workers
		pcfg.Recorder = parBuf
		parRes, err := Run(pcfg)
		if err != nil {
			t.Fatalf("%s workers %d: %v", label, workers, err)
		}
		if !reflect.DeepEqual(seqRes, stripGauges(parRes)) {
			t.Fatalf("%s workers %d: results differ:\nseq %+v\npar %+v",
				label, workers, seqRes, parRes)
		}
		se, pe := seqBuf.Events(), parBuf.Events()
		if len(se) != len(pe) {
			t.Fatalf("%s workers %d: %d events != %d", label, workers, len(pe), len(se))
		}
		for i := range se {
			if se[i] != pe[i] {
				t.Fatalf("%s workers %d: event %d differs:\nseq %+v\npar %+v",
					label, workers, i, se[i], pe[i])
			}
		}
	}
	return seqRes
}

func TestEnginesIdenticalUnderEachFaultKind(t *testing.T) {
	plans := map[string]*fault.Plan{
		"jitter": {Seed: 99, Jitters: []fault.Jitter{{Link: -1, Amp: 6, Prob: 0.5}}},
		"outage": {Seed: 99, Outages: []fault.Outage{{Link: -1, Window: 8, Frac: 0.3}}},
		"slow":   {Seed: 99, Slowdowns: []fault.Slowdown{{Host: -1, Window: 10, Frac: 0.4, Limit: 0}}},
		"crash":  {Seed: 99, Crashes: []fault.Crash{{Host: 5, Step: 20}}},
		"combined": {
			Seed:      7,
			Jitters:   []fault.Jitter{{Link: 3, Amp: 4, Prob: 0.8}},
			Outages:   []fault.Outage{{Link: 9, Window: 6, Frac: 0.5}},
			Slowdowns: []fault.Slowdown{{Host: 2, Window: 12, Frac: 0.6, Limit: 0}},
			Crashes:   []fault.Crash{{Host: 11, Step: 35}},
		},
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{3, 21} {
				cfg := randomNOWConfig(t, seed, 16)
				cfg.Faults = plan
				runBoth(t, cfg, name)
			}
		})
	}
}

// An empty (but non-nil) plan must reproduce the fault-free run exactly.
func TestEmptyPlanIsNoOp(t *testing.T) {
	cfg := randomNOWConfig(t, 5, 16)
	base := runBoth(t, cfg, "fault-free")
	cfg.Faults = &fault.Plan{Seed: 1}
	withPlan := runBoth(t, cfg, "empty-plan")
	if !reflect.DeepEqual(base, withPlan) {
		t.Fatalf("empty plan perturbed the run:\nbase %+v\nplan %+v", base, withPlan)
	}
}

// Replicated assignments survive any single crash: the run completes and the
// surviving replicas verify against the reference.
func TestReplicatedAssignmentSurvivesAnySingleCrash(t *testing.T) {
	const hostN = 8
	a, err := assign.ReplicatedBlocks(hostN, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Delays: []int{2, 5, 1, 7, 3, 2, 4},
		Guest:  guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 8, Seed: 17},
		Assign: a,
		Check:  true,
	}
	for h := 0; h < hostN; h++ {
		cfg.Faults = &fault.Plan{Seed: 1, Crashes: []fault.Crash{{Host: h, Step: 5}}}
		res := runBoth(t, cfg, "crash-host")
		if !res.Checked {
			t.Fatalf("crash host %d: surviving replicas not verified", h)
		}
	}
}

// A crash that orphans a column (no surviving replica) must fail fast with
// UncomputableError naming the columns — identically from both engines.
func TestSingleCopyCrashUncomputable(t *testing.T) {
	a, err := assign.SingleCopyBlocks(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Delays: []int{1, 2, 1, 3, 1, 2, 1},
		Guest:  guest.Spec{Graph: guest.NewLinearArray(16), Steps: 6, Seed: 3},
		Assign: a,
		Faults: &fault.Plan{Seed: 1, Crashes: []fault.Crash{{Host: 4, Step: 3}}},
	}
	var seqErr *UncomputableError
	_, err = Run(cfg)
	if !errors.As(err, &seqErr) {
		t.Fatalf("seq: want UncomputableError, got %v", err)
	}
	cfg.Workers = 3
	var parErr *UncomputableError
	_, err = Run(cfg)
	if !errors.As(err, &parErr) {
		t.Fatalf("par: want UncomputableError, got %v", err)
	}
	if !reflect.DeepEqual(seqErr.Columns, parErr.Columns) {
		t.Fatalf("engines disagree on orphaned columns: %v vs %v", seqErr.Columns, parErr.Columns)
	}
	if len(seqErr.Columns) == 0 || seqErr.Crashed[0] != 4 {
		t.Fatalf("bad error detail: %+v", seqErr)
	}
	if !strings.Contains(seqErr.Error(), "uncomputable") {
		t.Fatalf("error message: %v", seqErr)
	}
}

// Raising the outage fraction only adds down-windows (monotone nesting), so
// completion time must be non-decreasing along a fraction sweep.
func TestOutageFractionMonotone(t *testing.T) {
	cfg := randomNOWConfig(t, 13, 16)
	prev := int64(0)
	for _, frac := range []float64{0, 0.1, 0.25, 0.5, 0.9} {
		if frac > 0 {
			cfg.Faults = &fault.Plan{
				Seed:    42,
				Outages: []fault.Outage{{Link: -1, Window: 8, Frac: frac}},
			}
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("frac %g: %v", frac, err)
		}
		if res.HostSteps < prev {
			t.Fatalf("frac %g: host steps %d dropped below %d", frac, res.HostSteps, prev)
		}
		prev = res.HostSteps
	}
}

// Slowdown faults cost throughput: a permanent Limit-0 slowdown on a loaded
// host must strictly lengthen the run.
func TestSlowdownLengthensRun(t *testing.T) {
	cfg := randomNOWConfig(t, 29, 12)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &fault.Plan{
		Seed:      8,
		Slowdowns: []fault.Slowdown{{Host: -1, Window: 4, Frac: 0.9, Limit: 0}},
	}
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.HostSteps <= base.HostSteps {
		t.Fatalf("slowdown did not lengthen run: %d <= %d", slow.HostSteps, base.HostSteps)
	}
}

// Fault telemetry: the canonical stream carries KindFault spans and the
// attribution tiling still holds with the fault cause included.
func TestFaultEventsInStreamAndAttribution(t *testing.T) {
	cfg := randomNOWConfig(t, 31, 16)
	cfg.Faults = &fault.Plan{
		Seed:      5,
		Outages:   []fault.Outage{{Link: -1, Window: 8, Frac: 0.3}},
		Slowdowns: []fault.Slowdown{{Host: 3, Window: 10, Frac: 0.5, Limit: 0}},
		Crashes:   nil,
	}
	buf := obs.NewBuffer()
	cfg.Recorder = buf
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var faults int
	for _, e := range buf.Events() {
		if e.Kind == obs.KindFault {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no KindFault events recorded")
	}
	an := obs.Analyze(buf.Events(), cfg.ObsInfo(res))
	sb := an.Stalls()
	total := sb.Busy + sb.Idle + sb.Dependency + sb.Bandwidth + sb.Fault
	if total != sb.ProcSteps {
		t.Fatalf("attribution tiling broken: %d != %d (%+v)", total, sb.ProcSteps, sb)
	}
	if sb.Fault == 0 {
		t.Fatalf("no fault-attributed stall steps despite heavy plan (%+v)", sb)
	}
}

// Step-cap aborts carry the dataflow frontier from both engines.
func TestStepCapForensics(t *testing.T) {
	cfg := randomNOWConfig(t, 3, 16)
	cfg.MaxSteps = 3 // far too small to finish
	_, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "pebbles remaining") {
		t.Fatalf("seq cap error lacks frontier: %v", err)
	}
	if !strings.Contains(err.Error(), "stuck at guest step") {
		t.Fatalf("seq cap error lacks stuck column: %v", err)
	}
	cfg.Workers = 3
	_, err = Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "pebbles remaining") {
		t.Fatalf("par cap error lacks frontier: %v", err)
	}
}
