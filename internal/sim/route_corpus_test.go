package sim_test

import (
	"testing"

	"latencyhide/internal/sim"
	"latencyhide/internal/verify"
)

// TestRouteCompactDifferentialCorpus runs the verify scenario corpus —
// including crash-stop scenarios (which exercise buildRoutes' avoid path)
// and adaptive scenarios (the standby extra path) — through both the
// compact and the retained reference route builders, asserting structural
// equality and bit-identical obs event streams. It lives in package
// sim_test because internal/verify imports internal/sim; the differential
// itself is sim.RouteDifferential, exported from the in-package test files.
func TestRouteCompactDifferentialCorpus(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	var crashes, adaptive int
	check := func(t *testing.T, sc *verify.Scenario) {
		cfg, err := sc.Build()
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if cfg.Faults != nil && len(cfg.Faults.CrashedHosts()) > 0 {
			crashes++
		}
		if cfg.Adapt != nil {
			adaptive++
		}
		if err := sim.RouteDifferential(*cfg, true); err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
	}
	for i := 0; i < n; i++ {
		check(t, verify.Generate(99, i))
	}
	for i := 0; i < n/2; i++ {
		check(t, verify.GenerateChaos(77, i))
	}
	// The corpus must actually have exercised the avoid (crash-stop) and
	// extra (adaptive standby) builder paths, not just fault-free tables.
	if crashes == 0 {
		t.Fatal("corpus exercised no crash-stop scenarios")
	}
	if adaptive == 0 {
		t.Fatal("corpus exercised no adaptive scenarios")
	}
}
