package sim

import (
	"container/heap"
	"math/rand"
	"slices"
	"testing"
)

// refCal is the engine's previous calendar: a boxed container/heap over
// (step, key) entries. The bucketed calendar must reproduce its pop order
// exactly — same steps, same ascending keys within a step, duplicates
// included — which is what keeps the obs event stream bit-identical across
// the queue swap. It lives on here as the test oracle.
type refCal []calEntry

func (c refCal) Len() int { return len(c) }
func (c refCal) Less(i, j int) bool {
	if c[i].step != c[j].step {
		return c[i].step < c[j].step
	}
	return c[i].key < c[j].key
}
func (c refCal) Swap(i, j int) { c[i], c[j] = c[j], c[i] }
func (c *refCal) Push(x any)   { *c = append(*c, x.(calEntry)) }
func (c *refCal) Pop() any {
	old := *c
	n := len(old)
	v := old[n-1]
	*c = old[:n-1]
	return v
}

// drainRef pops every reference entry at exactly `now`.
func drainRef(ref *refCal, now int64) []int32 {
	var out []int32
	for ref.Len() > 0 && (*ref)[0].step == now {
		out = append(out, heap.Pop(ref).(calEntry).key)
	}
	return out
}

// runCalScript interprets op bytes against both calendars and fails on any
// divergence in due-set order or next-event step. Delays span both the ring
// (< calRingSize) and the overflow heap.
func runCalScript(t *testing.T, data []byte) {
	t.Helper()
	var bc bucketCal
	ref := &refCal{}
	now := int64(1)
	for i := 0; i+2 < len(data); i += 3 {
		switch data[i] % 4 {
		case 0, 1: // schedule now+delay (delay 0..4095: ring and overflow)
			delay := (int64(data[i+1]) | int64(data[i+2]&0x0f)<<8)
			key := int32(data[i+2])
			bc.schedule(now, now+delay, key)
			heap.Push(ref, calEntry{step: now + delay, key: key})
		case 2: // drain the current step
			due := append([]int32(nil), bc.takeDue(now)...)
			want := drainRef(ref, now)
			if !slices.Equal(due, want) {
				t.Fatalf("at step %d: due %v, reference heap %v", now, due, want)
			}
		case 3: // advance to the next event
			next, ok := bc.next(now)
			var refNext int64
			refOk := ref.Len() > 0
			if refOk {
				refNext = (*ref)[0].step
			}
			if ok != refOk || (ok && next != refNext) {
				t.Fatalf("at step %d: next=(%d,%v), reference (%d,%v)", now, next, ok, refNext, refOk)
			}
			if ok {
				now = next
			} else {
				now++
			}
		}
	}
	// Final drain: walk every remaining event in both queues.
	for {
		next, ok := bc.next(now)
		refOk := ref.Len() > 0
		if ok != refOk {
			t.Fatalf("final drain at %d: bucketed %v, reference %v", now, ok, refOk)
		}
		if !ok {
			return
		}
		if refNext := (*ref)[0].step; next != refNext {
			t.Fatalf("final drain: next %d, reference %d", next, refNext)
		}
		now = next
		due := append([]int32(nil), bc.takeDue(now)...)
		want := drainRef(ref, now)
		if !slices.Equal(due, want) {
			t.Fatalf("final drain at %d: due %v, reference %v", now, due, want)
		}
	}
}

// FuzzBucketCalAgainstHeap drives random schedule/drain/advance scripts
// through the bucketed calendar and the old heap side by side.
func FuzzBucketCalAgainstHeap(f *testing.F) {
	// Seeds: ring-only traffic, overflow-heavy traffic (high delay nibble),
	// duplicate keys at one step, and a drain/advance churn mix.
	f.Add([]byte{0, 10, 3, 0, 10, 3, 2, 0, 0, 3, 0, 0, 2, 0, 0})
	f.Add([]byte{0, 255, 0xff, 1, 200, 0xef, 3, 0, 0, 2, 0, 0, 3, 0, 0, 2, 0, 0})
	f.Add([]byte{0, 1, 7, 0, 1, 7, 0, 1, 7, 3, 0, 0, 2, 0, 0})
	seed := make([]byte, 300)
	r := rand.New(rand.NewSource(42))
	r.Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		runCalScript(t, data)
	})
}

// TestBucketCalRandomScripts runs the fuzz body over many seeds in a plain
// test, so the oracle comparison is exercised by `go test` alone.
func TestBucketCalRandomScripts(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		data := make([]byte, 60+r.Intn(600))
		r.Read(data)
		runCalScript(t, data)
	}
}

// TestBucketCalOverflowMigration pins the overflow path: events beyond the
// ring span must surface, in order, once the clock reaches them.
func TestBucketCalOverflowMigration(t *testing.T) {
	var bc bucketCal
	now := int64(1)
	far := now + calRingSize*3 + 17
	bc.schedule(now, far, 9)
	bc.schedule(now, far, 4)
	bc.schedule(now, now+2, 1)
	if next, ok := bc.next(now); !ok || next != now+2 {
		t.Fatalf("next = %d,%v want %d", next, ok, now+2)
	}
	now += 2
	if due := bc.takeDue(now); !slices.Equal(due, []int32{1}) {
		t.Fatalf("due %v want [1]", due)
	}
	if next, ok := bc.next(now); !ok || next != far {
		t.Fatalf("next after ring drain = %d,%v want %d", next, ok, far)
	}
	now = far
	if due := bc.takeDue(now); !slices.Equal(due, []int32{4, 9}) {
		t.Fatalf("overflow due %v want [4 9]", due)
	}
	if !bc.empty() {
		t.Fatal("calendar not empty after draining everything")
	}
}

// TestReadyQueueOrdering checks the typed min-heap pops packed keys in
// ascending order under interleaved pushes and pops.
func TestReadyQueueOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var q readyQueue
	var popped []uint64
	live := 0
	for i := 0; i < 5000; i++ {
		if live == 0 || r.Intn(3) > 0 {
			q.push(readyKey(int32(r.Intn(1000)), int32(r.Intn(1000))))
			live++
		} else {
			popped = append(popped, q.pop())
			live--
		}
	}
	tailStart := len(popped)
	for live > 0 {
		popped = append(popped, q.pop())
		live--
	}
	// With no pushes interleaved, the final drain must come out in fully
	// ascending order (pop always returns the global minimum).
	if !slices.IsSorted(popped[tailStart:]) {
		t.Fatal("final drain not in ascending order")
	}
	if len(q) != 0 {
		t.Fatalf("queue not empty: %d left", len(q))
	}
}
