package sim

import "sort"

// Dense generation-indexed knowledge storage.
//
// The knowledge tables keyed by (column, step) used to be open-addressing
// hash maps (u64map), and profiling showed the engine spending roughly half
// its cycles hashing and probing them. But the key space is structured: a
// workstation only ever keys the columns it holds plus their guest
// neighbors (a small static universe fixed by the assignment), and for each
// column the live steps form a short window — a value dies as soon as every
// local consumer has computed past it. So instead of hashing, each column
// gets a flat ring over its live step window, indexed directly by
// step mod len(ring) with the step itself stored as a generation tag:
//
//   - lookup/insert/delete are a single indexed load or store plus a tag
//     compare — no hash, no probe chain, no tombstones;
//   - deletion just clears the tag; generation tags make stale slots
//     self-invalidating, so churn can never degrade later lookups the way
//     tombstones or displaced entries degrade a hash table;
//   - when two live steps of one column collide mod the ring size (the
//     retirement window outgrew the ring), the ring doubles until it covers
//     the live span — capacity >= span guarantees distinct live steps map
//     to distinct slots, so growth is always conflict-free.
//
// The pooled waiter lists that used to hang off a second hash map rehome
// onto the same slots: a slot whose value has not arrived yet carries the
// head of the waiter chain instead, so addWaiter and recordValue never hash
// either. u64map survives only as the differential test oracle
// (FuzzDenseKnowledge).
//
// Slot states, for a slot whose tag matches the queried step:
//
//	waitHead <  0: the value is known and stored in val
//	waitHead >= 0: the value is still missing; waitHead chains the pooled
//	               waiter nodes that want it (see proc.waitPool)
//
// A zero tag means the slot is empty (guest steps are >= 1).
type kslot struct {
	step     int32 // generation tag: the guest step stored here; 0 = empty
	waitHead int32 // waiter chain head when the value is pending; -1 = value known
	val      uint64
}

// kring is one column's flat ring over its live step window.
type kring struct {
	slots []kslot
	live  int32 // claimed slots (known values + pending waiter anchors)
}

func (r *kring) at(step int32) *kslot {
	return &r.slots[uint32(step)&uint32(len(r.slots)-1)]
}

// denseKnow is one workstation's knowledge store: one ring per column in
// its universe. All counters are plain fields maintained inline (an
// increment on state the operation already touches), so the telemetry
// gauges that replaced the old O(capacity) probeStats scans are O(1) reads.
type denseKnow struct {
	universe []int32 // sorted distinct guest columns this store can key
	rings    []kring // parallel to universe

	live      int32 // claimed slots across all rings
	livePeak  int32 // high-water of live
	slots     int32 // allocated ring slots across all rings, right now
	slotsPeak int32 // high-water of slots: peak ring bytes = slotsPeak * 16
	retireLag int32 // peak per-ring occupancy seen at claim time: how far
	// retirement trails the frontier, in unretired steps
	grows   int64 // ring growth events
	shrinks int64 // ring shrink events
}

// initRingSlots is the initial per-column ring capacity. Most columns never
// hold more than a few live steps at once (retirement runs one step behind
// the frontier), so start small and let skewed columns grow on demand.
const initRingSlots = 8

// colUniverse returns the sorted distinct guest columns that can ever be
// keyed at a position holding `owned`: the owned columns plus their guest
// neighbors. Routes only deliver a column's values to holders of its
// neighbors, and local computes only record owned columns, so this universe
// is exact and static for the whole run.
func colUniverse(neighbors func(int) []int, owned []int) []int32 {
	if len(owned) == 0 {
		return nil
	}
	u := make([]int32, 0, 4*len(owned))
	for _, c := range owned {
		u = append(u, int32(c))
		for _, nb := range neighbors(c) {
			u = append(u, int32(nb))
		}
	}
	sort.Slice(u, func(i, j int) bool { return u[i] < u[j] })
	out := u[:1]
	for _, c := range u[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// denseIndex returns col's index in the sorted universe, or -1.
func denseIndex(universe []int32, col int32) int32 {
	lo, hi := 0, len(universe)
	for lo < hi {
		mid := (lo + hi) / 2
		if universe[mid] < col {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(universe) && universe[lo] == col {
		return int32(lo)
	}
	return -1
}

func newDenseKnow(universe []int32) denseKnow {
	k := denseKnow{universe: universe, rings: make([]kring, len(universe))}
	// One backing array for all initial rings keeps init to a single
	// allocation; rings that grow reallocate individually.
	backing := make([]kslot, len(universe)*initRingSlots)
	for i := range k.rings {
		lo := i * initRingSlots
		k.rings[i].slots = backing[lo : lo+initRingSlots : lo+initRingSlots]
	}
	k.slots = int32(len(universe) * initRingSlots)
	k.slotsPeak = k.slots
	return k
}

// denseOf resolves a guest column to its dense ring index (-1 when the
// column is outside this store's universe). The engine hot paths never call
// it — compute paths carry precomputed indexes on ownedCol and deliveries
// carry them on the route — it exists for tests and diagnostics.
func (k *denseKnow) denseOf(col int32) int32 { return denseIndex(k.universe, col) }

// get returns the value stored for (dense, step) and whether it is known. A
// tag mismatch means the step is genuinely absent: a live step is only ever
// stored at its own residue, so no other slot could hold it.
func (k *denseKnow) get(dense, step int32) (uint64, bool) {
	s := k.rings[dense].at(step)
	if s.step == step && s.waitHead < 0 {
		return s.val, true
	}
	return 0, false
}

// has reports whether the value for (dense, step) is known.
func (k *denseKnow) has(dense, step int32) bool {
	s := k.rings[dense].at(step)
	return s.step == step && s.waitHead < 0
}

// ensure returns the slot for (ring, step), growing the ring first when the
// slot is claimed by a different live step.
func (k *denseKnow) ensure(r *kring, step int32) *kslot {
	s := r.at(step)
	if s.step == step || s.step == 0 {
		return s
	}
	k.grow(r, step)
	return r.at(step)
}

// claim marks an empty slot live for step and updates the occupancy
// accounting shared by put and waiterSlot.
func (k *denseKnow) claim(r *kring, s *kslot, step int32) {
	if r.live > k.retireLag {
		// Everything already live in this ring is an older step not yet
		// retired — the occupancy at claim time is the retirement lag.
		k.retireLag = r.live
	}
	s.step = step
	r.live++
	k.live++
	if k.live > k.livePeak {
		k.livePeak = k.live
	}
}

// put stores the value for (dense, step) and returns the head of any waiter
// chain that was pending on it (-1 when none). The caller owns draining the
// chain; the slot itself transitions to the known state.
func (k *denseKnow) put(dense, step int32, val uint64) int32 {
	r := &k.rings[dense]
	s := k.ensure(r, step)
	if s.step == 0 {
		k.claim(r, s, step)
		s.waitHead = -1
		s.val = val
		return -1
	}
	head := s.waitHead
	s.waitHead = -1
	s.val = val
	return head
}

// waiterSlot returns the slot for (dense, step) with the value still
// pending, claiming it when empty, so the caller can push a waiter node
// onto its chain. The pointer is valid until the store's next mutation.
func (k *denseKnow) waiterSlot(dense, step int32) *kslot {
	r := &k.rings[dense]
	s := k.ensure(r, step)
	if s.step == 0 {
		k.claim(r, s, step)
		s.waitHead = -1
		s.val = 0
	}
	return s
}

// del retires a known value. Clearing the generation tag is the entire
// deletion — no backward shift, no tombstone — which is why heavy churn
// cannot degrade this store. Pending-waiter slots are never deleted: the
// engine only retires values whose consumers have all advanced past them,
// and a consumer blocked on the value has, by definition, not.
//
// When occupancy falls to a quarter of a grown ring (or the ring drains
// entirely), the ring shrinks back toward initRingSlots, so a growth spike
// — a standby host's pinned history released by activation, a churn burst —
// costs peak bytes only while it is live. live decrements one at a time, so
// the equality check crosses exactly once per descent instead of rescanning
// the ring on every del.
func (k *denseKnow) del(dense, step int32) {
	r := &k.rings[dense]
	s := r.at(step)
	if s.step == step && s.waitHead < 0 {
		s.step = 0
		s.val = 0
		r.live--
		k.live--
		if len(r.slots) > initRingSlots && (r.live*4 == int32(len(r.slots)) || r.live == 0) {
			k.shrink(r)
		}
	}
}

// size reports the claimed slots across all rings (known values plus
// pending waiter anchors).
func (k *denseKnow) size() int { return int(k.live) }

// grow widens r until its capacity covers the whole live step span
// including step, then rehomes every live slot. Capacity >= span keeps
// distinct live steps at distinct residues, so rehoming never conflicts.
func (k *denseKnow) grow(r *kring, step int32) {
	k.grows++
	lo, hi := step, step
	for i := range r.slots {
		if s := r.slots[i].step; s != 0 {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
	}
	span := int(hi-lo) + 1
	newCap := 2 * len(r.slots)
	for newCap < span {
		newCap *= 2
	}
	old := r.slots
	r.slots = make([]kslot, newCap)
	for i := range old {
		if old[i].step != 0 {
			*r.at(old[i].step) = old[i]
		}
	}
	k.slots += int32(newCap - len(old))
	if k.slots > k.slotsPeak {
		k.slotsPeak = k.slots
	}
}

// shrink narrows r to the smallest power of two that still covers the live
// step span (but never below initRingSlots), rehoming the surviving slots.
// Capacity >= span keeps distinct live steps at distinct residues — the same
// invariant grow maintains — so rehoming never conflicts. Pending waiter
// anchors move with their slots: the chain head lives in the slot itself, so
// the copy carries the whole chain.
func (k *denseKnow) shrink(r *kring) {
	var lo, hi int32
	for i := range r.slots {
		if s := r.slots[i].step; s != 0 {
			if lo == 0 || s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
	}
	span := 0
	if lo != 0 {
		span = int(hi-lo) + 1
	}
	newCap := initRingSlots
	for newCap < span {
		newCap *= 2
	}
	if newCap >= len(r.slots) {
		return // sparse survivors still span the current capacity
	}
	k.shrinks++
	old := r.slots
	r.slots = make([]kslot, newCap)
	for i := range old {
		if old[i].step != 0 {
			*r.at(old[i].step) = old[i]
		}
	}
	k.slots -= int32(len(old) - newCap)
}
