package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
)

// checkCuts asserts the structural invariants every cut vector must satisfy:
// cuts[0] = 0 < cuts[1] < ... < cuts[w] = n.
func checkCuts(t *testing.T, cuts []int, n, w int) {
	t.Helper()
	if len(cuts) != w+1 {
		t.Fatalf("want %d cuts for %d chunks, got %v", w+1, w, cuts)
	}
	if cuts[0] != 0 || cuts[w] != n {
		t.Fatalf("cuts %v do not span [0, %d]", cuts, n)
	}
	for i := 1; i <= w; i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts %v not strictly increasing", cuts)
		}
	}
}

func TestSplitPositionsTable(t *testing.T) {
	uniform := func(n int) []int {
		d := make([]int, n-1)
		for i := range d {
			d[i] = 1
		}
		return d
	}

	t.Run("uniform-even-split", func(t *testing.T) {
		for _, tc := range []struct{ n, w int }{
			{8, 2}, {64, 4}, {100, 5}, {96, 3},
		} {
			cuts := splitPositions(uniform(tc.n), tc.w)
			checkCuts(t, cuts, tc.n, tc.w)
			// Uniform delays and work: each chunk within one window of n/w.
			window := tc.n / (4 * tc.w)
			if window < 1 {
				window = 1
			}
			for i := 0; i < tc.w; i++ {
				size := cuts[i+1] - cuts[i]
				if size < tc.n/tc.w-2*window || size > tc.n/tc.w+2*window {
					t.Fatalf("n=%d w=%d: chunk %d size %d far from even (%v)",
						tc.n, tc.w, i, size, cuts)
				}
			}
		}
	})

	t.Run("degenerate-window", func(t *testing.T) {
		// n < 4w makes the naive window n/(4w) zero; the clamp keeps the
		// nudge search alive and the cuts valid up to w = n/2.
		for _, tc := range []struct{ n, w int }{
			{10, 5}, {8, 4}, {6, 3}, {4, 2}, {12, 5}, {9, 4},
		} {
			cuts := splitPositions(uniform(tc.n), tc.w)
			checkCuts(t, cuts, tc.n, tc.w)
		}
	})

	t.Run("w-near-half", func(t *testing.T) {
		for n := 4; n <= 24; n++ {
			w := n / 2
			if w < 2 {
				continue
			}
			cuts := splitPositions(uniform(n), w)
			checkCuts(t, cuts, n, w)
		}
	})

	t.Run("cuts-land-on-max-delay-links", func(t *testing.T) {
		// One slow link near each even-split point: the nudge must pick it
		// (cut at p means the boundary link is delays[p-1]).
		delays := uniform(80)
		delays[19] = 50
		delays[39] = 70
		delays[59] = 60
		cuts := splitPositions(delays, 4)
		checkCuts(t, cuts, 80, 4)
		want := []int{0, 20, 40, 60, 80}
		if !reflect.DeepEqual(cuts, want) {
			t.Fatalf("cuts %v did not land on the slow links (want %v)", cuts, want)
		}
	})

	t.Run("work-balanced-skew", func(t *testing.T) {
		// All the work piles up on the last quarter of the hosts; the work
		// quantile cuts must crowd toward that end instead of splitting the
		// host count evenly.
		n := 64
		work := make([]int64, n)
		for p := range work {
			work[p] = 1
			if p >= 48 {
				work[p] = 100
			}
		}
		cuts := splitPositionsWork(uniform(n), work, 4)
		checkCuts(t, cuts, n, 4)
		if cuts[1] < 40 {
			t.Fatalf("cuts %v ignore the hotspot: first cut should sit near the heavy tail", cuts)
		}
		// The heavy region must not sit inside a single chunk.
		heavyChunks := 0
		for i := 0; i < 4; i++ {
			if cuts[i+1] > 48 {
				heavyChunks++
			}
		}
		if heavyChunks < 3 {
			t.Fatalf("cuts %v leave the hotspot in %d chunks (want >= 3)", cuts, heavyChunks)
		}
	})
}

// TestWatchdogCatchesDeadlock wires a genuinely deadlocked dataflow (an empty
// route table, so boundary dependencies are never delivered) with a step cap
// too large to fire first, and checks the wall-clock watchdog reports the
// deadlock instead of hanging.
func TestWatchdogCatchesDeadlock(t *testing.T) {
	a, err := assign.FromOwned(2, 2, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Delays:       []int{1},
		Guest:        guest.Spec{Graph: guest.NewLinearArray(2), Steps: 2, Seed: 1},
		Assign:       a,
		MaxSteps:     1 << 40, // the clocks spin upward; make sure the cap cannot fire first
		WatchdogIdle: 100 * time.Millisecond,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// An empty route table: step-2 pebbles need the neighbor's step-1 value,
	// which is never routed — the canonical "assignment bug" deadlock.
	rt := newRouteShell(a)
	rt.countCrossings(2, nil)
	start := time.Now()
	_, err = runParallelWithCuts(&cfg, rt, []int{0, 1, 2})
	if err == nil {
		t.Fatal("deadlocked run reported success")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}
}

// TestChunkGauges checks the parallel result carries one gauge per chunk,
// tiling the host line, with pebble counts summing to the run total.
func TestChunkGauges(t *testing.T) {
	a, err := assign.UniformBlocks(16, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Delays:  unitDelays(16),
		Guest:   guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 10, Seed: 3},
		Assign:  a,
		Workers: 4,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) != 4 {
		t.Fatalf("want 4 chunk gauges, got %d", len(res.Chunks))
	}
	var pebbles int64
	prev := 0
	for i, g := range res.Chunks {
		if g.Lo != prev {
			t.Fatalf("gauge %d starts at %d, want %d (%+v)", i, g.Lo, prev, res.Chunks)
		}
		if g.Hi <= g.Lo {
			t.Fatalf("gauge %d empty: %+v", i, g)
		}
		prev = g.Hi
		pebbles += g.Pebbles
		if g.Steps < res.HostSteps {
			t.Fatalf("gauge %d stopped at step %d before the run end %d", i, g.Steps, res.HostSteps)
		}
	}
	if prev != 16 {
		t.Fatalf("gauges end at %d, want 16", prev)
	}
	if pebbles != res.PebblesComputed {
		t.Fatalf("gauge pebbles %d != run total %d", pebbles, res.PebblesComputed)
	}
	// Sequential runs carry no gauges.
	cfg.Workers = 0
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Chunks) != 0 {
		t.Fatalf("sequential run grew chunk gauges: %+v", seq.Chunks)
	}
}

// cutsFromBytes decodes a fuzz byte string into a valid cut vector over n
// hosts: each byte proposes an interior cut position, duplicates collapse.
func cutsFromBytes(raw []byte, n int) []int {
	set := map[int]bool{}
	for _, b := range raw {
		p := 1 + int(b)%(n-1)
		set[p] = true
	}
	cuts := make([]int, 0, len(set)+2)
	cuts = append(cuts, 0)
	for p := range set {
		cuts = append(cuts, p)
	}
	sort.Ints(cuts)
	return append(cuts, n)
}

// FuzzParallelCuts feeds arbitrary cut vectors — including size-1 chunks and
// heavily unbalanced tilings — through the parallel engine and asserts the
// result is bit-identical to the sequential engine. The cut choice is pure
// placement; any valid vector must reproduce the same simulation.
func FuzzParallelCuts(f *testing.F) {
	f.Add(int64(1), []byte{3, 9})
	f.Add(int64(7), []byte{1, 1, 1, 1})
	f.Add(int64(42), []byte{200, 5, 30, 77})
	f.Add(int64(13), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		r := rand.New(rand.NewSource(seed))
		hostN := 4 + r.Intn(12)
		a, err := assign.UniformBlocks(hostN, 2, 3, 0)
		if err != nil {
			t.Skip()
		}
		delays := make([]int, hostN-1)
		for i := range delays {
			delays[i] = 1 + r.Intn(20)
		}
		cfg := Config{
			Delays: delays,
			Guest:  guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 6, Seed: seed},
			Assign: a,
		}
		if err := cfg.Validate(); err != nil {
			t.Skip()
		}
		rt := buildRoutes(cfg.Guest.Graph, cfg.Assign, nil, nil)
		seq, err := runSequential(&cfg, rt)
		if err != nil {
			t.Fatalf("seq: %v", err)
		}
		cuts := cutsFromBytes(raw, hostN)
		par, err := runParallelWithCuts(&cfg, rt, cuts)
		if err != nil {
			t.Fatalf("cuts %v: %v", cuts, err)
		}
		if !reflect.DeepEqual(seq, stripGauges(par)) {
			t.Fatalf("cuts %v: results differ:\nseq %+v\npar %+v", cuts, seq, par)
		}
	})
}
