package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"latencyhide/internal/assign"
	"latencyhide/internal/fault"
	"latencyhide/internal/guest"
	"latencyhide/internal/obs"
)

// randomGuest builds a random connected bounded-degree guest graph.
func randomGuest(r *rand.Rand, n int) guest.Graph {
	adj := make([][]int, n)
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		u, v := perm[i], perm[r.Intn(i)]
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	extra := r.Intn(n)
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && len(adj[u]) < 6 && len(adj[v]) < 6 {
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
	}
	return guest.NewCustom("fuzz", adj)
}

// randomAssignment places every column on 1-3 random hosts.
func randomAssignment(r *rand.Rand, hostN, m int) (*assign.Assignment, error) {
	owned := make([][]int, hostN)
	used := make([]map[int]bool, hostN)
	for i := range used {
		used[i] = map[int]bool{}
	}
	for c := 0; c < m; c++ {
		copies := 1 + r.Intn(3)
		for k := 0; k < copies; k++ {
			p := r.Intn(hostN)
			if !used[p][c] {
				used[p][c] = true
				owned[p] = append(owned[p], c)
			}
		}
	}
	return assign.FromOwned(hostN, m, owned)
}

// TestFuzzEngineVerifiesRandomWorkloads is the engine's acid test: arbitrary
// guest dependency structures, arbitrary replica placements, arbitrary
// delays — every database replica must still match the sequential reference,
// and both engines must agree.
func TestFuzzEngineVerifiesRandomWorkloads(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		hostN := 2 + r.Intn(14)
		m := 1 + r.Intn(40)
		steps := 1 + r.Intn(10)
		g := randomGuest(r, m)
		a, err := randomAssignment(r, hostN, m)
		if err != nil {
			t.Logf("seed %d: assignment: %v", seed, err)
			return false
		}
		delays := make([]int, hostN-1)
		for i := range delays {
			delays[i] = 1 + r.Intn(1<<uint(r.Intn(8)))
		}
		var dbf guest.Factory
		if r.Intn(2) == 0 {
			dbf = guest.KVFactory(1 + r.Intn(16))
		}
		cfg := Config{
			Delays: delays,
			Guest: guest.Spec{
				Graph: g, Steps: steps, Seed: seed, NewDatabase: dbf,
			},
			Assign:    a,
			Bandwidth: 1 + r.Intn(4),
			Check:     true,
		}
		seq, err := Run(cfg)
		if err != nil {
			t.Logf("seed %d: seq: %v", seed, err)
			return false
		}
		if !seq.Checked {
			return false
		}
		cfg.Workers = 2 + r.Intn(4)
		par, err := Run(cfg)
		if err != nil {
			t.Logf("seed %d: par: %v", seed, err)
			return false
		}
		if seq.HostSteps != par.HostSteps || seq.PebblesComputed != par.PebblesComputed ||
			seq.Messages != par.Messages {
			t.Logf("seed %d: engines disagree: seq=%d/%d/%d par=%d/%d/%d", seed,
				seq.HostSteps, seq.PebblesComputed, seq.Messages,
				par.HostSteps, par.PebblesComputed, par.Messages)
			return false
		}
		return true
	}
	cfgq := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfgq.MaxCount = 15
	}
	if err := quick.Check(f, cfgq); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzCustomOps runs random workloads under a non-default op to make
// sure the op plumbing reaches every replica identically.
func TestFuzzCustomOps(t *testing.T) {
	op := func(db uint64, node, step int, self uint64, ns []uint64) uint64 {
		v := db ^ self ^ (uint64(node+1) * uint64(step+1))
		for i, x := range ns {
			v = v*31 + x + uint64(i)
		}
		return v
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		hostN := 2 + r.Intn(8)
		m := 2 + r.Intn(20)
		g := randomGuest(r, m)
		a, err := randomAssignment(r, hostN, m)
		if err != nil {
			return false
		}
		delays := make([]int, hostN-1)
		for i := range delays {
			delays[i] = 1 + r.Intn(16)
		}
		res, err := Run(Config{
			Delays: delays,
			Guest:  guest.Spec{Graph: g, Steps: 6, Seed: seed, Op: op},
			Assign: a,
			Check:  true,
		})
		return err == nil && res.Checked
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomFaultPlan draws a plan mixing all four fault kinds with random
// parameters; roughly half the draws include each kind.
func randomFaultPlan(r *rand.Rand, hostN int) *fault.Plan {
	p := &fault.Plan{Seed: r.Uint64()}
	pickLink := func() int {
		if r.Intn(3) == 0 {
			return -1
		}
		return r.Intn(hostN - 1)
	}
	pickHost := func() int {
		if r.Intn(3) == 0 {
			return -1
		}
		return r.Intn(hostN)
	}
	if r.Intn(2) == 0 {
		p.Jitters = append(p.Jitters, fault.Jitter{
			Link: pickLink(), Amp: 1 + r.Intn(8), Prob: 0.05 + 0.9*r.Float64(),
		})
	}
	if r.Intn(2) == 0 {
		p.Outages = append(p.Outages, fault.Outage{
			Link: pickLink(), Window: 1 + r.Intn(12), Frac: 0.05 + 0.6*r.Float64(),
		})
	}
	if r.Intn(2) == 0 {
		p.Slowdowns = append(p.Slowdowns, fault.Slowdown{
			Host: pickHost(), Window: 1 + r.Intn(12), Frac: 0.05 + 0.9*r.Float64(),
			Limit: r.Intn(2),
		})
	}
	if r.Intn(2) == 0 {
		p.Crashes = append(p.Crashes, fault.Crash{
			Host: r.Intn(hostN), Step: 1 + int64(r.Intn(40)),
		})
	}
	return p
}

// TestFuzzEnginesAgreeUnderRandomFaults stresses the fault machinery the same
// way: random workloads plus random fault plans. Runs that crash-orphan a
// column must fail with UncomputableError from both engines (same columns);
// every other run must produce identical results and event streams.
func TestFuzzEnginesAgreeUnderRandomFaults(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		hostN := 3 + r.Intn(12)
		m := 2 + r.Intn(24)
		steps := 1 + r.Intn(8)
		g := randomGuest(r, m)
		a, err := randomAssignment(r, hostN, m)
		if err != nil {
			t.Logf("seed %d: assignment: %v", seed, err)
			return false
		}
		delays := make([]int, hostN-1)
		for i := range delays {
			delays[i] = 1 + r.Intn(24)
		}
		cfg := Config{
			Delays:    delays,
			Guest:     guest.Spec{Graph: g, Steps: steps, Seed: seed},
			Assign:    a,
			Bandwidth: 1 + r.Intn(4),
			Faults:    randomFaultPlan(r, hostN),
		}
		seqBuf := obs.NewBuffer()
		cfg.Recorder = seqBuf
		seq, seqErr := Run(cfg)
		cfg.Workers = 2 + r.Intn(3)
		parBuf := obs.NewBuffer()
		cfg.Recorder = parBuf
		par, parErr := Run(cfg)
		var seqUnc, parUnc *UncomputableError
		if errors.As(seqErr, &seqUnc) {
			if !errors.As(parErr, &parUnc) {
				t.Logf("seed %d: seq uncomputable but par: %v", seed, parErr)
				return false
			}
			if !reflect.DeepEqual(seqUnc.Columns, parUnc.Columns) {
				t.Logf("seed %d: orphan columns differ: %v vs %v", seed, seqUnc.Columns, parUnc.Columns)
				return false
			}
			return true
		}
		if seqErr != nil || parErr != nil {
			t.Logf("seed %d: seq=%v par=%v", seed, seqErr, parErr)
			return false
		}
		if !reflect.DeepEqual(seq, stripGauges(par)) {
			t.Logf("seed %d: results differ:\nseq %+v\npar %+v", seed, seq, par)
			return false
		}
		se, pe := seqBuf.Events(), parBuf.Events()
		if len(se) != len(pe) {
			t.Logf("seed %d: %d events != %d", seed, len(pe), len(se))
			return false
		}
		for i := range se {
			if se[i] != pe[i] {
				t.Logf("seed %d: event %d differs: seq %+v par %+v", seed, i, se[i], pe[i])
				return false
			}
		}
		return true
	}
	cfgq := &quick.Config{MaxCount: 50}
	if testing.Short() {
		cfgq.MaxCount = 12
	}
	if err := quick.Check(f, cfgq); err != nil {
		t.Fatal(err)
	}
}
