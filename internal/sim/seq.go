package sim

import (
	"fmt"

	"latencyhide/internal/guest"
	"latencyhide/internal/obs"
)

// runSequential executes the whole line as a single chunk, fast-forwarding
// over quiet periods (steps where nothing computes, arrives or transmits).
func runSequential(cfg *Config, rt *routeTable) (*Result, error) {
	c := newChunk(cfg, rt, 0, cfg.hostN())
	maxSteps := cfg.maxSteps()
	for c.remaining > 0 {
		if c.now > maxSteps {
			return nil, fmt.Errorf("sim: exceeded step cap %d: %s", maxSteps, frontier(c))
		}
		did := c.step()
		if c.remaining == 0 {
			break
		}
		if did {
			c.now++
			continue
		}
		next, ok := c.nextEvent()
		if !ok {
			return nil, stallError(c)
		}
		if next <= c.now {
			next = c.now + 1
		}
		c.now = next
	}
	return collect(cfg, []*chunk{c})
}

// stallError reports a deadlocked dataflow with enough context to debug the
// assignment or routing table that caused it.
func stallError(c *chunk) error {
	return fmt.Errorf("sim: stalled at step %d: %s", c.now, frontier(c))
}

// frontier summarises the chunk's stuck dataflow frontier — the first live
// column that cannot advance, its missing dependency count, and the
// outstanding work — for stall and step-cap diagnostics.
func frontier(c *chunk) string {
	for i := range c.procs {
		p := &c.procs[i]
		if p.crashed {
			continue
		}
		for j := range p.cols {
			oc := &p.cols[j]
			if oc.next <= c.T {
				return fmt.Sprintf("pos %d col %d stuck at guest step %d (missing %d deps); %d pebbles remaining",
					p.pos, oc.col, oc.next, oc.missing, c.remaining)
			}
		}
	}
	return fmt.Sprintf("%d pebbles remaining", c.remaining)
}

// collect assembles a Result from finished chunks and optionally verifies
// every database replica against the sequential reference executor.
func collect(cfg *Config, chunks []*chunk) (*Result, error) {
	res := &Result{}
	var dups int64
	for _, c := range chunks {
		c.flushTelemetry() // final delta push; no-op without a registry
		if c.lastComputeStep > res.HostSteps {
			res.HostSteps = c.lastComputeStep
		}
		for i := range c.procs {
			res.PebblesComputed += c.procs[i].computed
		}
		res.Messages += c.messages
		res.MessageHops += c.hops
		res.DeliveredValues += c.delivered
		if q := c.peakQueue(); q > res.MaxQueueDepth {
			res.MaxQueueDepth = q
		}
		dups += c.duplicates
	}
	if dups > 0 {
		return nil, fmt.Errorf("sim: %d duplicate deliveries (routing bug)", dups)
	}
	if cfg.TraceWindow > 0 {
		// Pre-size both timelines to the widest chunk window count so the
		// merge is a flat O(n) accumulation instead of growing
		// element-by-element inside the loop.
		windows := 0
		for _, c := range chunks {
			if len(c.traceComputes) > windows {
				windows = len(c.traceComputes)
			}
			if len(c.traceHops) > windows {
				windows = len(c.traceHops)
			}
		}
		tr := &Trace{
			Window:   cfg.TraceWindow,
			Computes: make([]int64, windows),
			Hops:     make([]int64, windows),
		}
		for _, c := range chunks {
			for i, v := range c.traceComputes {
				tr.Computes[i] += v
			}
			for i, v := range c.traceHops {
				tr.Hops[i] += v
			}
		}
		res.Trace = tr
	}
	if cfg.CollectPerProc {
		res.PerProcComputed = make([]int64, cfg.hostN())
		for _, c := range chunks {
			for i := range c.procs {
				res.PerProcComputed[c.procs[i].pos] = c.procs[i].computed
			}
		}
	}
	if cfg.Check {
		if err := verify(cfg, chunks); err != nil {
			return nil, err
		}
		res.Checked = true
	}
	if cfg.Recorder != nil {
		// Merge the per-chunk buffers and replay in canonical order: the
		// engines produce identical per-step event multisets, so sorting
		// hands any Recorder a stream that is bit-identical across engines
		// and worker counts.
		var events []obs.Event
		for _, c := range chunks {
			if c.buf != nil {
				events = append(events, c.buf.Events()...)
			}
		}
		if cfg.Faults != nil {
			events = append(events, faultEvents(cfg, res.HostSteps)...)
		}
		obs.Canonicalize(events)
		obs.Replay(events, cfg.Recorder)
	}
	return res, nil
}

// verify recomputes the guest sequentially and compares every replica's
// final database digest (which is order-sensitive over the full update
// history) against ground truth.
func verify(cfg *Config, chunks []*chunk) error {
	oracle, err := guest.RunDigestParallel(cfg.Guest, 0)
	if err != nil {
		return err
	}
	// Crash-stop hosts freeze mid-run; their replicas are legitimately
	// incomplete and are not checked.
	var dead map[int]bool
	if cfg.Faults != nil {
		if crashed := cfg.Faults.CrashedHosts(); len(crashed) > 0 {
			dead = make(map[int]bool, len(crashed))
			for _, h := range crashed {
				dead[h] = true
			}
		}
	}
	for _, c := range chunks {
		for _, rd := range c.finalDigests() {
			if dead[rd.pos] {
				continue
			}
			if rd.version != cfg.Guest.Steps {
				return fmt.Errorf("sim: replica of db %d at pos %d has version %d, want %d",
					rd.col, rd.pos, rd.version, cfg.Guest.Steps)
			}
			if rd.digest != oracle.FinalDigests[rd.col] {
				return fmt.Errorf("sim: replica of db %d at pos %d has digest %#x, want %#x",
					rd.col, rd.pos, rd.digest, oracle.FinalDigests[rd.col])
			}
		}
	}
	return nil
}
