package sim

import (
	"fmt"

	"latencyhide/internal/guest"
	"latencyhide/internal/obs"
	"latencyhide/internal/telemetry"
)

// runSequential executes the whole line as a single chunk, fast-forwarding
// over quiet periods (steps where nothing computes, arrives or transmits).
//
// Adaptive runs insert the replication controller at every epoch boundary
// E: the moment the clock first passes E — after step E is fully simulated,
// before step E+1 begins — atBoundary harvests the epoch's stall forensics
// and activates standbys. Fast-forwards are clamped to the next boundary so
// no quiet jump skips one; the parallel engine caps its workers' horizons
// at the same points, which is what keeps adaptive runs bit-identical.
func runSequential(cfg *Config, rt *routeTable) (*Result, error) {
	c := newChunk(cfg, rt, 0, cfg.hostN())
	maxSteps := cfg.maxSteps()
	ast := cfg.ast
	var nextB int64
	if ast != nil {
		nextB = int64(ast.policy.Epoch)
	}
	for {
		// Adaptive runs terminate at full quiescence, not at the last pebble:
		// standby-bound traffic still in flight must drain so both engines
		// count the same complete event set (see chunk.quiescent). The check
		// precedes the boundary branch — a run that drains dry before the
		// next boundary never runs the controller there, exactly like the
		// parallel engine's terminal barrier.
		if c.remaining == 0 && (ast == nil || c.quiescent()) {
			break
		}
		if ast != nil && c.now > nextB {
			ast.atBoundary(nextB, []*chunk{c})
			nextB += int64(ast.policy.Epoch)
			continue
		}
		if c.now > maxSteps {
			return nil, fmt.Errorf("sim: exceeded step cap %d: %s", maxSteps, frontier(c))
		}
		did := c.step()
		if c.remaining == 0 && ast == nil {
			break
		}
		if did {
			c.now++
			continue
		}
		next, ok := c.nextEvent()
		if !ok {
			if ast == nil {
				return nil, stallError(c)
			}
			// A quiescent chunk is not necessarily stuck under adaptation: a
			// boundary activation may revive the dataflow. The step cap still
			// bounds genuinely dead runs.
			next = nextB + 1
		}
		if next <= c.now {
			next = c.now + 1
		}
		if ast != nil && next > nextB+1 {
			next = nextB + 1
		}
		c.now = next
	}
	return collect(cfg, []*chunk{c})
}

// stallError reports a deadlocked dataflow with enough context to debug the
// assignment or routing table that caused it.
func stallError(c *chunk) error {
	return fmt.Errorf("sim: stalled at step %d: %s", c.now, frontier(c))
}

// frontier summarises the chunk's stuck dataflow frontier — the first live
// column that cannot advance, its missing dependency count, and the
// outstanding work — for stall and step-cap diagnostics.
func frontier(c *chunk) string {
	for i := range c.procs {
		p := &c.procs[i]
		if p.crashed {
			continue
		}
		for j := range p.cols {
			oc := &p.cols[j]
			if oc.dormant {
				continue
			}
			if oc.next <= c.T {
				return fmt.Sprintf("pos %d col %d stuck at guest step %d (missing %d deps); %d pebbles remaining",
					p.pos, oc.col, oc.next, oc.missing, c.remaining)
			}
		}
	}
	return fmt.Sprintf("%d pebbles remaining", c.remaining)
}

// collect assembles a Result from finished chunks and optionally verifies
// every database replica against the sequential reference executor.
func collect(cfg *Config, chunks []*chunk) (*Result, error) {
	res := &Result{}
	if len(chunks) > 0 && chunks[0].tel != nil {
		// One process-wide reading at collect time; 0 means unknown
		// (non-Linux / restricted proc) and the manifest tolerates that.
		chunks[0].tel.SetMax(chunks[0].met.rssPeakBytes, int64(telemetry.ReadPeakRSS()))
	}
	var dups int64
	for _, c := range chunks {
		c.flushTelemetry() // final delta push; no-op without a registry
		if c.lastComputeStep > res.HostSteps {
			res.HostSteps = c.lastComputeStep
		}
		for i := range c.procs {
			res.PebblesComputed += c.procs[i].computed
		}
		res.Messages += c.messages
		res.MessageHops += c.hops
		res.DeliveredValues += c.delivered
		if q := c.peakQueue(); q > res.MaxQueueDepth {
			res.MaxQueueDepth = q
		}
		dups += c.duplicates
	}
	if dups > 0 {
		return nil, fmt.Errorf("sim: %d duplicate deliveries (routing bug)", dups)
	}
	if cfg.TraceWindow > 0 {
		// Pre-size both timelines to the widest chunk window count so the
		// merge is a flat O(n) accumulation instead of growing
		// element-by-element inside the loop.
		windows := 0
		for _, c := range chunks {
			if len(c.traceComputes) > windows {
				windows = len(c.traceComputes)
			}
			if len(c.traceHops) > windows {
				windows = len(c.traceHops)
			}
		}
		tr := &Trace{
			Window:   cfg.TraceWindow,
			Computes: make([]int64, windows),
			Hops:     make([]int64, windows),
		}
		for _, c := range chunks {
			for i, v := range c.traceComputes {
				tr.Computes[i] += v
			}
			for i, v := range c.traceHops {
				tr.Hops[i] += v
			}
		}
		res.Trace = tr
	}
	if cfg.CollectPerProc {
		res.PerProcComputed = make([]int64, cfg.hostN())
		for _, c := range chunks {
			for i := range c.procs {
				res.PerProcComputed[c.procs[i].pos] = c.procs[i].computed
			}
		}
	}
	if cfg.ast != nil {
		res.AdaptActivations = len(cfg.ast.decisions)
	}
	if cfg.Check {
		if err := verify(cfg, chunks); err != nil {
			return nil, err
		}
		res.Checked = true
	}
	if cfg.Recorder != nil {
		// Merge the per-chunk buffers and replay in canonical order: the
		// engines produce identical per-step event multisets, so sorting
		// hands any Recorder a stream that is bit-identical across engines
		// and worker counts.
		var events []obs.Event
		for _, c := range chunks {
			if c.buf != nil {
				events = append(events, c.buf.Events()...)
			}
		}
		if cfg.Faults != nil {
			events = append(events, faultEvents(cfg, res.HostSteps)...)
		}
		if cfg.ast != nil {
			events = append(events, cfg.ast.adaptEvents()...)
		}
		obs.Canonicalize(events)
		obs.Replay(events, cfg.Recorder)
	}
	return res, nil
}

// verify recomputes the guest sequentially and compares every replica's
// final database digest (which is order-sensitive over the full update
// history) against ground truth.
func verify(cfg *Config, chunks []*chunk) error {
	oracle, err := guest.RunDigestParallel(cfg.Guest, 0)
	if err != nil {
		return err
	}
	// Crash-stop hosts freeze mid-run; their replicas are legitimately
	// incomplete and are not checked.
	var dead map[int]bool
	if cfg.Faults != nil {
		if crashed := cfg.Faults.CrashedHosts(); len(crashed) > 0 {
			dead = make(map[int]bool, len(crashed))
			for _, h := range crashed {
				dead[h] = true
			}
		}
	}
	for _, c := range chunks {
		for _, rd := range c.finalDigests() {
			if dead[rd.pos] || rd.dormant {
				continue
			}
			if rd.version != cfg.Guest.Steps {
				return fmt.Errorf("sim: replica of db %d at pos %d has version %d, want %d",
					rd.col, rd.pos, rd.version, cfg.Guest.Steps)
			}
			if rd.digest != oracle.FinalDigests[rd.col] {
				return fmt.Errorf("sim: replica of db %d at pos %d has digest %#x, want %#x",
					rd.col, rd.pos, rd.digest, oracle.FinalDigests[rd.col])
			}
		}
	}
	return nil
}
