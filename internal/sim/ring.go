package sim

import "sync/atomic"

// spsc is a single-producer single-consumer ring buffer. The parallel
// engine's boundary path uses one per direction between adjacent chunks, so
// hot-path sends and receives are two atomic loads and one atomic store —
// never a channel operation, never a select, never an allocation.
//
// head is owned by the consumer (next slot to read), tail by the producer
// (next slot to write). Both only ever grow; the slot index is the value
// masked by len(buf)-1. The atomic tail store publishes the slot write
// (release) and the atomic head store publishes the slot read, so slices
// passed through the ring hand off cleanly between goroutines — which is
// what lets the boundary path recycle batch slices without a sync.Pool.
type spsc[T any] struct {
	buf  []T
	mask uint64
	// padded onto separate cache lines so the producer's tail writes do not
	// false-share with the consumer's head writes.
	head atomic.Uint64
	_    [56]byte
	tail atomic.Uint64
	_    [56]byte
}

// newSPSC returns a ring with the given power-of-two capacity.
func newSPSC[T any](capacity int) *spsc[T] {
	if capacity&(capacity-1) != 0 || capacity == 0 {
		panic("sim: spsc capacity must be a power of two")
	}
	return &spsc[T]{buf: make([]T, capacity), mask: uint64(capacity - 1)}
}

// push appends v; it reports false when the ring is full (producer only).
func (r *spsc[T]) push(v T) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// pop removes the oldest element; ok is false when the ring is empty
// (consumer only). The slot is zeroed so the ring never pins a retired
// batch slice against the GC.
func (r *spsc[T]) pop() (v T, ok bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return v, false
	}
	var zero T
	v = r.buf[h&r.mask]
	r.buf[h&r.mask] = zero
	r.head.Store(h + 1)
	return v, true
}

// empty reports whether the ring has nothing pending (consumer view).
func (r *spsc[T]) empty() bool { return r.head.Load() == r.tail.Load() }

// len reports how many elements are pending. Racy across threads (the two
// loads are not a snapshot) but exact from either owner's side — good enough
// for occupancy telemetry.
func (r *spsc[T]) len() int { return int(r.tail.Load() - r.head.Load()) }
