package sim

import (
	"testing"

	"latencyhide/internal/guest"
)

func singleColKnow() denseKnow {
	return newDenseKnow([]int32{7})
}

func TestColUniverse(t *testing.T) {
	g := guest.NewLinearArray(10)
	u := colUniverse(g.Neighbors, []int{3, 4})
	want := []int32{2, 3, 4, 5}
	if len(u) != len(want) {
		t.Fatalf("universe %v, want %v", u, want)
	}
	for i := range want {
		if u[i] != want[i] {
			t.Fatalf("universe %v, want %v", u, want)
		}
	}
	for i, c := range want {
		if d := denseIndex(u, c); d != int32(i) {
			t.Errorf("denseIndex(%d) = %d, want %d", c, d, i)
		}
	}
	if d := denseIndex(u, 9); d != -1 {
		t.Errorf("denseIndex(9) = %d, want -1", d)
	}
	if colUniverse(g.Neighbors, nil) != nil {
		t.Error("empty owned list must give empty universe")
	}
}

// The sliding window of the engine: put step s, retire step s-2, forever.
// The ring must wrap in place without ever growing.
func TestDenseRingWrapNoGrowth(t *testing.T) {
	k := singleColKnow()
	for s := int32(1); s <= 200; s++ {
		if head := k.put(0, s, uint64(s)*3); head != -1 {
			t.Fatalf("step %d: unexpected waiter chain %d", s, head)
		}
		if s > 2 {
			k.del(0, s-2)
		}
		if v, ok := k.get(0, s); !ok || v != uint64(s)*3 {
			t.Fatalf("step %d lost", s)
		}
		if s > 1 {
			if _, ok := k.get(0, s-1); !ok {
				t.Fatalf("step %d prematurely gone", s-1)
			}
		}
	}
	if k.grows != 0 {
		t.Errorf("sliding window grew the ring %d times", k.grows)
	}
	if k.slots != initRingSlots {
		t.Errorf("slots = %d, want %d", k.slots, initRingSlots)
	}
	if k.live != 2 {
		t.Errorf("live = %d, want 2", k.live)
	}
}

// Two live steps that collide mod the ring size force a growth that must
// rehome every live slot conflict-free.
func TestDenseRingGrowthRehomes(t *testing.T) {
	k := singleColKnow()
	k.put(0, 1, 100)
	k.put(0, 1+initRingSlots, 200) // same residue as step 1: must grow
	if k.grows != 1 {
		t.Fatalf("grows = %d, want 1", k.grows)
	}
	if v, ok := k.get(0, 1); !ok || v != 100 {
		t.Fatal("step 1 lost across growth")
	}
	if v, ok := k.get(0, 1+initRingSlots); !ok || v != 200 {
		t.Fatal("colliding step lost across growth")
	}
	if k.slots <= initRingSlots {
		t.Errorf("slots = %d did not grow", k.slots)
	}
	// A colliding span wider than double the capacity must grow past one
	// doubling, straight to a capacity covering the whole live span.
	k2 := singleColKnow()
	k2.put(0, 1, 1)
	k2.put(0, 1001, 2) // 1001 ≡ 1 mod 8: conflict, span 1001
	if _, ok := k2.get(0, 1); !ok {
		t.Fatal("step 1 lost")
	}
	if _, ok := k2.get(0, 1001); !ok {
		t.Fatal("step 1001 lost")
	}
	if int(k2.slots) < 1001 {
		t.Errorf("slots = %d, want >= span 1001", k2.slots)
	}
}

// A pending waiter anchor must hide the value from get/has, survive del, and
// hand its chain head back to put exactly once.
func TestDenseWaiterAnchor(t *testing.T) {
	k := singleColKnow()
	s := k.waiterSlot(0, 5)
	s.waitHead = 42 // chain a fake pool node, as addWaiter does
	if _, ok := k.get(0, 5); ok {
		t.Fatal("pending slot readable as value")
	}
	if k.has(0, 5) {
		t.Fatal("pending slot reported known")
	}
	k.del(0, 5) // engine never retires a pending slot; must be a no-op
	if k.size() != 1 {
		t.Fatalf("del removed a pending anchor: size %d", k.size())
	}
	if head := k.put(0, 5, 77); head != 42 {
		t.Fatalf("put returned chain %d, want 42", head)
	}
	if v, ok := k.get(0, 5); !ok || v != 77 {
		t.Fatal("value missing after resolving waiters")
	}
	if head := k.put(0, 5, 77); head != -1 {
		t.Fatalf("second put returned chain %d, want -1", head)
	}
}

// A growth spike must be temporary: once the spiked values retire, the ring
// shrinks back to initRingSlots and only slotsPeak remembers the spike.
func TestDenseRingShrinkAfterSpike(t *testing.T) {
	k := singleColKnow()
	for s := int32(1); s <= 32; s++ {
		k.put(0, s, uint64(s))
	}
	if k.slots != 32 {
		t.Fatalf("slots = %d after spike, want 32", k.slots)
	}
	for s := int32(1); s <= 24; s++ {
		k.del(0, s)
	}
	if k.shrinks != 1 {
		t.Fatalf("shrinks = %d, want 1", k.shrinks)
	}
	if k.slots != initRingSlots {
		t.Fatalf("slots = %d after drain, want %d", k.slots, initRingSlots)
	}
	if k.slotsPeak != 32 {
		t.Fatalf("slotsPeak = %d, want 32 (the spike)", k.slotsPeak)
	}
	for s := int32(25); s <= 32; s++ {
		if v, ok := k.get(0, s); !ok || v != uint64(s) {
			t.Fatalf("step %d lost across shrink", s)
		}
	}
	if k.live != 8 {
		t.Fatalf("live = %d, want 8", k.live)
	}
}

// Shrink must rehome surviving steps whose residues wrap around the smaller
// ring: survivors {6,7,8,9} land at residues {6,7,0,1} mod 8.
func TestDenseRingShrinkWrapBoundary(t *testing.T) {
	k := singleColKnow()
	for s := int32(1); s <= 16; s++ {
		k.put(0, s, uint64(s)*11)
	}
	if k.slots != 16 {
		t.Fatalf("slots = %d, want 16", k.slots)
	}
	for s := int32(1); s <= 5; s++ {
		k.del(0, s)
	}
	for s := int32(10); s <= 16; s++ {
		k.del(0, s)
	}
	if k.shrinks != 1 || k.slots != initRingSlots {
		t.Fatalf("shrinks = %d slots = %d, want 1 and %d", k.shrinks, k.slots, initRingSlots)
	}
	for s := int32(6); s <= 9; s++ {
		if v, ok := k.get(0, s); !ok || v != uint64(s)*11 {
			t.Fatalf("step %d lost across wrapping shrink", s)
		}
	}
}

// A pending waiter anchor must ride through a shrink with its chain intact.
func TestDenseWaiterSurvivesShrink(t *testing.T) {
	k := singleColKnow()
	for s := int32(1); s <= 16; s++ {
		if s != 10 {
			k.put(0, s, uint64(s))
		}
	}
	ws := k.waiterSlot(0, 10)
	ws.waitHead = 42 // chain a fake pool node, as addWaiter does
	for _, s := range []int32{1, 2, 3, 4, 5, 6, 7, 8, 9, 14, 15, 16} {
		k.del(0, s)
	}
	if k.shrinks != 1 || k.slots != initRingSlots {
		t.Fatalf("shrinks = %d slots = %d, want 1 and %d", k.shrinks, k.slots, initRingSlots)
	}
	if k.size() != 4 {
		t.Fatalf("size = %d, want 4 (3 values + 1 pending)", k.size())
	}
	if head := k.put(0, 10, 99); head != 42 {
		t.Fatalf("put after shrink returned chain %d, want 42", head)
	}
	for s := int32(11); s <= 13; s++ {
		if _, ok := k.get(0, s); !ok {
			t.Fatalf("step %d lost across shrink", s)
		}
	}
}

// Sparse survivors spanning more than the target capacity must refuse to
// shrink (capacity >= span is the residue-distinctness invariant).
func TestDenseRingShrinkRefusesWideSpan(t *testing.T) {
	k := singleColKnow()
	k.put(0, 1, 1)
	k.put(0, 33, 2) // 33 ≡ 1 mod 8: conflict, span 33 -> cap 64
	if k.slots != 64 {
		t.Fatalf("slots = %d, want 64", k.slots)
	}
	for s := int32(2); s <= 16; s++ {
		k.put(0, s, uint64(s))
	}
	// live 17 -> 16 crosses len/4, but survivors {1..15, 33} span 33 > 32:
	// the shrink must refuse rather than break residue distinctness.
	k.del(0, 16)
	if k.shrinks != 0 {
		t.Fatalf("shrank with live span still wide: %d", k.shrinks)
	}
	if _, ok := k.get(0, 33); !ok {
		t.Fatal("step 33 lost")
	}
	for s := int32(1); s <= 15; s++ {
		k.del(0, s)
	}
	k.del(0, 33) // live crosses 0: drained ring finally shrinks home
	if k.shrinks != 1 || k.slots != initRingSlots {
		t.Fatalf("drained ring did not shrink: shrinks %d slots %d", k.shrinks, k.slots)
	}
}

// Engine-level retire-on-frontier: a fault-free run must finish with every
// knowledge store empty and every ring back at its initial capacity — eager
// retirement frees each value as the last local consumer advances past it,
// and the final del of a grown ring shrinks it home.
func TestEagerRetirementDrainsKnowledge(t *testing.T) {
	cfg, rt := faultConfig(t)
	c := runChunkToCompletion(t, cfg, rt)
	for i := range c.procs {
		p := &c.procs[i]
		if p.know.live != 0 {
			t.Fatalf("pos %d: %d live slots after completion", i, p.know.live)
		}
		if want := int32(len(p.know.universe) * initRingSlots); p.know.slots != want {
			t.Fatalf("pos %d: %d slots after completion, want %d", i, p.know.slots, want)
		}
	}
}

// FuzzDenseKnowledge drives random (col, step) operation sequences against
// the dense store and the u64map oracle and asserts identical observable
// results. The universe is fixed and small so rings collide and grow; steps
// span enough range to force multi-doubling growth and wraparound. Shrinks
// fire inside del, so every shrink is checked against the oracle too: the
// live count, every stored value (final sweep), and the floor/peak slot
// invariants must hold after it.
func FuzzDenseKnowledge(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 0, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{1, 1, 200, 0, 1, 1, 8, 0, 0, 1, 200, 0, 2, 1, 200, 0})
	f.Add([]byte{3, 2, 5, 0, 1, 2, 5, 0, 0, 2, 5, 0, 3, 3, 9, 1, 2, 3, 9, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		universe := []int32{2, 5, 7, 9, 100}
		k := newDenseKnow(universe)
		oracle := newU64map()        // known values, keyed kkey(col, step)
		pending := map[uint64]bool{} // waiter anchors the oracle can't hold
		for len(data) >= 4 {
			op, ci := data[0]&3, int32(data[1])%int32(len(universe))
			step := 1 + int32(data[2]) | int32(data[3]&0x0f)<<8
			data = data[4:]
			col := universe[ci]
			key := kkey(col, step)
			switch op {
			case 0: // get
				v, ok := k.get(ci, step)
				ov, ook := oracle.get(key)
				if ok != ook || (ok && v != ov) {
					t.Fatalf("get(%d,%d) = %d,%v; oracle %d,%v", col, step, v, ok, ov, ook)
				}
			case 1: // put
				val := uint64(step)*1000 + uint64(col)
				head := k.put(ci, step, val)
				if pending[key] {
					if head < 0 {
						t.Fatalf("put(%d,%d) dropped a pending waiter chain", col, step)
					}
					delete(pending, key)
				} else if head != -1 {
					t.Fatalf("put(%d,%d) invented waiter chain %d", col, step, head)
				}
				oracle.put(key, val)
			case 2: // del (engine only retires known values)
				k.del(ci, step)
				if !pending[key] {
					oracle.del(key)
				}
			default: // wait: engine only waits when the value is unknown
				if k.has(ci, step) {
					continue
				}
				s := k.waiterSlot(ci, step)
				if s.step != step {
					t.Fatalf("waiterSlot(%d,%d) claimed step %d", col, step, s.step)
				}
				s.waitHead = 7 // chain a fake pool node, as addWaiter does
				pending[key] = true
			}
			if k.size() != oracle.size()+len(pending) {
				t.Fatalf("live %d != oracle %d + pending %d",
					k.size(), oracle.size(), len(pending))
			}
			if k.slots < int32(len(universe)*initRingSlots) {
				t.Fatalf("slots %d below the initRingSlots floor", k.slots)
			}
			if k.slotsPeak < k.slots {
				t.Fatalf("slotsPeak %d < slots %d", k.slotsPeak, k.slots)
			}
		}
		// Final sweep: every key the oracle holds must be readable densely.
		for ci, col := range universe {
			for step := int32(1); step <= 1+255+0x0f<<8; step++ {
				ov, ook := oracle.get(kkey(col, step))
				v, ok := k.get(int32(ci), step)
				if ok != ook || (ok && v != ov) {
					t.Fatalf("sweep (%d,%d): dense %d,%v oracle %d,%v", col, step, v, ok, ov, ook)
				}
			}
		}
	})
}
