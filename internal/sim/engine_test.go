package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
)

func unitDelays(n int) []int {
	d := make([]int, n-1)
	for i := range d {
		d[i] = 1
	}
	return d
}

func TestValidateErrors(t *testing.T) {
	a, _ := assign.SingleCopyBlocks(4, 8)
	good := Config{
		Delays: unitDelays(4),
		Guest:  guest.Spec{Graph: guest.NewLinearArray(8), Steps: 2},
		Assign: a,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Assign = nil
	if _, err := Run(bad); err == nil {
		t.Fatal("nil assignment accepted")
	}
	bad = good
	bad.Delays = unitDelays(5)
	if _, err := Run(bad); err == nil {
		t.Fatal("host size mismatch accepted")
	}
	bad = good
	bad.Guest.Graph = guest.NewLinearArray(9)
	if _, err := Run(bad); err == nil {
		t.Fatal("column count mismatch accepted")
	}
	bad = good
	bad.Delays = []int{1, 0, 1}
	if _, err := Run(bad); err == nil {
		t.Fatal("zero delay accepted")
	}
	bad = good
	bad.Guest.Steps = -1
	if _, err := Run(bad); err == nil {
		t.Fatal("negative steps accepted")
	}
}

func TestZeroSteps(t *testing.T) {
	a, _ := assign.SingleCopyBlocks(4, 8)
	res, err := Run(Config{
		Delays: unitDelays(4),
		Guest:  guest.Spec{Graph: guest.NewLinearArray(8), Steps: 0},
		Assign: a,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HostSteps != 0 || res.PebblesComputed != 0 {
		t.Fatalf("zero-step run: %+v", res)
	}
}

func TestSingleWorkstation(t *testing.T) {
	a, _ := assign.SingleCopyBlocks(1, 5)
	res, err := Run(Config{
		Delays: nil,
		Guest:  guest.Spec{Graph: guest.NewLinearArray(5), Steps: 7, Seed: 3},
		Assign: a,
		Check:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// one workstation computes 5 pebbles per guest step sequentially
	if res.HostSteps != 35 {
		t.Fatalf("host steps %d want 35", res.HostSteps)
	}
	if res.Messages != 0 {
		t.Fatalf("messages %d on a single workstation", res.Messages)
	}
}

// TestBandwidthSemantics pins the paper's cost model exactly: P pebbles
// cross a d-delay link in d + ceil(P/B) - 1 steps. A star guest (one
// consumer adjacent to P producers) forces a P-pebble burst across one link.
func TestBandwidthSemantics(t *testing.T) {
	for _, tc := range []struct{ p, b, d int }{
		{6, 1, 4}, {6, 2, 4}, {6, 3, 4}, {6, 6, 4}, {7, 3, 10}, {1, 1, 9}, {12, 5, 2},
	} {
		adj := make([][]int, tc.p+1)
		consumer := tc.p
		for i := 0; i < tc.p; i++ {
			adj[i] = []int{consumer}
			adj[consumer] = append(adj[consumer], i)
		}
		g := guest.NewCustom("star", adj)
		owned := [][]int{make([]int, tc.p), {consumer}}
		for i := 0; i < tc.p; i++ {
			owned[0][i] = i
		}
		a, err := assign.FromOwned(2, tc.p+1, owned)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Delays:         []int{tc.d},
			Guest:          guest.Spec{Graph: g, Steps: 2, Seed: 1},
			Assign:         a,
			Bandwidth:      tc.b,
			ComputePerStep: tc.p + 1, // producers all compute at step 1
			Check:          true,
		})
		if err != nil {
			t.Fatalf("p=%d b=%d d=%d: %v", tc.p, tc.b, tc.d, err)
		}
		// Producers compute step 1 at host step 1 and inject the burst at
		// step 1; the consumer's step-2 pebble completes when the last of
		// the P pebbles lands: d + ceil(P/B) - 1 after injection, i.e. at
		// host step 1 + d + ceil(P/B) - 1.
		want := int64(1 + tc.d + (tc.p+tc.b-1)/tc.b - 1)
		if res.HostSteps != want {
			t.Fatalf("p=%d b=%d d=%d: host steps %d want %d", tc.p, tc.b, tc.d, res.HostSteps, want)
		}
	}
}

// TestLatencyChain pins the latency model on a relay path: a value crossing
// k links of delay d arrives after k*d steps (store-and-forward relaying is
// free).
func TestLatencyChain(t *testing.T) {
	// hosts 0..3; guest: two adjacent columns at the far ends
	g := guest.NewLinearArray(2)
	owned := [][]int{{0}, nil, nil, {1}}
	a, err := assign.FromOwned(4, 2, owned)
	if err != nil {
		t.Fatal(err)
	}
	d := 5
	res, err := Run(Config{
		Delays: []int{d, d, d},
		Guest:  guest.Spec{Graph: g, Steps: 2, Seed: 2},
		Assign: a,
		Check:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// step 1 computed at 1 on both ends; values cross 3 links (15 steps);
	// step 2 computed at 1 + 15 = 16.
	if res.HostSteps != int64(1+3*d) {
		t.Fatalf("host steps %d want %d", res.HostSteps, 1+3*d)
	}
	if res.MessageHops != 2*3 {
		t.Fatalf("hops %d want 6", res.MessageHops)
	}
}

func TestRingGuestWraparound(t *testing.T) {
	// A guest ring's wrap column pair (0, m-1) lives at opposite host
	// ends; the multicast must cross the whole line.
	m := 12
	a, err := assign.SingleCopyBlocks(6, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Delays: unitDelays(6),
		Guest:  guest.Spec{Graph: guest.NewRing(m), Steps: 6, Seed: 5},
		Assign: a,
		Check:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Checked {
		t.Fatal("unchecked")
	}
	// wrap traffic forces slowdown at least the line diameter / steps
	if res.HostSteps < 6 {
		t.Fatalf("suspiciously fast: %d", res.HostSteps)
	}
}

func TestMeshGuest(t *testing.T) {
	rows, cols := 4, 6
	g := guest.NewMesh(rows, cols)
	owned := make([][]int, 3)
	for c := 0; c < cols; c++ {
		p := c / 2
		for r := 0; r < rows; r++ {
			owned[p] = append(owned[p], r*cols+c)
		}
	}
	a, err := assign.FromOwned(3, rows*cols, owned)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Delays: []int{3, 7},
		Guest:  guest.Spec{Graph: g, Steps: 5, Seed: 8},
		Assign: a,
		Check:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PebblesComputed != int64(rows*cols*5) {
		t.Fatalf("pebbles %d", res.PebblesComputed)
	}
}

func TestCustomOpAndKVDBThroughEngine(t *testing.T) {
	op := func(db uint64, node, step int, self uint64, ns []uint64) uint64 {
		v := self + db + uint64(step)
		for _, x := range ns {
			v += x * 3
		}
		return v
	}
	a, _ := assign.UniformBlocks(4, 3, 3, 0)
	res, err := Run(Config{
		Delays: []int{2, 9, 2},
		Guest: guest.Spec{
			Graph:       guest.NewLinearArray(a.Columns),
			Steps:       6,
			Seed:        11,
			Op:          op,
			Init:        func(node int, seed int64) uint64 { return uint64(node) ^ uint64(seed) },
			NewDatabase: guest.KVFactory(16),
		},
		Assign: a,
		Check:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Checked {
		t.Fatal("custom op run not verified")
	}
}

func TestMaxStepsExceeded(t *testing.T) {
	a, _ := assign.SingleCopyBlocks(2, 4)
	_, err := Run(Config{
		Delays:   []int{1000},
		Guest:    guest.Spec{Graph: guest.NewLinearArray(4), Steps: 8, Seed: 1},
		Assign:   a,
		MaxSteps: 10,
	})
	if err == nil {
		t.Fatal("expected step-cap error")
	}
}

func TestPerProcCollection(t *testing.T) {
	a, _ := assign.SingleCopyBlocks(4, 8)
	res, err := Run(Config{
		Delays:         unitDelays(4),
		Guest:          guest.Spec{Graph: guest.NewLinearArray(8), Steps: 3, Seed: 1},
		Assign:         a,
		CollectPerProc: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range res.PerProcComputed {
		sum += c
	}
	if sum != res.PebblesComputed || len(res.PerProcComputed) != 4 {
		t.Fatalf("per-proc %v vs total %d", res.PerProcComputed, res.PebblesComputed)
	}
}

func TestRouteTableProperties(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		hostN := 2 + r.Intn(12)
		m := 1 + r.Intn(30)
		// random multi-copy assignment covering every column
		owned := make([][]int, hostN)
		used := make([]map[int]bool, hostN)
		for i := range used {
			used[i] = map[int]bool{}
		}
		addCopy := func(c, p int) {
			if !used[p][c] {
				used[p][c] = true
				owned[p] = append(owned[p], c)
			}
		}
		for c := 0; c < m; c++ {
			addCopy(c, r.Intn(hostN))
			for extra := 0; extra < r.Intn(3); extra++ {
				addCopy(c, r.Intn(hostN))
			}
		}
		a, err := assign.FromOwned(hostN, m, owned)
		if err != nil {
			t.Fatal(err)
		}
		g := guest.NewLinearArray(m)
		rt := buildRoutes(g, a, nil, nil)
		if err := rt.validate(hostN); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// per column: the union of route dests equals
		// holders(neighbors) \ holders(col), with no duplicates
		covered := make(map[[2]int]bool)
		for id, rr := range rt.routes {
			if !a.Holds(int(rr.sender), int(rr.col)) {
				t.Fatalf("sender %d does not hold col %d", rr.sender, rr.col)
			}
			for _, dst := range rt.destsOf(int32(id)) {
				key := [2]int{int(rr.col), int(dst)}
				if covered[key] {
					t.Fatalf("col %d dest %d covered twice", rr.col, dst)
				}
				covered[key] = true
				if a.Holds(int(dst), int(rr.col)) {
					t.Fatalf("dest %d holds col %d (should compute, not receive)", dst, rr.col)
				}
			}
		}
		for c := 0; c < m; c++ {
			want := map[int]bool{}
			for _, nb := range g.Neighbors(c) {
				for _, p := range a.Holders[nb] {
					want[p] = true
				}
			}
			for _, p := range a.Holders[c] {
				delete(want, p)
			}
			for p := range want {
				if !covered[[2]int{c, p}] {
					t.Fatalf("col %d dest %d not covered by any route", c, p)
				}
			}
			for key := range covered {
				if key[0] == c && !want[key[1]] {
					t.Fatalf("col %d dest %d covered but not needed", c, key[1])
				}
			}
		}
	}
}

// Property: sequential and parallel engines agree exactly on random
// heterogeneous configurations.
func TestEnginesAgreeProperty(t *testing.T) {
	f := func(seed int64, workersSel, hostSel uint8) bool {
		r := rand.New(rand.NewSource(seed))
		hostN := 8 + int(hostSel%5)*8
		delays := make([]int, hostN-1)
		for i := range delays {
			delays[i] = 1 + r.Intn(30)
		}
		a, err := assign.UniformBlocks(hostN, 2, 4, 0)
		if err != nil {
			return false
		}
		cfg := Config{
			Delays: delays,
			Guest:  guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 12, Seed: seed},
			Assign: a,
		}
		seq, err := Run(cfg)
		if err != nil {
			return false
		}
		cfg.Workers = 2 + int(workersSel%6)
		par, err := Run(cfg)
		if err != nil {
			return false
		}
		return seq.HostSteps == par.HostSteps &&
			seq.PebblesComputed == par.PebblesComputed &&
			seq.Messages == par.Messages &&
			seq.MessageHops == par.MessageHops &&
			seq.DeliveredValues == par.DeliveredValues
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelCheckVerifies(t *testing.T) {
	a, _ := assign.UniformBlocks(16, 2, 4, 0)
	res, err := Run(Config{
		Delays:  unitDelays(16),
		Guest:   guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 20, Seed: 6},
		Assign:  a,
		Workers: 4,
		Check:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Checked {
		t.Fatal("parallel run not verified")
	}
}

func TestSplitPositions(t *testing.T) {
	delays := make([]int, 63)
	for i := range delays {
		delays[i] = 1
	}
	delays[20] = 100
	delays[40] = 100
	cuts := splitPositions(delays, 3)
	if len(cuts) != 4 || cuts[0] != 0 || cuts[3] != 64 {
		t.Fatalf("cuts %v", cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not increasing: %v", cuts)
		}
	}
	// cut nudging should find the big-delay links
	if cuts[1] != 21 || cuts[2] != 41 {
		t.Logf("cuts %v did not land on the slow links (ok but suboptimal)", cuts)
	}
}

func TestHighWorkerCountClamped(t *testing.T) {
	a, _ := assign.SingleCopyBlocks(8, 16)
	res, err := Run(Config{
		Delays:  unitDelays(8),
		Guest:   guest.Spec{Graph: guest.NewLinearArray(16), Steps: 5, Seed: 9},
		Assign:  a,
		Workers: 100,
		Check:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Checked {
		t.Fatal("clamped worker run failed")
	}
}

// Per-link bandwidth overrides: the star-burst crossing a link obeys that
// link's own capacity, not the global default.
func TestPerLinkBandwidth(t *testing.T) {
	p, d := 8, 6
	adj := make([][]int, p+1)
	consumer := p
	for i := 0; i < p; i++ {
		adj[i] = []int{consumer}
		adj[consumer] = append(adj[consumer], i)
	}
	g := guest.NewCustom("star", adj)
	owned := [][]int{make([]int, p), {consumer}}
	for i := 0; i < p; i++ {
		owned[0][i] = i
	}
	a, err := assign.FromOwned(2, p+1, owned)
	if err != nil {
		t.Fatal(err)
	}
	for _, linkBW := range []int{1, 2, 4} {
		res, err := Run(Config{
			Delays:         []int{d},
			Guest:          guest.Spec{Graph: g, Steps: 2, Seed: 1},
			Assign:         a,
			Bandwidth:      99, // global default is wide; the link override narrows it
			LinkBandwidth:  []int{linkBW},
			ComputePerStep: p + 1,
			Check:          true,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := int64(1 + d + (p+linkBW-1)/linkBW - 1)
		if res.HostSteps != want {
			t.Fatalf("linkBW=%d: host steps %d want %d", linkBW, res.HostSteps, want)
		}
	}
	// validation
	bad := Config{
		Delays:        []int{1, 1},
		Guest:         guest.Spec{Graph: guest.NewLinearArray(3), Steps: 1},
		Assign:        mustBlocks(t, 3, 3),
		LinkBandwidth: []int{1},
	}
	if _, err := Run(bad); err == nil {
		t.Fatal("wrong-length LinkBandwidth accepted")
	}
	bad.LinkBandwidth = []int{1, -2}
	if _, err := Run(bad); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func mustBlocks(t *testing.T, hostN, m int) *assign.Assignment {
	t.Helper()
	a, err := assign.SingleCopyBlocks(hostN, m)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// One guest step on a single-copy boundary pair costs a full round trip:
// the generalized ping-pong dependency that PropagationLB certifies.
func TestPingPongRate(t *testing.T) {
	// columns 0..5 on host 0, 6..11 on host 1, link delay 20
	owned := [][]int{{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11}}
	a, err := assign.FromOwned(2, 12, owned)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Delays: []int{20},
		Guest:  guest.Spec{Graph: guest.NewLinearArray(12), Steps: 40, Seed: 1},
		Assign: a,
		Check:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// boundary columns 5 and 6 exchange every step: the chained bound
	// gives slowdown >= dist/w = 20; interior slack is only 5 columns
	if res.Slowdown < 15 {
		t.Fatalf("slowdown %.1f below the ping-pong floor ~20", res.Slowdown)
	}
	if res.Slowdown > 45 {
		t.Fatalf("slowdown %.1f far above the ping-pong rate", res.Slowdown)
	}
}
