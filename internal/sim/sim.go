// Package sim is the host simulator: it executes a guest computation in the
// database model (Section 2) on a host linear array with arbitrary link
// delays, charging exactly the paper's communication cost — a message
// injected on a delay-d link at step s is deliverable at step s+d, and each
// directed link injects at most B pebbles per step, so P pebbles cross in
// d + ceil(P/B) - 1 steps.
//
// General bounded-degree hosts are handled upstream by embedding a linear
// array with dilation 3 (Fact 3, package embedding); the engine itself always
// runs on a line, which is how every simulation in the paper is organised.
//
// Execution is greedy dataflow: a host processor holding a replica of
// database b_i computes every pebble (i, t) in step order, as soon as the
// dependency pebbles (i-1, t-1), (i, t-1), (i+1, t-1) are known to it; each
// computed pebble is multicast to the processors that need it but cannot
// compute it themselves. The greedy policy executes any feasible schedule no
// later than the schedule itself up to constants, and keeps the engine
// independent of the particular assignment (OVERLAP, Theorem 4 blocks,
// single-copy baselines, ... all run unmodified).
//
// Two engines share the same step semantics: a sequential engine, and a
// conservative parallel discrete-event engine (one goroutine per contiguous
// chunk of the line, null-message synchronisation with lookahead equal to
// the boundary link delay). They produce bit-identical results; tests assert
// it.
package sim

import (
	"fmt"
	"time"

	"latencyhide/internal/adapt"
	"latencyhide/internal/assign"
	"latencyhide/internal/fault"
	"latencyhide/internal/guest"
	"latencyhide/internal/network"
	"latencyhide/internal/obs"
	"latencyhide/internal/telemetry"
)

// Config describes one host simulation run.
type Config struct {
	// Delays[i] is the delay of host line link (i, i+1); the host has
	// len(Delays)+1 workstations.
	Delays []int
	// Guest is the guest computation (graph, steps, seed, databases).
	Guest guest.Spec
	// Assign maps guest columns to host positions. Assign.HostN must equal
	// len(Delays)+1 and Assign.Columns must equal the guest node count.
	Assign *assign.Assignment
	// Bandwidth is the number of pebbles each directed link can inject per
	// step. Zero means the paper's high-bandwidth assumption,
	// max(1, ceil(log2 hostN)).
	Bandwidth int
	// LinkBandwidth optionally overrides Bandwidth per link: entry i
	// applies to both directions of link (i, i+1); zero entries fall back
	// to Bandwidth. Must be empty or len(Delays) long.
	LinkBandwidth []int
	// ComputePerStep is how many pebbles one workstation computes per
	// step; zero means 1 (the paper's model).
	ComputePerStep int
	// MaxSteps aborts runs that exceed it (a stall safety net); zero
	// picks a generous default derived from the work and delay volume.
	MaxSteps int64
	// Workers > 1 selects the parallel engine with that many chunks.
	Workers int
	// Check verifies every database replica's final digest against the
	// sequential reference executor.
	Check bool
	// CollectPerProc retains per-workstation compute counts in the result.
	CollectPerProc bool
	// TraceWindow > 0 collects a utilization timeline: pebbles computed
	// and link crossings per window of that many host steps.
	TraceWindow int
	// Recorder, when non-nil, receives the run's structured event stream
	// (package obs). Both engines buffer events per chunk and replay the
	// merged stream in canonical order after the run, so the same Recorder
	// sees a bit-identical stream from either engine. Nil costs nothing.
	Recorder obs.Recorder
	// Faults, when non-nil, injects the plan's deterministic faults (link
	// jitter, link outages, host slowdowns, crash-stop hosts — see
	// internal/fault and faults.go). Crash-stop hosts are excluded from
	// routing up front; if that orphans a column (no surviving replica),
	// Run fails fast with *UncomputableError. Nil or empty plans are a true
	// no-op.
	Faults *fault.Plan
	// Adapt, when enabled, runs the adaptive replication controller
	// (internal/adapt): dormant standby replicas are provisioned at build
	// time and activated at epoch boundaries when the stall forensics blame
	// a column past the policy threshold. Fully deterministic: adaptive runs
	// stay bit-identical across engines and worker counts (see adapt.go).
	Adapt *adapt.Policy
	// WatchdogIdle is how long the parallel engine tolerates zero global
	// progress before declaring the dataflow deadlocked. Zero keeps the
	// historical default (6s); negative disables the watchdog entirely
	// (useful under -race on slow shared runners, where a correct run can
	// wall-clock stall long enough to trip a fixed timeout).
	WatchdogIdle time.Duration
	// Telemetry, when non-nil, receives the engine's runtime metrics: Run
	// registers the engine schema on it and both engines cut one shard per
	// chunk (plus one for the parallel watchdog). Hot-path accumulation is
	// plain fields flushed into the shard every 64 steps, so enabling it is
	// cheap and nil disables it down to a single branch per step. See
	// internal/sim/telemetry.go for the metric names.
	Telemetry *telemetry.Registry

	// em caches the resolved metric IDs for this run; set by Run.
	em *engineMetrics
	// ast is the resolved adaptive-replication state; set by Run when Adapt
	// is enabled.
	ast *adaptState
}

func (c *Config) hostN() int { return len(c.Delays) + 1 }

func (c *Config) bandwidth() int {
	if c.Bandwidth > 0 {
		return c.Bandwidth
	}
	b := network.Log2Ceil(c.hostN())
	if b < 1 {
		b = 1
	}
	return b
}

// linkBandwidth resolves the effective bandwidth of link (i, i+1).
func (c *Config) linkBandwidth(i int) int {
	if i < len(c.LinkBandwidth) && c.LinkBandwidth[i] > 0 {
		return c.LinkBandwidth[i]
	}
	return c.bandwidth()
}

func (c *Config) computePerStep() int {
	if c.ComputePerStep > 0 {
		return c.ComputePerStep
	}
	return 1
}

func (c *Config) maxSteps() int64 {
	if c.MaxSteps > 0 {
		return c.MaxSteps
	}
	var total int64
	dmax := 0
	for _, d := range c.Delays {
		total += int64(d)
		if d > dmax {
			dmax = d
		}
	}
	load := int64(c.Assign.Load())
	t := int64(c.Guest.Steps)
	// Generous: work term + delay term, with headroom.
	cap := 64*(t*(load+1)+int64(dmax)*(t+2)) + 4*total + 1<<16
	return cap
}

// Validate checks the configuration is runnable.
func (c *Config) Validate() error {
	if err := c.Guest.Validate(); err != nil {
		return err
	}
	if c.Assign == nil {
		return fmt.Errorf("sim: nil assignment")
	}
	if c.Assign.HostN != c.hostN() {
		return fmt.Errorf("sim: assignment hosts %d != line size %d", c.Assign.HostN, c.hostN())
	}
	if c.Assign.Columns != c.Guest.Graph.NumNodes() {
		return fmt.Errorf("sim: assignment columns %d != guest nodes %d",
			c.Assign.Columns, c.Guest.Graph.NumNodes())
	}
	for i, d := range c.Delays {
		if d < 1 {
			return fmt.Errorf("sim: link %d has delay %d < 1", i, d)
		}
	}
	if len(c.LinkBandwidth) != 0 && len(c.LinkBandwidth) != len(c.Delays) {
		return fmt.Errorf("sim: LinkBandwidth has %d entries for %d links",
			len(c.LinkBandwidth), len(c.Delays))
	}
	for i, b := range c.LinkBandwidth {
		if b < 0 {
			return fmt.Errorf("sim: link %d has bandwidth %d < 0", i, b)
		}
	}
	if err := c.Assign.Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(c.hostN()); err != nil {
		return err
	}
	if err := c.Adapt.Validate(); err != nil {
		return err
	}
	return nil
}

// Result reports what a run measured.
type Result struct {
	GuestSteps int
	HostSteps  int64   // step at which the last pebble was computed
	Slowdown   float64 // HostSteps / GuestSteps
	Load       int     // max databases per workstation

	PebblesComputed int64   // includes redundant recomputation
	GuestWork       int64   // guest nodes * steps
	Redundancy      float64 // PebblesComputed / GuestWork
	Messages        int64   // pebble transmissions injected into links
	MessageHops     int64   // total link crossings
	DeliveredValues int64
	MaxQueueDepth   int // deepest injection queue seen (bandwidth pressure)

	Bandwidth int
	Checked   bool // final database digests verified against the reference

	// AdaptActivations is how many standby replicas the adaptive controller
	// activated (0 unless Config.Adapt is enabled).
	AdaptActivations int

	PerProcComputed []int64 // only when CollectPerProc

	// Trace is the utilization timeline when Config.TraceWindow > 0.
	Trace *Trace

	// Chunks holds per-chunk engine gauges from parallel runs (empty for
	// the sequential engine). These are wall-clock measurements — they are
	// not part of the deterministic result and differ run to run.
	Chunks []obs.ChunkGauge
}

// Trace is a windowed timeline of engine activity: entry w covers host
// steps [w*Window+1, (w+1)*Window].
type Trace struct {
	Window   int
	Computes []int64 // pebbles computed per window
	Hops     []int64 // link crossings per window
}

// Utilization returns the fraction of total compute capacity used in each
// window, given the number of busy-capable workstations.
func (t *Trace) Utilization(procs int) []float64 {
	out := make([]float64, len(t.Computes))
	den := float64(procs * t.Window)
	if den <= 0 {
		return out
	}
	for i, c := range t.Computes {
		out[i] = float64(c) / den
	}
	return out
}

// ObsInfo builds the static run facts package obs's instruments need
// alongside the event stream, from this configuration and a finished run's
// result.
func (c *Config) ObsInfo(res *Result) obs.RunInfo {
	n := c.hostN()
	info := obs.RunInfo{
		HostN:       n,
		GuestSteps:  c.Guest.Steps,
		Delays:      append([]int(nil), c.Delays...),
		LinkBW:      make([]int, len(c.Delays)),
		ProcPebbles: make([]int64, n),
		Neighbors:   c.Guest.Graph.Neighbors,
	}
	if res != nil {
		info.HostSteps = res.HostSteps
	}
	for i := range c.Delays {
		info.LinkBW[i] = c.linkBandwidth(i)
	}
	for p := 0; p < n; p++ {
		info.ProcPebbles[p] = int64(len(c.Assign.Owned[p])) * int64(c.Guest.Steps)
	}
	return info
}

// Run executes the simulation and returns measurements. It returns an error
// for invalid configurations, stalls (deadlocked dataflow — always an
// assignment/routing bug), exceeded step caps, and fault plans that crash
// every replica of some column (*UncomputableError).
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var crashed []int
	if cfg.Faults != nil {
		crashed = cfg.Faults.CrashedHosts()
		if len(crashed) > 0 {
			if orphans := orphanedColumns(&cfg, crashed); len(orphans) > 0 {
				return nil, &UncomputableError{Columns: orphans, Crashed: crashed}
			}
		}
	}
	if cfg.Adapt.Enabled() {
		cfg.ast = newAdaptState(&cfg, crashed)
	}
	var extra [][]int
	if cfg.ast != nil {
		extra = cfg.ast.extraCols
	}
	routes := buildRoutes(cfg.Guest.Graph, cfg.Assign, crashed, extra)
	if cfg.Telemetry != nil {
		cfg.em = registerEngineMetrics(cfg.Telemetry)
	}
	var (
		res *Result
		err error
	)
	if cfg.Workers > 1 {
		res, err = runParallel(&cfg, routes)
	} else {
		res, err = runSequential(&cfg, routes)
	}
	if err != nil {
		return nil, err
	}
	res.GuestSteps = cfg.Guest.Steps
	res.GuestWork = int64(cfg.Guest.Graph.NumNodes()) * int64(cfg.Guest.Steps)
	if cfg.Guest.Steps > 0 {
		res.Slowdown = float64(res.HostSteps) / float64(cfg.Guest.Steps)
	}
	if res.GuestWork > 0 {
		res.Redundancy = float64(res.PebblesComputed) / float64(res.GuestWork)
	}
	res.Load = cfg.Assign.Load()
	res.Bandwidth = cfg.bandwidth()
	return res, err
}
