package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The parallel engine is a conservative parallel discrete-event simulator:
// the host line is split into contiguous chunks, one goroutine each, and
// chunks synchronise with the classic null-message protocol. The lookahead
// between adjacent chunks is the boundary link delay: a chunk whose clock is
// at step s cannot send anything that arrives before s + d_boundary, so its
// neighbor may safely simulate up to that horizon. Splits are nudged onto
// the highest-delay links nearby, because lookahead — and therefore
// parallelism — scales with the boundary delay.
//
// The engine is bit-identical to the sequential one: chunk-local step
// semantics are shared (chunk.go), boundary messages carry the same stamped
// arrival steps they would have had on a local link, and same-step delivery
// order is fixed by the calendar's (position, from-left-first) key.

// bupdate is one boundary message between adjacent chunks: a batch of
// stamped messages plus the sender's new clock (the null-message part).
type bupdate struct {
	clock int64
	batch []timedMsg
}

const farFuture = math.MaxInt64 / 4

type worker struct {
	c                     *chunk
	leftIn, rightIn       <-chan bupdate
	leftOut, rightOut     chan<- bupdate
	leftClock             int64
	rightClock            int64
	leftDelay, rightDelay int64
	sentClock             int64

	global   *int64 // remaining pebbles across all chunks
	done     chan struct{}
	doneOnce *sync.Once
	errMu    *sync.Mutex
	err      *error
}

func (w *worker) setErr(e error) {
	w.errMu.Lock()
	if *w.err == nil {
		*w.err = e
	}
	w.errMu.Unlock()
	w.doneOnce.Do(func() { close(w.done) })
}

// horizon is the largest step the chunk may safely simulate, exclusive.
func (w *worker) horizon() int64 {
	h := w.leftClock + w.leftDelay
	if r := w.rightClock + w.rightDelay; r < h {
		h = r
	}
	if h > farFuture {
		h = farFuture
	}
	return h
}

func (w *worker) apply(fromLeft bool, u bupdate) {
	if fromLeft {
		w.c.receiveBoundary(true, u.batch)
		if u.clock > w.leftClock {
			w.leftClock = u.clock
		}
	} else {
		w.c.receiveBoundary(false, u.batch)
		if u.clock > w.rightClock {
			w.rightClock = u.clock
		}
	}
}

// drain consumes pending inbox updates without blocking.
func (w *worker) drain() {
	for {
		progressed := false
		if w.leftIn != nil {
			select {
			case u := <-w.leftIn:
				w.apply(true, u)
				progressed = true
			default:
			}
		}
		if w.rightIn != nil {
			select {
			case u := <-w.rightIn:
				w.apply(false, u)
				progressed = true
			default:
			}
		}
		if !progressed {
			return
		}
	}
}

// send delivers u without deadlocking: while the channel is full it keeps
// draining its own inboxes so the neighbor (possibly blocked sending to us)
// can make progress.
func (w *worker) send(ch chan<- bupdate, u bupdate) bool {
	for {
		select {
		case ch <- u:
			return true
		case <-w.done:
			return false
		default:
			w.drain()
			runtime.Gosched()
		}
	}
}

// flush ships accumulated boundary batches and the current clock to both
// neighbors. Clock-only (null) updates are sent only when the clock moved.
func (w *worker) flush() bool {
	clock := w.c.now
	moved := clock > w.sentClock
	if w.leftOut != nil && (moved || len(w.c.outLeft) > 0) {
		batch := w.c.outLeft
		w.c.outLeft = nil
		if !w.send(w.leftOut, bupdate{clock: clock, batch: batch}) {
			return false
		}
	}
	if w.rightOut != nil && (moved || len(w.c.outRight) > 0) {
		batch := w.c.outRight
		w.c.outRight = nil
		if !w.send(w.rightOut, bupdate{clock: clock, batch: batch}) {
			return false
		}
	}
	w.sentClock = clock
	return true
}

// runUntil simulates local steps strictly below h, decrementing the global
// remaining counter as pebbles complete. Returns false on error.
func (w *worker) runUntil(h, maxSteps int64) bool {
	c := w.c
	for c.now < h {
		if c.now > maxSteps {
			w.setErr(fmt.Errorf("sim: parallel chunk [%d,%d) exceeded step cap %d: %s",
				c.lo, c.hi, maxSteps, frontier(c)))
			return false
		}
		before := c.remaining
		did := c.step()
		if delta := before - c.remaining; delta > 0 {
			if atomic.AddInt64(w.global, -delta) == 0 {
				w.doneOnce.Do(func() { close(w.done) })
			}
		}
		if did {
			c.now++
			continue
		}
		next, ok := c.nextEvent()
		if !ok || next > h {
			next = h
		}
		if next <= c.now {
			next = c.now + 1
		}
		c.now = next
	}
	return true
}

func (w *worker) run(maxSteps int64, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		if atomic.LoadInt64(w.global) == 0 {
			return
		}
		w.drain()
		h := w.horizon()
		if w.c.now < h {
			if !w.runUntil(h, maxSteps) {
				return
			}
			if !w.flush() {
				return
			}
			continue
		}
		// Blocked at the horizon: wait for a neighbor update or global
		// completion.
		if w.leftIn == nil && w.rightIn == nil {
			// Single chunk can never block on neighbors.
			w.setErr(fmt.Errorf("sim: single parallel chunk stalled at step %d", w.c.now))
			return
		}
		var li, ri <-chan bupdate
		li, ri = w.leftIn, w.rightIn
		select {
		case u := <-li:
			w.apply(true, u)
		case u := <-ri:
			w.apply(false, u)
		case <-w.done:
			return
		}
	}
}

// splitPositions splits [0, n) into w contiguous chunks, nudging each cut
// onto the largest-delay link within a window around the even split (larger
// boundary delay = larger lookahead).
func splitPositions(delays []int, w int) []int {
	n := len(delays) + 1
	cuts := []int{0}
	window := n / (4 * w)
	for i := 1; i < w; i++ {
		target := i * n / w
		lo, hi := target-window, target+window
		if lo < cuts[len(cuts)-1]+1 {
			lo = cuts[len(cuts)-1] + 1
		}
		if hi > n-(w-i) {
			hi = n - (w - i)
		}
		best, bestD := target, -1
		for p := lo; p <= hi && p-1 < len(delays); p++ {
			if p < 1 {
				continue
			}
			if d := delays[p-1]; d > bestD {
				best, bestD = p, d
			}
		}
		cuts = append(cuts, best)
	}
	cuts = append(cuts, n)
	return cuts
}

// runParallel executes the simulation with cfg.Workers conservative chunks.
func runParallel(cfg *Config, rt *routeTable) (*Result, error) {
	n := cfg.hostN()
	w := cfg.Workers
	if w > n/2 {
		w = n / 2
	}
	if w < 2 {
		return runSequential(cfg, rt)
	}
	cuts := splitPositions(cfg.Delays, w)
	chunks := make([]*chunk, w)
	var global int64
	for i := 0; i < w; i++ {
		chunks[i] = newChunk(cfg, rt, cuts[i], cuts[i+1])
		global += chunks[i].remaining
	}
	if global == 0 {
		return collect(cfg, chunks)
	}

	chans := make([]chan bupdate, w-1) // rightward: i -> i+1
	back := make([]chan bupdate, w-1)  // leftward: i+1 -> i
	for i := range chans {
		chans[i] = make(chan bupdate, 256)
		back[i] = make(chan bupdate, 256)
	}
	done := make(chan struct{})
	var doneOnce sync.Once
	var errMu sync.Mutex
	var firstErr error

	workers := make([]*worker, w)
	for i := 0; i < w; i++ {
		wk := &worker{
			c: chunks[i], global: &global, done: done, doneOnce: &doneOnce,
			errMu: &errMu, err: &firstErr,
			leftClock: farFuture, rightClock: farFuture,
			leftDelay: 1, rightDelay: 1,
		}
		if i > 0 {
			wk.leftIn = chans[i-1]
			wk.leftOut = back[i-1]
			wk.leftClock = 1 // neighbors start at step 1
			wk.leftDelay = int64(cfg.Delays[cuts[i]-1])
		}
		if i < w-1 {
			wk.rightIn = back[i]
			wk.rightOut = chans[i]
			wk.rightClock = 1
			wk.rightDelay = int64(cfg.Delays[cuts[i+1]-1])
		}
		workers[i] = wk
	}

	// Watchdog: if no pebble completes for several seconds the dataflow is
	// deadlocked (a correct run is compute-bound and never wall-clock
	// idle).
	watchStop := make(chan struct{})
	go func() {
		last := atomic.LoadInt64(&global)
		idle := 0
		ticker := time.NewTicker(2 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-watchStop:
				return
			case <-ticker.C:
				cur := atomic.LoadInt64(&global)
				if cur == 0 {
					return
				}
				if cur == last {
					idle++
					if idle >= 3 {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("sim: parallel engine made no progress with %d pebbles remaining (deadlock)", cur)
						}
						errMu.Unlock()
						doneOnce.Do(func() { close(done) })
						return
					}
				} else {
					idle = 0
					last = cur
				}
			}
		}
	}()

	var wg sync.WaitGroup
	maxSteps := cfg.maxSteps()
	for _, wk := range workers {
		wg.Add(1)
		go wk.run(maxSteps, &wg)
	}
	wg.Wait()
	close(watchStop)

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return nil, err
	}
	if rem := atomic.LoadInt64(&global); rem != 0 {
		return nil, fmt.Errorf("sim: parallel engine finished with %d pebbles remaining", rem)
	}
	return collect(cfg, chunks)
}
