package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"latencyhide/internal/obs"
	"latencyhide/internal/telemetry"
)

// The parallel engine (v2) is a conservative parallel discrete-event
// simulator: the host line is split into contiguous chunks, one goroutine
// each, with lookahead equal to the boundary link delay. A chunk whose
// clock is at step s cannot send anything that arrives before s + d_boundary,
// so its neighbor may safely simulate up to that horizon.
//
// v2 replaces v1's per-slice channel protocol with three mechanisms:
//
//   - Work-balanced cuts: splitPositionsWork places cut i at the i-th work
//     quantile of the per-host pebble counts (not the i-th host quantile),
//     then nudges it onto the highest-delay link nearby — balanced chunks
//     eliminate stragglers, high-delay boundaries maximise lookahead.
//
//   - Published clocks + windowed batch coalescing: each worker owns one
//     atomic "promised clock" per boundary — the guarantee "nothing from me
//     will arrive before pub + d". Neighbors read it directly when computing
//     their horizon, so null messages cost one atomic load instead of a
//     channel round trip. Boundary messages accumulate in a per-direction
//     outbox and ship as one batch per window (window = max(1, d/2) steps of
//     clock advance), over a single-producer/single-consumer ring — the hot
//     path has no channel operation, no select and no allocation (batch
//     slices recycle through a reverse free ring).
//
//   - Demand-driven wakeups: a worker blocked at its horizon force-flushes
//     both outboxes, publishes its clock and parks on a 1-slot notify
//     channel guarded by an idle flag (store-idle, recheck, sleep on one
//     side; publish, load-idle, signal on the other — the classic Dekker
//     handshake, so wakeups are never lost under seq-cst atomics).
//
// Bit-identity with the sequential engine is preserved because coalescing
// only delays *transport*, never reorders *simulation*: a batch held after a
// flush at clock s0 contains messages injected at steps >= s0, which arrive
// at or after s0 + d; the neighbor that read pub = s0 simulates strictly
// below s0 + d, so no held message can be needed before the next flush
// publishes it. Within a chunk, same-step delivery order is fixed by the
// calendar's (position, from-left-first) key exactly as in the sequential
// engine, and receiveBoundary stamps arrivals with the same steps a local
// link would have produced. See DESIGN.md §5 for the full argument.

const (
	farFuture = math.MaxInt64 / 4

	// boundaryRingCap bounds batches in flight per boundary direction; a
	// full ring back-pressures the producer into draining its own inboxes.
	boundaryRingCap = 256
	// freeRingCap bounds recycled batch slices held per direction.
	freeRingCap = 8
	// boundaryBatchCap force-flushes an outbox regardless of the window,
	// bounding coalescing memory on very high-bandwidth boundaries.
	boundaryBatchCap = 4096
)

// side is one worker's view of one boundary direction: the rings to and
// from that neighbor, the clock promised to it, and the flush state.
type side struct {
	delay    int64
	window   int64 // clock advance between coalesced flushes
	fromLeft bool  // batches popped from `in` arrive from our left

	outbox *[]timedMsg       // chunk outbox feeding this boundary
	in     *spsc[[]timedMsg] // neighbor -> us: message batches
	out    *spsc[[]timedMsg] // us -> neighbor: message batches
	free   *spsc[[]timedMsg] // our shipped slices, recycled back to us
	retire *spsc[[]timedMsg] // consumed inbound slices, returned to neighbor

	pub       atomic.Int64  // clock we promise this neighbor (it reads this)
	peerClock *atomic.Int64 // the neighbor's promise to us (its side.pub)
	peer      *worker

	sentClock int64 // clock at the last batch flush
	flushes   int64
	sentMsgs  int64
}

type worker struct {
	c           *chunk
	left, right *side // nil at the line ends

	idle   atomic.Bool
	notify chan struct{} // 1-slot wakeup, paired with idle (Dekker handshake)

	global   *int64 // remaining pebbles across all chunks
	done     chan struct{}
	doneOnce *sync.Once
	errMu    *sync.Mutex
	err      *error

	// Adaptive replication (nil ast disables): workers cap their horizons
	// at nextB+1 and synchronise at gate so the controller sees every chunk
	// at exactly the epoch boundary. See adapt.go.
	ast   *adaptState
	gate  *epochGate
	nextB int64

	blockedAtHorizon int64
	blockedFor       time.Duration
}

func (w *worker) setErr(e error) {
	w.errMu.Lock()
	if *w.err == nil {
		*w.err = e
	}
	w.errMu.Unlock()
	w.doneOnce.Do(func() { close(w.done) })
}

func (w *worker) isDone() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// wake signals this worker if it has parked (or is about to park) at its
// horizon. Callers store their published state before calling, so the
// idle-flag load orders after that store and the handshake cannot lose a
// wakeup: either we observe idle and signal, or the worker's post-idle
// recheck observes our store.
func (w *worker) wake() {
	if w.idle.Load() {
		select {
		case w.notify <- struct{}{}:
		default:
		}
	}
}

// horizon is the largest step the chunk may safely simulate, exclusive:
// min over boundaries of the neighbor's promised clock plus the lookahead.
func (w *worker) horizon() int64 {
	h := int64(farFuture)
	if w.left != nil {
		if v := w.left.peerClock.Load() + w.left.delay; v < h {
			h = v
		}
	}
	if w.right != nil {
		if v := w.right.peerClock.Load() + w.right.delay; v < h {
			h = v
		}
	}
	return h
}

// drainSide consumes every pending inbound batch without blocking and
// returns the emptied slices to the neighbor's free ring for reuse. Reports
// whether anything was received (the epoch gate's quiescence votes are
// invalidated by post-vote arrivals).
func (w *worker) drainSide(s *side) bool {
	if s == nil {
		return false
	}
	got := false
	for {
		batch, ok := s.in.pop()
		if !ok {
			return got
		}
		got = true
		w.c.receiveBoundary(s.fromLeft, batch)
		if cap(batch) > 0 {
			s.retire.push(batch[:0]) // best-effort; dropped when full
		}
	}
}

func (w *worker) drainAll() bool {
	l := w.drainSide(w.left)
	r := w.drainSide(w.right)
	return l || r
}

func (w *worker) pendingInput() bool {
	return (w.left != nil && !w.left.in.empty()) ||
		(w.right != nil && !w.right.in.empty())
}

// flushSide ships the accumulated outbox batch when the coalescing window
// elapsed, the batch cap is hit, or the caller forces it (before parking at
// the horizon). A full ring back-pressures: we keep draining our own inboxes
// so the neighbor — possibly spinning on its own full ring — can progress.
func (w *worker) flushSide(s *side, force bool) bool {
	if s == nil {
		return true
	}
	batch := *s.outbox
	if len(batch) == 0 {
		return true
	}
	now := w.c.now
	if !force && now-s.sentClock < s.window && len(batch) < boundaryBatchCap {
		return true
	}
	for !s.out.push(batch) {
		if w.isDone() {
			return false
		}
		if tel := w.c.tel; tel != nil {
			tel.Inc(w.c.met.ringFullStalls)
		}
		w.drainAll()
		s.peer.wake()
		runtime.Gosched()
	}
	s.flushes++
	s.sentMsgs += int64(len(batch))
	s.sentClock = now
	if tel := w.c.tel; tel != nil {
		m := w.c.met
		tel.Inc(m.boundaryFlushes)
		tel.Add(m.boundaryMsgs, int64(len(batch)))
		tel.Observe(m.batchSize, int64(len(batch)))
		tel.SetMax(m.ringOccupancyPeak, int64(s.out.len()))
	}
	var repl []timedMsg
	if r, ok := s.free.pop(); ok {
		repl = r
	}
	*s.outbox = repl
	s.peer.wake()
	return true
}

// publish advances the clock promised to s's neighbor. With an empty outbox
// every future injection happens at a step >= now, so now itself is safe;
// with messages still held, only the last flushed clock is (held messages
// were injected at steps >= sentClock and arrive >= sentClock + delay).
// The store orders after any flushSide ring push, so a neighbor that reads
// the new clock is guaranteed to pop the batch it covers first.
func (w *worker) publish(s *side) {
	if s == nil {
		return
	}
	safe := w.c.now
	if len(*s.outbox) > 0 {
		safe = s.sentClock
	}
	if safe > s.pub.Load() {
		s.pub.Store(safe)
		s.peer.wake()
	}
}

// recordClockLag samples how far this chunk's clock runs ahead of each
// neighbor's published promise — the conservative-sync slack the chunk is
// carrying. Sampled per outer loop iteration and at every park, not per
// step.
func (w *worker) recordClockLag() {
	tel := w.c.tel
	if tel == nil {
		return
	}
	m := w.c.met
	for _, s := range []*side{w.left, w.right} {
		if s == nil {
			continue
		}
		if lag := w.c.now - s.peerClock.Load(); lag > 0 {
			tel.SetMax(m.pubclockLagMax, lag)
		}
	}
}

// runUntil simulates local steps strictly below h, decrementing the global
// remaining counter as pebbles complete. Returns false on error.
func (w *worker) runUntil(h, maxSteps int64) bool {
	c := w.c
	for c.now < h {
		if c.now > maxSteps {
			w.setErr(fmt.Errorf("sim: parallel chunk [%d,%d) exceeded step cap %d: %s",
				c.lo, c.hi, maxSteps, frontier(c)))
			return false
		}
		before := c.remaining
		did := c.step()
		if delta := before - c.remaining; delta > 0 {
			// Adaptive runs keep going past the last pebble to drain
			// standby-bound traffic; termination is the epoch gate's call.
			if atomic.AddInt64(w.global, -delta) == 0 && w.ast == nil {
				w.doneOnce.Do(func() { close(w.done) })
			}
		}
		if did {
			c.now++
			continue
		}
		next, ok := c.nextEvent()
		if !ok || next > h {
			next = h
		}
		if next <= c.now {
			next = c.now + 1
		}
		c.now = next
	}
	return true
}

func (w *worker) loop(maxSteps int64) {
	for {
		if w.ast == nil && atomic.LoadInt64(w.global) == 0 {
			return
		}
		if w.isDone() {
			return // quiescent termination, an error, or the watchdog fired
		}
		// Sample clocks before draining: any batch covering a clock we
		// read was pushed before that clock was published, so the drain
		// below observes it and nothing within the horizon is missed.
		h := w.horizon()
		if w.ast != nil && h > w.nextB+1 {
			// Never simulate past an epoch boundary before the controller
			// has run there: the adaptive horizon cap is what makes the
			// parallel engine's activation points identical to the
			// sequential engine's.
			h = w.nextB + 1
		}
		w.drainAll()
		w.recordClockLag()
		if w.c.now < h {
			if !w.runUntil(h, maxSteps) {
				return
			}
			if !w.flushSide(w.left, false) || !w.flushSide(w.right, false) {
				return
			}
			w.publish(w.left)
			w.publish(w.right)
			continue
		}
		if w.ast != nil && w.c.now == w.nextB+1 {
			// At the epoch boundary with steps <= nextB fully simulated.
			// Ship and promise everything first so neighbors still running
			// toward the boundary can reach it, then synchronise.
			if !w.flushSide(w.left, true) || !w.flushSide(w.right, true) {
				return
			}
			w.publish(w.left)
			w.publish(w.right)
			if !w.epochBarrier() {
				return
			}
			w.nextB += int64(w.ast.policy.Epoch)
			continue
		}
		// Blocked at the horizon: everything we hold is due — ship it,
		// promise our current clock (the demand-driven null message), then
		// park until a neighbor publishes or the run ends.
		if !w.flushSide(w.left, true) || !w.flushSide(w.right, true) {
			return
		}
		w.publish(w.left)
		w.publish(w.right)
		w.idle.Store(true)
		if w.horizon() > w.c.now || w.pendingInput() || w.isDone() {
			w.idle.Store(false)
			if w.isDone() && atomic.LoadInt64(w.global) != 0 {
				return // error or watchdog
			}
			continue
		}
		w.blockedAtHorizon++
		w.recordClockLag()
		if tel := w.c.tel; tel != nil {
			tel.Inc(w.c.met.workerParks)
		}
		start := time.Now()
		select {
		case <-w.notify:
			if tel := w.c.tel; tel != nil {
				tel.Inc(w.c.met.workerWakes)
			}
		case <-w.done:
		}
		w.idle.Store(false)
		w.blockedFor += time.Since(start)
		if w.isDone() {
			return // global hit zero, an error surfaced, or the watchdog fired
		}
	}
}

// epochBarrier synchronises every worker at epoch boundary w.nextB. Each
// worker votes on its chunk's quiescence as it arrives; the last arriver
// first checks for global quiescence (all votes quiet, no pebbles left, no
// batch in any boundary ring, no post-vote arrival) and terminates the run
// if so — the adaptive analogue of the sequential engine breaking out before
// the boundary branch. Otherwise it runs the replication controller over all
// chunks (mirroring any added pebbles into the global counter) and releases
// the rest. Waiters raise their idle flag and keep draining their boundary
// rings — under the gate mutex, so a post-vote arrival is never missed by
// the quiescence check — so a neighbor still running toward the barrier can
// never wedge on a full ring. Returns false when the run ended (quiescent
// termination, error or watchdog).
func (w *worker) epochBarrier() bool {
	last, rel := w.gate.arrive()
	if last {
		if w.gate.terminal(w.global) {
			w.doneOnce.Do(func() { close(w.done) })
			close(rel)
			return false
		}
		if added := w.ast.atBoundary(w.nextB, w.gate.chunks); added > 0 {
			atomic.AddInt64(w.global, added)
		}
		close(rel)
		return true
	}
	w.idle.Store(true)
	w.gate.drainBarrier(w)
	for {
		select {
		case <-rel:
			w.idle.Store(false)
			return !w.isDone()
		case <-w.done:
			w.idle.Store(false)
			return false
		case <-w.notify:
			w.gate.drainBarrier(w)
		}
	}
}

// splitPositions splits [0, n) into w contiguous chunks assuming uniform
// per-host work, nudging each cut onto the largest-delay link within a
// window around the even split (larger boundary delay = larger lookahead).
func splitPositions(delays []int, w int) []int {
	return splitPositionsWork(delays, nil, w)
}

// splitPositionsWork splits [0, n) into w contiguous chunks at the work
// quantiles of the per-host work estimates (nil work = uniform), then nudges
// each cut onto the largest-delay link within a window around its quantile
// position. Cuts are strictly increasing and every chunk is non-empty for
// any 2 <= w <= n/2.
func splitPositionsWork(delays []int, work []int64, w int) []int {
	n := len(delays) + 1
	cuts := make([]int, 1, w+1)
	window := n / (4 * w)
	if window < 1 {
		window = 1 // n < 4w would otherwise collapse the nudge search
	}
	var prefix []int64
	var total int64
	if work != nil {
		prefix = make([]int64, n+1)
		for p := 0; p < n; p++ {
			prefix[p+1] = prefix[p] + work[p]
		}
		total = prefix[n]
	}
	for i := 1; i < w; i++ {
		var target int
		if total > 0 {
			// Smallest position whose work prefix reaches the i-th
			// quantile: chunk i gets ~1/w of the total work.
			want := int64(i) * total
			lo, hi := 0, n
			for lo < hi {
				mid := (lo + hi) / 2
				if prefix[mid]*int64(w) < want {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			target = lo
		} else {
			target = i * n / w
		}
		lo, hi := target-window, target+window
		if lo < cuts[len(cuts)-1]+1 {
			lo = cuts[len(cuts)-1] + 1
		}
		if hi > n-(w-i) {
			hi = n - (w - i)
		}
		best, bestD := -1, -1
		for p := lo; p <= hi && p-1 < len(delays); p++ {
			if p < 1 {
				continue
			}
			if d := delays[p-1]; d > bestD {
				best, bestD = p, d
			}
		}
		if best < 0 {
			// Defensive: the feasible window [prev+1, n-(w-i)] is never
			// empty for w <= n/2, but fall back to its left edge anyway.
			best = lo
		}
		cuts = append(cuts, best)
	}
	cuts = append(cuts, n)
	return cuts
}

// runParallel executes the simulation with cfg.Workers conservative chunks,
// cut at the work quantiles of the assignment's per-host pebble counts.
func runParallel(cfg *Config, rt *routeTable) (*Result, error) {
	n := cfg.hostN()
	w := cfg.Workers
	if w > n/2 {
		w = n / 2
	}
	if w < 2 {
		return runSequential(cfg, rt)
	}
	// Per-host work estimate: pebbles to compute, plus a baseline unit so
	// pure relay hosts still count toward chunk sizes.
	work := make([]int64, n)
	for p := 0; p < n; p++ {
		work[p] = 1 + int64(len(cfg.Assign.Owned[p]))*int64(cfg.Guest.Steps)
	}
	return runParallelWithCuts(cfg, rt, splitPositionsWork(cfg.Delays, work, w))
}

// runParallelWithCuts runs the parallel engine over an explicit cut vector
// (cuts[0] = 0 < cuts[1] < ... < cuts[w] = hostN). Any valid cut vector
// produces bit-identical results — the fuzz harness exercises exactly that.
func runParallelWithCuts(cfg *Config, rt *routeTable, cuts []int) (*Result, error) {
	n := cfg.hostN()
	w := len(cuts) - 1
	if w < 1 || cuts[0] != 0 || cuts[w] != n {
		return nil, fmt.Errorf("sim: invalid cut vector %v for %d hosts", cuts, n)
	}
	for i := 1; i <= w; i++ {
		if cuts[i] <= cuts[i-1] {
			return nil, fmt.Errorf("sim: cut vector %v not strictly increasing", cuts)
		}
	}
	if w == 1 {
		return runSequential(cfg, rt)
	}
	chunks := make([]*chunk, w)
	var global int64
	for i := 0; i < w; i++ {
		chunks[i] = newChunk(cfg, rt, cuts[i], cuts[i+1])
		global += chunks[i].remaining
	}
	if global == 0 {
		return collect(cfg, chunks)
	}

	done := make(chan struct{})
	var doneOnce sync.Once
	var errMu sync.Mutex
	var firstErr error

	var gate *epochGate
	if cfg.ast != nil {
		gate = newEpochGate(w, chunks)
	}
	workers := make([]*worker, w)
	for i := 0; i < w; i++ {
		workers[i] = &worker{
			c: chunks[i], global: &global, done: done, doneOnce: &doneOnce,
			errMu: &errMu, err: &firstErr,
			notify: make(chan struct{}, 1),
		}
		if cfg.ast != nil {
			workers[i].ast = cfg.ast
			workers[i].gate = gate
			workers[i].nextB = int64(cfg.ast.policy.Epoch)
		}
	}
	if gate != nil {
		gate.workers = workers // terminal() scans every boundary ring
	}
	for i := 0; i < w-1; i++ {
		d := int64(cfg.Delays[cuts[i+1]-1])
		win := d / 2
		if win < 1 {
			win = 1
		}
		east := newSPSC[[]timedMsg](boundaryRingCap) // batches i -> i+1
		west := newSPSC[[]timedMsg](boundaryRingCap) // batches i+1 -> i
		eastFree := newSPSC[[]timedMsg](freeRingCap)
		westFree := newSPSC[[]timedMsg](freeRingCap)
		r := &side{
			delay: d, window: win, fromLeft: false,
			outbox: &chunks[i].outRight,
			in:     west, out: east, free: eastFree, retire: westFree,
			peer: workers[i+1], sentClock: 1,
		}
		l := &side{
			delay: d, window: win, fromLeft: true,
			outbox: &chunks[i+1].outLeft,
			in:     east, out: west, free: westFree, retire: eastFree,
			peer: workers[i], sentClock: 1,
		}
		r.pub.Store(1) // all workers start at step 1
		l.pub.Store(1)
		r.peerClock = &l.pub
		l.peerClock = &r.pub
		workers[i].right = r
		workers[i+1].left = l
	}

	// Watchdog: if no pebble completes for WatchdogIdle of wall time the
	// run is wedged (a correct run is compute-bound and never idles that
	// long; genuine dataflow deadlocks usually hit the step cap first, the
	// watchdog is the backstop for anything else).
	var watchStop chan struct{}
	if idle := cfg.WatchdogIdle; idle >= 0 {
		if idle == 0 {
			idle = 6 * time.Second // historical default: 3 strikes of 2s
		}
		period := idle / 3
		if period < time.Millisecond {
			period = time.Millisecond
		}
		// The watchdog gets its own shard: its ticks are wall-clock events
		// that belong to no chunk.
		var wdTel *telemetry.Shard
		if cfg.em != nil {
			wdTel = cfg.Telemetry.NewShard("watchdog")
		}
		watchStop = make(chan struct{})
		go func() {
			last := atomic.LoadInt64(&global)
			strikes := 0
			ticker := time.NewTicker(period)
			defer ticker.Stop()
			for {
				select {
				case <-watchStop:
					return
				case <-ticker.C:
					if cfg.em != nil {
						wdTel.Inc(cfg.em.watchdogTicks)
					}
					cur := atomic.LoadInt64(&global)
					if cur == 0 {
						return
					}
					if cur == last {
						strikes++
						if strikes >= 3 {
							errMu.Lock()
							if firstErr == nil {
								firstErr = fmt.Errorf("sim: parallel engine made no progress with %d pebbles remaining (deadlock)", cur)
							}
							errMu.Unlock()
							doneOnce.Do(func() { close(done) })
							return
						}
					} else {
						strikes = 0
						last = cur
					}
				}
			}
		}()
	}

	var wg sync.WaitGroup
	maxSteps := cfg.maxSteps()
	for i, wk := range workers {
		wg.Add(1)
		labels := pprof.Labels("engine", "parallel",
			"chunk", fmt.Sprintf("%d:%d-%d", i, wk.c.lo, wk.c.hi))
		go func(wk *worker) {
			defer wg.Done()
			pprof.Do(context.Background(), labels, func(context.Context) {
				wk.loop(maxSteps)
			})
		}(wk)
	}
	wg.Wait()
	if watchStop != nil {
		close(watchStop)
	}

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return nil, err
	}
	if rem := atomic.LoadInt64(&global); rem != 0 {
		return nil, fmt.Errorf("sim: parallel engine finished with %d pebbles remaining", rem)
	}
	res, err := collect(cfg, chunks)
	if err != nil {
		return nil, err
	}
	res.Chunks = chunkGauges(workers)
	return res, nil
}

// chunkGauges snapshots per-worker engine gauges for the result.
func chunkGauges(workers []*worker) []obs.ChunkGauge {
	out := make([]obs.ChunkGauge, len(workers))
	for i, wk := range workers {
		g := obs.ChunkGauge{
			Lo: wk.c.lo, Hi: wk.c.hi,
			Steps:            wk.c.now,
			BlockedAtHorizon: wk.blockedAtHorizon,
			Blocked:          wk.blockedFor,
		}
		for j := range wk.c.procs {
			g.Pebbles += wk.c.procs[j].computed
		}
		for _, s := range []*side{wk.left, wk.right} {
			if s != nil {
				g.Flushes += s.flushes
				g.BatchedMsgs += s.sentMsgs
			}
		}
		out[i] = g
	}
	return out
}
