package sim

import (
	"fmt"
	"sort"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
)

// A route is a static multicast chain for one guest column's pebble stream:
// whenever the sender computes pebble (col, t), the value travels in
// direction dir and is delivered at every position in dests, in travel
// order. Routes are computed once per simulation.
//
// Destinations of a column are the holders of its guest-neighbor columns
// that do not hold the column itself (holders compute their own copy — that
// is the redundant computation doing its job). Each destination is served by
// its nearest holder, so a value crosses each link at most twice (once per
// direction) per guest step.
type route struct {
	col    int32
	dir    int8 // +1 rightward, -1 leftward
	sender int32
	dests  []int32 // positions in travel order
	// destDense[j] is col's index in dests[j]'s dense knowledge store
	// (dense.go), resolved once at build time so deliveries never look a
	// column up. Every destination holds a guest neighbor of col, so col is
	// always in its universe.
	destDense []int32
}

type routeTable struct {
	routes []route
	// bySender[p] lists, for each guest column p holds, the route ids p
	// must feed; indexed parallel to assign.Owned[p].
	bySender [][][]int32
	// crossR[i] / crossL[i] count the routes whose traffic crosses link
	// (i, i+1) rightward / leftward — i.e. messages per guest step in each
	// direction. Chunks use them to pre-size link queues and boundary
	// outboxes so the steady-state hot path never grows a slice.
	crossR, crossL []int32
}

// buildRoutes derives the multicast routing table from the guest graph and
// the assignment. Hosts in avoid (ascending; crash-stop hosts from a fault
// plan) are excluded from routing entirely: never chosen as senders (static
// failover onto the surviving replicas; the caller guarantees every column
// keeps at least one live holder) and never targeted as destinations (a
// crash-stop host never computes after the crash, so feeding it is wasted
// traffic — and deliveries trailing the last live compute would make the
// engines' message counts diverge). Their positions still relay through
// traffic: the NIC outlives the CPU. An empty avoid list reproduces the
// fault-free table exactly.
//
// extra, when non-nil (adaptive replication), lists per host the standby
// columns provisioned there. Standby hosts join the destination fan-out of
// every column their standby columns depend on — from step 1, dormant or
// not — so an activation needs no route rebuild: the host has been
// receiving the dependency stream all along. Standby replicas are never
// senders (activated standbys serve only their own host).
func buildRoutes(g guest.Graph, a *assign.Assignment, avoid []int, extra [][]int) *routeTable {
	rt := &routeTable{bySender: make([][][]int32, a.HostN)}
	// extraHolders[c] lists the hosts with a standby replica of column c.
	var extraHolders [][]int
	if extra != nil {
		extraHolders = make([][]int, a.Columns)
		for p, cols := range extra {
			for _, col := range cols {
				extraHolders[col] = append(extraHolders[col], p)
			}
		}
	}
	for p := range rt.bySender {
		rt.bySender[p] = make([][]int32, len(a.Owned[p]))
	}
	dead := make(map[int]bool, len(avoid))
	for _, h := range avoid {
		dead[h] = true
	}
	// liveHolders filters a column's holder list down to live hosts (aliases
	// the original slice when nothing is filtered).
	liveHolders := func(col int) []int {
		hs := a.Holders[col]
		if len(dead) == 0 {
			return hs
		}
		needs := false
		for _, h := range hs {
			if dead[h] {
				needs = true
				break
			}
		}
		if !needs {
			return hs
		}
		live := make([]int, 0, len(hs))
		for _, h := range hs {
			if !dead[h] {
				live = append(live, h)
			}
		}
		return live
	}

	// senderFor returns the live holder nearest to dest (ties toward the
	// left) using binary search over the sorted holder list.
	senderFor := func(hs []int, dest int) int {
		i := sort.SearchInts(hs, dest)
		switch {
		case i == 0:
			return hs[0]
		case i == len(hs):
			return hs[len(hs)-1]
		default:
			if dest-hs[i-1] <= hs[i]-dest {
				return hs[i-1]
			}
			return hs[i]
		}
	}

	type chainKey struct {
		sender int
		dir    int8
	}
	for col := 0; col < a.Columns; col++ {
		// Destination set: holders (base or standby) of neighbor columns
		// minus base holders of col.
		destSet := make(map[int]bool)
		for _, nb := range g.Neighbors(col) {
			for _, p := range a.Holders[nb] {
				if !dead[p] {
					destSet[p] = true
				}
			}
			if extraHolders != nil {
				for _, p := range extraHolders[nb] {
					if !dead[p] {
						destSet[p] = true
					}
				}
			}
		}
		for _, p := range a.Holders[col] {
			delete(destSet, p)
		}
		if len(destSet) == 0 {
			continue
		}
		hs := liveHolders(col)
		chains := make(map[chainKey][]int32)
		for dest := range destSet {
			s := senderFor(hs, dest)
			dir := int8(1)
			if dest < s {
				dir = -1
			}
			k := chainKey{sender: s, dir: dir}
			chains[k] = append(chains[k], int32(dest))
		}
		// Deterministic route order: sort keys.
		keys := make([]chainKey, 0, len(chains))
		for k := range chains {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].sender != keys[j].sender {
				return keys[i].sender < keys[j].sender
			}
			return keys[i].dir < keys[j].dir
		})
		for _, k := range keys {
			dests := chains[k]
			if k.dir > 0 {
				sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
			} else {
				sort.Slice(dests, func(i, j int) bool { return dests[i] > dests[j] })
			}
			id := int32(len(rt.routes))
			rt.routes = append(rt.routes, route{
				col:    int32(col),
				dir:    k.dir,
				sender: int32(k.sender),
				dests:  dests,
			})
			// Attach to the sender's owned-column slot.
			idx := sort.SearchInts(a.Owned[k.sender], col)
			rt.bySender[k.sender][idx] = append(rt.bySender[k.sender][idx], id)
		}
	}
	rt.resolveDestDense(g, a, extra)
	rt.countCrossings(a.HostN)
	return rt
}

// resolveDestDense precomputes, for every route destination, the column's
// index in that position's dense knowledge store. The universe computation
// here must match newChunk's (both call colUniverse over the same owned
// lists, base plus standby), which keeps the route table valid for any
// chunking of the line.
func (rt *routeTable) resolveDestDense(g guest.Graph, a *assign.Assignment, extra [][]int) {
	universes := make([][]int32, a.HostN)
	uniFor := func(pos int32) []int32 {
		if universes[pos] == nil {
			owned := a.Owned[pos]
			if extra != nil && len(extra[pos]) > 0 {
				owned = unionCols(owned, extra[pos])
			}
			universes[pos] = colUniverse(g.Neighbors, owned)
		}
		return universes[pos]
	}
	for i := range rt.routes {
		r := &rt.routes[i]
		r.destDense = make([]int32, len(r.dests))
		for j, d := range r.dests {
			dense := denseIndex(uniFor(d), r.col)
			if dense < 0 {
				panic(fmt.Sprintf("sim: route %d delivers col %d to pos %d, which holds no neighbor of it", i, r.col, d))
			}
			r.destDense[j] = dense
		}
	}
}

// countCrossings fills crossR/crossL via difference arrays: a rightward
// route from s whose last destination is L crosses links s..L-1; a leftward
// one crosses links L..s-1 (link i connects positions i and i+1).
func (rt *routeTable) countCrossings(hostN int) {
	if hostN < 2 {
		return
	}
	diffR := make([]int32, hostN)
	diffL := make([]int32, hostN)
	for _, r := range rt.routes {
		last := r.dests[len(r.dests)-1]
		if r.dir > 0 {
			diffR[r.sender]++
			diffR[last]--
		} else {
			diffL[last]++
			diffL[r.sender]--
		}
	}
	rt.crossR = make([]int32, hostN-1)
	rt.crossL = make([]int32, hostN-1)
	var sumR, sumL int32
	for i := 0; i < hostN-1; i++ {
		sumR += diffR[i]
		sumL += diffL[i]
		rt.crossR[i] = sumR
		rt.crossL[i] = sumL
	}
}

// validateRoutes double-checks structural soundness; engines call it in
// tests via an exported hook.
func (rt *routeTable) validate(hostN int) error {
	for i, r := range rt.routes {
		if len(r.dests) == 0 {
			return fmt.Errorf("sim: route %d has no destinations", i)
		}
		prev := r.sender
		for _, d := range r.dests {
			if d < 0 || int(d) >= hostN {
				return fmt.Errorf("sim: route %d dest %d out of range", i, d)
			}
			if r.dir > 0 && d <= prev {
				return fmt.Errorf("sim: rightward route %d not strictly increasing", i)
			}
			if r.dir < 0 && d >= prev {
				return fmt.Errorf("sim: leftward route %d not strictly decreasing", i)
			}
			prev = d
		}
	}
	return nil
}
