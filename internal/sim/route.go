package sim

import (
	"fmt"
	"sort"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
)

// A route is a static multicast chain for one guest column's pebble stream:
// whenever the sender computes pebble (col, t), the value travels in
// direction dir and is delivered at every destination, in travel order.
// Routes are computed once per simulation.
//
// Destinations of a column are the holders of its guest-neighbor columns
// that do not hold the column itself (holders compute their own copy — that
// is the redundant computation doing its job). Each destination is served by
// its nearest holder, so a value crosses each link at most twice (once per
// direction) per guest step.
//
// Compact representation. Route records are fixed-size; the variable-length
// destination chains live in one shared arena as interleaved (delta, dense)
// pairs:
//
//	delta — hop distance to this destination in travel direction (from the
//	        sender for the first pair, from the previous destination after),
//	        always >= 1, so a chain is strictly monotone by construction;
//	dense — the column's index in that destination's dense knowledge store
//	        (dense.go), resolved at build time so deliveries never look a
//	        column up.
//
// Deltas are sender-relative, which is what makes sharing safe under
// mirroring: two replicated senders whose fan-outs have the same shape —
// the common case for block/mirrored assignments, where every replica of a
// column feeds the same relative pattern of neighbor holders — encode to
// identical (delta, dense) sequences even though their absolute destination
// positions differ. buildRoutes interns chains on their encoded bytes, so
// each distinct shape is stored once no matter how many routes share it.
type routeRec struct {
	col    int32
	sender int32
	off    int32 // start of this route's (delta, dense) pairs in chainArena
	n      int32 // number of destinations
	dir    int8  // +1 rightward, -1 leftward
}

// routeRecBytes is the in-memory size of one routeRec (4 int32 + int8,
// padded); bytes() uses it so telemetry can report the table footprint.
const routeRecBytes = 20

type routeTable struct {
	routes []routeRec
	// chainArena holds every route's destination chain as interleaved
	// (delta, dense) pairs; routes with identical encodings share one span.
	chainArena []int32
	// Flattened sender index: the routes fed by position p's owned-column
	// slot i (parallel to assign.Owned[p]) are
	//
	//	routeIDs[slotOff[senderBase[p]+i] : slotOff[senderBase[p]+i+1]]
	//
	// replacing the old triple-nested [][][]int32 with three flat arrays.
	routeIDs   []int32
	slotOff    []int32
	senderBase []int32
	// crossR[i] / crossL[i] count the routes whose traffic crosses link
	// (i, i+1) rightward / leftward — i.e. messages per guest step in each
	// direction. Chunks use them to pre-size link queues and boundary
	// outboxes so the steady-state hot path never grows a slice.
	crossR, crossL []int32
}

// newRouteShell builds an empty table with the sender index sized for the
// assignment, so routesFor works before (or without) any routes existing.
func newRouteShell(a *assign.Assignment) *routeTable {
	rt := &routeTable{senderBase: make([]int32, a.HostN+1)}
	total := int32(0)
	for p := 0; p < a.HostN; p++ {
		rt.senderBase[p] = total
		total += int32(len(a.Owned[p]))
	}
	rt.senderBase[a.HostN] = total
	rt.slotOff = make([]int32, total+1)
	return rt
}

// routesFor lists the route ids position pos feeds for its owned-column
// slot i (parallel to assign.Owned[pos]).
func (rt *routeTable) routesFor(pos, slot int) []int32 {
	s := rt.senderBase[pos] + int32(slot)
	return rt.routeIDs[rt.slotOff[s]:rt.slotOff[s+1]]
}

// destsOf decodes route id's destination positions in travel order.
// Tests and diagnostics only — the hot path walks the chain incrementally.
func (rt *routeTable) destsOf(id int32) []int32 {
	r := &rt.routes[id]
	out := make([]int32, r.n)
	pos := r.sender
	for j := int32(0); j < r.n; j++ {
		delta := rt.chainArena[r.off+2*j]
		if r.dir > 0 {
			pos += delta
		} else {
			pos -= delta
		}
		out[j] = pos
	}
	return out
}

// destDenseOf decodes route id's per-destination dense store indexes,
// parallel to destsOf. Tests and diagnostics only.
func (rt *routeTable) destDenseOf(id int32) []int32 {
	r := &rt.routes[id]
	out := make([]int32, r.n)
	for j := int32(0); j < r.n; j++ {
		out[j] = rt.chainArena[r.off+2*j+1]
	}
	return out
}

// bytes reports the table's resident footprint: fixed records plus the
// shared arena and the flattened sender index.
func (rt *routeTable) bytes() int64 {
	words := len(rt.chainArena) + len(rt.routeIDs) + len(rt.slotOff) +
		len(rt.senderBase) + len(rt.crossR) + len(rt.crossL)
	return int64(len(rt.routes))*routeRecBytes + int64(words)*4
}

// buildRoutes derives the multicast routing table from the guest graph and
// the assignment. Hosts in avoid (ascending; crash-stop hosts from a fault
// plan) are excluded from routing entirely: never chosen as senders (static
// failover onto the surviving replicas; the caller guarantees every column
// keeps at least one live holder) and never targeted as destinations (a
// crash-stop host never computes after the crash, so feeding it is wasted
// traffic — and deliveries trailing the last live compute would make the
// engines' message counts diverge). Their positions still relay through
// traffic: the NIC outlives the CPU. An empty avoid list reproduces the
// fault-free table exactly.
//
// extra, when non-nil (adaptive replication), lists per host the standby
// columns provisioned there. Standby hosts join the destination fan-out of
// every column their standby columns depend on — from step 1, dormant or
// not — so an activation needs no route rebuild: the host has been
// receiving the dependency stream all along. Standby replicas are never
// senders (activated standbys serve only their own host).
func buildRoutes(g guest.Graph, a *assign.Assignment, avoid []int, extra [][]int) *routeTable {
	rt := newRouteShell(a)
	// extraHolders[c] lists the hosts with a standby replica of column c.
	var extraHolders [][]int
	if extra != nil {
		extraHolders = make([][]int, a.Columns)
		for p, cols := range extra {
			for _, col := range cols {
				extraHolders[col] = append(extraHolders[col], p)
			}
		}
	}
	dead := make(map[int]bool, len(avoid))
	for _, h := range avoid {
		dead[h] = true
	}
	// liveHolders filters a column's holder list down to live hosts (aliases
	// the original slice when nothing is filtered).
	liveHolders := func(col int) []int {
		hs := a.Holders[col]
		if len(dead) == 0 {
			return hs
		}
		needs := false
		for _, h := range hs {
			if dead[h] {
				needs = true
				break
			}
		}
		if !needs {
			return hs
		}
		live := make([]int, 0, len(hs))
		for _, h := range hs {
			if !dead[h] {
				live = append(live, h)
			}
		}
		return live
	}

	// senderFor returns the live holder nearest to dest (ties toward the
	// left) using binary search over the sorted holder list.
	senderFor := func(hs []int, dest int) int {
		i := sort.SearchInts(hs, dest)
		switch {
		case i == 0:
			return hs[0]
		case i == len(hs):
			return hs[len(hs)-1]
		default:
			if dest-hs[i-1] <= hs[i]-dest {
				return hs[i-1]
			}
			return hs[i]
		}
	}

	// uniFor lazily resolves a position's dense-store universe. The
	// computation must match newChunk's (both call colUniverse over the same
	// owned lists, base plus standby), which keeps the route table valid for
	// any chunking of the line.
	universes := make([][]int32, a.HostN)
	uniFor := func(pos int32) []int32 {
		if universes[pos] == nil {
			owned := a.Owned[pos]
			if extra != nil && len(extra[pos]) > 0 {
				owned = unionCols(owned, extra[pos])
			}
			universes[pos] = colUniverse(g.Neighbors, owned)
		}
		return universes[pos]
	}

	// intern stores an encoded chain in the arena, returning the offset of
	// an existing identical chain when one was already interned.
	interned := make(map[string]int32)
	var keyBuf []byte
	intern := func(enc []int32) int32 {
		keyBuf = keyBuf[:0]
		for _, v := range enc {
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		if off, ok := interned[string(keyBuf)]; ok {
			return off
		}
		off := int32(len(rt.chainArena))
		rt.chainArena = append(rt.chainArena, enc...)
		interned[string(keyBuf)] = off
		return off
	}

	slotRoutes := make([][]int32, len(rt.slotOff)-1)
	var lasts []int32 // last destination per route, for countCrossings
	var enc []int32   // encoding scratch

	type chainKey struct {
		sender int
		dir    int8
	}
	for col := 0; col < a.Columns; col++ {
		// Destination set: holders (base or standby) of neighbor columns
		// minus base holders of col.
		destSet := make(map[int]bool)
		for _, nb := range g.Neighbors(col) {
			for _, p := range a.Holders[nb] {
				if !dead[p] {
					destSet[p] = true
				}
			}
			if extraHolders != nil {
				for _, p := range extraHolders[nb] {
					if !dead[p] {
						destSet[p] = true
					}
				}
			}
		}
		for _, p := range a.Holders[col] {
			delete(destSet, p)
		}
		if len(destSet) == 0 {
			continue
		}
		hs := liveHolders(col)
		chains := make(map[chainKey][]int32)
		for dest := range destSet {
			s := senderFor(hs, dest)
			dir := int8(1)
			if dest < s {
				dir = -1
			}
			k := chainKey{sender: s, dir: dir}
			chains[k] = append(chains[k], int32(dest))
		}
		// Deterministic route order: sort keys.
		keys := make([]chainKey, 0, len(chains))
		for k := range chains {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].sender != keys[j].sender {
				return keys[i].sender < keys[j].sender
			}
			return keys[i].dir < keys[j].dir
		})
		for _, k := range keys {
			dests := chains[k]
			if k.dir > 0 {
				sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
			} else {
				sort.Slice(dests, func(i, j int) bool { return dests[i] > dests[j] })
			}
			// Encode the chain: sender-relative deltas plus dense indexes.
			enc = enc[:0]
			prev := int32(k.sender)
			for _, d := range dests {
				delta := d - prev
				if k.dir < 0 {
					delta = prev - d
				}
				dense := denseIndex(uniFor(d), int32(col))
				if dense < 0 {
					panic(fmt.Sprintf("sim: route for col %d delivers to pos %d, which holds no neighbor of it", col, d))
				}
				enc = append(enc, delta, dense)
				prev = d
			}
			id := int32(len(rt.routes))
			rt.routes = append(rt.routes, routeRec{
				col:    int32(col),
				sender: int32(k.sender),
				off:    intern(enc),
				n:      int32(len(dests)),
				dir:    k.dir,
			})
			lasts = append(lasts, dests[len(dests)-1])
			// Attach to the sender's owned-column slot.
			idx := sort.SearchInts(a.Owned[k.sender], col)
			slot := rt.senderBase[k.sender] + int32(idx)
			slotRoutes[slot] = append(slotRoutes[slot], id)
		}
	}
	// Flatten the per-slot route lists into routeIDs/slotOff.
	rt.routeIDs = make([]int32, 0, len(rt.routes))
	for s, ids := range slotRoutes {
		rt.slotOff[s] = int32(len(rt.routeIDs))
		rt.routeIDs = append(rt.routeIDs, ids...)
	}
	rt.slotOff[len(slotRoutes)] = int32(len(rt.routeIDs))
	rt.countCrossings(a.HostN, lasts)
	return rt
}

// countCrossings fills crossR/crossL via difference arrays: a rightward
// route from s whose last destination is L crosses links s..L-1; a leftward
// one crosses links L..s-1 (link i connects positions i and i+1). lasts is
// the per-route last destination, parallel to routes (tracked at build time
// so this pass never decodes a chain).
func (rt *routeTable) countCrossings(hostN int, lasts []int32) {
	if hostN < 2 {
		return
	}
	diffR := make([]int32, hostN)
	diffL := make([]int32, hostN)
	for i := range rt.routes {
		r := &rt.routes[i]
		last := lasts[i]
		if r.dir > 0 {
			diffR[r.sender]++
			diffR[last]--
		} else {
			diffL[last]++
			diffL[r.sender]--
		}
	}
	rt.crossR = make([]int32, hostN-1)
	rt.crossL = make([]int32, hostN-1)
	var sumR, sumL int32
	for i := 0; i < hostN-1; i++ {
		sumR += diffR[i]
		sumL += diffL[i]
		rt.crossR[i] = sumR
		rt.crossL[i] = sumL
	}
}

// validate double-checks structural soundness; engines call it in tests via
// an exported hook. Positive deltas make chains strictly monotone by
// construction, so the checks mirror the old per-destination ordering
// checks exactly.
func (rt *routeTable) validate(hostN int) error {
	for i := range rt.routes {
		r := &rt.routes[i]
		if r.n == 0 {
			return fmt.Errorf("sim: route %d has no destinations", i)
		}
		if r.off < 0 || int(r.off+2*r.n) > len(rt.chainArena) {
			return fmt.Errorf("sim: route %d chain span [%d, %d) outside arena", i, r.off, r.off+2*r.n)
		}
		pos := r.sender
		for j := int32(0); j < r.n; j++ {
			delta := rt.chainArena[r.off+2*j]
			if delta < 1 {
				return fmt.Errorf("sim: route %d hop %d has non-positive delta %d", i, j, delta)
			}
			if r.dir > 0 {
				pos += delta
			} else {
				pos -= delta
			}
			if pos < 0 || int(pos) >= hostN {
				return fmt.Errorf("sim: route %d dest %d out of range", i, pos)
			}
			if rt.chainArena[r.off+2*j+1] < 0 {
				return fmt.Errorf("sim: route %d hop %d has negative dense index", i, j)
			}
		}
	}
	return nil
}
