package sim

import "slices"

// This file holds the engine's two event queues, both allocation-free on the
// hot path:
//
//   - bucketCal: a bucketed calendar queue for link-delivery events. Host
//     time is integer and `now` never decreases, and almost every event is
//     scheduled at now+delay for a small delay, so a ring of per-step
//     buckets indexed by step mod ring-size serves the common case in O(1)
//     with zero boxing; rare far-future arrivals (delay >= the ring span)
//     spill into a typed overflow min-heap and pop from there when due.
//   - readyQueue: a typed binary min-heap over packed uint64 (step<<32|idx)
//     keys for computable pebbles, replacing container/heap's boxed
//     Push/Pop.
//
// Invariants (see DESIGN.md "Bucketed calendar"):
//
//   - `now` is monotone non-decreasing and never jumps past a scheduled
//     event (nextEvent returns the earliest pending step).
//   - Every ring entry has step in [now, now+calRingSize), so each bucket
//     holds entries of exactly one step and bucket step&calRingMask is
//     unambiguous.
//   - schedule() is never called with step < now (arrivals are stamped
//     now+delay with delay >= 1; boundary batches arrive at or above the
//     receiver's clock by the lookahead argument in parallel.go).
//   - takeDue() merges the current ring bucket with due overflow entries
//     and sorts ascending, reproducing the old heap's (step, key) pop order
//     exactly — including adjacent duplicates — which keeps the event
//     stream bit-identical across engines.

const (
	calRingBits = 9 // 512 buckets; delays beyond the span overflow
	calRingSize = 1 << calRingBits
	calRingMask = calRingSize - 1
)

// calEntry orders same-step deliveries deterministically: by step, then by
// (position, from-left-before-from-right).
type calEntry struct {
	step int64
	key  int32 // position*2 (+1 for delivery from the right)
}

// calOverflow is a typed min-heap of calEntry ordered by (step, key), used
// for arrivals beyond the ring span.
type calOverflow []calEntry

func calLess(a, b calEntry) bool {
	if a.step != b.step {
		return a.step < b.step
	}
	return a.key < b.key
}

func (h *calOverflow) push(e calEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !calLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *calOverflow) pop() calEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && calLess(s[l], s[least]) {
			least = l
		}
		if r < n && calLess(s[r], s[least]) {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// bucketCal is the calendar queue: ring of per-step key buckets plus the
// overflow heap. Buckets are reused ([:0]) so steady-state scheduling does
// not allocate.
type bucketCal struct {
	ring     [calRingSize][]int32
	inRing   int // total entries across ring buckets
	overflow calOverflow
	due      []int32 // scratch for takeDue

	// always-on accounting (plain fields, read by the telemetry flush):
	// total keys delivered, total overflow spills, and the depth high-water
	// mark across ring + heap.
	dueTotal      int64
	overflowTotal int64
	depthPeak     int
	overflowPeak  int
}

// presizeScratch reserves takeDue's scratch up front so the first busy steps
// do not grow it incrementally. Capacity only; scheduling semantics are
// untouched.
func (c *bucketCal) presizeScratch(n int) {
	if n > cap(c.due) {
		c.due = make([]int32, 0, n)
	}
}

// schedule records a delivery key at the given step. step must be >= now.
func (c *bucketCal) schedule(now, step int64, key int32) {
	if step < now {
		panic("sim: calendar event scheduled in the past")
	}
	if step-now < calRingSize {
		i := int(step & calRingMask)
		c.ring[i] = append(c.ring[i], key)
		c.inRing++
	} else {
		c.overflow.push(calEntry{step: step, key: key})
		c.overflowTotal++
		if n := len(c.overflow); n > c.overflowPeak {
			c.overflowPeak = n
		}
	}
	if d := c.inRing + len(c.overflow); d > c.depthPeak {
		c.depthPeak = d
	}
}

// empty reports whether no events are pending.
func (c *bucketCal) empty() bool { return c.inRing == 0 && len(c.overflow) == 0 }

// next returns the earliest pending event step at or after now.
func (c *bucketCal) next(now int64) (int64, bool) {
	best, ok := int64(0), false
	if c.inRing > 0 {
		for s := now; s < now+calRingSize; s++ {
			if len(c.ring[s&calRingMask]) > 0 {
				best, ok = s, true
				break
			}
		}
	}
	if len(c.overflow) > 0 && (!ok || c.overflow[0].step < best) {
		best, ok = c.overflow[0].step, true
	}
	return best, ok
}

// takeDue removes and returns every key scheduled for step `now`, sorted
// ascending (the canonical same-step delivery order). The returned slice is
// scratch owned by the calendar and valid until the next takeDue call; no
// schedule() for step `now` may happen while it is being iterated (the
// engine only schedules strictly later steps from within a step).
func (c *bucketCal) takeDue(now int64) []int32 {
	due := c.due[:0]
	i := int(now & calRingMask)
	if b := c.ring[i]; len(b) > 0 {
		due = append(due, b...)
		c.ring[i] = b[:0]
		c.inRing -= len(b)
	}
	for len(c.overflow) > 0 && c.overflow[0].step == now {
		due = append(due, c.overflow.pop().key)
	}
	if len(due) > 1 {
		slices.Sort(due)
	}
	c.dueTotal += int64(len(due))
	c.due = due
	return due
}

// readyQueue orders computable pebbles by packed (step, owned-column index)
// keys; a typed min-heap with no interface boxing.
type readyQueue []uint64

func readyKey(step int32, idx int32) uint64 { return uint64(uint32(step))<<32 | uint64(uint32(idx)) }

func (h *readyQueue) push(k uint64) {
	*h = append(*h, k)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[i] >= s[parent] {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *readyQueue) pop() uint64 {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && s[l] < s[least] {
			least = l
		}
		if r < n && s[r] < s[least] {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}
