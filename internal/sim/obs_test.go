package sim

import (
	"math/rand"
	"testing"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
	"latencyhide/internal/obs"
)

// randomNOWConfig builds a seeded heterogeneous line (random link delays,
// uniform multi-copy assignment) — the "network of workstations" shape the
// paper targets.
func randomNOWConfig(t *testing.T, seed int64, hostN int) Config {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	delays := make([]int, hostN-1)
	for i := range delays {
		delays[i] = 1 + r.Intn(25)
	}
	a, err := assign.UniformBlocks(hostN, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Delays: delays,
		Guest:  guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 10, Seed: seed},
		Assign: a,
	}
}

// The observability stream must be bit-identical across engines and worker
// counts on the same configuration: golden comparison on seeded random NOWs.
func TestEventStreamIdenticalAcrossEngines(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := randomNOWConfig(t, seed, 24)
		seqBuf := obs.NewBuffer()
		cfg.Recorder = seqBuf
		seqRes, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d seq: %v", seed, err)
		}
		for _, workers := range []int{2, 3, 5} {
			parBuf := obs.NewBuffer()
			pcfg := cfg
			pcfg.Workers = workers
			pcfg.Recorder = parBuf
			parRes, err := Run(pcfg)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if parRes.HostSteps != seqRes.HostSteps {
				t.Fatalf("seed %d workers %d: host steps %d != %d",
					seed, workers, parRes.HostSteps, seqRes.HostSteps)
			}
			se, pe := seqBuf.Events(), parBuf.Events()
			if len(se) != len(pe) {
				t.Fatalf("seed %d workers %d: %d events != %d", seed, workers, len(pe), len(se))
			}
			for i := range se {
				if se[i] != pe[i] {
					t.Fatalf("seed %d workers %d: event %d differs: seq %+v par %+v",
						seed, workers, i, se[i], pe[i])
				}
			}
		}
	}
}

// The recorded stream must be internally consistent with the run's
// aggregate counters.
func TestEventStreamMatchesCounters(t *testing.T) {
	cfg := randomNOWConfig(t, 11, 16)
	buf := obs.NewBuffer()
	cfg.Recorder = buf
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var computes, injects, delivers int64
	var lastStep int64
	for _, e := range buf.Events() {
		switch e.Kind {
		case obs.KindCompute:
			computes++
			if e.Step > lastStep {
				lastStep = e.Step
			}
		case obs.KindInject:
			injects++
		case obs.KindDeliver:
			delivers++
		}
	}
	if computes != res.PebblesComputed {
		t.Fatalf("compute events %d != pebbles %d", computes, res.PebblesComputed)
	}
	if injects != res.MessageHops {
		t.Fatalf("inject events %d != hops %d", injects, res.MessageHops)
	}
	if delivers != res.DeliveredValues {
		t.Fatalf("deliver events %d != delivered %d", delivers, res.DeliveredValues)
	}
	if lastStep != res.HostSteps {
		t.Fatalf("last compute event at %d != host steps %d", lastStep, res.HostSteps)
	}
}

func TestTraceUtilizationEdgeCases(t *testing.T) {
	// Window far larger than the run: everything lands in one window.
	a, _ := assign.SingleCopyBlocks(4, 8)
	res, err := Run(Config{
		Delays:      unitDelays(4),
		Guest:       guest.Spec{Graph: guest.NewLinearArray(8), Steps: 3, Seed: 1},
		Assign:      a,
		TraceWindow: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Computes) != 1 {
		t.Fatalf("trace %+v", res.Trace)
	}
	if res.Trace.Computes[0] != res.PebblesComputed {
		t.Fatalf("window compute %d != total %d", res.Trace.Computes[0], res.PebblesComputed)
	}
	u := res.Trace.Utilization(4)
	if len(u) != 1 || u[0] <= 0 || u[0] > 1 {
		t.Fatalf("utilization %v", u)
	}
	// Zero processors must not divide by zero: all-zero output.
	for _, v := range res.Trace.Utilization(0) {
		if v != 0 {
			t.Fatalf("zero-proc utilization %v", v)
		}
	}
	// Zero-length trace (no computes recorded) stays well-formed.
	empty := &Trace{Window: 8}
	if got := empty.Utilization(4); len(got) != 0 {
		t.Fatalf("empty trace utilization %v", got)
	}
}
