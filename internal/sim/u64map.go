package sim

// u64map is a purpose-built open-addressing hash map from uint64 keys to
// uint64 values. It was the per-workstation knowledge table until the dense
// generation-indexed store (dense.go) replaced it on the hot path; it
// survives purely as the differential test oracle — FuzzDenseKnowledge
// drives random (col, step) operation sequences against both stores and
// asserts identical results, which only works because this map makes no
// assumptions about key structure that the dense store could share. Key 0
// is reserved as the empty sentinel; knowledge keys are kkey(col, step)
// with step >= 1, so 0 never occurs.
type u64map struct {
	keys []uint64
	vals []uint64
	mask uint64
	n    int // live entries
}

const u64mapMinCap = 16

func newU64map() *u64map {
	m := &u64map{}
	m.init(u64mapMinCap)
	return m
}

func (m *u64map) init(capacity int) {
	m.keys = make([]uint64, capacity)
	m.vals = make([]uint64, capacity)
	m.mask = uint64(capacity - 1)
	m.n = 0
}

// hash scrambles the key; kkey packs col<<32|step, whose low bits alone
// would collide badly across columns.
func u64hash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// get returns the value for key and whether it is present.
func (m *u64map) get(key uint64) (uint64, bool) {
	i := u64hash(key) & m.mask
	for {
		k := m.keys[i]
		if k == key {
			return m.vals[i], true
		}
		if k == 0 {
			return 0, false
		}
		i = (i + 1) & m.mask
	}
}

// has reports whether key is present.
func (m *u64map) has(key uint64) bool {
	_, ok := m.get(key)
	return ok
}

// put inserts or overwrites key.
func (m *u64map) put(key, val uint64) {
	if key == 0 {
		panic("u64map: zero key")
	}
	// Grow at 50% load: the engine's hottest operation is the *missing*
	// probe (dependency not yet known), whose expected chain length blows
	// up past half load in linear-probe tables; trading memory for short
	// chains is a clear win here.
	if 2*(m.n+1) > len(m.keys) {
		m.rehash(2 * len(m.keys))
	}
	i := u64hash(key) & m.mask
	for {
		k := m.keys[i]
		if k == key {
			m.vals[i] = val
			return
		}
		if k == 0 {
			m.keys[i] = key
			m.vals[i] = val
			m.n++
			return
		}
		i = (i + 1) & m.mask
	}
}

// del removes key if present, using backward-shift deletion (no
// tombstones, so heavy churn cannot degrade probes).
func (m *u64map) del(key uint64) {
	i := u64hash(key) & m.mask
	for {
		k := m.keys[i]
		if k == 0 {
			return
		}
		if k == key {
			break
		}
		i = (i + 1) & m.mask
	}
	// backward shift: close the hole by moving displaced entries back
	m.n--
	j := i
	for {
		j = (j + 1) & m.mask
		k := m.keys[j]
		if k == 0 {
			break
		}
		home := u64hash(k) & m.mask
		// can k move into the hole at i? yes iff its home position does
		// not lie strictly between i (exclusive) and j (inclusive) in
		// probe order.
		if ((j - home) & m.mask) >= ((j - i) & m.mask) {
			m.keys[i] = k
			m.vals[i] = m.vals[j]
			i = j
		}
	}
	m.keys[i] = 0
	m.vals[i] = 0
	// shrink when very sparse to bound churned memory
	if len(m.keys) > u64mapMinCap && 8*m.n < len(m.keys) {
		m.rehash(len(m.keys) / 2)
	}
}

func (m *u64map) rehash(capacity int) {
	if capacity < u64mapMinCap {
		capacity = u64mapMinCap
	}
	oldK, oldV := m.keys, m.vals
	m.init(capacity)
	for i, k := range oldK {
		if k != 0 {
			m.put(k, oldV[i])
		}
	}
}

// size reports the number of live entries.
func (m *u64map) size() int { return m.n }
