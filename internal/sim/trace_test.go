package sim

import (
	"testing"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
)

func TestTraceAccounting(t *testing.T) {
	a, err := assign.UniformBlocks(8, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Delays:      []int{1, 5, 1, 9, 1, 5, 1},
		Guest:       guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 20, Seed: 4},
		Assign:      a,
		TraceWindow: 8,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Window != 8 {
		t.Fatal("no trace collected")
	}
	var computes, hops int64
	for _, c := range res.Trace.Computes {
		computes += c
	}
	for _, h := range res.Trace.Hops {
		hops += h
	}
	if computes != res.PebblesComputed {
		t.Fatalf("trace computes %d != total %d", computes, res.PebblesComputed)
	}
	if hops != res.MessageHops {
		t.Fatalf("trace hops %d != total %d", hops, res.MessageHops)
	}
	// windows cover the whole run
	want := int((res.HostSteps-1)/8 + 1)
	if len(res.Trace.Computes) > want || len(res.Trace.Computes) == 0 {
		t.Fatalf("%d windows for %d steps", len(res.Trace.Computes), res.HostSteps)
	}
	if len(res.Trace.Computes) != len(res.Trace.Hops) {
		t.Fatal("ragged trace")
	}
	util := res.Trace.Utilization(8)
	for i, u := range util {
		if u < 0 || u > 1 {
			t.Fatalf("window %d utilization %f", i, u)
		}
	}
	// no trace requested -> nil
	cfg.TraceWindow = 0
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil {
		t.Fatal("unexpected trace")
	}
}

func TestMaxQueueDepth(t *testing.T) {
	// the star burst from TestBandwidthSemantics: P pebbles queued on one
	// link at once, drained at B per step -> peak depth >= P - B
	p, b, d := 9, 2, 4
	adj := make([][]int, p+1)
	for i := 0; i < p; i++ {
		adj[i] = []int{p}
		adj[p] = append(adj[p], i)
	}
	a, err := assign.FromOwned(2, p+1, [][]int{seqInts(p), {p}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Delays:         []int{d},
		Guest:          guest.Spec{Graph: guest.NewCustom("star", adj), Steps: 2, Seed: 1},
		Assign:         a,
		Bandwidth:      b,
		ComputePerStep: p + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxQueueDepth < p-b {
		t.Fatalf("peak queue %d, want >= %d", res.MaxQueueDepth, p-b)
	}
	// unconstrained bandwidth: queue drains every step
	res2, err := Run(Config{
		Delays:         []int{d},
		Guest:          guest.Spec{Graph: guest.NewCustom("star", adj), Steps: 2, Seed: 1},
		Assign:         a,
		Bandwidth:      p + 1,
		ComputePerStep: p + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MaxQueueDepth > p {
		t.Fatalf("peak queue %d with ample bandwidth", res2.MaxQueueDepth)
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestTraceParallelMatchesSequential(t *testing.T) {
	a, err := assign.UniformBlocks(16, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Delays:      unitDelays(16),
		Guest:       guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 16, Seed: 2},
		Assign:      a,
		TraceWindow: 4,
	}
	seq, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Trace.Computes) != len(par.Trace.Computes) {
		t.Fatalf("window counts differ: %d vs %d", len(seq.Trace.Computes), len(par.Trace.Computes))
	}
	for i := range seq.Trace.Computes {
		if seq.Trace.Computes[i] != par.Trace.Computes[i] || seq.Trace.Hops[i] != par.Trace.Hops[i] {
			t.Fatalf("window %d differs: seq=(%d,%d) par=(%d,%d)", i,
				seq.Trace.Computes[i], seq.Trace.Hops[i], par.Trace.Computes[i], par.Trace.Hops[i])
		}
	}
}
