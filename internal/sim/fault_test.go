package sim

import (
	"strings"
	"testing"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
)

// The verifier must catch corrupted replicas: these tests drive the chunk
// machinery directly (same code path as Run) and then sabotage state before
// verification.

func faultConfig(t *testing.T) (*Config, *routeTable) {
	t.Helper()
	a, err := assign.UniformBlocks(8, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{
		Delays: []int{1, 2, 1, 3, 1, 2, 1},
		Guest:  guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 8, Seed: 9},
		Assign: a,
		Check:  true,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	return cfg, buildRoutes(cfg.Guest.Graph, cfg.Assign, nil, nil)
}

func runChunkToCompletion(t *testing.T, cfg *Config, rt *routeTable) *chunk {
	t.Helper()
	c := newChunk(cfg, rt, 0, cfg.hostN())
	for c.remaining > 0 {
		if c.step() {
			c.now++
			continue
		}
		next, ok := c.nextEvent()
		if !ok {
			t.Fatal("stalled")
		}
		c.now = next
	}
	return c
}

func TestVerifyCatchesExtraUpdate(t *testing.T) {
	cfg, rt := faultConfig(t)
	c := runChunkToCompletion(t, cfg, rt)
	// sabotage: one replica applies a bogus extra update
	oc := &c.procs[3].cols[0]
	oc.db.Apply(guest.Update{Node: int(oc.col), Step: cfg.Guest.Steps + 1, Val: 0xdead})
	err := verify(cfg, []*chunk{c})
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("corruption not caught: %v", err)
	}
}

func TestVerifyCatchesWrongHistory(t *testing.T) {
	cfg, rt := faultConfig(t)
	c := runChunkToCompletion(t, cfg, rt)
	// sabotage: replace a replica's database with one that applied a
	// different value at some step (same version, different digest)
	oc := &c.procs[2].cols[1]
	bad := guest.NewMixDB(int(oc.col), cfg.Guest.Seed)
	for s := 1; s <= cfg.Guest.Steps; s++ {
		bad.Apply(guest.Update{Node: int(oc.col), Step: s, Val: uint64(s) * 7})
	}
	oc.db = bad
	err := verify(cfg, []*chunk{c})
	if err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("corruption not caught: %v", err)
	}
}

func TestVerifyPassesCleanRun(t *testing.T) {
	cfg, rt := faultConfig(t)
	c := runChunkToCompletion(t, cfg, rt)
	if err := verify(cfg, []*chunk{c}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateDeliveryDetected(t *testing.T) {
	cfg, rt := faultConfig(t)
	c := newChunk(cfg, rt, 0, cfg.hostN())
	// inject the same value twice at a position that consumes it
	if len(rt.routes) == 0 {
		t.Skip("no routes")
	}
	r := rt.routes[0]
	pos := int(rt.destsOf(0)[0])
	dense := rt.destDenseOf(0)[0]
	c.deliverValue(pos, 0, r.col, dense, 1, 42)
	c.deliverValue(pos, 0, r.col, dense, 1, 42)
	if c.duplicates != 1 {
		t.Fatalf("duplicates %d", c.duplicates)
	}
	// collect() must turn duplicates into an error
	c.remaining = 0
	if _, err := collect(&Config{Delays: cfg.Delays, Assign: cfg.Assign, Guest: cfg.Guest}, []*chunk{c}); err == nil {
		t.Fatal("duplicate delivery not reported")
	}
}

// Work bound: a workstation computes one pebble per step, so HostSteps is at
// least load * guest steps for fully-loaded processors.
func TestWorkBoundHolds(t *testing.T) {
	a, err := assign.UniformBlocks(4, 4, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Delays: []int{1, 1, 1},
		Guest:  guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 10, Seed: 1},
		Assign: a,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HostSteps < int64(a.Load())*10 {
		t.Fatalf("host steps %d below work bound %d", res.HostSteps, a.Load()*10)
	}
}
