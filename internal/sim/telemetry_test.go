package sim

import (
	"testing"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
	"latencyhide/internal/telemetry"
)

// delaysOf builds an n-host line with the given uniform delay.
func delaysOf(n, d int) []int {
	out := make([]int, n-1)
	for i := range out {
		out[i] = d
	}
	return out
}

func TestTelemetrySequentialAgreesWithResult(t *testing.T) {
	a, _ := assign.SingleCopyBlocks(8, 32)
	reg := telemetry.NewRegistry()
	res, err := Run(Config{
		Delays:    delaysOf(8, 2),
		Guest:     guest.Spec{Graph: guest.NewLinearArray(32), Steps: 24, Seed: 5},
		Assign:    a,
		Check:     true,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	// The deterministic counters must agree exactly with the Result the
	// engine already reports — telemetry is a view, not a second accounting.
	for _, tc := range []struct {
		name string
		want int64
	}{
		{"pebbles_computed", res.PebblesComputed},
		{"pebbles_total", res.PebblesComputed}, // complete run: all work done
		{"messages_injected", res.Messages},
		{"link_hops", res.MessageHops},
		{"deliveries", res.DeliveredValues},
	} {
		if got := snap.Counter(tc.name); got != tc.want {
			t.Errorf("counter %s = %d, want %d", tc.name, got, tc.want)
		}
	}
	if snap.Counter("cal_due_events") <= 0 {
		t.Error("cal_due_events not counted")
	}
	if snap.Gauge("cal_ring_depth_peak") <= 0 {
		t.Error("cal_ring_depth_peak not tracked")
	}
	if snap.Gauge("tx_queue_peak") <= 0 {
		t.Error("tx_queue_peak not tracked")
	}
	if snap.Counter("waiter_pool_hits")+snap.Counter("waiter_pool_grows") <= 0 {
		t.Error("waiter pool not tracked")
	}
	if snap.Gauge("know_live_peak") <= 0 || snap.Gauge("know_slots_peak") <= 0 {
		t.Errorf("dense knowledge gauges empty: live=%d slots=%d",
			snap.Gauge("know_live_peak"), snap.Gauge("know_slots_peak"))
	}
	// Retirement always trails the frontier by at least one step on a line.
	if snap.Gauge("know_retire_lag_peak") < 1 {
		t.Errorf("know_retire_lag_peak = %d, want >= 1", snap.Gauge("know_retire_lag_peak"))
	}
	h, ok := snap.Hists["cal_due_per_step"]
	if !ok || h.Count <= 0 {
		t.Error("cal_due_per_step histogram empty")
	}
	// Sequential engine must not report parallel-only metrics.
	if snap.Gauge("ring_occupancy_peak") != 0 || snap.Counter("boundary_flushes") != 0 {
		t.Error("sequential run reported boundary telemetry")
	}
}

func TestTelemetryParallelBoundaryMetrics(t *testing.T) {
	a, _ := assign.SingleCopyBlocks(16, 32)
	reg := telemetry.NewRegistry()
	cfg := Config{
		Delays:    delaysOf(16, 2),
		Guest:     guest.Spec{Graph: guest.NewLinearArray(32), Steps: 64, Seed: 7},
		Assign:    a,
		Workers:   4,
		Check:     true,
		Telemetry: reg,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("pebbles_computed"); got != res.PebblesComputed {
		t.Errorf("pebbles_computed = %d, want %d", got, res.PebblesComputed)
	}
	if got := snap.Counter("messages_injected"); got != res.Messages {
		t.Errorf("messages_injected = %d, want %d", got, res.Messages)
	}
	if snap.Counter("boundary_flushes") <= 0 || snap.Counter("boundary_msgs") <= 0 {
		t.Errorf("boundary coalescing not tracked: flushes=%d msgs=%d",
			snap.Counter("boundary_flushes"), snap.Counter("boundary_msgs"))
	}
	if snap.Gauge("ring_occupancy_peak") <= 0 {
		t.Error("ring_occupancy_peak not tracked")
	}
	if snap.Gauge("pubclock_lag_max") <= 0 {
		t.Error("pubclock_lag_max not tracked")
	}
	if h, ok := snap.Hists["boundary_batch_size"]; !ok || h.Count != snap.Counter("boundary_flushes") {
		t.Errorf("batch-size histogram count %d != flushes %d",
			h.Count, snap.Counter("boundary_flushes"))
	}
	// One shard per chunk plus the watchdog's.
	labels := reg.ShardLabels()
	if len(labels) != 5 {
		t.Errorf("shard labels = %v, want 4 chunks + watchdog", labels)
	}
	// Telemetry must not perturb results: same config without a registry is
	// bit-identical.
	cfg2 := cfg
	cfg2.Telemetry = nil
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.HostSteps != res.HostSteps || res2.PebblesComputed != res.PebblesComputed ||
		res2.MessageHops != res.MessageHops {
		t.Errorf("telemetry perturbed the run: %+v vs %+v", res, res2)
	}
}
