package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestU64MapBasics(t *testing.T) {
	m := newU64map()
	if _, ok := m.get(5); ok {
		t.Fatal("empty map has key")
	}
	m.put(5, 50)
	m.put(6, 60)
	if v, ok := m.get(5); !ok || v != 50 {
		t.Fatal("get 5")
	}
	m.put(5, 51)
	if v, _ := m.get(5); v != 51 {
		t.Fatal("overwrite")
	}
	if m.size() != 2 {
		t.Fatalf("size %d", m.size())
	}
	m.del(5)
	if m.has(5) || !m.has(6) {
		t.Fatal("delete")
	}
	m.del(5) // absent delete is a no-op
	if m.size() != 1 {
		t.Fatalf("size %d", m.size())
	}
}

func TestU64MapZeroKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero key accepted")
		}
	}()
	newU64map().put(0, 1)
}

func TestU64MapGrowShrink(t *testing.T) {
	m := newU64map()
	const n = 10000
	for i := uint64(1); i <= n; i++ {
		m.put(i, i*3)
	}
	if m.size() != n {
		t.Fatalf("size %d", m.size())
	}
	for i := uint64(1); i <= n; i++ {
		if v, ok := m.get(i); !ok || v != i*3 {
			t.Fatalf("lost key %d", i)
		}
	}
	for i := uint64(1); i <= n; i++ {
		m.del(i)
	}
	if m.size() != 0 {
		t.Fatalf("size %d after deleting all", m.size())
	}
	if len(m.keys) > 64 {
		t.Fatalf("did not shrink: cap %d", len(m.keys))
	}
}

// Property: u64map behaves exactly like the builtin map under random
// interleaved operations, including the backward-shift deletion paths.
func TestU64MapMatchesBuiltin(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := newU64map()
		ref := map[uint64]uint64{}
		// small key space to force collisions and delete-shift chains
		keys := make([]uint64, 60)
		for i := range keys {
			keys[i] = uint64(r.Intn(200) + 1)
		}
		for op := 0; op < 3000; op++ {
			k := keys[r.Intn(len(keys))]
			switch r.Intn(3) {
			case 0:
				v := r.Uint64()
				m.put(k, v)
				ref[k] = v
			case 1:
				m.del(k)
				delete(ref, k)
			default:
				v, ok := m.get(k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		if m.size() != len(ref) {
			return false
		}
		for k, rv := range ref {
			if v, ok := m.get(k); !ok || v != rv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkU64MapChurn(b *testing.B) {
	m := newU64map()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := uint64(i%4096 + 1)
		m.put(k, uint64(i))
		m.get(k)
		if i%3 == 0 {
			m.del(k)
		}
	}
}
