package sim

import (
	"testing"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
)

func lineConfig(t *testing.T, hostN, stride, left int, delay int, steps int, workers int) Config {
	t.Helper()
	a, err := assign.UniformBlocks(hostN, stride, left, 0)
	if err != nil {
		t.Fatalf("assignment: %v", err)
	}
	delays := make([]int, hostN-1)
	for i := range delays {
		delays[i] = delay
	}
	return Config{
		Delays: delays,
		Guest: guest.Spec{
			Graph: guest.NewLinearArray(a.Columns),
			Steps: steps,
			Seed:  42,
		},
		Assign:  a,
		Check:   true,
		Workers: workers,
	}
}

func TestSmokeSingleCopy(t *testing.T) {
	cfg := lineConfig(t, 8, 4, 0, 3, 16, 0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Checked {
		t.Fatal("not checked")
	}
	if res.PebblesComputed != int64(cfg.Assign.Columns)*int64(cfg.Guest.Steps) {
		t.Fatalf("computed %d pebbles, want %d", res.PebblesComputed, cfg.Assign.Columns*cfg.Guest.Steps)
	}
	t.Logf("single-copy: hostSteps=%d slowdown=%.2f msgs=%d", res.HostSteps, res.Slowdown, res.Messages)
}

func TestSmokeRedundant(t *testing.T) {
	cfg := lineConfig(t, 8, 4, 8, 16, 12, 0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Redundancy <= 1 {
		t.Fatalf("redundancy %.2f, want > 1", res.Redundancy)
	}
	t.Logf("redundant: hostSteps=%d slowdown=%.2f redundancy=%.2f", res.HostSteps, res.Slowdown, res.Redundancy)
}

func TestSmokeParallelMatchesSequential(t *testing.T) {
	for _, delay := range []int{1, 5, 17} {
		seq := lineConfig(t, 32, 2, 4, delay, 40, 0)
		par := lineConfig(t, 32, 2, 4, delay, 40, 4)
		rs, err := Run(seq)
		if err != nil {
			t.Fatalf("seq: %v", err)
		}
		rp, err := Run(par)
		if err != nil {
			t.Fatalf("par: %v", err)
		}
		if rs.HostSteps != rp.HostSteps || rs.PebblesComputed != rp.PebblesComputed ||
			rs.Messages != rp.Messages || rs.MessageHops != rp.MessageHops {
			t.Fatalf("delay %d: engines disagree: seq=%+v par=%+v", delay, rs, rp)
		}
	}
}
