package sim

import (
	"reflect"
	"testing"

	"latencyhide/internal/adapt"
	"latencyhide/internal/assign"
	"latencyhide/internal/fault"
	"latencyhide/internal/guest"
	"latencyhide/internal/obs"
)

// Bit-identity under the adversarial regimes and the adaptive controller:
// the sequential engine and the parallel engine at w ∈ {1, 2, 4} must agree
// on the Result and the canonical event stream for every new fault kind,
// with and without adaptation.

// runEngines mirrors runBoth but sweeps the worker counts the issue calls
// out (1, 2, 4) — w=1 exercises the parallel scaffolding (barriers, rings,
// epoch gate) with no actual concurrency, which is where boundary
// off-by-ones hide.
func runEngines(t *testing.T, cfg Config, label string) *Result {
	t.Helper()
	seqBuf := obs.NewBuffer()
	cfg.Workers = 0
	cfg.Recorder = seqBuf
	seqRes, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s seq: %v", label, err)
	}
	for _, workers := range []int{1, 2, 4} {
		parBuf := obs.NewBuffer()
		pcfg := cfg
		pcfg.Workers = workers
		pcfg.Recorder = parBuf
		parRes, err := Run(pcfg)
		if err != nil {
			t.Fatalf("%s workers %d: %v", label, workers, err)
		}
		if !reflect.DeepEqual(seqRes, stripGauges(parRes)) {
			t.Fatalf("%s workers %d: results differ:\nseq %+v\npar %+v",
				label, workers, seqRes, parRes)
		}
		se, pe := seqBuf.Events(), parBuf.Events()
		if len(se) != len(pe) {
			t.Fatalf("%s workers %d: %d events != %d", label, workers, len(pe), len(se))
		}
		for i := range se {
			if se[i] != pe[i] {
				t.Fatalf("%s workers %d: event %d differs:\nseq %+v\npar %+v",
					label, workers, i, se[i], pe[i])
			}
		}
	}
	return seqRes
}

func newRegimePlans() map[string]*fault.Plan {
	return map[string]*fault.Plan{
		"spike": {Seed: 99, Spikes: []fault.Spike{{Link: -1, Prob: 0.05, Alpha: 1.2, Cap: 40}}},
		"drift": {Seed: 99, Drifts: []fault.Drift{{Link: -1, Window: 6, Frac: 1, Period: 4, Stride: 1}}},
		"churn": {Seed: 99, Churns: []fault.Churn{{Link: -1, Up: 10, Down: 3}}},
		"combined-new": {
			Seed:   7,
			Spikes: []fault.Spike{{Link: 3, Prob: 0.1, Alpha: 1.5, Cap: 16}},
			Drifts: []fault.Drift{{Link: -1, Window: 8, Frac: 0.8, Period: 5, Stride: 2}},
			Churns: []fault.Churn{{Link: 9, Up: 8, Down: 4}},
		},
	}
}

func TestEnginesIdenticalUnderNewRegimes(t *testing.T) {
	for name, plan := range newRegimePlans() {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{3, 21} {
				cfg := randomNOWConfig(t, seed, 16)
				cfg.Faults = plan
				cfg.Check = true
				res := runEngines(t, cfg, name)
				if !res.Checked {
					t.Fatalf("%s seed %d: replicas not verified", name, seed)
				}
			}
		})
	}
}

// adaptiveConfig is a flat line that stalls hard under churn: constant
// delays, replicated blocks, enough guest steps for several epochs.
func adaptiveConfig(t *testing.T, hostN, steps int) Config {
	t.Helper()
	a, err := assign.ReplicatedBlocks(hostN, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	delays := make([]int, hostN-1)
	for i := range delays {
		delays[i] = 4
	}
	return Config{
		Delays: delays,
		Guest:  guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: steps, Seed: 17},
		Assign: a,
		Check:  true,
	}
}

func TestEnginesIdenticalUnderAdaptation(t *testing.T) {
	pol := &adapt.Policy{Epoch: 16, Threshold: 0.25, MaxExtra: 1, Budget: 8}
	for name, plan := range newRegimePlans() {
		t.Run(name, func(t *testing.T) {
			cfg := adaptiveConfig(t, 16, 24)
			cfg.Faults = plan
			cfg.Adapt = pol
			res := runEngines(t, cfg, "adapt-"+name)
			if !res.Checked {
				t.Fatalf("%s: adaptive replicas not verified", name)
			}
		})
	}
}

// The controller must actually fire under a sustained churn regime — a run
// where every epoch harvests zero blame would leave the whole adaptive path
// untested — and the activation count is part of the bit-identity contract
// (runEngines compares it via the Result).
func TestAdaptationActivatesUnderChurn(t *testing.T) {
	cfg := adaptiveConfig(t, 16, 32)
	cfg.Faults = &fault.Plan{Seed: 7, Churns: []fault.Churn{{Link: -1, Up: 12, Down: 4}}}
	cfg.Adapt = &adapt.Policy{Epoch: 16, Threshold: 0.25, MaxExtra: 1, Budget: 8}
	res := runEngines(t, cfg, "churn-activates")
	if res.AdaptActivations == 0 {
		t.Fatal("no standby activations under sustained churn")
	}
	if res.AdaptActivations > 8 {
		t.Fatalf("%d activations exceed budget 8", res.AdaptActivations)
	}
	// The event stream carries one KindAdapt event per decision.
	buf := obs.NewBuffer()
	cfg.Recorder = buf
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	adapts := 0
	for _, e := range buf.Events() {
		if e.Kind == obs.KindAdapt {
			adapts++
			if (e.Step-1)%16 != 0 {
				t.Fatalf("activation at step %d is not an epoch boundary", e.Step)
			}
		}
	}
	if adapts != res.AdaptActivations {
		t.Fatalf("%d KindAdapt events, want %d", adapts, res.AdaptActivations)
	}
}

// Adaptation with mode=fault and a fault-free plan never fires, and a nil
// policy must reproduce the base run exactly.
func TestAdaptationNoOpCases(t *testing.T) {
	cfg := adaptiveConfig(t, 12, 16)
	base := runEngines(t, cfg, "no-adapt")
	if base.AdaptActivations != 0 {
		t.Fatalf("activations without a policy: %d", base.AdaptActivations)
	}
	// Fault-free adaptive run: the controller may fire (mode=any blames any
	// stall) but the digests must still verify and the engines still agree.
	cfg.Adapt = &adapt.Policy{Epoch: 8, Threshold: 0.5, MaxExtra: 1, Budget: 4}
	adaptive := runEngines(t, cfg, "adapt-faultfree")
	if !adaptive.Checked {
		t.Fatal("fault-free adaptive run not verified")
	}
	// mode=fault with no fault context anywhere: never activates.
	cfg.Adapt = &adapt.Policy{Epoch: 8, Threshold: 0.5, MaxExtra: 1, Budget: 4, RequireFault: true}
	gated := runEngines(t, cfg, "adapt-gated")
	if gated.AdaptActivations != 0 {
		t.Fatalf("mode=fault fired %d times on a fault-free run", gated.AdaptActivations)
	}
}
