package sim

import (
	"fmt"

	"latencyhide/internal/fault"
	"latencyhide/internal/guest"
	"latencyhide/internal/obs"
	"latencyhide/internal/telemetry"
)

// kkey packs a (column, step) pair into a map key. The engine itself no
// longer hashes — knowledge lives in the dense generation-indexed store
// (dense.go) — but the u64map oracle tests still key it this way.
func kkey(col, step int32) uint64 { return uint64(uint32(col))<<32 | uint64(uint32(step)) }

// msg is one pebble value in transit along a route. next carries the next
// destination's absolute position so relays never load the route record or
// decode the chain — field alignment keeps the struct at 24 bytes with or
// without it.
type msg struct {
	route int32 // index into routeTable.routes
	di    int32 // next destination index within the route chain
	next  int32 // next destination position
	step  int32
	value uint64
}

// timedMsg is a transmitted message with its stamped arrival step.
type timedMsg struct {
	arrive int64
	m      msg
}

// dlink is one directed link: a FIFO queue awaiting injection (bandwidth
// limited) and a FIFO of in-flight messages ordered by arrival step.
type dlink struct {
	delay    int
	bw       int
	queue    []msg
	qh       int
	peakQ    int // high-water mark of the injection queue
	inflight []timedMsg
	ih       int
}

func (l *dlink) qlen() int { return len(l.queue) - l.qh }

func (l *dlink) enqueue(m msg) {
	l.queue = append(l.queue, m)
	if q := l.qlen(); q > l.peakQ {
		l.peakQ = q
	}
}

func (l *dlink) popQueue() msg {
	m := l.queue[l.qh]
	l.qh++
	if l.qh > 64 && l.qh*2 > len(l.queue) {
		n := copy(l.queue, l.queue[l.qh:])
		l.queue = l.queue[:n]
		l.qh = 0
	}
	return m
}

func (l *dlink) pushInflight(t timedMsg) {
	if n := len(l.inflight); n > l.ih && l.inflight[n-1].arrive > t.arrive {
		// Delay jitter can stamp a later injection with an earlier arrival;
		// insert in arrival order (stable: equal arrivals keep send order).
		i := n
		for i > l.ih && l.inflight[i-1].arrive > t.arrive {
			i--
		}
		l.inflight = append(l.inflight, timedMsg{})
		copy(l.inflight[i+1:], l.inflight[i:])
		l.inflight[i] = t
		return
	}
	l.inflight = append(l.inflight, t)
}

func (l *dlink) headArrival() (int64, bool) {
	if l.ih >= len(l.inflight) {
		return 0, false
	}
	return l.inflight[l.ih].arrive, true
}

func (l *dlink) popInflight() msg {
	m := l.inflight[l.ih].m
	l.ih++
	if l.ih > 64 && l.ih*2 > len(l.inflight) {
		n := copy(l.inflight, l.inflight[l.ih:])
		l.inflight = l.inflight[:n]
		l.ih = 0
	}
	return m
}

// ownedCol is one database replica held by a workstation, together with the
// greedy progress state for its pebble column.
type ownedCol struct {
	col       int32
	selfDense int32  // col's index in the proc's dense knowledge store
	next      int32  // next guest step to compute (1-based; T+1 when done)
	missing   int32  // unknown dependencies for step `next`
	lastVal   uint64 // value at step next-1 (own column, computed locally)
	db        guest.Database
	neighbors []int32 // guest-neighbor columns, ascending
	nbDense   []int32 // dense store indexes, parallel to neighbors
	routes    []int32 // routes this position feeds for this column
	// depVals caches the dependency values for step `next`, parallel to
	// neighbors. Slots are filled when the column advances (value already
	// known) or pushed by recordValue when the awaited value lands, so the
	// compute gather never probes the knowledge table.
	depVals []uint64
	// Release lists, precomputed at init so the per-pebble retention check
	// needs no lookups: the owned indexes that consume this column's values
	// and, parallel to neighbors, the owned indexes consuming each
	// neighbor's values.
	consSelf []int32
	consNb   [][]int32

	// Adaptive replication (Config.Adapt; see adapt.go). standby marks a
	// provisioned extra replica, appended after the base columns; dormant
	// standbys never compute and hold no pebbles in the remaining counters
	// until the controller activates them. The column's stall forensics live
	// in the proc's side array (proc.blame, parallel to cols) so this hot
	// struct stays compact on fault-free runs.
	standby bool
	dormant bool
}

// colBlame is one column's stall forensics (adaptive runs only, harvested
// by the controller at epoch boundaries): when the column blocks on missing
// dependencies, start remembers the step, and on unblock the span is
// charged to the last-arriving dependency's slot in dep.
type colBlame struct {
	start int64
	dep   []int64 // parallel to the column's neighbors
}

// waitNode is one entry in a proc's pooled waiter lists: owned index `idx`
// is blocked on the key the list hangs off and will receive the value in
// depVals[slot]; `next` chains within the pool (-1 ends the list). Freed
// nodes are recycled through waitFree.
type waitNode struct {
	idx  int32
	slot int32
	next int32
}

// proc is the state of one workstation.
type proc struct {
	pos  int32
	cols []ownedCol
	// know is the dense knowledge store: known values and pending-waiter
	// anchors, indexed by (dense column, step) — see dense.go.
	know      denseKnow
	waitPool  []waitNode
	waitFree  int32 // freelist head, -1 when empty
	ready     readyQueue
	active    bool // member of the chunk's active list
	crashed   bool // crash-stopped: never computes again
	computed  int64
	remaining int64 // pebbles this workstation still has to compute
	// dupDense (adaptive runs only) flags the dense indexes of the proc's
	// standby columns: a standby host both computes its standby column and
	// still receives it via the pre-provisioned route, so a second sighting
	// of those values is benign rather than a conservation violation.
	dupDense []bool
	// blame (adaptive runs only) is the per-column stall forensics, parallel
	// to cols; nil on fault-free runs.
	blame []colBlame

	// waiter-pool accounting (always-on plain increments; flushed into the
	// telemetry shard periodically when a registry is attached)
	waitHits, waitGrows int64
}

// addWaiter blocks owned index idx (dependency slot `slot`) on the value
// (dense, step), pooling the list node. The chain head lives directly in
// the dense store's slot, so registering a waiter never hashes.
func (p *proc) addWaiter(dense, step, idx, slot int32) {
	ni := p.waitFree
	if ni >= 0 {
		p.waitFree = p.waitPool[ni].next
		p.waitHits++
	} else {
		ni = int32(len(p.waitPool))
		p.waitPool = append(p.waitPool, waitNode{})
		p.waitGrows++
	}
	s := p.know.waiterSlot(dense, step)
	p.waitPool[ni] = waitNode{idx: idx, slot: slot, next: s.waitHead}
	s.waitHead = ni
}

// chunk simulates a contiguous slice [lo, hi) of the host line. The
// sequential engine uses a single chunk covering everything; the parallel
// engine runs one chunk per goroutine with conservative synchronisation.
type chunk struct {
	cfg *Config
	rt  *routeTable

	lo, hi int
	hostN  int
	T      int32
	cps    int

	now   int64
	procs []proc

	// right[i-lo] is link (i -> i+1) for lo <= i < hi (nil entry when the
	// link does not exist); left[i-lo] is link (i -> i-1). Links whose
	// sender position is in the chunk are owned by the chunk: their
	// queueing, bandwidth and arrival stamping happen here.
	right []*dlink
	left  []*dlink
	// inLeft receives messages crossing the boundary link (lo-1 -> lo);
	// inRight receives messages crossing (hi -> hi-1).
	inLeft, inRight dlink

	cal        bucketCal
	activeList []int32 // positions with non-empty ready heaps
	txActive   []int32 // encoded links with queued messages: pos*2 (+1 left)
	txFlag     []bool  // indexed by link code
	// activeSpare/txSpare are the previous step's drained lists, recycled as
	// next step's append targets so the per-step rebuild never allocates.
	activeSpare []int32
	txSpare     []int32

	// outbound boundary batches (parallel engine)
	outLeft, outRight []timedMsg

	remaining       int64
	lastComputeStep int64

	// adaptive replication: blame tracking armed (Config.Adapt enabled) and
	// the last processed epoch boundary, which clips open blocked spans.
	adaptOn    bool
	epochStart int64

	// fault injection (nil plan = no overhead beyond a nil check)
	faults *fault.Plan
	crashQ []crashEvent // pending crash-stops, (step, pos)-sorted

	// stats
	messages, hops, delivered, duplicates int64

	// trace accumulation (Config.TraceWindow > 0)
	traceWindow   int
	traceComputes []int64
	traceHops     []int64

	// deliverTap, when non-nil (tests only), observes every counted
	// delivery; a single nil check on the hot path.
	deliverTap func(pos int, col, step int32, value uint64)

	// event buffer (Config.Recorder != nil); chunks never share a buffer,
	// so the parallel engine records race-free. collect() merges and
	// replays the canonical stream into the configured Recorder.
	buf *obs.Buffer

	// telemetry (Config.Telemetry != nil): one shard per chunk plus the
	// flushed-watermark bookkeeping for delta pushes (see telemetry.go).
	tel                             *telemetry.Shard
	met                             *engineMetrics
	telTick                         int64
	telInitWork                     int64
	telPebbles, telDue, telOverflow int64
	telMsgs, telHops, telDeliv      int64
	telWaitHits, telWaitGrows       int64
	telKnowGrows, telKnowShrinks    int64
}

// newChunk builds chunk state for positions [lo, hi).
func newChunk(cfg *Config, rt *routeTable, lo, hi int) *chunk {
	n := cfg.hostN()
	c := &chunk{
		cfg: cfg, rt: rt, lo: lo, hi: hi, hostN: n,
		T:           int32(cfg.Guest.Steps),
		cps:         cfg.computePerStep(),
		now:         1,
		txFlag:      make([]bool, 2*n),
		traceWindow: cfg.TraceWindow,
	}
	if cfg.Recorder != nil {
		c.buf = obs.NewBuffer()
	}
	c.procs = make([]proc, hi-lo)
	factory := cfg.Guest.Factory()
	c.adaptOn = cfg.ast != nil
	for pos := lo; pos < hi; pos++ {
		p := &c.procs[pos-lo]
		p.pos = int32(pos)
		owned := cfg.Assign.Owned[pos]
		var extra []int
		if c.adaptOn {
			extra = cfg.ast.extraCols[pos]
		}
		p.cols = make([]ownedCol, len(owned)+len(extra))
		universe := colUniverse(cfg.Guest.Graph.Neighbors, unionCols(owned, extra))
		p.know = newDenseKnow(universe)
		p.waitFree = -1
		allCols := owned
		if len(extra) > 0 {
			allCols = append(append(make([]int, 0, len(owned)+len(extra)), owned...), extra...)
		}
		if c.adaptOn {
			p.blame = make([]colBlame, len(p.cols))
		}
		for i, col := range allCols {
			oc := &p.cols[i]
			oc.col = int32(col)
			oc.selfDense = denseIndex(universe, oc.col)
			oc.next = 1
			oc.db = factory(col, cfg.Guest.Seed)
			for _, nb := range cfg.Guest.Graph.Neighbors(col) {
				oc.neighbors = append(oc.neighbors, int32(nb))
				oc.nbDense = append(oc.nbDense, denseIndex(universe, int32(nb)))
			}
			// Step-1 dependencies are the initial values, known up front.
			oc.depVals = make([]uint64, len(oc.neighbors))
			for j, nb := range oc.neighbors {
				oc.depVals[j] = cfg.Guest.InitialValue(int(nb))
			}
			if c.adaptOn {
				p.blame[i].dep = make([]int64, len(oc.neighbors))
			}
			if i < len(owned) {
				oc.routes = rt.routesFor(pos, i)
				p.remaining += int64(c.T)
			} else {
				// Standby replica: dormant, no routes (standbys never send),
				// no pebbles until activated.
				oc.standby, oc.dormant = true, true
				if p.dupDense == nil {
					p.dupDense = make([]bool, len(universe))
				}
				p.dupDense[oc.selfDense] = true
			}
		}
		// consumers: owned column c' consumes its own values and its
		// guest neighbors' values. Resolve the lookup once into the
		// per-column release lists so the hot path never consults a map.
		consumers := make(map[int32][]int32, len(owned))
		for i := range p.cols {
			oc := &p.cols[i]
			consumers[oc.col] = append(consumers[oc.col], int32(i))
			for _, nb := range oc.neighbors {
				consumers[nb] = append(consumers[nb], int32(i))
			}
		}
		for i := range p.cols {
			oc := &p.cols[i]
			oc.consSelf = consumers[oc.col]
			oc.consNb = make([][]int32, len(oc.neighbors))
			for j, nb := range oc.neighbors {
				oc.consNb[j] = consumers[nb]
			}
		}
		// All step-0 values are initial state, known everywhere, so every
		// base column starts ready (when T >= 1). Standby columns wait for
		// activation.
		if c.T >= 1 {
			p.ready = make(readyQueue, 0, len(p.cols))
			for i := 0; i < len(owned); i++ {
				p.ready.push(readyKey(1, int32(i)))
			}
			if len(owned) > 0 {
				p.active = true
				c.activeList = append(c.activeList, int32(pos))
			}
		}
		c.remaining += p.remaining
	}
	// Links, pre-sized from the route table's per-link crossing counts so
	// steady-state queueing never grows a slice (capacities only: the
	// clamps keep wildly-multicast configurations from over-allocating).
	c.right = make([]*dlink, hi-lo)
	c.left = make([]*dlink, hi-lo)
	presize := func(l *dlink, cross int32) *dlink {
		if cross > 0 {
			q := int(cross)
			if q > 64 {
				q = 64
			}
			l.queue = make([]msg, 0, q)
			inf := 2 * int(cross)
			if inf > 128 {
				inf = 128
			}
			l.inflight = make([]timedMsg, 0, inf)
		}
		return l
	}
	for pos := lo; pos < hi; pos++ {
		if pos < n-1 {
			c.right[pos-lo] = presize(&dlink{delay: cfg.Delays[pos], bw: cfg.linkBandwidth(pos)}, rt.crossAt(rt.crossR, pos))
		}
		if pos > 0 {
			c.left[pos-lo] = presize(&dlink{delay: cfg.Delays[pos-1], bw: cfg.linkBandwidth(pos - 1)}, rt.crossAt(rt.crossL, pos-1))
		}
	}
	// Boundary outboxes (parallel engine): size for a few steps' worth of
	// crossing traffic so windowed coalescing appends without reallocating.
	if lo > 0 {
		if cross := rt.crossAt(rt.crossL, lo-1); cross > 0 {
			c.outLeft = make([]timedMsg, 0, minInt(4*int(cross), 256))
		}
	}
	if hi < n {
		if cross := rt.crossAt(rt.crossR, hi-1); cross > 0 {
			c.outRight = make([]timedMsg, 0, minInt(4*int(cross), 256))
		}
	}
	c.cal.presizeScratch(minInt(2*(hi-lo), 64))
	if cfg.Faults != nil {
		c.initFaults(cfg.Faults)
	}
	c.initTelemetry()
	return c
}

// crossAt reads a crossing-count entry, tolerating tables built for tiny
// lines where the arrays are absent.
func (rt *routeTable) crossAt(arr []int32, link int) int32 {
	if link < 0 || link >= len(arr) {
		return 0
	}
	return arr[link]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (c *chunk) proc(pos int) *proc { return &c.procs[pos-c.lo] }

// linkCode encodes a directed link owned by this chunk for the txActive set.
func linkCode(pos int, leftward bool) int32 {
	v := int32(pos) * 2
	if leftward {
		v++
	}
	return v
}

func (c *chunk) markTx(pos int, leftward bool) {
	code := linkCode(pos, leftward)
	if !c.txFlag[code] {
		c.txFlag[code] = true
		c.txActive = append(c.txActive, code)
	}
}

// enqueueFrom places m on the outgoing link from pos in direction dir.
func (c *chunk) enqueueFrom(pos int, dir int8, m msg) {
	if dir > 0 {
		l := c.right[pos-c.lo]
		if l == nil {
			panic(fmt.Sprintf("sim: rightward send from line end %d", pos))
		}
		l.enqueue(m)
		c.markTx(pos, false)
	} else {
		l := c.left[pos-c.lo]
		if l == nil {
			panic(fmt.Sprintf("sim: leftward send from line start %d", pos))
		}
		l.enqueue(m)
		c.markTx(pos, true)
	}
}

// handleArrival processes message m arriving at position pos: deliver when
// pos is the precomputed next destination, then relay onward while
// destinations remain. Pure relays never touch the route table — the travel
// direction is the sign of (next - pos) — so through-traffic stays within
// the 24-byte message.
func (c *chunk) handleArrival(pos int, m msg) {
	if int(m.next) != pos {
		dir := int8(1)
		if int(m.next) < pos {
			dir = -1
		}
		c.enqueueFrom(pos, dir, m)
		return
	}
	r := &c.rt.routes[m.route]
	base := r.off + 2*m.di
	c.deliverValue(pos, m.route, r.col, c.rt.chainArena[base+1], m.step, m.value)
	m.di++
	if m.di >= r.n {
		return
	}
	delta := c.rt.chainArena[base+2]
	if r.dir > 0 {
		m.next = int32(pos) + delta
	} else {
		m.next = int32(pos) - delta
	}
	c.enqueueFrom(pos, r.dir, m)
}

// deliverValue records (col, step) = value at pos and unblocks waiters.
// `dense` is col's index in pos's knowledge store, precomputed on the route
// at build time so the delivery path never resolves a column.
func (c *chunk) deliverValue(pos int, route int32, col, dense, step int32, value uint64) {
	p := c.proc(pos)
	if p.know.has(dense, step) {
		// A standby host computes its standby column locally and still
		// receives it via the provisioned route; that collision is benign
		// (the values are identical). Count the delivery, keep the stored
		// value. Anything else is a conservation violation.
		if p.dupDense == nil || !p.dupDense[dense] {
			c.duplicates++
			return
		}
		c.delivered++
		if c.buf != nil {
			c.buf.RecordDeliver(c.now, int32(pos), route, col, step)
		}
		if c.deliverTap != nil {
			c.deliverTap(pos, col, step, value)
		}
		return
	}
	c.delivered++
	if c.buf != nil {
		c.buf.RecordDeliver(c.now, int32(pos), route, col, step)
	}
	if c.deliverTap != nil {
		c.deliverTap(pos, col, step, value)
	}
	c.recordValue(p, dense, step, value)
}

// recordValue inserts a known value and unblocks any owned columns waiting
// on it. Used both for network deliveries and locally computed pebbles.
func (c *chunk) recordValue(p *proc, dense, step int32, value uint64) {
	head := p.know.put(dense, step, value)
	if p.crashed {
		return // still relays and stores, but never schedules work again
	}
	for ni := head; ni >= 0; {
		n := &p.waitPool[ni]
		oc := &p.cols[n.idx]
		oc.depVals[n.slot] = value
		oc.missing--
		if oc.missing == 0 {
			if c.adaptOn {
				// Forensics: charge the blocked span (clipped to the current
				// epoch) to the last-arriving dependency's slot.
				from := p.blame[n.idx].start
				if from < c.epochStart {
					from = c.epochStart
				}
				if dur := c.now - from; dur > 0 {
					p.blame[n.idx].dep[n.slot] += dur
				}
			}
			p.ready.push(readyKey(oc.next, n.idx))
			if !p.active {
				p.active = true
				c.activeList = append(c.activeList, p.pos)
			}
		}
		next := n.next
		n.next = p.waitFree
		p.waitFree = ni
		ni = next
	}
}

// computeOne pops and computes the lowest-(step, column) ready pebble at p.
// It returns false if nothing is ready.
func (c *chunk) computeOne(p *proc) bool {
	if len(p.ready) == 0 {
		return false
	}
	k := p.ready.pop()
	idx := int32(uint32(k))
	t := int32(uint32(k >> 32))
	oc := &p.cols[idx]
	if t != oc.next {
		panic(fmt.Sprintf("sim: ready entry step %d != next %d for col %d at pos %d",
			t, oc.next, oc.col, p.pos))
	}
	// Dependency values at step t-1 live in oc.depVals, filled when the
	// column advanced (or prefilled with initial values for t == 1).
	var self uint64
	if t == 1 {
		self = c.cfg.Guest.InitialValue(int(oc.col))
	} else {
		self = oc.lastVal
	}
	v := c.cfg.Guest.Compute(oc.db.Digest(), int(oc.col), int(t), self, oc.depVals)
	oc.db.Apply(guest.Update{Node: int(oc.col), Step: int(t), Val: v})
	oc.lastVal = v
	p.computed++
	p.remaining--
	c.remaining--
	c.lastComputeStep = c.now
	if c.traceWindow > 0 {
		c.traceAdd(&c.traceComputes, 1)
	}
	if c.buf != nil {
		c.buf.RecordCompute(c.now, p.pos, oc.col, t)
	}

	// Values at the final step have no consumers anywhere (they would
	// only feed step T+1), so skip both retention and transmission.
	if t < c.T {
		// An activated standby may find the value already delivered by the
		// provisioned route; the delivery stored it (same value) and drained
		// any waiters, so a second record would double-unblock.
		if !oc.standby || !p.know.has(oc.selfDense, t) {
			c.recordValue(p, oc.selfDense, t, v)
		}
		for _, rid := range oc.routes {
			r := &c.rt.routes[rid]
			next := p.pos + c.rt.chainArena[r.off]
			if r.dir < 0 {
				next = p.pos - c.rt.chainArena[r.off]
			}
			c.enqueueFrom(int(p.pos), r.dir, msg{route: rid, di: 0, next: next, step: t, value: v})
			c.messages++
		}
	}

	// Advance to step t+1 before retiring: the computing column is its own
	// consumer, so the release checks below must see it already past step t
	// or nothing would ever retire.
	oc.next = t + 1

	// Release step t-1 dependency values no local column still needs.
	if t >= 2 {
		c.release(p, oc.consSelf, oc.selfDense, t-1)
		for j := range oc.neighbors {
			c.release(p, oc.consNb[j], oc.nbDense[j], t-1)
		}
	}

	if oc.next > c.T {
		return true
	}
	missing := int32(0)
	// Self value (oc.col, t) was stored above (t < T here since next <= T).
	for j := range oc.neighbors {
		if dv, ok := p.know.get(oc.nbDense[j], t); ok {
			oc.depVals[j] = dv
		} else {
			missing++
			p.addWaiter(oc.nbDense[j], t, idx, int32(j))
		}
	}
	oc.missing = missing
	if missing == 0 {
		p.ready.push(readyKey(oc.next, idx))
	} else if c.adaptOn {
		p.blame[idx].start = c.now
	}
	return true
}

// release retires (dense, step) from p.know once every consumer in cons
// (the owned indexes that read that column's values) has advanced past
// needing it (a consumer needs step s values while its next computed step
// is <= s+1).
func (c *chunk) release(p *proc, cons []int32, dense, step int32) {
	for _, idx := range cons {
		if p.cols[idx].next <= step+1 {
			return
		}
	}
	p.know.del(dense, step)
}

// deliveriesFor pops every message on l arriving exactly at step `now` and
// handles it at pos.
func (c *chunk) deliveriesFor(l *dlink, pos int) bool {
	did := false
	for {
		a, ok := l.headArrival()
		if !ok || a > c.now {
			break
		}
		if a < c.now {
			panic(fmt.Sprintf("sim: missed arrival at step %d (now %d) at pos %d", a, c.now, pos))
		}
		c.handleArrival(pos, l.popInflight())
		did = true
	}
	return did
}

// runDeliveries processes all calendar entries scheduled for the current
// step, in deterministic (position, from-left-first) order.
func (c *chunk) runDeliveries() bool {
	did := false
	due := c.cal.takeDue(c.now)
	if c.tel != nil && len(due) > 0 {
		c.tel.Observe(c.met.duePerStep, int64(len(due)))
	}
	for _, key := range due {
		pos := int(key / 2)
		fromRight := key%2 == 1
		var l *dlink
		if fromRight {
			// delivery at pos from link (pos+1 -> pos)
			if pos+1 >= c.hi {
				l = &c.inRight
			} else {
				l = c.left[pos+1-c.lo]
			}
		} else {
			// delivery at pos from link (pos-1 -> pos)
			if pos-1 < c.lo {
				l = &c.inLeft
			} else {
				l = c.right[pos-1-c.lo]
			}
		}
		if c.deliveriesFor(l, pos) {
			did = true
		}
	}
	return did
}

// runCompute lets every active workstation compute up to cps pebbles.
func (c *chunk) runCompute() bool {
	did := false
	// The active list is rebuilt each step: workstations stay on it only
	// while their ready heap is non-empty. Order does not affect state
	// (workstations interact only through links, whose effects land in
	// later steps), so no sorting is needed.
	cur := c.activeList
	c.activeList = c.activeSpare[:0]
	for _, pos := range cur {
		p := c.proc(int(pos))
		lim := c.cps
		if c.faults != nil {
			lim = c.faults.ComputeLimit(int(pos), c.now, lim)
		}
		for i := 0; i < lim; i++ {
			if !c.computeOne(p) {
				break
			}
			did = true
		}
		if len(p.ready) > 0 {
			c.activeList = append(c.activeList, pos)
		} else {
			p.active = false
		}
	}
	c.activeSpare = cur[:0]
	return did
}

// runTransmit injects up to bw queued messages on every backlogged link and
// stamps their arrivals.
func (c *chunk) runTransmit() bool {
	did := false
	cur := c.txActive
	c.txActive = c.txSpare[:0]
	for _, code := range cur {
		pos := int(code / 2)
		leftward := code%2 == 1
		var l *dlink
		link := pos
		if leftward {
			l = c.left[pos-c.lo]
			link = pos - 1
		} else {
			l = c.right[pos-c.lo]
		}
		if c.faults != nil && c.faults.LinkDown(link, c.now) {
			// Outage: nothing injects this step; the queue waits and the
			// link stays flagged so the engine keeps stepping toward the
			// recovery.
			c.txActive = append(c.txActive, code)
			continue
		}
		for i := 0; i < l.bw && l.qlen() > 0; i++ {
			m := l.popQueue()
			arrive := c.now + int64(l.delay)
			if c.faults != nil {
				arrive += int64(c.faults.ExtraDelay(link, leftward, c.now, i))
			}
			c.hops++
			if c.traceWindow > 0 {
				c.traceAdd(&c.traceHops, 1)
			}
			if c.buf != nil {
				link := int32(pos)
				dir := int8(1)
				if leftward {
					link = int32(pos - 1)
					dir = -1
				}
				c.buf.RecordInject(c.now, int32(pos), link, dir,
					m.route, c.rt.routes[m.route].col, m.step)
			}
			did = true
			switch {
			case leftward && pos == c.lo:
				c.outLeft = append(c.outLeft, timedMsg{arrive: arrive, m: m})
			case !leftward && pos == c.hi-1:
				c.outRight = append(c.outRight, timedMsg{arrive: arrive, m: m})
			case leftward:
				l.pushInflight(timedMsg{arrive: arrive, m: m})
				c.cal.schedule(c.now, arrive, linkDeliveryKey(pos-1, true))
			default:
				l.pushInflight(timedMsg{arrive: arrive, m: m})
				c.cal.schedule(c.now, arrive, linkDeliveryKey(pos+1, false))
			}
		}
		if l.qlen() > 0 {
			c.txActive = append(c.txActive, code) // stays flagged
		} else {
			c.txFlag[code] = false
		}
	}
	c.txSpare = cur[:0]
	return did
}

// traceAdd accumulates a trace counter into the window containing the
// current step.
func (c *chunk) traceAdd(arr *[]int64, v int64) {
	w := int((c.now - 1) / int64(c.traceWindow))
	for len(*arr) <= w {
		*arr = append(*arr, 0)
	}
	(*arr)[w] += v
}

// linkDeliveryKey encodes "delivery at position pos from the right/left" for
// calendar ordering.
func linkDeliveryKey(pos int, fromRight bool) int32 {
	v := int32(pos) * 2
	if fromRight {
		v++
	}
	return v
}

// step executes one host step (deliver, compute, transmit) and reports
// whether anything happened.
func (c *chunk) step() bool {
	if len(c.crashQ) > 0 && c.crashQ[0].step <= c.now {
		c.applyCrashes()
	}
	d1 := c.runDeliveries()
	d2 := c.runCompute()
	d3 := c.runTransmit()
	if c.tel != nil {
		c.telTick++
		if c.telTick&(telFlushInterval-1) == 0 {
			c.flushTelemetry()
		}
	}
	return d1 || d2 || d3
}

// quiescent reports that the chunk can never produce another event on its
// own: no ready work, no queued, in-flight or outboxed messages, nothing on
// the calendar. Pending crash-stops are ignored — with no work left they
// change nothing. Adaptive runs use this as the termination test: dormant
// standbys are route destinations that consume nothing, so standby-bound
// traffic can still be in flight after the last pebble computes, and both
// engines must drain it to the same (empty) state to stay bit-identical.
func (c *chunk) quiescent() bool {
	if len(c.activeList) > 0 || len(c.txActive) > 0 {
		return false
	}
	if len(c.outLeft) > 0 || len(c.outRight) > 0 {
		return false
	}
	return c.cal.empty()
}

// nextEvent returns the earliest step at which something can happen after
// `now`, or 0,false if the chunk is locally quiescent.
func (c *chunk) nextEvent() (int64, bool) {
	if len(c.activeList) > 0 || len(c.txActive) > 0 {
		return c.now + 1, true
	}
	next, ok := c.cal.next(c.now)
	if len(c.crashQ) > 0 && (!ok || c.crashQ[0].step < next) {
		// A pending crash-stop is a schedulable event: its write-off may be
		// what lets the run terminate.
		next, ok = c.crashQ[0].step, true
		if next <= c.now {
			next = c.now + 1
		}
	}
	return next, ok
}

// receiveBoundary appends a batch of boundary arrivals (already stamped by
// the sending chunk) and schedules their deliveries.
func (c *chunk) receiveBoundary(fromLeft bool, batch []timedMsg) {
	if len(batch) == 0 {
		return
	}
	if fromLeft {
		for _, tm := range batch {
			c.inLeft.pushInflight(tm)
			c.cal.schedule(c.now, tm.arrive, linkDeliveryKey(c.lo, false))
		}
	} else {
		for _, tm := range batch {
			c.inRight.pushInflight(tm)
			c.cal.schedule(c.now, tm.arrive, linkDeliveryKey(c.hi-1, true))
		}
	}
}

// finalDigests collects (column, digest) pairs for every replica in the
// chunk, for verification against the reference executor.
func (c *chunk) finalDigests() []replicaDigest {
	var out []replicaDigest
	for i := range c.procs {
		p := &c.procs[i]
		for j := range p.cols {
			oc := &p.cols[j]
			out = append(out, replicaDigest{
				pos: int(p.pos), col: int(oc.col), digest: oc.db.Digest(),
				version: oc.db.Version(), dormant: oc.dormant,
			})
		}
	}
	return out
}

// peakQueue reports the chunk's deepest injection queue (bandwidth
// pressure).
func (c *chunk) peakQueue() int {
	best := 0
	for _, ls := range [][]*dlink{c.right, c.left} {
		for _, l := range ls {
			if l != nil && l.peakQ > best {
				best = l.peakQ
			}
		}
	}
	return best
}

type replicaDigest struct {
	pos, col, version int
	digest            uint64
	dormant           bool // never-activated standby: no work to verify
}
