package sim

import (
	"sync"
	"sync/atomic"

	"latencyhide/internal/adapt"
	"latencyhide/internal/obs"
)

// Adaptive replication in the engine (see internal/adapt for the policy):
//
// Standby replicas are provisioned at build time and dormant until the
// controller activates them. For every column, adapt.Placement picks up to
// MaxExtra consumer hosts; each gets a dormant ownedCol appended after the
// host's base columns, and the routing table fans the standby column's
// dependency traffic out to that host from step 1 (buildRoutes' extra
// destinations). A dormant column never computes, never sends, and holds
// no place in the remaining-work counters — but being a registered
// consumer, it pins its dependencies' values in the knowledge store, which
// is exactly what lets an activation replay the column from guest step 1.
//
// The controller runs at epoch boundaries E, 2E, ...: it harvests the
// per-column stall blame the chunks accumulated during the epoch (see
// depBlame in chunk.go), feeds the dormant candidates to adapt.Decide in
// canonical (host, column) order, and activates the winners effective at
// step E+1 — dormant -> live, ready at guest step 1, T pebbles added to
// the remaining-work counters so the run (and its digest verification)
// waits for the catch-up to finish. Activated standbys still never send:
// they serve their own host's consumers, cutting the supply latency the
// forensics blamed.
//
// Determinism: placement is a pure function of static config; blame is a
// pure function of the (bit-identical) simulation at steps <= E; the
// candidate order is canonical; and both engines run the controller at the
// exact same point — the sequential engine when its clock first passes E,
// the parallel engine at a barrier all workers reach with their clocks at
// exactly E+1 (see epochGate below). So adaptive runs stay bit-identical
// across engines and worker counts.
type adaptState struct {
	policy    *adapt.Policy
	placement [][]int      // per column: standby hosts, ascending
	extraCols [][]int      // per host: standby columns, ascending
	dead      map[int]bool // crash-stop hosts (excluded from placement)

	// Controller state. Only one goroutine touches it at a time: the
	// sequential engine inline, the parallel engine's last barrier arriver
	// with the gate providing the happens-before edges.
	budget    int
	decisions []adapt.Decision
}

// newAdaptState resolves the policy against the static configuration.
func newAdaptState(cfg *Config, crashed []int) *adaptState {
	pol := cfg.Adapt
	dead := make(map[int]bool, len(crashed))
	for _, h := range crashed {
		dead[h] = true
	}
	pl := pol.Placement(cfg.Assign, cfg.Delays, cfg.Guest.Graph.Neighbors, crashed)
	extra := make([][]int, cfg.hostN())
	for col, hosts := range pl {
		for _, h := range hosts {
			extra[h] = append(extra[h], col) // ascending: outer loop is
		}
	}
	return &adaptState{
		policy: pol, placement: pl, extraCols: extra, dead: dead,
		budget: pol.Budget,
	}
}

// unionCols merges two ascending, disjoint column lists.
func unionCols(a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// atBoundary runs the controller at epoch boundary E. Every chunk must
// have simulated exactly the steps <= E (clock at E+1), so the harvested
// blame is identical in both engines. Returns the pebbles added to the
// chunks' remaining counters; the parallel caller mirrors them into its
// global counter.
func (a *adaptState) atBoundary(boundary int64, chunks []*chunk) int64 {
	epoch := int64(a.policy.Epoch)
	var cands []adapt.Candidate
	if a.budget > 0 {
		for _, c := range chunks {
			cands = a.harvest(c, boundary, cands)
		}
	}
	decisions, budget := a.policy.Decide(boundary+1, cands, a.budget)
	a.budget = budget
	var added int64
	for _, d := range decisions {
		added += activate(chunks, d)
	}
	a.decisions = append(a.decisions, decisions...)
	// Reset the epoch-local blame and advance every chunk's epoch clock so
	// ongoing blocked spans are clipped at this boundary from now on.
	for _, c := range chunks {
		for pi := range c.procs {
			p := &c.procs[pi]
			for i := range p.blame {
				for j := range p.blame[i].dep {
					p.blame[i].dep[j] = 0
				}
			}
		}
		c.epochStart = boundary
		_ = epoch
	}
	return added
}

// harvest appends chunk c's dormant-standby candidates for the epoch ending
// at boundary, in (host, column) order: the blame every live column on the
// host accumulated against the standby's column, including the still-open
// blocked spans clipped to the epoch.
func (a *adaptState) harvest(c *chunk, boundary int64, cands []adapt.Candidate) []adapt.Candidate {
	for pi := range c.procs {
		p := &c.procs[pi]
		if p.crashed {
			continue
		}
		hasDormant := false
		for i := range p.cols {
			if p.cols[i].dormant {
				hasDormant = true
				break
			}
		}
		if !hasDormant {
			continue
		}
		// blame per dependency column: the closed spans recorded in
		// p.blame plus the open spans of still-blocked columns.
		blame := map[int32]int64{}
		for i := range p.cols {
			oc := &p.cols[i]
			if oc.dormant {
				continue
			}
			for j := range p.blame[i].dep {
				if p.blame[i].dep[j] > 0 {
					blame[oc.neighbors[j]] += p.blame[i].dep[j]
				}
			}
			if oc.next <= c.T && oc.missing > 0 {
				from := p.blame[i].start
				if from < c.epochStart {
					from = c.epochStart
				}
				if dur := boundary - from; dur > 0 {
					dep := oc.next - 1
					for j := range oc.neighbors {
						if !p.know.has(oc.nbDense[j], dep) {
							blame[oc.neighbors[j]] += dur
						}
					}
				}
			}
		}
		for i := range p.cols {
			oc := &p.cols[i]
			if !oc.dormant {
				continue
			}
			b := blame[oc.col]
			if b <= 0 {
				continue
			}
			cand := adapt.Candidate{Host: int(p.pos), Col: int(oc.col), Blamed: b}
			if a.policy.RequireFault {
				cand.FaultContext = a.faultCtx(c.cfg, int(p.pos), int(oc.col), c.epochStart, boundary)
			}
			cands = append(cands, cand)
		}
	}
	return cands
}

// faultCtx reports whether the blamed column's supply path to the host
// overlapped an injected fault during the epoch (c.epochStart, boundary]:
// a down, jittery or spiky link between the host and the column's nearest
// surviving holder, or a slowdown on that holder. Pure plan queries, so
// both engines agree.
func (a *adaptState) faultCtx(cfg *Config, host, col int, lo, hi int64) bool {
	plan := cfg.Faults
	if plan == nil {
		return false
	}
	best := -1
	for _, h := range cfg.Assign.Holders[col] {
		if a.dead[h] {
			continue
		}
		if best == -1 || absInt(h-host) < absInt(best-host) {
			best = h
		}
	}
	if best == -1 {
		return false
	}
	for _, iv := range plan.SlowIntervals(best, hi) {
		if iv.Hi > lo {
			return true
		}
	}
	links := len(cfg.Delays)
	loL, hiL := host, best
	if loL > hiL {
		loL, hiL = hiL, loL
	}
	jit := plan.JitterLinks(links)
	spk := plan.SpikeLinks(links)
	for l := loL; l < hiL; l++ {
		if containsInt(jit, l) || containsInt(spk, l) {
			return true
		}
		for _, iv := range plan.OutageIntervals(l, hi) {
			if iv.Hi > lo {
				return true
			}
		}
	}
	return false
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func containsInt(sorted []int, x int) bool {
	for _, v := range sorted {
		if v == x {
			return true
		}
		if v > x {
			return false
		}
	}
	return false
}

// activate flips one standby replica live, effective at d.Step: ready at
// guest step 1 (its step-1 dependencies are the initial values prefilled at
// init) with its T pebbles added to the remaining-work counters, so the run
// waits for the catch-up and the digest check covers the new replica.
func activate(chunks []*chunk, d adapt.Decision) int64 {
	for _, c := range chunks {
		if d.Host < c.lo || d.Host >= c.hi {
			continue
		}
		p := c.proc(d.Host)
		if p.crashed {
			return 0
		}
		for i := range p.cols {
			oc := &p.cols[i]
			if !oc.dormant || int(oc.col) != d.Col {
				continue
			}
			oc.dormant = false
			p.ready.push(readyKey(1, int32(i)))
			if !p.active {
				p.active = true
				c.activeList = append(c.activeList, p.pos)
			}
			t := int64(c.T)
			p.remaining += t
			c.remaining += t
			return t
		}
		return 0
	}
	return 0
}

// adaptEvents renders the controller's decisions as obs events, appended
// after the run like the fault spans.
func (a *adaptState) adaptEvents() []obs.Event {
	events := make([]obs.Event, 0, len(a.decisions))
	for _, d := range a.decisions {
		events = append(events, obs.Event{
			Step: d.Step, Kind: obs.KindAdapt,
			Proc: int32(d.Host), Col: int32(d.Col), Link: -1, Route: -1,
		})
	}
	return events
}

// epochGate is the parallel engine's epoch barrier. Workers arrive with
// their clocks at exactly boundary+1 (the horizon is capped there, so no
// chunk simulates past a boundary before the controller runs); the last
// arriver runs the controller over all chunks and releases the rest. While
// waiting, a worker keeps draining its boundary rings (with its idle flag
// raised so producers' wakes reach it) — otherwise a neighbor still
// running toward the barrier could fill a ring and spin forever on a
// worker that will never drain again.
//
// The gate is also where adaptive runs terminate: before running the
// controller, the last arriver checks global quiescence — pebble counter
// zero, every chunk quiescent, every boundary ring empty — and declares
// the run over instead. The check must mirror the sequential engine's rule
// (terminate at the first point past quiescence WITHOUT running the
// controller there), so it scans live state rather than trusting
// arrival-time votes: a worker that was quiescent when it arrived may have
// drained a neighbor's pre-barrier traffic while waiting, and a stale vote
// would then either terminate with work in flight or run the controller at
// a boundary the sequential engine never reaches (residual blame — e.g. a
// crashed column's permanently open blocked span — would activate standbys
// in one engine only). The scan is safe because every waiter is parked and
// only mutates its chunk inside drainBarrier, under this same mutex.
type epochGate struct {
	chunks  []*chunk
	workers []*worker // set once the workers exist, before any goroutine runs

	mu      sync.Mutex
	n       int
	arrived int
	release chan struct{}
}

func newEpochGate(n int, chunks []*chunk) *epochGate {
	return &epochGate{n: n, chunks: chunks, release: make(chan struct{})}
}

// arrive registers one worker at the barrier. The last arriver gets
// last=true and owns the terminal check, the controller and closing rel;
// everyone else waits on rel. The mutex hand-off orders every worker's
// chunk writes before the controller's reads, and the channel close orders
// the controller's writes before the released workers' reads.
func (g *epochGate) arrive() (last bool, rel chan struct{}) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.arrived++
	rel = g.release
	if g.arrived == g.n {
		g.arrived = 0
		g.release = make(chan struct{})
		return true, rel
	}
	return false, rel
}

// terminal is the last arriver's global-quiescence check for the boundary
// all workers are parked at. All chunk and ring writes are ordered before
// this read: simulating workers' writes by their arrive(), waiters' drains
// by drainBarrier — both through g.mu.
func (g *epochGate) terminal(global *int64) bool {
	if atomic.LoadInt64(global) != 0 {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, c := range g.chunks {
		if !c.quiescent() {
			return false
		}
	}
	for _, wk := range g.workers {
		for _, s := range []*side{wk.left, wk.right} {
			if s != nil && !s.in.empty() {
				return false
			}
		}
	}
	return true
}

// drainBarrier drains w's inbound rings while w waits at the barrier. The
// gate mutex both keeps the drain's chunk writes exclusive with the last
// arriver's terminal scan and controller run, and orders them for whoever
// takes the mutex next.
func (g *epochGate) drainBarrier(w *worker) {
	g.mu.Lock()
	w.drainAll()
	g.mu.Unlock()
}
