package sim

import (
	"fmt"

	"latencyhide/internal/fault"
	"latencyhide/internal/obs"
)

// Fault semantics in the engine (see internal/fault for the plan itself):
//
//   - Jitter adds extra delay to individual injections. Arrivals on one link
//     can then be non-monotone, so pushInflight keeps the in-flight list
//     sorted; jitter is additive-only, which keeps the parallel engine's
//     boundary lookahead (clock + base link delay) safe.
//   - An outage keeps a link's injection loop from running; queued messages
//     wait (the link stays in txActive, so the engine keeps stepping) and
//     inject when the link recovers. Nothing is ever dropped.
//   - A slowdown caps a workstation's per-step compute via
//     fault.ComputeLimit in runCompute.
//   - A crash-stop writes off the host's remaining pebbles at the crash
//     step, empties its ready heap and freezes its replicas; the host keeps
//     relaying link traffic. Crash-stop hosts are excluded from routing up
//     front — static failover onto surviving replicas — and a column whose
//     every holder crashes makes the run fail fast with UncomputableError.
//
// Everything above is driven by pure (seed, site, step) queries, so the
// sequential and parallel engines see identical faults and stay
// bit-identical; fault telemetry (obs.KindFault spans) is synthesised from
// the plan after the run, identically in both engines.

// UncomputableError reports a run that cannot complete: every replica of the
// named columns lives on a crash-stop host, so no surviving workstation can
// ever compute them. Detected statically before the run starts.
type UncomputableError struct {
	Columns []int // orphaned guest columns, ascending
	Crashed []int // crash-stop hosts, ascending
}

func (e *UncomputableError) Error() string {
	cols := e.Columns
	suffix := ""
	if len(cols) > 8 {
		suffix = fmt.Sprintf(" (+%d more)", len(cols)-8)
		cols = cols[:8]
	}
	return fmt.Sprintf("sim: columns %v%s uncomputable: every replica is on a crash-stop host %v",
		cols, suffix, e.Crashed)
}

// crashEvent is one pending crash-stop inside a chunk, ordered by step.
type crashEvent struct {
	step int64
	pos  int32
}

// initFaults installs the fault plan on a freshly built chunk.
func (c *chunk) initFaults(p *fault.Plan) {
	if !p.Enabled() {
		return
	}
	c.faults = p
	for pos := c.lo; pos < c.hi; pos++ {
		if s, ok := p.CrashStep(pos); ok {
			c.crashQ = append(c.crashQ, crashEvent{step: s, pos: int32(pos)})
		}
	}
	for i := 1; i < len(c.crashQ); i++ { // tiny list; keep it (step, pos)-sorted
		for j := i; j > 0 && (c.crashQ[j-1].step > c.crashQ[j].step ||
			(c.crashQ[j-1].step == c.crashQ[j].step && c.crashQ[j-1].pos > c.crashQ[j].pos)); j-- {
			c.crashQ[j-1], c.crashQ[j] = c.crashQ[j], c.crashQ[j-1]
		}
	}
}

// applyCrashes executes every crash-stop due at or before the current step:
// the workstation's pending work is written off and it never computes again.
// Its knowledge table keeps accepting deliveries (the network is healthy),
// but recordValue no longer schedules work for it.
func (c *chunk) applyCrashes() {
	for len(c.crashQ) > 0 && c.crashQ[0].step <= c.now {
		p := c.proc(int(c.crashQ[0].pos))
		c.crashQ = c.crashQ[1:]
		p.crashed = true
		p.ready = p.ready[:0]
		c.remaining -= p.remaining
		p.remaining = 0
	}
}

// orphanedColumns returns the guest columns whose every holder is in the
// crashed set.
func orphanedColumns(cfg *Config, crashed []int) []int {
	dead := make(map[int]bool, len(crashed))
	for _, h := range crashed {
		dead[h] = true
	}
	var orphans []int
	for col, hs := range cfg.Assign.Holders {
		all := true
		for _, h := range hs {
			if !dead[h] {
				all = false
				break
			}
		}
		if all {
			orphans = append(orphans, col)
		}
	}
	return orphans
}

// faultEvents synthesises the run's obs.KindFault telemetry spans from the
// plan. Both engines call this with the same plan and the same HostSteps, so
// the spans are bit-identical by construction.
func faultEvents(cfg *Config, hostSteps int64) []obs.Event {
	p := cfg.Faults
	if !p.Enabled() || hostSteps <= 0 {
		return nil
	}
	var events []obs.Event
	links := len(cfg.Delays)
	for _, l := range p.JitterLinks(links) {
		events = append(events, obs.Event{
			Step: 1, Kind: obs.KindFault, Fault: obs.FaultJitter,
			Proc: -1, Link: int32(l), Route: -1, Dur: hostSteps,
		})
	}
	for _, l := range p.SpikeLinks(links) {
		events = append(events, obs.Event{
			Step: 1, Kind: obs.KindFault, Fault: obs.FaultSpike,
			Proc: -1, Link: int32(l), Route: -1, Dur: hostSteps,
		})
	}
	if len(p.Outages) > 0 || len(p.Drifts) > 0 || len(p.Churns) > 0 {
		for l := 0; l < links; l++ {
			for _, iv := range p.OutageIntervals(l, hostSteps) {
				events = append(events, obs.Event{
					Step: iv.Lo, Kind: obs.KindFault, Fault: obs.FaultOutage,
					Proc: -1, Link: int32(l), Route: -1, Dur: iv.Hi - iv.Lo + 1,
				})
			}
		}
	}
	if len(p.Slowdowns) > 0 {
		for h := 0; h < cfg.hostN(); h++ {
			for _, iv := range p.SlowIntervals(h, hostSteps) {
				events = append(events, obs.Event{
					Step: iv.Lo, Kind: obs.KindFault, Fault: obs.FaultSlow,
					Proc: int32(h), Link: -1, Route: -1, Dur: iv.Hi - iv.Lo + 1,
				})
			}
		}
	}
	for _, h := range p.CrashedHosts() {
		s, _ := p.CrashStep(h)
		if s > hostSteps {
			continue // crashed after the run already finished
		}
		events = append(events, obs.Event{
			Step: s, Kind: obs.KindFault, Fault: obs.FaultCrash,
			Proc: int32(h), Link: -1, Route: -1, Dur: hostSteps - s + 1,
		})
	}
	return events
}
