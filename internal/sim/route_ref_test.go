package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
	"latencyhide/internal/obs"
)

// This file retains the pre-compaction route builder verbatim (renamed
// ref*) as the differential oracle for the compact arena representation in
// route.go. The compact builder must agree with it structurally — same
// routes, same order, same destinations, same dense indexes, same sender
// index, same crossing counts — and, run through the engine, must produce a
// bit-identical event stream. compactFromRef converts a reference table
// into the compact layout through an independent code path, so an encoding
// bug in buildRoutes cannot cancel out in the comparison.

type refRoute struct {
	col       int32
	dir       int8
	sender    int32
	dests     []int32
	destDense []int32
}

type refRouteTable struct {
	routes         []refRoute
	bySender       [][][]int32
	crossR, crossL []int32
}

// buildRoutesRef is the old buildRoutes, kept bit-for-bit in behavior.
func buildRoutesRef(g guest.Graph, a *assign.Assignment, avoid []int, extra [][]int) *refRouteTable {
	rt := &refRouteTable{bySender: make([][][]int32, a.HostN)}
	var extraHolders [][]int
	if extra != nil {
		extraHolders = make([][]int, a.Columns)
		for p, cols := range extra {
			for _, col := range cols {
				extraHolders[col] = append(extraHolders[col], p)
			}
		}
	}
	for p := range rt.bySender {
		rt.bySender[p] = make([][]int32, len(a.Owned[p]))
	}
	dead := make(map[int]bool, len(avoid))
	for _, h := range avoid {
		dead[h] = true
	}
	liveHolders := func(col int) []int {
		hs := a.Holders[col]
		if len(dead) == 0 {
			return hs
		}
		needs := false
		for _, h := range hs {
			if dead[h] {
				needs = true
				break
			}
		}
		if !needs {
			return hs
		}
		live := make([]int, 0, len(hs))
		for _, h := range hs {
			if !dead[h] {
				live = append(live, h)
			}
		}
		return live
	}
	senderFor := func(hs []int, dest int) int {
		i := sort.SearchInts(hs, dest)
		switch {
		case i == 0:
			return hs[0]
		case i == len(hs):
			return hs[len(hs)-1]
		default:
			if dest-hs[i-1] <= hs[i]-dest {
				return hs[i-1]
			}
			return hs[i]
		}
	}
	type chainKey struct {
		sender int
		dir    int8
	}
	for col := 0; col < a.Columns; col++ {
		destSet := make(map[int]bool)
		for _, nb := range g.Neighbors(col) {
			for _, p := range a.Holders[nb] {
				if !dead[p] {
					destSet[p] = true
				}
			}
			if extraHolders != nil {
				for _, p := range extraHolders[nb] {
					if !dead[p] {
						destSet[p] = true
					}
				}
			}
		}
		for _, p := range a.Holders[col] {
			delete(destSet, p)
		}
		if len(destSet) == 0 {
			continue
		}
		hs := liveHolders(col)
		chains := make(map[chainKey][]int32)
		for dest := range destSet {
			s := senderFor(hs, dest)
			dir := int8(1)
			if dest < s {
				dir = -1
			}
			k := chainKey{sender: s, dir: dir}
			chains[k] = append(chains[k], int32(dest))
		}
		keys := make([]chainKey, 0, len(chains))
		for k := range chains {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].sender != keys[j].sender {
				return keys[i].sender < keys[j].sender
			}
			return keys[i].dir < keys[j].dir
		})
		for _, k := range keys {
			dests := chains[k]
			if k.dir > 0 {
				sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
			} else {
				sort.Slice(dests, func(i, j int) bool { return dests[i] > dests[j] })
			}
			id := int32(len(rt.routes))
			rt.routes = append(rt.routes, refRoute{
				col:    int32(col),
				dir:    k.dir,
				sender: int32(k.sender),
				dests:  dests,
			})
			idx := sort.SearchInts(a.Owned[k.sender], col)
			rt.bySender[k.sender][idx] = append(rt.bySender[k.sender][idx], id)
		}
	}
	rt.refResolveDestDense(g, a, extra)
	rt.refCountCrossings(a.HostN)
	return rt
}

func (rt *refRouteTable) refResolveDestDense(g guest.Graph, a *assign.Assignment, extra [][]int) {
	universes := make([][]int32, a.HostN)
	uniFor := func(pos int32) []int32 {
		if universes[pos] == nil {
			owned := a.Owned[pos]
			if extra != nil && len(extra[pos]) > 0 {
				owned = unionCols(owned, extra[pos])
			}
			universes[pos] = colUniverse(g.Neighbors, owned)
		}
		return universes[pos]
	}
	for i := range rt.routes {
		r := &rt.routes[i]
		r.destDense = make([]int32, len(r.dests))
		for j, d := range r.dests {
			dense := denseIndex(uniFor(d), r.col)
			if dense < 0 {
				panic(fmt.Sprintf("sim: ref route %d delivers col %d to pos %d, which holds no neighbor of it", i, r.col, d))
			}
			r.destDense[j] = dense
		}
	}
}

func (rt *refRouteTable) refCountCrossings(hostN int) {
	if hostN < 2 {
		return
	}
	diffR := make([]int32, hostN)
	diffL := make([]int32, hostN)
	for _, r := range rt.routes {
		last := r.dests[len(r.dests)-1]
		if r.dir > 0 {
			diffR[r.sender]++
			diffR[last]--
		} else {
			diffL[last]++
			diffL[r.sender]--
		}
	}
	rt.crossR = make([]int32, hostN-1)
	rt.crossL = make([]int32, hostN-1)
	var sumR, sumL int32
	for i := 0; i < hostN-1; i++ {
		sumR += diffR[i]
		sumL += diffL[i]
		rt.crossR[i] = sumR
		rt.crossL[i] = sumL
	}
}

// compactFromRef mechanically encodes a reference table into the compact
// layout — per-route, no interning — so the engine can consume the
// reference builder's output directly.
func compactFromRef(ref *refRouteTable, a *assign.Assignment) *routeTable {
	rt := newRouteShell(a)
	rt.routes = make([]routeRec, len(ref.routes))
	lasts := make([]int32, len(ref.routes))
	for i := range ref.routes {
		rr := &ref.routes[i]
		off := int32(len(rt.chainArena))
		prev := rr.sender
		for j, d := range rr.dests {
			delta := d - prev
			if rr.dir < 0 {
				delta = prev - d
			}
			rt.chainArena = append(rt.chainArena, delta, rr.destDense[j])
			prev = d
		}
		rt.routes[i] = routeRec{col: rr.col, sender: rr.sender, off: off, n: int32(len(rr.dests)), dir: rr.dir}
		lasts[i] = rr.dests[len(rr.dests)-1]
	}
	for p := 0; p < a.HostN; p++ {
		for slot := range ref.bySender[p] {
			s := rt.senderBase[p] + int32(slot)
			rt.slotOff[s] = int32(len(rt.routeIDs))
			rt.routeIDs = append(rt.routeIDs, ref.bySender[p][slot]...)
		}
	}
	rt.slotOff[len(rt.slotOff)-1] = int32(len(rt.routeIDs))
	rt.countCrossings(a.HostN, lasts)
	return rt
}

func eqI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RouteDifferential builds cfg's route table with both the production and
// reference builders, checks them structurally identical, and (when events
// is true) runs the sequential engine once per table asserting bit-identical
// obs event streams. Exported so the corpus test in package sim_test (which
// can import internal/verify without a cycle) can drive it.
func RouteDifferential(cfg Config, events bool) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	var crashed []int
	if cfg.Faults != nil {
		crashed = cfg.Faults.CrashedHosts()
		if len(crashed) > 0 {
			if orphans := orphanedColumns(&cfg, crashed); len(orphans) > 0 {
				return nil // Run would refuse this config; nothing to compare
			}
		}
	}
	prep := func() Config {
		c := cfg
		c.Workers = 0
		c.Check = false
		c.Telemetry = nil
		if c.Adapt.Enabled() {
			c.ast = newAdaptState(&c, crashed)
		}
		return c
	}
	cNew := prep()
	var extra [][]int
	if cNew.ast != nil {
		extra = cNew.ast.extraCols
	}
	rtNew := buildRoutes(cfg.Guest.Graph, cfg.Assign, crashed, extra)
	ref := buildRoutesRef(cfg.Guest.Graph, cfg.Assign, crashed, extra)

	if len(rtNew.routes) != len(ref.routes) {
		return fmt.Errorf("route count: compact %d, ref %d", len(rtNew.routes), len(ref.routes))
	}
	for id := range ref.routes {
		rr := &ref.routes[id]
		nr := &rtNew.routes[id]
		if nr.col != rr.col || nr.sender != rr.sender || nr.dir != rr.dir || int(nr.n) != len(rr.dests) {
			return fmt.Errorf("route %d header: compact {col %d sender %d dir %d n %d}, ref {col %d sender %d dir %d n %d}",
				id, nr.col, nr.sender, nr.dir, nr.n, rr.col, rr.sender, rr.dir, len(rr.dests))
		}
		if got := rtNew.destsOf(int32(id)); !eqI32(got, rr.dests) {
			return fmt.Errorf("route %d dests: compact %v, ref %v", id, got, rr.dests)
		}
		if got := rtNew.destDenseOf(int32(id)); !eqI32(got, rr.destDense) {
			return fmt.Errorf("route %d destDense: compact %v, ref %v", id, got, rr.destDense)
		}
	}
	for p := range ref.bySender {
		for slot, ids := range ref.bySender[p] {
			if got := rtNew.routesFor(p, slot); !eqI32(got, ids) && !(len(got) == 0 && len(ids) == 0) {
				return fmt.Errorf("routesFor(%d, %d): compact %v, ref %v", p, slot, got, ids)
			}
		}
	}
	if !eqI32(rtNew.crossR, ref.crossR) || !eqI32(rtNew.crossL, ref.crossL) {
		return fmt.Errorf("crossing counts differ: compact R%v L%v, ref R%v L%v",
			rtNew.crossR, rtNew.crossL, ref.crossR, ref.crossL)
	}
	if err := rtNew.validate(cfg.Assign.HostN); err != nil {
		return err
	}
	if !events {
		return nil
	}

	runWith := func(rt *routeTable) ([]obs.Event, *Result, error) {
		c := prep()
		buf := obs.NewBuffer()
		c.Recorder = buf
		res, err := runSequential(&c, rt)
		return buf.Events(), res, err
	}
	evNew, resNew, errNew := runWith(rtNew)
	evRef, resRef, errRef := runWith(compactFromRef(ref, cfg.Assign))
	if (errNew == nil) != (errRef == nil) {
		return fmt.Errorf("engine outcome differs: compact err %v, ref err %v", errNew, errRef)
	}
	if errNew != nil {
		if errNew.Error() != errRef.Error() {
			return fmt.Errorf("engine errors differ: compact %v, ref %v", errNew, errRef)
		}
		return nil
	}
	if len(evNew) != len(evRef) {
		return fmt.Errorf("event stream length: compact %d, ref %d", len(evNew), len(evRef))
	}
	for i := range evNew {
		if evNew[i] != evRef[i] {
			return fmt.Errorf("event %d differs: compact %+v, ref %+v", i, evNew[i], evRef[i])
		}
	}
	if resNew.HostSteps != resRef.HostSteps || resNew.Messages != resRef.Messages ||
		resNew.MessageHops != resRef.MessageHops || resNew.DeliveredValues != resRef.DeliveredValues {
		return fmt.Errorf("results differ: compact %+v, ref %+v", resNew, resRef)
	}
	return nil
}

// randomDiffConfig builds a randomized replicated assignment on a small
// line, mirroring TestRouteCoverage's generator, as a differential subject.
func randomDiffConfig(r *rand.Rand) (Config, error) {
	hostN := 2 + r.Intn(7)
	m := 2 + r.Intn(12)
	owned := make([][]int, hostN)
	used := make([]map[int]bool, hostN)
	for i := range used {
		used[i] = map[int]bool{}
	}
	addCopy := func(c, p int) {
		if !used[p][c] {
			used[p][c] = true
			owned[p] = append(owned[p], c)
		}
	}
	for c := 0; c < m; c++ {
		addCopy(c, r.Intn(hostN))
		for extra := 0; extra < r.Intn(3); extra++ {
			addCopy(c, r.Intn(hostN))
		}
	}
	a, err := assign.FromOwned(hostN, m, owned)
	if err != nil {
		return Config{}, err
	}
	delays := make([]int, hostN-1)
	for i := range delays {
		delays[i] = 1 + r.Intn(5)
	}
	return Config{
		Delays: delays,
		Guest:  guest.Spec{Graph: guest.NewLinearArray(m), Steps: 2 + r.Intn(7), Seed: r.Int63()},
		Assign: a,
	}, nil
}

// TestRouteCompactDifferentialRandom drives RouteDifferential (structure +
// event streams) over random replicated assignments; the verify-corpus
// variant lives in package sim_test.
func TestRouteCompactDifferentialRandom(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		cfg, err := randomDiffConfig(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := RouteDifferential(cfg, trial < 20); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// FuzzRouteCompact compares the delivered (pos, col, step, value) multisets
// of a chunk run under the compact builder against one under the reference
// builder's table, plus the structural differential.
func FuzzRouteCompact(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(7))
	f.Add(int64(12345))
	f.Fuzz(func(t *testing.T, seed int64) {
		r := rand.New(rand.NewSource(seed))
		cfg, err := randomDiffConfig(r)
		if err != nil {
			t.Skip()
		}
		if err := cfg.Validate(); err != nil {
			t.Skip()
		}
		if err := RouteDifferential(cfg, false); err != nil {
			t.Fatal(err)
		}
		type deliv struct {
			pos   int
			col   int32
			step  int32
			value uint64
		}
		runTapped := func(rt *routeTable) []deliv {
			var out []deliv
			c := newChunk(&cfg, rt, 0, cfg.hostN())
			c.deliverTap = func(pos int, col, step int32, value uint64) {
				out = append(out, deliv{pos, col, step, value})
			}
			maxSteps := cfg.maxSteps()
			for c.remaining > 0 {
				if c.now > maxSteps {
					t.Fatal("step cap exceeded")
				}
				if c.step() {
					c.now++
					continue
				}
				next, ok := c.nextEvent()
				if !ok {
					t.Fatal("stalled")
				}
				if next <= c.now {
					next = c.now + 1
				}
				c.now = next
			}
			sort.Slice(out, func(i, j int) bool {
				if out[i].pos != out[j].pos {
					return out[i].pos < out[j].pos
				}
				if out[i].col != out[j].col {
					return out[i].col < out[j].col
				}
				if out[i].step != out[j].step {
					return out[i].step < out[j].step
				}
				return out[i].value < out[j].value
			})
			return out
		}
		got := runTapped(buildRoutes(cfg.Guest.Graph, cfg.Assign, nil, nil))
		want := runTapped(compactFromRef(buildRoutesRef(cfg.Guest.Graph, cfg.Assign, nil, nil), cfg.Assign))
		if len(got) != len(want) {
			t.Fatalf("delivery count: compact %d, ref %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("delivery %d: compact %+v, ref %+v", i, got[i], want[i])
			}
		}
	})
}
