package sim

import "testing"

// The dlink FIFOs amortise pops with a head cursor and compact the backing
// slice once the consumed prefix passes 64 entries and half the slice
// (popQueue/popInflight's `qh > 64 && qh*2 > len` path). These tests pin
// FIFO order across compaction, peak-queue accounting, and the
// empty-after-compact state, including repeated fill/drain wraparounds that
// force the compaction several times on the same link.

func TestDlinkQueueCompaction(t *testing.T) {
	l := &dlink{delay: 1, bw: 1}
	const n = 200
	for i := 0; i < n; i++ {
		l.enqueue(msg{route: int32(i)})
	}
	if l.peakQ != n {
		t.Fatalf("peakQ %d want %d", l.peakQ, n)
	}
	// Pop past the compaction trigger: at qh=101, 101*2 > 200 fires.
	for i := 0; i < 150; i++ {
		if m := l.popQueue(); m.route != int32(i) {
			t.Fatalf("pop %d returned route %d (order broken by compaction)", i, m.route)
		}
	}
	if l.qh >= 64 {
		t.Fatalf("queue not compacted: qh=%d len=%d", l.qh, len(l.queue))
	}
	if l.qlen() != n-150 {
		t.Fatalf("qlen %d want %d", l.qlen(), n-150)
	}
	// Enqueue after compaction must preserve FIFO order.
	for i := n; i < n+10; i++ {
		l.enqueue(msg{route: int32(i)})
	}
	for i := 150; i < n+10; i++ {
		if m := l.popQueue(); m.route != int32(i) {
			t.Fatalf("post-compact pop returned route %d want %d", m.route, i)
		}
	}
	if l.qlen() != 0 {
		t.Fatalf("queue not empty after drain: qlen=%d", l.qlen())
	}
	// peakQ is a high-water mark: drains must not lower it, and refills
	// below the peak must not raise it.
	if l.peakQ != n {
		t.Fatalf("peakQ moved to %d after drain, want %d", l.peakQ, n)
	}
	l.enqueue(msg{route: 1})
	if l.peakQ != n {
		t.Fatalf("peakQ %d after small refill, want %d", l.peakQ, n)
	}
}

// TestDlinkQueueWraparound forces compaction repeatedly through many
// fill/drain cycles, keeping a residue across each cycle so the head cursor
// keeps sliding through freshly compacted slices.
func TestDlinkQueueWraparound(t *testing.T) {
	l := &dlink{}
	next := int32(0) // next route id to enqueue
	want := int32(0) // next route id expected from pop
	for cycle := 0; cycle < 8; cycle++ {
		for i := 0; i < 90; i++ {
			l.enqueue(msg{route: next})
			next++
		}
		// Drain all but 5, popping through at least one compaction.
		for l.qlen() > 5 {
			if m := l.popQueue(); m.route != want {
				t.Fatalf("cycle %d: pop route %d want %d", cycle, m.route, want)
			}
			want++
		}
	}
	for l.qlen() > 0 {
		if m := l.popQueue(); m.route != want {
			t.Fatalf("final drain: pop route %d want %d", m.route, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("popped %d messages, enqueued %d", want, next)
	}
	// The amortisation invariant: the consumed prefix never exceeds both
	// the 64-entry threshold and half the backing slice.
	if l.qh > 64 && l.qh*2 > len(l.queue) {
		t.Fatalf("drained queue left uncompacted: qh=%d len=%d", l.qh, len(l.queue))
	}
	if l.qlen() != 0 {
		t.Fatalf("queue not empty after drain: qlen=%d", l.qlen())
	}
}

func TestDlinkInflightCompaction(t *testing.T) {
	l := &dlink{}
	const n = 180
	for i := 0; i < n; i++ {
		l.pushInflight(timedMsg{arrive: int64(i + 1), m: msg{route: int32(i)}})
	}
	for i := 0; i < n; i++ {
		a, ok := l.headArrival()
		if !ok || a != int64(i+1) {
			t.Fatalf("headArrival at %d: %d,%v", i, a, ok)
		}
		if m := l.popInflight(); m.route != int32(i) {
			t.Fatalf("popInflight %d returned route %d", i, m.route)
		}
	}
	if _, ok := l.headArrival(); ok {
		t.Fatal("headArrival reports entries on an empty inflight FIFO")
	}
	if l.ih > 64 && l.ih*2 > len(l.inflight) {
		t.Fatalf("inflight FIFO left uncompacted after drain: ih=%d len=%d", l.ih, len(l.inflight))
	}
	// Push after full drain: arrivals must surface immediately.
	l.pushInflight(timedMsg{arrive: 99, m: msg{route: 7}})
	if a, ok := l.headArrival(); !ok || a != 99 {
		t.Fatalf("headArrival after refill: %d,%v", a, ok)
	}
	if m := l.popInflight(); m.route != 7 {
		t.Fatalf("popInflight after refill: route %d", m.route)
	}
}
