package expt

import (
	"fmt"

	"latencyhide/internal/assign"
	"latencyhide/internal/baseline"
	"latencyhide/internal/guest"
	"latencyhide/internal/lower"
	"latencyhide/internal/mesharray"
	"latencyhide/internal/metrics"
	"latencyhide/internal/network"
	"latencyhide/internal/overlap"
	"latencyhide/internal/sim"
	"latencyhide/internal/tree"
)

func init() {
	register(&Experiment{
		ID:    "E6",
		Title: "Unbounded degree breaks Theorem 6: the clique chain",
		Paper: "Section 4 counterexample (slowdown >= n^(1/4) despite d_ave = O(1))",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			ks := []int{4, 6, 8}
			if scale == Full {
				ks = append(ks, 12, 16)
			}
			steps := 24
			t := metrics.NewTable("E6: ring guest on the clique-chain host",
				"k", "n=k^2", "d_ave(host)", "d_ave(line)", "measured", "certified LB n^(1/4)")
			for _, k := range ks {
				g := network.CliqueChain(k)
				out, err := overlap.Simulate(g, overlap.Options{
					Variant: overlap.LoadOne, Steps: steps, Seed: 81,
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(k, k*k, g.AvgDelay(), out.Dave, out.Sim.Slowdown, lower.CliqueChainBestLB(k))
			}
			t.AddNote("paper: constant host d_ave does not help — embedding any line inflates d_ave to ~sqrt(n) and no strategy beats n^(1/4)")
			return []*metrics.Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "E7",
		Title: "2-dimensional guest arrays",
		Paper: "Theorems 7 and 8",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			hostN := 8
			d := 64
			steps := 12
			colsList := []int{4, 8, 16, 32}
			if scale == Full {
				hostN = 16
				colsList = append(colsList, 64, 128)
			}
			t1 := metrics.NewTable("E7a: m x m mesh on a uniform-delay line (Theorem 7)",
				"mesh", "hostN", "d", "slowdown", "pred m+d+m^2/n")
			var xs, ys []float64
			for _, m := range colsList {
				r, err := mesharray.OnUniformLine(hostN, d, m, mesharray.Options{
					Rows: m, Steps: steps, Seed: 91, Check: scale == Quick && m <= 16,
				})
				if err != nil {
					return nil, err
				}
				t1.AddRow(fmt.Sprintf("%dx%d", m, m), hostN, d, r.Sim.Slowdown, r.PredictedSlowdown)
				xs = append(xs, float64(m))
				ys = append(ys, r.Sim.Slowdown)
			}
			t1.AddNote("paper: case 1 slowdown O(m) while m <= n, then O(m^2/n) — measured log-log slope vs m: %.2f",
				metrics.LogLogSlope(xs, ys))

			t2 := metrics.NewTable("E7b: mesh guest on NOW lines with tree overlaps (Theorem 8)",
				"host n", "mesh", "load", "slowdown", "pred (m+m^2/n)log3n")
			sizes := []int{128, 256}
			if scale == Full {
				sizes = append(sizes, 512)
			}
			for _, n := range sizes {
				g := network.Line(n, nowDelay(n), int64(n+1))
				r, err := mesharray.OnLine(delaysOf(g), mesharray.Options{
					Rows: 16, Steps: 12, Seed: 92, ColsPerUnit: 1, Check: scale == Quick && n <= 128,
				})
				if err != nil {
					return nil, err
				}
				t2.AddRow(n, fmt.Sprintf("%dx%d", r.Rows, r.Cols), r.Sim.Load, r.Sim.Slowdown, r.PredictedSlowdown)
			}
			return []*metrics.Table{t1, t2}, nil
		},
	})

	register(&Experiment{
		ID:    "E8",
		Title: "One copy per database forces slowdown d_max = sqrt(n) on H1",
		Paper: "Theorem 9, with OVERLAP beating the bound via redundancy",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			sizes := []int{64, 256, 1024}
			if scale == Full {
				sizes = append(sizes, 4096)
			}
			steps := 48
			t := metrics.NewTable("E8: host H1 — certified single-copy bounds vs measured runs",
				"n", "sqrt(n)", "min certified LB", "single-copy measured", "overlap floor", "overlap measured", "overlap load")
			for _, n := range sizes {
				minLB, _, err := lower.H1Adversary(n, n)
				if err != nil {
					return nil, err
				}
				h1 := network.H1(n)
				delays := delaysOf(h1)
				sc, err := baseline.SingleCopy(delays, n, steps, 101, false)
				if err != nil {
					return nil, err
				}
				tr := tree.Build(delays, 4)
				ova, err := assign.TwoLevel(tr, 2, int(1+network.ISqrt(int(tr.Dave))))
				if err != nil {
					return nil, err
				}
				floor, err := lower.PropagationLB(delays, ova, 4*network.ISqrt(n))
				if err != nil {
					return nil, err
				}
				ov, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.TwoLevel, Beta: 2, Steps: steps, Seed: 101,
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(n, network.ISqrt(n), minLB, sc.Sim.Slowdown, floor, ov.Sim.Slowdown, ov.Load)
			}
			t.AddNote("paper: every single-copy strategy certifies LB >= sqrt(n), and measured runs sit on it; " +
				"replication drives the certified propagation floor itself down ('overlap floor'), which is why OVERLAP can beat sqrt(n)")
			return []*metrics.Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "E9",
		Title: "Two copies per database still force slowdown Omega(log n) on H2",
		Paper: "Theorem 10, Figures 5-6, Fact 4",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			sizes := []int{64, 256, 1024}
			if scale == Full {
				sizes = append(sizes, 4096)
			}
			steps := 32
			t := metrics.NewTable("E9: host H2 — certified two-copy bounds vs measured runs",
				"n param", "procs", "segments", "log n", "certified LB", "LB/(log n)", "case", "measured 2-copy")
			for _, n := range sizes {
				spec := network.H2(n)
				hostN := spec.Net.NumNodes()
				m := hostN / 2
				if m < 8 {
					m = 8
				}
				a, err := twoCopyBlocks(hostN, m)
				if err != nil {
					return nil, err
				}
				cert, err := lower.CertifyTwoCopy(spec, a, a.Load())
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(sim.Config{
					Delays: delaysOf(spec.Net),
					Guest:  guest.Spec{Graph: guest.NewLinearArray(m), Steps: steps, Seed: 111},
					Assign: a,
					Check:  scale == Quick && n <= 256,
				})
				if err != nil {
					return nil, err
				}
				logn := network.Log2Ceil(spec.N)
				t.AddRow(n, hostN, spec.NumSegments(), logn,
					cert.SlowdownLB, cert.SlowdownLB/float64(logn), cert.Case, res.Slowdown)
			}
			t.AddNote("paper: with at most two copies and constant load the slowdown is Omega(log n); measured runs respect every certificate")
			return []*metrics.Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "E10",
		Title: "Killing and labeling invariants on random hosts",
		Paper: "Section 3.1, Lemmas 1-4, Figure 2",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			type cfg struct {
				name   string
				delays []int
			}
			mk := func(name string, n int, src network.DelaySource, seed int64) cfg {
				return cfg{name: name, delays: delaysOf(network.Line(n, src, seed))}
			}
			cfgs := []cfg{
				mk("uniform[1,8]", 256, network.UniformDelay{Lo: 1, Hi: 8}, 1000),
				mk("bimodal far=64", 256, network.BimodalDelay{Near: 1, Far: 64, P: 0.02}, 1001),
				mk("pareto", 256, network.ParetoDelay{Alpha: 1.2, Scale: 2, Cap: 512}, 1002),
				mk("exp mean=6", 512, network.ExpDelay{Mean: 6}, 1003),
				{"hotspot w=1", hotspotLine(256, 1, 100000)},
				{"hotspot w=3", hotspotLine(512, 3, 1000000)},
			}
			if scale == Full {
				cfgs = append(cfgs,
					mk("bimodal far=1024", 4096, network.BimodalDelay{Near: 1, Far: 1024, P: 0.002}, 1004),
					mk("pareto big", 4096, network.ParetoDelay{Alpha: 1.1, Scale: 3, Cap: 4096}, 1005),
					cfg{"hotspot w=8", hotspotLine(4096, 8, 10000000)},
				)
			}
			c := 4
			t := metrics.NewTable("E10: interval-tree processing across delay distributions (c = 4)",
				"host", "n", "d_ave", "killed-1", "killed-2", "n'", "(1-2/c)n", "lemmas")
			for _, cf := range cfgs {
				n := len(cf.delays) + 1
				tr := tree.Build(cf.delays, c)
				status := "ok"
				if err := tr.CheckLemmas(); err != nil {
					status = err.Error()
				}
				t.AddRow(cf.name, n, tr.Dave, tr.KilledStage1, tr.KilledStage2,
					tr.GuestSize(), n-2*n/c, status)
			}
			t.AddNote("paper: at most n/c killed in stage 1 and root label >= (1-2/c) n — all rows must say ok")
			return []*metrics.Table{t}, nil
		},
	})
}

// hotspotLine builds a host whose middle `width` links have delay `factor`
// and all others delay 1: a delay hotspot concentrated enough to exceed the
// stage-1 killing threshold D_k (the random distributions rarely are), so
// the tree actually kills processors.
func hotspotLine(n, width, factor int) []int {
	delays := make([]int, n-1)
	start := n/2 - width/2
	for i := range delays {
		delays[i] = 1
		if i >= start && i < start+width {
			delays[i] = factor
		}
	}
	return delays
}

// twoCopyBlocks builds a Theorem 10 test assignment: m columns in contiguous
// blocks, every column replicated on two host processors half the array
// apart (so copies land in different parts of the level-box structure).
func twoCopyBlocks(hostN, m int) (*assign.Assignment, error) {
	owned := make([][]int, hostN)
	half := hostN / 2
	for c := 0; c < m; c++ {
		p := c * half / m
		owned[p] = append(owned[p], c)
		owned[p+half] = append(owned[p+half], c)
	}
	return assign.FromOwned(hostN, m, owned)
}
