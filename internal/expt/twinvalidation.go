package expt

import (
	"fmt"

	"latencyhide/internal/fleet"
	"latencyhide/internal/metrics"
)

// E19 validates the analytical twin (internal/twin) against measurement:
// a fleet of generator scenarios plus the clique-chain ladder is simulated,
// each result is classified into its theorem family, and the twin's
// closed-form prediction is scored per family. The reproduction claim is
// that each theorem's functional form — not just its asymptotic order —
// explains the measured slowdowns to within the family's frozen MAPE
// ceiling, and that no measurement ever beats its certified lower bound.

func init() {
	register(&Experiment{
		ID:    "E19",
		Title: "Analytical twin: per-theorem slowdown predictions vs measurement",
		Paper: "Theorems 2/4, 5/6, 9 and Section 4 as closed-form predictors with frozen constants",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			n := 120
			if scale == Full {
				n = 600
			}
			plan := fleet.Plan{Seed: 1, N: n}
			m := fleet.NewMeasurer()
			items := plan.Items()
			results := make([]fleet.Result, 0, len(items))
			for _, it := range items {
				r, err := m.Measure(it)
				if err != nil {
					return nil, fmt.Errorf("item %d (%s): %w", it.Index, it.Kind, err)
				}
				results = append(results, r)
			}
			reports, allPass := fleet.Report(results)
			t := metrics.NewTable(
				fmt.Sprintf("E19: twin predictions vs %d measured scenarios (seed=%d)", len(results), plan.Seed),
				"family", "n", "mape", "ceiling", "in_band", "cert_viol", "status")
			for _, r := range reports {
				status := "PASS"
				if !r.Pass {
					status = "FAIL"
				}
				mape, band := "-", "-"
				if r.N > 0 {
					mape = fmt.Sprintf("%.4f", r.MAPE)
					band = fmt.Sprintf("%.3f", r.InBand)
				}
				t.AddRow(r.Name, r.N, mape, fmt.Sprintf("%.2f", r.Ceiling), band, r.CertViolations, status)
			}
			for _, r := range reports {
				if r.N > 0 {
					t.AddNote("%s: %s", r.Name, r.Theorem)
				}
			}
			t.AddNote("point model: c0 + c_load*Load + c_floor*PropFloor per family, constants frozen from `latencysim twin -fit -seed 1 -n 2000` (DESIGN.md §11); cert_viol counts measurements below the certified finite-horizon ping-pong floor, which must be zero by construction")
			t.AddNote("the clique-chain family is the paper's Section 4 separation: d_ave = O(1) yet slowdown tracks the n^(1/4) floor, and the twin predicts it within a few percent because the generalized ping-pong floor carries almost all of the signal")
			if !allPass {
				return nil, fmt.Errorf("twin validation failed: a family breached its MAPE ceiling or a certified floor was violated")
			}
			return []*metrics.Table{t}, nil
		},
	})
}
