// Package expt is the reproduction harness: one experiment per paper result
// (see DESIGN.md's per-experiment index). Every experiment regenerates a
// table whose *shape* — who wins, by what asymptotic factor, where the
// crossovers fall — must match the corresponding theorem; EXPERIMENTS.md
// records paper-vs-measured for each.
package expt

import (
	"fmt"
	"io"
	"sort"

	"latencyhide/internal/metrics"
)

// Scale selects experiment sizes.
type Scale int

const (
	// Quick runs in seconds; used by tests and the default CLI.
	Quick Scale = iota
	// Full runs the sizes EXPERIMENTS.md reports.
	Full
)

// ParseScale maps a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "", "quick":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return Quick, fmt.Errorf("expt: unknown scale %q (want quick or full)", s)
	}
}

// Experiment is one reproducible paper result.
type Experiment struct {
	ID    string // e.g. "E1"
	Title string
	Paper string // which theorem/figure it reproduces
	Run   func(scale Scale) ([]*metrics.Table, error)
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("expt: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID, or nil.
func Get(id string) *Experiment { return registry[id] }

// All returns every registered experiment, sorted by ID (E1, E2, ..., E10
// numerically).
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(out[i].ID, "E%d", &a)
		fmt.Sscanf(out[j].ID, "E%d", &b)
		return a < b
	})
	return out
}

// RunAll executes every experiment at the given scale and renders the
// tables to w (markdown if md is true). It keeps going past individual
// failures and returns the first error at the end.
func RunAll(w io.Writer, scale Scale, md bool) error {
	var firstErr error
	for _, e := range All() {
		fmt.Fprintf(w, "\n=== %s: %s (%s) ===\n\n", e.ID, e.Title, e.Paper)
		tables, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(w, "FAILED: %v\n", err)
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", e.ID, err)
			}
			continue
		}
		for _, t := range tables {
			if md {
				t.Markdown(w)
			} else {
				t.Fprint(w)
				fmt.Fprintln(w)
			}
		}
	}
	return firstErr
}
