// Package expt is the reproduction harness: one experiment per paper result
// (see DESIGN.md's per-experiment index). Every experiment regenerates a
// table whose *shape* — who wins, by what asymptotic factor, where the
// crossovers fall — must match the corresponding theorem; EXPERIMENTS.md
// records paper-vs-measured for each.
package expt

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"latencyhide/internal/metrics"
)

// Scale selects experiment sizes.
type Scale int

const (
	// Quick runs in seconds; used by tests and the default CLI.
	Quick Scale = iota
	// Full runs the sizes EXPERIMENTS.md reports.
	Full
)

// ParseScale maps a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "", "quick":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return Quick, fmt.Errorf("expt: unknown scale %q (want quick or full)", s)
	}
}

// Experiment is one reproducible paper result.
type Experiment struct {
	ID    string // e.g. "E1"
	Title string
	Paper string // which theorem/figure it reproduces
	Run   func(scale Scale) ([]*metrics.Table, error)
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("expt: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID, or nil.
func Get(id string) *Experiment { return registry[id] }

// All returns every registered experiment, sorted by ID (E1, E2, ..., E10
// numerically).
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(out[i].ID, "E%d", &a)
		fmt.Sscanf(out[j].ID, "E%d", &b)
		return a < b
	})
	return out
}

// RunAll executes every experiment at the given scale and renders the
// tables to w (markdown if md is true). It keeps going past individual
// failures and returns the first error at the end. Experiments run
// concurrently on up to GOMAXPROCS workers; output stays byte-identical to
// a sequential run because each experiment renders into its own buffer and
// the buffers are flushed in registry (ID) order.
func RunAll(w io.Writer, scale Scale, md bool) error {
	return RunAllWorkers(w, scale, md, 0)
}

// runOne executes one experiment, converting a panic into that experiment's
// error (with the stack) so a bug in one experiment cannot take down the
// whole harness — or, under RunAllWorkers, the goroutines running its
// concurrent siblings.
func runOne(e *Experiment, scale Scale) (tables []*metrics.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	return e.Run(scale)
}

// Timing is one experiment's wall-clock cost from a timed harness run.
type Timing struct {
	ID   string
	Wall time.Duration
}

// RunAllWorkers is RunAll with an explicit concurrency bound; workers <= 0
// means GOMAXPROCS, 1 runs strictly sequentially.
func RunAllWorkers(w io.Writer, scale Scale, md bool, workers int) error {
	_, err := RunAllTimed(w, scale, md, workers, nil)
	return err
}

// RunAllTimed is RunAllWorkers returning per-experiment wall timings (in ID
// order) and reporting progress: after each experiment finishes, progress is
// called with the completion count, the total, and the experiment's ID.
// progress may be called from multiple goroutines concurrently; nil disables
// it.
func RunAllTimed(w io.Writer, scale Scale, md bool, workers int, progress func(done, total int, id string)) ([]Timing, error) {
	exps := All()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}

	type result struct {
		buf  bytes.Buffer
		err  error // already wrapped with the experiment ID
		wall time.Duration
	}
	results := make([]result, len(exps))
	var doneCount atomic.Int64
	renderOne := func(i int) {
		e, out := exps[i], &results[i]
		start := time.Now()
		fmt.Fprintf(&out.buf, "\n=== %s: %s (%s) ===\n\n", e.ID, e.Title, e.Paper)
		tables, err := runOne(e, scale)
		if err != nil {
			fmt.Fprintf(&out.buf, "FAILED: %v\n", err)
			out.err = fmt.Errorf("%s: %w", e.ID, err)
		} else {
			for _, t := range tables {
				if md {
					t.Markdown(&out.buf)
				} else {
					t.Fprint(&out.buf)
					fmt.Fprintln(&out.buf)
				}
			}
		}
		out.wall = time.Since(start)
		if progress != nil {
			progress(int(doneCount.Add(1)), len(exps), e.ID)
		}
	}

	if workers == 1 {
		for i := range exps {
			renderOne(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					renderOne(i)
				}
			}()
		}
		for i := range exps {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	var firstErr error
	timings := make([]Timing, len(exps))
	for i := range results {
		timings[i] = Timing{ID: exps[i].ID, Wall: results[i].wall}
		if _, err := w.Write(results[i].buf.Bytes()); err != nil {
			return timings, err
		}
		if results[i].err != nil && firstErr == nil {
			firstErr = results[i].err
		}
	}
	return timings, firstErr
}
