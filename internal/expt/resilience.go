package expt

import (
	"errors"
	"fmt"

	"latencyhide/internal/assign"
	"latencyhide/internal/fault"
	"latencyhide/internal/guest"
	"latencyhide/internal/metrics"
	"latencyhide/internal/network"
	"latencyhide/internal/obs"
	"latencyhide/internal/sim"
)

// E13 measures what the paper's redundancy buys beyond latency hiding:
// fault tolerance for free. OVERLAP-style replication (every column held by
// c consecutive processors) keeps the computation alive under crash-stop
// failures that make any single-copy placement uncomputable, and degrades
// gracefully — completion time grows with the injected outage fraction
// instead of falling off a cliff.

func init() {
	register(&Experiment{
		ID:    "E13",
		Title: "Resilience: redundant replicas survive faults single copies cannot",
		Paper: "Section 3: OVERLAP's redundant computation, re-read as fault tolerance",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			hostN := 16
			steps := 16
			copies := 4
			if scale == Full {
				hostN = 32
				steps = 24
			}
			m := 2 * hostN
			delays := delaysOf(network.Line(hostN, network.UniformDelay{Lo: 1, Hi: 8}, 13))
			rep, err := assign.ReplicatedBlocks(hostN, m, copies)
			if err != nil {
				return nil, err
			}
			single, err := assign.SingleCopyBlocks(hostN, m)
			if err != nil {
				return nil, err
			}
			baseCfg := func(a *assign.Assignment) sim.Config {
				return sim.Config{
					Delays: delays,
					Guest:  guest.Spec{Graph: guest.NewLinearArray(m), Steps: steps, Seed: 13},
					Assign: a,
				}
			}

			// Part 1: crash sweep. Crash each host in turn mid-run; count
			// completions (with replica verification) vs uncomputable aborts.
			t1 := metrics.NewTable("E13a: single crash-stop host, swept over every position",
				"assignment", "copies", "completed", "uncomputable", "worst slowdown")
			crashStep := int64(steps / 2)
			for _, c := range []struct {
				name string
				a    *assign.Assignment
			}{
				{fmt.Sprintf("replicated blocks c=%d", copies), rep},
				{"single-copy blocks", single},
			} {
				completed, uncomputable := 0, 0
				worst := 0.0
				for h := 0; h < hostN; h++ {
					cfg := baseCfg(c.a)
					cfg.Check = true
					cfg.Faults = &fault.Plan{Seed: 1, Crashes: []fault.Crash{{Host: h, Step: crashStep}}}
					res, err := sim.Run(cfg)
					var unc *sim.UncomputableError
					switch {
					case err == nil:
						completed++
						if res.Slowdown > worst {
							worst = res.Slowdown
						}
					case errors.As(err, &unc):
						uncomputable++
					default:
						return nil, fmt.Errorf("crash host %d on %s: %w", h, c.name, err)
					}
				}
				ws := "-"
				if completed > 0 {
					ws = fmt.Sprintf("%.2f", worst)
				}
				t1.AddRow(c.name, c.a.MaxCopies(), fmt.Sprintf("%d/%d", completed, hostN),
					fmt.Sprintf("%d/%d", uncomputable, hostN), ws)
			}
			t1.AddNote("every crash orphans the single-copy host's columns (no surviving replica -> UncomputableError); the replicated run always completes and the survivors' databases still verify against the reference")

			// Part 2: degradation curve. Random link outages at growing
			// fractions; slowdown must grow monotonically, and the obs stream
			// attributes the added stall to the fault cause.
			t2 := metrics.NewTable("E13b: slowdown vs link-outage fraction (windowed outages on every link)",
				"outage frac", "slowdown c=4", "slowdown single", "fault-stall% c=4", "dep-stall% c=4")
			for _, frac := range []float64{0, 0.05, 0.1, 0.2, 0.4} {
				var plan *fault.Plan
				if frac > 0 {
					plan = &fault.Plan{
						Seed:    42,
						Outages: []fault.Outage{{Link: -1, Window: 8, Frac: frac}},
					}
				}
				rec := obs.NewBuffer()
				cfg := baseCfg(rep)
				cfg.Faults = plan
				cfg.Recorder = rec
				rres, err := sim.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("outage %g replicated: %w", frac, err)
				}
				scfg := baseCfg(single)
				scfg.Faults = plan
				sres, err := sim.Run(scfg)
				if err != nil {
					return nil, fmt.Errorf("outage %g single: %w", frac, err)
				}
				sb := obs.Analyze(rec.Events(), cfg.ObsInfo(rres)).Stalls()
				t2.AddRow(fmt.Sprintf("%.2f", frac), rres.Slowdown, sres.Slowdown,
					fmt.Sprintf("%.1f", 100*stallPct(sb.Fault, sb.ProcSteps)),
					fmt.Sprintf("%.1f", 100*stallPct(sb.Dependency, sb.ProcSteps)))
			}
			t2.AddNote("outage windows are drawn by a monotone-nested hash of (seed, link, window): raising the fraction only adds down-windows, so the curves are monotone by construction")
			t2.AddNote("the single-copy slowdown grows with the outage fraction while the replicated run absorbs it: its redundancy slack (copies computing locally) covers the blocked links, and the obs stream shows the fault-stall share rising where the slack is spent")

			// Part 3: the same sweep generalized to a moving outage. A drift
			// stripe takes every Period-th link down and advances one link
			// per window, so over a full rotation the damage visits every
			// replica neighborhood instead of striking a fixed random set.
			t3 := metrics.NewTable("E13c: slowdown vs moving-outage fraction (drift stripe, period 3, stride 1)",
				"drift frac", "slowdown c=4", "slowdown single", "fault-stall% c=4", "dep-stall% c=4")
			for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
				var plan *fault.Plan
				if frac > 0 {
					plan = &fault.Plan{
						Seed:   42,
						Drifts: []fault.Drift{{Link: -1, Window: 8, Frac: frac, Period: 3, Stride: 1}},
					}
				}
				rec := obs.NewBuffer()
				cfg := baseCfg(rep)
				cfg.Faults = plan
				cfg.Recorder = rec
				rres, err := sim.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("drift %g replicated: %w", frac, err)
				}
				scfg := baseCfg(single)
				scfg.Faults = plan
				sres, err := sim.Run(scfg)
				if err != nil {
					return nil, fmt.Errorf("drift %g single: %w", frac, err)
				}
				sb := obs.Analyze(rec.Events(), cfg.ObsInfo(rres)).Stalls()
				t3.AddRow(fmt.Sprintf("%.2f", frac), rres.Slowdown, sres.Slowdown,
					fmt.Sprintf("%.1f", 100*stallPct(sb.Fault, sb.ProcSteps)),
					fmt.Sprintf("%.1f", 100*stallPct(sb.Dependency, sb.ProcSteps)))
			}
			t3.AddNote("the stripe keeps moving (stride 1, period 3), so unlike E13b's fixed random windows no single replica neighborhood escapes it; the replicated placement still absorbs every fraction while the single copy degrades")
			return []*metrics.Table{t1, t2, t3}, nil
		},
	})
}
