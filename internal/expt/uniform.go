package expt

import (
	"fmt"

	"latencyhide/internal/mesharray"
	"latencyhide/internal/metrics"
	"latencyhide/internal/network"
	"latencyhide/internal/obs"
	"latencyhide/internal/overlap"
	"latencyhide/internal/uniform"
)

func init() {
	register(&Experiment{
		ID:    "E3",
		Title: "Uniform-delay hosts: slowdown O(sqrt(d)), 5d steps per sqrt(d) guest steps",
		Paper: "Theorem 4 and Figure 4",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			hostN := 16
			batches := 3
			ds := []int{4, 16, 64, 256}
			if scale == Full {
				hostN = 32
				ds = append(ds, 1024, 4096)
			}
			t := metrics.NewTable("E3: guest n*sqrt(d) on uniform-delay host, per-batch accounting",
				"d", "sqrt(d)", "steps/batch", "5d", "phase-slowdown", "greedy-slowdown", "5sqrt(d)")
			var xs, phase, greedy []float64
			for _, d := range ds {
				r, err := uniform.Run(hostN, d, batches, 0, 51)
				if err != nil {
					return nil, err
				}
				g, err := uniform.Greedy(hostN, d, batches, 0, 51, 0)
				if err != nil {
					return nil, err
				}
				t.AddRow(d, r.S, r.StepsPerBatch, 5*d, r.Slowdown, g.Slowdown, 5*float64(r.S))
				xs = append(xs, float64(d))
				phase = append(phase, r.Slowdown)
				greedy = append(greedy, g.Slowdown)
			}
			t.AddNote("paper: slowdown Theta(sqrt(d)) — log-log slope vs d: phase %.2f, greedy %.2f (want ~0.5); every batch fits in 5d steps",
				metrics.LogLogSlope(xs, phase), metrics.LogLogSlope(xs, greedy))
			return []*metrics.Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "E5",
		Title: "General bounded-degree hosts via the dilation-3 line embedding",
		Paper: "Theorem 6 and Fact 3",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			steps := 32
			type host struct {
				name string
				g    *network.Network
			}
			src := network.ExpDelay{Mean: 3}
			hosts := []host{
				{"mesh 16x16", network.Mesh2D(16, 16, src, 1)},
				{"torus 16x16", network.Torus2D(16, 16, src, 2)},
				{"hypercube 2^8", network.Hypercube(8, src, 3)},
				{"btree h=7", network.CompleteBinaryTree(7, src, 4)},
				{"random NOW deg<=4", network.RandomNOW(256, 4, src, 5)},
				{"CCC dim=6", network.CCC(6, src, 9)},
			}
			if scale == Full {
				hosts = append(hosts,
					host{"mesh 32x32", network.Mesh2D(32, 32, src, 6)},
					host{"hypercube 2^10", network.Hypercube(10, src, 7)},
					host{"random NOW deg<=6", network.RandomNOW(1024, 6, src, 8)},
				)
			}
			t := metrics.NewTable("E5: ring guest on assorted NOW topologies",
				"host", "deg", "d_ave(host)", "dilation", "d_ave(line)", "n'", "slowdown", "pred d_ave*log3n")
			for _, h := range hosts {
				out, err := overlap.Simulate(h.g, overlap.Options{
					Variant: overlap.LoadOne, Steps: steps, Seed: 61, Check: scale == Quick,
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(h.name, h.g.Stats().MaxDegree, h.g.AvgDelay(), out.Dilation,
					out.Dave, out.GuestCols, out.Sim.Slowdown, out.PredictedSlowdown)
			}
			t.AddNote("paper: dilation always <= 3 and line d_ave <= O(degree) * host d_ave; slowdown bound carries over unchanged")
			return []*metrics.Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "E11",
		Title: "Bandwidth assumption ablation",
		Paper: "Section 2 / footnote 1: host bandwidth log n vs 1",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			// Two faces of the bandwidth assumption. (a) Burst phases:
			// Theorem 4's exchange ships sqrt(d) pebbles at once, paying
			// d + ceil(sqrt(d)/B) - 1 — the log n bandwidth removes the
			// sqrt(d) tail. (b) Steady state: a work-preserving greedy
			// simulation computes at least one pebble per transmitted
			// pebble per processor, so links never saturate and measured
			// slowdowns are bandwidth-insensitive — which is precisely
			// why the paper can buy the assumption back for a log n
			// slowdown factor in the worst case rather than losing more.
			hostN := 16
			ds := []int{64, 256, 1024}
			if scale == Full {
				ds = append(ds, 4096, 16384)
			}
			logn := network.Log2Ceil(hostN * network.ISqrt(ds[len(ds)-1]))
			t1 := metrics.NewTable("E11a: Theorem 4 exchange-phase cost, B = log n vs B = 1",
				"d", "sqrt(d)", "exchange B=logn", "exchange B=1", "batch B=logn", "batch B=1")
			for _, d := range ds {
				hi, err := uniform.Run(hostN, d, 1, logn, 71)
				if err != nil {
					return nil, err
				}
				lo, err := uniform.Run(hostN, d, 1, 1, 71)
				if err != nil {
					return nil, err
				}
				t1.AddRow(d, hi.S, hi.ExchangeSteps, lo.ExchangeSteps, hi.StepsPerBatch, lo.StepsPerBatch)
			}
			t1.AddNote("burst cost d + ceil(sqrt(d)/B) - 1: unit bandwidth pays the extra sqrt(d) tail")

			t2 := metrics.NewTable("E11b: steady-state greedy mesh run under different bandwidths",
				"bandwidth", "slowdown", "vs log n bandwidth", "bw-stall%", "dep-stall%", "peakQ")
			rows, steps := 24, 10
			var ref float64
			for _, bw := range []int{logn, 4, 2, 1} {
				rec := obs.NewBuffer()
				r, err := mesharray.OnUniformLine(8, 32, rows, mesharray.Options{
					Rows: rows, Steps: steps, Seed: 71, Bandwidth: bw, Recorder: rec,
				})
				if err != nil {
					return nil, err
				}
				if ref == 0 {
					ref = r.Sim.Slowdown
				}
				sb := obs.Analyze(rec.Events(), *r.ObsInfo).Stalls()
				t2.AddRow(bw, r.Sim.Slowdown, r.Sim.Slowdown/ref,
					fmt.Sprintf("%.2f", 100*stallPct(sb.Bandwidth, sb.ProcSteps)),
					fmt.Sprintf("%.2f", 100*stallPct(sb.Dependency, sb.ProcSteps)),
					r.Sim.MaxQueueDepth)
			}
			t2.AddNote("work-preserving simulations are compute-bound in steady state; bandwidth binds only in bursts (E11a)")
			t2.AddNote("bw-stall / dep-stall columns attribute stalled processor-steps via the obs event stream")

			// E11c: overlapped compute (several pebbles per workstation per
			// step) recreates E11a's burst regime inside a full greedy run —
			// whole mesh-column fronts hit the links at once, so narrowing B
			// turns dependency waits into measured bandwidth stalls.
			t3 := metrics.NewTable("E11c: overlapped compute (cps=8) forces exchange bursts through the links",
				"bandwidth", "slowdown", "vs log n bandwidth", "bw-stall%", "dep-stall%", "peakQ")
			ref = 0
			for _, bw := range []int{logn, 4, 2, 1} {
				rec := obs.NewBuffer()
				r, err := mesharray.OnUniformLine(8, 32, rows, mesharray.Options{
					Rows: rows, Steps: steps, Seed: 71, Bandwidth: bw,
					ComputePerStep: 8, Recorder: rec,
				})
				if err != nil {
					return nil, err
				}
				if ref == 0 {
					ref = r.Sim.Slowdown
				}
				sb := obs.Analyze(rec.Events(), *r.ObsInfo).Stalls()
				t3.AddRow(bw, r.Sim.Slowdown, r.Sim.Slowdown/ref,
					fmt.Sprintf("%.2f", 100*stallPct(sb.Bandwidth, sb.ProcSteps)),
					fmt.Sprintf("%.2f", 100*stallPct(sb.Dependency, sb.ProcSteps)),
					r.Sim.MaxQueueDepth)
			}
			t3.AddNote("the bandwidth-stall share grows as B shrinks: with compute overlapped, the ceil(P/B) term binds")
			return []*metrics.Table{t1, t2, t3}, nil
		},
	})
}

// stallPct is x/total guarded against empty runs.
func stallPct(x, total int64) float64 {
	if total <= 0 {
		return 0
	}
	return float64(x) / float64(total)
}
