package expt

import (
	"latencyhide/internal/dataflow"
	"latencyhide/internal/metrics"
	"latencyhide/internal/uniform"
)

func init() {
	register(&Experiment{
		ID:    "E16",
		Title: "Database model vs dataflow model: redundancy is the price of state",
		Paper: "Sections 1 and 6 vs [2]: \"it is easier to overcome latencies in dataflow types of computations than in computations that require access to large local databases\"",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			hostN := 8
			batches := 3
			ds := []int{16, 64, 256}
			if scale == Full {
				hostN = 16
				ds = append(ds, 1024, 4096)
			}
			t := metrics.NewTable("E16: Theta(sqrt d) both ways on uniform-delay hosts — but at what replication?",
				"d", "sqrt(d)", "dataflow slowdown", "dataflow replication", "database slowdown", "database replication")
			var xs, df, db []float64
			for _, d := range ds {
				fr, err := dataflow.Run(hostN, d, batches, 0, 7)
				if err != nil {
					return nil, err
				}
				dr, err := uniform.Run(hostN, d, batches, 0, 7)
				if err != nil {
					return nil, err
				}
				dbRep := float64(dr.PebblesComputed) / float64(int64(dr.GuestCols)*int64(dr.GuestSteps))
				t.AddRow(d, fr.S, fr.Slowdown, fr.Replication, dr.Slowdown, dbRep)
				xs = append(xs, float64(d))
				df = append(df, fr.Slowdown)
				db = append(db, dr.Slowdown)
			}
			t.AddNote("both models pay Theta(sqrt d) (slopes %.2f and %.2f), but the dataflow diamond schedule migrates computation "+
				"(replication exactly 1) while the database model must replicate every boundary database ~3x — "+
				"redundant computation is the price of stateful processors, and Theorems 9-10 prove it unavoidable",
				metrics.LogLogSlope(xs, df), metrics.LogLogSlope(xs, db))
			return []*metrics.Table{t}, nil
		},
	})
}
