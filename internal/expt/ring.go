package expt

import (
	"fmt"
	"math"
	"runtime"

	"latencyhide/internal/baseline"
	"latencyhide/internal/metrics"
	"latencyhide/internal/network"
	"latencyhide/internal/obs"
	"latencyhide/internal/overlap"
)

// delaysOf extracts per-link delays of a host that is a line (edge i joins
// i and i+1 by construction of network.Line*).
func delaysOf(g *network.Network) []int {
	out := make([]int, g.NumLinks())
	for i, e := range g.Edges() {
		out[i] = e.Delay
	}
	return out
}

// defaultWorkers picks the parallel-engine worker count for experiment runs:
// one per CPU, clamped to [2, 8]. Results are worker-invariant (bit-identity
// is enforced by internal/verify), so this only affects wall-clock time.
func defaultWorkers() int {
	w := runtime.NumCPU()
	if w < 2 {
		w = 2
	}
	if w > 8 {
		w = 8
	}
	return w
}

// nowDelay is the delay distribution used by the ring experiments: constant
// average, heavy maximum — a few long-haul links in a mostly-local NOW, the
// regime the paper targets ("the slowdown is particularly impressive when
// d_max >> sqrt(d_ave) log^3 n").
func nowDelay(n int) network.DelaySource {
	far := n / 4
	if far < 4 {
		far = 4
	}
	return network.BimodalDelay{Near: 1, Far: far, P: 1.0 / float64(far)}
}

func e1Sizes(scale Scale) []int {
	if scale == Full {
		return []int{256, 512, 1024, 2048, 4096}
	}
	return []int{128, 256, 512}
}

func init() {
	register(&Experiment{
		ID:    "E1",
		Title: "OVERLAP on hosts with constant d_ave and growing d_max",
		Paper: "Theorem 2 (load-one OVERLAP, slowdown O(d_ave log^3 n)) vs prior approaches",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			t := metrics.NewTable("E1: slowdown vs n (guest ring steps simulated, d_ave ~ const)",
				"n", "d_ave", "d_max", "n'", "load-one", "2lvl(s=sqrt(dmax))", "bound d_ave*log3n", "single-copy", "slow-clock")
			steps := 48
			var xs, lo, tl, base []float64
			for _, n := range e1Sizes(scale) {
				g := network.Line(n, nowDelay(n), int64(n))
				delays := delaysOf(g)
				out, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.LoadOne, Steps: steps, Seed: 11, Check: scale == Quick,
				})
				if err != nil {
					return nil, err
				}
				// Margins sized to hide the worst link (the Theorem 4
				// mechanism): block side s = sqrt(d_max) gives slowdown
				// ~5*sqrt(d_max) regardless of how slow the rare links are.
				two, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.TwoLevel, Beta: 2, SqrtD: network.ISqrt(out.Dmax),
					Steps: steps, Seed: 11, Workers: defaultWorkers(),
				})
				if err != nil {
					return nil, err
				}
				sc, err := baseline.SingleCopy(delays, out.GuestCols, steps, 11, false)
				if err != nil {
					return nil, err
				}
				t.AddRow(n, out.Dave, out.Dmax, out.GuestCols,
					out.Sim.Slowdown, two.Sim.Slowdown, out.PredictedSlowdown,
					sc.Sim.Slowdown, baseline.SlowClockSlowdown(delays))
				xs = append(xs, float64(out.Dmax))
				lo = append(lo, out.Sim.Slowdown)
				tl = append(tl, two.Sim.Slowdown)
				base = append(base, sc.Sim.Slowdown)
			}
			t.AddNote("log-log slope vs d_max: single-copy %.2f (= Theta(d_max), the prior approaches); "+
				"load-one %.2f (within its d_ave log^3 n bound, but the bound's 2c^2 log^3 n constant only beats d_max for n >> 10^6); "+
				"two-level with sqrt(d_max) margins %.2f (~0.5: the Theorem 4/5 redundancy hides the slow links)",
				metrics.LogLogSlope(xs, base), metrics.LogLogSlope(xs, lo), metrics.LogLogSlope(xs, tl))
			return []*metrics.Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "E2",
		Title: "Work-efficient OVERLAP: load and efficiency vs block size",
		Paper: "Theorem 3 (load O(d_ave log^3 n), work-preserving)",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			n := 512
			steps := 32
			betas := []int{1, 2, 4, 8}
			if scale == Full {
				n = 1024
				betas = []int{1, 2, 4, 8, 16, 32}
			}
			g := network.Line(n, nowDelay(n), 5)
			delays := delaysOf(g)
			t := metrics.NewTable("E2: work-efficient OVERLAP on one host, growing beta",
				"beta", "guest", "load", "slowdown", "efficiency", "redundancy")
			for _, b := range betas {
				out, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.WorkEfficient, Beta: b, Steps: steps, Seed: 21,
					Check: scale == Quick && b <= 4,
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(b, out.GuestCols, out.Load, out.Sim.Slowdown, out.Efficiency(), out.Redundancy)
			}
			if scale == Full {
				// The paper's own parameterization (beta = d_ave log^3 n,
				// clamped to 512): efficiency reaches O(1) — the
				// simulation is genuinely work-preserving.
				out, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.WorkEfficient, Beta: 0, Steps: 8, Seed: 21, Workers: defaultWorkers(),
				})
				if err != nil {
					return nil, err
				}
				t.AddRow("paper-beta", out.GuestCols, out.Load, out.Sim.Slowdown, out.Efficiency(), out.Redundancy)
			}
			t.AddNote("paper: slowdown stays O(d_ave log^3 n) while efficiency (host work / guest work) approaches O(1) as beta grows")
			return []*metrics.Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "E4",
		Title: "Improved slowdown via the two-level composition",
		Paper: "Theorem 5 (slowdown O(sqrt(d_ave) log^3 n))",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			n := 256
			steps := 32
			if scale == Full {
				n = 1024
				steps = 48
			}
			means := []float64{2, 4, 8, 16}
			reps := []int64{1}
			if scale == Full {
				means = append(means, 32, 64)
				reps = []int64{1, 2, 3} // replicate over host seeds
			}
			t := metrics.NewTable("E4: slowdown vs d_ave, load-one OVERLAP vs two-level",
				"d_ave", "load1-slowdown", "2level-slowdown", "2level-load", "sqrt(dave)log3n")
			var xs, y1, y2 []float64
			for _, m := range means {
				var dave, s1, s2 float64
				var load int
				var pred float64
				for _, rep := range reps {
					g := network.Line(n, network.ExpDelay{Mean: m}, rep*int64(100*m))
					delays := delaysOf(g)
					l1, err := overlap.SimulateLine(delays, overlap.Options{
						Variant: overlap.LoadOne, Steps: steps, Seed: 31,
					})
					if err != nil {
						return nil, err
					}
					l2, err := overlap.SimulateLine(delays, overlap.Options{
						Variant: overlap.TwoLevel, Beta: 2, Steps: steps, Seed: 31,
						Check: scale == Quick && m <= 4,
					})
					if err != nil {
						return nil, err
					}
					dave += l1.Dave
					s1 += l1.Sim.Slowdown
					s2 += l2.Sim.Slowdown
					load = l2.Load
					pred = l2.PredictedSlowdown
				}
				k := float64(len(reps))
				t.AddRow(dave/k, s1/k, s2/k, load, pred)
				xs = append(xs, dave/k)
				y1 = append(y1, s1/k)
				y2 = append(y2, s2/k)
			}
			t.AddNote("paper: load-one grows ~d_ave (slope %.2f), two-level ~sqrt(d_ave) (slope %.2f); full scale averages %d host seeds per point",
				metrics.LogLogSlope(xs, y1), metrics.LogLogSlope(xs, y2), len(reps))
			return []*metrics.Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "E12",
		Title: "Redundant computation is necessary",
		Paper: "Sections 1 and 6: stripping OVERLAP's redundancy reintroduces the d_max penalty",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			sizes := []int{128, 256, 512}
			if scale == Full {
				sizes = []int{256, 512, 1024, 2048}
			}
			steps := 48
			t := metrics.NewTable("E12: OVERLAP with vs without redundant replicas (same tree, same host)",
				"n", "d_max", "redundant", "stripped", "stripped/redundant", "stall% red", "stall% strip")
			stallShare := func(o *overlap.Outcome, rec *obs.Buffer) string {
				sb := obs.Analyze(rec.Events(), *o.ObsInfo).Stalls()
				return fmt.Sprintf("%.1f", 100*stallPct(sb.Stalled(), sb.ProcSteps))
			}
			for _, n := range sizes {
				g := network.Line(n, nowDelay(n), int64(3*n))
				delays := delaysOf(g)
				fullRec := obs.NewBuffer()
				full, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.TwoLevel, Beta: 2, Steps: steps, Seed: 41,
					Recorder: fullRec,
				})
				if err != nil {
					return nil, err
				}
				stripRec := obs.NewBuffer()
				strip, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.TwoLevel, Beta: 2, Steps: steps, Seed: 41,
					StripRedundancy: true, Recorder: stripRec,
				})
				if err != nil {
					return nil, err
				}
				ratio := math.NaN()
				if full.Sim.Slowdown > 0 {
					ratio = strip.Sim.Slowdown / full.Sim.Slowdown
				}
				t.AddRow(n, full.Dmax, full.Sim.Slowdown, strip.Sim.Slowdown, ratio,
					stallShare(full, fullRec), stallShare(strip, stripRec))
			}
			t.AddNote("paper: without redundancy the slowdown reverts toward Theta(d_max); the ratio grows with d_max")
			t.AddNote("stall%% is the stalled share of all processor-steps from the obs event stream: stripping replicas leaves workstations waiting on remote values")
			return []*metrics.Table{t}, nil
		},
	})
}
