package expt

import (
	"fmt"

	"latencyhide/internal/guest"
	"latencyhide/internal/layout"
	"latencyhide/internal/metrics"
	"latencyhide/internal/network"
	"latencyhide/internal/overlap"
)

// E14-E15 and E17 go beyond the paper's evaluation: E17 is the higher-dimensional
// generalization Theorem 8 explicitly mentions; E14 and E15 implement the
// open directions of Section 7 ("trees, arrays, butterflies and hypercubes
// on a NOW" and "G and H with identical network structures").

func init() {
	register(&Experiment{
		ID:    "E17",
		Title: "Higher-dimensional guest arrays",
		Paper: "Section 5: \"Theorem 8 can be generalized to higher dimensional arrays\"",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			hostN := 64
			steps := 6
			type cse struct {
				name string
				g    guest.Graph
			}
			side := 6
			if scale == Full {
				side = 8
			}
			cases := []cse{
				{"1-D", guest.NewArrayND(side * side * side)},
				{"2-D", guest.NewArrayND(side*side, side)},
				{"3-D", guest.NewArrayND(side, side, side)},
			}
			if scale == Full {
				cases = append(cases, cse{"4-D", guest.NewArrayND(8, 8, 8, 8)})
			}
			g := network.Line(hostN, network.UniformDelay{Lo: 1, Hi: 8}, 13)
			delays := delaysOf(g)
			t := metrics.NewTable("E17: d-dimensional guest arrays on one NOW line (BFS layout)",
				"guest", "nodes", "cutwidth", "max stretch", "load", "slowdown", "verified")
			for _, c := range cases {
				l := layout.BFS(c.g)
				r, err := layout.Simulate(c.g, l, delays, layout.Options{
					Steps: steps, Seed: 31, Check: c.g.NumNodes() <= 1024,
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(c.name, c.g.NumNodes(), r.Metrics.CutWidth, r.Metrics.MaxStretch,
					r.Sim.Load, r.Sim.Slowdown, r.Sim.Checked)
			}
			t.AddNote("higher dimensions raise the layout cutwidth (~N^((d-1)/d)) and with it the slowdown, matching the Theorem 8 generalization")
			return []*metrics.Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "E14",
		Title: "Trees, butterflies and hypercubes on a NOW",
		Paper: "Section 7: \"Ultimately, one is interested in simulating ... trees, arrays, butterflies and hypercubes\"",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			steps := 6
			hostN := 96
			host := network.Line(hostN, network.BimodalDelay{Near: 1, Far: 24, P: 0.04}, 17)
			delays := delaysOf(host)
			type cse struct {
				name string
				g    guest.Graph
				l    *layout.Layout
			}
			tr := guest.NewBinaryTree(6)
			hc := guest.NewHypercube(6)
			bf := guest.NewButterfly(4)
			if scale == Full {
				tr = guest.NewBinaryTree(8)
				hc = guest.NewHypercube(8)
				bf = guest.NewButterfly(6)
			}
			cases := []cse{
				{"tree/level", tr, layout.LevelOrder(tr)},
				{"tree/inorder", tr, layout.InOrder(tr)},
				{"hypercube/id", hc, layout.Identity(hc.NumNodes())},
				{"hypercube/gray", hc, layout.Gray(hc)},
				{"hypercube/anneal", hc, layout.Anneal(hc, layout.Identity(hc.NumNodes()), 5, 0)},
				{"butterfly/rank", bf, layout.RankMajor(bf)},
				{"butterfly/bisect", bf, layout.Bisection(bf, 3)},
				{"butterfly/anneal", bf, layout.Anneal(bf, layout.RankMajor(bf), 5, 0)},
			}
			t := metrics.NewTable("E14: structured guests under different 1-D layouts",
				"guest/layout", "nodes", "cutwidth", "max stretch", "slowdown", "verified")
			for _, c := range cases {
				r, err := layout.Simulate(c.g, c.l, delays, layout.Options{
					Steps: steps, Seed: 19, Check: true,
				})
				if err != nil {
					return nil, fmt.Errorf("%s: %w", c.name, err)
				}
				t.AddRow(c.name, c.g.NumNodes(), r.Metrics.CutWidth, r.Metrics.MaxStretch,
					r.Sim.Slowdown, r.Sim.Checked)
			}
			t.AddNote("the slowdown tracks the layout's MAX stretch, not its cutwidth: in-order trees halve the level-order cost, Gray code and random bisection lose by lengthening their worst edge, and annealing recovers (hypercube) or beats (butterfly) the natural orders")
			return []*metrics.Table{t}, nil
		},
	})

	register(&Experiment{
		ID:    "E15",
		Title: "Guest and host with identical structure, different delays",
		Paper: "Section 7: \"consider the case when G and H have identical network structures ... to study the effect of latencies in isolation\"",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			n := 256
			steps := 32
			if scale == Full {
				n = 1024
				steps = 48
			}
			t := metrics.NewTable("E15: guest line of size n' on host lines of the same shape",
				"host delays", "d_ave", "d_max", "load-one", "two-level(s=sqrt dmax)")
			type cse struct {
				name string
				src  network.DelaySource
				seed int64
			}
			cases := []cse{
				{"unit", network.ConstDelay(1), 1},
				{"uniform[1,8]", network.UniformDelay{Lo: 1, Hi: 8}, 2},
				{"bimodal far=n/8", network.BimodalDelay{Near: 1, Far: n / 8, P: 8.0 / float64(n)}, 3},
				{"exp mean=8", network.ExpDelay{Mean: 8}, 4},
			}
			for _, c := range cases {
				delays := delaysOf(network.Line(n, c.src, c.seed))
				dmax := 0
				for _, d := range delays {
					if d > dmax {
						dmax = d
					}
				}
				l1, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.LoadOne, Steps: steps, Seed: 23,
				})
				if err != nil {
					return nil, err
				}
				l2, err := overlap.SimulateLine(delays, overlap.Options{
					Variant: overlap.TwoLevel, Beta: 2, SqrtD: network.ISqrt(dmax),
					Steps: steps, Seed: 23,
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(c.name, l1.Dave, dmax, l1.Sim.Slowdown, l2.Sim.Slowdown)
			}
			t.AddNote("same structure, latency isolated: unit delays cost ~1; heterogeneous delays cost between sqrt(d_max) (with margins) and d_max (without)")
			return []*metrics.Table{t}, nil
		},
	})
}
