package expt

import (
	"fmt"

	"latencyhide/internal/adapt"
	"latencyhide/internal/assign"
	"latencyhide/internal/fault"
	"latencyhide/internal/guest"
	"latencyhide/internal/metrics"
	"latencyhide/internal/network"
	"latencyhide/internal/sim"
)

// E18 asks whether the paper's static redundancy is the right amount under
// an adversarial delay distribution. OVERLAP fixes c replicas per column up
// front; the adaptive controller starts from c=2 and activates dormant
// standbys only where the epoch's stall forensics blame a column. Under
// each adversarial regime (heavy-tailed spikes, a moving outage stripe,
// link churn) the comparison is static c=4 vs static c=2 vs adaptive c=2.

func init() {
	register(&Experiment{
		ID:    "E18",
		Title: "Static OVERLAP redundancy vs adaptive standby activation under adversarial regimes",
		Paper: "Section 3's fixed c replicas, re-examined when the delay distribution is adversarial",
		Run: func(scale Scale) ([]*metrics.Table, error) {
			hostN := 16
			steps := 24
			if scale == Full {
				hostN = 32
				steps = 32
			}
			m := 2 * hostN
			delays := delaysOf(network.Line(hostN, network.UniformDelay{Lo: 1, Hi: 8}, 13))
			static4, err := assign.ReplicatedBlocks(hostN, m, 4)
			if err != nil {
				return nil, err
			}
			static2, err := assign.ReplicatedBlocks(hostN, m, 2)
			if err != nil {
				return nil, err
			}
			pol := &adapt.Policy{Epoch: 16, Threshold: 0.25, MaxExtra: 1, Budget: 8, RequireFault: true}
			regimes := []struct {
				name string
				plan *fault.Plan
			}{
				{"none", nil},
				{"spike (Pareto a=0.8, cap=32)", &fault.Plan{Seed: 7,
					Spikes: []fault.Spike{{Link: -1, Prob: 0.5, Alpha: 0.8, Cap: 32}}}},
				{"drift (stripe 1/2, stride 1)", &fault.Plan{Seed: 7,
					Drifts: []fault.Drift{{Link: -1, Window: 8, Frac: 0.9, Period: 2, Stride: 1}}}},
				{"churn (6 up / 6 down)", &fault.Plan{Seed: 7,
					Churns: []fault.Churn{{Link: -1, Up: 6, Down: 6}}}},
			}
			run := func(a *assign.Assignment, plan *fault.Plan, pol *adapt.Policy) (*sim.Result, error) {
				res, err := sim.Run(sim.Config{
					Delays: delays,
					Guest:  guest.Spec{Graph: guest.NewLinearArray(m), Steps: steps, Seed: 13},
					Assign: a,
					Faults: plan,
					Adapt:  pol,
					Check:  true,
				})
				if err != nil {
					return nil, err
				}
				if res.AdaptActivations > 0 && pol != nil && res.AdaptActivations > pol.Budget {
					return nil, fmt.Errorf("controller exceeded its budget: %d > %d",
						res.AdaptActivations, pol.Budget)
				}
				return res, nil
			}
			t := metrics.NewTable(
				fmt.Sprintf("E18: static c=4 vs adaptive standbys from c=2 (epoch=%d, thresh=%.2f, budget=%d)",
					pol.Epoch, pol.Threshold, pol.Budget),
				"regime", "slowdown c=4", "slowdown c=2", "slowdown adaptive",
				"activations", "redundancy c=4", "redundancy adaptive")
			for _, rg := range regimes {
				r4, err := run(static4, rg.plan, nil)
				if err != nil {
					return nil, fmt.Errorf("%s static c=4: %w", rg.name, err)
				}
				r2, err := run(static2, rg.plan, nil)
				if err != nil {
					return nil, fmt.Errorf("%s static c=2: %w", rg.name, err)
				}
				ra, err := run(static2, rg.plan, pol)
				if err != nil {
					return nil, fmt.Errorf("%s adaptive: %w", rg.name, err)
				}
				t.AddRow(rg.name, r4.Slowdown, r2.Slowdown, ra.Slowdown,
					ra.AdaptActivations,
					fmt.Sprintf("%.2f", r4.Redundancy), fmt.Sprintf("%.2f", ra.Redundancy))
			}
			t.AddNote("static c=4 pays its doubled load (8 columns per host) on every regime; the adaptive run keeps c=2's load and activates at most budget standbys where the epoch forensics blame a column, staying under the oracle's replication bound (verify: adaptive-replication-bound)")
			t.AddNote("with mode=fault the controller is free when nothing is wrong (row 1: zero activations, identical to static c=2); under heavy-tailed spikes — the one regime whose delay mass exceeds the c=2 slack — the targeted standbys match or beat static c=2 at a fraction of c=4's extra redundancy")
			t.AddNote("all runs value-verified against the reference executor; activations land only on epoch boundaries, so both engines produce this table bit-identically")
			return []*metrics.Table{t}, nil
		},
	})
}
