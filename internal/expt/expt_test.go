package expt

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"latencyhide/internal/metrics"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("registry has %d experiments, want 19 (E1-E19)", len(all))
	}
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
	}
	// sorted numerically
	if all[0].ID != "E1" || all[9].ID != "E10" || all[18].ID != "E19" {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("order %v", ids)
	}
	if Get("E3") == nil || Get("nope") != nil {
		t.Fatal("Get")
	}
}

func TestParseScale(t *testing.T) {
	if s, err := ParseScale(""); err != nil || s != Quick {
		t.Fatal("default scale")
	}
	if s, err := ParseScale("full"); err != nil || s != Full {
		t.Fatal("full scale")
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

// TestRunAllQuick executes the entire reproduction harness at quick scale —
// every experiment must complete and emit at least one table.
func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf, Quick, false); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "=== "+e.ID+":") {
			t.Fatalf("%s missing from output", e.ID)
		}
	}
	if strings.Contains(out, "FAILED") {
		t.Fatalf("a table failed:\n%s", out)
	}
}

// TestRunAllParallelOutputIdentical pins the concurrency contract: the
// parallel harness must emit byte-for-byte the output of a strictly
// sequential run, at every worker count.
func TestRunAllParallelOutputIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var seq bytes.Buffer
	seqErr := RunAllWorkers(&seq, Quick, true, 1)
	for _, workers := range []int{0, 2, 4} {
		var par bytes.Buffer
		parErr := RunAllWorkers(&par, Quick, true, workers)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("workers=%d: error mismatch: seq=%v par=%v", workers, seqErr, parErr)
		}
		if !bytes.Equal(seq.Bytes(), par.Bytes()) {
			t.Fatalf("workers=%d: output differs from sequential run (%d vs %d bytes)",
				workers, seq.Len(), par.Len())
		}
	}
}

// Shape assertions on individual experiments: these encode the
// paper-vs-measured comparisons EXPERIMENTS.md reports.
func TestE3SqrtShape(t *testing.T) {
	tables, err := Get("E3").Run(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 || len(tables[0].Rows) < 3 {
		t.Fatal("E3 produced no data")
	}
	note := strings.Join(tables[0].Notes, " ")
	if !strings.Contains(note, "slope") {
		t.Fatalf("E3 note: %s", note)
	}
}

func TestE8SingleCopyPaysSqrtN(t *testing.T) {
	tables, err := Get("E8").Run(Quick)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) < 2 {
		t.Fatal("E8 empty")
	}
	// columns: n, sqrt(n), minLB, single-copy, overlap, load
	for _, r := range rows {
		var sqrtn, lb float64
		if _, err := sscan(r[1], &sqrtn); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(r[2], &lb); err != nil {
			t.Fatal(err)
		}
		if lb < sqrtn {
			t.Fatalf("certified LB %v below sqrt(n) %v", lb, sqrtn)
		}
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestE16ReplicationContrast(t *testing.T) {
	tables, err := Get("E16").Run(Quick)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) < 3 {
		t.Fatal("E16 empty")
	}
	for _, r := range rows {
		var dfRep, dbRep float64
		if _, err := sscan(r[3], &dfRep); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(r[5], &dbRep); err != nil {
			t.Fatal(err)
		}
		if dfRep != 1 {
			t.Fatalf("dataflow replication %v != 1", dfRep)
		}
		if dbRep < 2 {
			t.Fatalf("database replication %v < 2", dbRep)
		}
	}
}

func TestE12RedundancyRatioAboveOne(t *testing.T) {
	tables, err := Get("E12").Run(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tables[0].Rows {
		var ratio float64
		if _, err := sscan(r[4], &ratio); err != nil {
			t.Fatal(err)
		}
		if ratio <= 1.5 {
			t.Fatalf("stripping redundancy should hurt: ratio %v", ratio)
		}
	}
}

// E11c's observability columns must show bandwidth stalls growing as B
// shrinks: the B=1 row's bw-stall share is at least the B=log n row's, and
// strictly positive.
func TestE11BandwidthStallDirection(t *testing.T) {
	tables, err := Get("E11").Run(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 3 {
		t.Fatal("E11 missing tables")
	}
	rows := tables[2].Rows
	if len(rows) < 2 {
		t.Fatal("E11b empty")
	}
	// columns: bandwidth, slowdown, vs, bw-stall%, dep-stall%, peakQ
	var first, last float64
	if _, err := sscan(rows[0][3], &first); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(rows[len(rows)-1][3], &last); err != nil {
		t.Fatal(err)
	}
	if last <= 0 {
		t.Fatalf("B=1 row has no bandwidth stalls: %v", rows)
	}
	if last < first {
		t.Fatalf("bw-stall share fell as B shrank: B=logn %v vs B=1 %v", first, last)
	}
}

func TestE6MeasuredAboveCertified(t *testing.T) {
	tables, err := Get("E6").Run(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tables[0].Rows {
		var measured, lb float64
		if _, err := sscan(r[4], &measured); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(r[5], &lb); err != nil {
			t.Fatal(err)
		}
		if measured < lb {
			t.Fatalf("clique chain measured %v below certified %v", measured, lb)
		}
	}
}

// E13's crash sweep must show the paper's replication surviving every single
// crash while the single-copy placement is uncomputable under all of them,
// and the outage curve must be monotone.
func TestE13ResilienceShape(t *testing.T) {
	tables, err := Get("E13").Run(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("E13 produced %d tables", len(tables))
	}
	crash := tables[0].Rows
	if len(crash) != 2 {
		t.Fatalf("E13a rows: %v", crash)
	}
	// columns: assignment, copies, completed, uncomputable, worst slowdown
	if !strings.HasPrefix(crash[0][2], "16/") || !strings.HasPrefix(crash[1][3], "16/") {
		t.Fatalf("E13a shape wrong: replicated completed=%q single uncomputable=%q",
			crash[0][2], crash[1][3])
	}
	// columns: outage frac, slowdown c=4, slowdown single, fault-stall%, dep-stall%
	var prevRep, prevSingle, firstSingle, lastSingle float64
	for i, r := range tables[1].Rows {
		var rep, single float64
		if _, err := sscan(r[1], &rep); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(r[2], &single); err != nil {
			t.Fatal(err)
		}
		if rep < prevRep || single < prevSingle {
			t.Fatalf("E13b slowdown not monotone in outage fraction: %v", tables[1].Rows)
		}
		prevRep, prevSingle = rep, single
		if i == 0 {
			firstSingle = single
		}
		lastSingle = single
	}
	if lastSingle <= firstSingle {
		t.Fatalf("E13b single-copy slowdown should grow with outages: %v -> %v", firstSingle, lastSingle)
	}
	// E13c (moving outage): same shape — single copy degrades monotonically
	// with the drift fraction, the replicated run absorbs every fraction.
	var prevC, firstC, lastC float64
	for i, r := range tables[2].Rows {
		var single float64
		if _, err := sscan(r[2], &single); err != nil {
			t.Fatal(err)
		}
		if single < prevC {
			t.Fatalf("E13c single-copy slowdown not monotone in drift fraction: %v", tables[2].Rows)
		}
		prevC = single
		if i == 0 {
			firstC = single
		}
		lastC = single
	}
	if lastC <= firstC {
		t.Fatalf("E13c single-copy slowdown should grow with the drift fraction: %v -> %v", firstC, lastC)
	}
}

// E18's acceptance shape: the adaptive run must beat static c=4 on at least
// one adversarial regime, the controller must never exceed its budget, and
// with mode=fault the fault-free row must make zero activations.
func TestE18AdaptiveBeatsStatic(t *testing.T) {
	tables, err := Get("E18").Run(Quick)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("E18 rows: %v", rows)
	}
	// columns: regime, slowdown c=4, slowdown c=2, slowdown adaptive,
	// activations, redundancy c=4, redundancy adaptive
	wins, activated := 0, 0
	for i, r := range rows {
		var s4, sa, acts float64
		if _, err := sscan(r[1], &s4); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(r[3], &sa); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(r[4], &acts); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if acts != 0 {
				t.Fatalf("E18 fault-free row activated %v standbys under mode=fault", acts)
			}
			continue
		}
		if sa < s4 {
			wins++
		}
		if acts > 0 {
			activated++
		}
	}
	if wins == 0 {
		t.Fatalf("adaptive never beat static c=4 on an adversarial regime: %v", rows)
	}
	if activated == 0 {
		t.Fatalf("the controller never activated under any regime: %v", rows)
	}
}

// E19's acceptance shape: every theorem family with samples clears its MAPE
// ceiling with zero certified-floor violations (Run errors otherwise), and
// the quick corpus populates all four families.
func TestE19TwinValidation(t *testing.T) {
	tables, err := Get("E19").Run(Quick)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("E19 rows: %v", rows)
	}
	// columns: family, n, mape, ceiling, in_band, cert_viol, status
	for _, r := range rows {
		var n float64
		if _, err := sscan(r[1], &n); err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("family %s has no samples in the quick corpus", r[0])
		}
		if r[5] != "0" {
			t.Fatalf("family %s reports certified-floor violations: %v", r[0], r)
		}
		if r[6] != "PASS" {
			t.Fatalf("family %s did not pass: %v", r[0], r)
		}
	}
}

// A panicking experiment must be reported as that experiment's failure and
// must not take down concurrently running siblings.
func TestRunAllIsolatesPanics(t *testing.T) {
	id := "E99"
	register(&Experiment{
		ID: id, Title: "panics", Paper: "none",
		Run: func(Scale) ([]*metrics.Table, error) { panic("boom") },
	})
	defer delete(registry, id)
	var buf bytes.Buffer
	err := RunAllWorkers(&buf, Quick, false, 4)
	if err == nil || !strings.Contains(err.Error(), "E99") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic not reported as E99's error: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "FAILED: panic: boom") {
		t.Fatalf("panic missing from rendered output:\n%s", out)
	}
	// every real experiment still ran
	for _, e := range All() {
		if e.ID == id {
			continue
		}
		if !strings.Contains(out, "=== "+e.ID+":") {
			t.Fatalf("%s missing after sibling panic", e.ID)
		}
	}
}
