package tree

import (
	"fmt"
	"io"
	"strings"
)

// Render prints an ASCII picture of the processed interval tree, one line
// per depth: each remaining node's interval is drawn over its span with its
// stage-3 label, removed nodes are dotted, and the bottom line marks killed
// processors — a textual Figure 2. Width is the target character width of
// the picture (the host array is scaled to fit); 0 means 64.
func (t *Tree) Render(w io.Writer, width int) {
	if width <= 0 {
		width = 64
	}
	if width > t.N {
		width = t.N
	}
	scale := func(p int) int {
		c := p * width / t.N
		if c >= width {
			c = width - 1
		}
		return c
	}

	fmt.Fprintf(w, "host n=%d  d_ave=%.2f  c=%d  log n=%d  killed=(%d,%d)  n'=%d\n",
		t.N, t.Dave, t.C, t.LogN, t.KilledStage1, t.KilledStage2, t.GuestSize())

	// gather nodes per depth
	byDepth := map[int][]*Node{}
	maxDepth := 0
	var walk func(nd *Node)
	walk = func(nd *Node) {
		if nd == nil {
			return
		}
		byDepth[nd.Depth] = append(byDepth[nd.Depth], nd)
		if nd.Depth > maxDepth {
			maxDepth = nd.Depth
		}
		walk(nd.Left)
		walk(nd.Right)
	}
	walk(t.Root)

	shown := maxDepth
	if shown > 6 {
		shown = 6 // deeper levels are visually identical
	}
	for k := 0; k <= shown; k++ {
		line := []byte(strings.Repeat(" ", width))
		for _, nd := range byDepth[k] {
			lo, hi := scale(nd.Lo), scale(nd.Hi-1)
			fill := byte('=')
			if nd.Removed {
				fill = '.'
			}
			for c := lo; c <= hi; c++ {
				line[c] = fill
			}
			if !nd.Removed {
				label := fmt.Sprintf("%d", nd.Label3)
				if hi-lo+1 > len(label)+1 {
					copy(line[lo+1:], label)
				}
			}
			if hi > lo {
				line[lo] = '['
				line[hi] = ']'
			}
		}
		fmt.Fprintf(w, "k=%d m_k=%-6d |%s|\n", k, t.Mk(k), line)
	}
	if maxDepth > shown {
		fmt.Fprintf(w, "... %d deeper levels elided ...\n", maxDepth-shown)
	}

	// killed-processor strip
	strip := []byte(strings.Repeat(" ", width))
	for p, alive := range t.Alive {
		if !alive {
			strip[scale(p)] = 'x'
		}
	}
	fmt.Fprintf(w, "killed        |%s|\n", strip)
}
