package tree

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"latencyhide/internal/network"
)

func delaysOf(g *network.Network) []int {
	out := make([]int, g.NumLinks())
	for i, e := range g.Edges() {
		out[i] = e.Delay
	}
	return out
}

func TestBuildPanicsOnBadC(t *testing.T) {
	for _, c := range []int{2, 1, 0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("c=%d: expected panic", c)
				}
			}()
			Build([]int{1, 1, 1}, c)
		}()
	}
}

func ones(n int) []int {
	d := make([]int, n)
	for i := range d {
		d[i] = 1
	}
	return d
}

func TestUnitDelays(t *testing.T) {
	tr := Build(ones(255), 4)
	if tr.KilledStage1 != 0 || tr.KilledStage2 != 0 {
		t.Fatalf("unit delays killed (%d,%d)", tr.KilledStage1, tr.KilledStage2)
	}
	if tr.LiveCount() != 256 {
		t.Fatalf("live %d", tr.LiveCount())
	}
	if err := tr.CheckLemmas(); err != nil {
		t.Fatal(err)
	}
	// the guest size loses only overlap units
	if tr.GuestSize() < 256-2*256/4 {
		t.Fatalf("guest size %d", tr.GuestSize())
	}
}

func TestMkDkFormulas(t *testing.T) {
	tr := Build(ones(1023), 4) // n=1024, logn=10
	if tr.LogN != 10 {
		t.Fatalf("logn %d", tr.LogN)
	}
	// m_0 = n / (c log n) = 1024/40 = 25
	if got := tr.Mk(0); got != 25 {
		t.Fatalf("m_0 = %d", got)
	}
	// m_k halves (integer)
	for k := 0; k < 10; k++ {
		if tr.Mk(k+1) > tr.Mk(k) {
			t.Fatalf("m_k not nonincreasing at %d", k)
		}
	}
	// D_k = (n/2^k) d_ave c logn, halving with k
	if tr.Dk(0) != 1024*1.0*4*10 {
		t.Fatalf("D_0 = %f", tr.Dk(0))
	}
	if tr.Dk(1) != tr.Dk(0)/2 {
		t.Fatal("D_k must halve")
	}
	// k_max: deepest with positive overlap
	k := tr.KMax()
	if tr.Mk(k) < 1 || tr.Mk(k+1) >= 1 {
		t.Fatalf("KMax=%d with m=%d, m+1=%d", k, tr.Mk(k), tr.Mk(k+1))
	}
}

func TestHotspotKilling(t *testing.T) {
	// a single gigantic link must kill the processors around it
	n := 256
	d := ones(n - 1)
	d[100] = 10_000_000
	tr := Build(d, 4)
	if tr.KilledStage1 == 0 {
		t.Fatal("hotspot did not kill anyone")
	}
	if tr.Alive[100] && tr.Alive[101] {
		t.Fatal("the hotspot endpoints both survived")
	}
	if err := tr.CheckLemmas(); err != nil {
		t.Fatal(err)
	}
	// Lemma 1: at most n/c (+ slack)
	if tr.KilledStage1 > n/4+tr.LogN {
		t.Fatalf("killed %d > n/c", tr.KilledStage1)
	}
}

func TestEndpointsAndLiveIn(t *testing.T) {
	d := ones(15)
	d[0] = 1 << 30 // kill around position 0/1
	tr := Build(d, 3)
	root := tr.Root
	l, r, ok := tr.Endpoints(root)
	if !ok {
		t.Fatal("no live processors at all")
	}
	if l > r || l < 0 || r > 15 {
		t.Fatalf("endpoints %d %d", l, r)
	}
	if got := tr.LiveIn(root); len(got) != tr.LiveCount() {
		t.Fatalf("LiveIn root %d != LiveCount %d", len(got), tr.LiveCount())
	}
}

func TestLemmasPropertyRandomHosts(t *testing.T) {
	f := func(seed int64, sizeSel uint8, cSel uint8) bool {
		n := 32 << (sizeSel % 4) // 32..256
		c := 3 + int(cSel%4)     // 3..6
		r := rand.New(rand.NewSource(seed))
		delays := make([]int, n-1)
		for i := range delays {
			switch r.Intn(4) {
			case 0:
				delays[i] = 1
			case 1:
				delays[i] = 1 + r.Intn(10)
			case 2:
				delays[i] = 1 + r.Intn(1000)
			default:
				delays[i] = 1 + r.Intn(1_000_000)
			}
		}
		tr := Build(delays, c)
		return tr.CheckLemmas() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGuestSizeMatchesTreeUnitsInvariant(t *testing.T) {
	// structural: stage-3 label of every remaining node equals
	// sum(children) - m_{k+1} (two live children) or child (one)
	tr := Build(delaysOf(network.Line(200, network.UniformDelay{Lo: 1, Hi: 50}, 3)), 4)
	var walk func(nd *Node) int
	walk = func(nd *Node) int {
		if nd == nil || nd.Removed {
			return 0
		}
		if nd.Left == nil {
			return 1
		}
		live := nd.LiveChildren()
		sum := 0
		for _, ch := range live {
			sum += walk(ch)
		}
		want := sum
		if len(live) == 2 {
			want -= tr.Mk(nd.Depth + 1)
		}
		if nd.Label3 != want {
			t.Fatalf("node [%d,%d) label %d want %d", nd.Lo, nd.Hi, nd.Label3, want)
		}
		return nd.Label3
	}
	if got := walk(tr.Root); got != tr.GuestSize() {
		t.Fatalf("recomputed %d != %d", got, tr.GuestSize())
	}
}

func TestIntervalDelayConsistency(t *testing.T) {
	d := []int{3, 1, 4, 1, 5, 9, 2}
	tr := Build(d, 3)
	var walk func(nd *Node)
	walk = func(nd *Node) {
		if nd == nil {
			return
		}
		var want int64
		for i := nd.Lo; i < nd.Hi-1; i++ {
			want += int64(d[i])
		}
		if nd.Delay != want {
			t.Fatalf("interval [%d,%d) delay %d want %d", nd.Lo, nd.Hi, nd.Delay, want)
		}
		walk(nd.Left)
		walk(nd.Right)
	}
	walk(tr.Root)
}

func TestSingleProcessorHost(t *testing.T) {
	tr := Build(nil, 4)
	if tr.N != 1 || tr.LiveCount() != 1 || tr.GuestSize() != 1 {
		t.Fatalf("singleton: %+v", tr)
	}
	if err := tr.CheckLemmas(); err != nil {
		t.Fatal(err)
	}
}

func TestAllKilledHost(t *testing.T) {
	// every link huge relative to... with uniform huge delays, d_ave is
	// huge too, so nothing is killed (thresholds scale with d_ave):
	d := make([]int, 63)
	for i := range d {
		d[i] = 1 << 40
	}
	tr := Build(d, 4)
	if tr.KilledStage1 != 0 {
		t.Fatal("uniform delays should never trigger stage 1 (D_k scales with d_ave)")
	}
	if err := tr.CheckLemmas(); err != nil {
		t.Fatal(err)
	}
}

func TestRender(t *testing.T) {
	d := ones(255)
	d[100] = 5_000_000
	tr := Build(d, 4)
	var buf bytes.Buffer
	tr.Render(&buf, 64)
	out := buf.String()
	if !strings.Contains(out, "k=0") || !strings.Contains(out, "killed") {
		t.Fatalf("render:\n%s", out)
	}
	if tr.KilledStage1 > 0 && !strings.Contains(out, "x") {
		t.Fatalf("killed processors not marked:\n%s", out)
	}
	// zero width defaults; width > n clamps
	buf.Reset()
	tr.Render(&buf, 0)
	if buf.Len() == 0 {
		t.Fatal("default width render empty")
	}
	buf.Reset()
	Build(ones(7), 3).Render(&buf, 100)
	if buf.Len() == 0 {
		t.Fatal("tiny render empty")
	}
}
