// Package tree implements Section 3.1 of the paper: the binary interval tree
// T over the host linear array, the two rounds of killing "useless"
// processors, and the three labeling stages that determine how many guest
// columns each subarray can simulate (Figure 2, Lemmas 1-4).
//
// Stage 1 kills every processor contained in some depth-k interval whose
// total internal delay exceeds D_k = (n/2^k) * d_ave * c * log n. Stage 2
// labels the tree bottom-up with overlaps m_k = n / (c * 2^k * log n) and
// kills intervals whose label falls below 2*m_k (too few live processors to
// be worth the communication). Stage 3 relabels with the child overlap
// m_{k+1}; the stage-3 label of a node is the number of guest columns its
// interval can simulate, and the root label is the guest size n' >=
// (1 - 2/c) n.
//
// The implementation uses integer m_k (floored, possibly zero at deep
// levels); flooring only shrinks the subtracted overlap total, so Lemma 2's
// root-label bound still holds and is asserted by CheckLemmas.
package tree

import (
	"fmt"

	"latencyhide/internal/network"
)

// Node is one interval of the host array: positions [Lo, Hi).
type Node struct {
	Lo, Hi int
	Depth  int
	// Delay is the total delay of links strictly inside [Lo, Hi).
	Delay int64
	// Label2 and Label3 are the stage-2 and stage-3 labels; 0 for removed
	// nodes.
	Label2, Label3 int
	// Removed reports the node was removed from T (no live processors, or
	// killed in stage 2).
	Removed     bool
	Left, Right *Node
}

// Size reports the number of host positions in the interval.
func (nd *Node) Size() int { return nd.Hi - nd.Lo }

// LiveChildren returns the node's remaining (non-removed) children, left
// first.
func (nd *Node) LiveChildren() []*Node {
	var out []*Node
	if nd.Left != nil && !nd.Left.Removed {
		out = append(out, nd.Left)
	}
	if nd.Right != nil && !nd.Right.Removed {
		out = append(out, nd.Right)
	}
	return out
}

// Tree is the fully processed interval tree for one host array.
type Tree struct {
	N    int     // host array size
	C    int     // the paper's constant c (> 2)
	LogN int     // ceil(log2 n), the "log n" of all formulas
	Dave float64 // average link delay of the host array

	Root  *Node
	Alive []bool // Alive[p]: p survived both killing rounds

	// Killing statistics.
	KilledStage1 int
	KilledStage2 int

	delays []int
	prefix []int64 // prefix[i] = total delay of links 0..i-1
}

// Build constructs the interval tree for a host linear array whose link
// (i, i+1) has delay delays[i], runs both killing rounds and all three
// labeling stages. c must be > 2 (the paper's requirement); Build panics
// otherwise, since every downstream guarantee depends on it.
func Build(delays []int, c int) *Tree {
	if c <= 2 {
		panic(fmt.Sprintf("tree: constant c=%d must be > 2", c))
	}
	n := len(delays) + 1
	t := &Tree{N: n, C: c, LogN: max(1, network.Log2Ceil(n)), delays: delays}
	t.prefix = make([]int64, n)
	for i, d := range delays {
		t.prefix[i+1] = t.prefix[i] + int64(d)
	}
	t.Dave = 0
	if n > 1 {
		t.Dave = float64(t.prefix[n-1]) / float64(n-1)
	}
	t.Alive = make([]bool, n)
	for i := range t.Alive {
		t.Alive[i] = true
	}
	t.Root = t.build(0, n, 0)
	t.stage1()
	t.stage2()
	t.stage3()
	return t
}

func (t *Tree) build(lo, hi, depth int) *Node {
	nd := &Node{Lo: lo, Hi: hi, Depth: depth, Delay: t.intervalDelay(lo, hi)}
	if hi-lo > 1 {
		mid := lo + (hi-lo)/2
		nd.Left = t.build(lo, mid, depth+1)
		nd.Right = t.build(mid, hi, depth+1)
	}
	return nd
}

// intervalDelay is the total delay of links with both endpoints in [lo, hi).
func (t *Tree) intervalDelay(lo, hi int) int64 {
	if hi-lo < 2 {
		return 0
	}
	return t.prefix[hi-1] - t.prefix[lo]
}

// Dk is the stage-1 killing delay for depth k:
// D_k = (n / 2^k) * d_ave * c * log n.
func (t *Tree) Dk(k int) float64 {
	return float64(t.N) / float64(int64(1)<<uint(k)) * t.Dave * float64(t.C) * float64(t.LogN)
}

// Mk is the overlap size for depth k: floor(n / (c * 2^k * log n)), possibly
// zero at deep levels (no overlap there).
func (t *Tree) Mk(k int) int {
	den := int64(t.C) * (int64(1) << uint(k)) * int64(t.LogN)
	if den <= 0 {
		return 0
	}
	return int(int64(t.N) / den)
}

// KMax is the deepest level with a positive overlap:
// roughly log n - log log n - log c.
func (t *Tree) KMax() int {
	k := 0
	for t.Mk(k+1) >= 1 {
		k++
	}
	return k
}

// stage1 kills processors surrounded by too much delay: p dies if any
// enclosing depth-k interval has internal delay exceeding D_k.
func (t *Tree) stage1() {
	var walk func(nd *Node)
	walk = func(nd *Node) {
		if float64(nd.Delay) > t.Dk(nd.Depth) {
			for p := nd.Lo; p < nd.Hi; p++ {
				if t.Alive[p] {
					t.Alive[p] = false
					t.KilledStage1++
				}
			}
			// Children are strictly contained, so their processors
			// are already dead; no need to recurse for killing, but
			// descendants could not resurrect anyone anyway.
			return
		}
		if nd.Left != nil {
			walk(nd.Left)
			walk(nd.Right)
		}
	}
	walk(t.Root)
}

// stage2 removes empty nodes, labels the tree bottom-up with overlap m_k at
// depth k, then kills the intervals of nodes whose label is below 2*m_k.
func (t *Tree) stage2() {
	var label func(nd *Node) int
	label = func(nd *Node) int {
		if nd.Left == nil {
			if t.Alive[nd.Lo] {
				nd.Label2 = 1
			} else {
				nd.Removed = true
			}
			return nd.Label2
		}
		l := label(nd.Left)
		r := label(nd.Right)
		switch {
		case nd.Left.Removed && nd.Right.Removed:
			nd.Removed = true
		case nd.Left.Removed:
			nd.Label2 = r
		case nd.Right.Removed:
			nd.Label2 = l
		default:
			nd.Label2 = l + r - t.Mk(nd.Depth)
		}
		return nd.Label2
	}
	label(t.Root)

	// Kill intervals whose label is below the threshold. A node killed
	// here takes its whole subtree with it.
	var kill func(nd *Node)
	kill = func(nd *Node) {
		if nd.Removed {
			return
		}
		if nd.Label2 < 2*t.Mk(nd.Depth) {
			for p := nd.Lo; p < nd.Hi; p++ {
				if t.Alive[p] {
					t.Alive[p] = false
					t.KilledStage2++
				}
			}
			t.removeSubtree(nd)
			return
		}
		if nd.Left != nil {
			kill(nd.Left)
			kill(nd.Right)
		}
	}
	kill(t.Root)
}

func (t *Tree) removeSubtree(nd *Node) {
	nd.Removed = true
	nd.Label2 = 0
	nd.Label3 = 0
	if nd.Left != nil {
		t.removeSubtree(nd.Left)
		t.removeSubtree(nd.Right)
	}
}

// stage3 relabels the remaining nodes: a depth-k node with two remaining
// children gets x1 + x2 - m_{k+1} (the child-level overlap), matching the
// database assignment of Section 3.2. Stage-3 labels are >= stage-2 labels
// (Lemma 3), so no node drops below its killing threshold.
func (t *Tree) stage3() {
	var label func(nd *Node) int
	label = func(nd *Node) int {
		if nd.Removed {
			return 0
		}
		if nd.Left == nil {
			nd.Label3 = 1
			return 1
		}
		live := nd.LiveChildren()
		switch len(live) {
		case 0:
			// Cannot happen for a non-removed internal node; treat
			// defensively as removed.
			nd.Removed = true
			return 0
		case 1:
			nd.Label3 = label(live[0])
		default:
			nd.Label3 = label(live[0]) + label(live[1]) - t.Mk(nd.Depth+1)
		}
		return nd.Label3
	}
	label(t.Root)
}

// LiveCount reports the number of processors alive after both killing
// rounds.
func (t *Tree) LiveCount() int {
	c := 0
	for _, a := range t.Alive {
		if a {
			c++
		}
	}
	return c
}

// GuestSize is n': the stage-3 label of the root, i.e. the number of guest
// columns the host can simulate at load one.
func (t *Tree) GuestSize() int {
	if t.Root.Removed {
		return 0
	}
	return t.Root.Label3
}

// LiveIn returns the live processors in [nd.Lo, nd.Hi), in order.
func (t *Tree) LiveIn(nd *Node) []int {
	var out []int
	for p := nd.Lo; p < nd.Hi; p++ {
		if t.Alive[p] {
			out = append(out, p)
		}
	}
	return out
}

// Endpoints returns the leftmost and rightmost live processors of the
// interval, or ok=false if it has none.
func (t *Tree) Endpoints(nd *Node) (left, right int, ok bool) {
	left, right = -1, -1
	for p := nd.Lo; p < nd.Hi; p++ {
		if t.Alive[p] {
			if left == -1 {
				left = p
			}
			right = p
		}
	}
	return left, right, left != -1
}

// CheckLemmas verifies the structural guarantees of Lemmas 1-4 on this tree
// and returns the first violation, or nil. Property tests run it over random
// hosts.
func (t *Tree) CheckLemmas() error {
	n := t.N
	// Lemma 1: at most n/c processors are killed in stage 1.
	// (The +LogN slack absorbs integer rounding on tiny inputs.)
	if t.KilledStage1 > n/t.C+t.LogN {
		return fmt.Errorf("tree: lemma 1 violated: stage-1 killed %d > n/c = %d", t.KilledStage1, n/t.C)
	}
	// Lemma 2 + Lemma 4: root label at least (1 - 2/c) n.
	want := n - 2*n/t.C - 2*t.LogN // integer-rounding slack
	if got := t.GuestSize(); got < want {
		return fmt.Errorf("tree: lemma 2/4 violated: root label %d < (1-2/c)n ~ %d", got, want)
	}
	// Lemma 3/4 node-local properties.
	var walk func(nd *Node) error
	walk = func(nd *Node) error {
		if nd == nil || nd.Removed {
			return nil
		}
		k := nd.Depth
		if nd.Left != nil { // internal, remaining
			live := nd.LiveChildren()
			if len(live) == 0 {
				return fmt.Errorf("tree: remaining node [%d,%d) has no remaining child", nd.Lo, nd.Hi)
			}
			if nd.Label2 < 2*t.Mk(k) {
				return fmt.Errorf("tree: remaining node [%d,%d) has label2 %d < 2 m_k %d",
					nd.Lo, nd.Hi, nd.Label2, 2*t.Mk(k))
			}
			if nd.Label3 < nd.Label2 {
				return fmt.Errorf("tree: node [%d,%d) label3 %d < label2 %d",
					nd.Lo, nd.Hi, nd.Label3, nd.Label2)
			}
			switch len(live) {
			case 2:
				if nd.Label3 != live[0].Label3+live[1].Label3-t.Mk(k+1) {
					return fmt.Errorf("tree: node [%d,%d) label3 %d != %d + %d - m_{k+1} %d",
						nd.Lo, nd.Hi, nd.Label3, live[0].Label3, live[1].Label3, t.Mk(k+1))
				}
			case 1:
				if nd.Label3 != live[0].Label3 {
					return fmt.Errorf("tree: one-child node [%d,%d) label3 %d != child %d",
						nd.Lo, nd.Hi, nd.Label3, live[0].Label3)
				}
			}
			for _, ch := range live {
				if err := walk(ch); err != nil {
					return err
				}
			}
		} else if nd.Label3 != 1 {
			return fmt.Errorf("tree: live leaf %d has label %d", nd.Lo, nd.Label3)
		}
		return nil
	}
	if t.Root.Removed {
		if t.LiveCount() != 0 {
			return fmt.Errorf("tree: root removed but %d processors alive", t.LiveCount())
		}
		return nil
	}
	return walk(t.Root)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
