package verify

import (
	"strings"
	"testing"
)

// TestCheckScenarioFixed pins a handful of hand-written scenarios spanning
// the relation matrix: fault-free single copy (mirror), replicated
// (replication bound), outage (monotonicity), crash + replication.
func TestCheckScenarioFixed(t *testing.T) {
	cases := []struct {
		spec      string
		relations []string
	}{
		{
			"g=ring:12;n=4;d=const:2;bw=1;rep=1;steps=6;w=3;seed=2",
			[]string{"engine-equivalence", "seed-invariance", "mirror-invariance"},
		},
		{
			"g=mesh:3:3;n=5;d=uniform:1:4;bw=2;rep=2;steps=5;w=2;seed=8",
			[]string{"engine-equivalence", "seed-invariance", "replication-bound"},
		},
		{
			"g=line:10;n=4;d=const:1;bw=1;rep=1;steps=5;w=4;seed=4;f=2:outage=0.15x6",
			[]string{"engine-equivalence", "seed-invariance", "outage-monotone"},
		},
		{
			"g=tree:3;n=6;d=bimodal:1:9;bw=2;rep=3;steps=6;w=3;seed=11;f=5:crash=2@4;jitter=2@0.25",
			[]string{"engine-equivalence", "seed-invariance"},
		},
	}
	for _, tc := range cases {
		sc, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		rep, err := CheckScenario(sc)
		if err != nil {
			t.Fatalf("CheckScenario(%q): %v", tc.spec, err)
		}
		if len(rep.Violations) != 0 {
			t.Errorf("scenario %q violated: %v", tc.spec, rep.Violations)
		}
		if rep.Events == 0 {
			t.Errorf("scenario %q produced no events", tc.spec)
		}
		got := strings.Join(rep.Relations, ",")
		want := strings.Join(tc.relations, ",")
		if got != want {
			t.Errorf("scenario %q relations %q, want %q", tc.spec, got, want)
		}
	}
}

// TestSoakSweep is the quickcheck-style sweep: a fixed-seed batch of random
// scenarios must come back clean with every relation exercised at least once.
func TestSoakSweep(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	res, err := Soak(1, n)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		var sb strings.Builder
		res.Summary(&sb)
		t.Fatalf("soak failed:\n%s", sb.String())
	}
	if res.Events == 0 {
		t.Fatal("soak checked no events")
	}
	for _, rel := range []string{
		"engine-equivalence", "seed-invariance", "replication-bound",
		"outage-monotone", "mirror-invariance",
	} {
		if res.Relations[rel] == 0 {
			t.Errorf("soak of %d scenarios never exercised %s", n, rel)
		}
	}
	if res.Relations["engine-equivalence"] != n {
		t.Errorf("engine-equivalence ran %d times, want every scenario (%d)",
			res.Relations["engine-equivalence"], n)
	}
}

// The soak summary must be deterministic and match the documented shape.
func TestSoakSummaryFormat(t *testing.T) {
	res, err := Soak(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	res.Summary(&a)
	res.Summary(&b)
	if a.String() != b.String() {
		t.Fatal("summary is not deterministic")
	}
	out := a.String()
	if !strings.HasPrefix(out, "verify: seed=2 scenarios=5 events=") {
		t.Fatalf("summary header: %q", out)
	}
	if !strings.Contains(out, "verify: PASS (0 violations)\n") {
		t.Fatalf("summary verdict: %q", out)
	}
}

// A failed report must surface in the summary with its scenario and detail.
func TestSoakSummaryFailure(t *testing.T) {
	res := &SoakResult{Seed: 9, Scenarios: 1, Relations: map[string]int{},
		Failures: []*Report{{
			Scenario:   Generate(9, 0),
			Violations: []Violation{{Invariant: "conservation", Detail: "lost a pebble"}},
		}},
	}
	var sb strings.Builder
	res.Summary(&sb)
	out := sb.String()
	if !strings.Contains(out, "verify: FAIL (1 scenarios violated invariants)") {
		t.Fatalf("failure verdict missing: %q", out)
	}
	if !strings.Contains(out, "conservation: lost a pebble") {
		t.Fatalf("violation detail missing: %q", out)
	}
	if res.OK() {
		t.Fatal("failed soak reported OK")
	}
}
