package verify

import (
	"fmt"
	"io"
	"sort"

	"latencyhide/internal/assign"
	"latencyhide/internal/fault"
	"latencyhide/internal/obs"
	"latencyhide/internal/sim"
)

// Report is the outcome of checking one scenario: how much evidence was
// examined and every invariant or metamorphic relation that broke.
type Report struct {
	Scenario *Scenario
	// Events is the sequential engine's canonical stream length.
	Events int
	// Relations lists the metamorphic relations this scenario exercised.
	Relations []string
	// Violations is empty for a clean scenario.
	Violations []Violation
}

// run executes one engine configuration, optionally recording its stream.
func run(cfg *sim.Config, workers int, record bool) (*sim.Result, []obs.Event, error) {
	cfg.Workers = workers
	cfg.Check = true
	var rec *obs.Buffer
	if record {
		rec = obs.NewBuffer()
		cfg.Recorder = rec
	}
	res, err := sim.Run(*cfg)
	if err != nil {
		return nil, nil, err
	}
	if rec != nil {
		return res, rec.Events(), nil
	}
	return res, nil, nil
}

// aggregates is the schedule-level fingerprint two runs are compared by.
type aggregates struct {
	HostSteps                          int64
	Pebbles, Messages, Hops, Delivered int64
}

func fingerprint(r *sim.Result) aggregates {
	return aggregates{
		HostSteps: r.HostSteps, Pebbles: r.PebblesComputed,
		Messages: r.Messages, Hops: r.MessageHops, Delivered: r.DeliveredValues,
	}
}

// CheckScenario runs the scenario through the invariant oracle, both
// engines, and every metamorphic relation its parameters admit. The error
// return is infrastructural (a generated scenario failed to build or run at
// all); verification failures land in Report.Violations.
func CheckScenario(sc *Scenario) (*Report, error) {
	rep := &Report{Scenario: sc}
	fail := func(invariant, format string, args ...any) {
		rep.Violations = append(rep.Violations,
			Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}

	// Sequential reference run, oracle-checked. Check=true also verifies
	// every replica digest against the guest reference executor.
	cfg, err := sc.Build()
	if err != nil {
		return nil, fmt.Errorf("verify: scenario %q does not build: %w", sc, err)
	}
	seqRes, seqEvents, err := run(cfg, 0, true)
	if err != nil {
		return nil, fmt.Errorf("verify: scenario %q sequential run: %w", sc, err)
	}
	rep.Events = len(seqEvents)
	rep.Violations = append(rep.Violations, CheckRun(cfg, seqRes, seqEvents)...)
	if sc.Adapt != nil {
		// CheckRun held the activation stream to the replication bound
		// (placement membership, per-column extra, budget, epoch alignment).
		rep.Relations = append(rep.Relations, "adaptive-replication-bound")
	}

	// Engine equivalence: the parallel engine must produce a bit-identical
	// stream and the same aggregates.
	rep.Relations = append(rep.Relations, "engine-equivalence")
	pcfg, err := sc.Build()
	if err != nil {
		return nil, err
	}
	parRes, parEvents, err := run(pcfg, sc.Workers, true)
	if err != nil {
		return nil, fmt.Errorf("verify: scenario %q parallel run: %w", sc, err)
	}
	if a, b := fingerprint(seqRes), fingerprint(parRes); a != b {
		fail("engine-equivalence", "sequential %+v != parallel %+v", a, b)
	}
	if len(seqEvents) != len(parEvents) {
		fail("engine-equivalence", "sequential stream has %d events, parallel %d", len(seqEvents), len(parEvents))
	} else {
		for i := range seqEvents {
			if seqEvents[i] != parEvents[i] {
				fail("engine-equivalence", "streams diverge at event %d: %+v != %+v", i, seqEvents[i], parEvents[i])
				break
			}
		}
	}

	// Seed invariance: the schedule is value-independent, so changing the
	// guest seed (same delays, same assignment) moves no event counters.
	rep.Relations = append(rep.Relations, "seed-invariance")
	scfg, err := sc.Build()
	if err != nil {
		return nil, err
	}
	scfg.Guest.Seed = sc.Seed + 1
	seedRes, _, err := run(scfg, 0, false)
	if err != nil {
		return nil, fmt.Errorf("verify: scenario %q seed variant: %w", sc, err)
	}
	if a, b := fingerprint(seqRes), fingerprint(seedRes); a != b {
		fail("seed-invariance", "guest seed %d -> %d changed the schedule: %+v != %+v", sc.Seed, sc.Seed+1, a, b)
	}

	// Replication bound: replicating every column Rep times multiplies the
	// load by Rep, so host steps stay within the work-scaled bound of the
	// single-copy run. Fault-free only: a crashed Rep=1 run is uncomputable,
	// and probabilistic slowdowns/jitter compound over the longer replicated
	// run, voiding the work-scaling argument. Adaptive runs are out too:
	// activations add work the rep=1 baseline never pays.
	if sc.Rep > 1 && sc.Faults == nil && sc.Adapt == nil {
		rep.Relations = append(rep.Relations, "replication-bound")
		one := *sc
		one.Rep = 1
		ocfg, err := one.Build()
		if err != nil {
			return nil, err
		}
		oneRes, _, err := run(ocfg, 0, false)
		if err != nil {
			return nil, fmt.Errorf("verify: scenario %q rep=1 variant: %w", sc, err)
		}
		// Work scales by the realised load ratio (not Rep: consecutive
		// replica blocks overlap on middle hosts, so a small line can load a
		// host by more than Rep), and each of the T guest rounds pays at most
		// one extra max-delay hop plus its compute slot per replica.
		dmax := 0
		for _, d := range cfg.Delays {
			if d > dmax {
				dmax = d
			}
		}
		factor := int64((seqRes.Load + oneRes.Load - 1) / oneRes.Load)
		if factor < 1 {
			factor = 1
		}
		bound := factor * (oneRes.HostSteps + int64(sc.Steps*(dmax+1)))
		if seqRes.HostSteps > bound {
			fail("replication-bound", "rep=%d took %d host steps > bound %d (rep=1 took %d)",
				sc.Rep, seqRes.HostSteps, bound, oneRes.HostSteps)
		}
	}

	// Outage monotonicity. The hard invariant is monotone-by-construction:
	// every window down under the base fractions stays down under doubled
	// fractions (the hash-threshold test is a superset relation) — checked
	// exactly over the run's whole span. End to end, greedy scheduling
	// admits Graham-style anomalies (delaying one message can reorder
	// computes and finish a hair earlier), so the schedule check allows one
	// guest round of slack — and only runs without heavy-tailed spikes
	// (shifted injection steps redraw per-step spike delays whose caps
	// dwarf the slack) and without adaptation (worse faults mean more
	// blame, more activations, and legitimately faster finishes). The
	// subset check is sim-free and runs for every outage plan.
	if sc.Faults != nil && len(sc.Faults.Outages) > 0 {
		rep.Relations = append(rep.Relations, "outage-monotone")
		worse := *sc
		plan := *sc.Faults
		plan.Outages = append([]fault.Outage(nil), sc.Faults.Outages...)
		for i := range plan.Outages {
			plan.Outages[i].Frac *= 2
			if plan.Outages[i].Frac > 1 {
				plan.Outages[i].Frac = 1
			}
		}
		worse.Faults = &plan
	subset:
		for link := 0; link < sc.HostN-1; link++ {
			for step := int64(1); step <= seqRes.HostSteps; step++ {
				if sc.Faults.LinkDown(link, step) && !plan.LinkDown(link, step) {
					fail("outage-monotone", "link %d down at step %d under base fractions but up under doubled", link, step)
					break subset
				}
			}
		}
		if len(sc.Faults.Spikes) == 0 && sc.Adapt == nil {
			wcfg, err := worse.Build()
			if err != nil {
				return nil, err
			}
			worseRes, _, err := run(wcfg, 0, false)
			if err != nil {
				return nil, fmt.Errorf("verify: scenario %q outage variant: %w", sc, err)
			}
			if worseRes.HostSteps+int64(sc.Steps) < seqRes.HostSteps {
				fail("outage-monotone", "doubling outage fractions sped the run up: %d -> %d host steps",
					seqRes.HostSteps, worseRes.HostSteps)
			}
		}
	}

	// Mirror invariance: reversing the host line (delays and assignment)
	// relabels every position without changing the schedule's aggregates.
	// Restricted to Rep == 1 (multi-holder sender election breaks ties
	// leftward), fault-free runs (fault hashes are keyed by site id) and
	// non-adaptive runs (placement ties break toward the lower host).
	if sc.Rep == 1 && sc.Faults == nil && sc.Adapt == nil {
		rep.Relations = append(rep.Relations, "mirror-invariance")
		mcfg, err := sc.buildMirror()
		if err != nil {
			return nil, err
		}
		mirRes, _, err := run(mcfg, 0, false)
		if err != nil {
			return nil, fmt.Errorf("verify: scenario %q mirror variant: %w", sc, err)
		}
		if a, b := fingerprint(seqRes), fingerprint(mirRes); a != b {
			fail("mirror-invariance", "reversing the host line changed the schedule: %+v != %+v", a, b)
		}
	}

	return rep, nil
}

// buildMirror builds the scenario's configuration with the host line
// reversed: delays flipped and every position p's columns moved to
// hostN-1-p.
func (s *Scenario) buildMirror() (*sim.Config, error) {
	cfg, err := s.Build()
	if err != nil {
		return nil, err
	}
	n := len(cfg.Delays) + 1
	rev := make([]int, len(cfg.Delays))
	for i, d := range cfg.Delays {
		rev[len(rev)-1-i] = d
	}
	owned := make([][]int, n)
	for p, cols := range cfg.Assign.Owned {
		owned[n-1-p] = append([]int(nil), cols...)
	}
	a, err := assign.FromOwned(n, cfg.Assign.Columns, owned)
	if err != nil {
		return nil, err
	}
	cfg.Delays = rev
	cfg.Assign = a
	return cfg, nil
}

// SoakResult aggregates a soak sweep.
type SoakResult struct {
	Seed      uint64
	Scenarios int
	// Events is the total canonical stream length oracle-checked.
	Events int64
	// Relations counts how often each metamorphic relation was exercised.
	Relations map[string]int
	// Failures holds the reports that carried violations.
	Failures []*Report
}

// OK reports whether the whole soak came back clean.
func (r *SoakResult) OK() bool { return len(r.Failures) == 0 }

// Summary writes a deterministic one-screen digest.
func (r *SoakResult) Summary(w io.Writer) {
	fmt.Fprintf(w, "verify: seed=%d scenarios=%d events=%d\n", r.Seed, r.Scenarios, r.Events)
	names := make([]string, 0, len(r.Relations))
	for name := range r.Relations {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-20s %d checked\n", name, r.Relations[name])
	}
	if r.OK() {
		fmt.Fprintf(w, "verify: PASS (0 violations)\n")
		return
	}
	fmt.Fprintf(w, "verify: FAIL (%d scenarios violated invariants)\n", len(r.Failures))
	for _, rep := range r.Failures {
		fmt.Fprintf(w, "  scenario %s\n", rep.Scenario)
		for _, v := range rep.Violations {
			fmt.Fprintf(w, "    %s\n", v)
		}
	}
}

// Soak generates and checks n scenarios from the seed's stream. The error
// return is infrastructural; verification failures are in the result.
func Soak(seed uint64, n int) (*SoakResult, error) {
	return SoakProgress(seed, n, nil)
}

// SoakProgress is Soak with a progress callback invoked after each scenario
// with the number checked so far (nil disables it); the CLI's -live status
// line hangs off it.
func SoakProgress(seed uint64, n int, progress func(done int)) (*SoakResult, error) {
	return SoakGen(seed, n, Generate, progress)
}

// SoakGen is SoakProgress over an arbitrary scenario generator (Generate
// for the standard stream, GenerateChaos for the regime-restricted CI
// soak).
func SoakGen(seed uint64, n int, gen func(seed uint64, i int) *Scenario, progress func(done int)) (*SoakResult, error) {
	out := &SoakResult{Seed: seed, Scenarios: n, Relations: map[string]int{}}
	for i := 0; i < n; i++ {
		rep, err := CheckScenario(gen(seed, i))
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
		out.Events += int64(rep.Events)
		for _, rel := range rep.Relations {
			out.Relations[rel]++
		}
		if len(rep.Violations) > 0 {
			out.Failures = append(out.Failures, rep)
		}
		if progress != nil {
			progress(i + 1)
		}
	}
	return out, nil
}
