package verify

import (
	"fmt"
	"strconv"
	"strings"

	"latencyhide/internal/adapt"
	"latencyhide/internal/assign"
	"latencyhide/internal/fault"
	"latencyhide/internal/guest"
	"latencyhide/internal/sim"
)

// Scenario is a compact, fully deterministic description of one randomized
// verification run: a guest shape, a host line, a delay profile, bandwidth,
// a replication factor, an optional adaptive-replication policy and an
// optional fault plan. Build materialises it into a sim.Config;
// String/Parse round-trip the spec format
//
//	g=SHAPE:DIMS;n=HOSTN;d=KIND:LO[:HI];bw=B;rep=R;steps=T;w=W;seed=S[;a=ADAPTSPEC][;f=FAULTSPEC]
//
// e.g. g=ring:24;n=8;d=uniform:1:9;bw=2;rep=2;steps=12;w=3;seed=7;f=7:outage=0.1x8.
// The a= item holds an adaptive policy in adapt.Parse's format (its ','
// separators are safe inside the ';' split). The f= item, when present, is
// last and holds a fault plan in fault.Parse's format (its ';' separators
// belong to the plan).
type Scenario struct {
	// Shape is the guest topology: "line", "ring", "mesh" or "tree".
	Shape string
	// GA/GB are the shape dimensions: node count for line/ring (GB unused),
	// rows x cols for mesh, height for tree (GB unused).
	GA, GB int
	// HostN is the host line size.
	HostN int
	// DelayKind is "const" (every link DelayLo), "uniform" (DelayLo..DelayHi)
	// or "bimodal" (DelayLo near, DelayHi far on every 8th-ish link).
	DelayKind        string
	DelayLo, DelayHi int
	// BW is the per-link bandwidth (0 = the engine's log n default).
	BW int
	// Rep is the replication factor: each column lives on Rep consecutive
	// hosts, so up to Rep-1 distinct crash-stop hosts never orphan a column.
	Rep int
	// Steps is the guest step count.
	Steps int
	// Workers is the parallel engine's chunk count for the equivalence run.
	Workers int
	// Seed seeds the guest values and the delay materialisation.
	Seed int64
	// Adapt optionally runs the epoch-based replication controller.
	Adapt *adapt.Policy
	// Faults optionally injects a deterministic fault plan.
	Faults *fault.Plan
}

// rng is a tiny deterministic generator (splitmix64) so generated scenarios
// are stable across Go versions and platforms.
type rng struct{ s uint64 }

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return mix64(r.s)
}

func (r *rng) intn(n int) int          { return int(r.next() % uint64(n)) }
func (r *rng) pct(p int) bool          { return r.intn(100) < p }
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// Generate derives the i-th scenario of a seed's stream. The sampled space
// keeps every run small (a soak iteration is milliseconds) while covering
// all four guest shapes, replication 1..3, fractional/total outages,
// jitter, slowdowns, crash-stop hosts (only ever fewer crashes than
// replicas, so no generated plan orphans a column), the adversarial
// regimes (heavy-tail spikes, moving outages, link churn) and the adaptive
// replication controller. The stream's residue classes pin coverage
// floors: i%4==1 always carries at least one adversarial regime, i%4==2
// always runs the controller — so each family is at least 1-in-4 of any
// contiguous soak regardless of how the percentage draws land.
func Generate(seed uint64, i int) *Scenario {
	r := &rng{s: mix64(seed^0x5eed5eed5eed5eed) + uint64(i)*0xa0761d6478bd642f}
	sc := &Scenario{
		HostN:   r.rangeInt(2, 12),
		Steps:   r.rangeInt(3, 12),
		Workers: r.rangeInt(2, 4),
		Seed:    int64(r.rangeInt(1, 1000)),
		BW:      r.intn(4),
	}
	if i%4 == 0 {
		// Every fourth scenario is wide: enough hosts and workers that the
		// parallel engine runs >= 4 chunks, so interior chunks (boundaries on
		// both sides) and multi-hop boundary relays are always in the soak.
		sc.Workers = r.rangeInt(4, 6)
		sc.HostN = r.rangeInt(2*sc.Workers, 16)
	}
	switch r.intn(4) {
	case 0:
		sc.Shape, sc.GA = "line", r.rangeInt(3, 32)
	case 1:
		sc.Shape, sc.GA = "ring", r.rangeInt(3, 32)
	case 2:
		sc.Shape, sc.GA, sc.GB = "mesh", r.rangeInt(2, 5), r.rangeInt(2, 5)
	default:
		sc.Shape, sc.GA = "tree", r.rangeInt(1, 3)
	}
	maxRep := sc.HostN
	if maxRep > 3 {
		maxRep = 3
	}
	sc.Rep = r.rangeInt(1, maxRep)
	switch r.intn(3) {
	case 0:
		sc.DelayKind, sc.DelayLo, sc.DelayHi = "const", r.rangeInt(1, 5), 0
	case 1:
		sc.DelayKind, sc.DelayLo, sc.DelayHi = "uniform", 1, r.rangeInt(2, 11)
	default:
		sc.DelayKind, sc.DelayLo, sc.DelayHi = "bimodal", r.rangeInt(1, 2), r.rangeInt(8, 19)
	}
	if r.pct(50) || i%4 == 1 {
		sc.Faults = r.plan(sc, i%4 == 1)
	}
	if i%4 == 2 || r.pct(15) {
		sc.Adapt = r.policy()
	}
	return sc
}

// GenerateChaos derives the i-th scenario of a seed's chaos stream: the
// same sampled space as Generate, but every scenario carries at least one
// adversarial regime (spike, drift or churn) and every other one runs the
// adaptive controller. The CI chaos-soak job uses this mode to concentrate
// its race-detector budget on the newest code paths.
func GenerateChaos(seed uint64, i int) *Scenario {
	sc := Generate(seed, i)
	r := &rng{s: mix64(seed^0xc4a05c4a05c4a05) + uint64(i)*0x8bb84b93962eacc9}
	if !sc.newRegime() {
		if sc.Faults == nil {
			sc.Faults = &fault.Plan{Seed: uint64(r.rangeInt(1, 1<<16))}
		}
		r.regime(sc.Faults, sc.HostN-1)
	}
	if i%2 == 0 && sc.Adapt == nil {
		sc.Adapt = r.policy()
	}
	return sc
}

// newRegime reports whether the scenario injects any of the adversarial
// regime kinds this PR added.
func (s *Scenario) newRegime() bool {
	return s.Faults != nil &&
		len(s.Faults.Spikes)+len(s.Faults.Drifts)+len(s.Faults.Churns) > 0
}

// policy samples an adaptive replication policy.
func (r *rng) policy() *adapt.Policy {
	return &adapt.Policy{
		Epoch:        r.rangeInt(4, 20),
		Threshold:    float64(r.rangeInt(1, 3)) / 4,
		MaxExtra:     r.rangeInt(1, 2),
		Budget:       r.rangeInt(2, 8),
		RequireFault: r.pct(30),
	}
}

// regime appends one adversarial regime (spike, drift or churn) to the
// plan.
func (r *rng) regime(p *fault.Plan, links int) {
	site := func() int {
		if r.pct(50) {
			return -1
		}
		return r.intn(links)
	}
	switch r.intn(3) {
	case 0:
		p.Spikes = append(p.Spikes, fault.Spike{
			Link: site(), Prob: float64(r.rangeInt(1, 10)) / 20,
			Alpha: []float64{0.8, 1.2, 1.5, 2}[r.intn(4)], Cap: r.rangeInt(4, 32),
		})
	case 1:
		// Frac stays below 1: a pinned stripe (stride ≡ 0 mod period) with
		// Frac=1 would hold a link down for the whole run and wedge it.
		p.Drifts = append(p.Drifts, fault.Drift{
			Link: site(), Window: r.rangeInt(3, 10), Frac: float64(r.rangeInt(2, 9)) / 10,
			Period: r.rangeInt(2, 6), Stride: r.intn(3),
		})
	default:
		p.Churns = append(p.Churns, fault.Churn{
			Link: site(), Up: r.rangeInt(4, 16), Down: r.rangeInt(1, 4),
		})
	}
}

// plan samples a fault plan for the scenario; nil when nothing fires.
// forceRegime guarantees at least one adversarial regime in the result.
func (r *rng) plan(sc *Scenario, forceRegime bool) *fault.Plan {
	p := &fault.Plan{Seed: uint64(r.rangeInt(1, 1<<16))}
	links := sc.HostN - 1
	site := func(n int) int { // -1 = everywhere, else a specific site
		if n < 1 || r.pct(50) {
			return -1
		}
		return r.intn(n)
	}
	if links > 0 && r.pct(40) {
		p.Jitters = append(p.Jitters, fault.Jitter{
			Link: site(links), Amp: r.rangeInt(1, 4), Prob: float64(r.rangeInt(1, 4)) / 4,
		})
	}
	if links > 0 && r.pct(40) {
		p.Outages = append(p.Outages, fault.Outage{
			Link: site(links), Window: r.rangeInt(4, 15), Frac: float64(r.rangeInt(1, 5)) / 20,
		})
	}
	if r.pct(30) {
		p.Slowdowns = append(p.Slowdowns, fault.Slowdown{
			Host: site(sc.HostN), Window: r.rangeInt(4, 15), Frac: float64(r.rangeInt(1, 6)) / 20, Limit: 0,
		})
	}
	for _, pctHit := range []int{30, 25, 25} {
		// Three independent chances at an adversarial regime (spike, drift,
		// churn each drawn uniformly by regime), so combined plans appear.
		if links > 0 && r.pct(pctHit) {
			r.regime(p, links)
		}
	}
	if forceRegime && links > 0 && len(p.Spikes)+len(p.Drifts)+len(p.Churns) == 0 {
		r.regime(p, links)
	}
	if sc.Rep >= 2 && r.pct(40) {
		// At most Rep-1 distinct crashed hosts: every column keeps a live
		// replica by construction, so the run stays computable.
		hosts := r.intn(sc.Rep-1) + 1
		used := map[int]bool{}
		for len(used) < hosts {
			h := r.intn(sc.HostN)
			if !used[h] {
				used[h] = true
				p.Crashes = append(p.Crashes, fault.Crash{Host: h, Step: int64(r.rangeInt(1, 50))})
			}
		}
	}
	if !p.Enabled() {
		return nil
	}
	return p
}

// Graph builds the scenario's guest topology.
func (s *Scenario) Graph() (guest.Graph, error) {
	switch s.Shape {
	case "line":
		if s.GA < 1 {
			return nil, fmt.Errorf("verify: line needs >= 1 node, got %d", s.GA)
		}
		return guest.NewLinearArray(s.GA), nil
	case "ring":
		if s.GA < 3 {
			return nil, fmt.Errorf("verify: ring needs >= 3 nodes, got %d", s.GA)
		}
		return guest.NewRing(s.GA), nil
	case "mesh":
		if s.GA < 1 || s.GB < 1 {
			return nil, fmt.Errorf("verify: mesh needs positive dims, got %dx%d", s.GA, s.GB)
		}
		return guest.NewMesh(s.GA, s.GB), nil
	case "tree":
		if s.GA < 0 || s.GA > 20 {
			return nil, fmt.Errorf("verify: tree height %d outside [0,20]", s.GA)
		}
		return guest.NewBinaryTree(s.GA), nil
	default:
		return nil, fmt.Errorf("verify: unknown guest shape %q", s.Shape)
	}
}

// Delays materialises the host line's link delays deterministically from
// the scenario (seeded by Seed, independent of the guest value stream).
func (s *Scenario) Delays() []int {
	d := make([]int, s.HostN-1)
	base := mix64(uint64(s.Seed)*0x9e3779b97f4a7c15 + 0xde1a7de1a7)
	for i := range d {
		h := mix64(base + uint64(i)*0xff51afd7ed558ccd)
		switch s.DelayKind {
		case "uniform":
			span := s.DelayHi - s.DelayLo + 1
			if span < 1 {
				span = 1
			}
			d[i] = s.DelayLo + int(h%uint64(span))
		case "bimodal":
			d[i] = s.DelayLo
			if h%8 == 0 {
				d[i] = s.DelayHi
			}
		default: // const
			d[i] = s.DelayLo
		}
		if d[i] < 1 {
			d[i] = 1
		}
	}
	return d
}

// Assignment replicates each column on Rep consecutive hosts starting at
// the column's proportional position — the Theorem 4 flavour of overlapping
// blocks, generalised to any column count.
func (s *Scenario) Assignment(columns int) (*assign.Assignment, error) {
	owned := make([][]int, s.HostN)
	for c := 0; c < columns; c++ {
		base := c * s.HostN / columns
		if base > s.HostN-s.Rep {
			// Clamp the tail blocks instead of wrapping: a replica that wraps
			// to host 0 sits a full line away from its siblings, which both
			// breaks the "consecutive hosts" contract and voids the one-extra-
			// hop slack in the replication-bound relation.
			base = s.HostN - s.Rep
		}
		for j := 0; j < s.Rep; j++ {
			owned[base+j] = append(owned[base+j], c)
		}
	}
	return assign.FromOwned(s.HostN, columns, owned)
}

// Build materialises the scenario into a runnable engine configuration
// (sequential by default; the caller sets Workers for the parallel engine).
func (s *Scenario) Build() (*sim.Config, error) {
	g, err := s.Graph()
	if err != nil {
		return nil, err
	}
	a, err := s.Assignment(g.NumNodes())
	if err != nil {
		return nil, err
	}
	cfg := &sim.Config{
		Delays:    s.Delays(),
		Guest:     guest.Spec{Graph: g, Steps: s.Steps, Seed: s.Seed},
		Assign:    a,
		Bandwidth: s.BW,
		Adapt:     s.Adapt,
		Faults:    s.Faults,
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// String renders the scenario in Parse's spec format.
func (s *Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "g=%s:%d", s.Shape, s.GA)
	if s.Shape == "mesh" {
		fmt.Fprintf(&b, ":%d", s.GB)
	}
	fmt.Fprintf(&b, ";n=%d;d=%s:%d", s.HostN, s.DelayKind, s.DelayLo)
	if s.DelayKind != "const" {
		fmt.Fprintf(&b, ":%d", s.DelayHi)
	}
	fmt.Fprintf(&b, ";bw=%d;rep=%d;steps=%d;w=%d;seed=%d", s.BW, s.Rep, s.Steps, s.Workers, s.Seed)
	if s.Adapt != nil {
		fmt.Fprintf(&b, ";a=%s", s.Adapt)
	}
	if s.Faults != nil {
		fmt.Fprintf(&b, ";f=%s", s.Faults)
	}
	return b.String()
}

// Parse reads a scenario spec (see Scenario). It validates shapes, kinds
// and ranges; the returned scenario always Builds unless the host/guest
// sizes are themselves inconsistent.
func Parse(spec string) (*Scenario, error) {
	s := &Scenario{}
	// The fault plan is the trailing f= item; its own ';' separators must
	// not split the scenario items.
	if head, plan, ok := strings.Cut(spec, "f="); ok {
		if !strings.HasSuffix(head, ";") && head != "" {
			return nil, fmt.Errorf("verify: f= must start an item in %q", spec)
		}
		p, err := fault.Parse(plan)
		if err != nil {
			return nil, fmt.Errorf("verify: %v", err)
		}
		s.Faults = p
		spec = strings.TrimSuffix(head, ";")
	}
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("verify: item %q is not key=value", item)
		}
		switch key {
		case "g":
			parts := strings.Split(val, ":")
			if len(parts) < 2 {
				return nil, fmt.Errorf("verify: g=%q is not SHAPE:DIMS", val)
			}
			s.Shape = parts[0]
			switch s.Shape {
			case "line", "ring", "mesh", "tree":
			default:
				return nil, fmt.Errorf("verify: unknown guest shape %q", s.Shape)
			}
			ga, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("verify: g=%q: bad dimension %q", val, parts[1])
			}
			s.GA = ga
			if s.Shape == "mesh" {
				if len(parts) != 3 {
					return nil, fmt.Errorf("verify: g=mesh wants mesh:ROWS:COLS, got %q", val)
				}
				gb, err := strconv.Atoi(parts[2])
				if err != nil {
					return nil, fmt.Errorf("verify: g=%q: bad dimension %q", val, parts[2])
				}
				s.GB = gb
			} else if len(parts) != 2 {
				return nil, fmt.Errorf("verify: g=%s takes one dimension, got %q", s.Shape, val)
			}
		case "d":
			parts := strings.Split(val, ":")
			if len(parts) < 2 {
				return nil, fmt.Errorf("verify: d=%q is not KIND:LO[:HI]", val)
			}
			s.DelayKind = parts[0]
			lo, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, fmt.Errorf("verify: d=%q: bad delay %q", val, parts[1])
			}
			s.DelayLo = lo
			switch s.DelayKind {
			case "const":
				if len(parts) != 2 {
					return nil, fmt.Errorf("verify: d=const takes one delay, got %q", val)
				}
			case "uniform", "bimodal":
				if len(parts) != 3 {
					return nil, fmt.Errorf("verify: d=%s wants %s:LO:HI, got %q", s.DelayKind, s.DelayKind, val)
				}
				hi, err := strconv.Atoi(parts[2])
				if err != nil || hi < lo {
					return nil, fmt.Errorf("verify: d=%q: bad upper delay %q", val, parts[2])
				}
				s.DelayHi = hi
			default:
				return nil, fmt.Errorf("verify: unknown delay kind %q", s.DelayKind)
			}
			if lo < 1 {
				return nil, fmt.Errorf("verify: d=%q: delays must be >= 1", val)
			}
		case "n", "bw", "rep", "steps", "w":
			v, err := strconv.Atoi(val)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("verify: %s=%q is not a non-negative integer", key, val)
			}
			switch key {
			case "n":
				s.HostN = v
			case "bw":
				s.BW = v
			case "rep":
				s.Rep = v
			case "steps":
				s.Steps = v
			case "w":
				s.Workers = v
			}
		case "seed":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("verify: seed=%q is not an integer", val)
			}
			s.Seed = v
		case "a":
			pol, err := adapt.Parse(val)
			if err != nil {
				return nil, fmt.Errorf("verify: %v", err)
			}
			s.Adapt = pol
		default:
			return nil, fmt.Errorf("verify: unknown item %q", item)
		}
	}
	if s.Shape == "" {
		return nil, fmt.Errorf("verify: spec %q missing g=", spec)
	}
	if s.HostN < 1 {
		return nil, fmt.Errorf("verify: spec %q needs n >= 1", spec)
	}
	if s.DelayKind == "" {
		return nil, fmt.Errorf("verify: spec %q missing d=", spec)
	}
	if s.Rep < 1 {
		return nil, fmt.Errorf("verify: spec %q needs rep >= 1", spec)
	}
	if s.Rep > s.HostN {
		return nil, fmt.Errorf("verify: rep %d exceeds hosts %d", s.Rep, s.HostN)
	}
	if s.Steps < 1 {
		return nil, fmt.Errorf("verify: spec %q needs steps >= 1", spec)
	}
	return s, nil
}
