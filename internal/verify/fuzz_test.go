package verify

import "testing"

// FuzzScenarioParse asserts Parse either rejects a spec with a one-line
// error or accepts it into a Scenario whose String form is a fixpoint.
func FuzzScenarioParse(f *testing.F) {
	f.Add("g=ring:24;n=8;d=uniform:1:9;bw=2;rep=2;steps=12;w=3;seed=7")
	f.Add("g=mesh:3:4;n=6;d=bimodal:1:16;bw=1;rep=3;steps=8;w=4;seed=-2")
	f.Add("g=line:9;n=3;d=const:2;bw=1;rep=2;steps=4;w=2;seed=3;f=1:jitter=4@0.5;crash=0@9")
	f.Add("g=tree:2;n=4;d=const:1;bw=0;rep=2;steps=5;w=2;seed=9")
	f.Fuzz(func(t *testing.T, spec string) {
		sc, err := Parse(spec)
		if err != nil {
			for _, r := range err.Error() {
				if r == '\n' {
					t.Fatalf("Parse(%q) error spans lines: %v", spec, err)
				}
			}
			return
		}
		out := sc.String()
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("Parse(%q) -> %q does not reparse: %v", spec, out, err)
		}
		if got := back.String(); got != out {
			t.Fatalf("String not a fixpoint: %q -> %q", out, got)
		}
		if _, err := sc.Build(); err != nil {
			t.Fatalf("accepted spec %q does not build: %v", out, err)
		}
	})
}

// FuzzCheckScenario drives the full metamorphic harness over the generator's
// sample space: any (seed, index) pair must yield a clean report.
func FuzzCheckScenario(f *testing.F) {
	f.Add(uint64(1), uint16(0))
	f.Add(uint64(42), uint16(7))
	f.Add(uint64(1<<63), uint16(199))
	f.Fuzz(func(t *testing.T, seed uint64, i uint16) {
		sc := Generate(seed, int(i))
		rep, err := CheckScenario(sc)
		if err != nil {
			t.Fatalf("scenario %s: %v", sc, err)
		}
		if len(rep.Violations) != 0 {
			t.Fatalf("scenario %s violated: %v", sc, rep.Violations)
		}
	})
}
