package verify

import (
	"latencyhide/internal/obs"
	"latencyhide/internal/sim"
)

// pebbleKey identifies one pebble at one position.
type pebbleKey struct {
	proc  int32
	col   int32
	gstep int32
}

// slotKey identifies one directed link at one step.
type slotKey struct {
	link int32
	dir  int8
	step int64
}

// routeKey identifies one multicast message instance: the pebbles of
// (route, gstep) travel as a single relayed message.
type routeKey struct {
	route int32
	gstep int32
}

// oracleHop is one recorded link crossing of a message.
type oracleHop struct {
	link int32
	dir  int8
	step int64
}

func hopStart(h oracleHop) int32 {
	if h.dir > 0 {
		return h.link
	}
	return h.link + 1
}

func hopArrive(h oracleHop) int32 {
	if h.dir > 0 {
		return h.link + 1
	}
	return h.link
}

// CheckRun re-derives the engine's conservation laws from a finished run:
// the canonical event stream must agree with the Result's aggregate
// counters, every compute must be legal (holder only, dependencies known,
// crash respected, per-column gsteps a contiguous prefix), every needed
// value must be delivered exactly once to exactly the processors that need
// it, no directed link may inject more than its bandwidth per step (and
// nothing during an outage), relay chains must respect link delays, and the
// stall attribution must tile procs x steps exactly. It returns the broken
// invariants (empty means the run is clean). The events must be the
// canonical stream the run's Recorder received.
func CheckRun(cfg *sim.Config, res *sim.Result, events []obs.Event) []Violation {
	var c collector
	info := cfg.ObsInfo(res)
	plan := cfg.Faults
	T := int32(cfg.Guest.Steps)
	hostN := info.HostN

	perStep := cfg.ComputePerStep
	if perStep < 1 {
		perStep = 1
	}
	var crashed []int
	crashAt := make(map[int32]int64) // crashed host -> first non-computing step
	if plan != nil {
		crashed = plan.CrashedHosts()
		for _, h := range crashed {
			if s, ok := plan.CrashStep(h); ok {
				crashAt[int32(h)] = s
			}
		}
	}

	// Adaptive replication: re-derive the deterministic standby placement
	// and collect the controller's activation decisions (KindAdapt events)
	// up front, then hold the stream to the replication bound — every
	// activation lands on a placed standby, at most MaxExtra per column,
	// at most Budget in total, each effective at the step right after an
	// epoch boundary. Dormant-or-active standbys are route destinations
	// from step 1, and an activated standby computes its column like a
	// holder; the compute and conservation checks below consult these maps.
	adaptive := cfg.Adapt.Enabled()
	standbyAt := make(map[[2]int32]bool) // (proc, col) has a provisioned standby
	activatedAt := make(map[[2]int32]int64)
	var placement [][]int
	if adaptive {
		placement = cfg.Adapt.Placement(cfg.Assign, cfg.Delays, info.Neighbors, crashed)
		for col, hosts := range placement {
			for _, p := range hosts {
				standbyAt[[2]int32{int32(p), int32(col)}] = true
			}
		}
		perCol := make(map[int32]int)
		total := 0
		for i := range events {
			e := &events[i]
			if e.Kind != obs.KindAdapt {
				continue
			}
			total++
			perCol[e.Col]++
			if (e.Step-1)%int64(cfg.Adapt.Epoch) != 0 || e.Step < 2 {
				c.addf("adaptive-replication-bound",
					"activation of (%d on proc %d) at step %d is not an epoch boundary (epoch %d)",
					e.Col, e.Proc, e.Step, cfg.Adapt.Epoch)
			}
			if !standbyAt[[2]int32{e.Proc, e.Col}] {
				c.addf("adaptive-replication-bound",
					"activation of column %d on proc %d outside the deterministic placement", e.Col, e.Proc)
				continue
			}
			if _, dup := activatedAt[[2]int32{e.Proc, e.Col}]; dup {
				c.addf("adaptive-replication-bound",
					"column %d activated twice on proc %d", e.Col, e.Proc)
			}
			activatedAt[[2]int32{e.Proc, e.Col}] = e.Step
		}
		for col, n := range perCol {
			if n > cfg.Adapt.MaxExtra {
				c.addf("adaptive-replication-bound",
					"column %d got %d extra replicas > extra=%d", col, n, cfg.Adapt.MaxExtra)
			}
		}
		if total > cfg.Adapt.Budget {
			c.addf("adaptive-replication-bound",
				"%d activations exceed budget=%d", total, cfg.Adapt.Budget)
		}
	}

	computeAt := make(map[pebbleKey]int64)
	deliverAt := make(map[pebbleKey]int64)
	deliverRoute := make(map[pebbleKey]int32)
	slots := make(map[slotKey]int)
	type procStep struct {
		proc int32
		step int64
	}
	perProcStep := make(map[procStep]int)
	paths := make(map[routeKey][]oracleHop)
	pathCol := make(map[routeKey]int32)
	var computes, injects, delivers int64
	var maxComputeStep int64

	for i := range events {
		e := &events[i]
		switch e.Kind {
		case obs.KindCompute:
			computes++
			if e.Step < 1 {
				c.addf("event-bounds", "compute (%d,%d) at proc %d has step %d < 1", e.Col, e.GStep, e.Proc, e.Step)
			}
			if e.Step > maxComputeStep {
				maxComputeStep = e.Step
			}
			if e.Proc < 0 || int(e.Proc) >= hostN {
				c.addf("event-bounds", "compute at out-of-range proc %d", e.Proc)
				continue
			}
			if e.GStep < 1 || e.GStep > T {
				c.addf("event-bounds", "compute (%d,%d) outside gsteps [1,%d]", e.Col, e.GStep, T)
				continue
			}
			if !cfg.Assign.Holds(int(e.Proc), int(e.Col)) {
				at, active := activatedAt[[2]int32{e.Proc, e.Col}]
				if !active {
					c.addf("holder-only", "proc %d computed column %d it does not hold", e.Proc, e.Col)
				} else if e.Step < at {
					c.addf("holder-only", "proc %d computed standby column %d at step %d before activation at %d",
						e.Proc, e.Col, e.Step, at)
				}
			}
			if cs, ok := crashAt[e.Proc]; ok && e.Step >= cs {
				c.addf("crash-stop", "crashed proc %d computed (%d,%d) at step %d >= crash step %d",
					e.Proc, e.Col, e.GStep, e.Step, cs)
			}
			k := pebbleKey{e.Proc, e.Col, e.GStep}
			if _, dup := computeAt[k]; dup {
				c.addf("conservation", "proc %d computed (%d,%d) twice", e.Proc, e.Col, e.GStep)
			}
			computeAt[k] = e.Step
			perProcStep[procStep{e.Proc, e.Step}]++
		case obs.KindInject:
			injects++
			// Adaptive runs drain standby-bound tail traffic past the last
			// compute step, so only non-adaptive runs bound the stream by
			// HostSteps.
			if e.Step < 1 || (!adaptive && res.HostSteps > 0 && e.Step > res.HostSteps) {
				c.addf("event-bounds", "inject on link %d at step %d outside [1,%d]", e.Link, e.Step, res.HostSteps)
			}
			if e.Link < 0 || int(e.Link) >= len(info.Delays) {
				c.addf("event-bounds", "inject on out-of-range link %d", e.Link)
				continue
			}
			slots[slotKey{e.Link, e.Dir, e.Step}]++
			rk := routeKey{e.Route, e.GStep}
			paths[rk] = append(paths[rk], oracleHop{link: e.Link, dir: e.Dir, step: e.Step})
			if col, ok := pathCol[rk]; ok && col != e.Col {
				c.addf("relay-chain", "route %d gstep %d carries columns %d and %d", e.Route, e.GStep, col, e.Col)
			}
			pathCol[rk] = e.Col
		case obs.KindDeliver:
			delivers++
			if e.Step < 1 || (!adaptive && res.HostSteps > 0 && e.Step > res.HostSteps) {
				c.addf("event-bounds", "deliver (%d,%d) to proc %d at step %d outside [1,%d]",
					e.Col, e.GStep, e.Proc, e.Step, res.HostSteps)
			}
			if e.Proc < 0 || int(e.Proc) >= hostN {
				c.addf("event-bounds", "deliver to out-of-range proc %d", e.Proc)
				continue
			}
			k := pebbleKey{e.Proc, e.Col, e.GStep}
			if _, dup := deliverAt[k]; dup {
				c.addf("conservation", "(%d,%d) delivered to proc %d twice", e.Col, e.GStep, e.Proc)
			}
			deliverAt[k] = e.Step
			deliverRoute[k] = e.Route
		}
	}

	// Aggregate counters: the stream and the Result must describe the same
	// run.
	if computes != res.PebblesComputed {
		c.addf("result-counts", "stream has %d computes, result says %d", computes, res.PebblesComputed)
	}
	if injects != res.MessageHops {
		c.addf("result-counts", "stream has %d injects, result says %d hops", injects, res.MessageHops)
	}
	if delivers != res.DeliveredValues {
		c.addf("result-counts", "stream has %d delivers, result says %d", delivers, res.DeliveredValues)
	}
	if int64(len(paths)) != res.Messages {
		c.addf("result-counts", "stream has %d messages, result says %d", len(paths), res.Messages)
	}
	if res.PebblesComputed > 0 && maxComputeStep != res.HostSteps {
		c.addf("result-counts", "last compute at step %d, result says HostSteps=%d", maxComputeStep, res.HostSteps)
	}

	// Per-column compute completeness: each live holder computes gsteps
	// 1..T exactly, in nondecreasing step order; a crashed holder computes a
	// contiguous prefix. (A holder never receives its own column, so every
	// local row must be locally computed.) An activated standby replays the
	// whole column — activation adds all T pebbles and the run waits for the
	// catch-up — so it owes the same complete contiguous history.
	for col := 0; col < cfg.Assign.Columns; col++ {
		holders := cfg.Assign.Holders[col]
		if adaptive {
			for _, p := range placement[col] {
				if _, ok := activatedAt[[2]int32{int32(p), int32(col)}]; ok {
					holders = append(append([]int(nil), holders...), p)
				}
			}
		}
		for _, p := range holders {
			pk := pebbleKey{proc: int32(p), col: int32(col)}
			_, isCrashed := crashAt[int32(p)]
			prev := int64(0)
			done := int32(0)
			for t := int32(1); t <= T; t++ {
				pk.gstep = t
				step, ok := computeAt[pk]
				if !ok {
					break
				}
				if step < prev {
					c.addf("compute-order", "proc %d computed (%d,%d) at step %d before (%d,%d) at %d",
						p, col, t, step, col, t-1, prev)
				}
				prev, done = step, t
			}
			for t := done + 1; t <= T; t++ {
				pk.gstep = t
				if _, ok := computeAt[pk]; ok {
					c.addf("compute-order", "proc %d computed (%d,%d) but skipped gstep %d", p, col, t, done+1)
					break
				}
			}
			if !isCrashed && done != T {
				c.addf("conservation", "live proc %d computed only %d/%d gsteps of column %d", p, done, T, col)
			}
		}
	}

	// Dependency order: a pebble (col, t>=2) needs every dependency value
	// (dep, t-1) known at the computing processor no later than the compute
	// step — locally computed for held columns (same-step is legal:
	// ComputePerStep > 1 chains within a step), delivered otherwise
	// (same-step is legal: deliveries precede compute within a step).
	for k, step := range computeAt {
		if k.gstep < 2 {
			continue
		}
		deps := append([]int{int(k.col)}, info.Neighbors(int(k.col))...)
		for _, dep := range deps {
			dk := pebbleKey{k.proc, int32(dep), k.gstep - 1}
			// An activated standby computes its own column's history locally,
			// exactly like a base holder — and a standby host that base-holds
			// a consumer of its standby column also keeps receiving it over
			// the unchanged routes, so either source makes the value known.
			_, selfReplay := activatedAt[[2]int32{k.proc, int32(dep)}]
			known := false
			if cfg.Assign.Holds(int(k.proc), dep) || selfReplay {
				at, ok := computeAt[dk]
				known = ok && at <= step
			}
			if !known {
				if at, ok := deliverAt[dk]; ok && at <= step {
					known = true
				}
			}
			if !known {
				c.addf("dependency-order", "proc %d computed (%d,%d) at step %d without known dep (%d,%d)",
					k.proc, k.col, k.gstep, step, dep, k.gstep-1)
			}
		}
	}

	// Conservation: for every column value with a consumer ahead (t < T),
	// exactly the live processors that hold a neighbor column but not the
	// column itself receive it — each exactly once (duplicates were caught
	// above), nobody else, and nothing of gstep T or beyond travels. A
	// provisioned standby counts as a holder of its standby column for the
	// destination fan-out (dormant or active: the routes feed it from step
	// 1 so an activation needs no route rebuild).
	needer := func(p, col int) bool {
		if _, dead := crashAt[int32(p)]; dead || cfg.Assign.Holds(p, col) {
			return false
		}
		for _, nb := range info.Neighbors(col) {
			if cfg.Assign.Holds(p, nb) || standbyAt[[2]int32{int32(p), int32(nb)}] {
				return true
			}
		}
		return false
	}
	for col := 0; col < cfg.Assign.Columns; col++ {
		for p := 0; p < hostN; p++ {
			need := needer(p, col)
			for t := int32(1); t < T; t++ {
				if _, ok := deliverAt[pebbleKey{int32(p), int32(col), t}]; ok != need {
					if need {
						c.addf("conservation", "needer proc %d never received (%d,%d)", p, col, t)
					} else {
						c.addf("conservation", "proc %d received (%d,%d) it does not need", p, col, t)
					}
				}
			}
			if _, ok := deliverAt[pebbleKey{int32(p), int32(col), T}]; ok {
				c.addf("conservation", "last-row value (%d,%d) was delivered to proc %d (no consumer ahead)", col, T, p)
			}
		}
	}

	// Bandwidth: each directed link injects at most its per-step bandwidth,
	// and nothing while an outage holds the link down.
	for sk, n := range slots {
		bw := 1
		if int(sk.link) < len(info.LinkBW) && info.LinkBW[sk.link] > 0 {
			bw = info.LinkBW[sk.link]
		}
		if n > bw {
			c.addf("bandwidth", "link %d dir %+d injected %d > B=%d at step %d", sk.link, sk.dir, n, bw, sk.step)
		}
		if plan != nil && plan.LinkDown(int(sk.link), sk.step) {
			c.addf("bandwidth", "link %d dir %+d injected %d at step %d during an outage", sk.link, sk.dir, n, sk.step)
		}
	}

	// Slowdown faults: a host never computes more pebbles in a step than its
	// (possibly fault-capped) rate allows.
	for ps, n := range perProcStep {
		lim := perStep
		if plan != nil {
			lim = plan.ComputeLimit(int(ps.proc), ps.step, perStep)
		}
		if n > lim {
			c.addf("compute-rate", "proc %d computed %d > limit %d pebbles at step %d", ps.proc, n, lim, ps.step)
		}
	}

	// Relay chains: each message starts at a live holder that computed the
	// value no later than its first injection, advances hop by hop (each
	// relay injects no earlier than the previous hop's arrival), and every
	// delivery happens at the hop arrival — exactly inject+delay when no
	// jitter is configured, never earlier otherwise.
	// Heavy-tailed spikes stretch flight times just like jitter does, so
	// exact-arrival checking is off under either.
	jittery := plan != nil && (len(plan.Jitters) > 0 || len(plan.Spikes) > 0)
	for rk, hops := range paths {
		// Injection steps are unique per message (one value crosses one link
		// once), so step order is travel order.
		for i := 1; i < len(hops); i++ {
			for j := i; j > 0 && hops[j-1].step > hops[j].step; j-- {
				hops[j-1], hops[j] = hops[j], hops[j-1]
			}
		}
		col := pathCol[rk]
		sender := hopStart(hops[0])
		if _, dead := crashAt[sender]; dead {
			c.addf("relay-chain", "crashed proc %d is the sender of route %d gstep %d", sender, rk.route, rk.gstep)
		}
		if at, ok := computeAt[pebbleKey{sender, col, rk.gstep}]; !ok || at > hops[0].step {
			c.addf("relay-chain", "route %d gstep %d injected at step %d before sender %d computed (%d,%d)",
				rk.route, rk.gstep, hops[0].step, sender, col, rk.gstep)
		}
		for i := 1; i < len(hops); i++ {
			if hopArrive(hops[i-1]) != hopStart(hops[i]) {
				c.addf("relay-chain", "route %d gstep %d hops from position %d to %d",
					rk.route, rk.gstep, hopArrive(hops[i-1]), hopStart(hops[i]))
			}
			earliest := hops[i-1].step + int64(info.Delays[hops[i-1].link])
			if hops[i].step < earliest {
				c.addf("travel-time", "route %d gstep %d relayed at step %d before arrival at %d",
					rk.route, rk.gstep, hops[i].step, earliest)
			}
		}
	}
	for k, step := range deliverAt {
		rk := routeKey{deliverRoute[k], k.gstep}
		hops, ok := paths[rk]
		if !ok {
			c.addf("relay-chain", "delivery of (%d,%d) to proc %d rode unknown route %d", k.col, k.gstep, k.proc, rk.route)
			continue
		}
		found := false
		for _, h := range hops {
			if hopArrive(h) != k.proc {
				continue
			}
			found = true
			arrive := h.step + int64(info.Delays[h.link])
			if step < arrive {
				c.addf("travel-time", "(%d,%d) delivered to proc %d at step %d before flight ends at %d",
					k.col, k.gstep, k.proc, step, arrive)
			} else if !jittery && step != arrive {
				c.addf("travel-time", "(%d,%d) delivered to proc %d at step %d, expected exactly %d (no jitter)",
					k.col, k.gstep, k.proc, step, arrive)
			}
		}
		if !found {
			c.addf("relay-chain", "no hop of route %d arrives at proc %d for delivery of (%d,%d)",
				rk.route, k.proc, k.col, k.gstep)
		}
	}

	// Stall tiling: the attribution must cover procs x steps exactly.
	// Adaptive runs are exempt: activations add pebbles mid-run and the
	// drain tail delivers past the last compute step, both of which the
	// static per-proc pebble accounting underneath the tiling cannot see.
	if !adaptive {
		sb := obs.Analyze(events, info).Stalls()
		if sum := sb.Busy + sb.Idle + sb.Dependency + sb.Bandwidth + sb.Fault; sum != sb.ProcSteps {
			c.addf("stall-tiling", "busy %d + idle %d + dep %d + bw %d + fault %d = %d != procs x steps %d",
				sb.Busy, sb.Idle, sb.Dependency, sb.Bandwidth, sb.Fault, sum, sb.ProcSteps)
		}
	}

	return c.result()
}
