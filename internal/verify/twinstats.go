package verify

import (
	"latencyhide/internal/network"
	"latencyhide/internal/twin"
)

// TwinStats computes the analytical twin's topology statistics for the
// scenario without running any engine: the host line summary (d_ave,
// d_max, realized bandwidth), the assignment load, and the generalised
// ping-pong propagation floors over the guest graph (see internal/twin).
// The fleet harness feeds these to twin.Classify/Predict and joins them
// against measured slowdowns.
func (s *Scenario) TwinStats() (twin.Stats, error) {
	g, err := s.Graph()
	if err != nil {
		return twin.Stats{}, err
	}
	a, err := s.Assignment(g.NumNodes())
	if err != nil {
		return twin.Stats{}, err
	}
	delays := s.Delays()
	st := twin.Stats{
		Hosts:     s.HostN,
		Cols:      g.NumNodes(),
		Load:      a.Load(),
		Rep:       s.Rep,
		Steps:     s.Steps,
		Bandwidth: s.BW,
	}
	if st.Bandwidth < 1 {
		st.Bandwidth = network.Log2Ceil(s.HostN) // the engine's default
		if st.Bandwidth < 1 {
			st.Bandwidth = 1
		}
	}
	var sum float64
	for _, d := range delays {
		sum += float64(d)
		if d > st.DMax {
			st.DMax = d
		}
	}
	if len(delays) > 0 {
		st.DAve = sum / float64(len(delays))
	}
	st.PropFloor, st.CertFloor = twin.Floors(g, a.Holders, delays, s.Steps)
	return st, nil
}

// StripDynamics returns a copy of the scenario with the fault plan and
// the adaptive-replication policy removed. The twin models the fault-free
// protocol (its floors assume links deliver at their nominal delays), so
// the fleet corpus strips dynamics before measuring; adversarial regimes
// keep their own validation in E13/E18 and `verify -chaos`.
func (s *Scenario) StripDynamics() *Scenario {
	c := *s
	c.Faults = nil
	c.Adapt = nil
	return &c
}
