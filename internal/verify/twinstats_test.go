package verify

import (
	"testing"

	"latencyhide/internal/sim"
)

// TwinStats on a hand-built scenario: a 6-column guest line on 6 hosts,
// const delay 3, single copy — one column per host, so load 1, d_ave =
// d_max = 3, and the ping-pong floor is exactly 3 (adjacent columns one
// link apart).
func TestTwinStatsHand(t *testing.T) {
	sc := &Scenario{
		Shape: "line", GA: 6, HostN: 6,
		DelayKind: "const", DelayLo: 3,
		Rep: 1, Steps: 9, Seed: 7,
	}
	st, err := sc.TwinStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Hosts != 6 || st.Cols != 6 || st.Load != 1 || st.Rep != 1 || st.Steps != 9 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DAve != 3 || st.DMax != 3 {
		t.Fatalf("delays: dave=%v dmax=%v, want 3/3", st.DAve, st.DMax)
	}
	if st.Bandwidth != 3 { // log2ceil(6)
		t.Fatalf("bandwidth = %d, want engine default 3", st.Bandwidth)
	}
	if st.PropFloor != 3 {
		t.Fatalf("prop floor = %v, want 3", st.PropFloor)
	}
	// w=1 chain: 2*3*floor(8/2)/9 = 24/9.
	if got, want := st.CertFloor, 24.0/9; got != want {
		t.Fatalf("cert floor = %v, want %v", got, want)
	}
}

// The certified floor must hold on real measured slowdowns: over a slice
// of the generator's stream (dynamics stripped, matching the fleet
// corpus), no scenario may beat its finite-horizon bound.
func TestCertFloorHolds(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	for i := 0; i < n; i++ {
		sc := Generate(99, i).StripDynamics()
		st, err := sc.TwinStats()
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		cfg, err := sc.Build()
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		res, err := sim.Run(*cfg)
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		if res.Slowdown < st.CertFloor-1e-9 {
			t.Errorf("scenario %d (%s): measured %.4f beats certified floor %.4f",
				i, sc, res.Slowdown, st.CertFloor)
		}
		if res.Load != st.Load {
			t.Errorf("scenario %d: stats load %d != engine load %d", i, st.Load, res.Load)
		}
		if res.Bandwidth != st.Bandwidth {
			t.Errorf("scenario %d: stats bw %d != engine bw %d", i, st.Bandwidth, res.Bandwidth)
		}
	}
}

func TestStripDynamics(t *testing.T) {
	sc := Generate(1, 1) // residue class i%4==1 always carries faults
	if sc.Faults == nil {
		t.Fatal("generator contract changed: i%4==1 must carry faults")
	}
	stripped := sc.StripDynamics()
	if stripped.Faults != nil || stripped.Adapt != nil {
		t.Fatal("StripDynamics left dynamics behind")
	}
	if sc.Faults == nil {
		t.Fatal("StripDynamics mutated the original")
	}
	if stripped.Shape != sc.Shape || stripped.HostN != sc.HostN || stripped.Seed != sc.Seed {
		t.Fatal("StripDynamics changed static fields")
	}
	// Specs of stripped scenarios parse back without dynamics.
	rt, err := Parse(stripped.String())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Faults != nil || rt.Adapt != nil {
		t.Fatal("stripped spec round-trips with dynamics")
	}
}

func TestTwinStatsBadScenario(t *testing.T) {
	sc := &Scenario{Shape: "nope", GA: 3, HostN: 4, DelayKind: "const", DelayLo: 1, Rep: 1, Steps: 4}
	if _, err := sc.TwinStats(); err == nil {
		t.Fatal("bad shape must error")
	}
}
