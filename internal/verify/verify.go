// Package verify is the model-based verification subsystem: an invariant
// oracle over the canonical obs event stream, a seeded scenario generator,
// and a metamorphic driver that runs generated scenarios through both
// engines and cross-checks them.
//
// The paper's claims are all invariants — delivery precedes compute, each
// directed link injects at most B pebbles per step, every multicast value is
// delivered exactly once per needer, crashed hosts never compute, the
// stall-cause tiling covers exactly procs x steps — so instead of
// hand-writing a check per feature, the oracle (CheckRun) re-derives the
// conservation laws from the recorded stream and the final Result, and the
// driver (CheckScenario, Soak) replays randomly generated Scenario specs
// through the sequential and parallel engines, asserting bit-identical
// streams, an oracle-clean trace, and the metamorphic relations the model
// guarantees (seed invariance, the replication slowdown bound, outage
// monotonicity, mirror invariance).
//
// Three layers consume it: the quickcheck-style sweep and fuzz targets in
// this package's tests, the `latencysim verify -seed -n` CLI subcommand for
// long soak runs, and the CI soak job (fixed seed matrix under -race).
package verify

import "fmt"

// Violation is one broken invariant, attributed to the check that caught it.
type Violation struct {
	// Invariant is the short identifier of the violated law, e.g.
	// "bandwidth", "dependency-order", "conservation", "stall-tiling",
	// "engine-equivalence".
	Invariant string
	// Detail pinpoints the violating event or quantity.
	Detail string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// maxViolations bounds how many violations a single check reports; a broken
// engine trips thousands of them and one screenful is plenty.
const maxViolations = 64

// collector accumulates violations up to the cap.
type collector struct {
	vs        []Violation
	truncated bool
}

func (c *collector) addf(invariant, format string, args ...any) {
	if len(c.vs) >= maxViolations {
		c.truncated = true
		return
	}
	c.vs = append(c.vs, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

func (c *collector) result() []Violation {
	if c.truncated {
		c.vs = append(c.vs, Violation{Invariant: "truncated", Detail: "further violations suppressed"})
	}
	return c.vs
}
