package verify

import (
	"testing"

	"latencyhide/internal/fault"
	"latencyhide/internal/obs"
	"latencyhide/internal/sim"
)

// Three fixed scenarios the mutation tests run against: a fault-free busy
// one, one with an outage plus a crash-stop host, and an adaptive one
// whose churn regime deterministically exhausts the controller's budget.
const (
	cleanSpec    = "g=ring:16;n=6;d=const:2;bw=2;rep=2;steps=8;w=3;seed=5"
	faultySpec   = "g=ring:12;n=4;d=const:2;bw=2;rep=2;steps=6;w=2;seed=3;f=9:outage=0.2x4;crash=1@5"
	adaptiveSpec = "g=line:16;n=8;d=const:4;bw=2;rep=2;steps=24;w=2;seed=17;a=epoch=16,thresh=0.25,extra=1,budget=8,mode=any;f=7:churn=12x4"
)

// mustRun executes the spec's sequential engine run with a recorder and
// asserts the oracle finds it clean.
func mustRun(t *testing.T, spec string) (*sim.Config, *sim.Result, []obs.Event) {
	t.Helper()
	sc, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewBuffer()
	cfg.Recorder = rec
	cfg.Check = true
	res, err := sim.Run(*cfg)
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckRun(cfg, res, rec.Events()); len(vs) != 0 {
		t.Fatalf("clean run flagged: %v", vs)
	}
	return cfg, res, rec.Events()
}

func hasInvariant(vs []Violation, names ...string) bool {
	for _, v := range vs {
		for _, n := range names {
			if v.Invariant == n {
				return true
			}
		}
	}
	return false
}

func clone(events []obs.Event) []obs.Event {
	return append([]obs.Event(nil), events...)
}

func TestOracleCleanRuns(t *testing.T) {
	mustRun(t, cleanSpec)
	mustRun(t, faultySpec)
}

// Dropping a delivery starves a needer: conservation must notice, and the
// stream no longer matches the result counters.
func TestOracleCatchesDroppedDelivery(t *testing.T) {
	cfg, res, events := mustRun(t, cleanSpec)
	mut := clone(events)
	for i := range mut {
		if mut[i].Kind == obs.KindDeliver {
			mut = append(mut[:i], mut[i+1:]...)
			break
		}
	}
	vs := CheckRun(cfg, res, mut)
	if !hasInvariant(vs, "conservation") || !hasInvariant(vs, "result-counts") {
		t.Fatalf("dropped delivery not caught: %v", vs)
	}
}

// A duplicated delivery breaks exactly-once conservation.
func TestOracleCatchesDuplicateDelivery(t *testing.T) {
	cfg, res, events := mustRun(t, cleanSpec)
	mut := clone(events)
	for i := range mut {
		if mut[i].Kind == obs.KindDeliver {
			mut = append(mut, mut[i])
			break
		}
	}
	if vs := CheckRun(cfg, res, mut); !hasInvariant(vs, "conservation") {
		t.Fatalf("duplicate delivery not caught: %v", vs)
	}
}

// Moving a compute to step 1 puts it before its delivered dependencies.
func TestOracleCatchesComputeBeforeDependency(t *testing.T) {
	cfg, res, events := mustRun(t, cleanSpec)
	mut := clone(events)
	moved := false
	for i := range mut {
		e := &mut[i]
		if e.Kind != obs.KindCompute || e.GStep < 2 || e.Step < 3 {
			continue
		}
		// Pick a compute with at least one dependency the processor does
		// not hold, so the value must have been delivered (after step 1).
		held := true
		for _, dep := range cfg.Guest.Graph.Neighbors(int(e.Col)) {
			if !cfg.Assign.Holds(int(e.Proc), dep) {
				held = false
			}
		}
		if held {
			continue
		}
		e.Step = 1
		moved = true
		break
	}
	if !moved {
		t.Fatal("no movable compute event found")
	}
	if vs := CheckRun(cfg, res, mut); !hasInvariant(vs, "dependency-order") {
		t.Fatalf("early compute not caught: %v", vs)
	}
}

// The acceptance-criteria bug: an engine that stops enforcing per-link
// bandwidth. Simulated by checking a B=2 run against a B=1 configuration —
// the oracle must flag the over-budget injection steps.
func TestOracleCatchesBandwidthViolation(t *testing.T) {
	cfg, res, events := mustRun(t, cleanSpec)
	lied := *cfg
	lied.Bandwidth = 1
	if vs := CheckRun(&lied, res, events); !hasInvariant(vs, "bandwidth") {
		t.Fatalf("bandwidth overrun not caught: %v", vs)
	}
}

// An injection during a claimed total outage must be flagged.
func TestOracleCatchesOutageInjection(t *testing.T) {
	cfg, res, events := mustRun(t, faultySpec)
	lied := *cfg
	plan := *cfg.Faults
	plan.Outages = []fault.Outage{{Link: -1, Window: 1, Frac: 1}}
	lied.Faults = &plan
	if vs := CheckRun(&lied, res, events); !hasInvariant(vs, "bandwidth") {
		t.Fatalf("outage injection not caught: %v", vs)
	}
}

// A compute on a crashed host at or after its crash step must be flagged.
func TestOracleCatchesCrashedCompute(t *testing.T) {
	cfg, res, events := mustRun(t, faultySpec)
	crashStep, ok := cfg.Faults.CrashStep(1)
	if !ok {
		t.Fatal("fixture lost its crash")
	}
	col := cfg.Assign.Owned[1][0]
	done := int32(0)
	for _, e := range events {
		if e.Kind == obs.KindCompute && e.Proc == 1 && int(e.Col) == col && e.GStep > done {
			done = e.GStep
		}
	}
	mut := append(clone(events), obs.Event{
		Step: crashStep + 2, Kind: obs.KindCompute, Proc: 1,
		Col: int32(col), GStep: done + 1, Link: -1, Route: -1,
	})
	if vs := CheckRun(cfg, res, mut); !hasInvariant(vs, "crash-stop") {
		t.Fatalf("crashed compute not caught: %v", vs)
	}
}

// Removing an injection hop breaks the relay chain its delivery rode.
func TestOracleCatchesMissingHop(t *testing.T) {
	cfg, res, events := mustRun(t, cleanSpec)
	mut := clone(events)
	for i := range mut {
		if mut[i].Kind == obs.KindInject {
			mut = append(mut[:i], mut[i+1:]...)
			break
		}
	}
	vs := CheckRun(cfg, res, mut)
	if !hasInvariant(vs, "relay-chain", "travel-time") {
		t.Fatalf("missing hop not caught: %v", vs)
	}
}

// A result whose counters disagree with the stream must be flagged.
func TestOracleCatchesResultMismatch(t *testing.T) {
	cfg, res, events := mustRun(t, cleanSpec)
	lied := *res
	lied.PebblesComputed++
	if vs := CheckRun(cfg, &lied, events); !hasInvariant(vs, "result-counts") {
		t.Fatalf("result drift not caught: %v", vs)
	}
}

// A compute by a processor that does not hold the column is never legal.
func TestOracleCatchesForeignCompute(t *testing.T) {
	cfg, res, events := mustRun(t, cleanSpec)
	var foreign int32 = -1
	col := cfg.Assign.Owned[0][0]
	for p := 0; p < cfg.Assign.HostN; p++ {
		if !cfg.Assign.Holds(p, col) {
			foreign = int32(p)
			break
		}
	}
	if foreign < 0 {
		t.Skip("column held everywhere")
	}
	mut := append(clone(events), obs.Event{
		Step: 2, Kind: obs.KindCompute, Proc: foreign, Col: int32(col), GStep: 1,
		Link: -1, Route: -1,
	})
	if vs := CheckRun(cfg, res, mut); !hasInvariant(vs, "holder-only") {
		t.Fatalf("foreign compute not caught: %v", vs)
	}
}

// The adaptive fixture runs clean and actually exercises the controller —
// a run with zero activations would leave the replication-bound checks
// vacuous.
func TestOracleAdaptiveCleanRun(t *testing.T) {
	_, res, events := mustRun(t, adaptiveSpec)
	if res.AdaptActivations == 0 {
		t.Fatal("adaptive fixture never activated a standby")
	}
	adapts := 0
	for _, e := range events {
		if e.Kind == obs.KindAdapt {
			adapts++
		}
	}
	if adapts != res.AdaptActivations {
		t.Fatalf("%d KindAdapt events, result says %d", adapts, res.AdaptActivations)
	}
}

// An activation on a host outside the deterministic placement breaks the
// replication bound.
func TestOracleCatchesRogueActivation(t *testing.T) {
	cfg, res, events := mustRun(t, adaptiveSpec)
	// A base holder of column 0 is never a legal standby for it.
	holder := int32(cfg.Assign.Holders[0][0])
	mut := append(clone(events), obs.Event{
		Step: int64(cfg.Adapt.Epoch) + 1, Kind: obs.KindAdapt,
		Proc: holder, Col: 0, Link: -1, Route: -1,
	})
	if vs := CheckRun(cfg, res, mut); !hasInvariant(vs, "adaptive-replication-bound") {
		t.Fatalf("rogue activation not caught: %v", vs)
	}
}

// An activation off the epoch grid breaks the boundary alignment the
// parallel engine's determinism rests on.
func TestOracleCatchesOffBoundaryActivation(t *testing.T) {
	cfg, res, events := mustRun(t, adaptiveSpec)
	mut := clone(events)
	for i := range mut {
		if mut[i].Kind == obs.KindAdapt {
			mut[i].Step += 3
			break
		}
	}
	if vs := CheckRun(cfg, res, mut); !hasInvariant(vs, "adaptive-replication-bound") {
		t.Fatalf("off-boundary activation not caught: %v", vs)
	}
}

// More activations than the policy's budget must be flagged.
func TestOracleCatchesBudgetOverrun(t *testing.T) {
	cfg, res, events := mustRun(t, adaptiveSpec)
	if res.AdaptActivations < 2 {
		t.Fatalf("fixture made only %d activations", res.AdaptActivations)
	}
	lied := *cfg
	pol := *cfg.Adapt
	pol.Budget = res.AdaptActivations - 1
	lied.Adapt = &pol
	if vs := CheckRun(&lied, res, events); !hasInvariant(vs, "adaptive-replication-bound") {
		t.Fatalf("budget overrun not caught: %v", vs)
	}
}

// The violation cap keeps a totally broken stream from flooding the report.
func TestOracleTruncatesViolations(t *testing.T) {
	cfg, res, events := mustRun(t, cleanSpec)
	var empty []obs.Event
	vs := CheckRun(cfg, res, empty)
	_ = events
	if len(vs) == 0 || len(vs) > maxViolations+1 {
		t.Fatalf("empty stream produced %d violations", len(vs))
	}
	last := vs[len(vs)-1]
	if last.Invariant != "truncated" {
		t.Fatalf("expected truncation marker, got %v", last)
	}
}
