package verify

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestScenarioRoundTrip(t *testing.T) {
	specs := []string{
		"g=ring:24;n=8;d=uniform:1:9;bw=2;rep=2;steps=12;w=3;seed=7",
		"g=line:5;n=2;d=const:3;bw=0;rep=1;steps=3;w=2;seed=1",
		"g=mesh:3:4;n=6;d=bimodal:1:16;bw=1;rep=3;steps=8;w=4;seed=-2",
		"g=tree:2;n=4;d=const:1;bw=0;rep=2;steps=5;w=2;seed=9",
		"g=ring:24;n=8;d=uniform:1:9;bw=2;rep=2;steps=12;w=3;seed=7;f=7:outage=0.1x8",
		"g=line:9;n=3;d=const:2;bw=1;rep=2;steps=4;w=2;seed=3;f=1:jitter=4@0.5;outage=0.2x6#1;slow=0.3x8/0;crash=0@9",
		"g=ring:16;n=6;d=const:2;bw=2;rep=2;steps=8;w=2;seed=5;a=epoch=8,thresh=0.5,extra=1,budget=4,mode=any",
		"g=line:12;n=4;d=const:3;bw=1;rep=2;steps=6;w=2;seed=2;a=epoch=4,thresh=0.25,extra=2,budget=6,mode=fault;f=3:spike=16@0.2~1.2;drift=0.5x6/3~1;churn=9x3#1",
	}
	for _, spec := range specs {
		sc, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := sc.String(); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
		if _, err := sc.Build(); err != nil {
			t.Errorf("Build(%q): %v", spec, err)
		}
	}
}

func TestScenarioParseErrors(t *testing.T) {
	bad := []string{
		"",
		"g=ring:24",                                          // missing n, d
		"n=4;d=const:1;rep=1;steps=3",                        // missing g
		"g=blob:9;n=4;d=const:1;rep=1;steps=3",               // unknown shape
		"g=ring:x;n=4;d=const:1;rep=1;steps=3",               // bad dim
		"g=mesh:3;n=4;d=const:1;rep=1;steps=3",               // mesh needs two dims
		"g=ring:9;n=4;d=zipf:1:3;rep=1;steps=3",              // unknown delay kind
		"g=ring:9;n=4;d=uniform:1;rep=1;steps=3",             // uniform needs hi
		"g=ring:9;n=4;d=uniform:5:2;rep=1;steps=3",           // hi < lo
		"g=ring:9;n=4;d=const:0;rep=1;steps=3",               // delay < 1
		"g=ring:9;n=4;d=const:1;rep=0;steps=3",               // rep < 1
		"g=ring:9;n=4;d=const:1;rep=9;steps=3",               // rep > hosts
		"g=ring:9;n=0;d=const:1;rep=1;steps=3",               // no hosts
		"g=ring:9;n=4;d=const:1;rep=1;steps=0",               // no steps
		"g=ring:9;n=4;d=const:1;rep=1;steps=3;zz=1",          // unknown key
		"g=ring:9;n=4;d=const:1;rep=1;steps=3;f=no",          // bad fault plan
		"g=ring:9;n=4;d=const:1;rep=1;steps=3;bw=x",          // non-numeric
		"g=ring:9;n=4;d=const:1;rep=1;steps=3;a=thresh=0.5",  // adapt spec missing epoch
		"g=ring:9;n=4;d=const:1;rep=1;steps=3;a=epoch=0",     // adapt epoch < 1
		"g=ring:9;n=4;d=const:1;rep=1;steps=3;a=epoch=8,z=1", // unknown adapt key
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		} else if strings.Count(err.Error(), "\n") != 0 {
			t.Errorf("Parse(%q) error is not one line: %q", spec, err)
		}
	}
}

// Every generated scenario must stay inside the documented sample space,
// build into a valid engine configuration, and round-trip its spec.
func TestGenerateBoundsAndBuilds(t *testing.T) {
	shapes := map[string]int{}
	faulty, crashes, wide := 0, 0, 0
	for i := 0; i < 300; i++ {
		sc := Generate(42, i)
		shapes[sc.Shape]++
		if sc.HostN < 2 || sc.HostN > 16 {
			t.Fatalf("scenario %d: hostN %d", i, sc.HostN)
		}
		if sc.Steps < 3 || sc.Steps > 12 {
			t.Fatalf("scenario %d: steps %d", i, sc.Steps)
		}
		if sc.Workers < 2 || sc.Workers > 6 {
			t.Fatalf("scenario %d: workers %d", i, sc.Workers)
		}
		// chunks = min(Workers, HostN/2) after the engine's clamp.
		if chunks := min(sc.Workers, sc.HostN/2); chunks >= 4 {
			wide++
		}
		if sc.Rep < 1 || sc.Rep > 3 || sc.Rep > sc.HostN {
			t.Fatalf("scenario %d: rep %d of %d hosts", i, sc.Rep, sc.HostN)
		}
		if sc.Faults != nil {
			faulty++
			// Never enough crashes to orphan a column.
			if got := len(sc.Faults.CrashedHosts()); got > 0 {
				crashes++
				if got >= sc.Rep {
					t.Fatalf("scenario %d: %d crashed hosts at rep %d", i, got, sc.Rep)
				}
			}
		}
		cfg, err := sc.Build()
		if err != nil {
			t.Fatalf("scenario %d (%s): %v", i, sc, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("scenario %d (%s): invalid config: %v", i, sc, err)
		}
		back, err := Parse(sc.String())
		if err != nil {
			t.Fatalf("scenario %d: reparse %q: %v", i, sc, err)
		}
		if back.String() != sc.String() {
			t.Fatalf("scenario %d: round trip %q -> %q", i, sc, back)
		}
	}
	for _, shape := range []string{"line", "ring", "mesh", "tree"} {
		if shapes[shape] == 0 {
			t.Errorf("300 scenarios never sampled shape %q", shape)
		}
	}
	if faulty == 0 || crashes == 0 {
		t.Errorf("300 scenarios sampled %d fault plans, %d with crashes", faulty, crashes)
	}
	// Every fourth scenario is wide by construction: at least a quarter of
	// the soak must run the parallel engine with >= 4 chunks.
	if wide < 75 {
		t.Errorf("only %d/300 scenarios run >= 4 chunks (want >= 75)", wide)
	}
}

// The stream's residue classes pin the adversarial coverage floors: at
// least a quarter of any soak carries a new-regime plan (spike, drift or
// churn) and at least a quarter runs the adaptive controller, regardless
// of how the percentage draws land.
func TestGenerateAdversarialFloors(t *testing.T) {
	const n = 400
	regimes, adaptive := 0, 0
	for i := 0; i < n; i++ {
		sc := Generate(42, i)
		if sc.newRegime() {
			regimes++
		}
		if sc.Adapt != nil {
			adaptive++
			if err := sc.Adapt.Validate(); err != nil {
				t.Fatalf("scenario %d: generated policy invalid: %v", i, err)
			}
		}
		if i%4 == 1 && !sc.newRegime() {
			t.Fatalf("scenario %d (i%%4==1) has no adversarial regime: %s", i, sc)
		}
		if i%4 == 2 && sc.Adapt == nil {
			t.Fatalf("scenario %d (i%%4==2) has no adaptive policy: %s", i, sc)
		}
	}
	if regimes < n/4 {
		t.Errorf("only %d/%d scenarios carry a new regime (want >= %d)", regimes, n, n/4)
	}
	if adaptive < n/4 {
		t.Errorf("only %d/%d scenarios run the controller (want >= %d)", adaptive, n, n/4)
	}
}

// Chaos mode concentrates the stream: every scenario carries a new regime,
// every other one runs the controller, and each still builds and
// round-trips.
func TestGenerateChaos(t *testing.T) {
	adaptive := 0
	for i := 0; i < 100; i++ {
		sc := GenerateChaos(11, i)
		if !sc.newRegime() {
			t.Fatalf("chaos scenario %d has no adversarial regime: %s", i, sc)
		}
		if sc.Adapt != nil {
			adaptive++
		} else if i%2 == 0 {
			t.Fatalf("chaos scenario %d (even) has no adaptive policy: %s", i, sc)
		}
		if _, err := sc.Build(); err != nil {
			t.Fatalf("chaos scenario %d (%s): %v", i, sc, err)
		}
		back, err := Parse(sc.String())
		if err != nil {
			t.Fatalf("chaos scenario %d: reparse %q: %v", i, sc, err)
		}
		if back.String() != sc.String() {
			t.Fatalf("chaos scenario %d: round trip %q -> %q", i, sc, back)
		}
	}
	if adaptive < 50 {
		t.Errorf("only %d/100 chaos scenarios run the controller", adaptive)
	}
}

// The generator must be a pure function of (seed, index) — the same pair
// always yields the same spec, different pairs differ somewhere.
func TestGenerateDeterministic(t *testing.T) {
	if err := quick.Check(func(seed uint64, i uint8) bool {
		return Generate(seed, int(i)).String() == Generate(seed, int(i)).String()
	}, nil); err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for i := 0; i < 50; i++ {
		distinct[Generate(7, i).String()] = true
	}
	if len(distinct) < 45 {
		t.Fatalf("only %d distinct scenarios in 50 draws", len(distinct))
	}
}

func TestDelaysDeterministic(t *testing.T) {
	sc := Generate(3, 11)
	a, b := sc.Delays(), sc.Delays()
	if len(a) != sc.HostN-1 {
		t.Fatalf("delays %v for %d hosts", a, sc.HostN)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delays not deterministic: %v vs %v", a, b)
		}
		if a[i] < 1 {
			t.Fatalf("delay %d < 1", a[i])
		}
	}
}

// The replicated-blocks assignment must place every column on Rep distinct
// hosts (consecutive mod hostN), so Rep-1 crashes cannot orphan anything.
func TestAssignmentReplication(t *testing.T) {
	sc := &Scenario{Shape: "ring", GA: 10, HostN: 4, Rep: 3}
	a, err := sc.Assignment(10)
	if err != nil {
		t.Fatal(err)
	}
	for c, hs := range a.Holders {
		if len(hs) != 3 {
			t.Fatalf("column %d has %d holders", c, len(hs))
		}
	}
	if a.MaxCopies() != 3 {
		t.Fatalf("max copies %d", a.MaxCopies())
	}
}
