// Package metrics provides the small statistics and reporting toolkit the
// experiment harness uses: aligned text tables (also renderable as Markdown
// or CSV), log-log slope fits for checking asymptotic shapes, and basic
// summaries.
package metrics

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Notes   []string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %.3g
// unless already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a caption line rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatCell(c any) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return formatFloat(v)
	case float32:
		return formatFloat(float64(v))
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "### %s\n\n", t.Title)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", n)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values (no escaping of commas in
// cells; the harness never emits them).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// CSVFile writes the table as CSV to path.
func (t *Table) CSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	t.CSV(f)
	return f.Close()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// LogLogSlope fits log(y) = a + b*log(x) by least squares and returns b.
// It is the harness's asymptotic-shape check: simulating slowdown ~ x^b.
// Points with non-positive coordinates are skipped; fewer than two valid
// points yield NaN.
func LogLogSlope(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	return Slope(lx, ly)
}

// Slope fits y = a + b*x by least squares and returns b (NaN if undefined).
func Slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	if len(xs) < 2 || len(xs) != len(ys) {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values (0 if none).
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return (c[m-1] + c[m]) / 2
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	best := xs[0]
	for _, x := range xs[1:] {
		if x > best {
			best = x
		}
	}
	return best
}
