package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "a", "bbbb", "c")
	tb.AddRow(1, 2.5, "x")
	tb.AddRow(100000, 0.001234, "yyyy")
	tb.AddNote("note %d", 7)

	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "## demo") || !strings.Contains(out, "note: note 7") {
		t.Fatalf("text render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, sep, 2 rows, note
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}

	buf.Reset()
	tb.Markdown(&buf)
	md := buf.String()
	if !strings.Contains(md, "| a | bbbb | c |") || !strings.Contains(md, "| --- | --- | --- |") {
		t.Fatalf("markdown render:\n%s", md)
	}
	if !strings.Contains(md, "*note 7*") {
		t.Fatalf("markdown note:\n%s", md)
	}

	buf.Reset()
	tb.CSV(&buf)
	csv := buf.String()
	if !strings.HasPrefix(csv, "a,bbbb,c\n") {
		t.Fatalf("csv render:\n%s", csv)
	}
}

// Markdown notes render as italic caption paragraphs under the table, one
// per AddNote call, in insertion order, each preceded by a blank line.
func TestMarkdownAddNote(t *testing.T) {
	tb := NewTable("captions", "x")
	tb.AddRow(1)
	tb.AddNote("slope %.2f", 1.5)
	tb.AddNote("second %s", "caption")

	var buf bytes.Buffer
	tb.Markdown(&buf)
	md := buf.String()
	first := strings.Index(md, "\n*slope 1.50*\n")
	second := strings.Index(md, "\n*second caption*\n")
	if first < 0 || second < 0 {
		t.Fatalf("notes missing or not italicised:\n%s", md)
	}
	if first > second {
		t.Fatalf("notes out of insertion order:\n%s", md)
	}
	if strings.Index(md, "| 1 |") > first {
		t.Fatalf("notes must follow the rows:\n%s", md)
	}

	// No notes: no stray caption markup.
	plain := NewTable("bare", "x")
	plain.AddRow(2)
	buf.Reset()
	plain.Markdown(&buf)
	if strings.Contains(buf.String(), "*") {
		t.Fatalf("noteless table emitted caption markup:\n%s", buf.String())
	}
}

func TestFormatCell(t *testing.T) {
	cases := map[any]string{
		"s":            "s",
		0:              "0",
		float64(0):     "0",
		12345.6:        "12346",
		float64(42.25): "42.2",
		float32(2):     "2.000",
		1.5:            "1.500",
	}
	for in, want := range cases {
		if got := formatCell(in); got != want {
			t.Errorf("formatCell(%v) = %q want %q", in, got, want)
		}
	}
}

func TestSlopeExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // slope 2
	if got := Slope(xs, ys); math.Abs(got-2) > 1e-12 {
		t.Fatalf("slope %f", got)
	}
	if !math.IsNaN(Slope([]float64{1}, []float64{2})) {
		t.Fatal("one point should be NaN")
	}
	if !math.IsNaN(Slope([]float64{2, 2}, []float64{1, 5})) {
		t.Fatal("vertical should be NaN")
	}
}

func TestLogLogSlopePowerLaw(t *testing.T) {
	// y = 3 x^1.5 exactly
	var xs, ys []float64
	for _, x := range []float64{1, 2, 4, 8, 16, 100} {
		xs = append(xs, x)
		ys = append(ys, 3*math.Pow(x, 1.5))
	}
	if got := LogLogSlope(xs, ys); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("slope %f want 1.5", got)
	}
	// non-positive points are skipped
	xs = append(xs, -1, 0)
	ys = append(ys, 5, 5)
	if got := LogLogSlope(xs, ys); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("slope with junk points %f", got)
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{4, 1, 9}
	if Mean(xs) != 14.0/3 {
		t.Fatal("mean")
	}
	if Median(xs) != 4 {
		t.Fatal("median odd")
	}
	if Median([]float64{1, 3}) != 2 {
		t.Fatal("median even")
	}
	if Max(xs) != 9 {
		t.Fatal("max")
	}
	if g := GeoMean([]float64{1, 8}); math.Abs(g-math.Sqrt(8)) > 1e-12 {
		t.Fatalf("geomean %f", g)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Max(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty inputs")
	}
	if GeoMean([]float64{-1, 0}) != 0 {
		t.Fatal("geomean of nonpositives")
	}
}

// Property: Slope recovers the coefficient of any non-degenerate linear
// relation.
func TestSlopeProperty(t *testing.T) {
	f := func(a, b float64, n uint8) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(b) > 1e6 || math.Abs(a) > 1e6 {
			return true
		}
		m := 3 + int(n%20)
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = a + b*float64(i)
		}
		got := Slope(xs, ys)
		return math.Abs(got-b) < 1e-6*(1+math.Abs(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTableEmptyAndMismatchedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	if strings.Contains(buf.String(), "##") {
		t.Fatal("untitled table printed a title")
	}
	// a short row must not panic rendering
	tb.Rows = append(tb.Rows, []string{"only-one"})
	buf.Reset()
	tb.Fprint(&buf)
	if !strings.Contains(buf.String(), "only-one") {
		t.Fatal("short row lost")
	}
	buf.Reset()
	tb.Markdown(&buf)
	buf.Reset()
	tb.CSV(&buf)
}
