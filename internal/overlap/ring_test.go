package overlap

import (
	"testing"

	"latencyhide/internal/network"
)

// The paper: "a linear array can simulate a ring with slowdown 2, [so] the
// distinction is not important". Running the ring guest directly, the wrap
// columns multicast across the whole line; the cost stays within a small
// constant of the linear-array run.
func TestRingGuestOption(t *testing.T) {
	delays := delaysOf(network.Line(128, network.UniformDelay{Lo: 1, Hi: 8}, 3))
	lineRun, err := SimulateLine(delays, Options{Variant: TwoLevel, Beta: 2, Steps: 24, Seed: 7, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	ringRun, err := SimulateLine(delays, Options{Variant: TwoLevel, Beta: 2, Steps: 24, Seed: 7, Check: true, Ring: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ringRun.Sim.Checked {
		t.Fatal("ring run not verified")
	}
	if ringRun.GuestCols != lineRun.GuestCols {
		t.Fatalf("guest sizes differ: %d vs %d", ringRun.GuestCols, lineRun.GuestCols)
	}
	// wrap traffic costs at most a few line crossings per round; allow a
	// generous constant over the linear-array run
	if ringRun.Sim.Slowdown > 6*lineRun.Sim.Slowdown+float64(lineRun.HostN) {
		t.Fatalf("ring slowdown %.1f >> line slowdown %.1f", ringRun.Sim.Slowdown, lineRun.Sim.Slowdown)
	}
	// the ring actually exercised wrap communication
	if ringRun.Sim.MessageHops <= lineRun.Sim.MessageHops {
		t.Fatal("ring run should generate extra wrap traffic")
	}
}

func TestRingGuestOnNOW(t *testing.T) {
	g := network.RandomNOW(96, 4, network.ExpDelay{Mean: 2}, 11)
	out, err := Simulate(g, Options{Variant: LoadOne, Steps: 16, Seed: 5, Check: true, Ring: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Sim.Checked {
		t.Fatal("unchecked")
	}
}
