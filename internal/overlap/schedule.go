package overlap

import (
	"fmt"

	"latencyhide/internal/tree"
)

// Schedule materialises the paper's s_t^(k) recurrence (Section 3.2), the
// timetable Theorem 1's induction constructs:
//
//  1. s_1^(kmax)           = base (1 for load-one, alpha*beta for blocked)
//  2. s_t^(k)              = s_t^(k+1) + D_k          for 1 <= t <= m_{k+1}
//  3. s_t^(k)              = s_{t-m_{k+1}}^(k) + s_{m_{k+1}}^(k)
//     for m_{k+1} < t <= m_k
//
// s_t^(k) bounds the host step by which every depth-k interval has computed
// row t of its box, so s_{m_0}^(0) bounds one outer round of m_0 guest
// steps. The greedy engine executes a superset of feasible orders, so its
// measured finish time for m_0 steps must not exceed the schedule's (tests
// assert it); conversely the schedule gives the O(d_ave log^3 n) closed
// form of Theorem 2, which Closed checks against the recurrence.
type Schedule struct {
	Tree *tree.Tree
	// Base is s_1 at the deepest level: pebbles one processor computes
	// before the recursion's first handoff (1 for Theorem 2, alpha*beta
	// for Theorem 3).
	Base int64
	// KMax is the deepest level with a positive overlap m_k.
	KMax int
	// SAtM[k] is s_{m_k}^(k) for 0 <= k <= KMax.
	SAtM []int64
}

// BuildSchedule evaluates the recurrence on a processed interval tree.
func BuildSchedule(t *tree.Tree, base int64) (*Schedule, error) {
	if base < 1 {
		return nil, fmt.Errorf("overlap: schedule base %d < 1", base)
	}
	kmax := t.KMax()
	s := &Schedule{Tree: t, Base: base, KMax: kmax, SAtM: make([]int64, kmax+1)}
	// The paper's real-valued m_k halve exactly, giving the proof's
	// recurrence s_{m_k}^(k) = 2 s_{m_{k+1}}^(k+1) + 2 D_k; with integer
	// m_k rule 3 peels ceil(m_k / m_{k+1}) half-boxes instead, so SAtM is
	// evaluated by the defining rules directly.
	for k := kmax; k >= 0; k-- {
		v, err := s.St(k, t.Mk(k))
		if err != nil {
			return nil, err
		}
		s.SAtM[k] = v
	}
	return s, nil
}

// RoundBound is s_{m_0}^(0): the host steps the schedule needs for one outer
// round of m_0 = n/(c log n) guest steps.
func (s *Schedule) RoundBound() int64 { return s.SAtM[0] }

// RoundSteps is m_0, the guest steps one outer round simulates.
func (s *Schedule) RoundSteps() int { return s.Tree.Mk(0) }

// SlowdownBound is RoundBound / RoundSteps — the per-guest-step cost the
// schedule guarantees, i.e. the concrete constant behind Theorem 2's
// O(d_ave log^3 n) (or Theorem 3's with a blocked base).
func (s *Schedule) SlowdownBound() float64 {
	m0 := s.RoundSteps()
	if m0 == 0 {
		return 0
	}
	return float64(s.RoundBound()) / float64(m0)
}

// St evaluates s_t^(k) for arbitrary t in [1, m_k] by the defining rules
// (used by tests to validate the closed form against the raw recurrence).
func (s *Schedule) St(k, t int) (int64, error) {
	mk := s.Tree.Mk(k)
	if k < 0 || k > s.KMax || t < 1 || t > mk {
		return 0, fmt.Errorf("overlap: s_%d^(%d) out of range (m_k = %d)", t, k, mk)
	}
	if k == s.KMax {
		return int64(t) * s.Base, nil
	}
	mk1 := s.Tree.Mk(k + 1)
	if t <= mk1 {
		inner, err := s.St(k+1, t)
		if err != nil {
			return 0, err
		}
		return inner + int64(s.Tree.Dk(k)), nil
	}
	// rule 3: peel whole half-boxes
	whole, err := s.St(k, mk1)
	if err != nil {
		return 0, err
	}
	rest, err := s.St(k, t-mk1)
	if err != nil {
		return 0, err
	}
	return rest + whole, nil
}

// Closed returns the Theorem 2 closed form evaluated on this tree: the
// recurrence s_{m_k}^(k) = 2 s_{m_{k+1}}^(k+1) + 2 D_k with D_k = D_0/2^k
// unrolls to
//
//	s_{m_0}^(0) = 2^kmax * s_{m_kmax}^(kmax) + 2 * kmax * D_0,
//
// which the proof bounds by n/(c log n) + 2 c d_ave n log^2 n. Tests check
// Closed against the raw recurrence (they agree up to per-level integer
// rounding of D_k).
func (s *Schedule) Closed() int64 {
	base := float64(int64(1)<<uint(s.KMax)) * float64(s.Tree.Mk(s.KMax)) * float64(s.Base)
	return int64(base + 2*float64(s.KMax)*s.Tree.Dk(0))
}
