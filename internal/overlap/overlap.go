// Package overlap is the paper's primary contribution, end to end: algorithm
// OVERLAP (Section 3), which simulates a unit-delay guest linear array on a
// host with arbitrary link delays using automatically-placed redundant
// computation.
//
// The pipeline is: (1) build the interval tree over the host line and run the
// killing/labeling stages (package tree); (2) derive the database assignment
// with sibling overlaps (package assign) in one of three variants — the
// load-one assignment of Theorem 2, the work-efficient blocked assignment of
// Theorem 3, or the flattened Theorem 5 composition through a uniform-delay
// intermediate array; (3) execute greedily on the latency/bandwidth-accurate
// engine (package sim). For hosts that are not linear arrays, Simulate first
// embeds a line with dilation 3 (package embedding, Fact 3) exactly as
// Section 4 prescribes.
package overlap

import (
	"fmt"
	"math"

	"latencyhide/internal/adapt"
	"latencyhide/internal/assign"
	"latencyhide/internal/embedding"
	"latencyhide/internal/fault"
	"latencyhide/internal/guest"
	"latencyhide/internal/network"
	"latencyhide/internal/obs"
	"latencyhide/internal/sim"
	"latencyhide/internal/telemetry"
	"latencyhide/internal/tree"
)

// Variant selects which OVERLAP assignment to run.
type Variant int

const (
	// LoadOne is Theorem 2: each live host processor replicates exactly
	// one database; slowdown O(d_ave log^3 n).
	LoadOne Variant = iota
	// WorkEfficient is Theorem 3: blocks of Beta databases per processor;
	// with Beta = d_ave log^3 n the simulation is work-preserving.
	WorkEfficient
	// TwoLevel is Theorem 5: OVERLAP composed with the Theorem 4 uniform
	// block simulation, giving slowdown O(sqrt(d_ave) log^3 n).
	TwoLevel
)

func (v Variant) String() string {
	switch v {
	case LoadOne:
		return "load-one"
	case WorkEfficient:
		return "work-efficient"
	case TwoLevel:
		return "two-level"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Options configures a run. The zero value is a valid load-one configuration
// with paper defaults (c = 4, bandwidth log n).
type Options struct {
	Variant Variant
	// C is the tree constant; must be > 2. Zero means 4.
	C int
	// Beta is the database block size for WorkEfficient and TwoLevel.
	// Zero means a scaled default (see DefaultBeta); ignored for LoadOne.
	Beta int
	// SqrtD is the TwoLevel stride; zero means round(sqrt(d_ave)).
	SqrtD int
	// Steps is the number of guest steps to simulate; zero means one
	// OVERLAP outer round, m_0 = n / (c log n).
	Steps int
	// Seed drives all guest state.
	Seed int64
	// Bandwidth, ComputePerStep, Workers, Check, MaxSteps, TraceWindow and
	// Recorder pass through to the engine.
	Bandwidth      int
	ComputePerStep int
	Workers        int
	Check          bool
	MaxSteps       int64
	TraceWindow    int
	Recorder       obs.Recorder
	// Faults passes a deterministic fault plan through to the engine
	// (internal/fault); nil is a true no-op.
	Faults *fault.Plan
	// Adapt passes an adaptive-replication policy through to the engine
	// (internal/adapt); nil disables adaptation.
	Adapt *adapt.Policy
	// Telemetry passes a metrics registry through to the engine
	// (internal/telemetry); nil disables instrumentation.
	Telemetry *telemetry.Registry
	// NewDatabase overrides the guest database implementation.
	NewDatabase guest.Factory
	// Op overrides the per-pebble computation (nil = the paper's digest
	// mixer); Init overrides the step-0 pebble values. See guest.Op.
	Op   guest.Op
	Init func(node int, seed int64) uint64
	// StripRedundancy removes all but one replica of every database after
	// the assignment is built — the ablation showing redundant
	// computation is necessary (Section 6 motivation).
	StripRedundancy bool
	// Ring simulates a guest *ring* instead of a linear array. The paper
	// states its results for linear arrays because "a linear array can
	// simulate a ring with slowdown 2" (Section 1); here the engine runs
	// the ring directly — the wrap columns' pebbles are multicast across
	// the whole host line, which costs at most one extra crossing per
	// round and in practice stays within the same bounds.
	Ring bool
}

func (o *Options) c() int {
	if o.C == 0 {
		return 4
	}
	return o.C
}

// DefaultBeta returns the paper's block size d_ave * log^3 n, clamped to
// [1, maxBeta]. Experiments pass explicit smaller betas to keep sweeps
// tractable; the clamp documents the scaling.
func DefaultBeta(dave float64, n, maxBeta int) int {
	logn := float64(network.Log2Ceil(n))
	b := int(math.Round(dave * logn * logn * logn))
	if b < 1 {
		b = 1
	}
	if maxBeta > 0 && b > maxBeta {
		b = maxBeta
	}
	return b
}

// Outcome bundles everything a run produced, from tree statistics to engine
// measurements and the theory-predicted slowdown for shape comparison.
type Outcome struct {
	Variant Variant

	// Host facts.
	HostN     int
	LiveProcs int
	Dave      float64 // of the (embedded) line actually simulated
	Dmax      int
	LogN      int

	// Tree facts.
	KilledStage1, KilledStage2 int
	GuestUnits                 int // root label n'

	// Assignment facts.
	GuestCols  int
	Load       int
	MaxCopies  int
	Redundancy float64

	// Embedding facts (zero-valued when the host was already a line).
	Dilation  int
	Inflation float64

	// Engine result.
	Sim *sim.Result

	// ObsInfo carries the run facts for package obs instruments when
	// Options.Recorder was set; nil otherwise.
	ObsInfo *obs.RunInfo

	// PredictedSlowdown is the theorem's bound evaluated without its
	// hidden constant: d_ave log^3 n for Theorems 2-3,
	// sqrt(d_ave) log^3 n for Theorem 5.
	PredictedSlowdown float64
}

// SimulateLine runs OVERLAP on a host that is already a linear array with
// the given link delays.
func SimulateLine(delays []int, opt Options) (*Outcome, error) {
	if opt.C != 0 && opt.C <= 2 {
		return nil, fmt.Errorf("overlap: constant c=%d must be > 2 (Section 3.2 remark)", opt.C)
	}
	n := len(delays) + 1
	t := tree.Build(delays, opt.c())
	if err := t.CheckLemmas(); err != nil {
		return nil, err
	}
	out := &Outcome{
		Variant: opt.Variant,
		HostN:   n, LiveProcs: t.LiveCount(),
		Dave: t.Dave, LogN: t.LogN,
		KilledStage1: t.KilledStage1, KilledStage2: t.KilledStage2,
		GuestUnits: t.GuestSize(),
	}
	for _, d := range delays {
		if d > out.Dmax {
			out.Dmax = d
		}
	}

	logn := float64(t.LogN)
	var (
		a   *assign.Assignment
		err error
	)
	switch opt.Variant {
	case LoadOne:
		a, err = assign.Overlap(t)
		out.PredictedSlowdown = t.Dave * logn * logn * logn
	case WorkEfficient:
		beta := opt.Beta
		if beta == 0 {
			beta = DefaultBeta(t.Dave, n, 512)
		}
		a, err = assign.OverlapBlocked(t, beta)
		out.PredictedSlowdown = t.Dave * logn * logn * logn
	case TwoLevel:
		beta := opt.Beta
		if beta == 0 {
			beta = DefaultBeta(1, n, 64) // log^3 n scaled down
		}
		s := opt.SqrtD
		if s == 0 {
			s = int(math.Round(math.Sqrt(t.Dave)))
		}
		if s < 1 {
			s = 1
		}
		a, err = assign.TwoLevel(t, beta, s)
		out.PredictedSlowdown = math.Sqrt(t.Dave) * logn * logn * logn
	default:
		return nil, fmt.Errorf("overlap: unknown variant %v", opt.Variant)
	}
	if err != nil {
		return nil, err
	}
	if opt.StripRedundancy {
		a = a.StripRedundancy()
	}
	out.GuestCols = a.Columns
	out.Load = a.Load()
	out.MaxCopies = a.MaxCopies()
	out.Redundancy = a.Redundancy()

	steps := opt.Steps
	if steps == 0 {
		steps = n / (opt.c() * t.LogN)
		if steps < 1 {
			steps = 1
		}
	}
	var gg guest.Graph = guest.NewLinearArray(a.Columns)
	if opt.Ring && a.Columns >= 3 {
		// The classic slowdown-2 folding (Leighton 1992): line order
		// position k simulates ring node k/2 (k even) or m-1-(k-1)/2
		// (k odd), so ring-adjacent nodes sit at most two line positions
		// apart — including the wrap pair (m-1, 0).
		m := a.Columns
		owned := make([][]int, a.HostN)
		for p, cols := range a.Owned {
			for _, k := range cols {
				owned[p] = append(owned[p], foldRing(k, m))
			}
		}
		a, err = assign.FromOwned(a.HostN, m, owned)
		if err != nil {
			return nil, err
		}
		gg = guest.NewRing(m)
	}
	cfg := sim.Config{
		Delays: delays,
		Guest: guest.Spec{
			Graph:       gg,
			Steps:       steps,
			Seed:        opt.Seed,
			NewDatabase: opt.NewDatabase,
			Op:          opt.Op,
			Init:        opt.Init,
		},
		Assign:         a,
		Bandwidth:      opt.Bandwidth,
		ComputePerStep: opt.ComputePerStep,
		Workers:        opt.Workers,
		Check:          opt.Check,
		MaxSteps:       opt.MaxSteps,
		TraceWindow:    opt.TraceWindow,
		Recorder:       opt.Recorder,
		Faults:         opt.Faults,
		Adapt:          opt.Adapt,
		Telemetry:      opt.Telemetry,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	out.Sim = res
	if opt.Recorder != nil {
		info := cfg.ObsInfo(res)
		out.ObsInfo = &info
	}
	return out, nil
}

// foldRing maps line-order index k to a ring node so that ring-adjacent
// nodes are at most two line positions apart: 0, m-1, 1, m-2, 2, ...
func foldRing(k, m int) int {
	if k%2 == 0 {
		return k / 2
	}
	return m - 1 - (k-1)/2
}

// Simulate runs OVERLAP on an arbitrary connected host network by first
// embedding a linear array with dilation 3 (Section 4).
func Simulate(g *network.Network, opt Options) (*Outcome, error) {
	line, err := embedding.Embed(g, 0)
	if err != nil {
		return nil, err
	}
	out, err := SimulateLine(line.Delays, opt)
	if err != nil {
		return nil, err
	}
	es := line.Stats(g)
	out.Dilation = es.Dilation
	out.Inflation = es.Inflation
	return out, nil
}

// Efficiency reports host work per guest work: HostSteps * liveProcs /
// GuestWork. A work-preserving simulation keeps this O(1).
func (o *Outcome) Efficiency() float64 {
	if o.Sim == nil || o.Sim.GuestWork == 0 {
		return 0
	}
	return float64(o.Sim.HostSteps) * float64(o.LiveProcs) / float64(o.Sim.GuestWork)
}
