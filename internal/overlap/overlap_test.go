package overlap

import (
	"math"
	"testing"

	"latencyhide/internal/network"
)

func delaysOf(g *network.Network) []int {
	out := make([]int, g.NumLinks())
	for i, e := range g.Edges() {
		out[i] = e.Delay
	}
	return out
}

func bimodalLine(n int, far int, seed int64) []int {
	return delaysOf(network.Line(n, network.BimodalDelay{Near: 1, Far: far, P: 1.0 / float64(far)}, seed))
}

func TestVariantsRunAndVerify(t *testing.T) {
	delays := bimodalLine(128, 32, 1)
	for _, v := range []Variant{LoadOne, WorkEfficient, TwoLevel} {
		out, err := SimulateLine(delays, Options{Variant: v, Beta: 3, Steps: 24, Seed: 2, Check: true})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !out.Sim.Checked {
			t.Fatalf("%v: not verified", v)
		}
		if out.GuestCols < 1 || out.Load < 1 || out.PredictedSlowdown <= 0 {
			t.Fatalf("%v: %+v", v, out)
		}
		if out.Sim.Slowdown <= 0 {
			t.Fatalf("%v: slowdown %f", v, out.Sim.Slowdown)
		}
	}
}

func TestVariantString(t *testing.T) {
	if LoadOne.String() != "load-one" || WorkEfficient.String() != "work-efficient" ||
		TwoLevel.String() != "two-level" || Variant(9).String() == "" {
		t.Fatal("variant names")
	}
}

func TestLoadMatchesTheorems(t *testing.T) {
	delays := bimodalLine(256, 64, 3)
	l1, err := SimulateLine(delays, Options{Variant: LoadOne, Steps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if l1.Load != 1 {
		t.Fatalf("Theorem 2 load %d != 1", l1.Load)
	}
	we, err := SimulateLine(delays, Options{Variant: WorkEfficient, Beta: 7, Steps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if we.Load != 7 {
		t.Fatalf("Theorem 3 load %d != beta", we.Load)
	}
	if we.GuestCols != l1.GuestCols*7 {
		t.Fatalf("blocked guest %d != 7x%d", we.GuestCols, l1.GuestCols)
	}
	tl, err := SimulateLine(delays, Options{Variant: TwoLevel, Beta: 2, SqrtD: 3, Steps: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Load > (2+2)*3 {
		t.Fatalf("Theorem 5 load %d > (beta+2)s", tl.Load)
	}
}

func TestBadOptions(t *testing.T) {
	delays := bimodalLine(64, 16, 1)
	if _, err := SimulateLine(delays, Options{C: 2}); err == nil {
		t.Fatal("c=2 accepted")
	}
	if _, err := SimulateLine(delays, Options{Variant: Variant(42)}); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestDefaultStepsIsM0(t *testing.T) {
	delays := bimodalLine(256, 16, 5)
	out, err := SimulateLine(delays, Options{Variant: LoadOne})
	if err != nil {
		t.Fatal(err)
	}
	want := 256 / (4 * 8) // n / (c log n)
	if out.Sim.GuestSteps != want {
		t.Fatalf("default steps %d want %d", out.Sim.GuestSteps, want)
	}
}

func TestStripRedundancyIsSlower(t *testing.T) {
	delays := bimodalLine(256, 64, 7)
	full, err := SimulateLine(delays, Options{Variant: TwoLevel, Beta: 2, Steps: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	strip, err := SimulateLine(delays, Options{Variant: TwoLevel, Beta: 2, Steps: 32, Seed: 3, StripRedundancy: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.MaxCopies < 2 {
		t.Fatal("full run has no redundancy to strip")
	}
	if strip.MaxCopies != 1 {
		t.Fatal("strip left copies")
	}
	if strip.Sim.Slowdown <= full.Sim.Slowdown {
		t.Fatalf("stripped (%.1f) not slower than redundant (%.1f)",
			strip.Sim.Slowdown, full.Sim.Slowdown)
	}
}

func TestSimulateOnGeneralHost(t *testing.T) {
	g := network.Mesh2D(12, 12, network.ExpDelay{Mean: 3}, 9)
	out, err := Simulate(g, Options{Variant: LoadOne, Steps: 16, Seed: 1, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Dilation < 1 || out.Dilation > 3 {
		t.Fatalf("dilation %d", out.Dilation)
	}
	if out.Inflation <= 0 {
		t.Fatalf("inflation %f", out.Inflation)
	}
	if !out.Sim.Checked {
		t.Fatal("not verified")
	}
}

func TestSimulateDisconnectedHost(t *testing.T) {
	g := network.New(4)
	g.MustAddLink(0, 1, 1)
	if _, err := Simulate(g, Options{}); err == nil {
		t.Fatal("disconnected host accepted")
	}
}

func TestEfficiencyDefinition(t *testing.T) {
	delays := bimodalLine(128, 16, 11)
	out, err := SimulateLine(delays, Options{Variant: WorkEfficient, Beta: 4, Steps: 16})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(out.Sim.HostSteps) * float64(out.LiveProcs) / float64(out.Sim.GuestWork)
	if math.Abs(out.Efficiency()-want) > 1e-9 {
		t.Fatalf("efficiency %f want %f", out.Efficiency(), want)
	}
	var empty Outcome
	if empty.Efficiency() != 0 {
		t.Fatal("empty outcome efficiency")
	}
}

func TestDefaultBeta(t *testing.T) {
	if DefaultBeta(2, 1024, 0) != 2*1000 {
		t.Fatalf("beta %d", DefaultBeta(2, 1024, 0))
	}
	if DefaultBeta(2, 1024, 100) != 100 {
		t.Fatal("clamp high")
	}
	if DefaultBeta(0, 4, 0) != 1 {
		t.Fatal("clamp low")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	delays := bimodalLine(128, 32, 13)
	a, err := SimulateLine(delays, Options{Variant: TwoLevel, Beta: 2, Steps: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateLine(delays, Options{Variant: TwoLevel, Beta: 2, Steps: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Sim.HostSteps != b.Sim.HostSteps || a.Sim.Messages != b.Sim.Messages {
		t.Fatal("nondeterministic")
	}
}

func TestParallelEngineThroughOverlap(t *testing.T) {
	delays := bimodalLine(128, 32, 17)
	seq, err := SimulateLine(delays, Options{Variant: TwoLevel, Beta: 2, Steps: 24, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SimulateLine(delays, Options{Variant: TwoLevel, Beta: 2, Steps: 24, Seed: 5, Workers: 4, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Sim.HostSteps != par.Sim.HostSteps {
		t.Fatalf("engines disagree: %d vs %d", seq.Sim.HostSteps, par.Sim.HostSteps)
	}
}

func TestHugeDelayHostStillWorks(t *testing.T) {
	// hosts with processors killed by stage 1 must still simulate
	delays := make([]int, 255)
	for i := range delays {
		delays[i] = 1
	}
	delays[128] = 50_000_000
	out, err := SimulateLine(delays, Options{Variant: LoadOne, Steps: 8, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.KilledStage1 == 0 {
		t.Fatal("expected stage-1 killing")
	}
	if !out.Sim.Checked {
		t.Fatal("not verified")
	}
	// A line host has no route around a catastrophic link, so the
	// slowdown cannot beat d_ave here (d_ave itself is ~d_max/n); the
	// theorem's promise is slowdown O(d_ave log^3 n), not o(d_ave) —
	// assert the measured value respects the bound's shape.
	if out.Sim.Slowdown > 64*out.PredictedSlowdown {
		t.Fatalf("slowdown %g far exceeds the Theorem 2 bound %g",
			out.Sim.Slowdown, out.PredictedSlowdown)
	}
	if out.Sim.Slowdown < out.Dave/float64(out.Sim.GuestSteps) {
		t.Fatalf("slowdown %g impossibly small for one crossing of d_ave %g",
			out.Sim.Slowdown, out.Dave)
	}
}

// Slowdown must converge as guest steps grow: the measured per-step cost at
// 4 rounds should be close to the cost at 2 rounds (no unbounded startup
// transient or leak).
func TestSlowdownConverges(t *testing.T) {
	delays := bimodalLine(256, 64, 21)
	short, err := SimulateLine(delays, Options{Variant: TwoLevel, Beta: 2, Steps: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	long, err := SimulateLine(delays, Options{Variant: TwoLevel, Beta: 2, Steps: 128, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ratio := long.Sim.Slowdown / short.Sim.Slowdown
	if ratio > 1.5 || ratio < 0.4 {
		t.Fatalf("slowdown not stable: %.1f at 32 steps vs %.1f at 128 (ratio %.2f)",
			short.Sim.Slowdown, long.Sim.Slowdown, ratio)
	}
}

// Soak: a large verified end-to-end run exercising killing, two-level
// margins, the parallel engine and parallel verification together.
func TestSoakLargeVerifiedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	delays := bimodalLine(2048, 512, 33)
	delays[1024] = 10_000_000 // trigger killing too
	out, err := SimulateLine(delays, Options{
		Variant: TwoLevel, Beta: 2, SqrtD: 8, Steps: 48, Seed: 44,
		Workers: 4, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Sim.Checked {
		t.Fatal("not verified")
	}
	if out.KilledStage1 == 0 {
		t.Fatal("expected killing")
	}
	t.Logf("soak: guest=%d load=%d slowdown=%.1f pebbles=%d",
		out.GuestCols, out.Load, out.Sim.Slowdown, out.Sim.PebblesComputed)
}

// End to end on the Theorem 10 host: H2 is a line, so OVERLAP runs on it
// directly, killing nothing (constant d_ave) and verifying values.
func TestOverlapOnH2Host(t *testing.T) {
	spec := network.H2(1024)
	out, err := SimulateLine(delaysOf(spec.Net), Options{
		Variant: TwoLevel, Beta: 2, Steps: 24, Seed: 12, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Sim.Checked {
		t.Fatal("unchecked")
	}
	// with many copies allowed, OVERLAP beats the two-copy Omega(log n)
	// wall only by paying load; sanity: slowdown within the d-bound
	if out.Sim.Slowdown > float64(spec.D)*8 {
		t.Fatalf("slowdown %.1f far above d=%d", out.Sim.Slowdown, spec.D)
	}
}
