package overlap

import (
	"testing"

	"latencyhide/internal/network"
	"latencyhide/internal/tree"
)

func unitLine(n int) []int {
	d := make([]int, n-1)
	for i := range d {
		d[i] = 1
	}
	return d
}

func TestScheduleRecurrenceMatchesClosedForm(t *testing.T) {
	for _, n := range []int{256, 1024, 4096} {
		tr := tree.Build(unitLine(n), 4)
		s, err := BuildSchedule(tr, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(s.RoundBound())
		want := float64(s.Closed())
		// The closed form assumes m_k halves exactly; integer m_k peel
		// up to one extra half-box per level, so agreement is within a
		// constant factor, not exact.
		if got < want/4 || got > want*4 {
			t.Fatalf("n=%d: recurrence %v vs closed form %v", n, got, want)
		}
		// Theorem 2 proof's bound (same integer-peeling caveat):
		// m_0 + 2 c d_ave n log^2 n.
		logn := float64(tr.LogN)
		proof := float64(tr.Mk(0)) + 2*4*tr.Dave*float64(n)*logn*logn
		if got > proof*4 {
			t.Fatalf("n=%d: s_m0 %v far exceeds the proof bound %v", n, got, proof)
		}
		if got < proof/64 {
			t.Fatalf("n=%d: s_m0 %v suspiciously far below the proof bound %v", n, got, proof)
		}
	}
}

func TestScheduleStRules(t *testing.T) {
	tr := tree.Build(unitLine(512), 4)
	s, err := BuildSchedule(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	// base level: s_t = t * base
	kmax := s.KMax
	for tt := 1; tt <= tr.Mk(kmax); tt++ {
		v, err := s.St(kmax, tt)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(tt) {
			t.Fatalf("s_%d^(kmax) = %d", tt, v)
		}
	}
	// rule 2: s_t^(k) = s_t^(k+1) + D_k for t <= m_{k+1}
	for k := 0; k < kmax; k++ {
		m1 := tr.Mk(k + 1)
		for _, tt := range []int{1, m1 / 2, m1} {
			if tt < 1 {
				continue
			}
			a, err := s.St(k, tt)
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.St(k+1, tt)
			if err != nil {
				t.Fatal(err)
			}
			if a != b+int64(tr.Dk(k)) {
				t.Fatalf("rule 2 broken at k=%d t=%d: %d vs %d + D_k", k, tt, a, b)
			}
		}
	}
	// rule 3: s_{m_k}^(k) = 2 s_{m_{k+1}}^(k) ... via SAtM consistency
	for k := 0; k <= kmax; k++ {
		v, err := s.St(k, tr.Mk(k))
		if err != nil {
			t.Fatal(err)
		}
		if v != s.SAtM[k] {
			t.Fatalf("SAtM[%d] = %d but St gives %d", k, s.SAtM[k], v)
		}
	}
	// monotone in t
	prev := int64(0)
	for tt := 1; tt <= tr.Mk(0); tt += tr.Mk(0)/7 + 1 {
		v, err := s.St(0, tt)
		if err != nil {
			t.Fatal(err)
		}
		if v <= prev {
			t.Fatalf("s_t not increasing at t=%d", tt)
		}
		prev = v
	}
	// out-of-range errors
	if _, err := s.St(0, 0); err == nil {
		t.Fatal("t=0 accepted")
	}
	if _, err := s.St(kmax+1, 1); err == nil {
		t.Fatal("k beyond kmax accepted")
	}
	if _, err := BuildSchedule(tr, 0); err == nil {
		t.Fatal("base 0 accepted")
	}
}

// The greedy engine must finish one outer round no later than the schedule
// Theorem 1 constructs (greedy executes a superset of feasible orders).
func TestGreedyBeatsSchedule(t *testing.T) {
	hosts := map[string][]int{
		"unit":    unitLine(256),
		"uniform": delaysOf(network.Line(256, network.UniformDelay{Lo: 1, Hi: 16}, 3)),
		"bimodal": delaysOf(network.Line(256, network.BimodalDelay{Near: 1, Far: 64, P: 0.02}, 4)),
	}
	for name, delays := range hosts {
		tr := tree.Build(delays, 4)
		s, err := BuildSchedule(tr, 1)
		if err != nil {
			t.Fatal(err)
		}
		out, err := SimulateLine(delays, Options{Variant: LoadOne, Steps: s.RoundSteps(), Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if out.Sim.HostSteps > s.RoundBound() {
			t.Fatalf("%s: greedy %d steps > schedule bound %d", name, out.Sim.HostSteps, s.RoundBound())
		}
		if out.Sim.Slowdown > s.SlowdownBound() {
			t.Fatalf("%s: greedy slowdown %.1f > schedule %.1f", name, out.Sim.Slowdown, s.SlowdownBound())
		}
	}
}

func TestScheduleBlockedBase(t *testing.T) {
	tr := tree.Build(unitLine(256), 4)
	s1, _ := BuildSchedule(tr, 1)
	s8, _ := BuildSchedule(tr, 8)
	if s8.RoundBound() <= s1.RoundBound() {
		t.Fatal("blocked base must lengthen the round")
	}
	// the work term scales with the base, the delay term does not
	if s8.RoundBound()-s1.RoundBound() != 7*(s1.RoundBound()-2*int64(s1.KMax)*int64(tr.Dk(0))) {
		// per the closed form: difference = (base-1) * 2^kmax * m_kmax
		diff := s8.RoundBound() - s1.RoundBound()
		want := int64(7) * (int64(1) << uint(s1.KMax)) * int64(tr.Mk(s1.KMax))
		if diff != want {
			t.Fatalf("base scaling: diff %d want %d", diff, want)
		}
	}
}
