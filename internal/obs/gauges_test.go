package obs_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
	"latencyhide/internal/obs"
	"latencyhide/internal/sim"
	"latencyhide/internal/tree"
)

// ChunkTable's layout is a contract with everything that scrapes latencysim
// output, so the rendering of a fixed gauge set is pinned exactly. Gauges are
// hand-built: a table from a live run would leak wall-clock fields
// (blocked_ms) into the golden.
func TestChunkTableGolden(t *testing.T) {
	gs := []obs.ChunkGauge{
		{Lo: 0, Hi: 512, Pebbles: 1000, Steps: 64, Flushes: 8, BatchedMsgs: 24,
			BlockedAtHorizon: 3, Blocked: 1500 * time.Microsecond},
		{Lo: 512, Hi: 1024, Pebbles: 2000, Steps: 66, Flushes: 10, BatchedMsgs: 10,
			BlockedAtHorizon: 0, Blocked: 0},
	}
	var buf bytes.Buffer
	obs.ChunkTable(gs).Fprint(&buf)
	want := strings.Join([]string{
		"## parallel chunks (engine gauges)",
		"chunk  hosts     pebbles  steps  flushes  msgs/flush  blocked  blocked_ms",
		"-----  --------  -------  -----  -------  ----------  -------  ----------",
		"0      0-512     1000     64     8        3.000       3        1.500",
		"1      512-1024  2000     66     10       1.000       0        0",
		"note: 3000 pebbles across 2 chunks; 34 boundary messages coalesced into 18 updates (1.9 msgs/update)",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("chunk table changed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// No flushes: the note must not divide by zero.
	buf.Reset()
	obs.ChunkTable([]obs.ChunkGauge{{Lo: 0, Hi: 4, Pebbles: 5}}).Fprint(&buf)
	if !strings.Contains(buf.String(), "no boundary batches shipped") {
		t.Fatalf("flushless note wrong:\n%s", buf.String())
	}
}

// The parallel engine fills one ChunkGauge per worker goroutine; under -race
// this checks the gauges are published without data races and that their
// deterministic fields agree with the run result across concurrent readers.
func TestChunkGaugesConcurrent(t *testing.T) {
	delays := make([]int, 255)
	for i := range delays {
		delays[i] = 1 + i%3
	}
	tr := tree.Build(delays, 4)
	a, err := assign.Overlap(tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Delays:  delays,
		Guest:   guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: 24, Seed: 3},
		Assign:  a,
		Workers: 4,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chunks) < 2 {
		t.Fatalf("parallel run produced %d chunk gauges", len(res.Chunks))
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pebbles int64
			prevHi := 0
			for _, g := range res.Chunks {
				if g.Lo != prevHi || g.Hi <= g.Lo {
					t.Errorf("chunk bounds not contiguous: %+v", res.Chunks)
					return
				}
				prevHi = g.Hi
				pebbles += g.Pebbles
			}
			if prevHi != len(delays)+1 {
				t.Errorf("chunks cover [0,%d), want [0,%d)", prevHi, len(delays)+1)
			}
			if pebbles != res.PebblesComputed {
				t.Errorf("gauge pebbles %d != result %d", pebbles, res.PebblesComputed)
			}
			var buf bytes.Buffer
			obs.ChunkTable(res.Chunks).Fprint(&buf)
			if !strings.Contains(buf.String(), "pebbles across") {
				t.Errorf("table render missing note:\n%s", buf.String())
			}
		}()
	}
	wg.Wait()
}
