package obs

import (
	"fmt"
	"time"

	"latencyhide/internal/metrics"
)

// ChunkGauge is the parallel engine's per-chunk execution gauge: how much a
// chunk computed, how often it shipped coalesced boundary batches, and how
// long it sat blocked at its conservative horizon waiting for a neighbor's
// clock. Unlike the canonical event stream, these are wall-clock engine
// measurements — they vary run to run and across worker counts, so they are
// reported next to the stall tiling rather than inside it.
type ChunkGauge struct {
	Lo, Hi           int           // host positions [Lo, Hi)
	Pebbles          int64         // pebbles the chunk computed
	Steps            int64         // final local clock
	Flushes          int64         // coalesced boundary batches shipped
	BatchedMsgs      int64         // messages carried by those batches
	BlockedAtHorizon int64         // times the worker blocked on a neighbor
	Blocked          time.Duration // wall time spent blocked
}

// ChunkTable renders per-chunk gauges as a metrics table, with per-flush
// batching factor and blocked share so straggler chunks stand out.
func ChunkTable(gs []ChunkGauge) *metrics.Table {
	t := metrics.NewTable("parallel chunks (engine gauges)",
		"chunk", "hosts", "pebbles", "steps", "flushes", "msgs/flush", "blocked", "blocked_ms")
	var pebbles, flushes, msgs int64
	for i, g := range gs {
		perFlush := 0.0
		if g.Flushes > 0 {
			perFlush = float64(g.BatchedMsgs) / float64(g.Flushes)
		}
		t.AddRow(i, fmt.Sprintf("%d-%d", g.Lo, g.Hi), g.Pebbles, g.Steps,
			g.Flushes, perFlush, g.BlockedAtHorizon,
			float64(g.Blocked.Microseconds())/1000)
		pebbles += g.Pebbles
		flushes += g.Flushes
		msgs += g.BatchedMsgs
	}
	if flushes > 0 {
		t.AddNote("%d pebbles across %d chunks; %d boundary messages coalesced into %d updates (%.1f msgs/update)",
			pebbles, len(gs), msgs, flushes, float64(msgs)/float64(flushes))
	} else {
		t.AddNote("%d pebbles across %d chunks; no boundary batches shipped", pebbles, len(gs))
	}
	return t
}
