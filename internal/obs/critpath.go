package obs

// CritNode is one compute on the critical path.
type CritNode struct {
	Proc  int32
	Col   int32
	GStep int32
	Step  int64
}

// CriticalPath is the longest compute -> message -> compute dependency chain
// ending at the run's last compute, with its length decomposed into where
// the steps went. Compute + Transit + Queue + Wait == Length always, so the
// shares tile to 1.
type CriticalPath struct {
	// Nodes is the chain in execution order (guest step 1 first).
	Nodes []CritNode
	// Length is the host step of the chain's last compute (== the run
	// length when the chain ends at the final compute).
	Length int64
	// Compute: steps spent computing chain pebbles (one per node).
	Compute int64
	// Transit: steps chain values spent crossing links (pure wire delay).
	Transit int64
	// Queue: steps chain values spent waiting in link injection queues
	// (bandwidth contention).
	Queue int64
	// Wait: remaining steps — a chain value was available but its consumer
	// computed later (local scheduling: compute-per-step contention or the
	// greedy order picking other pebbles first).
	Wait int64
}

// share returns x/Length, or 0 for an empty path.
func (cp *CriticalPath) share(x int64) float64 {
	if cp.Length <= 0 {
		return 0
	}
	return float64(x) / float64(cp.Length)
}

// ComputeShare is the fraction of the path spent computing.
func (cp *CriticalPath) ComputeShare() float64 { return cp.share(cp.Compute) }

// TransitShare is the fraction spent on wire delay.
func (cp *CriticalPath) TransitShare() float64 { return cp.share(cp.Transit) }

// QueueShare is the fraction spent in injection queues.
func (cp *CriticalPath) QueueShare() float64 { return cp.share(cp.Queue) }

// WaitShare is the fraction spent on local scheduling waits.
func (cp *CriticalPath) WaitShare() float64 { return cp.share(cp.Wait) }

// LatencyBoundShare is the fraction explained by computing plus wire delay
// alone — when this is close to 1 the run is latency-bound (the d·T term of
// the Theorem 2 bound binds); a large QueueShare means it is
// bandwidth-bound (the ceil(P/B) term binds).
func (cp *CriticalPath) LatencyBoundShare() float64 {
	return cp.share(cp.Compute + cp.Transit)
}

// CriticalPath extracts the critical chain from the recorded run. It walks
// backward from the canonical last compute event: at each node (col, gstep)
// it finds the dependency (the column itself or a guest neighbor at
// gstep-1) whose value became available at this workstation latest —
// following local computes and recorded deliveries — and charges the gap
// between the two computes to transit, queueing and waiting using the
// reconstructed message path.
func (a *Analysis) CriticalPath() *CriticalPath {
	cp := &CriticalPath{}
	// Canonical chain end: the last compute event in stream order.
	var end *Event
	for i := range a.events {
		e := &a.events[i]
		if e.Kind != KindCompute {
			continue
		}
		if end == nil || end.Step < e.Step || (end.Step == e.Step && less(e, end)) {
			end = e
		}
	}
	if end == nil {
		return cp
	}
	cp.Length = end.Step
	proc, col, gstep, step := end.Proc, end.Col, end.GStep, end.Step
	var rev []CritNode
	for {
		rev = append(rev, CritNode{Proc: proc, Col: col, GStep: gstep, Step: step})
		if gstep <= 1 {
			// First guest step: inputs are initial state, available at step
			// 0; anything before this compute is scheduling wait.
			cp.Compute++
			cp.Wait += step - 1
			break
		}
		// Pick the latest-available dependency value at this workstation.
		// Ties go to the first candidate (own column, then ascending
		// neighbors), keeping the walk deterministic.
		deps := append([]int{int(col)}, a.Info.Neighbors(int(col))...)
		var (
			bestCol   int32 = -1
			bestStep  int64 = -1
			bestLocal bool
		)
		for _, d := range deps {
			k := procKey{proc, int32(d), gstep - 1}
			if s, ok := a.computeAt[k]; ok {
				if s > bestStep {
					bestCol, bestStep, bestLocal = int32(d), s, true
				}
			} else if dv, ok := a.deliverAt[k]; ok {
				if dv.step > bestStep {
					bestCol, bestStep, bestLocal = int32(d), dv.step, false
				}
			}
		}
		if bestCol < 0 {
			// Stream is truncated or inconsistent; stop rather than guess.
			cp.Compute++
			cp.Wait += step - 1
			break
		}
		if bestLocal {
			// Producer computed here: the whole gap minus our compute step
			// is local scheduling wait.
			cp.Compute++
			cp.Wait += step - bestStep - 1
			col, gstep, step = bestCol, gstep-1, bestStep
			continue
		}
		// Value arrived by message: charge wire delay and queueing along the
		// reconstructed path prefix that reaches this workstation, floor the
		// allocations so the leg sums to the gap exactly.
		dv := a.deliverAt[procKey{proc, bestCol, gstep - 1}]
		path := a.paths[pathKey{dv.route, gstep - 1}]
		var transit, queue int64
		srcProc, srcStep := proc, dv.step
		if path != nil {
			srcProc, srcStep = path.sender, path.compute
			for _, h := range path.hops {
				transit += int64(a.delay(h.link))
				if h.inject > h.enqueue {
					queue += h.inject - h.enqueue
				}
				if h.arrivePos == proc {
					break
				}
			}
		}
		gap := step - srcStep // >= 1: value computed at srcStep, consumed at step
		budget := gap - 1     // one step is this node's compute
		if transit > budget {
			transit = budget
		}
		if queue > budget-transit {
			queue = budget - transit
		}
		cp.Compute++
		cp.Transit += transit
		cp.Queue += queue
		cp.Wait += budget - transit - queue
		proc, col, gstep, step = srcProc, bestCol, gstep-1, srcStep
	}
	// Reverse into execution order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	cp.Nodes = rev
	return cp
}
