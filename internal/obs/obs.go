// Package obs is the engine's observability layer: a structured event
// stream recorded by the simulator (package sim), derived instruments
// (per-processor compute heatmaps, per-link queue and bandwidth gauges, a
// stall-cause breakdown), a critical-path extractor over the recorded
// dataflow, and exporters (Chrome trace-event JSON, CSV tables, a JSON run
// summary).
//
// The stream is canonical: events are totally ordered by
// (step, kind, proc, link, dir, col, gstep, route), so the sequential and
// parallel engines — which produce the same event multiset step by step —
// hand identical streams to any Recorder. This extends the engines'
// bit-identical-results guarantee to the observability layer; tests in
// internal/sim assert it.
//
// Recording is opt-in and costs nothing when disabled: the engine guards
// every record call behind a nil check on its Recorder.
package obs

import "sort"

// Kind classifies an event.
type Kind uint8

const (
	// KindCompute: a workstation computed pebble (Col, GStep) at host step
	// Step. Proc is the workstation; Link/Dir/Route are unset.
	KindCompute Kind = iota
	// KindInject: a pebble value was injected into a directed host link
	// (bandwidth consumed). Proc is the sending position, Link the line
	// link index (Link joins positions Link and Link+1), Dir the travel
	// direction, Route the multicast route carrying it.
	KindInject
	// KindDeliver: a pebble value was delivered into a workstation's
	// knowledge table. Proc is the receiving position.
	KindDeliver
	// KindFault: an injected fault was active for Dur steps starting at
	// Step. Fault says which kind; host faults (slowdown, crash) set Proc
	// with Link = -1, link faults (jitter, outage) set Link with Proc = -1.
	// Synthesised from the fault plan after the run, identically by both
	// engines.
	KindFault
	// KindStall: a derived event (never recorded by the engine): Proc was
	// stalled for Dur consecutive steps starting at Step, attributed to
	// Cause. Produced by Analysis.StallSpans.
	KindStall
	// KindAdapt: the adaptive-replication controller activated the standby
	// replica of column Col on Proc, effective at Step (the step after the
	// epoch boundary that decided it). Appended after the run like
	// KindFault, identically by both engines, so the verify oracle can
	// check every activation against the deterministic placement.
	KindAdapt
)

func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindInject:
		return "inject"
	case KindDeliver:
		return "deliver"
	case KindFault:
		return "fault"
	case KindStall:
		return "stall"
	case KindAdapt:
		return "adapt"
	default:
		return "unknown"
	}
}

// Cause attributes a stalled processor-step to its reason.
type Cause uint8

const (
	CauseNone Cause = iota
	// CauseDependency: the workstation had pebbles left but their
	// dependency values were still being computed upstream or in flight on
	// links (latency-bound waiting).
	CauseDependency
	// CauseBandwidth: a value later delivered to this workstation was
	// sitting in a link injection queue (bandwidth-bound waiting).
	CauseBandwidth
	// CauseIdle: the workstation had no pebbles left to compute.
	CauseIdle
	// CauseFault: the stalled steps overlap an injected fault — the
	// workstation itself was slowed or crashed, or a value it was waiting
	// for sat queued behind a link outage.
	CauseFault
)

func (c Cause) String() string {
	switch c {
	case CauseDependency:
		return "dependency"
	case CauseBandwidth:
		return "bandwidth"
	case CauseIdle:
		return "idle"
	case CauseFault:
		return "fault"
	default:
		return "none"
	}
}

// Event is one structured engine event. Field meaning depends on Kind; see
// the Kind constants. Unused int fields hold -1 (Link, Route) or 0.
type Event struct {
	Step  int64
	Kind  Kind
	Proc  int32
	Col   int32
	GStep int32
	Link  int32
	Dir   int8
	Route int32
	Dur   int64     // KindStall/KindFault: span length in steps
	Cause Cause     // KindStall only
	Fault FaultKind // KindFault only
}

// FaultKind says which injected fault a KindFault event reports.
type FaultKind uint8

const (
	FaultNone FaultKind = iota
	// FaultJitter: the link's injections get extra delay throughout the run
	// (jitter has no start/end, so its span covers the whole run).
	FaultJitter
	// FaultOutage: the link was down for the span; queued messages waited.
	FaultOutage
	// FaultSlow: the host's compute rate was capped for the span.
	FaultSlow
	// FaultCrash: the host crash-stopped at Step; the span runs to the end.
	FaultCrash
	// FaultSpike: the link's injections get heavy-tailed extra delay
	// throughout the run (like jitter, the span covers the whole run).
	FaultSpike
)

func (f FaultKind) String() string {
	switch f {
	case FaultJitter:
		return "jitter"
	case FaultOutage:
		return "outage"
	case FaultSlow:
		return "slow"
	case FaultCrash:
		return "crash"
	case FaultSpike:
		return "spike"
	default:
		return "none"
	}
}

// Recorder receives engine events. The engine buffers per chunk and replays
// the merged, canonically ordered stream into the configured Recorder at the
// end of the run, so implementations need not be safe for concurrent use.
type Recorder interface {
	RecordCompute(step int64, proc, col, gstep int32)
	RecordInject(step int64, proc, link int32, dir int8, route, col, gstep int32)
	RecordDeliver(step int64, proc, route, col, gstep int32)
}

// FaultRecorder is optionally implemented by Recorders that want the fault
// telemetry spans (KindFault) a faulty run synthesises; Replay skips them
// for plain Recorders, so existing implementations keep working unchanged.
type FaultRecorder interface {
	RecordFault(step int64, fault FaultKind, proc, link int32, dur int64)
}

// AdaptRecorder is optionally implemented by Recorders that want the
// adaptive-replication controller's activation decisions (KindAdapt);
// Replay skips them for plain Recorders.
type AdaptRecorder interface {
	RecordAdapt(step int64, proc, col int32)
}

// Buffer is the standard Recorder: it appends events to memory for later
// analysis and export.
type Buffer struct {
	events []Event
}

// NewBuffer returns an empty event buffer.
func NewBuffer() *Buffer { return &Buffer{} }

func (b *Buffer) RecordCompute(step int64, proc, col, gstep int32) {
	b.events = append(b.events, Event{
		Step: step, Kind: KindCompute, Proc: proc, Col: col, GStep: gstep,
		Link: -1, Route: -1,
	})
}

func (b *Buffer) RecordInject(step int64, proc, link int32, dir int8, route, col, gstep int32) {
	b.events = append(b.events, Event{
		Step: step, Kind: KindInject, Proc: proc, Col: col, GStep: gstep,
		Link: link, Dir: dir, Route: route,
	})
}

func (b *Buffer) RecordDeliver(step int64, proc, route, col, gstep int32) {
	b.events = append(b.events, Event{
		Step: step, Kind: KindDeliver, Proc: proc, Col: col, GStep: gstep,
		Link: -1, Route: route,
	})
}

func (b *Buffer) RecordFault(step int64, fault FaultKind, proc, link int32, dur int64) {
	b.events = append(b.events, Event{
		Step: step, Kind: KindFault, Fault: fault, Proc: proc, Link: link,
		Dur: dur, Route: -1,
	})
}

func (b *Buffer) RecordAdapt(step int64, proc, col int32) {
	b.events = append(b.events, Event{
		Step: step, Kind: KindAdapt, Proc: proc, Col: col, Link: -1, Route: -1,
	})
}

// Events returns the recorded stream. The slice is owned by the buffer.
func (b *Buffer) Events() []Event { return b.events }

// Len reports the number of recorded events.
func (b *Buffer) Len() int { return len(b.events) }

// less is the canonical total order. No two distinct engine events share a
// full key: a pebble is computed once per holder, injected once per
// (route, gstep, link) and delivered once per (route, gstep, proc).
func less(a, b *Event) bool {
	if a.Step != b.Step {
		return a.Step < b.Step
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Proc != b.Proc {
		return a.Proc < b.Proc
	}
	if a.Link != b.Link {
		return a.Link < b.Link
	}
	if a.Dir != b.Dir {
		return a.Dir < b.Dir
	}
	if a.Col != b.Col {
		return a.Col < b.Col
	}
	if a.GStep != b.GStep {
		return a.GStep < b.GStep
	}
	if a.Route != b.Route {
		return a.Route < b.Route
	}
	return a.Fault < b.Fault
}

// Canonicalize sorts events into the canonical stream order.
func Canonicalize(events []Event) {
	sort.Slice(events, func(i, j int) bool { return less(&events[i], &events[j]) })
}

// Replay feeds events (in their current order) into r. KindStall events are
// derived, not part of the engine stream, and are skipped.
func Replay(events []Event, r Recorder) {
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case KindCompute:
			r.RecordCompute(e.Step, e.Proc, e.Col, e.GStep)
		case KindInject:
			r.RecordInject(e.Step, e.Proc, e.Link, e.Dir, e.Route, e.Col, e.GStep)
		case KindDeliver:
			r.RecordDeliver(e.Step, e.Proc, e.Route, e.Col, e.GStep)
		case KindFault:
			if fr, ok := r.(FaultRecorder); ok {
				fr.RecordFault(e.Step, e.Fault, e.Proc, e.Link, e.Dur)
			}
		case KindAdapt:
			if ar, ok := r.(AdaptRecorder); ok {
				ar.RecordAdapt(e.Step, e.Proc, e.Col)
			}
		}
	}
}

// RunInfo carries the static facts the instruments need alongside the event
// stream. sim.Config.ObsInfo builds it.
type RunInfo struct {
	HostN      int
	HostSteps  int64
	GuestSteps int
	// Delays[i] is the delay of line link (i, i+1); LinkBW[i] its per-step
	// injection bandwidth (resolved, both directions).
	Delays []int
	LinkBW []int
	// ProcPebbles[p] is the total pebbles assigned to position p
	// (owned columns x guest steps).
	ProcPebbles []int64
	// Neighbors returns a guest column's neighbor columns.
	Neighbors func(col int) []int
}
