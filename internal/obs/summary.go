package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"latencyhide/internal/metrics"
)

// LinkSummary is the JSON form of a LinkGauge.
type LinkSummary struct {
	Link        int     `json:"link"`
	Dir         string  `json:"dir"`
	Delay       int     `json:"delay"`
	BW          int     `json:"bw"`
	Injects     int64   `json:"injects"`
	Utilization float64 `json:"utilization"`
	PeakQueue   int     `json:"peakQueue"`
	QueueSteps  int64   `json:"queueSteps"`
}

// Summary is the JSON run summary: everything the derived instruments know,
// in one machine-readable object.
type Summary struct {
	HostN      int   `json:"hostN"`
	HostSteps  int64 `json:"hostSteps"`
	GuestSteps int   `json:"guestSteps"`
	Events     int   `json:"events"`

	ProcSteps       int64   `json:"procSteps"`
	BusySteps       int64   `json:"busySteps"`
	IdleSteps       int64   `json:"idleSteps"`
	DependencySteps int64   `json:"dependencySteps"`
	BandwidthSteps  int64   `json:"bandwidthSteps"`
	FaultSteps      int64   `json:"faultSteps,omitempty"`
	BandwidthShare  float64 `json:"bandwidthShare"`

	CriticalPathLen   int64   `json:"criticalPathLen"`
	CriticalPathNodes int     `json:"criticalPathNodes"`
	CritCompute       int64   `json:"critCompute"`
	CritTransit       int64   `json:"critTransit"`
	CritQueue         int64   `json:"critQueue"`
	CritWait          int64   `json:"critWait"`
	LatencyBoundShare float64 `json:"latencyBoundShare"`

	Links []LinkSummary `json:"links"`
}

// Summarize runs every instrument and collects the results.
func (a *Analysis) Summarize() *Summary {
	sb := a.Stalls()
	cp := a.CriticalPath()
	s := &Summary{
		HostN:      a.Info.HostN,
		HostSteps:  a.Info.HostSteps,
		GuestSteps: a.Info.GuestSteps,
		Events:     len(a.events),

		ProcSteps:       sb.ProcSteps,
		BusySteps:       sb.Busy,
		IdleSteps:       sb.Idle,
		DependencySteps: sb.Dependency,
		BandwidthSteps:  sb.Bandwidth,
		FaultSteps:      sb.Fault,
		BandwidthShare:  sb.BandwidthShare(),

		CriticalPathLen:   cp.Length,
		CriticalPathNodes: len(cp.Nodes),
		CritCompute:       cp.Compute,
		CritTransit:       cp.Transit,
		CritQueue:         cp.Queue,
		CritWait:          cp.Wait,
		LatencyBoundShare: cp.LatencyBoundShare(),
	}
	for _, g := range a.LinkGauges() {
		dir := "right"
		if g.Dir < 0 {
			dir = "left"
		}
		s.Links = append(s.Links, LinkSummary{
			Link: g.Link, Dir: dir, Delay: g.Delay, BW: g.BW,
			Injects: g.Injects, Utilization: g.Utilization,
			PeakQueue: g.PeakQueue, QueueSteps: g.QueueSteps,
		})
	}
	return s
}

// WriteJSON writes the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// StallTable renders the stall-cause breakdown as a metrics table.
func StallTable(sb StallBreakdown) *metrics.Table {
	t := metrics.NewTable("stall-cause breakdown",
		"cause", "proc-steps", "share")
	pct := func(x int64) string {
		if sb.ProcSteps <= 0 {
			return "0%"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(x)/float64(sb.ProcSteps))
	}
	t.AddRow("busy", sb.Busy, pct(sb.Busy))
	t.AddRow("dependency-stall", sb.Dependency, pct(sb.Dependency))
	t.AddRow("bandwidth-stall", sb.Bandwidth, pct(sb.Bandwidth))
	t.AddRow("fault-stall", sb.Fault, pct(sb.Fault))
	t.AddRow("idle", sb.Idle, pct(sb.Idle))
	t.AddRow("total", sb.ProcSteps, pct(sb.ProcSteps))
	return t
}

// CritPathTable renders the critical-path decomposition as a metrics table.
func CritPathTable(cp *CriticalPath) *metrics.Table {
	t := metrics.NewTable("critical path (longest compute->message->compute chain)",
		"component", "steps", "share")
	add := func(name string, x int64, sh float64) {
		t.AddRow(name, x, fmt.Sprintf("%.1f%%", 100*sh))
	}
	add("compute", cp.Compute, cp.ComputeShare())
	add("transit", cp.Transit, cp.TransitShare())
	add("queue", cp.Queue, cp.QueueShare())
	add("wait", cp.Wait, cp.WaitShare())
	t.AddRow("length", cp.Length, "100.0%")
	t.AddNote("%d chain nodes; latency-bound share (compute+transit) %.1f%%",
		len(cp.Nodes), 100*cp.LatencyBoundShare())
	return t
}

// LinkTable renders the per-link gauges as a metrics table.
func LinkTable(gauges []LinkGauge) *metrics.Table {
	t := metrics.NewTable("link gauges",
		"link", "dir", "delay", "bw", "injects", "util", "peakQ", "queue-steps")
	for _, g := range gauges {
		dir := "->"
		if g.Dir < 0 {
			dir = "<-"
		}
		t.AddRow(g.Link, dir, g.Delay, g.BW, g.Injects,
			fmt.Sprintf("%.3f", g.Utilization), g.PeakQueue, g.QueueSteps)
	}
	return t
}

// HeatmapString renders the heatmap as one sparkline row per workstation,
// normalised to the busiest window. Rows are capped at maxRows (0 = all);
// when capped, evenly spaced positions are shown.
func HeatmapString(h *Heatmap, maxRows int) string {
	n := len(h.Counts)
	if n == 0 {
		return ""
	}
	rows := n
	if maxRows > 0 && maxRows < n {
		rows = maxRows
	}
	var peak int64 = 1
	for _, r := range h.Counts {
		for _, c := range r {
			if c > peak {
				peak = c
			}
		}
	}
	ramp := []byte(" .:-=+*#%@")
	var b strings.Builder
	for i := 0; i < rows; i++ {
		p := i * n / rows
		fmt.Fprintf(&b, "p%-5d ", p)
		for _, c := range h.Counts[p] {
			idx := int(c * int64(len(ramp)-1) / peak)
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
