package obs_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
	"latencyhide/internal/obs"
	"latencyhide/internal/sim"
)

// recordedRun executes a seeded random line simulation with recording on
// and returns the canonical stream, the run facts and the result.
func recordedRun(t testing.TB, seed int64, hostN, steps, bandwidth, cps int) ([]obs.Event, obs.RunInfo, *sim.Result) {
	t.Helper()
	cfg, buf := recordedConfig(seed, hostN, steps, bandwidth, cps)
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Events(), cfg.ObsInfo(res), res
}

func recordedConfig(seed int64, hostN, steps, bandwidth, cps int) (sim.Config, *obs.Buffer) {
	r := rand.New(rand.NewSource(seed))
	delays := make([]int, hostN-1)
	for i := range delays {
		delays[i] = 1 + r.Intn(12)
	}
	a, err := assign.UniformBlocks(hostN, 2, 4, 0)
	if err != nil {
		panic(err)
	}
	buf := obs.NewBuffer()
	return sim.Config{
		Delays:         delays,
		Guest:          guest.Spec{Graph: guest.NewLinearArray(a.Columns), Steps: steps, Seed: seed},
		Assign:         a,
		Bandwidth:      bandwidth,
		ComputePerStep: cps,
		Recorder:       buf,
	}, buf
}

// Property: the stall-cause breakdown tiles the run exactly — busy + idle +
// dependency + bandwidth processor-steps equal hostN x hostSteps, and the
// derived stall spans sum to the stalled share.
func TestStallBreakdownSumsProperty(t *testing.T) {
	f := func(seed int64, hostSel, bwSel uint8) bool {
		hostN := 8 + int(hostSel%4)*4
		bw := 1 + int(bwSel%4)
		events, info, _ := recordedRun(t, seed, hostN, 8, bw, 1+int(bwSel%3))
		a := obs.Analyze(events, info)
		sb := a.Stalls()
		if sb.Busy+sb.Idle+sb.Dependency+sb.Bandwidth != sb.ProcSteps {
			t.Logf("seed %d: busy %d + idle %d + dep %d + bw %d != %d",
				seed, sb.Busy, sb.Idle, sb.Dependency, sb.Bandwidth, sb.ProcSteps)
			return false
		}
		var spanTotal int64
		for _, s := range a.StallSpans() {
			if s.Kind != obs.KindStall || s.Dur < 1 {
				return false
			}
			spanTotal += s.Dur
		}
		return spanTotal == sb.Stalled()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Starving the links (B=1) must shift stall attribution toward bandwidth
// relative to the paper's high-bandwidth regime on the same workload.
func TestBandwidthStallDirection(t *testing.T) {
	share := func(bw int) (float64, int64) {
		events, info, _ := recordedRun(t, 3, 16, 10, bw, 4)
		sb := obs.Analyze(events, info).Stalls()
		return sb.BandwidthShare(), sb.Bandwidth
	}
	narrowShare, narrowSteps := share(1)
	wideShare, _ := share(8)
	if narrowSteps == 0 {
		t.Fatal("B=1 run recorded no bandwidth stalls")
	}
	if narrowShare < wideShare {
		t.Fatalf("bandwidth-stall share did not grow when B shrank: B=1 %.3f < B=8 %.3f",
			narrowShare, wideShare)
	}
}

// The critical-path decomposition tiles its length exactly and walks one
// guest step at a time back to step 1.
func TestCriticalPathTiling(t *testing.T) {
	for _, seed := range []int64{2, 9, 23} {
		events, info, res := recordedRun(t, seed, 20, 9, 2, 1)
		cp := obs.Analyze(events, info).CriticalPath()
		if cp.Length != res.HostSteps {
			t.Fatalf("seed %d: path length %d != host steps %d", seed, cp.Length, res.HostSteps)
		}
		if cp.Compute+cp.Transit+cp.Queue+cp.Wait != cp.Length {
			t.Fatalf("seed %d: %d+%d+%d+%d != %d",
				seed, cp.Compute, cp.Transit, cp.Queue, cp.Wait, cp.Length)
		}
		if len(cp.Nodes) != info.GuestSteps {
			t.Fatalf("seed %d: %d chain nodes for %d guest steps", seed, len(cp.Nodes), info.GuestSteps)
		}
		for i, n := range cp.Nodes {
			if int(n.GStep) != i+1 {
				t.Fatalf("seed %d: node %d at guest step %d", seed, i, n.GStep)
			}
			if i > 0 && n.Step <= cp.Nodes[i-1].Step {
				t.Fatalf("seed %d: chain steps not increasing at node %d", seed, i)
			}
		}
		if s := cp.ComputeShare() + cp.TransitShare() + cp.QueueShare() + cp.WaitShare(); s < 0.999 || s > 1.001 {
			t.Fatalf("seed %d: shares sum to %f", seed, s)
		}
	}
}

// Heatmap counts and link gauges must reconcile with the run's aggregate
// counters.
func TestHeatmapAndLinkGauges(t *testing.T) {
	events, info, res := recordedRun(t, 5, 12, 8, 2, 2)
	a := obs.Analyze(events, info)
	h := a.Heatmap(16)
	var total int64
	for _, row := range h.Counts {
		for _, c := range row {
			total += c
		}
	}
	if total != res.PebblesComputed {
		t.Fatalf("heatmap total %d != pebbles %d", total, res.PebblesComputed)
	}
	gauges := a.LinkGauges()
	if len(gauges) != 2*len(info.Delays) {
		t.Fatalf("%d gauges for %d links", len(gauges), len(info.Delays))
	}
	var injects int64
	for _, g := range gauges {
		injects += g.Injects
		if g.Utilization < 0 || g.Utilization > 1 {
			t.Fatalf("link %d dir %d utilization %f", g.Link, g.Dir, g.Utilization)
		}
		if g.QueueSteps < 0 || g.PeakQueue < 0 {
			t.Fatalf("link %d negative gauge: %+v", g.Link, g)
		}
	}
	if injects != res.MessageHops {
		t.Fatalf("gauge injects %d != hops %d", injects, res.MessageHops)
	}
	if res.MaxQueueDepth > 0 {
		peak := 0
		for _, g := range gauges {
			if g.PeakQueue > peak {
				peak = g.PeakQueue
			}
		}
		if peak != res.MaxQueueDepth {
			t.Fatalf("reconstructed peak queue %d != engine's %d", peak, res.MaxQueueDepth)
		}
	}
}

// The Chrome trace-event export must be structurally valid: a traceEvents
// array whose entries all carry ph, ts, pid and tid.
func TestChromeTraceSchema(t *testing.T) {
	events, info, _ := recordedRun(t, 4, 10, 6, 2, 2)
	a := obs.Analyze(events, info)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := obs.WriteChromeTraceFile(path, events, a.StallSpans(), info); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	phs := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		ph, _ := ev["ph"].(string)
		phs[ph] = true
		if ph == "X" {
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event %d missing dur: %v", i, ev)
			}
		}
	}
	if !phs["X"] || !phs["i"] {
		t.Fatalf("expected both complete and instant events, got %v", phs)
	}
}

// Replaying a canonical stream into a fresh buffer reproduces it exactly.
func TestReplayRoundTrip(t *testing.T) {
	events, _, _ := recordedRun(t, 6, 10, 6, 2, 1)
	buf := obs.NewBuffer()
	obs.Replay(events, buf)
	got := buf.Events()
	if len(got) != len(events) {
		t.Fatalf("replayed %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d differs after replay: %+v vs %+v", i, got[i], events[i])
		}
	}
}

// Summarize must agree with the individual instruments and survive a JSON
// round trip.
func TestSummaryJSON(t *testing.T) {
	events, info, res := recordedRun(t, 8, 12, 8, 2, 2)
	a := obs.Analyze(events, info)
	s := a.Summarize()
	if s.HostSteps != res.HostSteps || s.Events != len(events) {
		t.Fatalf("summary %+v vs result %+v", s, res)
	}
	if s.BusySteps+s.IdleSteps+s.DependencySteps+s.BandwidthSteps != s.ProcSteps {
		t.Fatalf("summary breakdown does not tile: %+v", s)
	}
	var out bytes.Buffer
	if err := s.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var back obs.Summary
	if err := json.Unmarshal(out.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.HostSteps != s.HostSteps || len(back.Links) != len(s.Links) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, s)
	}
}

// Degenerate inputs: an empty stream must not panic anywhere.
func TestEmptyStream(t *testing.T) {
	info := obs.RunInfo{HostN: 4, Delays: []int{1, 1, 1}, LinkBW: []int{1, 1, 1},
		ProcPebbles: make([]int64, 4), Neighbors: func(int) []int { return nil }}
	a := obs.Analyze(nil, info)
	if sb := a.Stalls(); sb.Busy != 0 || sb.Stalled() != 0 {
		t.Fatalf("empty stalls %+v", sb)
	}
	if cp := a.CriticalPath(); cp.Length != 0 || len(cp.Nodes) != 0 {
		t.Fatalf("empty critical path %+v", cp)
	}
	if spans := a.StallSpans(); len(spans) != 0 {
		t.Fatalf("empty stream produced stall spans %v", spans)
	}
	a.Heatmap(8)
	a.LinkGauges()
	a.Summarize()
}
