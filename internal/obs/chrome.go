package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ChromeEvent is one entry of the Chrome trace-event format (the JSON shape
// chrome://tracing, Perfetto and speedscope load). Host steps map to
// microseconds 1:1.
type ChromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace-event JSON object.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// BuildChromeTrace converts the recorded stream into trace-event form: one
// pid-0 track per workstation (tid = position) holding compute slices and
// derived stall slices, plus instant events for link injections and
// deliveries. Pass the result of Analysis.StallSpans as stalls, or nil to
// omit stall slices.
func BuildChromeTrace(events []Event, stalls []Event, info RunInfo) *ChromeTrace {
	tr := &ChromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"hostN":      fmt.Sprintf("%d", info.HostN),
			"hostSteps":  fmt.Sprintf("%d", info.HostSteps),
			"guestSteps": fmt.Sprintf("%d", info.GuestSteps),
			"timeUnit":   "1us = 1 host step",
		},
	}
	for i := range events {
		e := &events[i]
		switch e.Kind {
		case KindCompute:
			tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
				Name: fmt.Sprintf("compute c%d t%d", e.Col, e.GStep),
				Cat:  "compute", Ph: "X", Ts: e.Step, Dur: 1,
				Pid: 0, Tid: int(e.Proc),
				Args: map[string]string{
					"col":   fmt.Sprintf("%d", e.Col),
					"gstep": fmt.Sprintf("%d", e.GStep),
				},
			})
		case KindInject:
			dir := "right"
			if e.Dir < 0 {
				dir = "left"
			}
			tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
				Name: fmt.Sprintf("inject c%d t%d link%d %s", e.Col, e.GStep, e.Link, dir),
				Cat:  "inject", Ph: "i", Ts: e.Step,
				Pid: 0, Tid: int(e.Proc), S: "t",
				Args: map[string]string{
					"link":  fmt.Sprintf("%d", e.Link),
					"dir":   dir,
					"route": fmt.Sprintf("%d", e.Route),
				},
			})
		case KindDeliver:
			tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
				Name: fmt.Sprintf("deliver c%d t%d", e.Col, e.GStep),
				Cat:  "deliver", Ph: "i", Ts: e.Step,
				Pid: 0, Tid: int(e.Proc), S: "t",
				Args: map[string]string{
					"col":   fmt.Sprintf("%d", e.Col),
					"gstep": fmt.Sprintf("%d", e.GStep),
					"route": fmt.Sprintf("%d", e.Route),
				},
			})
		case KindFault:
			// Host faults land on the host's track; link faults go on a
			// dedicated pid-1 track indexed by link.
			pid, tid := 0, int(e.Proc)
			if e.Proc < 0 {
				pid, tid = 1, int(e.Link)
			}
			tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
				Name: "fault: " + e.Fault.String(),
				Cat:  "fault", Ph: "X", Ts: e.Step, Dur: e.Dur,
				Pid: pid, Tid: tid,
				Args: map[string]string{
					"fault": e.Fault.String(),
					"link":  fmt.Sprintf("%d", e.Link),
				},
			})
		}
	}
	for i := range stalls {
		e := &stalls[i]
		if e.Kind != KindStall {
			continue
		}
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: "stall: " + e.Cause.String(),
			Cat:  "stall", Ph: "X", Ts: e.Step, Dur: e.Dur,
			Pid: 0, Tid: int(e.Proc),
			Args: map[string]string{"cause": e.Cause.String()},
		})
	}
	return tr
}

// WriteChromeTrace writes the trace-event JSON to w.
func (tr *ChromeTrace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// WriteChromeTraceFile builds the trace and writes it to path.
func WriteChromeTraceFile(path string, events []Event, stalls []Event, info RunInfo) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	tr := BuildChromeTrace(events, stalls, info)
	if err := tr.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
