package obs

import "sort"

// interval is an inclusive step range [lo, hi].
type interval struct{ lo, hi int64 }

// mergeIntervals sorts and coalesces overlapping/adjacent intervals.
func mergeIntervals(ivs []interval) []interval {
	if len(ivs) == 0 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].lo != ivs[j].lo {
			return ivs[i].lo < ivs[j].lo
		}
		return ivs[i].hi < ivs[j].hi
	})
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.lo <= last.hi+1 {
			if iv.hi > last.hi {
				last.hi = iv.hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// pathKey identifies one multicast message instance: the pebbles of (route,
// gstep) travel as a single relayed message.
type pathKey struct {
	route int32
	gstep int32
}

// hop is one recorded link crossing of a message, with derived queueing
// facts.
type hop struct {
	link      int32
	dir       int8
	inject    int64 // step the value was injected (left the queue)
	enqueue   int64 // step it entered the queue (producer compute or relay arrival)
	arrivePos int32 // position it reaches after crossing
}

// msgPath is a message's full relay chain in travel order.
type msgPath struct {
	col     int32
	sender  int32
	compute int64 // producer's compute step (first enqueue)
	hops    []hop
}

type procKey struct {
	proc  int32
	col   int32
	gstep int32
}

type delivered struct {
	step  int64
	route int32
}

// Analysis precomputes the per-processor and per-message structures every
// derived instrument shares. Build one per recorded run.
type Analysis struct {
	Info   RunInfo
	events []Event

	computeAt map[procKey]int64     // local compute step of (proc, col, gstep)
	deliverAt map[procKey]delivered // delivery of (col, gstep) into proc
	paths     map[pathKey]*msgPath

	procBusy [][]int64    // sorted distinct compute steps per position
	finish   []int64      // last compute step per position (0 = never)
	queueIv  [][]interval // merged queue-residency intervals of messages later delivered to the position
	// faultIv holds the merged per-position fault exposure: the position's
	// own slowdown/crash spans, plus the outage spans of links that held up
	// messages later delivered to it. Tiling priority: fault > bandwidth >
	// dependency.
	faultIv [][]interval
}

// Analyze builds the shared analysis structures from a canonical event
// stream and its run facts.
func Analyze(events []Event, info RunInfo) *Analysis {
	a := &Analysis{
		Info:      info,
		events:    events,
		computeAt: make(map[procKey]int64),
		deliverAt: make(map[procKey]delivered),
		paths:     make(map[pathKey]*msgPath),
		procBusy:  make([][]int64, info.HostN),
		finish:    make([]int64, info.HostN),
		queueIv:   make([][]interval, info.HostN),
		faultIv:   make([][]interval, info.HostN),
	}
	outageIv := map[int32][]interval{}
	for i := range events {
		e := &events[i]
		if e.Kind == KindFault {
			switch e.Fault {
			case FaultSlow, FaultCrash:
				if e.Proc >= 0 && int(e.Proc) < info.HostN {
					a.faultIv[e.Proc] = append(a.faultIv[e.Proc],
						interval{e.Step, e.Step + e.Dur - 1})
				}
			case FaultOutage:
				outageIv[e.Link] = append(outageIv[e.Link],
					interval{e.Step, e.Step + e.Dur - 1})
			}
			continue
		}
		if e.Proc < 0 || int(e.Proc) >= info.HostN {
			continue
		}
		switch e.Kind {
		case KindCompute:
			a.computeAt[procKey{e.Proc, e.Col, e.GStep}] = e.Step
			a.procBusy[e.Proc] = append(a.procBusy[e.Proc], e.Step)
		case KindInject:
			k := pathKey{e.Route, e.GStep}
			p := a.paths[k]
			if p == nil {
				p = &msgPath{col: e.Col}
				a.paths[k] = p
			}
			arrive := e.Link
			if e.Dir > 0 {
				arrive = e.Link + 1
			}
			p.hops = append(p.hops, hop{link: e.Link, dir: e.Dir, inject: e.Step, arrivePos: arrive})
		case KindDeliver:
			a.deliverAt[procKey{e.Proc, e.Col, e.GStep}] = delivered{step: e.Step, route: e.Route}
		}
	}
	// Busy steps: sort and deduplicate (ComputePerStep > 1 computes several
	// pebbles in one step).
	for p := range a.procBusy {
		b := a.procBusy[p]
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		out := b[:0]
		for _, s := range b {
			if len(out) == 0 || out[len(out)-1] != s {
				out = append(out, s)
			}
		}
		a.procBusy[p] = out
		if len(out) > 0 {
			a.finish[p] = out[len(out)-1]
		}
	}
	// Message paths: order hops by step (relaying is strictly step-ordered),
	// recover the sender and producer compute step, then derive each hop's
	// enqueue step: the producer enqueues at its compute step, relays at the
	// previous hop's arrival step.
	for gk, p := range a.paths {
		sort.Slice(p.hops, func(i, j int) bool { return p.hops[i].inject < p.hops[j].inject })
		h0 := p.hops[0]
		p.sender = h0.link
		if h0.dir < 0 {
			p.sender = h0.link + 1
		}
		p.compute = a.computeAt[procKey{p.sender, p.col, gk.gstep}]
		prev := p.compute
		for i := range p.hops {
			p.hops[i].enqueue = prev
			prev = p.hops[i].inject + int64(a.delay(p.hops[i].link))
		}
	}
	// Per-position queue intervals: for every delivered message, the steps
	// it spent queued on the hops between its producer and this position.
	// Queue steps that overlap an outage on the hop's link are the fault's
	// doing, not bandwidth contention — credit them to the receiver's fault
	// exposure instead.
	for dk, d := range a.deliverAt {
		p := a.paths[pathKey{d.route, dk.gstep}]
		if p == nil {
			continue
		}
		for _, h := range p.hops {
			if h.inject > h.enqueue {
				q := interval{h.enqueue, h.inject - 1}
				a.queueIv[dk.proc] = append(a.queueIv[dk.proc], q)
				for _, ov := range outageIv[h.link] {
					lo, hi := q.lo, q.hi
					if ov.lo > lo {
						lo = ov.lo
					}
					if ov.hi < hi {
						hi = ov.hi
					}
					if lo <= hi {
						a.faultIv[dk.proc] = append(a.faultIv[dk.proc], interval{lo, hi})
					}
				}
			}
			if h.arrivePos == dk.proc {
				break
			}
		}
	}
	for p := range a.queueIv {
		a.queueIv[p] = mergeIntervals(a.queueIv[p])
		a.faultIv[p] = mergeIntervals(a.faultIv[p])
	}
	return a
}

func (a *Analysis) delay(link int32) int {
	if link < 0 || int(link) >= len(a.Info.Delays) {
		return 1
	}
	return a.Info.Delays[link]
}

// splitBy walks [lo, hi] against sorted disjoint intervals, calling hit for
// the covered sub-ranges and miss for the rest (both in step order, only on
// non-empty ranges).
func splitBy(ivs []interval, lo, hi int64, hit, miss func(lo, hi int64)) {
	i := sort.Search(len(ivs), func(i int) bool { return ivs[i].hi >= lo })
	cur := lo
	for ; i < len(ivs) && ivs[i].lo <= hi; i++ {
		blo, bhi := ivs[i].lo, ivs[i].hi
		if blo < cur {
			blo = cur
		}
		if bhi > hi {
			bhi = hi
		}
		if cur <= blo-1 {
			miss(cur, blo-1)
		}
		hit(blo, bhi)
		cur = bhi + 1
	}
	if cur <= hi {
		miss(cur, hi)
	}
}

// StallSpans derives KindStall events: for every position, the maximal runs
// of steps in [1, last own compute] with work remaining but nothing
// computed, tiled by cause with priority fault > bandwidth > dependency:
// fault-exposed sub-spans first (an injected fault held this position or its
// inbound traffic up), then bandwidth-stalled sub-spans (a value later
// delivered here was sitting in an injection queue), then the
// dependency-stalled remainder. Spans are returned in (step, proc) order.
func (a *Analysis) StallSpans() []Event {
	var spans []Event
	emit := func(proc int32, lo, hi int64, cause Cause) {
		if hi < lo {
			return
		}
		spans = append(spans, Event{
			Step: lo, Kind: KindStall, Proc: proc, Link: -1, Route: -1,
			Dur: hi - lo + 1, Cause: cause,
		})
	}
	for p := 0; p < a.Info.HostN; p++ {
		busy := a.procBusy[p]
		if len(busy) == 0 {
			continue
		}
		qivs, fivs := a.queueIv[p], a.faultIv[p]
		proc := int32(p)
		splitGap := func(lo, hi int64) {
			splitBy(fivs, lo, hi,
				func(l, h int64) { emit(proc, l, h, CauseFault) },
				func(l, h int64) {
					splitBy(qivs, l, h,
						func(l2, h2 int64) { emit(proc, l2, h2, CauseBandwidth) },
						func(l2, h2 int64) { emit(proc, l2, h2, CauseDependency) })
				})
		}
		prev := int64(0) // step 0 is initial state; work exists from step 1
		for _, b := range busy {
			if b > prev+1 {
				splitGap(prev+1, b-1)
			}
			prev = b
		}
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Step != spans[j].Step {
			return spans[i].Step < spans[j].Step
		}
		return spans[i].Proc < spans[j].Proc
	})
	return spans
}

// StallBreakdown attributes every processor-step of the run to exactly one
// of: busy (computed a pebble), idle (no work left), dependency-stalled,
// bandwidth-stalled or fault-stalled.
// Busy + Idle + Dependency + Bandwidth + Fault == ProcSteps.
type StallBreakdown struct {
	ProcSteps  int64 // HostN x HostSteps
	Busy       int64
	Idle       int64
	Dependency int64
	Bandwidth  int64
	Fault      int64
}

// Stalled is the total stalled processor-steps.
func (s StallBreakdown) Stalled() int64 { return s.Dependency + s.Bandwidth + s.Fault }

// FaultShare is the fraction of stalled processor-steps attributed to
// injected faults (0 when nothing stalled).
func (s StallBreakdown) FaultShare() float64 {
	if st := s.Stalled(); st > 0 {
		return float64(s.Fault) / float64(st)
	}
	return 0
}

// BandwidthShare is the fraction of stalled processor-steps attributed to
// bandwidth (0 when nothing stalled).
func (s StallBreakdown) BandwidthShare() float64 {
	if st := s.Stalled(); st > 0 {
		return float64(s.Bandwidth) / float64(st)
	}
	return 0
}

// DependencyShare is the fraction of stalled processor-steps attributed to
// dependency waiting (0 when nothing stalled).
func (s StallBreakdown) DependencyShare() float64 {
	if st := s.Stalled(); st > 0 {
		return float64(s.Dependency) / float64(st)
	}
	return 0
}

// Stalls computes the stall-cause breakdown over the whole run.
func (a *Analysis) Stalls() StallBreakdown {
	sb := StallBreakdown{ProcSteps: int64(a.Info.HostN) * a.Info.HostSteps}
	for p := 0; p < a.Info.HostN; p++ {
		sb.Busy += int64(len(a.procBusy[p]))
		sb.Idle += a.Info.HostSteps - a.finish[p]
	}
	for _, s := range a.StallSpans() {
		switch s.Cause {
		case CauseBandwidth:
			sb.Bandwidth += s.Dur
		case CauseFault:
			sb.Fault += s.Dur
		default:
			sb.Dependency += s.Dur
		}
	}
	return sb
}

// Heatmap is the per-processor compute timeline: Counts[p][w] is the number
// of pebbles position p computed during host steps
// [w*Window+1, (w+1)*Window].
type Heatmap struct {
	Window int
	Counts [][]int64
}

// Heatmap bins compute events into windows of the given size (minimum 1).
func (a *Analysis) Heatmap(window int) *Heatmap {
	if window < 1 {
		window = 1
	}
	windows := int((a.Info.HostSteps-1)/int64(window)) + 1
	if a.Info.HostSteps <= 0 {
		windows = 0
	}
	h := &Heatmap{Window: window, Counts: make([][]int64, a.Info.HostN)}
	for p := range h.Counts {
		h.Counts[p] = make([]int64, windows)
	}
	for i := range a.events {
		e := &a.events[i]
		if e.Kind != KindCompute || int(e.Proc) >= a.Info.HostN {
			continue
		}
		w := int((e.Step - 1) / int64(window))
		if w >= 0 && w < windows {
			h.Counts[e.Proc][w]++
		}
	}
	return h
}

// LinkGauge summarises one directed host link over the run.
type LinkGauge struct {
	Link  int  // line link index: joins positions Link and Link+1
	Dir   int8 // +1 rightward, -1 leftward
	Delay int
	BW    int
	// Injects is the number of pebble values injected (bandwidth consumed).
	Injects int64
	// Utilization is Injects / (BW x HostSteps): the fraction of injection
	// capacity used.
	Utilization float64
	// PeakQueue is the deepest injection backlog observed (messages queued
	// at once, counted at enqueue time).
	PeakQueue int
	// QueueSteps is the total steps messages spent waiting in this link's
	// injection queue.
	QueueSteps int64
}

// LinkGauges derives per-directed-link bandwidth and queue gauges, ordered
// by (link, rightward-first).
func (a *Analysis) LinkGauges() []LinkGauge {
	n := len(a.Info.Delays)
	gauges := make([]LinkGauge, 2*n)
	type edge struct {
		step  int64
		delta int
	}
	sweeps := make([][]edge, 2*n)
	idx := func(link int32, dir int8) int {
		i := int(link) * 2
		if dir < 0 {
			i++
		}
		return i
	}
	for i := 0; i < n; i++ {
		bw := 1
		if i < len(a.Info.LinkBW) && a.Info.LinkBW[i] > 0 {
			bw = a.Info.LinkBW[i]
		}
		gauges[2*i] = LinkGauge{Link: i, Dir: 1, Delay: a.Info.Delays[i], BW: bw}
		gauges[2*i+1] = LinkGauge{Link: i, Dir: -1, Delay: a.Info.Delays[i], BW: bw}
	}
	for _, p := range a.paths {
		for _, h := range p.hops {
			if h.link < 0 || int(h.link) >= n {
				continue
			}
			g := &gauges[idx(h.link, h.dir)]
			g.Injects++
			g.QueueSteps += h.inject - h.enqueue
			sweeps[idx(h.link, h.dir)] = append(sweeps[idx(h.link, h.dir)],
				edge{step: h.enqueue, delta: 1}, edge{step: h.inject, delta: -1})
		}
	}
	for i := range gauges {
		g := &gauges[i]
		if a.Info.HostSteps > 0 && g.BW > 0 {
			g.Utilization = float64(g.Injects) / (float64(g.BW) * float64(a.Info.HostSteps))
		}
		sw := sweeps[i]
		// +1 before -1 at equal steps: depth is measured at enqueue time,
		// matching the engine's peak-queue accounting.
		sort.Slice(sw, func(x, y int) bool {
			if sw[x].step != sw[y].step {
				return sw[x].step < sw[y].step
			}
			return sw[x].delta > sw[y].delta
		})
		depth, peak := 0, 0
		for _, e := range sw {
			depth += e.delta
			if depth > peak {
				peak = depth
			}
		}
		g.PeakQueue = peak
	}
	return gauges
}
