// Package guest implements the paper's "database model" of computation
// (Section 2 of Andrews, Leighton, Metaxas and Zhang, SPAA 1996).
//
// A guest machine is a unit-delay network of m processors g_1..g_m. Each
// processor g_i owns a database b_i. At every step t, g_i consults b_i and
// the pebbles computed at step t-1 by itself and its neighbors, computes
// pebble (i, t), and applies the resulting update to b_i. A pebble records
// both the result of the computation and the change it makes to the database
// — never a snapshot of the database itself, which is assumed too large to
// transmit.
//
// The package makes the model concrete and *checkable*: pebble values are
// 64-bit digests produced by an order-sensitive mixing function of the
// database digest and the dependency values, so any host simulation that
// violates a dependency or applies updates out of order computes different
// values from the sequential reference executor.
package guest

import "fmt"

// Graph is a guest network topology. All links have unit delay. Node ids are
// dense in [0, NumNodes()).
type Graph interface {
	// NumNodes reports the number of guest processors.
	NumNodes() int
	// Neighbors returns node i's neighbors in strictly increasing order,
	// excluding i itself. The result must not be modified.
	Neighbors(i int) []int
	// Name describes the topology for reports.
	Name() string
}

// LinearArray is the m-processor guest linear array used throughout
// Section 3: node i depends on nodes i-1 and i+1.
type LinearArray struct {
	m     int
	neigh [][]int
}

// NewLinearArray returns the guest linear array with m processors.
func NewLinearArray(m int) *LinearArray {
	if m < 1 {
		panic(fmt.Sprintf("guest: linear array size %d", m))
	}
	la := &LinearArray{m: m, neigh: make([][]int, m)}
	for i := 0; i < m; i++ {
		switch {
		case m == 1:
			la.neigh[i] = nil
		case i == 0:
			la.neigh[i] = []int{1}
		case i == m-1:
			la.neigh[i] = []int{m - 2}
		default:
			la.neigh[i] = []int{i - 1, i + 1}
		}
	}
	return la
}

// NumNodes implements Graph.
func (l *LinearArray) NumNodes() int { return l.m }

// Neighbors implements Graph.
func (l *LinearArray) Neighbors(i int) []int { return l.neigh[i] }

// Name implements Graph.
func (l *LinearArray) Name() string { return fmt.Sprintf("guest-line(%d)", l.m) }

// Ring is an m-processor guest ring. A ring can be simulated by a linear
// array with slowdown 2 (Leighton 1992), so the paper states results for
// linear arrays; we provide the ring directly as well.
type Ring struct {
	m     int
	neigh [][]int
}

// NewRing returns the guest ring with m processors (m >= 3).
func NewRing(m int) *Ring {
	if m < 3 {
		panic(fmt.Sprintf("guest: ring size %d < 3", m))
	}
	r := &Ring{m: m, neigh: make([][]int, m)}
	for i := 0; i < m; i++ {
		a, b := (i+m-1)%m, (i+1)%m
		if a > b {
			a, b = b, a
		}
		r.neigh[i] = []int{a, b}
	}
	return r
}

// NumNodes implements Graph.
func (r *Ring) NumNodes() int { return r.m }

// Neighbors implements Graph.
func (r *Ring) Neighbors(i int) []int { return r.neigh[i] }

// Name implements Graph.
func (r *Ring) Name() string { return fmt.Sprintf("guest-ring(%d)", r.m) }

// Mesh is an rows x cols guest 2-dimensional array (Section 5): node (r, c)
// has index r*cols+c and depends on its (up to) four grid neighbors.
type Mesh struct {
	rows, cols int
	neigh      [][]int
}

// NewMesh returns the rows x cols guest array.
func NewMesh(rows, cols int) *Mesh {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("guest: mesh %dx%d", rows, cols))
	}
	m := &Mesh{rows: rows, cols: cols, neigh: make([][]int, rows*cols)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			var ns []int
			if r > 0 {
				ns = append(ns, i-cols)
			}
			if c > 0 {
				ns = append(ns, i-1)
			}
			if c+1 < cols {
				ns = append(ns, i+1)
			}
			if r+1 < rows {
				ns = append(ns, i+cols)
			}
			m.neigh[i] = ns
		}
	}
	return m
}

// NumNodes implements Graph.
func (m *Mesh) NumNodes() int { return m.rows * m.cols }

// Neighbors implements Graph.
func (m *Mesh) Neighbors(i int) []int { return m.neigh[i] }

// Name implements Graph.
func (m *Mesh) Name() string { return fmt.Sprintf("guest-mesh(%dx%d)", m.rows, m.cols) }

// Rows reports the mesh height.
func (m *Mesh) Rows() int { return m.rows }

// Cols reports the mesh width.
func (m *Mesh) Cols() int { return m.cols }

// Custom is an arbitrary guest graph built from an adjacency list. It lets
// the open-question experiments (Section 7) run guests with the same
// structure as the host.
type Custom struct {
	name  string
	neigh [][]int
}

// NewCustom builds a guest graph from adjacency lists. Each list is sorted
// and deduplicated; self references are removed.
func NewCustom(name string, adjacency [][]int) *Custom {
	c := &Custom{name: name, neigh: make([][]int, len(adjacency))}
	for i, ns := range adjacency {
		seen := make(map[int]bool, len(ns))
		var out []int
		for _, v := range ns {
			if v == i || v < 0 || v >= len(adjacency) || seen[v] {
				continue
			}
			seen[v] = true
			out = append(out, v)
		}
		sortInts(out)
		c.neigh[i] = out
	}
	return c
}

// NumNodes implements Graph.
func (c *Custom) NumNodes() int { return len(c.neigh) }

// Neighbors implements Graph.
func (c *Custom) Neighbors(i int) []int { return c.neigh[i] }

// Name implements Graph.
func (c *Custom) Name() string { return c.name }

func sortInts(a []int) {
	// insertion sort; neighbor lists are tiny (bounded degree)
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// MaxDegree reports the maximum neighbor count over all nodes of g.
func MaxDegree(g Graph) int {
	best := 0
	for i := 0; i < g.NumNodes(); i++ {
		if d := len(g.Neighbors(i)); d > best {
			best = d
		}
	}
	return best
}
