package guest

import (
	"testing"
	"testing/quick"
)

func TestLinearArrayNeighbors(t *testing.T) {
	la := NewLinearArray(5)
	cases := [][]int{{1}, {0, 2}, {1, 3}, {2, 4}, {3}}
	for i, want := range cases {
		got := la.Neighbors(i)
		if len(got) != len(want) {
			t.Fatalf("node %d: %v want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("node %d: %v want %v", i, got, want)
			}
		}
	}
	if NewLinearArray(1).Neighbors(0) != nil {
		t.Fatal("single node has no neighbors")
	}
	if MaxDegree(la) != 2 {
		t.Fatalf("max degree %d", MaxDegree(la))
	}
}

func TestRingNeighbors(t *testing.T) {
	r := NewRing(5)
	if ns := r.Neighbors(0); ns[0] != 1 || ns[1] != 4 {
		t.Fatalf("ring node 0 neighbors %v", ns)
	}
	if ns := r.Neighbors(3); ns[0] != 2 || ns[1] != 4 {
		t.Fatalf("ring node 3 neighbors %v", ns)
	}
	for i := 0; i < 5; i++ {
		if len(r.Neighbors(i)) != 2 {
			t.Fatalf("ring node %d degree != 2", i)
		}
	}
}

func TestMeshNeighbors(t *testing.T) {
	m := NewMesh(3, 4)
	if m.NumNodes() != 12 || m.Rows() != 3 || m.Cols() != 4 {
		t.Fatal("mesh dims")
	}
	// corner
	if ns := m.Neighbors(0); len(ns) != 2 || ns[0] != 1 || ns[1] != 4 {
		t.Fatalf("corner neighbors %v", ns)
	}
	// interior (1,1) = 5: up 1, left 4, right 6, down 9
	want := []int{1, 4, 6, 9}
	got := m.Neighbors(5)
	if len(got) != 4 {
		t.Fatalf("interior neighbors %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interior neighbors %v want %v", got, want)
		}
	}
}

func TestNeighborsSortedProperty(t *testing.T) {
	graphs := []Graph{NewLinearArray(9), NewRing(8), NewMesh(5, 7),
		NewCustom("x", [][]int{{3, 1, 2}, {0}, {0}, {0, 0, 5, -1, 99}})}
	for _, g := range graphs {
		for i := 0; i < g.NumNodes(); i++ {
			ns := g.Neighbors(i)
			for j := 1; j < len(ns); j++ {
				if ns[j-1] >= ns[j] {
					t.Fatalf("%s node %d neighbors not strictly sorted: %v", g.Name(), i, ns)
				}
			}
			for _, v := range ns {
				if v == i || v < 0 || v >= g.NumNodes() {
					t.Fatalf("%s node %d bad neighbor %d", g.Name(), i, v)
				}
			}
		}
	}
}

func TestCustomDedupAndFilter(t *testing.T) {
	c := NewCustom("c", [][]int{{1, 1, 2, 0, -5, 42}, {0}, {0}})
	ns := c.Neighbors(0)
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 2 {
		t.Fatalf("custom neighbors %v", ns)
	}
}

func TestMixDBApplyAndClone(t *testing.T) {
	db := NewMixDB(3, 7)
	if db.Node() != 3 || db.Version() != 0 {
		t.Fatal("fresh db")
	}
	d0 := db.Digest()
	db.Apply(Update{Node: 3, Step: 1, Val: 100})
	if db.Version() != 1 || db.Digest() == d0 {
		t.Fatal("apply did not change state")
	}
	clone := db.Clone()
	db.Apply(Update{Node: 3, Step: 2, Val: 200})
	if clone.Version() != 1 {
		t.Fatal("clone shares state")
	}
	clone.Apply(Update{Node: 3, Step: 2, Val: 200})
	if clone.Digest() != db.Digest() {
		t.Fatal("same updates, different digests")
	}
	if db.Size() <= 0 {
		t.Fatal("size must be positive")
	}
}

func TestMixDBOrderSensitive(t *testing.T) {
	a, b := NewMixDB(0, 1), NewMixDB(0, 1)
	a.Apply(Update{Node: 0, Step: 1, Val: 5})
	a.Apply(Update{Node: 0, Step: 2, Val: 9})
	b.Apply(Update{Node: 0, Step: 1, Val: 9})
	b.Apply(Update{Node: 0, Step: 2, Val: 5})
	if a.Digest() == b.Digest() {
		t.Fatal("digest not order-sensitive")
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestDatabasePanics(t *testing.T) {
	for name, factory := range map[string]Factory{"mix": NewMixDB, "kv": KVFactory(16)} {
		db := factory(2, 1)
		mustPanic(t, name+" wrong node", func() {
			db.Apply(Update{Node: 3, Step: 1, Val: 1})
		})
		mustPanic(t, name+" skipped step", func() {
			db.Apply(Update{Node: 2, Step: 2, Val: 1})
		})
		db.Apply(Update{Node: 2, Step: 1, Val: 1})
		mustPanic(t, name+" replayed step", func() {
			db.Apply(Update{Node: 2, Step: 1, Val: 1})
		})
	}
}

func TestKVDBBehaviour(t *testing.T) {
	f := KVFactory(8)
	a := f(0, 3).(*KVDB)
	b := f(0, 3).(*KVDB)
	if a.Digest() != b.Digest() {
		t.Fatal("same factory+seed must give equal initial digests")
	}
	if f(1, 3).Digest() == a.Digest() {
		t.Fatal("different nodes must differ")
	}
	if a.NumCells() != 8 {
		t.Fatalf("cells %d", a.NumCells())
	}
	d0 := a.Digest()
	a.Apply(Update{Node: 0, Step: 1, Val: 13})
	if a.Digest() == d0 {
		t.Fatal("apply did not change digest")
	}
	idx := int(uint64(13) % 8)
	if a.Cell(idx) == b.Cell(idx) {
		t.Fatal("update did not write the chosen cell")
	}
	// clone independence
	c := a.Clone()
	a.Apply(Update{Node: 0, Step: 2, Val: 99})
	if c.Version() != 1 {
		t.Fatal("clone shares version")
	}
	if a.Size() <= 8*8 {
		t.Fatalf("size %d too small", a.Size())
	}
	if KVFactory(0)(0, 1).(*KVDB).NumCells() != 1 {
		t.Fatal("cells clamp")
	}
}

func TestComputeValueOrderSensitive(t *testing.T) {
	n := []uint64{1, 2}
	m := []uint64{2, 1}
	if ComputeValue(7, 3, 4, 9, n) == ComputeValue(7, 3, 4, 9, m) {
		t.Fatal("neighbor order must matter")
	}
	if ComputeValue(7, 3, 4, 9, n) == ComputeValue(8, 3, 4, 9, n) {
		t.Fatal("db digest must matter")
	}
	if ComputeValue(7, 3, 4, 9, n) == ComputeValue(7, 2, 4, 9, n) {
		t.Fatal("node must matter")
	}
	if ComputeValue(7, 3, 4, 9, n) == ComputeValue(7, 3, 5, 9, n) {
		t.Fatal("step must matter")
	}
}

func TestInitValueSeedDependence(t *testing.T) {
	if InitValue(0, 1) == InitValue(0, 2) {
		t.Fatal("seed must matter")
	}
	if InitValue(0, 1) == InitValue(1, 1) {
		t.Fatal("node must matter")
	}
	if InitValue(5, 9) != InitValue(5, 9) {
		t.Fatal("must be deterministic")
	}
}

func TestMix64IsBijectivelyScrambling(t *testing.T) {
	// sanity: no collisions among a decent sample (splitmix64 is a
	// bijection, so none can occur; this guards the constants)
	seen := make(map[uint64]bool, 10000)
	for i := uint64(0); i < 10000; i++ {
		v := mix64(i)
		if seen[v] {
			t.Fatalf("collision at %d", i)
		}
		seen[v] = true
	}
}

func TestReferenceRunMatchesDigest(t *testing.T) {
	spec := Spec{Graph: NewLinearArray(17), Steps: 23, Seed: 5}
	full, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	light, err := RunDigest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if full.Work != light.Work || full.Work != 17*23 {
		t.Fatalf("work %d vs %d", full.Work, light.Work)
	}
	for i := 0; i < 17; i++ {
		if full.Values[23][i] != light.LastRow[i] {
			t.Fatalf("last row mismatch at %d", i)
		}
		if full.FinalDigests[i] != light.FinalDigests[i] {
			t.Fatalf("digest mismatch at %d", i)
		}
	}
	if full.Value(3, 0) != InitValue(3, 5) {
		t.Fatal("row 0 must be initial values")
	}
}

func TestReferenceAcrossGraphs(t *testing.T) {
	for _, g := range []Graph{NewRing(9), NewMesh(4, 5), NewLinearArray(3)} {
		spec := Spec{Graph: g, Steps: 9, Seed: 2}
		a, err := RunDigest(spec)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		b, err := RunDigest(spec)
		if err != nil {
			t.Fatal(err)
		}
		if a.Checksum != b.Checksum {
			t.Fatalf("%s: nondeterministic", g.Name())
		}
		c, err := RunDigest(Spec{Graph: g, Steps: 9, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if a.Checksum == c.Checksum {
			t.Fatalf("%s: seed does not affect result", g.Name())
		}
	}
}

func TestReferenceKVDatabase(t *testing.T) {
	spec := Spec{Graph: NewLinearArray(6), Steps: 8, Seed: 4, NewDatabase: KVFactory(32)}
	a, err := RunDigest(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2 := spec
	spec2.NewDatabase = nil // MixDB
	b, err := RunDigest(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum == b.Checksum {
		t.Fatal("database implementation must influence values (digests differ)")
	}
}

func TestReferenceCustomOp(t *testing.T) {
	// op = max of self and neighbors: values stay constant at the global
	// max once propagated.
	op := func(_ uint64, _ int, _ int, self uint64, neighbors []uint64) uint64 {
		best := self
		for _, v := range neighbors {
			if v > best {
				best = v
			}
		}
		return best
	}
	init := func(node int, _ int64) uint64 { return uint64(node * 10) }
	m := 9
	res, err := Run(Spec{Graph: NewLinearArray(m), Steps: m, Seed: 0, Op: op, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		if got := res.Value(i, m); got != uint64((m-1)*10) {
			t.Fatalf("max did not propagate to node %d: %d", i, got)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{}).Validate(); err == nil {
		t.Fatal("nil graph must fail")
	}
	if err := (Spec{Graph: NewLinearArray(2), Steps: -1}).Validate(); err == nil {
		t.Fatal("negative steps must fail")
	}
	if _, err := Run(Spec{}); err == nil {
		t.Fatal("Run must validate")
	}
	if _, err := RunDigest(Spec{Steps: -1, Graph: NewLinearArray(1)}); err == nil {
		t.Fatal("RunDigest must validate")
	}
}

func TestZeroStepRun(t *testing.T) {
	res, err := Run(Spec{Graph: NewLinearArray(4), Steps: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Work != 0 || len(res.Values) != 1 {
		t.Fatalf("zero-step run: %+v", res)
	}
}

func TestPebbleDelta(t *testing.T) {
	p := Pebble{Node: 2, Step: 5, Value: 77}
	d := p.Delta()
	if d.Node != 2 || d.Step != 5 || d.Val != 77 {
		t.Fatalf("delta %+v", d)
	}
}

// Property: replaying a database's update log on a clone of its initial
// state reproduces the digest (the engine relies on this for replicas).
func TestDatabaseReplayProperty(t *testing.T) {
	f := func(vals []uint64, node uint8, seed int64) bool {
		if len(vals) > 64 {
			vals = vals[:64]
		}
		orig := NewMixDB(int(node), seed)
		replica := orig.Clone()
		for i, v := range vals {
			orig.Apply(Update{Node: int(node), Step: i + 1, Val: v})
		}
		for i, v := range vals {
			replica.Apply(Update{Node: int(node), Step: i + 1, Val: v})
		}
		return orig.Digest() == replica.Digest() && orig.Version() == replica.Version()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNullDB(t *testing.T) {
	db := NewNullDB(4, 9)
	if db.Digest() != 0 || db.Size() != 0 || db.Node() != 4 {
		t.Fatal("null db basics")
	}
	db.Apply(Update{Node: 4, Step: 1, Val: 123})
	if db.Digest() != 0 || db.Version() != 1 {
		t.Fatal("null db must stay stateless but count versions")
	}
	mustPanic(t, "null wrong node", func() { db.Apply(Update{Node: 5, Step: 2}) })
	mustPanic(t, "null wrong step", func() { db.Apply(Update{Node: 4, Step: 5}) })
	c := db.Clone()
	db.Apply(Update{Node: 4, Step: 2})
	if c.Version() != 1 {
		t.Fatal("clone shares version")
	}
	// with NullDB, values are memoryless: two specs differing only in
	// database implementation give different results, but NullDB vs
	// NullDB with different seeds differ only through Init
	a, err := RunDigest(Spec{Graph: NewLinearArray(5), Steps: 4, Seed: 1, NewDatabase: NewNullDB})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDigest(Spec{Graph: NewLinearArray(5), Steps: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.LastRow[2] == b.LastRow[2] {
		t.Fatal("null and mix databases should produce different values")
	}
}

func TestRunDigestParallelMatchesSequential(t *testing.T) {
	for _, g := range []Graph{NewLinearArray(700), NewRing(512), NewMesh(20, 30)} {
		for _, op := range []Op{nil, func(db uint64, n, s int, self uint64, ns []uint64) uint64 {
			v := db + self
			for _, x := range ns {
				v ^= x
			}
			return v
		}} {
			spec := Spec{Graph: g, Steps: 11, Seed: 3, Op: op}
			seq, err := RunDigest(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 2, 3, 7} {
				par, err := RunDigestParallel(spec, workers)
				if err != nil {
					t.Fatal(err)
				}
				if par.Checksum != seq.Checksum {
					t.Fatalf("%s workers=%d: checksum mismatch", g.Name(), workers)
				}
			}
		}
	}
	// small inputs fall back to sequential
	small := Spec{Graph: NewLinearArray(5), Steps: 3, Seed: 1}
	a, _ := RunDigest(small)
	b, err := RunDigestParallel(small, 4)
	if err != nil || a.Checksum != b.Checksum {
		t.Fatal("small-input fallback broken")
	}
	if _, err := RunDigestParallel(Spec{}, 2); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
