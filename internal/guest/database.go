package guest

import "fmt"

// Update is the change a single pebble computation makes to its database.
// Pebbles carry updates through the host network; databases themselves never
// move (Section 2: "a pebble does not contain a snapshot of the whole
// database but only the changes incurred by one computation").
type Update struct {
	Node int    // guest processor whose database is updated
	Step int    // guest time step that produced the update (version)
	Val  uint64 // the pebble value; databases fold it into their state
}

// Database is the local memory of one guest processor in the database model.
//
// A database has a version (the number of updates applied so far, i.e. the
// guest step it has been advanced to) and a digest summarising its entire
// state. Updates must be applied strictly in step order: computing pebble
// (i, t) requires the database at version t-1, and afterwards the update for
// step t is applied. Implementations must make the digest order-sensitive so
// that out-of-order application is detectable.
type Database interface {
	// Node reports which guest processor's database this is (a replica
	// keeps the original's node id).
	Node() int
	// Version reports the number of updates applied.
	Version() int
	// Digest summarises the current state. Two replicas that have applied
	// the same updates in the same order have equal digests.
	Digest() uint64
	// Apply folds one update into the state. It panics if u.Node differs
	// from Node() or u.Step != Version()+1 — both indicate a simulation
	// scheduling bug, which must not be silently absorbed.
	Apply(u Update)
	// Clone returns an independent copy. The paper allows copying the
	// *initial* contents of a database before the computation begins;
	// hosts use Clone at assignment time only.
	Clone() Database
	// Size reports an abstract size in bytes, used to account for the
	// memory cost of replication (load experiments).
	Size() int
}

// Factory creates the initial database for a guest node. All replicas of a
// node's database are created through the same factory and are identical.
type Factory func(node int, seed int64) Database

// MixDB is the fast database implementation: its entire state is a 64-bit
// running digest. It exercises exactly the properties the theorems use
// (order-sensitive state, pebble-sized updates) at negligible cost, so the
// big parameter sweeps use it.
type MixDB struct {
	node    int
	version int
	state   uint64
}

// NewMixDB is a Factory producing MixDB databases.
func NewMixDB(node int, seed int64) Database {
	return &MixDB{node: node, state: initDigest(node, seed)}
}

// Node implements Database.
func (d *MixDB) Node() int { return d.node }

// Version implements Database.
func (d *MixDB) Version() int { return d.version }

// Digest implements Database.
func (d *MixDB) Digest() uint64 { return d.state }

// Apply implements Database.
func (d *MixDB) Apply(u Update) {
	d.checkUpdate(u)
	d.state = combine(d.state, u.Val)
	d.version++
}

func (d *MixDB) checkUpdate(u Update) {
	if u.Node != d.node {
		panic(fmt.Sprintf("guest: update for node %d applied to database of node %d", u.Node, d.node))
	}
	if u.Step != d.version+1 {
		panic(fmt.Sprintf("guest: out-of-order update step %d on database of node %d at version %d",
			u.Step, d.node, d.version))
	}
}

// Clone implements Database.
func (d *MixDB) Clone() Database {
	c := *d
	return &c
}

// Size implements Database.
func (d *MixDB) Size() int { return 16 }

// NullDB is the dataflow-model database: there is none. Its digest is
// constant and updates only advance the version, so pebble values depend
// solely on the dependency pebbles — the memoryless model of [2] (Andrews,
// Leighton, Metaxas, Zhang, STOC 1996) that this paper generalizes. With
// NullDB, any processor holding the dependency values could compute a
// pebble; package dataflow exploits exactly that freedom.
type NullDB struct {
	node    int
	version int
}

// NewNullDB is a Factory producing NullDB databases.
func NewNullDB(node int, _ int64) Database {
	return &NullDB{node: node}
}

// Node implements Database.
func (d *NullDB) Node() int { return d.node }

// Version implements Database.
func (d *NullDB) Version() int { return d.version }

// Digest implements Database. It is constant: the model is memoryless.
func (d *NullDB) Digest() uint64 { return 0 }

// Apply implements Database; it validates ordering (the engines still
// schedule per column) but stores nothing.
func (d *NullDB) Apply(u Update) {
	if u.Node != d.node {
		panic(fmt.Sprintf("guest: update for node %d applied to database of node %d", u.Node, d.node))
	}
	if u.Step != d.version+1 {
		panic(fmt.Sprintf("guest: out-of-order update step %d on database of node %d at version %d",
			u.Step, d.node, d.version))
	}
	d.version++
}

// Clone implements Database.
func (d *NullDB) Clone() Database {
	c := *d
	return &c
}

// Size implements Database.
func (d *NullDB) Size() int { return 0 }

// KVDB is a key-value store database: a realistic "large local memory". Each
// update writes one cell chosen by the update value; the digest is maintained
// incrementally. It demonstrates that the simulation machinery carries real
// state, and the heavier clone cost surfaces in the load experiments.
type KVDB struct {
	node    int
	version int
	cells   []uint64
	digest  uint64
}

// KVFactory returns a Factory producing KVDB databases with the given number
// of cells each.
func KVFactory(cells int) Factory {
	if cells < 1 {
		cells = 1
	}
	return func(node int, seed int64) Database {
		db := &KVDB{node: node, cells: make([]uint64, cells)}
		h := initDigest(node, seed)
		for i := range db.cells {
			h = mix64(h + uint64(i)*goldenGamma)
			db.cells[i] = h
		}
		db.recomputeDigest()
		return db
	}
}

// Node implements Database.
func (d *KVDB) Node() int { return d.node }

// Version implements Database.
func (d *KVDB) Version() int { return d.version }

// Digest implements Database.
func (d *KVDB) Digest() uint64 { return d.digest }

// Apply implements Database.
func (d *KVDB) Apply(u Update) {
	if u.Node != d.node {
		panic(fmt.Sprintf("guest: update for node %d applied to database of node %d", u.Node, d.node))
	}
	if u.Step != d.version+1 {
		panic(fmt.Sprintf("guest: out-of-order update step %d on database of node %d at version %d",
			u.Step, d.node, d.version))
	}
	idx := int(u.Val % uint64(len(d.cells)))
	// Fold the old cell into the new value so the write is order-sensitive,
	// then refresh the incremental digest.
	old := d.cells[idx]
	d.cells[idx] = combine(old, u.Val)
	d.digest = combine(d.digest, d.cells[idx]^uint64(idx))
	d.version++
}

// Clone implements Database.
func (d *KVDB) Clone() Database {
	c := &KVDB{node: d.node, version: d.version, digest: d.digest}
	c.cells = append([]uint64(nil), d.cells...)
	return c
}

// Size implements Database.
func (d *KVDB) Size() int { return 8*len(d.cells) + 24 }

func (d *KVDB) recomputeDigest() {
	h := uint64(0x243f6a8885a308d3)
	for i, v := range d.cells {
		h = combine(h, v^uint64(i))
	}
	d.digest = h
}

// Cell reads cell i; examples use it to inspect final state.
func (d *KVDB) Cell(i int) uint64 { return d.cells[i] }

// NumCells reports the number of cells.
func (d *KVDB) NumCells() int { return len(d.cells) }
