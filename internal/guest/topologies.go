package guest

import "fmt"

// This file provides the guest networks Section 7 names as the ultimate
// targets — "trees, arrays, butterflies and hypercubes" — plus
// higher-dimensional arrays (the generalization Theorem 8 mentions). All are
// unit-delay Graphs and run on any host through the layout package.

// BinaryTree is a complete binary tree guest: node 0 is the root, node i has
// children 2i+1 and 2i+2.
type BinaryTree struct {
	n     int
	neigh [][]int
}

// NewBinaryTree returns the complete binary tree with 2^(h+1)-1 nodes.
func NewBinaryTree(h int) *BinaryTree {
	if h < 0 {
		panic(fmt.Sprintf("guest: tree height %d", h))
	}
	n := (1 << uint(h+1)) - 1
	t := &BinaryTree{n: n, neigh: make([][]int, n)}
	for i := 0; i < n; i++ {
		var ns []int
		if i > 0 {
			ns = append(ns, (i-1)/2)
		}
		if 2*i+1 < n {
			ns = append(ns, 2*i+1)
		}
		if 2*i+2 < n {
			ns = append(ns, 2*i+2)
		}
		sortInts(ns)
		t.neigh[i] = ns
	}
	return t
}

// NumNodes implements Graph.
func (t *BinaryTree) NumNodes() int { return t.n }

// Neighbors implements Graph.
func (t *BinaryTree) Neighbors(i int) []int { return t.neigh[i] }

// Name implements Graph.
func (t *BinaryTree) Name() string { return fmt.Sprintf("guest-btree(%d)", t.n) }

// HypercubeGraph is a 2^dim-node hypercube guest.
type HypercubeGraph struct {
	dim   int
	neigh [][]int
}

// NewHypercube returns the hypercube guest of the given dimension.
func NewHypercube(dim int) *HypercubeGraph {
	if dim < 1 {
		panic(fmt.Sprintf("guest: hypercube dim %d", dim))
	}
	n := 1 << uint(dim)
	h := &HypercubeGraph{dim: dim, neigh: make([][]int, n)}
	for u := 0; u < n; u++ {
		ns := make([]int, 0, dim)
		for b := 0; b < dim; b++ {
			ns = append(ns, u^(1<<uint(b)))
		}
		sortInts(ns)
		h.neigh[u] = ns
	}
	return h
}

// NumNodes implements Graph.
func (h *HypercubeGraph) NumNodes() int { return len(h.neigh) }

// Neighbors implements Graph.
func (h *HypercubeGraph) Neighbors(i int) []int { return h.neigh[i] }

// Name implements Graph.
func (h *HypercubeGraph) Name() string { return fmt.Sprintf("guest-hypercube(%d)", h.dim) }

// Dim reports the hypercube dimension.
func (h *HypercubeGraph) Dim() int { return h.dim }

// Butterfly is the (levels+1) x 2^levels butterfly guest: node (l, r) has
// index l*2^levels + r and connects to (l+1, r) and (l+1, r xor 2^l) — the
// canonical FFT communication pattern.
type Butterfly struct {
	levels int
	cols   int
	neigh  [][]int
}

// NewButterfly returns the butterfly with the given number of levels.
func NewButterfly(levels int) *Butterfly {
	if levels < 1 {
		panic(fmt.Sprintf("guest: butterfly levels %d", levels))
	}
	cols := 1 << uint(levels)
	n := (levels + 1) * cols
	b := &Butterfly{levels: levels, cols: cols, neigh: make([][]int, n)}
	add := func(u, v int) {
		b.neigh[u] = append(b.neigh[u], v)
		b.neigh[v] = append(b.neigh[v], u)
	}
	for l := 0; l < levels; l++ {
		for r := 0; r < cols; r++ {
			u := l*cols + r
			add(u, (l+1)*cols+r)
			add(u, (l+1)*cols+(r^(1<<uint(l))))
		}
	}
	for i := range b.neigh {
		sortInts(b.neigh[i])
	}
	return b
}

// NumNodes implements Graph.
func (b *Butterfly) NumNodes() int { return len(b.neigh) }

// Neighbors implements Graph.
func (b *Butterfly) Neighbors(i int) []int { return b.neigh[i] }

// Name implements Graph.
func (b *Butterfly) Name() string { return fmt.Sprintf("guest-butterfly(%d)", b.levels) }

// Levels reports the butterfly's level count; it has Levels+1 ranks.
func (b *Butterfly) Levels() int { return b.levels }

// Cols reports the butterfly's rank width 2^Levels.
func (b *Butterfly) Cols() int { return b.cols }

// ArrayND is a d-dimensional array guest (the "higher dimensional arrays"
// Theorem 8 generalizes to). Node coordinates are mixed-radix over Dims;
// index = sum coord[i] * stride[i], row-major.
type ArrayND struct {
	dims   []int
	stride []int
	neigh  [][]int
	name   string
}

// NewArrayND returns the array with the given per-dimension extents.
func NewArrayND(dims ...int) *ArrayND {
	if len(dims) == 0 {
		panic("guest: array with no dimensions")
	}
	n := 1
	for _, d := range dims {
		if d < 1 {
			panic(fmt.Sprintf("guest: array dim %d", d))
		}
		n *= d
	}
	a := &ArrayND{dims: append([]int(nil), dims...), stride: make([]int, len(dims))}
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		a.stride[i] = s
		s *= dims[i]
	}
	a.neigh = make([][]int, n)
	coord := make([]int, len(dims))
	for u := 0; u < n; u++ {
		var ns []int
		for i := range dims {
			if coord[i] > 0 {
				ns = append(ns, u-a.stride[i])
			}
			if coord[i]+1 < dims[i] {
				ns = append(ns, u+a.stride[i])
			}
		}
		sortInts(ns)
		a.neigh[u] = ns
		// advance mixed-radix coordinate
		for i := len(dims) - 1; i >= 0; i-- {
			coord[i]++
			if coord[i] < dims[i] {
				break
			}
			coord[i] = 0
		}
	}
	a.name = fmt.Sprintf("guest-array%v", dims)
	return a
}

// NumNodes implements Graph.
func (a *ArrayND) NumNodes() int { return len(a.neigh) }

// Neighbors implements Graph.
func (a *ArrayND) Neighbors(i int) []int { return a.neigh[i] }

// Name implements Graph.
func (a *ArrayND) Name() string { return a.name }

// Dims returns the per-dimension extents. The result must not be modified.
func (a *ArrayND) Dims() []int { return a.dims }

// Torus2DGraph is the rows x cols torus guest (wraparound mesh).
type Torus2DGraph struct {
	rows, cols int
	neigh      [][]int
}

// NewTorus2D returns the torus guest.
func NewTorus2D(rows, cols int) *Torus2DGraph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("guest: torus %dx%d (needs >= 3x3)", rows, cols))
	}
	t := &Torus2DGraph{rows: rows, cols: cols, neigh: make([][]int, rows*cols)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := r*cols + c
			ns := []int{
				((r+rows-1)%rows)*cols + c,
				((r+1)%rows)*cols + c,
				r*cols + (c+cols-1)%cols,
				r*cols + (c+1)%cols,
			}
			sortInts(ns)
			// dedup (possible only for tiny sizes, excluded above)
			t.neigh[u] = ns
		}
	}
	return t
}

// NumNodes implements Graph.
func (t *Torus2DGraph) NumNodes() int { return t.rows * t.cols }

// Neighbors implements Graph.
func (t *Torus2DGraph) Neighbors(i int) []int { return t.neigh[i] }

// Name implements Graph.
func (t *Torus2DGraph) Name() string { return fmt.Sprintf("guest-torus(%dx%d)", t.rows, t.cols) }
