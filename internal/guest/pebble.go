package guest

// Pebble identifies one guest computation: pebble (i, t) is the result of
// guest processor i's step-t computation (Figure 1). Values are 64-bit
// digests; Delta is the database update the computation produced. A pebble is
// small by construction and is the unit of host communication.
type Pebble struct {
	Node  int
	Step  int
	Value uint64
}

// Delta returns the database update carried by the pebble.
func (p Pebble) Delta() Update {
	return Update{Node: p.Node, Step: p.Step, Val: p.Value}
}

const goldenGamma = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// combine folds v into running digest h. It is deliberately order-sensitive:
// combine(combine(h,a),b) != combine(combine(h,b),a) in general, so schedule
// bugs change answers rather than hiding.
func combine(h, v uint64) uint64 {
	return mix64(h ^ (v*goldenGamma + 0x85ebca6bc2b2ae35))
}

// initDigest seeds the initial database digest / pebble row for a node.
func initDigest(node int, seed int64) uint64 {
	return mix64(uint64(seed)*goldenGamma ^ uint64(node)*0xc2b2ae3d27d4eb4f)
}

// InitValue is pebble (i, 0): the value guest processor i starts with before
// the first step. All host processors holding a replica of b_i know it.
func InitValue(node int, seed int64) uint64 {
	return mix64(initDigest(node, seed) + 0x632be59bd9b4e019)
}

// ComputeValue evaluates pebble (node, step) from the database digest at
// version step-1, the node's own value at step-1, and the neighbor values at
// step-1 listed in increasing neighbor-id order. This single function defines
// the guest semantics; the reference executor and every host engine call it,
// so value equality between them certifies the host respected all
// dependencies and database orderings.
func ComputeValue(dbDigest uint64, node, step int, self uint64, neighbors []uint64) uint64 {
	h := uint64(0x452821e638d01377)
	h = combine(h, uint64(node)+1)
	h = combine(h, uint64(step))
	h = combine(h, dbDigest)
	h = combine(h, self)
	for _, v := range neighbors {
		h = combine(h, v)
	}
	return h
}
