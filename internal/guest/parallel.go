package guest

import (
	"runtime"
	"sync"
)

// RunDigestParallel is RunDigest with row-level parallelism: within one
// guest step every cell depends only on the previous row, so the row is
// sharded across workers goroutines (0 means GOMAXPROCS). Database updates
// stay per-cell sequential, so results are bit-identical to RunDigest;
// tests assert it. The host engines use it for verification of large runs.
func RunDigestParallel(spec Spec, workers int) (*DigestResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := spec.Graph.NumNodes()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	if workers <= 1 || m < 256 {
		return RunDigest(spec)
	}
	factory := spec.Factory()
	dbs := make([]Database, m)
	for i := range dbs {
		dbs[i] = factory(i, spec.Seed)
	}
	prev := make([]uint64, m)
	next := make([]uint64, m)
	for i := range prev {
		prev[i] = spec.InitialValue(i)
	}

	// static sharding: worker w owns cells [bounds[w], bounds[w+1])
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * m / workers
	}
	var wg sync.WaitGroup
	var work int64
	for t := 1; t <= spec.Steps; t++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(lo, hi, t int) {
				defer wg.Done()
				var scratch [8]uint64
				for i := lo; i < hi; i++ {
					nv := scratch[:0]
					for _, j := range spec.Graph.Neighbors(i) {
						nv = append(nv, prev[j])
					}
					v := spec.Compute(dbs[i].Digest(), i, t, prev[i], nv)
					next[i] = v
					dbs[i].Apply(Update{Node: i, Step: t, Val: v})
				}
			}(bounds[w], bounds[w+1], t)
		}
		wg.Wait()
		prev, next = next, prev
		work += int64(m)
	}

	out := &DigestResult{
		LastRow:      append([]uint64(nil), prev...),
		FinalDigests: make([]uint64, m),
		Work:         work,
	}
	h := uint64(0x9216d5d98979fb1b)
	for i, db := range dbs {
		out.FinalDigests[i] = db.Digest()
	}
	for _, v := range out.LastRow {
		h = combine(h, v)
	}
	for _, v := range out.FinalDigests {
		h = combine(h, v)
	}
	out.Checksum = h
	return out, nil
}
