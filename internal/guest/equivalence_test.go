package guest_test

import (
	"testing"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
	"latencyhide/internal/sim"
)

// Table-driven structural checks over every guest shape the verify
// generator samples (plus the hypercube): node counts, degree bounds, and
// the Graph contract — sorted, self-loop-free, symmetric adjacency.
func TestGraphShapeTable(t *testing.T) {
	cases := []struct {
		name   string
		g      guest.Graph
		nodes  int
		maxDeg int
	}{
		{"line", guest.NewLinearArray(9), 9, 2},
		{"ring", guest.NewRing(8), 8, 2},
		{"mesh", guest.NewMesh(3, 4), 12, 4},
		{"btree", guest.NewBinaryTree(3), 15, 3},
		{"hypercube", guest.NewHypercube(4), 16, 4},
	}
	for _, tc := range cases {
		if got := tc.g.NumNodes(); got != tc.nodes {
			t.Errorf("%s: %d nodes, want %d", tc.name, got, tc.nodes)
		}
		if got := guest.MaxDegree(tc.g); got != tc.maxDeg {
			t.Errorf("%s: max degree %d, want %d", tc.name, got, tc.maxDeg)
		}
		for i := 0; i < tc.g.NumNodes(); i++ {
			prev := -1
			for _, j := range tc.g.Neighbors(i) {
				if j == i {
					t.Fatalf("%s: node %d has a self loop", tc.name, i)
				}
				if j <= prev {
					t.Fatalf("%s: node %d adjacency unsorted: %v", tc.name, i, tc.g.Neighbors(i))
				}
				prev = j
				back := false
				for _, k := range tc.g.Neighbors(j) {
					if k == i {
						back = true
					}
				}
				if !back {
					t.Fatalf("%s: edge %d->%d not symmetric", tc.name, i, j)
				}
			}
		}
	}
}

// Engine equivalence per shape: the sequential and parallel engines must
// agree on every aggregate when simulating each guest topology on the same
// host line with a round-robin single-copy assignment.
func TestShapesEngineEquivalence(t *testing.T) {
	delays := []int{2, 1, 3}
	hostN := len(delays) + 1
	shapes := []struct {
		name string
		g    guest.Graph
	}{
		{"line", guest.NewLinearArray(10)},
		{"ring", guest.NewRing(9)},
		{"mesh", guest.NewMesh(3, 3)},
		{"btree", guest.NewBinaryTree(2)},
	}
	for _, tc := range shapes {
		m := tc.g.NumNodes()
		owned := make([][]int, hostN)
		for c := 0; c < m; c++ {
			owned[c%hostN] = append(owned[c%hostN], c)
		}
		a, err := assign.FromOwned(hostN, m, owned)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{
			Delays: delays,
			Guest:  guest.Spec{Graph: tc.g, Steps: 6, Seed: 11},
			Assign: a,
			Check:  true,
		}
		seq, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("%s sequential: %v", tc.name, err)
		}
		cfg.Workers = 3
		par, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", tc.name, err)
		}
		if seq.HostSteps != par.HostSteps || seq.PebblesComputed != par.PebblesComputed ||
			seq.Messages != par.Messages || seq.MessageHops != par.MessageHops ||
			seq.DeliveredValues != par.DeliveredValues {
			t.Errorf("%s: engines disagree: seq %+v par %+v", tc.name, seq, par)
		}
		if seq.PebblesComputed != int64(m)*6 {
			t.Errorf("%s: computed %d pebbles, want %d", tc.name, seq.PebblesComputed, m*6)
		}
	}
}
