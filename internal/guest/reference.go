package guest

import "fmt"

// An Op is the per-pebble computation: given the node's database digest at
// version step-1, the node and step, the node's own step-1 value and its
// neighbors' step-1 values (in increasing neighbor-id order), it returns the
// pebble value. Ops must be deterministic — the host simulation is verified
// value-for-value against the sequential reference executor running the same
// op. The default op is ComputeValue, the order-sensitive digest mixer;
// applications can supply real kernels (e.g. examples/heatring packs a
// float64 stencil into the value).
type Op func(dbDigest uint64, node, step int, self uint64, neighbors []uint64) uint64

// Spec fully determines a guest computation: the topology, the number of
// steps to run, the database implementation, the per-pebble op, and the seed
// from which all initial state derives.
type Spec struct {
	Graph Graph
	Steps int
	Seed  int64
	// NewDatabase creates each node's initial database. Nil means NewMixDB.
	NewDatabase Factory
	// Op is the pebble computation; nil means ComputeValue.
	Op Op
	// Init gives pebble (i, 0); nil means InitValue.
	Init func(node int, seed int64) uint64
}

// Factory returns the spec's database factory, defaulting to NewMixDB.
func (s Spec) Factory() Factory {
	if s.NewDatabase == nil {
		return NewMixDB
	}
	return s.NewDatabase
}

// Compute evaluates the spec's op (default ComputeValue).
func (s Spec) Compute(dbDigest uint64, node, step int, self uint64, neighbors []uint64) uint64 {
	if s.Op == nil {
		return ComputeValue(dbDigest, node, step, self, neighbors)
	}
	return s.Op(dbDigest, node, step, self, neighbors)
}

// InitialValue evaluates the spec's initial row (default InitValue).
func (s Spec) InitialValue(node int) uint64 {
	if s.Init == nil {
		return InitValue(node, s.Seed)
	}
	return s.Init(node, s.Seed)
}

// Validate checks the spec is runnable.
func (s Spec) Validate() error {
	if s.Graph == nil {
		return fmt.Errorf("guest: nil graph")
	}
	if s.Graph.NumNodes() < 1 {
		return fmt.Errorf("guest: empty graph")
	}
	if s.Steps < 0 {
		return fmt.Errorf("guest: negative step count %d", s.Steps)
	}
	return nil
}

// Result is the ground truth produced by the sequential reference executor.
type Result struct {
	Spec Spec
	// Values[t][i] is pebble (i, t); row 0 is the initial values.
	Values [][]uint64
	// FinalDigests[i] is node i's database digest after all updates.
	FinalDigests []uint64
	// Work is the total number of pebbles computed (m * Steps).
	Work int64
}

// Value returns pebble (node, step).
func (r *Result) Value(node, step int) uint64 { return r.Values[step][node] }

// Run executes the guest computation sequentially with unit delays and
// returns every pebble value. It is the correctness oracle for all host
// simulations. Memory is (Steps+1) * m * 8 bytes; use RunDigest for large
// parameter sweeps.
func Run(spec Spec) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := spec.Graph.NumNodes()
	factory := spec.Factory()
	dbs := make([]Database, m)
	for i := range dbs {
		dbs[i] = factory(i, spec.Seed)
	}
	res := &Result{Spec: spec}
	res.Values = make([][]uint64, spec.Steps+1)
	row := make([]uint64, m)
	for i := range row {
		row[i] = spec.InitialValue(i)
	}
	res.Values[0] = row
	var scratch [8]uint64
	for t := 1; t <= spec.Steps; t++ {
		prev := res.Values[t-1]
		next := make([]uint64, m)
		for i := 0; i < m; i++ {
			ns := spec.Graph.Neighbors(i)
			nv := scratch[:0]
			for _, j := range ns {
				nv = append(nv, prev[j])
			}
			v := spec.Compute(dbs[i].Digest(), i, t, prev[i], nv)
			next[i] = v
			dbs[i].Apply(Update{Node: i, Step: t, Val: v})
		}
		res.Values[t] = next
		res.Work += int64(m)
	}
	res.FinalDigests = make([]uint64, m)
	for i, db := range dbs {
		res.FinalDigests[i] = db.Digest()
	}
	return res, nil
}

// DigestResult is the memory-light summary of a guest run.
type DigestResult struct {
	LastRow      []uint64 // pebble values at the final step
	FinalDigests []uint64 // database digests after all updates
	Checksum     uint64   // order-sensitive fold of LastRow then FinalDigests
	Work         int64
}

// RunDigest executes the guest computation keeping only two rows of pebbles,
// returning the final row and database digests. Suitable for large sweeps
// where storing the full grid would dominate memory.
func RunDigest(spec Spec) (*DigestResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m := spec.Graph.NumNodes()
	factory := spec.Factory()
	dbs := make([]Database, m)
	for i := range dbs {
		dbs[i] = factory(i, spec.Seed)
	}
	prev := make([]uint64, m)
	next := make([]uint64, m)
	for i := range prev {
		prev[i] = spec.InitialValue(i)
	}
	var scratch [8]uint64
	var work int64
	for t := 1; t <= spec.Steps; t++ {
		for i := 0; i < m; i++ {
			nv := scratch[:0]
			for _, j := range spec.Graph.Neighbors(i) {
				nv = append(nv, prev[j])
			}
			v := spec.Compute(dbs[i].Digest(), i, t, prev[i], nv)
			next[i] = v
			dbs[i].Apply(Update{Node: i, Step: t, Val: v})
		}
		prev, next = next, prev
		work += int64(m)
	}
	out := &DigestResult{
		LastRow:      append([]uint64(nil), prev...),
		FinalDigests: make([]uint64, m),
		Work:         work,
	}
	h := uint64(0x9216d5d98979fb1b)
	for i, db := range dbs {
		out.FinalDigests[i] = db.Digest()
	}
	for _, v := range out.LastRow {
		h = combine(h, v)
	}
	for _, v := range out.FinalDigests {
		h = combine(h, v)
	}
	out.Checksum = h
	return out, nil
}
