package guest

import "testing"

func checkGraph(t *testing.T, g Graph) {
	t.Helper()
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		ns := g.Neighbors(i)
		for j, v := range ns {
			if v < 0 || v >= n || v == i {
				t.Fatalf("%s: node %d bad neighbor %d", g.Name(), i, v)
			}
			if j > 0 && ns[j-1] >= v {
				t.Fatalf("%s: node %d neighbors not strictly sorted: %v", g.Name(), i, ns)
			}
			// symmetry
			found := false
			for _, w := range g.Neighbors(v) {
				if w == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: edge (%d,%d) not symmetric", g.Name(), i, v)
			}
		}
	}
}

func TestBinaryTreeStructure(t *testing.T) {
	tr := NewBinaryTree(3)
	if tr.NumNodes() != 15 {
		t.Fatalf("nodes %d", tr.NumNodes())
	}
	checkGraph(t, tr)
	if len(tr.Neighbors(0)) != 2 {
		t.Fatal("root degree")
	}
	if len(tr.Neighbors(14)) != 1 {
		t.Fatal("leaf degree")
	}
	if len(tr.Neighbors(3)) != 3 {
		t.Fatal("internal degree")
	}
	if NewBinaryTree(0).NumNodes() != 1 {
		t.Fatal("h=0")
	}
}

func TestHypercubeStructure(t *testing.T) {
	h := NewHypercube(4)
	if h.NumNodes() != 16 || h.Dim() != 4 {
		t.Fatal("size")
	}
	checkGraph(t, h)
	for i := 0; i < 16; i++ {
		if len(h.Neighbors(i)) != 4 {
			t.Fatalf("node %d degree %d", i, len(h.Neighbors(i)))
		}
		for _, v := range h.Neighbors(i) {
			x := i ^ v
			if x&(x-1) != 0 {
				t.Fatalf("edge (%d,%d) differs in several bits", i, v)
			}
		}
	}
}

func TestButterflyStructure(t *testing.T) {
	b := NewButterfly(3)
	if b.NumNodes() != 4*8 || b.Levels() != 3 || b.Cols() != 8 {
		t.Fatal("size")
	}
	checkGraph(t, b)
	// interior ranks have degree 4, end ranks 2
	for r := 0; r < 8; r++ {
		if len(b.Neighbors(r)) != 2 {
			t.Fatalf("rank-0 node %d degree %d", r, len(b.Neighbors(r)))
		}
		if len(b.Neighbors(3*8+r)) != 2 {
			t.Fatal("last-rank degree")
		}
		if len(b.Neighbors(8+r)) != 4 {
			t.Fatal("interior degree")
		}
	}
	// straight edge and cross edge at level 0
	ns := b.Neighbors(0)
	if ns[0] != 8 || ns[1] != 9 {
		t.Fatalf("rank-0 node 0 neighbors %v", ns)
	}
}

func TestArrayNDStructure(t *testing.T) {
	a := NewArrayND(3, 4, 5)
	if a.NumNodes() != 60 {
		t.Fatal("size")
	}
	checkGraph(t, a)
	// corner (0,0,0) has 3 neighbors; center has 6
	if len(a.Neighbors(0)) != 3 {
		t.Fatalf("corner degree %d", len(a.Neighbors(0)))
	}
	center := 1*20 + 1*5 + 2
	if len(a.Neighbors(center)) != 6 {
		t.Fatalf("center degree %d", len(a.Neighbors(center)))
	}
	// 1-D array matches LinearArray semantics
	one := NewArrayND(7)
	la := NewLinearArray(7)
	for i := 0; i < 7; i++ {
		a, b := one.Neighbors(i), la.Neighbors(i)
		if len(a) != len(b) {
			t.Fatalf("node %d: %v vs %v", i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("node %d: %v vs %v", i, a, b)
			}
		}
	}
	// 2-D array matches Mesh
	a2 := NewArrayND(4, 6)
	m := NewMesh(4, 6)
	for i := 0; i < 24; i++ {
		x, y := a2.Neighbors(i), m.Neighbors(i)
		if len(x) != len(y) {
			t.Fatalf("node %d: %v vs %v", i, x, y)
		}
		for j := range x {
			if x[j] != y[j] {
				t.Fatalf("node %d: %v vs %v", i, x, y)
			}
		}
	}
	if len(a.Dims()) != 3 {
		t.Fatal("dims")
	}
}

func TestTorus2DStructure(t *testing.T) {
	tr := NewTorus2D(4, 5)
	if tr.NumNodes() != 20 {
		t.Fatal("size")
	}
	checkGraph(t, tr)
	for i := 0; i < 20; i++ {
		if len(tr.Neighbors(i)) != 4 {
			t.Fatalf("node %d degree %d", i, len(tr.Neighbors(i)))
		}
	}
}

func TestTopologyReferenceRuns(t *testing.T) {
	graphs := []Graph{
		NewBinaryTree(4), NewHypercube(5), NewButterfly(3),
		NewArrayND(3, 3, 3), NewTorus2D(4, 4),
	}
	for _, g := range graphs {
		if _, err := RunDigest(Spec{Graph: g, Steps: 6, Seed: 2}); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
	}
}

func TestTopologyPanics(t *testing.T) {
	mustPanic(t, "tree", func() { NewBinaryTree(-1) })
	mustPanic(t, "hypercube", func() { NewHypercube(0) })
	mustPanic(t, "butterfly", func() { NewButterfly(0) })
	mustPanic(t, "array", func() { NewArrayND() })
	mustPanic(t, "array0", func() { NewArrayND(3, 0) })
	mustPanic(t, "torus", func() { NewTorus2D(2, 5) })
}
