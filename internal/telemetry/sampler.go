package telemetry

import (
	"bufio"
	"os"
	"runtime"
	"runtime/metrics"
	"strconv"
	"strings"
	"sync"
	"time"
)

// MemSample is one point of the sampler's memory time series.
type MemSample struct {
	ElapsedMS   float64 `json:"elapsed_ms"`
	HeapAlloc   uint64  `json:"heap_alloc"`   // live heap bytes (MemStats.HeapAlloc)
	HeapSys     uint64  `json:"heap_sys"`     // heap bytes obtained from the OS
	TotalAlloc  uint64  `json:"total_alloc"`  // cumulative allocated bytes
	TotalMemory uint64  `json:"total_memory"` // /memory/classes/total:bytes (all runtime-managed memory)
	NumGC       uint32  `json:"num_gc"`
	Goroutines  int     `json:"goroutines"`
	RSS         uint64  `json:"rss,omitempty"` // VmRSS from /proc (0 where unsupported)
	Pebbles     int64   `json:"pebbles,omitempty"`
}

// Sampler periodically captures runtime/metrics + MemStats (and, when a
// registry is attached, the engine's pebble counter) into a bounded time
// series. It exists so a run manifest can report how memory evolved over the
// run — bytes/pebble needs more than a final snapshot once runs stream
// working sets.
type Sampler struct {
	reg      *Registry
	pebbles  CounterID
	hasPebbl bool

	interval time.Duration
	start    time.Time
	stop     chan struct{}
	done     chan struct{}

	mu      sync.Mutex
	samples []MemSample
}

// samplerMaxSamples bounds the series; when full, every other sample is
// dropped and the interval doubles, keeping long runs at bounded cost.
const samplerMaxSamples = 512

// StartSampler begins sampling every interval (0 means 50ms). reg may be
// nil; when non-nil and it has a counter named "pebbles_computed", each
// sample also records engine progress.
func StartSampler(reg *Registry, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	s := &Sampler{
		reg:      reg,
		interval: interval,
		start:    time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if reg != nil {
		reg.mu.Lock()
		for i, n := range reg.counters {
			if n == "pebbles_computed" {
				s.pebbles, s.hasPebbl = CounterID(i), true
			}
		}
		reg.mu.Unlock()
	}
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.capture()
			s.mu.Lock()
			if len(s.samples) >= samplerMaxSamples {
				kept := s.samples[:0]
				for i, sm := range s.samples {
					if i%2 == 0 {
						kept = append(kept, sm)
					}
				}
				s.samples = kept
				s.interval *= 2
				ticker.Reset(s.interval)
			}
			s.mu.Unlock()
		}
	}
}

var totalMemSample = []metrics.Sample{{Name: "/memory/classes/total:bytes"}}

func (s *Sampler) capture() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	tm := make([]metrics.Sample, len(totalMemSample))
	copy(tm, totalMemSample)
	metrics.Read(tm)
	sm := MemSample{
		ElapsedMS:  float64(time.Since(s.start).Microseconds()) / 1000,
		HeapAlloc:  ms.HeapAlloc,
		HeapSys:    ms.HeapSys,
		TotalAlloc: ms.TotalAlloc,
		NumGC:      ms.NumGC,
		Goroutines: runtime.NumGoroutine(),
		RSS:        readRSS(),
	}
	if tm[0].Value.Kind() == metrics.KindUint64 {
		sm.TotalMemory = tm[0].Value.Uint64()
	}
	if s.hasPebbl {
		var v int64
		s.reg.mu.Lock()
		for _, sh := range s.reg.shards {
			if int(s.pebbles) < len(sh.counters) {
				v += sh.counters[s.pebbles].Load()
			}
		}
		s.reg.mu.Unlock()
		sm.Pebbles = v
	}
	s.mu.Lock()
	s.samples = append(s.samples, sm)
	s.mu.Unlock()
}

// Stop halts the sampler, takes one final sample, and returns the series.
func (s *Sampler) Stop() []MemSample {
	close(s.stop)
	<-s.done
	s.capture()
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]MemSample(nil), s.samples...)
}

// readProcStatusKB extracts a kB-denominated field from /proc/self/status.
// Returns 0 on any failure (non-Linux, sandboxed /proc, format drift) — the
// manifest treats 0 as "unknown".
func readProcStatusKB(field string) uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, field) {
			continue
		}
		fs := strings.Fields(line)
		if len(fs) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(fs[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// readRSS reports the current resident set size in bytes (0 if unknown).
func readRSS() uint64 { return readProcStatusKB("VmRSS:") }

// ReadPeakRSS reports the process's peak resident set size in bytes (VmHWM;
// 0 if unknown). Peak RSS is the honest memory cost for bytes/pebble: it
// includes the Go runtime's retained spans, not just live heap.
func ReadPeakRSS() uint64 { return readProcStatusKB("VmHWM:") }

// ResetPeakRSS zeroes the kernel's VmHWM watermark (/proc/self/clear_refs
// "5"), so a subsequent ReadPeakRSS reflects only memory touched after the
// reset — which is what lets one test process measure several benchmarks'
// peaks independently. Best-effort: silently a no-op where clear_refs is
// unavailable (non-Linux, restricted /proc), in which case ReadPeakRSS
// keeps reporting the process-lifetime peak.
func ResetPeakRSS() {
	f, err := os.OpenFile("/proc/self/clear_refs", os.O_WRONLY, 0)
	if err != nil {
		return
	}
	_, _ = f.Write([]byte("5"))
	_ = f.Close()
}
