package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryMerge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pebbles_computed")
	g := r.Gauge("depth_peak")
	h := r.Histogram("batch")

	s1 := r.NewShard("w0")
	s2 := r.NewShard("w1")
	s1.Add(c, 10)
	s2.Add(c, 32)
	s1.SetMax(g, 7)
	s2.SetMax(g, 5)
	s1.Observe(h, 0)
	s1.Observe(h, 1)
	s2.Observe(h, 100)

	snap := r.Snapshot()
	if got := snap.Counter("pebbles_computed"); got != 42 {
		t.Errorf("counter merged to %d, want 42", got)
	}
	if got := snap.Gauge("depth_peak"); got != 7 {
		t.Errorf("gauge merged to %d, want 7 (max)", got)
	}
	hs := snap.Hists["batch"]
	if hs.Count != 3 || hs.Sum != 101 {
		t.Errorf("hist count=%d sum=%d, want 3/101", hs.Count, hs.Sum)
	}
	// Bucket layout: v=0 -> bucket 0, v=1 -> bucket 1, v=100 -> bucket 7.
	if len(hs.Buckets) != 8 || hs.Buckets[0] != 1 || hs.Buckets[1] != 1 || hs.Buckets[7] != 1 {
		t.Errorf("hist buckets = %v", hs.Buckets)
	}
	if hs.P50 != 1 {
		t.Errorf("P50 = %d, want 1", hs.P50)
	}
	if hs.P99 != 127 {
		t.Errorf("P99 = %d, want 127 (top of the [64,128) bucket)", hs.P99)
	}
}

func TestNilShardIsNoop(t *testing.T) {
	var s *Shard
	// The disabled fast path: all writes on a nil shard must be safe no-ops.
	s.Add(0, 5)
	s.Inc(0)
	s.SetMax(0, 5)
	s.Observe(0, 5)
	var r *Registry
	if sh := r.NewShard("x"); sh != nil {
		t.Fatal("nil registry must hand out nil shards")
	}
	if snap := r.Snapshot(); snap == nil || len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty, not nil")
	}
}

func TestRegisterAfterShardPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a")
	r.NewShard("w0")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a new metric after NewShard must panic")
		}
	}()
	r.Counter("b")
}

func TestConcurrentShardWritesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	g := r.Gauge("peak")
	h := r.Histogram("sizes")
	const workers, per = 8, 1000
	shards := make([]*Shard, workers)
	for i := range shards {
		shards[i] = r.NewShard("w")
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				s.Inc(c)
				s.SetMax(g, int64(j))
				s.Observe(h, int64(j))
			}
		}(shards[i])
	}
	// Concurrent reader: snapshots mid-run must be safe and monotone.
	var last int64
	for i := 0; i < 50; i++ {
		snap := r.Snapshot()
		if v := snap.Counter("ops"); v < last {
			t.Errorf("counter went backwards: %d -> %d", last, v)
		} else {
			last = v
		}
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counter("ops"); got != workers*per {
		t.Errorf("ops = %d, want %d", got, workers*per)
	}
	if got := snap.Gauge("peak"); got != per-1 {
		t.Errorf("peak = %d, want %d", got, per-1)
	}
	if got := snap.Hists["sizes"].Count; got != workers*per {
		t.Errorf("hist count = %d, want %d", got, workers*per)
	}
}

func TestSamplerSeries(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pebbles_computed")
	sh := r.NewShard("w0")
	s := StartSampler(r, time.Millisecond)
	for i := 0; i < 100; i++ {
		sh.Add(c, 10)
		time.Sleep(100 * time.Microsecond)
	}
	series := s.Stop()
	if len(series) == 0 {
		t.Fatal("sampler produced no samples")
	}
	last := series[len(series)-1]
	if last.HeapAlloc == 0 || last.TotalAlloc == 0 {
		t.Errorf("final sample has empty MemStats: %+v", last)
	}
	if last.Pebbles != 1000 {
		t.Errorf("final sample pebbles = %d, want 1000", last.Pebbles)
	}
	for i := 1; i < len(series); i++ {
		if series[i].ElapsedMS < series[i-1].ElapsedMS {
			t.Fatalf("series not time-ordered at %d", i)
		}
	}
}

func TestManifestRoundTripAndValidate(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/m.json"
	snap := &Snapshot{
		Counters: map[string]int64{"cal_due_events": 123, "messages_injected": 40},
		Gauges: map[string]int64{
			"cal_ring_depth_peak":  4,
			"ring_occupancy_peak":  2,
			"pubclock_lag_max":     17,
			"know_ring_bytes_peak": 2048,
			"route_bytes":          512,
		},
	}
	m := &RunManifest{
		Command:        "run",
		ConfigHash:     ConfigHash([]string{"run", "-n", "256"}),
		Scenario:       "host=random n=256",
		Engine:         "parallel",
		Workers:        2,
		WallSeconds:    0.5,
		Pebbles:        1000,
		BytesPerPebble: 24.5,
		Metrics:        snap,
	}
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ManifestSchema {
		t.Errorf("schema = %q", got.Schema)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("valid manifest rejected: %v", err)
	}

	// A parallel run without ring telemetry must be rejected.
	bad := *got
	bad.Metrics = &Snapshot{
		Counters: map[string]int64{"cal_due_events": 123},
		Gauges: map[string]int64{
			"cal_ring_depth_peak":  4,
			"know_ring_bytes_peak": 2048,
		},
	}
	if err := bad.Validate(); err == nil ||
		!strings.Contains(err.Error(), "ring_occupancy_peak") {
		t.Errorf("missing ring telemetry not flagged: %v", err)
	}
	// A sequential run without it is fine.
	seq := bad
	seq.Engine = "sequential"
	seq.Workers = 0
	if err := seq.Validate(); err != nil {
		t.Errorf("sequential manifest rejected: %v", err)
	}
	// Knowledge-ring footprint is mandatory for every run...
	noMem := seq
	noMem.Metrics = &Snapshot{
		Counters: map[string]int64{"cal_due_events": 123},
		Gauges:   map[string]int64{"cal_ring_depth_peak": 4},
	}
	if err := noMem.Validate(); err == nil ||
		!strings.Contains(err.Error(), "know_ring_bytes_peak") {
		t.Errorf("missing know_ring_bytes_peak not flagged: %v", err)
	}
	// ...while route_bytes is only required once messages were injected:
	// a run that never routed (single host, no replication) reports zero.
	routed := seq
	routed.Metrics = &Snapshot{
		Counters: map[string]int64{"cal_due_events": 123, "messages_injected": 9},
		Gauges: map[string]int64{
			"cal_ring_depth_peak":  4,
			"know_ring_bytes_peak": 2048,
		},
	}
	if err := routed.Validate(); err == nil ||
		!strings.Contains(err.Error(), "route_bytes") {
		t.Errorf("routed run without route_bytes not flagged: %v", err)
	}
	unrouted := routed
	unrouted.Metrics = &Snapshot{
		Counters: map[string]int64{"cal_due_events": 123},
		Gauges: map[string]int64{
			"cal_ring_depth_peak":  4,
			"know_ring_bytes_peak": 2048,
		},
	}
	if err := unrouted.Validate(); err != nil {
		t.Errorf("message-free run rejected for zero route_bytes: %v", err)
	}
	// Wrong schema fails.
	ws := *got
	ws.Schema = "nope"
	if err := ws.Validate(); err == nil {
		t.Error("wrong schema accepted")
	}
}

// Fleet-mode sweep manifests validate on the Fleet section instead of
// sweep points; twin manifests require at least one family report.
func TestManifestFleetTwinSections(t *testing.T) {
	fm := &RunManifest{
		Schema: ManifestSchema, Command: "sweep",
		ConfigHash: "x", WallSeconds: 0.1,
		Fleet: &FleetSummary{Seed: 1, N: 100, Shards: 2, Shard: 1, Items: 50, Store: "s.jsonl"},
	}
	if err := fm.Validate(); err != nil {
		t.Errorf("fleet sweep manifest rejected: %v", err)
	}
	bad := *fm
	bad.Fleet = &FleetSummary{Seed: 1, N: 100, Shards: 2, Shard: 2, Items: 50}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Errorf("out-of-range shard accepted: %v", err)
	}
	bad.Fleet = &FleetSummary{Seed: 1, N: 100, Shards: 2, Shard: 0}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "items") {
		t.Errorf("empty fleet shard accepted: %v", err)
	}
	// A host-size sweep (no Fleet section) still needs points.
	empty := &RunManifest{Schema: ManifestSchema, Command: "sweep", ConfigHash: "x", WallSeconds: 0.1}
	if err := empty.Validate(); err == nil || !strings.Contains(err.Error(), "points") {
		t.Errorf("pointless sweep accepted: %v", err)
	}

	tm := &RunManifest{
		Schema: ManifestSchema, Command: "twin",
		ConfigHash: "x", WallSeconds: 0.1,
		Twin: []TwinFamily{{Name: "uniform", N: 10, MAPE: 0.1, Ceiling: 0.2, Pass: true}},
	}
	if err := tm.Validate(); err != nil {
		t.Errorf("twin manifest rejected: %v", err)
	}
	tm.Twin = nil
	if err := tm.Validate(); err == nil || !strings.Contains(err.Error(), "family") {
		t.Errorf("empty twin manifest accepted: %v", err)
	}
}

func TestConfigHashStable(t *testing.T) {
	a := ConfigHash([]string{"run", "-n", "256"})
	b := ConfigHash([]string{"run", "-n", "256"})
	c := ConfigHash([]string{"run", "-n", "512"})
	if a != b {
		t.Error("hash not deterministic")
	}
	if a == c {
		t.Error("hash ignores arguments")
	}
	// The NUL separator keeps ["ab","c"] distinct from ["a","bc"].
	if ConfigHash([]string{"ab", "c"}) == ConfigHash([]string{"a", "bc"}) {
		t.Error("hash does not separate arguments")
	}
}

func TestLiveStatus(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	n := 0
	l := StartLive(&mu2Writer{mu: &mu, w: &buf}, time.Millisecond, func() string {
		n++
		return "frame"
	})
	time.Sleep(20 * time.Millisecond)
	l.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "\rframe") {
		t.Errorf("live output missing frames: %q", out)
	}
	if !strings.HasSuffix(out, "\r") {
		t.Errorf("live output does not end with a cleared line: %q", out)
	}
}

// mu2Writer serializes writes so the test can read the buffer safely.
type mu2Writer struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (m *mu2Writer) Write(p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.w.Write(p)
}

func TestRateAndETA(t *testing.T) {
	if got := Rate(1_500_000); got != "1.5M/s" {
		t.Errorf("Rate = %q", got)
	}
	if got := ETA(50, 100, 10*time.Second); got != "10s" {
		t.Errorf("ETA = %q, want 10s", got)
	}
	if got := ETA(0, 100, time.Second); got != "--" {
		t.Errorf("ETA with no progress = %q, want --", got)
	}
}
