package telemetry

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
)

// ManifestSchema identifies the manifest format; bump the suffix on
// incompatible changes so downstream tooling (sweep results stores,
// benchcmp-style differs) can dispatch.
const ManifestSchema = "latencyhide/run-manifest/v1"

// StallSummary is the stall-cause tiling of a recorded run (see
// obs.StallBreakdown): every processor-step attributed to exactly one cause.
type StallSummary struct {
	ProcSteps  int64 `json:"proc_steps"`
	Busy       int64 `json:"busy"`
	Idle       int64 `json:"idle"`
	Dependency int64 `json:"dependency"`
	Bandwidth  int64 `json:"bandwidth"`
	Fault      int64 `json:"fault,omitempty"`
}

// SweepPoint is one row of a sweep manifest.
type SweepPoint struct {
	N           int     `json:"n"`
	Slowdown    float64 `json:"slowdown"`
	Efficiency  float64 `json:"efficiency"`
	Pebbles     int64   `json:"pebbles"`
	WallSeconds float64 `json:"wall_seconds"`
}

// ExpTiming is one experiment's wall time in an exp manifest.
type ExpTiming struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
}

// FleetSummary is the fleet-sweep section of a manifest: one shard of a
// sharded scenario sweep (see internal/fleet).
type FleetSummary struct {
	Seed uint64 `json:"seed"`
	N    int    `json:"n"` // generator scenarios in the plan
	// Shards/Shard identify this worker's slice of the plan.
	Shards int `json:"shards"`
	Shard  int `json:"shard"`
	// Items is the shard's item count; Resumed how many were already in
	// the store when the run started (skipped, not recomputed).
	Items   int    `json:"items"`
	Resumed int    `json:"resumed"`
	Store   string `json:"store"`
}

// TwinFamily is one theorem family's score in a twin-report manifest.
type TwinFamily struct {
	Name           string  `json:"name"`
	N              int     `json:"n"`
	MAPE           float64 `json:"mape"`
	Ceiling        float64 `json:"ceiling"`
	InBand         float64 `json:"in_band"`
	CertViolations int     `json:"cert_violations"`
	Pass           bool    `json:"pass"`
}

// VerifySummary is the verify-soak section of a manifest.
type VerifySummary struct {
	Seed      uint64         `json:"seed"`
	Scenarios int            `json:"scenarios"`
	Events    int64          `json:"events"`
	Relations map[string]int `json:"relations,omitempty"`
	Failures  int            `json:"failures"`
}

// RunManifest is the machine-readable record of one latencysim invocation:
// what ran (config hash + scenario spec), on which engine, how long it took,
// what the engine's telemetry registry measured, how memory evolved, and
// where the time went (stall tiling). `latencysim run|sweep|exp|verify|twin
// -manifest-out` emit it; `latencysim manifest -check` validates it; fleet
// sweeps record their shard plan and store path in the Fleet section and
// twin reports their per-theorem scores in the Twin section.
type RunManifest struct {
	Schema     string `json:"schema"`
	Command    string `json:"command"`
	ConfigHash string `json:"config_hash"`
	Scenario   string `json:"scenario"`
	StartedAt  string `json:"started_at"` // RFC3339

	Engine  string `json:"engine"` // "sequential" | "parallel"
	Workers int    `json:"workers"`

	WallSeconds float64 `json:"wall_seconds"`
	GuestSteps  int     `json:"guest_steps,omitempty"`
	HostSteps   int64   `json:"host_steps,omitempty"`
	Slowdown    float64 `json:"slowdown,omitempty"`

	Pebbles        int64   `json:"pebbles,omitempty"`
	PebblesPerSec  float64 `json:"pebbles_per_sec,omitempty"`
	BytesPerPebble float64 `json:"bytes_per_pebble,omitempty"` // allocated bytes / pebble
	PeakRSSBytes   uint64  `json:"peak_rss_bytes,omitempty"`

	Metrics *Snapshot `json:"metrics,omitempty"`

	MemSeries []MemSample `json:"mem_series,omitempty"`

	Stalls *StallSummary `json:"stalls,omitempty"`

	Sweep       []SweepPoint   `json:"sweep,omitempty"`
	Experiments []ExpTiming    `json:"experiments,omitempty"`
	Verify      *VerifySummary `json:"verify,omitempty"`
	Fleet       *FleetSummary  `json:"fleet,omitempty"`
	Twin        []TwinFamily   `json:"twin,omitempty"`
}

// ConfigHash hashes the canonical argument list of a run into a stable
// identifier, so result stores can key on "same configuration" without
// parsing flags.
func ConfigHash(args []string) string {
	h := fnv.New64a()
	for _, a := range args {
		h.Write([]byte(a))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteFile writes the manifest as indented JSON.
func (m *RunManifest) WriteFile(path string) error {
	if m.Schema == "" {
		m.Schema = ManifestSchema
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadManifest reads and decodes a manifest file.
func LoadManifest(path string) (*RunManifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m RunManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &m, nil
}

// Validate checks the manifest's structural contract: correct schema id, a
// known command, and — for engine-bearing commands — nonzero run figures and
// the telemetry the engine promises. Parallel runs must additionally carry
// SPSC ring occupancy and published-clock lag; the sequential engine has no
// boundary rings, so those are exempt.
func (m *RunManifest) Validate() error {
	var errs []string
	fail := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	if m.Schema != ManifestSchema {
		fail("schema %q != %q", m.Schema, ManifestSchema)
	}
	switch m.Command {
	case "run", "sweep", "exp", "verify", "twin":
	default:
		fail("unknown command %q", m.Command)
	}
	if m.ConfigHash == "" {
		fail("missing config_hash")
	}
	if m.WallSeconds <= 0 {
		fail("wall_seconds must be > 0")
	}
	switch m.Command {
	case "run":
		if m.Engine != "sequential" && m.Engine != "parallel" {
			fail("engine %q (want sequential or parallel)", m.Engine)
		}
		if m.Pebbles <= 0 {
			fail("pebbles must be > 0")
		}
		if m.BytesPerPebble <= 0 {
			fail("bytes_per_pebble must be > 0")
		}
		if m.Metrics == nil {
			fail("missing metrics snapshot")
		} else {
			need := []string{"cal_due_events"}
			for _, name := range need {
				if m.Metrics.Counter(name) <= 0 {
					fail("counter %s must be > 0", name)
				}
			}
			if m.Metrics.Gauge("cal_ring_depth_peak") <= 0 {
				fail("gauge cal_ring_depth_peak must be > 0")
			}
			// Memory-budget gauges: every run has knowledge rings, so
			// their peak footprint must be reported; the route table is
			// only nonzero when the run actually routed messages; peak RSS
			// is best-effort (0 = unknown on non-Linux / restricted proc).
			if m.Metrics.Gauge("know_ring_bytes_peak") <= 0 {
				fail("gauge know_ring_bytes_peak must be > 0")
			}
			if m.Metrics.Counter("messages_injected") > 0 && m.Metrics.Gauge("route_bytes") <= 0 {
				fail("gauge route_bytes must be > 0 when messages were injected")
			}
			if m.Engine == "parallel" {
				if m.Metrics.Gauge("ring_occupancy_peak") <= 0 {
					fail("gauge ring_occupancy_peak must be > 0 on the parallel engine")
				}
				if m.Metrics.Gauge("pubclock_lag_max") <= 0 {
					fail("gauge pubclock_lag_max must be > 0 on the parallel engine")
				}
			}
		}
	case "sweep":
		if m.Fleet != nil {
			if m.Fleet.Items <= 0 {
				fail("fleet items must be > 0")
			}
			if m.Fleet.Shards > 0 && (m.Fleet.Shard < 0 || m.Fleet.Shard >= m.Fleet.Shards) {
				fail("fleet shard %d outside [0,%d)", m.Fleet.Shard, m.Fleet.Shards)
			}
		} else if len(m.Sweep) == 0 {
			fail("sweep manifest has no points")
		}
	case "twin":
		if len(m.Twin) == 0 {
			fail("twin manifest has no family reports")
		}
	case "exp":
		if len(m.Experiments) == 0 {
			fail("exp manifest has no experiment timings")
		}
	case "verify":
		if m.Verify == nil {
			fail("verify manifest has no verify section")
		} else if m.Verify.Scenarios <= 0 {
			fail("verify scenarios must be > 0")
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("manifest invalid:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}
