// Package telemetry is the runtime measurement substrate for the engines: a
// low-overhead metrics registry (per-worker sharded counters, max-gauges and
// fixed-bucket histograms over atomic int64 slots), a periodic sampler that
// captures runtime/metrics and MemStats into a time series, a machine-readable
// RunManifest artifact, and a refreshing TTY status line for long runs.
//
// Design constraints, in order:
//
//  1. Near-zero cost when disabled. Every write goes through a *Shard method
//     with a nil-receiver fast path, so an engine built with a nil registry
//     pays one predictable branch per instrumentation site — no interface
//     dispatch, no map lookup, no allocation. The hottest per-pebble paths
//     (waiter-pool churn, calendar scheduling) do not even pay that: they
//     accumulate into plain engine-local int64s and flush into the shard once
//     per run.
//
//  2. Allocation-free when enabled. Metric IDs are dense indexes resolved at
//     registration time; a shard is a few flat []atomic.Int64 slices. Writes
//     are atomic adds/stores so a sampler goroutine (or the live status
//     line) can read a consistent-enough snapshot mid-run without locks.
//
//  3. Shards are cheap and plentiful: one per engine chunk/worker, created
//     via Registry.NewShard. Snapshot() merges them — counters sum, gauges
//     max, histogram buckets sum — which is exactly the cross-worker view
//     the manifest wants.
//
// Metrics must be registered before shards are created (the engine registers
// its schema once per run, then cuts shards); NewShard panics otherwise
// misuse would silently drop writes.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// CounterID names a monotonically increasing counter (merged by summing).
type CounterID int32

// GaugeID names a high-water-mark gauge (merged by taking the max).
type GaugeID int32

// HistID names a fixed-bucket power-of-two histogram (buckets merged by
// summing).
type HistID int32

// histBuckets is the fixed bucket count: bucket i holds observations v with
// bits.Len64(v) == i, i.e. bucket 0 is v=0, bucket i>=1 covers
// [2^(i-1), 2^i). 48 buckets cover every value the engines observe.
const histBuckets = 48

// Registry owns the metric name space and the shards writing into it.
// Registration is cheap and happens once per run; the hot path never touches
// the registry itself, only its shards.
type Registry struct {
	mu       sync.Mutex
	counters []string
	gauges   []string
	hists    []string
	shards   []*Shard
	sealed   bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers (or re-resolves) a counter by name.
func (r *Registry) Counter(name string) CounterID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return CounterID(r.intern(&r.counters, name, "counter"))
}

// Gauge registers (or re-resolves) a max-gauge by name.
func (r *Registry) Gauge(name string) GaugeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return GaugeID(r.intern(&r.gauges, name, "gauge"))
}

// Histogram registers (or re-resolves) a histogram by name.
func (r *Registry) Histogram(name string) HistID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return HistID(r.intern(&r.hists, name, "histogram"))
}

func (r *Registry) intern(names *[]string, name, kind string) int {
	for i, n := range *names {
		if n == name {
			return i
		}
	}
	if r.sealed {
		panic(fmt.Sprintf("telemetry: %s %q registered after the first shard was created", kind, name))
	}
	*names = append(*names, name)
	return len(*names) - 1
}

// NewShard creates a writer shard sized for every metric registered so far
// and seals the registry against further registration. A nil registry
// returns a nil shard, which every write method tolerates — that is the
// disabled fast path.
func (r *Registry) NewShard(label string) *Shard {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sealed = true
	s := &Shard{
		label:    label,
		counters: make([]atomic.Int64, len(r.counters)),
		gauges:   make([]atomic.Int64, len(r.gauges)),
		hists:    make([]histogram, len(r.hists)),
	}
	r.shards = append(r.shards, s)
	return s
}

// histogram is one shard's buckets for one histogram metric.
type histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Shard is a single-owner metrics writer. All slots are atomics, so
// concurrent writes from multiple goroutines are safe (counters merge
// correctly; SetMax is last-writer-wins per shard and shards are normally
// single-writer), and the sampler can read mid-run without locks.
type Shard struct {
	label    string
	counters []atomic.Int64
	gauges   []atomic.Int64
	hists    []histogram
}

// Add increments a counter by delta. Nil shards are a no-op.
func (s *Shard) Add(id CounterID, delta int64) {
	if s == nil {
		return
	}
	s.counters[id].Add(delta)
}

// Inc increments a counter by one. Nil shards are a no-op.
func (s *Shard) Inc(id CounterID) { s.Add(id, 1) }

// SetMax raises a high-water-mark gauge to v if v is larger. Nil shards are
// a no-op. Single-writer per shard: a plain load-compare-store suffices.
func (s *Shard) SetMax(id GaugeID, v int64) {
	if s == nil {
		return
	}
	if v > s.gauges[id].Load() {
		s.gauges[id].Store(v)
	}
}

// Observe records v into a histogram (v < 0 is clamped to 0). Nil shards are
// a no-op.
func (s *Shard) Observe(id HistID, v int64) {
	if s == nil {
		return
	}
	h := &s.hists[id]
	h.count.Add(1)
	if v < 0 {
		v = 0
	}
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// HistSnapshot is one merged histogram: power-of-two buckets plus count and
// sum (Buckets[i] counts observations v with bits.Len64(v) == i; trailing
// zero buckets are trimmed).
type HistSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Mean    float64 `json:"mean"`
	P50     int64   `json:"p50"`
	P99     int64   `json:"p99"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// quantile returns an upper bound for the q-quantile from the buckets (the
// top of the bucket the quantile falls in).
func (h *HistSnapshot) quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	want := int64(q * float64(h.Count))
	if want >= h.Count {
		want = h.Count - 1
	}
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen > want {
			if i == 0 {
				return 0
			}
			return 1<<i - 1
		}
	}
	return 0
}

// Snapshot is the merged view across every shard: counters summed, gauges
// maxed, histogram buckets summed.
type Snapshot struct {
	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Counter reads one merged counter from the snapshot (0 when absent).
func (s *Snapshot) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[name]
}

// Gauge reads one merged gauge from the snapshot (0 when absent).
func (s *Snapshot) Gauge(name string) int64 {
	if s == nil {
		return 0
	}
	return s.Gauges[name]
}

// Snapshot merges every shard. Safe to call while shards are still being
// written: counters and buckets are atomic loads, so the view is a slightly
// stale but internally monotone cut.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for i, name := range r.counters {
		var v int64
		for _, s := range r.shards {
			if i < len(s.counters) {
				v += s.counters[i].Load()
			}
		}
		out.Counters[name] = v
	}
	for i, name := range r.gauges {
		var v int64
		for _, s := range r.shards {
			if i < len(s.gauges) {
				if g := s.gauges[i].Load(); g > v {
					v = g
				}
			}
		}
		out.Gauges[name] = v
	}
	for i, name := range r.hists {
		var h HistSnapshot
		var buckets [histBuckets]int64
		for _, s := range r.shards {
			if i < len(s.hists) {
				sh := &s.hists[i]
				h.Count += sh.count.Load()
				h.Sum += sh.sum.Load()
				for b := range buckets {
					buckets[b] += sh.buckets[b].Load()
				}
			}
		}
		top := 0
		for b, c := range buckets {
			if c > 0 {
				top = b + 1
			}
		}
		h.Buckets = append([]int64(nil), buckets[:top]...)
		if h.Count > 0 {
			h.Mean = float64(h.Sum) / float64(h.Count)
		}
		h.P50 = h.quantile(0.50)
		h.P99 = h.quantile(0.99)
		out.Hists[name] = h
	}
	return out
}

// ShardLabels lists the labels of every shard created so far, in creation
// order (handy for debugging which workers reported).
func (r *Registry) ShardLabels() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.label
	}
	return out
}

// Names returns every registered metric name, sorted, prefixed by kind
// ("counter:", "gauge:", "hist:"). Used by tests and the manifest validator.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, n := range r.counters {
		out = append(out, "counter:"+n)
	}
	for _, n := range r.gauges {
		out = append(out, "gauge:"+n)
	}
	for _, n := range r.hists {
		out = append(out, "hist:"+n)
	}
	sort.Strings(out)
	return out
}
