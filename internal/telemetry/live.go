package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Live renders a refreshing single-line status to a terminal while a long
// run or sweep is in flight: the caller supplies a render function (called
// on the Live goroutine, so it must be safe to run concurrently with the
// work — registry snapshots are) and Live repaints it every interval with a
// carriage return, erasing the previous frame. Stop() clears the line, so
// normal output never interleaves with a stale frame.
type Live struct {
	w        io.Writer
	render   func() string
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	mu       sync.Mutex
	lastLen  int
}

// StartLive begins repainting. interval 0 means 500ms.
func StartLive(w io.Writer, interval time.Duration, render func() string) *Live {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	l := &Live{
		w: w, render: render, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go l.loop()
	return l
}

func (l *Live) loop() {
	defer close(l.done)
	ticker := time.NewTicker(l.interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-ticker.C:
			l.paint(l.render())
		}
	}
}

func (l *Live) paint(line string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Pad with spaces to fully overwrite the previous frame.
	pad := ""
	if n := l.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(l.w, "\r%s%s", line, pad)
	l.lastLen = len(line)
}

// Stop halts repainting and clears the status line.
func (l *Live) Stop() {
	close(l.stop)
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lastLen > 0 {
		fmt.Fprintf(l.w, "\r%s\r", strings.Repeat(" ", l.lastLen))
	}
}

// Rate formats a per-second figure compactly (1234567 -> "1.2M/s").
func Rate(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG/s", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk/s", v/1e3)
	default:
		return fmt.Sprintf("%.0f/s", v)
	}
}

// ETA formats a remaining-time estimate from work done and total (elapsed
// since start); "--" when the rate is unknown or total is unset.
func ETA(done, total int64, elapsed time.Duration) string {
	if done <= 0 || total <= 0 || done >= total || elapsed <= 0 {
		return "--"
	}
	rate := float64(done) / elapsed.Seconds()
	rem := time.Duration(float64(total-done)/rate) * time.Second
	return rem.Round(time.Second).String()
}
