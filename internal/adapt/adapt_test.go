package adapt

import (
	"reflect"
	"strings"
	"testing"

	"latencyhide/internal/assign"
)

func lineNeighbors(n int) func(int) []int {
	return func(col int) []int {
		var nb []int
		if col > 0 {
			nb = append(nb, col-1)
		}
		if col+1 < n {
			nb = append(nb, col+1)
		}
		return nb
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	specs := []string{
		"epoch=64,thresh=0.5,extra=1,budget=16,mode=any",
		"epoch=256,thresh=0.35,extra=2,budget=32,mode=fault",
		"epoch=1,thresh=0.001,extra=7,budget=1,mode=any",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", p.String(), err)
		}
		if *p2 != *p {
			t.Errorf("round trip of %q changed the policy: %+v vs %+v", spec, p, p2)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	p, err := Parse("epoch=64")
	if err != nil {
		t.Fatal(err)
	}
	want := Policy{Epoch: 64, Threshold: 0.5, MaxExtra: 1, Budget: 16}
	if *p != want {
		t.Errorf("defaults = %+v, want %+v", *p, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"":                       "missing epoch",
		"thresh=0.5":             "missing epoch",
		"epoch=0":                "epoch",
		"epoch=64,thresh=0":      "threshold",
		"epoch=64,extra=0":       "extra",
		"epoch=64,budget=0":      "budget",
		"epoch=64,mode=maybe":    "mode",
		"epoch=64,zeal=9":        "unknown key",
		"epoch=64,epoch=64":      "duplicate",
		"epoch":                  "key=value",
		"epoch=64,thresh=banana": "thresh",
	}
	for spec, want := range cases {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		} else if !strings.Contains(err.Error(), want) {
			t.Errorf("Parse(%q) error %q missing %q", spec, err, want)
		}
	}
}

func TestEnabled(t *testing.T) {
	var nilPol *Policy
	if nilPol.Enabled() {
		t.Error("nil policy enabled")
	}
	if (&Policy{}).Enabled() {
		t.Error("zero policy enabled")
	}
	if !(&Policy{Epoch: 1}).Enabled() {
		t.Error("epoch=1 policy disabled")
	}
	if err := nilPol.Validate(); err != nil {
		t.Errorf("nil policy invalid: %v", err)
	}
}

// Placement on a replicated line assignment: the standby for each column
// must be a consumer host that does not hold the column, bounded by
// MaxExtra, deterministic, and farthest-first from the nearest holder.
func TestPlacement(t *testing.T) {
	// 8 hosts, 8 columns, rep 2: column c on hosts c and (c+1)%8 — except we
	// use a simple blocked layout: host h owns columns {2h, 2h+1} over 16
	// columns, so consumers are adjacent hosts.
	const hostN, cols = 8, 16
	owned := make([][]int, hostN)
	for h := 0; h < hostN; h++ {
		owned[h] = []int{2 * h, 2*h + 1}
	}
	a, err := assign.FromOwned(hostN, cols, owned)
	if err != nil {
		t.Fatal(err)
	}
	delays := []int{1, 1, 1, 9, 1, 1, 1} // host 3|4 boundary is far
	p := &Policy{Epoch: 8, Threshold: 0.5, MaxExtra: 1, Budget: 4}
	pl := p.Placement(a, delays, lineNeighbors(cols), nil)
	if len(pl) != cols {
		t.Fatalf("placement has %d columns, want %d", len(pl), cols)
	}
	for col, hosts := range pl {
		if len(hosts) > p.MaxExtra {
			t.Errorf("col %d has %d standbys > MaxExtra %d", col, len(hosts), p.MaxExtra)
		}
		for _, h := range hosts {
			if a.Holds(h, col) {
				t.Errorf("col %d standby host %d already holds it", col, h)
			}
			holdsNeighbor := false
			for _, nb := range lineNeighbors(cols)(col) {
				if a.Holds(h, nb) {
					holdsNeighbor = true
				}
			}
			if !holdsNeighbor {
				t.Errorf("col %d standby host %d holds no neighbor (not a consumer)", col, h)
			}
		}
	}
	// Column 7 (host 3) has consumers host 4 (col 8 neighbors 7) across the
	// delay-9 link and host 3 itself holds it; the exposed consumer is 4.
	if got := pl[7]; !reflect.DeepEqual(got, []int{4}) {
		t.Errorf("pl[7] = %v, want [4] (far consumer across the slow link)", got)
	}
	// Determinism: recomputing yields the identical placement.
	pl2 := p.Placement(a, delays, lineNeighbors(cols), nil)
	if !reflect.DeepEqual(pl, pl2) {
		t.Error("placement not deterministic")
	}
}

func TestPlacementAvoidsCrashed(t *testing.T) {
	const hostN, cols = 6, 6
	owned := make([][]int, hostN)
	for h := 0; h < hostN; h++ {
		owned[h] = []int{h}
	}
	a, err := assign.FromOwned(hostN, cols, owned)
	if err != nil {
		t.Fatal(err)
	}
	delays := []int{1, 1, 1, 1, 1}
	p := &Policy{Epoch: 8, Threshold: 0.5, MaxExtra: 2, Budget: 4}
	pl := p.Placement(a, delays, lineNeighbors(cols), []int{2})
	for col, hosts := range pl {
		for _, h := range hosts {
			if h == 2 {
				t.Errorf("col %d placed a standby on crashed host 2", col)
			}
		}
	}
}

func TestDecide(t *testing.T) {
	p := &Policy{Epoch: 10, Threshold: 0.5, MaxExtra: 1, Budget: 2}
	cands := []Candidate{
		{Host: 0, Col: 3, Blamed: 4},                      // below threshold (need 5)
		{Host: 1, Col: 4, Blamed: 5},                      // fires
		{Host: 2, Col: 5, Blamed: 9, FaultContext: true},  // fires
		{Host: 3, Col: 6, Blamed: 10, FaultContext: true}, // budget exhausted
	}
	ds, budget := p.Decide(21, cands, p.Budget)
	if budget != 0 {
		t.Errorf("budget = %d, want 0", budget)
	}
	want := []Decision{{Step: 21, Host: 1, Col: 4}, {Step: 21, Host: 2, Col: 5}}
	if !reflect.DeepEqual(ds, want) {
		t.Errorf("decisions = %v, want %v", ds, want)
	}

	// mode=fault drops blame without fault context.
	pf := &Policy{Epoch: 10, Threshold: 0.5, MaxExtra: 1, Budget: 2, RequireFault: true}
	ds, budget = pf.Decide(21, cands, pf.Budget)
	want = []Decision{{Step: 21, Host: 2, Col: 5}, {Step: 21, Host: 3, Col: 6}}
	if !reflect.DeepEqual(ds, want) {
		t.Errorf("mode=fault decisions = %v, want %v", ds, want)
	}
	if budget != 0 {
		t.Errorf("mode=fault budget = %d, want 0", budget)
	}

	// Exhausted budget decides nothing.
	if ds, budget := p.Decide(21, cands, 0); len(ds) != 0 || budget != 0 {
		t.Errorf("zero budget decided %v (budget %d)", ds, budget)
	}

	// Tiny epochs clamp the threshold to at least one blamed step.
	tiny := &Policy{Epoch: 1, Threshold: 0.1, MaxExtra: 1, Budget: 1}
	if ds, _ := tiny.Decide(2, []Candidate{{Host: 0, Col: 0, Blamed: 0}}, 1); len(ds) != 0 {
		t.Errorf("zero blame fired: %v", ds)
	}
	if ds, _ := tiny.Decide(2, []Candidate{{Host: 0, Col: 0, Blamed: 1}}, 1); len(ds) != 1 {
		t.Errorf("one blamed step did not fire with clamped need: %v", ds)
	}
}
