// Package adapt is the adaptive-redundancy layer: an epoch-based
// replication controller that watches per-column stall forensics and
// activates pre-provisioned standby replicas when a column's stall blame
// crosses a threshold.
//
// The paper (OVERLAP, Theorem 2) fixes replication up front; this package
// treats redundancy as a cost/benefit knob under observed conditions, after
// "Low latency via redundancy" (arXiv:1306.3707). Everything here is a pure
// function of static configuration and the deterministic forensics the
// engine feeds it, so adaptive runs stay bit-identical across the
// sequential and parallel engines:
//
//   - Placement picks, per column, up to MaxExtra standby hosts from the
//     column's consumer set — a pure function of (assignment, delays,
//     guest graph, crash set).
//   - Decide turns one epoch's stall-blame candidates into activations,
//     scanning in the engine's canonical (host, column) order under a
//     global activation budget.
//
// A standby replica is dormant until activated: it is provisioned into the
// routing fan-out at build time (so its host already receives the column's
// dependency traffic), and activation at an epoch boundary simply starts
// its local recomputation from guest step 1. Activated standbys never send
// — they serve their own host's consumers, cutting the dependency latency
// the forensics blamed.
package adapt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"latencyhide/internal/assign"
)

// Policy configures the replication controller. The zero value (and a nil
// *Policy) disables adaptation.
type Policy struct {
	// Epoch is the controller period in host steps: forensics are harvested
	// and decisions made at steps Epoch, 2*Epoch, ...; activations take
	// effect the following step.
	Epoch int
	// Threshold is the stall fraction that triggers activation: a dormant
	// standby of column c on host p activates when the steps p's columns
	// spent blocked on c during the epoch reach Threshold*Epoch.
	Threshold float64
	// MaxExtra is the number of standby replicas placed per column, >= 1.
	// Placement bounds activation, so no column ever gains more than
	// MaxExtra replicas beyond its static assignment.
	MaxExtra int
	// Budget caps total activations across the whole run, >= 1.
	Budget int
	// RequireFault restricts activation to blame with injected-fault
	// context (the blamed dependency's supply path overlapped an outage,
	// slowdown or crash during the epoch). Without it, pure latency or
	// bandwidth pressure can trigger activation too.
	RequireFault bool
}

// Enabled reports whether the policy adapts at all.
func (p *Policy) Enabled() bool { return p != nil && p.Epoch > 0 }

// Validate checks the policy ranges.
func (p *Policy) Validate() error {
	if p == nil {
		return nil
	}
	if p.Epoch < 1 {
		return fmt.Errorf("adapt: epoch %d < 1", p.Epoch)
	}
	if p.Threshold <= 0 {
		return fmt.Errorf("adapt: threshold %v <= 0", p.Threshold)
	}
	if p.MaxExtra < 1 {
		return fmt.Errorf("adapt: extra %d < 1", p.MaxExtra)
	}
	if p.Budget < 1 {
		return fmt.Errorf("adapt: budget %d < 1", p.Budget)
	}
	return nil
}

// Placement computes the standby placement: Placement(...)[c] lists, in
// ascending host order, the up-to-MaxExtra hosts provisioned with a dormant
// replica of column c. Candidates are the column's consumer hosts (holders
// of a guest neighbor of c that do not hold c, minus the crash set in
// avoid), ranked by delay distance to c's nearest surviving holder,
// farthest first — the consumers most exposed to the column's supply
// latency get the standby. Ties break toward the lower host, so the
// placement is a deterministic pure function of its inputs; the verify
// oracle recomputes it to check every activation.
func (p *Policy) Placement(a *assign.Assignment, delays []int, neighbors func(int) []int, avoid []int) [][]int {
	if !p.Enabled() {
		return nil
	}
	dead := make(map[int]bool, len(avoid))
	for _, h := range avoid {
		dead[h] = true
	}
	// prefix[i] is the delay distance from host 0 to host i.
	prefix := make([]int64, a.HostN)
	for i, d := range delays {
		prefix[i+1] = prefix[i] + int64(d)
	}
	dist := func(x, y int) int64 {
		d := prefix[y] - prefix[x]
		if d < 0 {
			d = -d
		}
		return d
	}
	out := make([][]int, a.Columns)
	for col := 0; col < a.Columns; col++ {
		cand := map[int]bool{}
		for _, nb := range neighbors(col) {
			for _, h := range a.Holders[nb] {
				if !dead[h] {
					cand[h] = true
				}
			}
		}
		for _, h := range a.Holders[col] {
			delete(cand, h)
		}
		if len(cand) == 0 {
			continue
		}
		type scored struct {
			host  int
			score int64
		}
		hosts := make([]scored, 0, len(cand))
		for h := range cand {
			best := int64(-1)
			for _, hold := range a.Holders[col] {
				if dead[hold] {
					continue
				}
				if d := dist(h, hold); best < 0 || d < best {
					best = d
				}
			}
			if best < 0 {
				// Every holder crashed; distance is moot, keep the host.
				best = 1 << 62
			}
			hosts = append(hosts, scored{host: h, score: best})
		}
		sort.Slice(hosts, func(i, j int) bool {
			if hosts[i].score != hosts[j].score {
				return hosts[i].score > hosts[j].score
			}
			return hosts[i].host < hosts[j].host
		})
		n := p.MaxExtra
		if n > len(hosts) {
			n = len(hosts)
		}
		picked := make([]int, n)
		for i := 0; i < n; i++ {
			picked[i] = hosts[i].host
		}
		sort.Ints(picked)
		out[col] = picked
	}
	return out
}

// Candidate is one dormant standby pair with its epoch forensics: Host's
// owned columns spent Blamed stalled steps this epoch blocked on values of
// Col, and FaultContext says whether that blame overlaps an injected fault.
type Candidate struct {
	Host         int
	Col          int
	Blamed       int64
	FaultContext bool
}

// Decision is one activation: the standby replica of Col on Host starts
// computing at Step (the step after the epoch boundary that decided it).
type Decision struct {
	Step int64
	Host int
	Col  int
}

// Decide scans one epoch boundary's candidates in the order given (the
// engine feeds canonical (host, column) order) and returns the activations
// the policy makes, plus the remaining budget. Each candidate activates
// when its blame reaches Threshold*Epoch, its fault context satisfies
// RequireFault, and budget remains. step is the first step the activations
// take effect (boundary + 1).
func (p *Policy) Decide(step int64, cands []Candidate, budget int) ([]Decision, int) {
	if !p.Enabled() || budget <= 0 {
		return nil, budget
	}
	need := int64(p.Threshold * float64(p.Epoch))
	if need < 1 {
		need = 1
	}
	var out []Decision
	for _, c := range cands {
		if budget <= 0 {
			break
		}
		if c.Blamed < need {
			continue
		}
		if p.RequireFault && !c.FaultContext {
			continue
		}
		out = append(out, Decision{Step: step, Host: c.Host, Col: c.Col})
		budget--
	}
	return out, budget
}

// Parse builds a Policy from the CLI spec format
//
//	epoch=STEPS[,thresh=FRAC][,extra=N][,budget=N][,mode=any|fault]
//
// e.g. "epoch=256,thresh=0.35,extra=2,budget=32,mode=fault". Defaults:
// thresh 0.5, extra 1, budget 16, mode any.
func Parse(spec string) (*Policy, error) {
	p := &Policy{Threshold: 0.5, MaxExtra: 1, Budget: 16}
	seen := map[string]bool{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("adapt: item %q is not key=value", item)
		}
		if seen[key] {
			return nil, fmt.Errorf("adapt: duplicate key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "epoch":
			p.Epoch, err = strconv.Atoi(val)
		case "thresh":
			p.Threshold, err = strconv.ParseFloat(val, 64)
		case "extra":
			p.MaxExtra, err = strconv.Atoi(val)
		case "budget":
			p.Budget, err = strconv.Atoi(val)
		case "mode":
			switch val {
			case "any":
				p.RequireFault = false
			case "fault":
				p.RequireFault = true
			default:
				return nil, fmt.Errorf("adapt: mode %q (want any or fault)", val)
			}
		default:
			return nil, fmt.Errorf("adapt: unknown key %q (want epoch, thresh, extra, budget or mode)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("adapt: item %q: %v", item, err)
		}
	}
	if !seen["epoch"] {
		return nil, fmt.Errorf("adapt: spec %q missing epoch=", spec)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// String renders the policy back in Parse's spec format.
func (p *Policy) String() string {
	if p == nil {
		return ""
	}
	mode := "any"
	if p.RequireFault {
		mode = "fault"
	}
	return fmt.Sprintf("epoch=%d,thresh=%g,extra=%d,budget=%d,mode=%s",
		p.Epoch, p.Threshold, p.MaxExtra, p.Budget, mode)
}
