package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"latencyhide/internal/guest"
	"latencyhide/internal/network"
)

func allGuests() map[string]guest.Graph {
	return map[string]guest.Graph{
		"line":      guest.NewLinearArray(40),
		"ring":      guest.NewRing(40),
		"mesh":      guest.NewMesh(6, 7),
		"tree":      guest.NewBinaryTree(5),
		"hypercube": guest.NewHypercube(5),
		"butterfly": guest.NewButterfly(4),
		"array3d":   guest.NewArrayND(4, 3, 5),
		"torus":     guest.NewTorus2D(5, 6),
	}
}

func checkPermutation(t *testing.T, l *Layout, n int) {
	t.Helper()
	if len(l.Order) != n {
		t.Fatalf("%s: %d slots for %d nodes", l.Name, len(l.Order), n)
	}
	seen := make([]bool, n)
	for slot, node := range l.Order {
		if node < 0 || node >= n || seen[node] {
			t.Fatalf("%s: bad node %d at slot %d", l.Name, node, slot)
		}
		seen[node] = true
		if l.PosOf[node] != slot {
			t.Fatalf("%s: PosOf broken", l.Name)
		}
	}
}

func TestLayoutsArePermutations(t *testing.T) {
	for name, g := range allGuests() {
		t.Run(name, func(t *testing.T) {
			checkPermutation(t, Identity(g.NumNodes()), g.NumNodes())
			checkPermutation(t, BFS(g), g.NumNodes())
			checkPermutation(t, Bisection(g, 7), g.NumNodes())
		})
	}
	h := guest.NewHypercube(6)
	checkPermutation(t, Gray(h), h.NumNodes())
	b := guest.NewButterfly(3)
	checkPermutation(t, RankMajor(b), b.NumNodes())
	tr := guest.NewBinaryTree(4)
	checkPermutation(t, InOrder(tr), tr.NumNodes())
	checkPermutation(t, LevelOrder(tr), tr.NumNodes())
}

func TestNewRejectsNonPermutation(t *testing.T) {
	if _, err := New("x", []int{0, 0}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := New("x", []int{0, 5}); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestMeasureLine(t *testing.T) {
	g := guest.NewLinearArray(10)
	m := Measure(g, Identity(10))
	if m.MaxStretch != 1 || m.CutWidth != 1 || m.Edges != 9 {
		t.Fatalf("%+v", m)
	}
	// reversing is still perfect
	rev := make([]int, 10)
	for i := range rev {
		rev[i] = 9 - i
	}
	l, _ := New("rev", rev)
	if mm := Measure(g, l); mm.MaxStretch != 1 {
		t.Fatalf("%+v", mm)
	}
}

func TestMeasureRingWrap(t *testing.T) {
	g := guest.NewRing(10)
	m := Measure(g, Identity(10))
	if m.MaxStretch != 9 {
		t.Fatalf("identity ring should have the wrap edge: %+v", m)
	}
}

func TestInOrderTreeCutwidth(t *testing.T) {
	// in-order layout of a tree has cutwidth O(log n); level order has
	// cutwidth Theta(n)
	tr := guest.NewBinaryTree(7) // 255 nodes
	in := Measure(tr, InOrder(tr))
	lv := Measure(tr, LevelOrder(tr))
	if in.CutWidth > 2*8 {
		t.Fatalf("in-order cutwidth %d not O(log n)", in.CutWidth)
	}
	if lv.CutWidth < 4*in.CutWidth {
		t.Fatalf("level-order cutwidth %d should be far above in-order %d", lv.CutWidth, in.CutWidth)
	}
}

func TestGrayBeatsIdentityOnAvgStretch(t *testing.T) {
	h := guest.NewHypercube(7)
	gray := Measure(h, Gray(h))
	id := Measure(h, Identity(h.NumNodes()))
	// Gray code guarantees one edge per adjacent slot pair; overall
	// average stretch must not be worse than identity
	if gray.AvgStretch > id.AvgStretch*1.01 {
		t.Fatalf("gray %.2f worse than identity %.2f", gray.AvgStretch, id.AvgStretch)
	}
}

func TestBFSMeshLocality(t *testing.T) {
	g := guest.NewMesh(8, 8)
	m := Measure(g, BFS(g))
	// BFS on a mesh keeps stretch within ~2 side lengths
	if m.MaxStretch > 3*8 {
		t.Fatalf("BFS mesh stretch %d", m.MaxStretch)
	}
}

func unitLine(n int) []int {
	d := make([]int, n-1)
	for i := range d {
		d[i] = 1
	}
	return d
}

func TestSimulateAllGuestsVerified(t *testing.T) {
	delays := unitLine(32)
	for name, g := range allGuests() {
		t.Run(name, func(t *testing.T) {
			r, err := Simulate(g, BFS(g), delays, Options{Steps: 6, Seed: 3, Check: true})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Sim.Checked {
				t.Fatal("unchecked")
			}
			if r.Sim.PebblesComputed < int64(g.NumNodes()*6) {
				t.Fatalf("only %d pebbles", r.Sim.PebblesComputed)
			}
		})
	}
}

func TestSimulateOnNOWVerified(t *testing.T) {
	host := network.RandomNOW(48, 4, network.ExpDelay{Mean: 2}, 9)
	g := guest.NewButterfly(3)
	r, err := SimulateOnNOW(g, RankMajor(g), host, Options{Steps: 5, Seed: 1, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Checked {
		t.Fatal("unchecked")
	}
	if r.Layout != "identity" || r.Guest == "" {
		t.Fatalf("%+v", r)
	}
}

func TestSimulateErrors(t *testing.T) {
	g := guest.NewRing(10)
	if _, err := Simulate(g, Identity(9), unitLine(4), Options{Steps: 2}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := Simulate(g, Identity(10), unitLine(4), Options{Steps: 0}); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestSimulateTailAssignment(t *testing.T) {
	// guest larger than nUnits*spu with spu=1: the tail must be covered
	g := guest.NewLinearArray(100)
	r, err := Simulate(g, Identity(100), unitLine(16), Options{Steps: 4, Seed: 2, SlotsPerUnit: 1, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Checked {
		t.Fatal("unchecked")
	}
}

// Property: Bisection always produces a valid permutation and never has
// cutwidth worse than edges.
func TestBisectionProperty(t *testing.T) {
	f := func(seed int64, sel uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + int(sel%60)
		adj := make([][]int, n)
		for i := 0; i < 2*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], u)
			}
		}
		g := guest.NewCustom("rand", adj)
		l := Bisection(g, seed)
		seen := make([]bool, n)
		for _, v := range l.Order {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		m := Measure(g, l)
		return m.CutWidth <= m.Edges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateOnNOWDisconnected(t *testing.T) {
	host := network.New(4)
	host.MustAddLink(0, 1, 1)
	g := guest.NewRing(6)
	if _, err := SimulateOnNOW(g, Identity(6), host, Options{Steps: 2}); err == nil {
		t.Fatal("disconnected host accepted")
	}
}

func TestSimulateWithCustomKernel(t *testing.T) {
	// a real kernel through the general-guest path: hypercube all-max
	g := guest.NewHypercube(4)
	op := func(_ uint64, _ int, _ int, self uint64, ns []uint64) uint64 {
		best := self
		for _, v := range ns {
			if v > best {
				best = v
			}
		}
		return best
	}
	init := func(node int, _ int64) uint64 { return uint64(node * 7) }
	r, err := Simulate(g, Gray(g), unitLine(8), Options{
		Steps: 4, Op: op, Init: init, Check: true, // diameter = dim = 4
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Checked {
		t.Fatal("unchecked")
	}
}

func TestSimulateParallelEngine(t *testing.T) {
	g := guest.NewMesh(6, 6)
	l := BFS(g)
	delays := unitLine(24)
	seq, err := Simulate(g, l, delays, Options{Steps: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Simulate(g, l, delays, Options{Steps: 6, Seed: 4, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Sim.HostSteps != par.Sim.HostSteps {
		t.Fatalf("engines disagree: %d vs %d", seq.Sim.HostSteps, par.Sim.HostSteps)
	}
}
