package layout

import (
	"math"
	"math/rand"

	"latencyhide/internal/guest"
)

// Anneal improves a layout by simulated annealing over slot swaps,
// minimising a blend of maximum and average edge stretch (E14 shows the
// slowdown tracks max stretch, so it is weighted heavily). Deterministic
// for a given seed. Returns the best layout found; the input is not
// modified.
func Anneal(g guest.Graph, start *Layout, seed int64, iters int) *Layout {
	n := g.NumNodes()
	if n != len(start.Order) || n < 3 {
		return start
	}
	if iters <= 0 {
		iters = 200 * n
	}
	rng := rand.New(rand.NewSource(seed))

	order := append([]int(nil), start.Order...)
	posOf := append([]int(nil), start.PosOf...)

	// cost: sum over edges of stretch^2 (penalises long edges steeply,
	// a smooth proxy for max stretch that remains cheap to update).
	edgeCost := func(u, v int) float64 {
		d := float64(posOf[u] - posOf[v])
		return d * d
	}
	var cost float64
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v > u {
				cost += edgeCost(u, v)
			}
		}
	}

	// delta of swapping the nodes at slots a and b
	swapDelta := func(a, b int) float64 {
		x, y := order[a], order[b]
		var before, after float64
		for _, v := range g.Neighbors(x) {
			if v == y {
				continue // relative distance unchanged by the swap
			}
			before += edgeCost(x, v)
			d := float64(b - posOf[v])
			after += d * d
		}
		for _, v := range g.Neighbors(y) {
			if v == x {
				continue
			}
			before += edgeCost(y, v)
			d := float64(a - posOf[v])
			after += d * d
		}
		return after - before
	}

	bestOrder := append([]int(nil), order...)
	bestCost := cost
	t0 := cost / float64(n) / 4
	if t0 < 1 {
		t0 = 1
	}
	for it := 0; it < iters; it++ {
		// geometric cooling
		temp := t0 * math.Pow(0.002, float64(it)/float64(iters))
		a := rng.Intn(n)
		// mostly local swaps: they preserve locality structure
		span := 1 + rng.Intn(8)
		b := a + span
		if b >= n {
			b = a - span
		}
		if b < 0 || b == a {
			continue
		}
		d := swapDelta(a, b)
		if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
			x, y := order[a], order[b]
			order[a], order[b] = y, x
			posOf[x], posOf[y] = b, a
			cost += d
			if cost < bestCost {
				bestCost = cost
				copy(bestOrder, order)
			}
		}
	}
	l, err := New(start.Name+"+anneal", bestOrder)
	if err != nil {
		return start
	}
	return l
}
