// Package layout extends the paper's machinery to arbitrary guest networks
// — the "trees, arrays, butterflies and hypercubes" Section 7 names as the
// ultimate targets. The ring results of Section 3 apply to any guest once
// its nodes are arranged along a line: the interval tree assigns contiguous
// *slots* of the arrangement to host processors (with the usual sibling
// overlaps), and the engine's multicast routing handles whatever dependency
// edges the guest has.
//
// The quality of the arrangement decides the constants: an edge between
// slots that are far apart forces long host paths (stretch), and a cut of
// the line crossed by many guest edges concentrates traffic (cutwidth).
// The package provides natural layouts for the structured guests (level
// order for trees, Gray-code order for hypercubes, rank-major for
// butterflies), a Cuthill-McKee-style BFS layout and a recursive-bisection
// layout for arbitrary graphs, plus the metrics to compare them.
package layout

import (
	"fmt"
	"math/rand"
	"sort"

	"latencyhide/internal/guest"
)

// Layout is a one-to-one arrangement of guest nodes along a line.
type Layout struct {
	Name string
	// Order[slot] is the guest node at that line slot.
	Order []int
	// PosOf[node] is the slot of the guest node (inverse of Order).
	PosOf []int
}

// New builds a Layout from an order, validating it is a permutation.
func New(name string, order []int) (*Layout, error) {
	l := &Layout{Name: name, Order: order, PosOf: make([]int, len(order))}
	seen := make([]bool, len(order))
	for slot, node := range order {
		if node < 0 || node >= len(order) || seen[node] {
			return nil, fmt.Errorf("layout: order is not a permutation at slot %d (node %d)", slot, node)
		}
		seen[node] = true
		l.PosOf[node] = slot
	}
	return l, nil
}

// Identity returns the natural (id-order) layout.
func Identity(n int) *Layout {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	l, _ := New("identity", order)
	return l
}

// BFS returns a Cuthill-McKee-style layout: breadth-first from a
// pseudo-peripheral node, children visited in ascending id order. Good
// locality for meshes and trees; O(V+E).
func BFS(g guest.Graph) *Layout {
	n := g.NumNodes()
	start := pseudoPeripheral(g)
	order := make([]int, 0, n)
	seen := make([]bool, n)
	queue := []int{start}
	seen[start] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.Neighbors(u) {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	// disconnected guests: append remaining components
	for v := 0; v < n; v++ {
		if !seen[v] {
			seen[v] = true
			order = append(order, v)
		}
	}
	l, _ := New("bfs", order)
	return l
}

// pseudoPeripheral finds an approximately peripheral node by double BFS.
func pseudoPeripheral(g guest.Graph) int {
	far := func(src int) int {
		n := g.NumNodes()
		seen := make([]bool, n)
		queue := []int{src}
		seen[src] = true
		last := src
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			last = u
			for _, v := range g.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		return last
	}
	return far(far(0))
}

// Bisection returns a recursive-bisection layout: the node set is split by
// BFS growth from an extreme node (taking the nearer half first), and each
// half is laid out recursively. Tends to beat plain BFS on expanders and
// butterflies. Deterministic for a given seed.
func Bisection(g guest.Graph, seed int64) *Layout {
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	order := make([]int, 0, n)
	var rec func(set []int)
	rec = func(set []int) {
		if len(set) <= 2 {
			order = append(order, set...)
			return
		}
		inSet := make(map[int]bool, len(set))
		for _, v := range set {
			inSet[v] = true
		}
		// BFS within the set from a random extreme, collecting half
		start := set[rng.Intn(len(set))]
		start = farWithin(g, inSet, farWithin(g, inSet, start))
		half := len(set) / 2
		taken := make(map[int]bool, half)
		queue := []int{start}
		taken[start] = true
		var a []int
		for len(queue) > 0 && len(a) < half {
			u := queue[0]
			queue = queue[1:]
			a = append(a, u)
			for _, v := range g.Neighbors(u) {
				if inSet[v] && !taken[v] {
					taken[v] = true
					queue = append(queue, v)
				}
			}
		}
		if len(a) < half {
			// disconnected within the set: top up arbitrarily
			for _, v := range set {
				if len(a) >= half {
					break
				}
				if !taken[v] {
					taken[v] = true
					a = append(a, v)
				}
			}
		}
		aset := make(map[int]bool, len(a))
		for _, v := range a {
			aset[v] = true
		}
		var b []int
		for _, v := range set {
			if !aset[v] {
				b = append(b, v)
			}
		}
		sort.Ints(a)
		sort.Ints(b)
		rec(a)
		rec(b)
	}
	rec(nodes)
	l, _ := New("bisection", order)
	return l
}

func farWithin(g guest.Graph, inSet map[int]bool, src int) int {
	seen := map[int]bool{src: true}
	queue := []int{src}
	last := src
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		last = u
		for _, v := range g.Neighbors(u) {
			if inSet[v] && !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return last
}

// Gray returns the Gray-code layout of a hypercube guest: consecutive slots
// differ in one bit, so every slot boundary is crossed by exactly dim guest
// edges and hypercube edges have stretch at most 2^(dim-1) with most edges
// short.
func Gray(h *guest.HypercubeGraph) *Layout {
	n := h.NumNodes()
	order := make([]int, n)
	for i := 0; i < n; i++ {
		order[i] = i ^ (i >> 1)
	}
	l, _ := New("gray", order)
	return l
}

// RankMajor returns the rank-major layout of a butterfly: rank 0's nodes,
// then rank 1's, etc. Butterfly edges connect adjacent ranks only, so
// stretch is at most 2 * 2^levels.
func RankMajor(b *guest.Butterfly) *Layout {
	return Identity(b.NumNodes())
}

// LevelOrder returns the level-order (BFS-from-root) layout of a complete
// binary tree.
func LevelOrder(t *guest.BinaryTree) *Layout {
	return Identity(t.NumNodes()) // ids are already level-order
}

// InOrder returns the in-order (symmetric) layout of a complete binary
// tree: tree edges have stretch O(subtree size) but the cutwidth is
// O(log n), the optimum for trees.
func InOrder(t *guest.BinaryTree) *Layout {
	n := t.NumNodes()
	order := make([]int, 0, n)
	var rec func(i int)
	rec = func(i int) {
		if i >= n {
			return
		}
		rec(2*i + 1)
		order = append(order, i)
		rec(2*i + 2)
	}
	rec(0)
	l, _ := New("inorder", order)
	return l
}

// Metrics quantifies a layout's quality for line simulation.
type Metrics struct {
	Nodes int
	Edges int
	// MaxStretch is the largest slot distance across any guest edge —
	// the worst-case host-path length a dependency must travel.
	MaxStretch int
	// AvgStretch is the mean slot distance across guest edges.
	AvgStretch float64
	// CutWidth is the maximum number of guest edges crossing any slot
	// boundary — the per-boundary traffic the host links must carry.
	CutWidth int
}

// Measure computes layout quality metrics for the guest.
func Measure(g guest.Graph, l *Layout) Metrics {
	n := g.NumNodes()
	m := Metrics{Nodes: n}
	if len(l.PosOf) != n {
		panic("layout: size mismatch")
	}
	crossings := make([]int, n) // boundary after slot i
	var total int64
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue // count each edge once
			}
			m.Edges++
			a, b := l.PosOf[u], l.PosOf[v]
			if a > b {
				a, b = b, a
			}
			stretch := b - a
			total += int64(stretch)
			if stretch > m.MaxStretch {
				m.MaxStretch = stretch
			}
			for i := a; i < b; i++ {
				crossings[i]++
			}
		}
	}
	if m.Edges > 0 {
		m.AvgStretch = float64(total) / float64(m.Edges)
	}
	for _, c := range crossings {
		if c > m.CutWidth {
			m.CutWidth = c
		}
	}
	return m
}
