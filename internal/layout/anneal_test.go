package layout

import (
	"math/rand"
	"testing"

	"latencyhide/internal/guest"
)

func sumSq(g guest.Graph, l *Layout) float64 {
	var c float64
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if v > u {
				d := float64(l.PosOf[u] - l.PosOf[v])
				c += d * d
			}
		}
	}
	return c
}

func TestAnnealImprovesRandomOrder(t *testing.T) {
	g := guest.NewMesh(8, 8)
	// start from a deliberately bad (random) permutation
	rng := rand.New(rand.NewSource(5))
	order := rng.Perm(g.NumNodes())
	start, err := New("random", order)
	if err != nil {
		t.Fatal(err)
	}
	out := Anneal(g, start, 9, 40000)
	// valid permutation
	seen := make([]bool, g.NumNodes())
	for _, v := range out.Order {
		if seen[v] {
			t.Fatal("anneal broke the permutation")
		}
		seen[v] = true
	}
	before, after := sumSq(g, start), sumSq(g, out)
	if after >= before {
		t.Fatalf("anneal did not improve: %.0f -> %.0f", before, after)
	}
	mb, ma := Measure(g, start), Measure(g, out)
	if ma.AvgStretch >= mb.AvgStretch {
		t.Fatalf("avg stretch not improved: %.2f -> %.2f", mb.AvgStretch, ma.AvgStretch)
	}
	t.Logf("mesh 8x8 random start: maxStretch %d -> %d, avg %.2f -> %.2f",
		mb.MaxStretch, ma.MaxStretch, mb.AvgStretch, ma.AvgStretch)
}

func TestAnnealKeepsGoodLayoutsValid(t *testing.T) {
	g := guest.NewLinearArray(30)
	id := Identity(30)
	out := Anneal(g, id, 1, 5000)
	// identity is optimal for a line; anneal must not make it invalid,
	// and the cost must not regress
	if sumSq(g, out) > sumSq(g, id) {
		t.Fatal("anneal regressed an optimal layout")
	}
}

func TestAnnealDeterministic(t *testing.T) {
	g := guest.NewHypercube(5)
	start := Identity(g.NumNodes())
	a := Anneal(g, start, 3, 8000)
	b := Anneal(g, start, 3, 8000)
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatal("nondeterministic for equal seeds")
		}
	}
}

func TestAnnealTinyInputs(t *testing.T) {
	g := guest.NewLinearArray(2)
	l := Identity(2)
	if out := Anneal(g, l, 1, 100); out != l {
		t.Fatal("tiny input should return the start layout")
	}
}

func TestAnnealEndToEnd(t *testing.T) {
	// annealed layout must still simulate correctly
	g := guest.NewButterfly(3)
	l := Anneal(g, Bisection(g, 2), 7, 20000)
	r, err := Simulate(g, l, unitLine(16), Options{Steps: 4, Seed: 3, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Checked {
		t.Fatal("unchecked")
	}
}
