package layout

import (
	"fmt"

	"latencyhide/internal/assign"
	"latencyhide/internal/embedding"
	"latencyhide/internal/guest"
	"latencyhide/internal/network"
	"latencyhide/internal/sim"
	"latencyhide/internal/tree"
)

// Options configures a general-guest simulation.
type Options struct {
	// Steps is the number of guest steps; must be >= 1.
	Steps int
	Seed  int64
	// C is the interval-tree constant; zero means 4.
	C int
	// SlotsPerUnit is how many layout slots each tree unit covers; zero
	// means ceil(guestNodes / n') so the whole guest fits.
	SlotsPerUnit int
	// Bandwidth, Workers, Check pass through to the engine.
	Bandwidth int
	Workers   int
	Check     bool
	// NewDatabase, Op and Init override the guest computation.
	NewDatabase guest.Factory
	Op          guest.Op
	Init        func(node int, seed int64) uint64
}

// Result reports a general-guest run.
type Result struct {
	Guest   string
	Layout  string
	Metrics Metrics
	Sim     *sim.Result
	// GuestNodes actually simulated (= the guest size).
	GuestNodes int
	HostN      int
}

// Simulate runs an arbitrary unit-delay guest on a host line with the given
// link delays: the layout's slots are distributed over the live host
// processors by the Section 3.2 interval-tree recursion (contiguous blocks
// with sibling overlaps), and the engine executes greedily with full value
// verification available.
func Simulate(g guest.Graph, l *Layout, delays []int, opt Options) (*Result, error) {
	if g.NumNodes() != len(l.Order) {
		return nil, fmt.Errorf("layout: guest has %d nodes, layout %d slots", g.NumNodes(), len(l.Order))
	}
	if opt.Steps < 1 {
		return nil, fmt.Errorf("layout: steps %d < 1", opt.Steps)
	}
	c := opt.C
	if c == 0 {
		c = 4
	}
	tr := tree.Build(delays, c)
	if err := tr.CheckLemmas(); err != nil {
		return nil, err
	}
	units, nUnits := assign.TreeUnits(tr)
	if nUnits == 0 {
		return nil, fmt.Errorf("layout: no live host processors")
	}
	slots := g.NumNodes()
	spu := opt.SlotsPerUnit
	if spu == 0 {
		spu = (slots + nUnits - 1) / nUnits
	}
	hostN := len(delays) + 1
	owned := make([][]int, hostN)
	for p, us := range units {
		seen := make(map[int]bool)
		for _, u := range us {
			lo, hi := u*spu, (u+1)*spu
			if lo >= slots {
				continue
			}
			if hi > slots {
				hi = slots
			}
			for s := lo; s < hi; s++ {
				node := l.Order[s]
				if !seen[node] {
					seen[node] = true
					owned[p] = append(owned[p], node)
				}
			}
		}
	}
	// If nUnits*spu < slots (rounding), tack the tail onto the last live
	// processor so every database has a holder.
	if nUnits*spu < slots {
		last := -1
		for p := hostN - 1; p >= 0; p-- {
			if len(owned[p]) > 0 {
				last = p
				break
			}
		}
		if last < 0 {
			return nil, fmt.Errorf("layout: empty assignment")
		}
		seen := make(map[int]bool, len(owned[last]))
		for _, v := range owned[last] {
			seen[v] = true
		}
		for s := nUnits * spu; s < slots; s++ {
			if node := l.Order[s]; !seen[node] {
				owned[last] = append(owned[last], node)
			}
		}
	}
	a, err := assign.FromOwned(hostN, slots, owned)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Config{
		Delays: delays,
		Guest: guest.Spec{
			Graph:       g,
			Steps:       opt.Steps,
			Seed:        opt.Seed,
			NewDatabase: opt.NewDatabase,
			Op:          opt.Op,
			Init:        opt.Init,
		},
		Assign:    a,
		Bandwidth: opt.Bandwidth,
		Workers:   opt.Workers,
		Check:     opt.Check,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Guest:      g.Name(),
		Layout:     l.Name,
		Metrics:    Measure(g, l),
		Sim:        res,
		GuestNodes: slots,
		HostN:      hostN,
	}, nil
}

// SimulateOnNOW embeds a line in an arbitrary connected host (Fact 3) and
// runs Simulate on it.
func SimulateOnNOW(g guest.Graph, l *Layout, host *network.Network, opt Options) (*Result, error) {
	line, err := embedding.Embed(host, 0)
	if err != nil {
		return nil, err
	}
	return Simulate(g, l, line.Delays, opt)
}
