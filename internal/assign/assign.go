// Package assign constructs and validates database assignments: which host
// workstation holds a replica of which guest database (Section 2: "Before
// the simulation starts, processors p_1..p_n of H decide which databases to
// copy"). A host processor can only ever compute pebbles in the columns it
// holds, so the assignment fixes both the redundancy structure and the
// communication pattern of a simulation.
//
// The package provides the paper's assignments — the load-one OVERLAP
// assignment driven by the interval tree (Section 3.2), the work-efficient
// blocked variant (Section 3.3), the Theorem 4 uniform block ranges, and the
// flattened Theorem 5 two-level composition — plus the baselines used for
// comparison: single-copy assignments (Theorem 9 regime), redundancy
// stripping (the ablation showing redundant computation is necessary), and
// the contraction baseline that preserves efficiency by using only n/d_max
// host processors.
package assign

import (
	"fmt"
	"sort"

	"latencyhide/internal/guest"
	"latencyhide/internal/tree"
)

// Assignment maps guest columns (database ids) to the host processors that
// hold replicas. Both directions are kept sorted.
type Assignment struct {
	HostN   int
	Columns int
	// Owned[p] lists the guest columns p holds, ascending.
	Owned [][]int
	// Holders[i] lists the host processors holding column i, ascending.
	Holders [][]int
}

// FromOwned builds an assignment from per-processor column lists, sorting
// and validating as it goes.
func FromOwned(hostN, columns int, owned [][]int) (*Assignment, error) {
	if len(owned) != hostN {
		return nil, fmt.Errorf("assign: owned has %d entries for %d hosts", len(owned), hostN)
	}
	a := &Assignment{HostN: hostN, Columns: columns, Owned: make([][]int, hostN)}
	a.Holders = make([][]int, columns)
	for p, cols := range owned {
		cs := append([]int(nil), cols...)
		sort.Ints(cs)
		for i, c := range cs {
			if c < 0 || c >= columns {
				return nil, fmt.Errorf("assign: host %d owns column %d out of range [0,%d)", p, c, columns)
			}
			if i > 0 && cs[i-1] == c {
				return nil, fmt.Errorf("assign: host %d owns column %d twice", p, c)
			}
			a.Holders[c] = append(a.Holders[c], p)
		}
		a.Owned[p] = cs
	}
	return a, a.Validate()
}

// Validate checks that every column has at least one holder and that the two
// index directions agree.
func (a *Assignment) Validate() error {
	for c, hs := range a.Holders {
		if len(hs) == 0 {
			return fmt.Errorf("assign: column %d has no holder", c)
		}
		for i := 1; i < len(hs); i++ {
			if hs[i-1] >= hs[i] {
				return fmt.Errorf("assign: holders of column %d not strictly sorted", c)
			}
		}
	}
	count := 0
	for _, cols := range a.Owned {
		count += len(cols)
	}
	total := 0
	for _, hs := range a.Holders {
		total += len(hs)
	}
	if count != total {
		return fmt.Errorf("assign: owned total %d != holders total %d", count, total)
	}
	return nil
}

// Load is the maximum number of databases any host processor replicates
// (the paper's "load").
func (a *Assignment) Load() int {
	best := 0
	for _, cols := range a.Owned {
		if len(cols) > best {
			best = len(cols)
		}
	}
	return best
}

// MaxCopies is the maximum number of replicas any single database has.
func (a *Assignment) MaxCopies() int {
	best := 0
	for _, hs := range a.Holders {
		if len(hs) > best {
			best = len(hs)
		}
	}
	return best
}

// TotalReplicas is the total number of database replicas across the host.
func (a *Assignment) TotalReplicas() int {
	total := 0
	for _, hs := range a.Holders {
		total += len(hs)
	}
	return total
}

// Redundancy is TotalReplicas / Columns: 1 means no redundant computation.
func (a *Assignment) Redundancy() float64 {
	if a.Columns == 0 {
		return 0
	}
	return float64(a.TotalReplicas()) / float64(a.Columns)
}

// UsedHosts reports how many host processors hold at least one replica.
func (a *Assignment) UsedHosts() int {
	c := 0
	for _, cols := range a.Owned {
		if len(cols) > 0 {
			c++
		}
	}
	return c
}

// MemoryBytes estimates the total replica memory across the host for the
// given database factory: the paper's load bound is per processor, this is
// the aggregate cost of the redundancy ("memory is expensive").
func (a *Assignment) MemoryBytes(f guest.Factory, seed int64) int64 {
	if f == nil {
		f = guest.NewMixDB
	}
	// databases of one column are identical in size; sample per column
	var total int64
	for c, hs := range a.Holders {
		if len(hs) == 0 {
			continue
		}
		total += int64(f(c, seed).Size()) * int64(len(hs))
	}
	return total
}

// Holds reports whether host p holds column c.
func (a *Assignment) Holds(p, c int) bool {
	cols := a.Owned[p]
	i := sort.SearchInts(cols, c)
	return i < len(cols) && cols[i] == c
}

// StripRedundancy returns a copy of the assignment where every column keeps
// only its first (lowest-id) holder. It is the redundancy ablation: identical
// placement structure, no redundant computation.
func (a *Assignment) StripRedundancy() *Assignment {
	owned := make([][]int, a.HostN)
	for c, hs := range a.Holders {
		if len(hs) > 0 {
			owned[hs[0]] = append(owned[hs[0]], c)
		}
	}
	out, err := FromOwned(a.HostN, a.Columns, owned)
	if err != nil {
		panic(fmt.Sprintf("assign: StripRedundancy produced invalid assignment: %v", err))
	}
	return out
}

// unitSpan describes how one abstract "unit" of the tree assignment expands
// into guest columns: unit u covers [u*B - L, (u+1)*B + R) clipped to the
// guest. Load-one OVERLAP uses (1,0,0); the work-efficient variant (β,0,0);
// the flattened Theorem 5 composition (β*s, 2s, 0).
type unitSpan struct {
	B, L, R int
}

func (s unitSpan) columns(u, m int) (lo, hi int) {
	lo = u*s.B - s.L
	hi = (u+1)*s.B + s.R
	if lo < 0 {
		lo = 0
	}
	if hi > m {
		hi = m
	}
	return lo, hi
}

// treeUnits walks the processed interval tree and returns, for every host
// processor, the abstract units it is assigned by the Section 3.2 recursion:
// a node with stage-3 label x holding units [i, i+x) passes [i, i+x1) to its
// left child and [i+x-x2, i+x) to its right child, so siblings share
// m_{k+1} units; a live leaf ends up with exactly one unit.
func treeUnits(t *tree.Tree) ([][]int, int) {
	units := make([][]int, t.N)
	if t.Root.Removed {
		return units, 0
	}
	var walk func(nd *tree.Node, base int)
	walk = func(nd *tree.Node, base int) {
		if nd.Left == nil {
			units[nd.Lo] = append(units[nd.Lo], base)
			return
		}
		live := nd.LiveChildren()
		switch len(live) {
		case 1:
			walk(live[0], base)
		case 2:
			l, r := live[0], live[1]
			walk(l, base)
			walk(r, base+nd.Label3-r.Label3)
		}
	}
	walk(t.Root, 0)
	return units, t.Root.Label3
}

// TreeUnits exposes the Section 3.2 assignment recursion at unit
// granularity: Units[p] lists the abstract units host processor p holds and
// n' is the unit count (the root's stage-3 label). Packages that assign
// non-linear guests (e.g. mesh columns, package mesharray) expand units
// themselves.
func TreeUnits(t *tree.Tree) (units [][]int, n int) {
	return treeUnits(t)
}

// Overlap builds the load-one OVERLAP assignment of Section 3.2 from a
// processed interval tree: the guest has n' = t.GuestSize() columns and each
// live host processor holds exactly one database (columns in sibling
// overlaps are held by both sides).
func Overlap(t *tree.Tree) (*Assignment, error) {
	return overlapSpan(t, unitSpan{B: 1})
}

// OverlapBlocked builds the work-efficient assignment of Section 3.3: each
// abstract unit becomes a block of beta consecutive databases, so the guest
// has n'*beta columns and the load is beta.
func OverlapBlocked(t *tree.Tree, beta int) (*Assignment, error) {
	if beta < 1 {
		return nil, fmt.Errorf("assign: beta %d < 1", beta)
	}
	return overlapSpan(t, unitSpan{B: beta})
}

// TwoLevel builds the flattened Theorem 5 assignment: each abstract unit is
// a block of beta intermediate (H0) processors, and each H0 processor owns a
// Theorem 4 range of sqrtD guest columns extended 2*sqrtD to the left. The
// guest therefore has n'*beta*sqrtD columns and the load is
// (beta+2)*sqrtD = O(sqrt(d_ave) log^3 n) at the paper's parameters.
func TwoLevel(t *tree.Tree, beta, sqrtD int) (*Assignment, error) {
	if beta < 1 || sqrtD < 1 {
		return nil, fmt.Errorf("assign: beta=%d sqrtD=%d must be >= 1", beta, sqrtD)
	}
	return overlapSpan(t, unitSpan{B: beta * sqrtD, L: 2 * sqrtD})
}

func overlapSpan(t *tree.Tree, span unitSpan) (*Assignment, error) {
	units, nUnits := treeUnits(t)
	if nUnits == 0 {
		return nil, fmt.Errorf("assign: tree has no live processors")
	}
	m := nUnits * span.B
	owned := make([][]int, t.N)
	for p, us := range units {
		set := make(map[int]bool)
		for _, u := range us {
			lo, hi := span.columns(u, m)
			for c := lo; c < hi; c++ {
				set[c] = true
			}
		}
		if len(set) > 0 {
			cols := make([]int, 0, len(set))
			for c := range set {
				cols = append(cols, c)
			}
			sort.Ints(cols)
			owned[p] = cols
		}
	}
	return FromOwned(t.N, m, owned)
}

// UniformBlocks builds the Theorem 4 assignment on a host of hostN
// processors: processor j owns the guest columns
// [j*stride - left, (j+1)*stride + right) clipped to [0, m), m =
// hostN*stride. The paper's P_j regions use left = 2*stride, right = 0
// (width 3*sqrt(d), Figure 4).
func UniformBlocks(hostN, stride, left, right int) (*Assignment, error) {
	if hostN < 1 || stride < 1 {
		return nil, fmt.Errorf("assign: hostN=%d stride=%d", hostN, stride)
	}
	m := hostN * stride
	owned := make([][]int, hostN)
	for p := 0; p < hostN; p++ {
		lo := p*stride - left
		hi := (p+1)*stride + right
		if lo < 0 {
			lo = 0
		}
		if hi > m {
			hi = m
		}
		cols := make([]int, 0, hi-lo)
		for c := lo; c < hi; c++ {
			cols = append(cols, c)
		}
		owned[p] = cols
	}
	return FromOwned(hostN, m, owned)
}

// SingleCopyBlocks distributes m columns over the host in contiguous
// single-copy blocks: processor p holds columns [p*m/n, (p+1)*m/n). This is
// the natural no-redundancy assignment of prior approaches (Theorem 9
// regime).
func SingleCopyBlocks(hostN, m int) (*Assignment, error) {
	if hostN < 1 || m < 1 {
		return nil, fmt.Errorf("assign: hostN=%d m=%d", hostN, m)
	}
	owned := make([][]int, hostN)
	for p := 0; p < hostN; p++ {
		lo := p * m / hostN
		hi := (p + 1) * m / hostN
		for c := lo; c < hi; c++ {
			owned[p] = append(owned[p], c)
		}
	}
	return FromOwned(hostN, m, owned)
}

// ReplicatedBlocks distributes m columns in the same contiguous blocks as
// SingleCopyBlocks, but replicates block b onto the `copies` consecutive
// processors nearest b (clipped at the line ends), so every column has
// exactly `copies` replicas on neighboring hosts. This is the replication
// pattern OVERLAP uses for fault tolerance: any copies-1 crash-stop hosts
// leave a live replica of every column.
func ReplicatedBlocks(hostN, m, copies int) (*Assignment, error) {
	if hostN < 1 || m < 1 {
		return nil, fmt.Errorf("assign: hostN=%d m=%d", hostN, m)
	}
	if copies < 1 || copies > hostN {
		return nil, fmt.Errorf("assign: copies=%d outside [1,%d]", copies, hostN)
	}
	owned := make([][]int, hostN)
	for b := 0; b < hostN; b++ {
		colLo := b * m / hostN
		colHi := (b + 1) * m / hostN
		if colLo == colHi {
			continue
		}
		lo := b - (copies-1)/2
		if lo < 0 {
			lo = 0
		}
		if lo > hostN-copies {
			lo = hostN - copies
		}
		for p := lo; p < lo+copies; p++ {
			for c := colLo; c < colHi; c++ {
				owned[p] = append(owned[p], c)
			}
		}
	}
	return FromOwned(hostN, m, owned)
}

// SingleCopyOnHosts places contiguous single-copy blocks on an explicit
// subset of host processors (ascending ids). It supports baselines that pick
// favourable processors, e.g. avoiding H1's slow links.
func SingleCopyOnHosts(hostN, m int, hosts []int) (*Assignment, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("assign: no hosts given")
	}
	owned := make([][]int, hostN)
	k := len(hosts)
	for idx, p := range hosts {
		if p < 0 || p >= hostN {
			return nil, fmt.Errorf("assign: host %d out of range", p)
		}
		lo := idx * m / k
		hi := (idx + 1) * m / k
		for c := lo; c < hi; c++ {
			owned[p] = append(owned[p], c)
		}
	}
	return FromOwned(hostN, m, owned)
}

// Contraction is the prior efficiency-preserving approach the introduction
// mentions: use only every gap-th host processor (about hostN/d_max of them)
// so that the per-step d_max wait is amortised over gap columns of local
// work. Columns are single copies on the selected processors.
func Contraction(hostN, m, gap int) (*Assignment, error) {
	if gap < 1 {
		gap = 1
	}
	var hosts []int
	for p := 0; p < hostN; p += gap {
		hosts = append(hosts, p)
	}
	return SingleCopyOnHosts(hostN, m, hosts)
}
