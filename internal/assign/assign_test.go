package assign

import (
	"math/rand"
	"testing"
	"testing/quick"

	"latencyhide/internal/guest"
	"latencyhide/internal/network"
	"latencyhide/internal/tree"
)

func unitLine(n int) []int {
	d := make([]int, n-1)
	for i := range d {
		d[i] = 1
	}
	return d
}

func TestFromOwnedBasics(t *testing.T) {
	a, err := FromOwned(3, 4, [][]int{{0, 1}, {1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Load() != 2 || a.MaxCopies() != 2 || a.TotalReplicas() != 5 {
		t.Fatalf("%+v", a)
	}
	if !a.Holds(0, 1) || a.Holds(2, 0) {
		t.Fatal("Holds wrong")
	}
	if a.UsedHosts() != 3 {
		t.Fatal("UsedHosts")
	}
	if a.Redundancy() != 5.0/4.0 {
		t.Fatalf("redundancy %f", a.Redundancy())
	}
}

func TestFromOwnedErrors(t *testing.T) {
	if _, err := FromOwned(2, 3, [][]int{{0}}); err == nil {
		t.Fatal("wrong host count accepted")
	}
	if _, err := FromOwned(1, 2, [][]int{{0, 5}}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := FromOwned(1, 2, [][]int{{0, 0}}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := FromOwned(1, 2, [][]int{{0}}); err == nil {
		t.Fatal("uncovered column accepted")
	}
}

func TestStripRedundancy(t *testing.T) {
	a, err := FromOwned(3, 2, [][]int{{0, 1}, {0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	s := a.StripRedundancy()
	if s.MaxCopies() != 1 || s.TotalReplicas() != 2 {
		t.Fatalf("stripped: %+v", s)
	}
	// keeps the lowest-id holder
	if !s.Holds(0, 0) || !s.Holds(0, 1) {
		t.Fatal("wrong holders kept")
	}
	// original unchanged
	if a.MaxCopies() != 2 {
		t.Fatal("original mutated")
	}
}

func TestOverlapAssignmentLoadOne(t *testing.T) {
	tr := tree.Build(unitLine(256), 4)
	a, err := Overlap(tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Columns != tr.GuestSize() {
		t.Fatalf("columns %d != guest size %d", a.Columns, tr.GuestSize())
	}
	if a.Load() != 1 {
		t.Fatalf("load %d != 1 (Theorem 2)", a.Load())
	}
	// every live processor holds exactly one db; dead hold none
	for p, cols := range a.Owned {
		if tr.Alive[p] && len(cols) != 1 {
			t.Fatalf("live proc %d owns %d", p, len(cols))
		}
		if !tr.Alive[p] && len(cols) != 0 {
			t.Fatalf("dead proc %d owns %d", p, len(cols))
		}
	}
	// holders of each column must be contained in a window (locality)
	for c, hs := range a.Holders {
		if len(hs) < 1 {
			t.Fatalf("column %d uncovered", c)
		}
	}
}

func TestOverlapRedundancyMatchesTreeOverlaps(t *testing.T) {
	tr := tree.Build(unitLine(128), 4)
	a, err := Overlap(tr)
	if err != nil {
		t.Fatal(err)
	}
	// total replicas = live processors (each live leaf holds one unit)
	if a.TotalReplicas() != tr.LiveCount() {
		t.Fatalf("replicas %d != live %d", a.TotalReplicas(), tr.LiveCount())
	}
	if a.MaxCopies() < 2 {
		t.Fatal("expected some column with multiple copies (overlaps)")
	}
}

func TestOverlapBlocked(t *testing.T) {
	tr := tree.Build(unitLine(128), 4)
	for _, beta := range []int{1, 2, 5} {
		a, err := OverlapBlocked(tr, beta)
		if err != nil {
			t.Fatal(err)
		}
		if a.Columns != tr.GuestSize()*beta {
			t.Fatalf("beta %d: columns %d", beta, a.Columns)
		}
		if a.Load() != beta {
			t.Fatalf("beta %d: load %d", beta, a.Load())
		}
		// blocks are contiguous per processor
		for p, cols := range a.Owned {
			for i := 1; i < len(cols); i++ {
				if cols[i] != cols[i-1]+1 {
					t.Fatalf("proc %d block not contiguous: %v", p, cols)
				}
			}
		}
	}
	if _, err := OverlapBlocked(tr, 0); err == nil {
		t.Fatal("beta 0 accepted")
	}
}

func TestTwoLevel(t *testing.T) {
	tr := tree.Build(unitLine(128), 4)
	beta, s := 3, 4
	a, err := TwoLevel(tr, beta, s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Columns != tr.GuestSize()*beta*s {
		t.Fatalf("columns %d", a.Columns)
	}
	// load is at most (beta+2)*s per unit
	if a.Load() > (beta+2)*s {
		t.Fatalf("load %d > %d", a.Load(), (beta+2)*s)
	}
	// interior columns should have at least 2 copies (theorem 4 margins)
	multi := 0
	for _, hs := range a.Holders {
		if len(hs) >= 2 {
			multi++
		}
	}
	if multi*2 < a.Columns {
		t.Fatalf("only %d/%d columns replicated", multi, a.Columns)
	}
	if _, err := TwoLevel(tr, 0, 1); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestUniformBlocks(t *testing.T) {
	a, err := UniformBlocks(8, 4, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Columns != 32 {
		t.Fatalf("columns %d", a.Columns)
	}
	// every interior column has exactly 3 holders (width 3s, stride s)
	for c := 8; c < 24; c++ {
		if len(a.Holders[c]) != 3 {
			t.Fatalf("col %d has %d holders", c, len(a.Holders[c]))
		}
	}
	// processor 0 owns only its clipped range
	if a.Owned[0][0] != 0 || len(a.Owned[0]) != 4 {
		t.Fatalf("proc 0 owns %v", a.Owned[0])
	}
	if _, err := UniformBlocks(0, 4, 0, 0); err == nil {
		t.Fatal("bad host count accepted")
	}
}

func TestSingleCopyBlocks(t *testing.T) {
	a, err := SingleCopyBlocks(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxCopies() != 1 {
		t.Fatal("not single copy")
	}
	total := 0
	for _, cols := range a.Owned {
		total += len(cols)
	}
	if total != 10 {
		t.Fatalf("replicas %d", total)
	}
	// blocks contiguous and ordered
	last := -1
	for p := 0; p < 4; p++ {
		for _, c := range a.Owned[p] {
			if c != last+1 {
				t.Fatalf("columns out of order at proc %d", p)
			}
			last = c
		}
	}
}

func TestSingleCopyOnHostsAndContraction(t *testing.T) {
	a, err := SingleCopyOnHosts(10, 6, []int{1, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.UsedHosts() != 3 || a.MaxCopies() != 1 {
		t.Fatalf("%+v", a)
	}
	if _, err := SingleCopyOnHosts(10, 6, nil); err == nil {
		t.Fatal("empty hosts accepted")
	}
	if _, err := SingleCopyOnHosts(10, 6, []int{11}); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	c, err := Contraction(16, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.UsedHosts() != 4 {
		t.Fatalf("contraction used %d", c.UsedHosts())
	}
	for p, cols := range c.Owned {
		if len(cols) > 0 && p%4 != 0 {
			t.Fatalf("contraction used proc %d", p)
		}
	}
}

func TestTreeUnitsExported(t *testing.T) {
	tr := tree.Build(unitLine(64), 4)
	units, n := TreeUnits(tr)
	if n != tr.GuestSize() {
		t.Fatalf("units %d != guest %d", n, tr.GuestSize())
	}
	// every unit 0..n-1 appears at least once; live leaves have 1 unit
	seen := make([]bool, n)
	for p, us := range units {
		if tr.Alive[p] && len(us) != 1 {
			t.Fatalf("live proc %d has %d units", p, len(us))
		}
		for _, u := range us {
			if u < 0 || u >= n {
				t.Fatalf("unit %d out of range", u)
			}
			seen[u] = true
		}
	}
	for u, ok := range seen {
		if !ok {
			t.Fatalf("unit %d unassigned", u)
		}
	}
}

// Property: the OVERLAP assignment over random hosts always covers every
// column, keeps load one, and its holder sets are sorted windows.
func TestOverlapPropertyRandomHosts(t *testing.T) {
	f := func(seed int64, sizeSel uint8) bool {
		n := 64 << (sizeSel % 3)
		r := rand.New(rand.NewSource(seed))
		delays := make([]int, n-1)
		for i := range delays {
			delays[i] = 1 + r.Intn(1<<uint(r.Intn(20)))
		}
		tr := tree.Build(delays, 4)
		if tr.GuestSize() == 0 {
			return true
		}
		a, err := Overlap(tr)
		if err != nil {
			return false
		}
		return a.Validate() == nil && a.Load() == 1 && a.Columns == tr.GuestSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapHoldersWithinIntervals(t *testing.T) {
	// all holders of adjacent columns must be near each other: the
	// maximum holder-position gap between column c and c+1 bounds the
	// communication distance OVERLAP relies on.
	g := network.Line(256, network.UniformDelay{Lo: 1, Hi: 20}, 77)
	delays := make([]int, g.NumLinks())
	for i, e := range g.Edges() {
		delays[i] = e.Delay
	}
	tr := tree.Build(delays, 4)
	a, err := Overlap(tr)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c+1 < a.Columns; c++ {
		lo := a.Holders[c+1][0] - a.Holders[c][len(a.Holders[c])-1]
		if lo > 256/2 {
			t.Fatalf("adjacent columns %d,%d placed %d apart", c, c+1, lo)
		}
	}
}

func TestMemoryBytes(t *testing.T) {
	a, err := FromOwned(3, 2, [][]int{{0, 1}, {0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	// MixDB is 16 bytes; 4 replicas total
	if got := a.MemoryBytes(nil, 1); got != 4*16 {
		t.Fatalf("mix memory %d", got)
	}
	kv := guest.KVFactory(10)
	want := int64(4) * int64(kv(0, 1).Size())
	if got := a.MemoryBytes(kv, 1); got != want {
		t.Fatalf("kv memory %d want %d", got, want)
	}
}

// Property: the TwoLevel assignment over random hosts always covers every
// column with load at most (beta+2)*s.
func TestTwoLevelPropertyRandomHosts(t *testing.T) {
	f := func(seed int64, betaSel, sSel uint8) bool {
		beta := 1 + int(betaSel%4)
		s := 1 + int(sSel%5)
		r := rand.New(rand.NewSource(seed))
		n := 64
		delays := make([]int, n-1)
		for i := range delays {
			delays[i] = 1 + r.Intn(1<<uint(r.Intn(12)))
		}
		tr := tree.Build(delays, 4)
		if tr.GuestSize() == 0 {
			return true
		}
		a, err := TwoLevel(tr, beta, s)
		if err != nil {
			return false
		}
		return a.Validate() == nil && a.Load() <= (beta+2)*s &&
			a.Columns == tr.GuestSize()*beta*s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicatedBlocks(t *testing.T) {
	for _, tc := range []struct{ n, m, copies int }{
		{8, 16, 4}, {8, 16, 1}, {5, 7, 3}, {4, 4, 4}, {16, 8, 2},
	} {
		a, err := ReplicatedBlocks(tc.n, tc.m, tc.copies)
		if err != nil {
			t.Fatalf("ReplicatedBlocks(%d,%d,%d): %v", tc.n, tc.m, tc.copies, err)
		}
		for c, hs := range a.Holders {
			if len(hs) != tc.copies {
				t.Fatalf("n=%d m=%d copies=%d: column %d has %d holders",
					tc.n, tc.m, tc.copies, c, len(hs))
			}
			// Holders are consecutive processors (locality).
			for i := 1; i < len(hs); i++ {
				if hs[i] != hs[i-1]+1 {
					t.Fatalf("column %d holders not consecutive: %v", c, hs)
				}
			}
		}
	}
	// copies=1 degenerates to the single-copy blocks.
	a, _ := ReplicatedBlocks(4, 10, 1)
	b, _ := SingleCopyBlocks(4, 10)
	for p := range a.Owned {
		if len(a.Owned[p]) != len(b.Owned[p]) {
			t.Fatalf("copies=1 differs from SingleCopyBlocks at proc %d", p)
		}
	}
	if _, err := ReplicatedBlocks(4, 8, 5); err == nil {
		t.Fatal("copies > hostN accepted")
	}
	if _, err := ReplicatedBlocks(4, 8, 0); err == nil {
		t.Fatal("copies = 0 accepted")
	}
}
