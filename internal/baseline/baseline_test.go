package baseline

import (
	"testing"

	"latencyhide/internal/network"
)

func delaysOf(g *network.Network) []int {
	out := make([]int, g.NumLinks())
	for i, e := range g.Edges() {
		out[i] = e.Delay
	}
	return out
}

func TestSlowClockSlowdown(t *testing.T) {
	if got := SlowClockSlowdown([]int{1, 9, 3}); got != 10 {
		t.Fatalf("slow clock %f want 10", got)
	}
	if got := SlowClockSlowdown(nil); got != 1 {
		t.Fatalf("empty host %f", got)
	}
}

func TestSingleCopyRunsAndVerifies(t *testing.T) {
	delays := delaysOf(network.H1(64))
	r, err := SingleCopy(delays, 64, 16, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Checked || r.Name != "single-copy" {
		t.Fatalf("%+v", r)
	}
	if r.UsedHosts != 64 {
		t.Fatalf("used %d", r.UsedHosts)
	}
	// Theorem 9 regime: slowdown near d_max = 8
	if r.Sim.Slowdown < 4 || r.Sim.Slowdown > 16 {
		t.Fatalf("H1 single-copy slowdown %.1f not ~sqrt(n)=8", r.Sim.Slowdown)
	}
}

func TestContraction(t *testing.T) {
	delays := delaysOf(network.H1(64))
	r, err := Contraction(delays, 64, 16, 0, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	// gap defaults to d_max=8: 8 hosts used
	if r.UsedHosts != 8 {
		t.Fatalf("used %d want 8", r.UsedHosts)
	}
	if !r.Sim.Checked {
		t.Fatal("unchecked")
	}
	// contraction trades slowdown for efficiency: each host computes 8
	// columns per guest step, so slowdown >= 8 regardless of delays
	if r.Sim.Slowdown < 8 {
		t.Fatalf("slowdown %.1f below work bound", r.Sim.Slowdown)
	}

	// explicit gap
	r2, err := Contraction(delays, 64, 8, 16, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if r2.UsedHosts != 4 {
		t.Fatalf("used %d want 4", r2.UsedHosts)
	}
	// gap larger than the host clamps
	if _, err := Contraction([]int{1, 1}, 4, 4, 100, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineErrors(t *testing.T) {
	if _, err := SingleCopy([]int{1}, 2, 0, 1, false); err == nil {
		t.Fatal("zero steps accepted")
	}
}
