// Package baseline implements the prior latency-handling approaches the
// paper compares against in its introduction, so that every experiment can
// report OVERLAP's slowdown next to what the older techniques would pay on
// the same host:
//
//   - SlowClock: slow the whole computation to the highest latency — the
//     circuit-level approach. Slowdown Theta(d_max), trivially.
//   - SingleCopy: the natural no-redundancy simulation (one replica per
//     database, contiguous blocks). This is the regime of Theorem 9; the
//     measured slowdown approaches d_max whenever adjacent blocks are
//     separated by a slow link.
//   - Contraction: preserve efficiency by using only ~n/d_max host
//     processors, so the d_max wait amortises over a large block of local
//     work ("the prior approaches could preserve efficiency by using only
//     n/d_max of the processors of H").
//
// All baselines run on the same engine and verify values the same way, so
// comparisons are apples to apples.
package baseline

import (
	"fmt"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
	"latencyhide/internal/sim"
)

// Result is a baseline measurement.
type Result struct {
	Name      string
	Sim       *sim.Result
	UsedHosts int
}

// SlowClockSlowdown is the analytic slowdown of the global-slow-clock
// approach: every guest step costs one compute step plus a full d_max round
// of communication.
func SlowClockSlowdown(delays []int) float64 {
	dmax := 0
	for _, d := range delays {
		if d > dmax {
			dmax = d
		}
	}
	return float64(1 + dmax)
}

// SingleCopy simulates a guest of m columns with one replica per database in
// contiguous blocks across all host processors.
func SingleCopy(delays []int, m, steps int, seed int64, check bool) (*Result, error) {
	n := len(delays) + 1
	a, err := assign.SingleCopyBlocks(n, m)
	if err != nil {
		return nil, err
	}
	return run("single-copy", delays, a, steps, seed, check)
}

// Contraction simulates a guest of m columns using only every gap-th host
// processor (single copies). gap <= 0 selects d_max.
func Contraction(delays []int, m, steps, gap int, seed int64, check bool) (*Result, error) {
	n := len(delays) + 1
	if gap <= 0 {
		for _, d := range delays {
			if d > gap {
				gap = d
			}
		}
		if gap < 1 {
			gap = 1
		}
	}
	if gap >= n {
		gap = n - 1
	}
	a, err := assign.Contraction(n, m, gap)
	if err != nil {
		return nil, err
	}
	return run("contraction", delays, a, steps, seed, check)
}

func run(name string, delays []int, a *assign.Assignment, steps int, seed int64, check bool) (*Result, error) {
	if steps < 1 {
		return nil, fmt.Errorf("baseline: steps %d < 1", steps)
	}
	res, err := sim.Run(sim.Config{
		Delays: delays,
		Guest: guest.Spec{
			Graph: guest.NewLinearArray(a.Columns),
			Steps: steps,
			Seed:  seed,
		},
		Assign: a,
		Check:  check,
	})
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %w", name, err)
	}
	return &Result{Name: name, Sim: res, UsedHosts: a.UsedHosts()}, nil
}
