package fault

import (
	"strings"
	"testing"
)

// Every query must be a pure function of (seed, site, step): repeated calls
// and permuted call orders return identical answers. This is the invariant
// that keeps the two sim engines bit-identical under faults.
func TestQueriesArePure(t *testing.T) {
	p := &Plan{
		Seed:      7,
		Jitters:   []Jitter{{Link: -1, Amp: 4, Prob: 0.5}},
		Outages:   []Outage{{Link: 2, Window: 8, Frac: 0.3}},
		Slowdowns: []Slowdown{{Host: -1, Window: 4, Frac: 0.4, Limit: 0}},
		Crashes:   []Crash{{Host: 3, Step: 40}},
	}
	type probe struct {
		extra int
		down  bool
		lim   int
	}
	sample := func(order []int64) map[int64]probe {
		out := map[int64]probe{}
		for _, s := range order {
			out[s] = probe{
				extra: p.ExtraDelay(2, false, s, 0),
				down:  p.LinkDown(2, s),
				lim:   p.ComputeLimit(1, s, 3),
			}
		}
		return out
	}
	fwd := make([]int64, 100)
	rev := make([]int64, 100)
	for i := range fwd {
		fwd[i] = int64(i + 1)
		rev[i] = int64(100 - i)
	}
	a, b := sample(fwd), sample(rev)
	for s := int64(1); s <= 100; s++ {
		if a[s] != b[s] {
			t.Fatalf("step %d: %+v != %+v (order-dependent plan)", s, a[s], b[s])
		}
	}
}

func TestProbabilitiesHitAndMiss(t *testing.T) {
	p := &Plan{Seed: 11, Outages: []Outage{{Link: -1, Window: 4, Frac: 0.5}}}
	downs := 0
	for w := 0; w < 400; w++ {
		if p.LinkDown(0, int64(w*4+1)) {
			downs++
		}
	}
	if downs < 100 || downs > 300 {
		t.Fatalf("frac=0.5 gave %d/400 down windows", downs)
	}
	// Within one window the answer is constant.
	p2 := &Plan{Seed: 3, Outages: []Outage{{Link: -1, Window: 10, Frac: 0.5}}}
	for w := 0; w < 50; w++ {
		first := p2.LinkDown(1, int64(w*10+1))
		for s := w*10 + 2; s <= (w+1)*10; s++ {
			if p2.LinkDown(1, int64(s)) != first {
				t.Fatalf("outage state changed inside window %d", w)
			}
		}
	}
}

// Raising the outage fraction must only add down windows (the threshold
// test is monotone in Frac) — this is what makes fault-rate sweeps monotone.
func TestOutageNesting(t *testing.T) {
	lo := &Plan{Seed: 5, Outages: []Outage{{Link: -1, Window: 8, Frac: 0.1}}}
	hi := &Plan{Seed: 5, Outages: []Outage{{Link: -1, Window: 8, Frac: 0.4}}}
	for s := int64(1); s <= 4000; s += 8 {
		if lo.LinkDown(0, s) && !hi.LinkDown(0, s) {
			t.Fatalf("step %d down at frac 0.1 but up at 0.4", s)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	p := &Plan{Seed: 9, Jitters: []Jitter{{Link: -1, Amp: 5, Prob: 1}}}
	hits := map[int]bool{}
	for s := int64(1); s <= 500; s++ {
		x := p.ExtraDelay(0, false, s, 0)
		if x < 1 || x > 5 {
			t.Fatalf("prob=1 jitter gave extra %d outside [1,5]", x)
		}
		hits[x] = true
	}
	if len(hits) < 3 {
		t.Fatalf("jitter barely varies: %v", hits)
	}
	// Different slots in the same step jitter independently.
	same := true
	for s := int64(1); s <= 50 && same; s++ {
		if p.ExtraDelay(0, false, s, 0) != p.ExtraDelay(0, false, s, 1) {
			same = false
		}
	}
	if same {
		t.Fatal("slot index does not affect jitter")
	}
}

func TestCrashQueries(t *testing.T) {
	p := &Plan{Crashes: []Crash{{Host: 4, Step: 30}, {Host: 2, Step: 9}, {Host: 4, Step: 12}}}
	if s, ok := p.CrashStep(4); !ok || s != 12 {
		t.Fatalf("CrashStep(4) = %d,%v", s, ok)
	}
	if _, ok := p.CrashStep(3); ok {
		t.Fatal("host 3 never crashes")
	}
	got := p.CrashedHosts()
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("CrashedHosts = %v", got)
	}
}

func TestIntervalEnumerationMatchesQueries(t *testing.T) {
	p := &Plan{
		Seed:      21,
		Outages:   []Outage{{Link: 1, Window: 6, Frac: 0.4}},
		Slowdowns: []Slowdown{{Host: 2, Window: 5, Frac: 0.5, Limit: 0}},
	}
	const max = 200
	covered := func(ivs []Interval, s int64) bool {
		for _, iv := range ivs {
			if s >= iv.Lo && s <= iv.Hi {
				return true
			}
		}
		return false
	}
	oiv := p.OutageIntervals(1, max)
	siv := p.SlowIntervals(2, max)
	for i := 1; i < len(oiv); i++ {
		if oiv[i].Lo <= oiv[i-1].Hi+1 {
			t.Fatalf("outage intervals not merged: %v", oiv)
		}
	}
	for s := int64(1); s <= max; s++ {
		if covered(oiv, s) != p.LinkDown(1, s) {
			t.Fatalf("outage interval mismatch at step %d", s)
		}
		if covered(siv, s) != (p.ComputeLimit(2, s, 7) < 7) {
			t.Fatalf("slow interval mismatch at step %d", s)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []*Plan{
		{Jitters: []Jitter{{Link: 9, Amp: 1, Prob: 1}}},
		{Jitters: []Jitter{{Link: 0, Amp: 0, Prob: 1}}},
		{Jitters: []Jitter{{Link: 0, Amp: 1, Prob: 1.5}}},
		{Outages: []Outage{{Link: 0, Window: 0, Frac: 0.5}}},
		{Outages: []Outage{{Link: 0, Window: 4, Frac: 0}}},
		{Slowdowns: []Slowdown{{Host: 8, Window: 4, Frac: 0.5}}},
		{Slowdowns: []Slowdown{{Host: 0, Window: 4, Frac: 0.5, Limit: -1}}},
		{Crashes: []Crash{{Host: -1, Step: 5}}},
		{Crashes: []Crash{{Host: 0, Step: 0}}},
	}
	for i, p := range bad {
		if p.Validate(8) == nil {
			t.Fatalf("bad plan %d validated: %+v", i, p)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(8); err != nil {
		t.Fatal(err)
	}
	if nilPlan.Enabled() {
		t.Fatal("nil plan enabled")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		ok   bool
	}{
		{"7:jitter=4", true},
		{"7:jitter=4@0.5#3", true},
		{"0:outage=0.1x32", true},
		{"1:slow=0.2x16/0#5", true},
		{"2:crash=12@200", true},
		{"3:jitter=2;outage=0.05x8;slow=0.5x4/1;crash=0@9", true},
		{"", false},              // no seed
		{"x:jitter=4", false},    // bad seed
		{"7:", false},            // no faults
		{"7:jitter", false},      // no value
		{"7:fizz=1", false},      // unknown kind
		{"7:jitter=x", false},    // bad amplitude
		{"7:outage=0.1", false},  // missing window
		{"7:slow=0.1x4", false},  // missing limit
		{"7:crash=12", false},    // missing step
		{"7:crash=a@2", false},   // bad host
		{"7:jitter=4#-2", false}, // bad site
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if c.ok && err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("Parse(%q) accepted: %+v", c.spec, p)
		}
	}
	// Round trip through String.
	p, err := Parse("3:jitter=2@0.5;outage=0.05x8#1;slow=0.5x4/1#2;crash=0@9")
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Parse(p.String())
	if err != nil {
		t.Fatalf("round trip %q: %v", p.String(), err)
	}
	if rt.String() != p.String() {
		t.Fatalf("round trip %q != %q", rt.String(), p.String())
	}
	if err := p.Validate(16); err != nil {
		t.Fatal(err)
	}
}

func TestJitterLinks(t *testing.T) {
	p := &Plan{Jitters: []Jitter{{Link: 3, Amp: 1, Prob: 1}, {Link: 1, Amp: 1, Prob: 1}}}
	got := p.JitterLinks(5)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("JitterLinks = %v", got)
	}
	all := &Plan{Jitters: []Jitter{{Link: -1, Amp: 1, Prob: 1}}}
	if g := all.JitterLinks(3); len(g) != 3 {
		t.Fatalf("JitterLinks(-1) = %v", g)
	}
	if strings.Contains(all.String(), "#") {
		t.Fatalf("all-links jitter got a site selector: %s", all.String())
	}
}
