package fault

import (
	"testing"
)

// Spike draws are pure, additive, and truncated: every hit adds between 1
// and Cap steps, and the tail actually reaches past what a uniform jitter of
// the same mean would.
func TestSpikeBoundsAndTail(t *testing.T) {
	p := &Plan{Seed: 13, Spikes: []Spike{{Link: -1, Prob: 1, Alpha: 1.5, Cap: 64}}}
	seen := map[int]int{}
	for s := int64(1); s <= 5000; s++ {
		x := p.ExtraDelay(0, false, s, 0)
		if x < 1 || x > 64 {
			t.Fatalf("prob=1 spike gave extra %d outside [1,64]", x)
		}
		seen[x]++
		if p.ExtraDelay(0, false, s, 0) != x {
			t.Fatalf("spike draw not pure at step %d", s)
		}
	}
	// Pareto(alpha=1.5): most mass at 1, but a heavy tail. We expect the
	// bulk at 1-2 and at least one draw at or beyond half the cap.
	if seen[1] < 2500 {
		t.Fatalf("spike bulk too thin: %d draws of 1 in 5000", seen[1])
	}
	tail := 0
	for v, n := range seen {
		if v >= 32 {
			tail += n
		}
	}
	if tail == 0 {
		t.Fatal("no spike draw reached half the cap in 5000 steps (tail too light)")
	}
	if seen[64] == 0 {
		t.Log("note: no draw hit the cap exactly; truncation untested at this seed")
	}
}

// A spike with a tiny alpha concentrates at the cap: U^(-1/alpha) explodes,
// and the U=0 draw must clip to Cap instead of overflowing the float→int
// conversion.
func TestSpikeCapClip(t *testing.T) {
	p := &Plan{Seed: 1, Spikes: []Spike{{Link: -1, Prob: 1, Alpha: 0.01, Cap: 7}}}
	for s := int64(1); s <= 2000; s++ {
		if x := p.ExtraDelay(0, true, s, 0); x < 1 || x > 7 {
			t.Fatalf("alpha=0.01 spike gave %d outside [1,7]", x)
		}
	}
}

// Drift stripe semantics: in window w, exactly the links ≡ w·Stride
// (mod Period) are down (Frac=1), and the stripe advances with the window.
func TestDriftStripe(t *testing.T) {
	p := &Plan{Seed: 2, Drifts: []Drift{{Link: -1, Window: 4, Frac: 1, Period: 3, Stride: 1}}}
	for w := int64(0); w < 12; w++ {
		step := w*4 + 1 // first step of window w
		for link := 0; link < 9; link++ {
			want := int64(link)%3 == w%3 // (link - w*1) mod 3 == 0
			if got := p.LinkDown(link, step); got != want {
				t.Fatalf("window %d link %d: down=%v, want %v", w, link, got, want)
			}
			// Constant across the window.
			if p.LinkDown(link, step+3) != want {
				t.Fatalf("window %d link %d: state changes inside window", w, link)
			}
		}
	}
	// Stride 0 pins the stripe: link 0 down in every window, link 1 never.
	pinned := &Plan{Seed: 2, Drifts: []Drift{{Link: -1, Window: 4, Frac: 1, Period: 3, Stride: 0}}}
	for w := int64(0); w < 8; w++ {
		if !pinned.LinkDown(0, w*4+1) || pinned.LinkDown(1, w*4+1) {
			t.Fatalf("stride=0 stripe moved at window %d", w)
		}
	}
}

// Churn duty cycle: every link is down exactly Down steps per Up+Down cycle,
// and distinct links have distinct phases (the line never flaps in lockstep).
func TestChurnDutyCycle(t *testing.T) {
	p := &Plan{Seed: 77, Churns: []Churn{{Link: -1, Up: 12, Down: 4}}}
	const cycles = 10
	phases := map[int64]bool{}
	for link := 0; link < 8; link++ {
		down := 0
		for s := int64(1); s <= 16*cycles; s++ {
			if p.LinkDown(link, s) {
				down++
			}
		}
		if down != 4*cycles {
			t.Fatalf("link %d down %d steps in %d cycles, want %d", link, down, cycles, 4*cycles)
		}
		phases[p.churnPhase(0, link)] = true
	}
	if len(phases) < 3 {
		t.Fatalf("churn phases barely vary across links: %d distinct in 8", len(phases))
	}
	// Down runs are contiguous and exactly Down long (modulo the truncated
	// first/last run).
	ivs := p.OutageIntervals(3, 16*cycles)
	for i, iv := range ivs {
		n := iv.Hi - iv.Lo + 1
		if n > 4 {
			t.Fatalf("churn down-run %d is %d steps, cap is 4: %+v", i, n, iv)
		}
		if n < 4 && i > 0 && i < len(ivs)-1 {
			t.Fatalf("interior churn down-run %d is short: %+v", i, iv)
		}
	}
}

// nextWindowEdge must return the exact first step at which any windowed
// fault can change state — an off-by-one in either direction makes the
// interval scan disagree with the per-step queries. Churn edges are the
// tricky case: they depend on a per-link seeded phase, and the edge step is
// already the first step of the new state (no +1, unlike window edges).
func TestWindowEdgeScanMatchesQueries(t *testing.T) {
	plans := []*Plan{
		{Seed: 5, Churns: []Churn{{Link: -1, Up: 7, Down: 3}}},
		{Seed: 5, Churns: []Churn{{Link: -1, Up: 1, Down: 1}}}, // every step is an edge
		{Seed: 9, Drifts: []Drift{{Link: -1, Window: 5, Frac: 0.7, Period: 2, Stride: 1}}},
		{Seed: 9, Outages: []Outage{{Link: -1, Window: 8, Frac: 0.4}},
			Churns: []Churn{{Link: -1, Up: 6, Down: 2}}}, // misaligned edge sources
		{Seed: 3, Drifts: []Drift{{Link: 2, Window: 3, Frac: 1, Period: 4, Stride: 3}},
			Churns: []Churn{{Link: 2, Up: 5, Down: 5}}},
	}
	const max = 400
	for pi, p := range plans {
		for link := 0; link < 4; link++ {
			// Every edge the scan visits must be a real potential transition
			// point, and no transition may happen strictly between edges.
			step := int64(1)
			for step <= max {
				next := p.nextWindowEdge(link, step)
				if next <= step {
					t.Fatalf("plan %d link %d: edge %d does not advance past %d", pi, link, next, step)
				}
				state := p.LinkDown(link, step)
				for s := step + 1; s < next && s <= max; s++ {
					if p.LinkDown(link, s) != state {
						t.Fatalf("plan %d link %d: state flipped at %d inside segment [%d,%d)",
							pi, link, s, step, next)
					}
				}
				step = next
			}
			// And the interval enumeration built on that scan matches the
			// per-step query exactly, including at segment boundaries.
			ivs := p.OutageIntervals(link, max)
			at := func(s int64) bool {
				for _, iv := range ivs {
					if s >= iv.Lo && s <= iv.Hi {
						return true
					}
				}
				return false
			}
			for s := int64(1); s <= max; s++ {
				if at(s) != p.LinkDown(link, s) {
					t.Fatalf("plan %d link %d: interval/query mismatch at step %d", pi, link, s)
				}
			}
		}
	}
}

// SpikeLinks mirrors JitterLinks for the spike regime.
func TestSpikeLinks(t *testing.T) {
	p := &Plan{Spikes: []Spike{{Link: 4, Prob: 1, Alpha: 1.5, Cap: 8}, {Link: 0, Prob: 1, Alpha: 1.5, Cap: 8}}}
	got := p.SpikeLinks(6)
	if len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("SpikeLinks = %v", got)
	}
	all := &Plan{Spikes: []Spike{{Link: -1, Prob: 1, Alpha: 1.5, Cap: 8}}}
	if g := all.SpikeLinks(3); len(g) != 3 {
		t.Fatalf("SpikeLinks(-1) = %v", g)
	}
}

// Validation catches each malformed new-regime spec.
func TestValidateNewRegimes(t *testing.T) {
	bad := []*Plan{
		{Spikes: []Spike{{Link: 9, Prob: 1, Alpha: 1.5, Cap: 8}}},
		{Spikes: []Spike{{Link: 0, Prob: 0, Alpha: 1.5, Cap: 8}}},
		{Spikes: []Spike{{Link: 0, Prob: 1, Alpha: 0, Cap: 8}}},
		{Spikes: []Spike{{Link: 0, Prob: 1, Alpha: 1.5, Cap: 0}}},
		{Drifts: []Drift{{Link: 9, Window: 4, Frac: 1, Period: 2, Stride: 1}}},
		{Drifts: []Drift{{Link: 0, Window: 0, Frac: 1, Period: 2, Stride: 1}}},
		{Drifts: []Drift{{Link: 0, Window: 4, Frac: 2, Period: 2, Stride: 1}}},
		{Drifts: []Drift{{Link: 0, Window: 4, Frac: 1, Period: 0, Stride: 1}}},
		{Drifts: []Drift{{Link: 0, Window: 4, Frac: 1, Period: 2, Stride: -1}}},
		{Churns: []Churn{{Link: 9, Up: 4, Down: 4}}},
		{Churns: []Churn{{Link: 0, Up: 0, Down: 4}}},
		{Churns: []Churn{{Link: 0, Up: 4, Down: 0}}},
	}
	for i, p := range bad {
		if p.Validate(8) == nil {
			t.Fatalf("bad plan %d validated: %+v", i, p)
		}
	}
	good := &Plan{
		Spikes: []Spike{{Link: -1, Prob: 0.01, Alpha: 1.5, Cap: 32}},
		Drifts: []Drift{{Link: -1, Window: 8, Frac: 0.5, Period: 4, Stride: 1}},
		Churns: []Churn{{Link: 3, Up: 12, Down: 4}},
	}
	if err := good.Validate(8); err != nil {
		t.Fatal(err)
	}
	if !good.Enabled() {
		t.Fatal("plan with only new regimes reports disabled")
	}
}

// Parse accepts the new grammar and round-trips it through String.
func TestParseNewRegimes(t *testing.T) {
	cases := []struct {
		spec string
		ok   bool
	}{
		{"7:spike=32", true},
		{"7:spike=32@0.01~1.5#2", true},
		{"7:drift=0.2x8/4", true},
		{"7:drift=0.2x8/4~2#1", true},
		{"7:churn=12x4", true},
		{"7:churn=12x4#3", true},
		{"7:spike=0", false},       // cap < 1
		{"7:spike=8~0", false},     // alpha <= 0
		{"7:spike=8@1.5", false},   // prob > 1
		{"7:drift=0.2x8", false},   // missing period
		{"7:drift=0.2x8/0", false}, // period < 1
		{"7:drift=0.2x8/4~x", false},
		{"7:churn=12", false},   // missing down
		{"7:churn=0x4", false},  // up < 1
		{"7:churn=12x0", false}, // down < 1
	}
	for _, c := range cases {
		p, err := Parse(c.spec)
		if c.ok && err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("Parse(%q) accepted: %+v", c.spec, p)
		}
		if c.ok {
			rt, err := Parse(p.String())
			if err != nil {
				t.Fatalf("round trip %q: %v", p.String(), err)
			}
			if rt.String() != p.String() {
				t.Fatalf("round trip %q != %q", rt.String(), p.String())
			}
		}
	}
}
