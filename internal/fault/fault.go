// Package fault is the deterministic fault-injection layer for the host
// simulator. A Plan composes seven fault kinds over the host line:
//
//   - Jitter: per-injection extra link delay (a transient straggler link);
//   - Spike: per-injection heavy-tailed extra delay — a truncated Pareto
//     draw, so most injections pass clean and a few straggle badly;
//   - Outage: transient link outages over step windows — queued messages
//     wait, they are never dropped;
//   - Drift: a moving outage — a stripe of down links that advances along
//     the line as windows pass (time-varying regime);
//   - Churn: a link that flaps up/down on a fixed duty cycle, with a seeded
//     per-link phase so the line never flaps in lockstep;
//   - Slowdown: a host computes fewer pebbles per step over step windows;
//   - Crash: a permanent crash-stop host — it stops computing forever but
//     keeps relaying traffic (the NIC outlives the CPU).
//
// Every query is a pure function of (Seed, site, step): no state, no
// generator to advance, so the sequential and the parallel engine — which
// visit (site, step) pairs in different orders — observe the exact same
// faults and stay bit-identical. Probabilistic faults hash (seed, spec,
// site, window) through a splitmix64 finalizer; raising a probability
// strictly grows the set of faulty windows (the hash threshold test is
// monotone), which is what makes fault-rate sweeps monotone too.
package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Jitter adds extra delay to individual link injections. A hit adds between
// 1 and Amp steps, drawn deterministically per (link, direction, step,
// injection slot). Jitter is additive only: arrivals are never earlier than
// the base delay, so the parallel engine's lookahead stays safe.
type Jitter struct {
	Link int     // line link index, -1 = every link
	Amp  int     // maximum extra delay, >= 1
	Prob float64 // per-injection hit probability, in (0, 1]
}

// Spike adds heavy-tailed extra delay to individual link injections: a hit
// adds a truncated Pareto draw min(Cap, floor(U^(-1/Alpha))) steps, so the
// bulk of hits add a step or two and a rare few add close to Cap. Like
// Jitter it is additive only, which keeps the parallel engine's lookahead
// safe; smaller Alpha means a heavier tail.
type Spike struct {
	Link  int     // line link index, -1 = every link
	Prob  float64 // per-injection hit probability, in (0, 1]
	Alpha float64 // Pareto tail index, > 0
	Cap   int     // maximum extra delay, >= 1
}

// Outage takes a link down (both directions) for whole step windows: window
// w covers steps [w*Window+1, (w+1)*Window] and is down with probability
// Frac, decided independently per (link, window). While down, the link
// injects nothing; queued messages wait and inject when it recovers.
type Outage struct {
	Link   int     // line link index, -1 = every link
	Window int     // steps per window, >= 1
	Frac   float64 // per-window outage probability, in (0, 1]
}

// Drift is a moving outage: in window w, the stripe covers exactly the
// links l with (l - w*Stride) ≡ 0 (mod Period), and each covered link is
// down for that window with probability Frac. The stripe advances Stride
// links per window, so outages sweep along the line instead of pinning one
// link — E13's static outages generalized to a time-varying regime. Link
// restricts the drift to one link (it is then down only in the windows
// whose stripe passes over it).
type Drift struct {
	Link   int     // line link index, -1 = every link
	Window int     // steps per window, >= 1
	Frac   float64 // per-(covered link, window) outage probability, in (0, 1]
	Period int     // stripe spacing in links, >= 1
	Stride int     // links the stripe advances per window, >= 0
}

// Churn flaps a link on a deterministic duty cycle: each cycle is Up steps
// up followed by Down steps down, with a seeded per-link phase offset so
// different links flap out of step. Unlike Outage there is no randomness
// per window — the flapping itself is the adversary.
type Churn struct {
	Link int // line link index, -1 = every link
	Up   int // up steps per cycle, >= 1
	Down int // down steps per cycle, >= 1
}

// Slowdown caps a host's effective compute rate at Limit pebbles per step
// during affected windows (same windowing as Outage).
type Slowdown struct {
	Host   int     // host position, -1 = every host
	Window int     // steps per window, >= 1
	Frac   float64 // per-window slowdown probability, in (0, 1]
	Limit  int     // pebbles per step while slowed, >= 0
}

// Crash permanently stops a host's compute at the given step: its remaining
// pebbles are written off and its replicas stay frozen. The host still
// relays link traffic. Crash-stop hosts are excluded from routing up front
// (static failover), so survivors never wait on a doomed sender.
type Crash struct {
	Host int
	Step int64 // first step at which the host no longer computes, >= 1
}

// Plan is a deterministic fault schedule. The zero value (and a nil *Plan)
// injects nothing.
type Plan struct {
	Seed      uint64
	Jitters   []Jitter
	Spikes    []Spike
	Outages   []Outage
	Drifts    []Drift
	Churns    []Churn
	Slowdowns []Slowdown
	Crashes   []Crash
}

// Enabled reports whether the plan injects any fault at all.
func (p *Plan) Enabled() bool {
	return p != nil &&
		(len(p.Jitters) > 0 || len(p.Spikes) > 0 || len(p.Outages) > 0 ||
			len(p.Drifts) > 0 || len(p.Churns) > 0 ||
			len(p.Slowdowns) > 0 || len(p.Crashes) > 0)
}

// Validate checks every spec against a host line of hostN workstations
// (hostN-1 links).
func (p *Plan) Validate(hostN int) error {
	if p == nil {
		return nil
	}
	links := hostN - 1
	for i, j := range p.Jitters {
		if j.Link < -1 || j.Link >= links {
			return fmt.Errorf("fault: jitter %d: link %d out of range [0,%d)", i, j.Link, links)
		}
		if j.Amp < 1 {
			return fmt.Errorf("fault: jitter %d: amplitude %d < 1", i, j.Amp)
		}
		if j.Prob <= 0 || j.Prob > 1 {
			return fmt.Errorf("fault: jitter %d: probability %v outside (0,1]", i, j.Prob)
		}
	}
	for i, s := range p.Spikes {
		if s.Link < -1 || s.Link >= links {
			return fmt.Errorf("fault: spike %d: link %d out of range [0,%d)", i, s.Link, links)
		}
		if s.Prob <= 0 || s.Prob > 1 {
			return fmt.Errorf("fault: spike %d: probability %v outside (0,1]", i, s.Prob)
		}
		if s.Alpha <= 0 {
			return fmt.Errorf("fault: spike %d: alpha %v <= 0", i, s.Alpha)
		}
		if s.Cap < 1 {
			return fmt.Errorf("fault: spike %d: cap %d < 1", i, s.Cap)
		}
	}
	for i, o := range p.Outages {
		if o.Link < -1 || o.Link >= links {
			return fmt.Errorf("fault: outage %d: link %d out of range [0,%d)", i, o.Link, links)
		}
		if o.Window < 1 {
			return fmt.Errorf("fault: outage %d: window %d < 1", i, o.Window)
		}
		if o.Frac <= 0 || o.Frac > 1 {
			return fmt.Errorf("fault: outage %d: fraction %v outside (0,1]", i, o.Frac)
		}
	}
	for i, d := range p.Drifts {
		if d.Link < -1 || d.Link >= links {
			return fmt.Errorf("fault: drift %d: link %d out of range [0,%d)", i, d.Link, links)
		}
		if d.Window < 1 {
			return fmt.Errorf("fault: drift %d: window %d < 1", i, d.Window)
		}
		if d.Frac <= 0 || d.Frac > 1 {
			return fmt.Errorf("fault: drift %d: fraction %v outside (0,1]", i, d.Frac)
		}
		if d.Period < 1 {
			return fmt.Errorf("fault: drift %d: period %d < 1", i, d.Period)
		}
		if d.Stride < 0 {
			return fmt.Errorf("fault: drift %d: stride %d < 0", i, d.Stride)
		}
	}
	for i, ch := range p.Churns {
		if ch.Link < -1 || ch.Link >= links {
			return fmt.Errorf("fault: churn %d: link %d out of range [0,%d)", i, ch.Link, links)
		}
		if ch.Up < 1 {
			return fmt.Errorf("fault: churn %d: up %d < 1", i, ch.Up)
		}
		if ch.Down < 1 {
			return fmt.Errorf("fault: churn %d: down %d < 1", i, ch.Down)
		}
	}
	for i, s := range p.Slowdowns {
		if s.Host < -1 || s.Host >= hostN {
			return fmt.Errorf("fault: slowdown %d: host %d out of range [0,%d)", i, s.Host, hostN)
		}
		if s.Window < 1 {
			return fmt.Errorf("fault: slowdown %d: window %d < 1", i, s.Window)
		}
		if s.Frac <= 0 || s.Frac > 1 {
			return fmt.Errorf("fault: slowdown %d: fraction %v outside (0,1]", i, s.Frac)
		}
		if s.Limit < 0 {
			return fmt.Errorf("fault: slowdown %d: limit %d < 0", i, s.Limit)
		}
	}
	for i, c := range p.Crashes {
		if c.Host < 0 || c.Host >= hostN {
			return fmt.Errorf("fault: crash %d: host %d out of range [0,%d)", i, c.Host, hostN)
		}
		if c.Step < 1 {
			return fmt.Errorf("fault: crash %d: step %d < 1", i, c.Step)
		}
	}
	return nil
}

// splitmix64 finalizer: the avalanche stage of Vigna's splitmix64.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Salt constants keep the fault kinds statistically independent even when
// their specs share sites and windows.
const (
	saltJitter uint64 = 0x6a69747465720000 // "jitter"
	saltOutage uint64 = 0x6f75746167650000 // "outage"
	saltSlow   uint64 = 0x736c6f7764000000 // "slowd"
	saltSpike  uint64 = 0x7370696b65000000 // "spike"
	saltDrift  uint64 = 0x6472696674000000 // "drift"
	saltChurn  uint64 = 0x636875726e000000 // "churn"
)

// h hashes (seed, salt+spec, site, step) into 64 uniform bits.
func (p *Plan) h(salt uint64, spec int, site int, step int64) uint64 {
	x := p.Seed
	x = mix(x + salt + uint64(spec)*0x9e3779b97f4a7c15)
	x = mix(x + uint64(site)*0xff51afd7ed558ccd)
	x = mix(x + uint64(step))
	return x
}

// u01 maps a hash to [0, 1) with 53 bits of precision.
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// window maps a 1-based step to its window index for size w.
func window(step int64, w int) int64 { return (step - 1) / int64(w) }

// ExtraDelay returns the extra delay (0 when none) for an injection on the
// given link/direction at the given step; slot distinguishes the up-to-B
// injections one link makes in one step.
func (p *Plan) ExtraDelay(link int, leftward bool, step int64, slot int) int {
	extra := 0
	site := link * 2
	if leftward {
		site++
	}
	for i := range p.Jitters {
		j := &p.Jitters[i]
		if j.Link != -1 && j.Link != link {
			continue
		}
		hv := mix(p.h(saltJitter, i, site, step) + uint64(slot)*0x9e3779b97f4a7c15)
		if j.Prob < 1 && u01(hv) >= j.Prob {
			continue
		}
		extra += 1 + int(mix(hv)%uint64(j.Amp))
	}
	for i := range p.Spikes {
		s := &p.Spikes[i]
		if s.Link != -1 && s.Link != link {
			continue
		}
		hv := mix(p.h(saltSpike, i, site, step) + uint64(slot)*0x9e3779b97f4a7c15)
		if s.Prob < 1 && u01(hv) >= s.Prob {
			continue
		}
		// Truncated Pareto: X = U^(-1/alpha) >= 1, clipped to Cap before the
		// float-to-int conversion (U can be 0, making X infinite).
		x := math.Pow(1-u01(mix(hv)), -1/s.Alpha)
		if !(x < float64(s.Cap)) {
			extra += s.Cap
		} else {
			extra += int(x)
		}
	}
	return extra
}

// LinkDown reports whether the link is down (both directions) at the step.
func (p *Plan) LinkDown(link int, step int64) bool {
	for i := range p.Outages {
		o := &p.Outages[i]
		if o.Link != -1 && o.Link != link {
			continue
		}
		if o.Frac >= 1 || u01(p.h(saltOutage, i, link, window(step, o.Window))) < o.Frac {
			return true
		}
	}
	for i := range p.Drifts {
		d := &p.Drifts[i]
		if d.Link != -1 && d.Link != link {
			continue
		}
		w := window(step, d.Window)
		off := (int64(link) - w*int64(d.Stride)) % int64(d.Period)
		if off < 0 {
			off += int64(d.Period)
		}
		if off != 0 {
			continue
		}
		if d.Frac >= 1 || u01(p.h(saltDrift, i, link, w)) < d.Frac {
			return true
		}
	}
	for i := range p.Churns {
		ch := &p.Churns[i]
		if ch.Link != -1 && ch.Link != link {
			continue
		}
		cycle := int64(ch.Up + ch.Down)
		pos := (step - 1 + p.churnPhase(i, link)) % cycle
		if pos >= int64(ch.Up) {
			return true
		}
	}
	return false
}

// churnPhase is churn spec i's seeded phase offset on the link, in
// [0, Up+Down). Hashing the link (not the spec's selector) gives every link
// its own phase even under a Link == -1 spec.
func (p *Plan) churnPhase(i, link int) int64 {
	ch := &p.Churns[i]
	return int64(p.h(saltChurn, i, link, 0) % uint64(ch.Up+ch.Down))
}

// ComputeLimit returns how many pebbles the host may compute at the step,
// given its configured base rate.
func (p *Plan) ComputeLimit(host int, step int64, base int) int {
	lim := base
	for i := range p.Slowdowns {
		s := &p.Slowdowns[i]
		if s.Host != -1 && s.Host != host {
			continue
		}
		if s.Frac >= 1 || u01(p.h(saltSlow, i, host, window(step, s.Window))) < s.Frac {
			if s.Limit < lim {
				lim = s.Limit
			}
		}
	}
	return lim
}

// CrashStep returns the earliest step at which the host crash-stops, if any.
func (p *Plan) CrashStep(host int) (int64, bool) {
	var best int64
	found := false
	for _, c := range p.Crashes {
		if c.Host != host {
			continue
		}
		if !found || c.Step < best {
			best = c.Step
			found = true
		}
	}
	return best, found
}

// CrashedHosts returns the sorted, deduplicated hosts that ever crash.
func (p *Plan) CrashedHosts() []int {
	if p == nil || len(p.Crashes) == 0 {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, c := range p.Crashes {
		if !seen[c.Host] {
			seen[c.Host] = true
			out = append(out, c.Host)
		}
	}
	for i := 1; i < len(out); i++ { // insertion sort: crash lists are tiny
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Interval is an inclusive step range [Lo, Hi].
type Interval struct{ Lo, Hi int64 }

// OutageIntervals enumerates the merged down intervals of a link over steps
// [1, maxStep] — static outages, drift stripes and churn duty cycles all
// flow through LinkDown, so the intervals cover their union. The engine
// never calls this on its hot path.
func (p *Plan) OutageIntervals(link int, maxStep int64) []Interval {
	if len(p.Outages) == 0 && len(p.Drifts) == 0 && len(p.Churns) == 0 {
		return nil
	}
	return p.scanIntervals(link, maxStep, func(step int64) bool { return p.LinkDown(link, step) })
}

// SlowIntervals enumerates the merged slowed intervals of a host (any
// applicable slowdown spec firing) over steps [1, maxStep].
func (p *Plan) SlowIntervals(host int, maxStep int64) []Interval {
	if len(p.Slowdowns) == 0 {
		return nil
	}
	return p.scanIntervals(host, maxStep, func(step int64) bool {
		return p.ComputeLimit(host, step, 1<<30) < 1<<30
	})
}

// scanIntervals walks window-aligned steps and merges consecutive hits. All
// windowed faults are constant between the site's window edges, so we probe
// once per edge-to-edge segment instead of per step. site is the link (or
// host) being scanned: churn edges are per-link because of the seeded phase.
func (p *Plan) scanIntervals(site int, maxStep int64, down func(step int64) bool) []Interval {
	var out []Interval
	step := int64(1)
	for step <= maxStep {
		next := p.nextWindowEdge(site, step)
		if next > maxStep+1 {
			next = maxStep + 1
		}
		if down(step) {
			if n := len(out); n > 0 && out[n-1].Hi == step-1 {
				out[n-1].Hi = next - 1
			} else {
				out = append(out, Interval{Lo: step, Hi: next - 1})
			}
		}
		step = next
	}
	return out
}

// nextWindowEdge returns the smallest step > step at which any windowed
// fault can change state at the site. Outage/drift/slowdown edges are the
// shared window boundaries; churn edges depend on the site's phase, which
// is why the scan is per site.
func (p *Plan) nextWindowEdge(site int, step int64) int64 {
	next := step + 1
	first := true
	for _, o := range p.Outages {
		e := (window(step, o.Window) + 1) * int64(o.Window)
		if first || e < next {
			next, first = e+1, false
		}
	}
	for _, d := range p.Drifts {
		e := (window(step, d.Window) + 1) * int64(d.Window)
		if first || e < next {
			next, first = e+1, false
		}
	}
	for i := range p.Churns {
		ch := &p.Churns[i]
		cycle := int64(ch.Up + ch.Down)
		pos := (step - 1 + p.churnPhase(i, site)) % cycle
		// Next transition: up->down when pos reaches Up, down->up when it
		// wraps to 0. Both deltas are >= 1, so e > step always.
		var e int64
		if pos < int64(ch.Up) {
			e = step + (int64(ch.Up) - pos)
		} else {
			e = step + (cycle - pos)
		}
		if first || e < next {
			next, first = e, false
		}
	}
	for _, s := range p.Slowdowns {
		e := (window(step, s.Window) + 1) * int64(s.Window)
		if first || e < next {
			next, first = e+1, false
		}
	}
	if next <= step {
		next = step + 1
	}
	return next
}

// JitterLinks returns the sorted links affected by any jitter spec, given
// the number of line links.
func (p *Plan) JitterLinks(links int) []int {
	if len(p.Jitters) == 0 {
		return nil
	}
	sel := make([]int, len(p.Jitters))
	for i, j := range p.Jitters {
		sel[i] = j.Link
	}
	return markLinks(sel, links)
}

// SpikeLinks returns the sorted links affected by any spike spec, given the
// number of line links.
func (p *Plan) SpikeLinks(links int) []int {
	if len(p.Spikes) == 0 {
		return nil
	}
	sel := make([]int, len(p.Spikes))
	for i, s := range p.Spikes {
		sel[i] = s.Link
	}
	return markLinks(sel, links)
}

// markLinks expands a list of link selectors (-1 = all) into the sorted
// affected links.
func markLinks(sel []int, links int) []int {
	mark := make([]bool, links)
	for _, l := range sel {
		if l == -1 {
			for i := range mark {
				mark[i] = true
			}
			break
		}
		if l >= 0 && l < links {
			mark[l] = true
		}
	}
	var out []int
	for l, m := range mark {
		if m {
			out = append(out, l)
		}
	}
	return out
}

// Parse builds a Plan from the CLI spec format
//
//	SEED:item;item;...
//
// with items
//
//	jitter=AMP[@PROB][#LINK]           e.g. jitter=4@0.5#7   (AMP max extra steps)
//	spike=CAP[@PROB][~ALPHA][#LINK]    e.g. spike=32@0.1~1.2 (Pareto tail, CAP truncation)
//	outage=FRACxWIN[#LINK]             e.g. outage=0.1x32    (FRAC of WIN-step windows down)
//	drift=FRACxWIN/PERIOD[~STRIDE][#LINK]  e.g. drift=0.8x16/4~1 (moving outage stripe)
//	churn=UPxDOWN[#LINK]               e.g. churn=24x8       (duty-cycle link flapping)
//	slow=FRACxWIN/LIMIT[#HOST]         e.g. slow=0.2x16/0#3  (compute capped at LIMIT)
//	crash=HOST@STEP                    e.g. crash=12@200
//
// Omitted #LINK/#HOST selectors mean every link/host; spike's ALPHA
// defaults to 1.5 and drift's STRIDE to 1.
func Parse(spec string) (*Plan, error) {
	seedStr, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("fault: spec %q missing \"seed:\" prefix", spec)
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("fault: bad seed %q: %v", seedStr, err)
	}
	p := &Plan{Seed: seed}
	for _, item := range strings.Split(rest, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("fault: item %q is not kind=value", item)
		}
		// Peel the optional #SITE selector off the value.
		site := -1
		if body, sel, has := strings.Cut(val, "#"); has {
			site, err = strconv.Atoi(sel)
			if err != nil || site < 0 {
				return nil, fmt.Errorf("fault: item %q: bad site %q", item, sel)
			}
			val = body
		}
		switch kind {
		case "jitter":
			amp, prob := val, 1.0
			if b, pr, has := strings.Cut(val, "@"); has {
				amp = b
				prob, err = strconv.ParseFloat(pr, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: item %q: bad probability %q", item, pr)
				}
			}
			a, err := strconv.Atoi(amp)
			if err != nil {
				return nil, fmt.Errorf("fault: item %q: bad amplitude %q", item, amp)
			}
			p.Jitters = append(p.Jitters, Jitter{Link: site, Amp: a, Prob: prob})
		case "spike":
			body, alpha := val, 1.5
			if b, as, has := strings.Cut(val, "~"); has {
				body = b
				alpha, err = strconv.ParseFloat(as, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: item %q: bad alpha %q", item, as)
				}
			}
			capStr, prob := body, 1.0
			if b, pr, has := strings.Cut(body, "@"); has {
				capStr = b
				prob, err = strconv.ParseFloat(pr, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: item %q: bad probability %q", item, pr)
				}
			}
			cp, err := strconv.Atoi(capStr)
			if err != nil {
				return nil, fmt.Errorf("fault: item %q: bad cap %q", item, capStr)
			}
			p.Spikes = append(p.Spikes, Spike{Link: site, Cap: cp, Prob: prob, Alpha: alpha})
		case "outage":
			frac, win, err := parseFracWindow(val)
			if err != nil {
				return nil, fmt.Errorf("fault: item %q: %v", item, err)
			}
			p.Outages = append(p.Outages, Outage{Link: site, Window: win, Frac: frac})
		case "drift":
			body, tail, has := strings.Cut(val, "/")
			if !has {
				return nil, fmt.Errorf("fault: item %q missing /PERIOD", item)
			}
			frac, win, err := parseFracWindow(body)
			if err != nil {
				return nil, fmt.Errorf("fault: item %q: %v", item, err)
			}
			perStr, stride := tail, 1
			if ps, ss, has := strings.Cut(tail, "~"); has {
				perStr = ps
				stride, err = strconv.Atoi(ss)
				if err != nil {
					return nil, fmt.Errorf("fault: item %q: bad stride %q", item, ss)
				}
			}
			per, err := strconv.Atoi(perStr)
			if err != nil {
				return nil, fmt.Errorf("fault: item %q: bad period %q", item, perStr)
			}
			p.Drifts = append(p.Drifts, Drift{Link: site, Window: win, Frac: frac, Period: per, Stride: stride})
		case "churn":
			upStr, downStr, has := strings.Cut(val, "x")
			if !has {
				return nil, fmt.Errorf("fault: item %q is not churn=UPxDOWN", item)
			}
			up, err := strconv.Atoi(upStr)
			if err != nil {
				return nil, fmt.Errorf("fault: item %q: bad up %q", item, upStr)
			}
			down, err := strconv.Atoi(downStr)
			if err != nil {
				return nil, fmt.Errorf("fault: item %q: bad down %q", item, downStr)
			}
			p.Churns = append(p.Churns, Churn{Link: site, Up: up, Down: down})
		case "slow":
			body, limStr, has := strings.Cut(val, "/")
			if !has {
				return nil, fmt.Errorf("fault: item %q missing /LIMIT", item)
			}
			frac, win, err := parseFracWindow(body)
			if err != nil {
				return nil, fmt.Errorf("fault: item %q: %v", item, err)
			}
			lim, err := strconv.Atoi(limStr)
			if err != nil {
				return nil, fmt.Errorf("fault: item %q: bad limit %q", item, limStr)
			}
			p.Slowdowns = append(p.Slowdowns, Slowdown{Host: site, Window: win, Frac: frac, Limit: lim})
		case "crash":
			if site != -1 {
				return nil, fmt.Errorf("fault: item %q: crash takes HOST@STEP, not #", item)
			}
			hostStr, stepStr, has := strings.Cut(val, "@")
			if !has {
				return nil, fmt.Errorf("fault: item %q is not crash=HOST@STEP", item)
			}
			host, err := strconv.Atoi(hostStr)
			if err != nil {
				return nil, fmt.Errorf("fault: item %q: bad host %q", item, hostStr)
			}
			step, err := strconv.ParseInt(stepStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: item %q: bad step %q", item, stepStr)
			}
			p.Crashes = append(p.Crashes, Crash{Host: host, Step: step})
		default:
			return nil, fmt.Errorf("fault: unknown fault kind %q (want jitter, spike, outage, drift, churn, slow or crash)", kind)
		}
	}
	if !p.Enabled() {
		return nil, fmt.Errorf("fault: spec %q declares no faults", spec)
	}
	// Catch host-independent range errors (fractions, windows, amplitudes)
	// at parse time; site upper bounds are checked against the real host
	// size by the engine's Config.Validate.
	if err := p.Validate(1 << 30); err != nil {
		return nil, err
	}
	return p, nil
}

// parseFracWindow parses "FRACxWIN".
func parseFracWindow(s string) (float64, int, error) {
	fs, ws, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, fmt.Errorf("%q is not FRACxWINDOW", s)
	}
	frac, err := strconv.ParseFloat(fs, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad fraction %q", fs)
	}
	win, err := strconv.Atoi(ws)
	if err != nil {
		return 0, 0, fmt.Errorf("bad window %q", ws)
	}
	return frac, win, nil
}

// String renders the plan back in Parse's spec format.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var items []string
	site := func(s int) string {
		if s == -1 {
			return ""
		}
		return "#" + strconv.Itoa(s)
	}
	for _, j := range p.Jitters {
		it := fmt.Sprintf("jitter=%d", j.Amp)
		if j.Prob < 1 {
			it += fmt.Sprintf("@%g", j.Prob)
		}
		items = append(items, it+site(j.Link))
	}
	for _, s := range p.Spikes {
		it := fmt.Sprintf("spike=%d", s.Cap)
		if s.Prob < 1 {
			it += fmt.Sprintf("@%g", s.Prob)
		}
		it += fmt.Sprintf("~%g", s.Alpha)
		items = append(items, it+site(s.Link))
	}
	for _, o := range p.Outages {
		items = append(items, fmt.Sprintf("outage=%gx%d%s", o.Frac, o.Window, site(o.Link)))
	}
	for _, d := range p.Drifts {
		items = append(items, fmt.Sprintf("drift=%gx%d/%d~%d%s", d.Frac, d.Window, d.Period, d.Stride, site(d.Link)))
	}
	for _, ch := range p.Churns {
		items = append(items, fmt.Sprintf("churn=%dx%d%s", ch.Up, ch.Down, site(ch.Link)))
	}
	for _, s := range p.Slowdowns {
		items = append(items, fmt.Sprintf("slow=%gx%d/%d%s", s.Frac, s.Window, s.Limit, site(s.Host)))
	}
	for _, c := range p.Crashes {
		items = append(items, fmt.Sprintf("crash=%d@%d", c.Host, c.Step))
	}
	return fmt.Sprintf("%d:%s", p.Seed, strings.Join(items, ";"))
}
