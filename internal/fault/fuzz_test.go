package fault

import (
	"testing"
)

// FuzzFaultSpec checks that the spec grammar is a fixed point under one
// Parse→String normalization: any string Parse accepts must String back to a
// spec that reparses to the identical normal form, and the parsed plan must
// either validate cleanly on a reference line or fail validation the same
// way after the round trip. Parse must never panic on arbitrary input.
func FuzzFaultSpec(f *testing.F) {
	seeds := []string{
		"7:jitter=4",
		"7:jitter=4@0.5#3",
		"0:outage=0.1x32",
		"1:slow=0.2x16/0#5",
		"2:crash=12@200",
		"7:spike=32@0.01~1.5#2",
		"7:spike=1",
		"9:drift=0.2x8/4",
		"9:drift=1x1/1~0#0",
		"5:churn=12x4",
		"5:churn=1x1#3",
		"3:jitter=2@0.5;spike=32@0.01~1.5;outage=0.05x8#1;drift=0.2x8/4;churn=12x4#1;slow=0.5x4/1#2;crash=0@9",
		"18446744073709551615:churn=1x1",
		"7:",
		"x:jitter=4",
		"7:spike=8~",
		"7:drift=0.2x8/",
		"7:churn=12x",
		"7:jitter=4##1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return // rejected input: only requirement is no panic
		}
		norm := p.String()
		p2, err := Parse(norm)
		if err != nil {
			t.Fatalf("Parse(%q) ok but String %q does not reparse: %v", spec, norm, err)
		}
		if got := p2.String(); got != norm {
			t.Fatalf("String not a fixed point: %q -> %q -> %q", spec, norm, got)
		}
		// The plans must agree as fault generators, not just as strings: probe
		// a few (site, step) queries across both.
		for _, site := range []int{0, 1, 5} {
			for _, step := range []int64{1, 7, 64, 1000} {
				if p.ExtraDelay(site, false, step, 0) != p2.ExtraDelay(site, false, step, 0) {
					t.Fatalf("ExtraDelay diverges after round trip of %q at (%d,%d)", spec, site, step)
				}
				if p.LinkDown(site, step) != p2.LinkDown(site, step) {
					t.Fatalf("LinkDown diverges after round trip of %q at (%d,%d)", spec, site, step)
				}
				if p.ComputeLimit(site, step, 3) != p2.ComputeLimit(site, step, 3) {
					t.Fatalf("ComputeLimit diverges after round trip of %q at (%d,%d)", spec, site, step)
				}
			}
		}
		// Validation must agree too (on a line big enough for fuzzer-found
		// small sites, and on one that is too small).
		for _, hostN := range []int{2, 64} {
			if (p.Validate(hostN) == nil) != (p2.Validate(hostN) == nil) {
				t.Fatalf("Validate(%d) diverges after round trip of %q", hostN, spec)
			}
		}
	})
}
