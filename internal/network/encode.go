package network

import (
	"encoding/json"
	"fmt"
	"io"
)

// wireNetwork is the JSON shape of a Network: {"name": ..., "nodes": N,
// "links": [[u, v, delay], ...]}. Compact enough for hand-editing and for
// the CLI's @file host specifications.
type wireNetwork struct {
	Name  string   `json:"name,omitempty"`
	Nodes int      `json:"nodes"`
	Links [][3]int `json:"links"`
}

// MarshalJSON implements json.Marshaler.
func (g *Network) MarshalJSON() ([]byte, error) {
	w := wireNetwork{Name: g.name, Nodes: g.n, Links: make([][3]int, 0, len(g.edges))}
	for _, e := range g.edges {
		w.Links = append(w.Links, [3]int{e.U, e.V, e.Delay})
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler: the network is rebuilt and
// validated link by link.
func (g *Network) UnmarshalJSON(data []byte) error {
	var w wireNetwork
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("network: decode: %w", err)
	}
	if w.Nodes < 0 {
		return fmt.Errorf("network: negative node count %d", w.Nodes)
	}
	*g = Network{name: w.Name, n: w.Nodes, adj: make([][]Half, w.Nodes)}
	for i, l := range w.Links {
		if err := g.AddLink(l[0], l[1], l[2]); err != nil {
			return fmt.Errorf("network: link %d: %w", i, err)
		}
	}
	return nil
}

// WriteJSON encodes the network to w with indentation.
func (g *Network) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(g)
}

// ReadJSON decodes a network from r and validates it.
func ReadJSON(r io.Reader) (*Network, error) {
	var g Network
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}
