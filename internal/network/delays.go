package network

import (
	"fmt"
	"math"
	"math/rand"
)

// A DelaySource produces link delays for topology generators. Sources are
// deterministic given the generator's seed: the generator passes each source
// a private *rand.Rand.
type DelaySource interface {
	// Delay returns the delay for the next link. Implementations must
	// return a value >= 1.
	Delay(r *rand.Rand) int
	// String describes the distribution for reports.
	String() string
}

// ConstDelay assigns the same delay to every link.
type ConstDelay int

// Delay implements DelaySource.
func (c ConstDelay) Delay(*rand.Rand) int {
	if c < 1 {
		return 1
	}
	return int(c)
}

func (c ConstDelay) String() string { return fmt.Sprintf("const(%d)", int(c)) }

// Unit is the unit-delay source, for guest-like networks.
var Unit DelaySource = ConstDelay(1)

// UniformDelay draws delays uniformly from [Lo, Hi].
type UniformDelay struct {
	Lo, Hi int
}

// Delay implements DelaySource.
func (u UniformDelay) Delay(r *rand.Rand) int {
	lo, hi := u.Lo, u.Hi
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo + r.Intn(hi-lo+1)
}

func (u UniformDelay) String() string { return fmt.Sprintf("uniform[%d,%d]", u.Lo, u.Hi) }

// ParetoDelay draws heavy-tailed delays: 1 + floor(Scale * (U^(-1/Alpha) - 1)),
// capped at Cap. This models the NOW setting the paper emphasises, where a few
// links (long-haul or multi-hop) have delays far above the average, so that
// d_max >> d_ave. Alpha around 1.2 with a generous cap gives a constant
// average with d_max growing with the sample size.
type ParetoDelay struct {
	Alpha float64 // tail exponent, > 0; smaller is heavier
	Scale float64 // scale of the excess over 1
	Cap   int     // maximum delay; 0 means no cap
}

// Delay implements DelaySource.
func (p ParetoDelay) Delay(r *rand.Rand) int {
	alpha := p.Alpha
	if alpha <= 0 {
		alpha = 1.2
	}
	scale := p.Scale
	if scale <= 0 {
		scale = 1
	}
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	d := 1 + int(scale*(math.Pow(u, -1/alpha)-1))
	if d < 1 {
		d = 1
	}
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	return d
}

func (p ParetoDelay) String() string {
	return fmt.Sprintf("pareto(alpha=%.2f,scale=%.1f,cap=%d)", p.Alpha, p.Scale, p.Cap)
}

// BimodalDelay returns Far with probability P and Near otherwise: most links
// are fast local links, a fraction are slow long-haul links. This is the
// cleanest way to hold d_ave constant while making d_max large.
type BimodalDelay struct {
	Near, Far int
	P         float64
}

// Delay implements DelaySource.
func (b BimodalDelay) Delay(r *rand.Rand) int {
	near, far := b.Near, b.Far
	if near < 1 {
		near = 1
	}
	if far < near {
		far = near
	}
	if r.Float64() < b.P {
		return far
	}
	return near
}

func (b BimodalDelay) String() string {
	return fmt.Sprintf("bimodal(near=%d,far=%d,p=%.3f)", b.Near, b.Far, b.P)
}

// ExpDelay draws 1 + floor(Exp(Mean-1)) so the mean is about Mean.
type ExpDelay struct {
	Mean float64
}

// Delay implements DelaySource.
func (e ExpDelay) Delay(r *rand.Rand) int {
	m := e.Mean
	if m < 1 {
		m = 1
	}
	d := 1 + int(r.ExpFloat64()*(m-1))
	if d < 1 {
		d = 1
	}
	return d
}

func (e ExpDelay) String() string { return fmt.Sprintf("exp(mean=%.1f)", e.Mean) }

// Log2Ceil returns ceil(log2(n)) for n >= 1 and 0 for n <= 1. It is the
// "log n" used throughout the paper's formulas (bandwidth factor, m_k, D_k).
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	k := 0
	for v := n - 1; v > 0; v >>= 1 {
		k++
	}
	return k
}

// Log2Floor returns floor(log2(n)) for n >= 1; it panics for n < 1.
func Log2Floor(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("network: Log2Floor(%d)", n))
	}
	k := -1
	for v := n; v > 0; v >>= 1 {
		k++
	}
	return k
}

// ISqrt returns floor(sqrt(n)) for n >= 0.
func ISqrt(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("network: ISqrt(%d)", n))
	}
	if n < 2 {
		return n
	}
	x := int(math.Sqrt(float64(n)))
	for x*x > n {
		x--
	}
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}
