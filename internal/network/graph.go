// Package network models the host "network of workstations" (NOW) from
// Andrews, Leighton, Metaxas and Zhang, "Improved Methods for Hiding Latency
// in High Bandwidth Networks" (SPAA 1996).
//
// A Network is an undirected multigraph whose nodes are workstations and
// whose links carry integer delays (latencies, in simulation steps). The
// package provides the standard topologies used throughout the paper (linear
// arrays, rings, meshes, hypercubes, trees, random bounded-degree NOWs) as
// well as the special constructions from the lower-bound sections: the host
// H1 of Theorem 9, the recursive level-box host H2 of Theorem 10 (Figure 5),
// and the clique-chain counterexample of Section 4.
//
// Delay conventions follow the paper: a link with delay d delivers a packet
// injected at step s at step s+d. The average delay d_ave of a network is the
// total link delay divided by the number of links, so that a network with n-1
// links has total delay (n-1)*d_ave.
package network

import (
	"errors"
	"fmt"
	"sort"
)

// Half is one endpoint's view of an undirected link: the peer node, the link
// delay, and the index of the link in the network's edge list.
type Half struct {
	Peer  int // the node at the other end
	Delay int // link delay in steps (>= 1)
	Edge  int // index into Edges()
}

// Edge is an undirected link between workstations U and V with the given
// delay.
type Edge struct {
	U, V  int
	Delay int
}

// Network is an undirected multigraph of workstations. The zero value is an
// empty network; use New to create one with a fixed node count.
type Network struct {
	name  string
	n     int
	edges []Edge
	adj   [][]Half

	// cached stats; invalidated on mutation
	statsValid bool
	stats      Stats
}

// New returns an empty network with n workstations and no links.
// It panics if n < 0.
func New(n int) *Network {
	if n < 0 {
		panic(fmt.Sprintf("network: negative node count %d", n))
	}
	return &Network{n: n, adj: make([][]Half, n)}
}

// ErrBadLink is returned by AddLink for out-of-range endpoints, self loops or
// non-positive delays.
var ErrBadLink = errors.New("network: invalid link")

// AddLink adds an undirected link between u and v with the given delay.
// Multi-edges are permitted (they arise naturally in some constructions);
// self loops are not.
func (g *Network) AddLink(u, v, delay int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: endpoint out of range (%d,%d) with n=%d", ErrBadLink, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("%w: self loop at %d", ErrBadLink, u)
	}
	if delay < 1 {
		return fmt.Errorf("%w: delay %d < 1", ErrBadLink, delay)
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Delay: delay})
	g.adj[u] = append(g.adj[u], Half{Peer: v, Delay: delay, Edge: id})
	g.adj[v] = append(g.adj[v], Half{Peer: u, Delay: delay, Edge: id})
	g.statsValid = false
	return nil
}

// MustAddLink is AddLink but panics on error. Topology generators use it for
// links that are correct by construction.
func (g *Network) MustAddLink(u, v, delay int) {
	if err := g.AddLink(u, v, delay); err != nil {
		panic(err)
	}
}

// SetName records a human-readable name for the topology (used in reports).
func (g *Network) SetName(name string) { g.name = name }

// Name reports the topology's name, or "network" if unset.
func (g *Network) Name() string {
	if g.name == "" {
		return "network"
	}
	return g.name
}

// NumNodes reports the number of workstations.
func (g *Network) NumNodes() int { return g.n }

// NumLinks reports the number of links.
func (g *Network) NumLinks() int { return len(g.edges) }

// Edges returns the link list. The returned slice is owned by the network and
// must not be modified.
func (g *Network) Edges() []Edge { return g.edges }

// Neighbors returns u's incident half-edges. The returned slice is owned by
// the network and must not be modified.
func (g *Network) Neighbors(u int) []Half { return g.adj[u] }

// Degree reports the number of links incident to u.
func (g *Network) Degree(u int) int { return len(g.adj[u]) }

// LinkDelay returns the delay of the link between u and v, or 0 if no such
// link exists. If there are multiple links it returns the smallest delay.
func (g *Network) LinkDelay(u, v int) int {
	best := 0
	for _, h := range g.adj[u] {
		if h.Peer == v && (best == 0 || h.Delay < best) {
			best = h.Delay
		}
	}
	return best
}

// Clone returns a deep copy of the network.
func (g *Network) Clone() *Network {
	c := New(g.n)
	c.name = g.name
	c.edges = append([]Edge(nil), g.edges...)
	for u := range g.adj {
		c.adj[u] = append([]Half(nil), g.adj[u]...)
	}
	return c
}

// Stats summarises the delay structure of a network, in the paper's terms.
type Stats struct {
	Nodes      int
	Links      int
	TotalDelay int64
	AvgDelay   float64 // d_ave: total delay / number of links
	MaxDelay   int     // d_max
	MinDelay   int
	MaxDegree  int
	Connected  bool
}

// Stats computes (and caches) summary statistics.
func (g *Network) Stats() Stats {
	if g.statsValid {
		return g.stats
	}
	s := Stats{Nodes: g.n, Links: len(g.edges)}
	s.MinDelay = 0
	for _, e := range g.edges {
		s.TotalDelay += int64(e.Delay)
		if e.Delay > s.MaxDelay {
			s.MaxDelay = e.Delay
		}
		if s.MinDelay == 0 || e.Delay < s.MinDelay {
			s.MinDelay = e.Delay
		}
	}
	if len(g.edges) > 0 {
		s.AvgDelay = float64(s.TotalDelay) / float64(len(g.edges))
	}
	for u := range g.adj {
		if d := len(g.adj[u]); d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	s.Connected = g.IsConnected()
	g.stats = s
	g.statsValid = true
	return s
}

// AvgDelay reports d_ave.
func (g *Network) AvgDelay() float64 { return g.Stats().AvgDelay }

// MaxDelay reports d_max.
func (g *Network) MaxDelay() int { return g.Stats().MaxDelay }

// IsConnected reports whether every workstation is reachable from node 0.
// The empty network and the single-node network are connected.
func (g *Network) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, h := range g.adj[u] {
			if !seen[h.Peer] {
				seen[h.Peer] = true
				count++
				stack = append(stack, h.Peer)
			}
		}
	}
	return count == g.n
}

// Validate checks structural invariants: adjacency lists consistent with the
// edge list, positive delays, no self loops. It returns the first violation
// found, or nil.
func (g *Network) Validate() error {
	if len(g.adj) != g.n {
		return fmt.Errorf("network: adjacency size %d != n %d", len(g.adj), g.n)
	}
	halves := 0
	for u := range g.adj {
		for _, h := range g.adj[u] {
			if h.Peer < 0 || h.Peer >= g.n {
				return fmt.Errorf("network: node %d has neighbor %d out of range", u, h.Peer)
			}
			if h.Peer == u {
				return fmt.Errorf("network: self loop at %d", u)
			}
			if h.Edge < 0 || h.Edge >= len(g.edges) {
				return fmt.Errorf("network: node %d references edge %d out of range", u, h.Edge)
			}
			e := g.edges[h.Edge]
			if e.Delay != h.Delay {
				return fmt.Errorf("network: half-edge delay %d != edge delay %d", h.Delay, e.Delay)
			}
			if !(e.U == u && e.V == h.Peer) && !(e.V == u && e.U == h.Peer) {
				return fmt.Errorf("network: half-edge (%d,%d) inconsistent with edge %v", u, h.Peer, e)
			}
			halves++
		}
	}
	if halves != 2*len(g.edges) {
		return fmt.Errorf("network: %d half-edges for %d edges", halves, len(g.edges))
	}
	for i, e := range g.edges {
		if e.Delay < 1 {
			return fmt.Errorf("network: edge %d has delay %d < 1", i, e.Delay)
		}
	}
	return nil
}

// String renders a short description such as
// "ring(64): 64 links, d_ave=3.25, d_max=17".
func (g *Network) String() string {
	s := g.Stats()
	return fmt.Sprintf("%s(%d): %d links, d_ave=%.2f, d_max=%d",
		g.Name(), g.n, s.Links, s.AvgDelay, s.MaxDelay)
}

// SortedNeighbors returns u's neighbors sorted by peer id (then delay).
// Useful for deterministic iteration in tests and schedulers.
func (g *Network) SortedNeighbors(u int) []Half {
	hs := append([]Half(nil), g.adj[u]...)
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Peer != hs[j].Peer {
			return hs[i].Peer < hs[j].Peer
		}
		return hs[i].Delay < hs[j].Delay
	})
	return hs
}
