package network

import (
	"math/rand"
	"testing"
)

// bruteDelays is a reference Bellman-Ford for cross-checking Dijkstra.
func bruteDelays(g *Network, src int) []int64 {
	n := g.NumNodes()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = InfDelay
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range g.Edges() {
			if dist[e.U] != InfDelay && dist[e.U]+int64(e.Delay) < dist[e.V] {
				dist[e.V] = dist[e.U] + int64(e.Delay)
				changed = true
			}
			if dist[e.V] != InfDelay && dist[e.V]+int64(e.Delay) < dist[e.U] {
				dist[e.U] = dist[e.V] + int64(e.Delay)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestShortestDelaysAgainstBellmanFord(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(40)
		g := New(n)
		// random connected-ish graph (may be disconnected: also tested)
		for i := 0; i < 2*n; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.MustAddLink(u, v, 1+r.Intn(20))
			}
		}
		src := r.Intn(n)
		got := g.ShortestDelays(src)
		want := bruteDelays(g, src)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: dist[%d]=%d want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestShortestDelaysLine(t *testing.T) {
	g := LineDelays([]int{2, 3, 5})
	d := g.ShortestDelays(0)
	want := []int64{0, 2, 5, 10}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist[%d]=%d want %d", i, d[i], want[i])
		}
	}
	if g.Delay(3, 1) != 8 {
		t.Fatalf("Delay(3,1)=%d", g.Delay(3, 1))
	}
}

func TestShortestDelaysUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddLink(0, 1, 1)
	d := g.ShortestDelays(0)
	if d[2] != InfDelay {
		t.Fatalf("unreachable dist=%d", d[2])
	}
	d = g.ShortestDelays(-1)
	for _, x := range d {
		if x != InfDelay {
			t.Fatal("invalid source should give all-inf")
		}
	}
}

func TestBFSOrder(t *testing.T) {
	g := LineDelays([]int{1, 1, 1, 1})
	order := g.BFSOrder(2)
	if order[0] != 2 {
		t.Fatalf("BFS must start at source: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("BFS visited %d of 5", len(order))
	}
	seen := map[int]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("duplicate %d in %v", v, order)
		}
		seen[v] = true
	}
}

func TestSpanningTree(t *testing.T) {
	g := Mesh2D(4, 4, UniformDelay{Lo: 1, Hi: 5}, 7)
	parent := g.SpanningTree(0)
	if parent[0] != -1 {
		t.Fatalf("root parent %d", parent[0])
	}
	// every node reaches the root
	for v := 0; v < g.NumNodes(); v++ {
		u, hops := v, 0
		for u != 0 {
			if parent[u] < 0 {
				t.Fatalf("node %d does not reach root (parent %d)", v, parent[u])
			}
			// tree edges must exist in the graph
			if g.LinkDelay(u, parent[u]) == 0 {
				t.Fatalf("tree edge (%d,%d) not in graph", u, parent[u])
			}
			u = parent[u]
			if hops++; hops > g.NumNodes() {
				t.Fatalf("cycle reaching root from %d", v)
			}
		}
	}
	// shortest-path-tree property: tree distance == Dijkstra distance
	dist := g.ShortestDelays(0)
	for v := 0; v < g.NumNodes(); v++ {
		var td int64
		for u := v; u != 0; u = parent[u] {
			td += int64(g.LinkDelay(u, parent[u]))
		}
		if td != dist[v] {
			t.Fatalf("node %d: tree delay %d != shortest %d", v, td, dist[v])
		}
	}
}

func TestSpanningTreeDisconnected(t *testing.T) {
	g := New(4)
	g.MustAddLink(0, 1, 1)
	parent := g.SpanningTree(0)
	if parent[2] != -2 || parent[3] != -2 {
		t.Fatalf("unreachable nodes should have parent -2: %v", parent)
	}
}

func TestTreeChildren(t *testing.T) {
	parent := []int{-1, 0, 0, 1}
	ch := TreeChildren(parent)
	if len(ch[0]) != 2 || ch[0][0] != 1 || ch[0][1] != 2 {
		t.Fatalf("children of 0: %v", ch[0])
	}
	if len(ch[1]) != 1 || ch[1][0] != 3 {
		t.Fatalf("children of 1: %v", ch[1])
	}
}

func TestDiameter(t *testing.T) {
	g := LineDelays([]int{1, 2, 3})
	if d := g.Diameter(); d != 6 {
		t.Fatalf("diameter %d want 6", d)
	}
}
