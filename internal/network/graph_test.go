package network

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndAddLink(t *testing.T) {
	g := New(4)
	if g.NumNodes() != 4 || g.NumLinks() != 0 {
		t.Fatalf("fresh network: nodes=%d links=%d", g.NumNodes(), g.NumLinks())
	}
	if err := g.AddLink(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 2 {
		t.Fatalf("links=%d", g.NumLinks())
	}
	if d := g.LinkDelay(0, 1); d != 3 {
		t.Fatalf("LinkDelay(0,1)=%d", d)
	}
	if d := g.LinkDelay(0, 2); d != 0 {
		t.Fatalf("LinkDelay(0,2)=%d, want 0 (absent)", d)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddLinkErrors(t *testing.T) {
	g := New(3)
	cases := []struct{ u, v, d int }{
		{-1, 0, 1}, {0, 3, 1}, {1, 1, 1}, {0, 1, 0}, {0, 1, -5},
	}
	for _, c := range cases {
		if err := g.AddLink(c.u, c.v, c.d); err == nil {
			t.Errorf("AddLink(%d,%d,%d): want error", c.u, c.v, c.d)
		}
	}
	if g.NumLinks() != 0 {
		t.Fatalf("failed links were recorded: %d", g.NumLinks())
	}
}

func TestMultiEdgeAllowed(t *testing.T) {
	g := New(2)
	g.MustAddLink(0, 1, 2)
	g.MustAddLink(0, 1, 7)
	if g.NumLinks() != 2 {
		t.Fatalf("links=%d", g.NumLinks())
	}
	if d := g.LinkDelay(0, 1); d != 2 {
		t.Fatalf("LinkDelay should pick min: %d", d)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStats(t *testing.T) {
	g := LineDelays([]int{1, 5, 2})
	s := g.Stats()
	if s.Nodes != 4 || s.Links != 3 {
		t.Fatalf("stats %+v", s)
	}
	if s.TotalDelay != 8 || s.MaxDelay != 5 || s.MinDelay != 1 {
		t.Fatalf("delay stats %+v", s)
	}
	if s.AvgDelay != 8.0/3.0 {
		t.Fatalf("avg %f", s.AvgDelay)
	}
	if s.MaxDegree != 2 || !s.Connected {
		t.Fatalf("structure stats %+v", s)
	}
}

func TestStatsCacheInvalidation(t *testing.T) {
	g := New(3)
	g.MustAddLink(0, 1, 1)
	if g.MaxDelay() != 1 {
		t.Fatal("initial max delay")
	}
	g.MustAddLink(1, 2, 9)
	if g.MaxDelay() != 9 {
		t.Fatal("stats cache not invalidated by AddLink")
	}
}

func TestConnectivity(t *testing.T) {
	g := New(4)
	g.MustAddLink(0, 1, 1)
	g.MustAddLink(2, 3, 1)
	if g.IsConnected() {
		t.Fatal("two components reported connected")
	}
	g.MustAddLink(1, 2, 1)
	if !g.IsConnected() {
		t.Fatal("connected graph reported disconnected")
	}
	if !New(0).IsConnected() || !New(1).IsConnected() {
		t.Fatal("trivial networks should be connected")
	}
	if New(2).IsConnected() {
		t.Fatal("two isolated nodes reported connected")
	}
}

func TestClone(t *testing.T) {
	g := Ring(8, ConstDelay(2), 1)
	c := g.Clone()
	c.MustAddLink(0, 4, 9)
	if g.NumLinks() == c.NumLinks() {
		t.Fatal("clone shares link storage with original")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStringAndName(t *testing.T) {
	g := New(2)
	if g.Name() != "network" {
		t.Fatalf("default name %q", g.Name())
	}
	g.SetName("test")
	g.MustAddLink(0, 1, 4)
	if !strings.Contains(g.String(), "test(2)") {
		t.Fatalf("String() = %q", g.String())
	}
}

func TestSortedNeighbors(t *testing.T) {
	g := New(4)
	g.MustAddLink(2, 0, 1)
	g.MustAddLink(2, 3, 1)
	g.MustAddLink(2, 1, 1)
	ns := g.SortedNeighbors(2)
	for i := 1; i < len(ns); i++ {
		if ns[i-1].Peer > ns[i].Peer {
			t.Fatalf("not sorted: %v", ns)
		}
	}
}

// Property: every generator produces a connected, valid network of the
// requested size with delays >= 1.
func TestGeneratorsProduceValidNetworks(t *testing.T) {
	cases := []struct {
		name string
		g    *Network
		n    int
	}{
		{"line", Line(17, UniformDelay{Lo: 1, Hi: 9}, 1), 17},
		{"ring", Ring(16, ExpDelay{Mean: 3}, 2), 16},
		{"mesh", Mesh2D(4, 5, ConstDelay(2), 3), 20},
		{"torus", Torus2D(4, 4, ConstDelay(1), 4), 16},
		{"hypercube", Hypercube(5, ParetoDelay{Alpha: 1.3, Scale: 2, Cap: 100}, 5), 32},
		{"btree", CompleteBinaryTree(4, BimodalDelay{Near: 1, Far: 10, P: 0.3}, 6), 31},
		{"randnow", RandomNOW(64, 4, Unit, 7), 64},
		{"ccc", CCC(4, Unit, 8), 64},
		{"h1", H1(64), 64},
		{"cliquechain", CliqueChain(4), 16},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.g.NumNodes() != c.n {
				t.Fatalf("nodes=%d want %d", c.g.NumNodes(), c.n)
			}
			if err := c.g.Validate(); err != nil {
				t.Fatal(err)
			}
			if !c.g.IsConnected() {
				t.Fatal("not connected")
			}
			for _, e := range c.g.Edges() {
				if e.Delay < 1 {
					t.Fatalf("edge %v has delay < 1", e)
				}
			}
		})
	}
}

func TestCCCDegreeExactlyThree(t *testing.T) {
	g := CCC(5, UniformDelay{Lo: 1, Hi: 4}, 3)
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(u) != 3 {
			t.Fatalf("node %d degree %d != 3", u, g.Degree(u))
		}
	}
	if g.NumNodes() != 32*5 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
	// dim < 3 is promoted to 3, still valid
	small := CCC(1, Unit, 1)
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RandomNOW(64, 4, ExpDelay{Mean: 5}, 42)
	b := RandomNOW(64, 4, ExpDelay{Mean: 5}, 42)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("different edge counts for same seed")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestRandomNOWDegreeBound(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := RandomNOW(100, 4, Unit, seed)
		if d := g.Stats().MaxDegree; d > 4 {
			t.Fatalf("seed %d: degree %d > 4", seed, d)
		}
		if !g.IsConnected() {
			t.Fatalf("seed %d: disconnected", seed)
		}
	}
}

func TestH1Structure(t *testing.T) {
	n := 256
	g := H1(n)
	s := ISqrt(n)
	slow := 0
	for i, e := range g.Edges() {
		want := 1
		if (i+1)%s == 0 {
			want = s
		}
		if e.Delay != want {
			t.Fatalf("link %d delay %d want %d", i, e.Delay, want)
		}
		if e.Delay == s {
			slow++
		}
	}
	if g.MaxDelay() != s {
		t.Fatalf("d_max=%d want %d", g.MaxDelay(), s)
	}
	if g.AvgDelay() >= 2 {
		t.Fatalf("d_ave=%f should be < 2", g.AvgDelay())
	}
	if slow != (n-1)/s {
		t.Fatalf("%d slow links, want %d", slow, (n-1)/s)
	}
}

func TestCliqueChainStructure(t *testing.T) {
	k := 6
	g := CliqueChain(k)
	n := k * k
	if g.NumNodes() != n {
		t.Fatalf("nodes=%d", g.NumNodes())
	}
	// average delay must be constant (paper: < 4)
	if g.AvgDelay() >= 4 {
		t.Fatalf("d_ave=%f >= 4", g.AvgDelay())
	}
	// degree is unbounded: clique members have degree ~k
	if g.Stats().MaxDegree < k-1 {
		t.Fatalf("degree %d < k-1", g.Stats().MaxDegree)
	}
	if g.MaxDelay() != n {
		t.Fatalf("d_max=%d want %d", g.MaxDelay(), n)
	}
}

// Property: delay sources always return >= 1.
func TestDelaySourcesPositive(t *testing.T) {
	srcs := []DelaySource{
		ConstDelay(0), ConstDelay(-3), ConstDelay(5),
		UniformDelay{Lo: -2, Hi: 1}, UniformDelay{Lo: 5, Hi: 2},
		ParetoDelay{}, ParetoDelay{Alpha: 0.8, Scale: 3, Cap: 50},
		BimodalDelay{Near: 0, Far: -1, P: 0.5},
		ExpDelay{Mean: 0.1}, ExpDelay{Mean: 20},
	}
	r := rand.New(rand.NewSource(9))
	for _, s := range srcs {
		for i := 0; i < 500; i++ {
			if d := s.Delay(r); d < 1 {
				t.Fatalf("%s returned %d", s, d)
			}
		}
	}
	capped := ParetoDelay{Alpha: 1, Scale: 1, Cap: 7}
	for i := 0; i < 200; i++ {
		if capped.Delay(r) > 7 {
			t.Fatal("cap not enforced")
		}
	}
}

func TestLogHelpers(t *testing.T) {
	cases := []struct{ n, ceil, floor int }{
		{1, 0, 0}, {2, 1, 1}, {3, 2, 1}, {4, 2, 2}, {5, 3, 2},
		{8, 3, 3}, {9, 4, 3}, {1024, 10, 10}, {1025, 11, 10},
	}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.ceil {
			t.Errorf("Log2Ceil(%d)=%d want %d", c.n, got, c.ceil)
		}
		if got := Log2Floor(c.n); got != c.floor {
			t.Errorf("Log2Floor(%d)=%d want %d", c.n, got, c.floor)
		}
	}
	if Log2Ceil(0) != 0 || Log2Ceil(-4) != 0 {
		t.Error("Log2Ceil of non-positive should be 0")
	}
}

func TestISqrtProperty(t *testing.T) {
	f := func(x uint16) bool {
		n := int(x)
		s := ISqrt(n)
		return s*s <= n && (s+1)*(s+1) > n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLineDelaysMapping(t *testing.T) {
	d := []int{4, 1, 7, 2}
	g := LineDelays(d)
	if g.NumNodes() != 5 {
		t.Fatalf("nodes=%d", g.NumNodes())
	}
	for i, want := range d {
		if got := g.LinkDelay(i, i+1); got != want {
			t.Fatalf("link %d delay %d want %d", i, got, want)
		}
	}
}
