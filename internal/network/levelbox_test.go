package network

import "testing"

func TestH2Basics(t *testing.T) {
	for _, n := range []int{64, 256, 1024, 4096} {
		spec := H2(n)
		g := spec.Net
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !g.IsConnected() {
			t.Fatalf("n=%d: disconnected", n)
		}
		// Theta(n) processors: within [n/8, 2n].
		if p := g.NumNodes(); p < n/8 || p > 2*n {
			t.Fatalf("n=%d: %d processors not Theta(n)", n, p)
		}
		// constant average delay (paper: O(1)); generous bound 8
		if g.AvgDelay() > 8 {
			t.Fatalf("n=%d: d_ave=%f not constant-ish", n, g.AvgDelay())
		}
		// delays are only 1 or d
		for _, e := range g.Edges() {
			if e.Delay != 1 && e.Delay != spec.D {
				t.Fatalf("n=%d: delay %d not in {1, %d}", n, e.Delay, spec.D)
			}
		}
		// a level-k box has 2^k level-0 (delay-d) edges
		dEdges := 0
		for _, e := range g.Edges() {
			if e.Delay == spec.D {
				dEdges++
			}
		}
		if dEdges != 1<<uint(spec.K) {
			t.Fatalf("n=%d: %d delay-d edges, want 2^%d", n, dEdges, spec.K)
		}
	}
}

func TestH2SegmentAnnotation(t *testing.T) {
	spec := H2(1024)
	// Segment ids must be dense, sizes must match, and each segment must
	// be one contiguous run.
	counts := make([]int, spec.NumSegments())
	lastSeen := make([]int, spec.NumSegments())
	for i := range lastSeen {
		lastSeen[i] = -2
	}
	for p, s := range spec.Segment {
		if s == -1 {
			continue
		}
		if s < 0 || s >= spec.NumSegments() {
			t.Fatalf("segment id %d out of range", s)
		}
		if counts[s] > 0 && lastSeen[s] != p-1 {
			t.Fatalf("segment %d is not contiguous (at %d after %d)", s, p, lastSeen[s])
		}
		counts[s]++
		lastSeen[s] = p
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("segment %d has no members", s)
		}
		if c != spec.SegSize[s] {
			t.Fatalf("segment %d size %d != recorded %d", s, c, spec.SegSize[s])
		}
		if got := spec.SegmentMembers(s); len(got) != c {
			t.Fatalf("SegmentMembers(%d) has %d members, want %d", s, len(got), c)
		}
	}
	// segment sizes are max(1, 2^l d / log n)
	logn := Log2Ceil(spec.N)
	for s := range counts {
		l := spec.SegLevel[s]
		want := (1 << uint(l)) * spec.D / logn
		if want < 1 {
			want = 1
		}
		if spec.SegSize[s] != want {
			t.Fatalf("segment %d (level %d) size %d want %d", s, l, spec.SegSize[s], want)
		}
	}
	// number of segments at level l is 2^(k-l)
	perLevel := make(map[int]int)
	for _, l := range spec.SegLevel {
		perLevel[l]++
	}
	for l := 1; l <= spec.K; l++ {
		if perLevel[l] != 1<<uint(spec.K-l) {
			t.Fatalf("level %d has %d segments, want %d", l, perLevel[l], 1<<uint(spec.K-l))
		}
	}
}

// TestH2Fact4 certifies Fact 4 with real shortest-path distances: the delay
// between processors of two distinct segments is at least
// min(u,v) * log n / 2.
func TestH2Fact4(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		spec := H2(n)
		g := spec.Net
		// For each segment pick a representative from each end plus the
		// middle; check against all other segments' representatives.
		reps := make([][]int, spec.NumSegments())
		for s := 0; s < spec.NumSegments(); s++ {
			m := spec.SegmentMembers(s)
			reps[s] = []int{m[0], m[len(m)/2], m[len(m)-1]}
		}
		for a := 0; a < spec.NumSegments(); a++ {
			for _, p := range reps[a] {
				dist := g.ShortestDelays(p)
				for b := 0; b < spec.NumSegments(); b++ {
					if a == b {
						continue
					}
					bound := int64(spec.Fact4Bound(a, b))
					for _, q := range reps[b] {
						if dist[q] < bound {
							t.Fatalf("n=%d: delay(%d in seg %d, %d in seg %d) = %d < Fact4 bound %d",
								n, p, a, q, b, dist[q], bound)
						}
					}
				}
			}
		}
		// "In particular, the delay between p and q is at least d":
		// check the minimum cross-segment distance is >= D.
	}
}

func TestH2CrossSegmentMinimumIsD(t *testing.T) {
	spec := H2(256)
	g := spec.Net
	min := int64(1 << 60)
	for p := 0; p < g.NumNodes(); p++ {
		if spec.SegmentOf(p) < 0 {
			continue
		}
		dist := g.ShortestDelays(p)
		for q := 0; q < g.NumNodes(); q++ {
			sq := spec.SegmentOf(q)
			if sq < 0 || sq == spec.SegmentOf(p) {
				continue
			}
			if dist[q] < min {
				min = dist[q]
			}
		}
	}
	if min < int64(spec.D) {
		t.Fatalf("min cross-segment delay %d < d=%d", min, spec.D)
	}
}

func TestH2Fact4BoundPanics(t *testing.T) {
	spec := H2(64)
	defer func() {
		if recover() == nil {
			t.Fatal("Fact4Bound(a,a) should panic")
		}
	}()
	spec.Fact4Bound(0, 0)
}

func TestH2TinyInput(t *testing.T) {
	spec := H2(1) // clamped to 16
	if spec.N != 16 {
		t.Fatalf("tiny n not clamped: %d", spec.N)
	}
	if err := spec.Net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestH2SegmentLevelsSumToTheta(t *testing.T) {
	// the construction's processor count decomposes into segment members
	// plus 2^(k+1) level-0 endpoints
	spec := H2(4096)
	segTotal := 0
	for _, s := range spec.SegSize {
		segTotal += s
	}
	endpoints := 0
	for _, id := range spec.Segment {
		if id == -1 {
			endpoints++
		}
	}
	if segTotal+endpoints != spec.Net.NumNodes() {
		t.Fatalf("%d + %d != %d", segTotal, endpoints, spec.Net.NumNodes())
	}
	if endpoints != 2<<uint(spec.K) {
		t.Fatalf("endpoints %d want 2^(k+1)=%d", endpoints, 2<<uint(spec.K))
	}
}
