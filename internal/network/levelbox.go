package network

import "fmt"

// H2Spec describes the recursive level-box host of Theorem 10 (Figure 5).
//
// The extended abstract defines H2 recursively: a level-0 box is a single
// edge of delay d; a level-l box consists of two level-(l-1) boxes connected
// by 2^l*d/log n edges of delay 1 whose processors form a "segment". We
// realise the construction as a linear array (the delay word below), which
// preserves every property the lower-bound proof uses and lets the same
// simulation machinery run on it:
//
//	W_0 = [d]
//	W_l = W_{l-1} ++ 1^(s_l+1) ++ W_{l-1},   s_l = max(1, 2^l*d/ceil(log2 n))
//
// A level-l segment is a run of s_l processors between two sub-boxes. Any
// path leaving a segment immediately crosses the delay-d edge of the adjacent
// level-0 box, and reaching a level-l' segment crosses a whole
// W_(min(l,l')-1) block, so the Fact 4 delay bound
//
//	delay(p, q) >= min(u, v) * log n / 2     (u, v segment sizes)
//
// holds; tests certify it with Dijkstra.
type H2Spec struct {
	N int // the parameter n; d = sqrt(n), k = log2(n/d) levels
	D int // the big delay d = floor(sqrt(n))
	K int // number of levels
	// Segment[i] is the segment id of processor i, or -1 for level-0 box
	// endpoints. Segment ids are dense in [0, NumSegments()) and each
	// physical segment (run of connector processors) has its own id.
	Segment []int
	// SegLevel[s] and SegSize[s] give the level and processor count of
	// segment s.
	SegLevel []int
	SegSize  []int
	// Net is the realised network (a linear array).
	Net *Network
}

// H2 builds the Theorem 10 host for parameter n. The realised network has
// Theta(n) processors, constant average delay, and link delays in {1, d}.
func H2(n int) *H2Spec {
	if n < 16 {
		n = 16
	}
	d := ISqrt(n)
	logn := Log2Ceil(n)
	if logn < 1 {
		logn = 1
	}
	k := Log2Floor(n/d + 1)
	if k < 1 {
		k = 1
	}
	spec := &H2Spec{N: n, D: d, K: k}

	// Build the delay word bottom-up. levels[i] is the segment level of
	// node i, or 0 for level-0 box endpoints (segments have level >= 1).
	delays := []int{d}
	levels := []int{0, 0}
	for l := 1; l <= k; l++ {
		s := (1 << uint(l)) * d / logn
		if s < 1 {
			s = 1
		}
		nd := make([]int, 0, 2*len(delays)+s+1)
		nl := make([]int, 0, 2*len(levels)+s)
		nd = append(nd, delays...)
		nl = append(nl, levels...)
		for i := 0; i < s; i++ {
			nd = append(nd, 1)
			nl = append(nl, l)
		}
		nd = append(nd, 1)
		nd = append(nd, delays...)
		nl = append(nl, levels...)
		delays, levels = nd, nl
	}

	// Assign a fresh segment id to each maximal run of connector nodes.
	// Runs of distinct physical segments never touch, because every
	// sub-word begins and ends with a level-0 box endpoint.
	spec.Segment = make([]int, len(levels))
	for i, l := range levels {
		if l == 0 {
			spec.Segment[i] = -1
			continue
		}
		if i > 0 && levels[i-1] != 0 {
			spec.Segment[i] = spec.Segment[i-1]
			spec.SegSize[spec.Segment[i]]++
			continue
		}
		spec.Segment[i] = len(spec.SegLevel)
		spec.SegLevel = append(spec.SegLevel, l)
		spec.SegSize = append(spec.SegSize, 1)
	}

	spec.Net = LineDelays(delays)
	spec.Net.SetName(fmt.Sprintf("H2(n=%d,d=%d,k=%d)", n, d, k))
	return spec
}

// NumSegments reports the number of segments in the construction.
func (s *H2Spec) NumSegments() int { return len(s.SegLevel) }

// SegmentOf reports the segment containing processor p, or -1 if p is a
// level-0 box endpoint.
func (s *H2Spec) SegmentOf(p int) int { return s.Segment[p] }

// Fact4Bound returns the Fact 4 lower bound on the delay between processors
// of two distinct segments a and b: min(u, v) * log n / 2, where u and v are
// the segment sizes. It panics if a == b or either id is out of range.
func (s *H2Spec) Fact4Bound(a, b int) int {
	if a == b {
		panic("levelbox: Fact4Bound of a segment with itself")
	}
	u, v := s.SegSize[a], s.SegSize[b]
	m := u
	if v < m {
		m = v
	}
	logn := Log2Ceil(s.N)
	return m * logn / 2
}

// SegmentMembers returns the processor ids in segment id, in array order.
func (s *H2Spec) SegmentMembers(id int) []int {
	var out []int
	for p, sid := range s.Segment {
		if sid == id {
			out = append(out, p)
		}
	}
	return out
}
