package network

import (
	"fmt"
	"math/rand"
)

// Line returns a linear array of n workstations: links (i, i+1) for
// 0 <= i < n-1, with delays drawn from src using the given seed.
func Line(n int, src DelaySource, seed int64) *Network {
	g := New(n)
	g.SetName(fmt.Sprintf("line[%s]", src))
	r := rand.New(rand.NewSource(seed))
	for i := 0; i+1 < n; i++ {
		g.MustAddLink(i, i+1, src.Delay(r))
	}
	return g
}

// LineDelays returns a linear array whose i-th link (i, i+1) has delay
// delays[i]. len(delays) must be n-1 for an n-node array.
func LineDelays(delays []int) *Network {
	g := New(len(delays) + 1)
	g.SetName("line[explicit]")
	for i, d := range delays {
		g.MustAddLink(i, i+1, d)
	}
	return g
}

// Ring returns an n-node ring with delays drawn from src.
func Ring(n int, src DelaySource, seed int64) *Network {
	g := New(n)
	g.SetName(fmt.Sprintf("ring[%s]", src))
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		g.MustAddLink(i, (i+1)%n, src.Delay(r))
	}
	return g
}

// Mesh2D returns an rows x cols 2-dimensional array (grid, no wraparound).
// Node (r, c) has index r*cols + c.
func Mesh2D(rows, cols int, src DelaySource, seed int64) *Network {
	g := New(rows * cols)
	g.SetName(fmt.Sprintf("mesh%dx%d[%s]", rows, cols, src))
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := r*cols + c
			if c+1 < cols {
				g.MustAddLink(u, u+1, src.Delay(rng))
			}
			if r+1 < rows {
				g.MustAddLink(u, u+cols, src.Delay(rng))
			}
		}
	}
	return g
}

// Torus2D returns an rows x cols torus (grid with wraparound links).
func Torus2D(rows, cols int, src DelaySource, seed int64) *Network {
	g := New(rows * cols)
	g.SetName(fmt.Sprintf("torus%dx%d[%s]", rows, cols, src))
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			u := r*cols + c
			if cols > 1 {
				g.MustAddLink(u, r*cols+(c+1)%cols, src.Delay(rng))
			}
			if rows > 1 {
				g.MustAddLink(u, ((r+1)%rows)*cols+c, src.Delay(rng))
			}
		}
	}
	return g
}

// Hypercube returns a 2^dim-node hypercube; nodes differ in one bit per link.
func Hypercube(dim int, src DelaySource, seed int64) *Network {
	n := 1 << uint(dim)
	g := New(n)
	g.SetName(fmt.Sprintf("hypercube%d[%s]", dim, src))
	rng := rand.New(rand.NewSource(seed))
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << uint(b))
			if u < v {
				g.MustAddLink(u, v, src.Delay(rng))
			}
		}
	}
	return g
}

// CompleteBinaryTree returns a complete binary tree with 2^(h+1)-1 nodes
// (height h). Node 0 is the root; node i has children 2i+1 and 2i+2.
func CompleteBinaryTree(h int, src DelaySource, seed int64) *Network {
	n := (1 << uint(h+1)) - 1
	g := New(n)
	g.SetName(fmt.Sprintf("btree%d[%s]", h, src))
	rng := rand.New(rand.NewSource(seed))
	for i := 1; i < n; i++ {
		g.MustAddLink((i-1)/2, i, src.Delay(rng))
	}
	return g
}

// RandomNOW returns a connected random network of n workstations with
// degree at most maxDeg (>= 2): a random spanning tree plus extra random
// links, with delays drawn from src. This models an unstructured NOW.
func RandomNOW(n, maxDeg int, src DelaySource, seed int64) *Network {
	if maxDeg < 2 {
		maxDeg = 2
	}
	g := New(n)
	g.SetName(fmt.Sprintf("randnow(deg<=%d)[%s]", maxDeg, src))
	r := rand.New(rand.NewSource(seed))
	if n == 0 {
		return g
	}
	// Random spanning tree: attach each node i >= 1 to a uniformly random
	// earlier node with spare degree.
	perm := r.Perm(n)
	deg := make([]int, n)
	for i := 1; i < n; i++ {
		u := perm[i]
		// pick an earlier node with spare degree; fall back to a chain
		// if the sampled candidates are saturated.
		var v int
		ok := false
		for try := 0; try < 32; try++ {
			v = perm[r.Intn(i)]
			if deg[v] < maxDeg-1 { // keep one slot spare for extras
				ok = true
				break
			}
		}
		if !ok {
			v = perm[i-1]
		}
		g.MustAddLink(u, v, src.Delay(r))
		deg[u]++
		deg[v]++
	}
	// Extra links: up to n/2 attempts, respecting the degree bound.
	for t := 0; t < n/2; t++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v || deg[u] >= maxDeg || deg[v] >= maxDeg {
			continue
		}
		g.MustAddLink(u, v, src.Delay(r))
		deg[u]++
		deg[v]++
	}
	return g
}

// CCC returns the cube-connected-cycles network of dimension dim: each
// hypercube corner becomes a cycle of dim nodes, so every workstation has
// degree exactly 3 — the canonical constant-degree stand-in for a hypercube
// and a natural NOW topology for Theorem 6. Node (corner, pos) has index
// corner*dim + pos.
func CCC(dim int, src DelaySource, seed int64) *Network {
	if dim < 3 {
		// dim < 3 degenerates (multi-edges in the cycle); promote
		dim = 3
	}
	n := (1 << uint(dim)) * dim
	g := New(n)
	g.SetName(fmt.Sprintf("ccc%d[%s]", dim, src))
	rng := rand.New(rand.NewSource(seed))
	id := func(corner, pos int) int { return corner*dim + pos }
	for corner := 0; corner < 1<<uint(dim); corner++ {
		for pos := 0; pos < dim; pos++ {
			// cycle link
			g.MustAddLink(id(corner, pos), id(corner, (pos+1)%dim), src.Delay(rng))
			// hypercube link along dimension pos (added once)
			other := corner ^ (1 << uint(pos))
			if corner < other {
				g.MustAddLink(id(corner, pos), id(other, pos), src.Delay(rng))
			}
		}
	}
	return g
}

// H1 returns the Theorem 9 host: an n-processor linear array in which every
// sqrt(n)-th link has delay sqrt(n) and all other links have unit delay.
// d_ave is constant (< 2) while d_max = sqrt(n).
func H1(n int) *Network {
	s := ISqrt(n)
	if s < 1 {
		s = 1
	}
	g := New(n)
	g.SetName(fmt.Sprintf("H1(n=%d,sqrt=%d)", n, s))
	for i := 0; i+1 < n; i++ {
		d := 1
		if (i+1)%s == 0 {
			d = s
		}
		g.MustAddLink(i, i+1, d)
	}
	return g
}

// CliqueChain returns the Section 4 counterexample: a linear array of k
// cliques, each of k nodes. Clique edges have delay 1; each pair of adjacent
// cliques is connected by a single edge of delay n = k*k. The network has
// constant average delay but unbounded degree, and no simulation can beat
// slowdown n^(1/4).
func CliqueChain(k int) *Network {
	n := k * k
	g := New(n)
	g.SetName(fmt.Sprintf("cliquechain(k=%d)", k))
	for c := 0; c < k; c++ {
		base := c * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.MustAddLink(base+i, base+j, 1)
			}
		}
		if c+1 < k {
			// connect last node of clique c to first node of clique c+1
			g.MustAddLink(base+k-1, base+k, n)
		}
	}
	return g
}
