package network

import (
	"container/heap"
	"math"
)

// InfDelay is the distance reported by ShortestDelays for unreachable nodes.
const InfDelay = math.MaxInt64

// ShortestDelays runs Dijkstra from src and returns, for every node, the
// minimum total link delay of any path from src. Unreachable nodes report
// InfDelay.
func (g *Network) ShortestDelays(src int) []int64 {
	dist := make([]int64, g.n)
	for i := range dist {
		dist[i] = InfDelay
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	pq := &delayHeap{{node: src, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(delayItem)
		if it.d > dist[it.node] {
			continue
		}
		for _, h := range g.adj[it.node] {
			nd := it.d + int64(h.Delay)
			if nd < dist[h.Peer] {
				dist[h.Peer] = nd
				heap.Push(pq, delayItem{node: h.Peer, d: nd})
			}
		}
	}
	return dist
}

// Delay returns the minimum total delay between u and v, or InfDelay if v is
// unreachable from u.
func (g *Network) Delay(u, v int) int64 {
	return g.ShortestDelays(u)[v]
}

type delayItem struct {
	node int
	d    int64
}

type delayHeap []delayItem

func (h delayHeap) Len() int            { return len(h) }
func (h delayHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h delayHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x interface{}) { *h = append(*h, x.(delayItem)) }
func (h *delayHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// BFSOrder returns the nodes reachable from src in breadth-first order
// (hop-count order, ignoring delays).
func (g *Network) BFSOrder(src int) []int {
	seen := make([]bool, g.n)
	order := make([]int, 0, g.n)
	queue := []int{src}
	seen[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, h := range g.adj[u] {
			if !seen[h.Peer] {
				seen[h.Peer] = true
				queue = append(queue, h.Peer)
			}
		}
	}
	return order
}

// SpanningTree returns a spanning tree of the connected component of root as
// a parent array: parent[root] = -1, and parent[u] = -2 for nodes outside the
// component. It prefers low-delay links (it is a shortest-delay-path tree).
func (g *Network) SpanningTree(root int) []int {
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = -2
	}
	dist := make([]int64, g.n)
	for i := range dist {
		dist[i] = InfDelay
	}
	parent[root] = -1
	dist[root] = 0
	pq := &delayHeap{{node: root, d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(delayItem)
		if it.d > dist[it.node] {
			continue
		}
		for _, h := range g.adj[it.node] {
			nd := it.d + int64(h.Delay)
			if nd < dist[h.Peer] {
				dist[h.Peer] = nd
				parent[h.Peer] = it.node
				heap.Push(pq, delayItem{node: h.Peer, d: nd})
			}
		}
	}
	return parent
}

// TreeChildren converts a parent array (as returned by SpanningTree) into a
// children adjacency list, with each child list sorted ascending.
func TreeChildren(parent []int) [][]int {
	children := make([][]int, len(parent))
	for u, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], u)
		}
	}
	return children
}

// Diameter returns the maximum over nodes u of the maximum finite shortest
// delay from u. It is O(n * (m log n)) and intended for modest test sizes.
func (g *Network) Diameter() int64 {
	var best int64
	for u := 0; u < g.n; u++ {
		for _, d := range g.ShortestDelays(u) {
			if d != InfDelay && d > best {
				best = d
			}
		}
	}
	return best
}
