package network

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	hosts := []*Network{
		Line(12, UniformDelay{Lo: 1, Hi: 9}, 1),
		RandomNOW(30, 4, ExpDelay{Mean: 3}, 2),
		H1(25),
		New(3), // no links
	}
	for _, g := range hosts {
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if back.NumNodes() != g.NumNodes() || back.NumLinks() != g.NumLinks() {
			t.Fatalf("%s: size mismatch", g.Name())
		}
		if g.NumLinks() > 0 && back.Name() != g.Name() {
			t.Fatalf("name %q != %q", back.Name(), g.Name())
		}
		ea, eb := g.Edges(), back.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: edge %d differs", g.Name(), i)
			}
		}
		if err := back.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"nodes": -1, "links": []}`,
		`{"nodes": 2, "links": [[0, 5, 1]]}`,
		`{"nodes": 2, "links": [[0, 1, 0]]}`,
		`{"nodes": 2, "links": [[0, 0, 1]]}`,
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("decoded invalid input %q", c)
		}
	}
}

func TestJSONShape(t *testing.T) {
	g := New(2)
	g.SetName("tiny")
	g.MustAddLink(0, 1, 7)
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"name":"tiny","nodes":2,"links":[[0,1,7]]}`
	if string(b) != want {
		t.Fatalf("json %s want %s", b, want)
	}
}
