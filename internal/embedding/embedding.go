// Package embedding implements Fact 3 of the paper: an n-node linear array
// can be one-to-one embedded with dilation 3 in any connected n-node network
// (Leighton 1992, p.470). This is the bridge from the linear-array results
// of Section 3 to arbitrary bounded-degree NOWs (Section 4): the simulation
// engine always runs on a line, whose links are realised as short paths in
// the host.
//
// The construction is Sekanina's: the cube of a spanning tree contains a
// Hamiltonian path. Concretely, with F(v) = [v] ++ reverse(F(c1)) ++ ... ++
// reverse(F(ck)) over v's children, consecutive nodes of F(root) are at tree
// distance at most 3, and F ends at a child of the start — the recursion
// preserves both invariants. If the host has maximum degree delta, each tree
// edge appears in O(delta) of the realised line links, so the embedded
// line's average delay is at most O(delta * d_ave), which is what Theorem 6
// needs.
package embedding

import (
	"fmt"

	"latencyhide/internal/network"
)

// Line is a one-to-one embedding of a linear array into a host network.
type Line struct {
	// Order[i] is the host node at line position i; a permutation of the
	// host's nodes.
	Order []int
	// PosOf[v] is the line position of host node v (inverse of Order).
	PosOf []int
	// Delays[i] is the realised delay of line link (i, i+1): the delay of
	// the host path used between Order[i] and Order[i+1].
	Delays []int
	// Dilation is the maximum number of host tree edges any line link
	// uses; the construction guarantees <= 3.
	Dilation int
	// Parent is the spanning tree used (parent[root] = -1).
	Parent []int
}

// Embed builds the dilation-3 line embedding of the host network, rooted at
// the given node. The host must be connected.
func Embed(g *network.Network, root int) (*Line, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("embedding: empty network")
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("embedding: root %d out of range", root)
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("embedding: network is not connected")
	}
	parent := g.SpanningTree(root)
	children := network.TreeChildren(parent)

	// Build F(root) iteratively. Frames carry a "reversed" flag: the
	// reversal of F(v) = rev(F(ck)) ++ ... ++ rev(F(c1)) ++ [v], and
	// rev(rev(F)) = F, so children alternate orientation down the stack.
	order := make([]int, 0, n)
	type frame struct {
		v        int
		reversed bool
		stage    int // next child index to expand (children visited in order)
	}
	stack := []frame{{v: root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		cs := children[f.v]
		if !f.reversed {
			// F(v): emit v first, then rev(F(c1)), rev(F(c2)), ...
			if f.stage == 0 {
				order = append(order, f.v)
			}
			if f.stage < len(cs) {
				c := cs[f.stage]
				f.stage++
				stack = append(stack, frame{v: c, reversed: true})
			} else {
				stack = stack[:len(stack)-1]
			}
		} else {
			// rev(F(v)): emit rev(F(ck)), ..., rev(F(c1))? No:
			// rev(F(v)) = rev([v] ++ rev(F(c1)) ++ ... ++ rev(F(ck)))
			//           = F(ck) ++ F(c(k-1)) ++ ... ++ F(c1) ++ [v].
			if f.stage < len(cs) {
				c := cs[len(cs)-1-f.stage]
				f.stage++
				stack = append(stack, frame{v: c, reversed: false})
			} else {
				order = append(order, f.v)
				stack = stack[:len(stack)-1]
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("embedding: walk visited %d of %d nodes", len(order), n)
	}

	l := &Line{Order: order, PosOf: make([]int, n), Parent: parent}
	for i, v := range order {
		l.PosOf[v] = i
	}
	// Realise each line link as the tree path between consecutive nodes
	// (at most 3 tree edges), improved by a direct host link if shorter.
	depth := make([]int, n)
	{
		queue := []int{root}
		seen := make([]bool, n)
		seen[root] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, c := range children[v] {
				if !seen[c] {
					seen[c] = true
					depth[c] = depth[v] + 1
					queue = append(queue, c)
				}
			}
		}
	}
	edgeDelay := func(child int) int {
		// delay of tree edge (child, parent[child])
		return g.LinkDelay(child, parent[child])
	}
	l.Delays = make([]int, n-1)
	for i := 0; i+1 < n; i++ {
		u, v := order[i], order[i+1]
		hops, delay := treePath(u, v, parent, depth, edgeDelay)
		if hops > l.Dilation {
			l.Dilation = hops
		}
		if d := g.LinkDelay(u, v); d > 0 && d < delay {
			delay = d
		}
		if delay < 1 {
			delay = 1
		}
		l.Delays[i] = delay
	}
	return l, nil
}

// treePath climbs u and v to their lowest common ancestor and returns the
// number of tree edges and their total delay.
func treePath(u, v int, parent, depth []int, edgeDelay func(child int) int) (hops, delay int) {
	for depth[u] > depth[v] {
		delay += edgeDelay(u)
		u = parent[u]
		hops++
	}
	for depth[v] > depth[u] {
		delay += edgeDelay(v)
		v = parent[v]
		hops++
	}
	for u != v {
		delay += edgeDelay(u) + edgeDelay(v)
		u, v = parent[u], parent[v]
		hops += 2
	}
	return hops, delay
}

// Stats summarises embedding quality.
type Stats struct {
	Nodes        int
	Dilation     int
	LineAvgDelay float64
	LineMaxDelay int
	HostAvgDelay float64
	// Inflation is LineAvgDelay / HostAvgDelay; Fact 3 bounds it by
	// O(max degree).
	Inflation float64
}

// Stats computes quality metrics of the embedding against its host.
func (l *Line) Stats(g *network.Network) Stats {
	s := Stats{Nodes: len(l.Order), Dilation: l.Dilation, HostAvgDelay: g.AvgDelay()}
	var total int64
	for _, d := range l.Delays {
		total += int64(d)
		if d > s.LineMaxDelay {
			s.LineMaxDelay = d
		}
	}
	if len(l.Delays) > 0 {
		s.LineAvgDelay = float64(total) / float64(len(l.Delays))
	}
	if s.HostAvgDelay > 0 {
		s.Inflation = s.LineAvgDelay / s.HostAvgDelay
	}
	return s
}

// EmbedBest tries a few natural roots (node 0 and the endpoints of a
// double-BFS "diameter" walk) and returns the embedding with the smallest
// realised average line delay. Fact 3's dilation-3 guarantee holds for any
// root; the constant in front of the slowdown does not, and a peripheral
// root often shaves 10-30% off the line's average delay.
func EmbedBest(g *network.Network) (*Line, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("embedding: empty network")
	}
	far := func(src int) int {
		order := g.BFSOrder(src)
		return order[len(order)-1]
	}
	cands := map[int]bool{0: true}
	a := far(0)
	cands[a] = true
	cands[far(a)] = true
	var best *Line
	var bestAvg float64
	for root := range cands {
		l, err := Embed(g, root)
		if err != nil {
			return nil, err
		}
		avg := l.Stats(g).LineAvgDelay
		if best == nil || avg < bestAvg {
			best, bestAvg = l, avg
		}
	}
	return best, nil
}

// Identity returns the trivial embedding of a host that already is a linear
// array with the given link delays.
func Identity(delays []int) *Line {
	n := len(delays) + 1
	l := &Line{Order: make([]int, n), PosOf: make([]int, n), Delays: append([]int(nil), delays...), Dilation: 1, Parent: make([]int, n)}
	for i := 0; i < n; i++ {
		l.Order[i] = i
		l.PosOf[i] = i
		l.Parent[i] = i - 1
	}
	if n > 0 {
		l.Parent[0] = -1
	}
	return l
}
