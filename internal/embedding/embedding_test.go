package embedding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"latencyhide/internal/network"
)

func checkEmbedding(t *testing.T, g *network.Network, l *Line) {
	t.Helper()
	n := g.NumNodes()
	if len(l.Order) != n || len(l.PosOf) != n || len(l.Delays) != n-1 {
		t.Fatalf("sizes: order=%d pos=%d delays=%d n=%d", len(l.Order), len(l.PosOf), len(l.Delays), n)
	}
	// permutation + inverse
	seen := make([]bool, n)
	for i, v := range l.Order {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("order is not a permutation at %d: %v", i, v)
		}
		seen[v] = true
		if l.PosOf[v] != i {
			t.Fatalf("PosOf inverse broken at %d", v)
		}
	}
	// Fact 3: dilation at most 3
	if l.Dilation > 3 {
		t.Fatalf("dilation %d > 3", l.Dilation)
	}
	// realised delays at least the shortest-path delay? They are path
	// delays, so >= shortest and >= 1.
	for i, d := range l.Delays {
		if d < 1 {
			t.Fatalf("link %d delay %d", i, d)
		}
		sp := g.Delay(l.Order[i], l.Order[i+1])
		if int64(d) < sp {
			t.Fatalf("link %d delay %d below shortest path %d", i, d, sp)
		}
	}
}

func TestEmbedTopologies(t *testing.T) {
	src := network.UniformDelay{Lo: 1, Hi: 9}
	hosts := []*network.Network{
		network.Line(33, src, 1),
		network.Ring(32, src, 2),
		network.Mesh2D(7, 9, src, 3),
		network.Torus2D(6, 6, src, 4),
		network.Hypercube(6, src, 5),
		network.CompleteBinaryTree(5, src, 6),
		network.RandomNOW(100, 4, src, 7),
		network.CliqueChain(5),
		network.H1(100),
		network.H2(256).Net,
	}
	for _, g := range hosts {
		l, err := Embed(g, 0)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		checkEmbedding(t, g, l)
	}
}

func TestEmbedErrors(t *testing.T) {
	if _, err := Embed(network.New(0), 0); err == nil {
		t.Fatal("empty network accepted")
	}
	g := network.New(3)
	g.MustAddLink(0, 1, 1)
	if _, err := Embed(g, 0); err == nil {
		t.Fatal("disconnected network accepted")
	}
	g2 := network.Line(4, network.Unit, 1)
	if _, err := Embed(g2, 9); err == nil {
		t.Fatal("bad root accepted")
	}
}

func TestEmbedSingleNode(t *testing.T) {
	l, err := Embed(network.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Order) != 1 || len(l.Delays) != 0 {
		t.Fatal("singleton embedding")
	}
}

func TestEmbedLinePreservesOrderCost(t *testing.T) {
	// Embedding a line should produce total delay within a constant of
	// the original (walk revisits each region O(1) times).
	delays := []int{5, 1, 9, 2, 2, 7, 1}
	g := network.LineDelays(delays)
	l, err := Embed(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var orig, emb int64
	for _, d := range delays {
		orig += int64(d)
	}
	for _, d := range l.Delays {
		emb += int64(d)
	}
	if emb > 3*orig {
		t.Fatalf("embedded line total %d > 3x original %d", emb, orig)
	}
}

// Fact 3 corollary used by Theorem 6: if the host has max degree delta, the
// embedded line's average delay is O(delta) times the host's.
func TestInflationBoundedByDegree(t *testing.T) {
	src := network.ExpDelay{Mean: 4}
	cases := []*network.Network{
		network.Mesh2D(10, 10, src, 1),
		network.Hypercube(7, src, 2),
		network.RandomNOW(150, 5, src, 3),
		network.CompleteBinaryTree(6, src, 4),
	}
	for _, g := range cases {
		l, err := Embed(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := l.Stats(g)
		delta := float64(g.Stats().MaxDegree)
		if s.Inflation > 3*delta {
			t.Fatalf("%s: inflation %.2f > 3*degree %.0f", g.Name(), s.Inflation, delta)
		}
		if s.Dilation != l.Dilation || s.Nodes != g.NumNodes() {
			t.Fatal("stats inconsistent")
		}
	}
}

func TestIdentityEmbedding(t *testing.T) {
	l := Identity([]int{2, 3, 4})
	if l.Dilation != 1 {
		t.Fatal("identity dilation")
	}
	for i, v := range l.Order {
		if v != i || l.PosOf[i] != i {
			t.Fatal("identity order")
		}
	}
	if l.Delays[1] != 3 {
		t.Fatal("identity delays")
	}
}

func TestEmbedDeterministic(t *testing.T) {
	g := network.RandomNOW(80, 4, network.UniformDelay{Lo: 1, Hi: 7}, 9)
	a, err := Embed(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Embed(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatal("nondeterministic embedding")
		}
	}
}

// Property: dilation <= 3 on arbitrary random connected graphs.
func TestDilationThreeProperty(t *testing.T) {
	f := func(seed int64, nSel uint8, extraSel uint8) bool {
		n := 2 + int(nSel%120)
		r := rand.New(rand.NewSource(seed))
		g := network.New(n)
		perm := r.Perm(n)
		for i := 1; i < n; i++ {
			g.MustAddLink(perm[i], perm[r.Intn(i)], 1+r.Intn(50))
		}
		for e := 0; e < int(extraSel%32); e++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				g.MustAddLink(u, v, 1+r.Intn(50))
			}
		}
		l, err := Embed(g, r.Intn(n))
		if err != nil {
			return false
		}
		if l.Dilation > 3 {
			return false
		}
		// permutation check
		seen := make([]bool, n)
		for _, v := range l.Order {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedFromDifferentRoots(t *testing.T) {
	g := network.Mesh2D(5, 5, network.Unit, 1)
	for root := 0; root < 25; root += 7 {
		l, err := Embed(g, root)
		if err != nil {
			t.Fatal(err)
		}
		if l.Order[0] != root {
			t.Fatalf("embedding must start at root %d, got %d", root, l.Order[0])
		}
		checkEmbedding(t, g, l)
	}
}

func TestEmbedBest(t *testing.T) {
	src := network.ExpDelay{Mean: 4}
	for _, g := range []*network.Network{
		network.Mesh2D(9, 9, src, 1),
		network.RandomNOW(120, 4, src, 2),
		network.CompleteBinaryTree(6, src, 3),
	} {
		base, err := Embed(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		best, err := EmbedBest(g)
		if err != nil {
			t.Fatal(err)
		}
		checkEmbedding(t, g, best)
		if best.Stats(g).LineAvgDelay > base.Stats(g).LineAvgDelay+1e-9 {
			t.Fatalf("%s: EmbedBest (%.3f) worse than root 0 (%.3f)",
				g.Name(), best.Stats(g).LineAvgDelay, base.Stats(g).LineAvgDelay)
		}
	}
	if _, err := EmbedBest(network.New(0)); err == nil {
		t.Fatal("empty accepted")
	}
}
