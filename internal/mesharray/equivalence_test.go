package mesharray

import "testing"

// Table-driven Theorem 7 cases: the predicted slowdown m + d + m^2/n must
// track the column-block decomposition in both regimes (m <= n and m > n),
// and every run stays single-copy with all pebbles computed.
func TestOnUniformLineTable(t *testing.T) {
	cases := []struct {
		name               string
		hostN, d, cols     int
		rows, steps        int
		wantLoad           int
		wantPredictedAtMin float64
	}{
		{"case1 one column each", 6, 4, 6, 5, 4, 5, 6 + 4 + 36.0/6},
		{"case1 fewer cols than hosts", 8, 2, 4, 4, 3, 4, 4 + 2 + 16.0/8},
		{"case2 column blocks", 4, 3, 8, 6, 3, 12, 8 + 3 + 64.0/4},
		{"case2 deep blocks", 3, 2, 9, 4, 4, 12, 9 + 2 + 81.0/3},
	}
	for _, tc := range cases {
		r, err := OnUniformLine(tc.hostN, tc.d, tc.cols,
			Options{Rows: tc.rows, Steps: tc.steps, Seed: 5, Check: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !r.Sim.Checked {
			t.Fatalf("%s: digests unchecked", tc.name)
		}
		if r.Sim.Load != tc.wantLoad {
			t.Errorf("%s: load %d, want %d", tc.name, r.Sim.Load, tc.wantLoad)
		}
		if r.Sim.Redundancy != 1 {
			t.Errorf("%s: redundancy %f, want 1", tc.name, r.Sim.Redundancy)
		}
		if r.PredictedSlowdown != tc.wantPredictedAtMin {
			t.Errorf("%s: predicted %.2f, want %.2f", tc.name, r.PredictedSlowdown, tc.wantPredictedAtMin)
		}
		wantPebbles := int64(tc.rows) * int64(tc.cols) * int64(tc.steps)
		if r.Sim.PebblesComputed != wantPebbles {
			t.Errorf("%s: %d pebbles, want %d", tc.name, r.Sim.PebblesComputed, wantPebbles)
		}
	}
}

// Engine equivalence on the mesh decomposition: Workers=1 and Workers=3
// runs of the same Theorem 7 configuration must agree on every aggregate.
func TestOnUniformLineEngineEquivalence(t *testing.T) {
	opt := Options{Rows: 5, Steps: 6, Seed: 9, Check: true, Workers: 1}
	seq, err := OnUniformLine(5, 6, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 3
	par, err := OnUniformLine(5, 6, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Sim.HostSteps != par.Sim.HostSteps ||
		seq.Sim.PebblesComputed != par.Sim.PebblesComputed ||
		seq.Sim.Messages != par.Sim.Messages ||
		seq.Sim.MessageHops != par.Sim.MessageHops ||
		seq.Sim.DeliveredValues != par.Sim.DeliveredValues {
		t.Fatalf("engines disagree: seq %+v par %+v", seq.Sim, par.Sim)
	}
}
