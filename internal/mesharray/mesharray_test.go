package mesharray

import (
	"testing"

	"latencyhide/internal/network"
)

func delaysOf(g *network.Network) []int {
	out := make([]int, g.NumLinks())
	for i, e := range g.Edges() {
		out[i] = e.Delay
	}
	return out
}

func TestOnUniformLineCase1(t *testing.T) {
	// m <= n: one mesh column per host processor
	r, err := OnUniformLine(8, 16, 6, Options{Rows: 6, Steps: 8, Seed: 1, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Checked {
		t.Fatal("unchecked")
	}
	if r.Cols != 6 || r.Rows != 6 {
		t.Fatalf("dims %dx%d", r.Rows, r.Cols)
	}
	// single copy: no redundancy
	if r.Sim.Redundancy != 1 {
		t.Fatalf("redundancy %f", r.Sim.Redundancy)
	}
	// slowdown at least m (each processor computes a whole column per
	// guest step) and roughly m + d
	if r.Sim.Slowdown < 6 {
		t.Fatalf("slowdown %f below work bound m", r.Sim.Slowdown)
	}
	if r.Sim.Slowdown > 4*(6+16) {
		t.Fatalf("slowdown %f far above m+d", r.Sim.Slowdown)
	}
}

func TestOnUniformLineCase2(t *testing.T) {
	// m > n: blocks of columns
	r, err := OnUniformLine(4, 8, 16, Options{Rows: 8, Steps: 6, Seed: 2, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	// each host owns 4 columns of 8 rows = 32 pebbles per guest step
	if r.Sim.Load != 32 {
		t.Fatalf("load %d", r.Sim.Load)
	}
	if r.Sim.Slowdown < 32 {
		t.Fatalf("slowdown %f below work bound", r.Sim.Slowdown)
	}
}

func TestOnUniformLineErrors(t *testing.T) {
	if _, err := OnUniformLine(1, 4, 4, Options{Rows: 4, Steps: 2}); err == nil {
		t.Fatal("hostN=1 accepted")
	}
	if _, err := OnUniformLine(4, 4, 0, Options{Rows: 4, Steps: 2}); err == nil {
		t.Fatal("cols=0 accepted")
	}
	if _, err := OnUniformLine(4, 4, 4, Options{Rows: 0, Steps: 2}); err == nil {
		t.Fatal("rows=0 accepted")
	}
}

func TestOnLineTreeOverlaps(t *testing.T) {
	g := network.Line(96, network.UniformDelay{Lo: 1, Hi: 12}, 3)
	r, err := OnLine(delaysOf(g), Options{Rows: 5, Steps: 6, Seed: 3, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Checked {
		t.Fatal("unchecked")
	}
	// overlap columns are replicated
	if r.Sim.Redundancy <= 1 {
		t.Fatalf("redundancy %f: tree overlaps missing", r.Sim.Redundancy)
	}
	if r.PredictedSlowdown <= 0 {
		t.Fatal("prediction")
	}
}

func TestOnLineColsPerUnit(t *testing.T) {
	g := network.Line(64, network.UniformDelay{Lo: 1, Hi: 4}, 5)
	r1, err := OnLine(delaysOf(g), Options{Rows: 4, Steps: 4, Seed: 1, ColsPerUnit: 1})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := OnLine(delaysOf(g), Options{Rows: 4, Steps: 4, Seed: 1, ColsPerUnit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cols != 3*r1.Cols {
		t.Fatalf("cols %d vs %d", r3.Cols, r1.Cols)
	}
}

func TestOnNOW(t *testing.T) {
	g := network.RandomNOW(64, 4, network.ExpDelay{Mean: 2}, 7)
	r, err := OnNOW(g, Options{Rows: 4, Steps: 6, Seed: 4, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Checked {
		t.Fatal("unchecked")
	}
}

func TestOnNOWErrors(t *testing.T) {
	g := network.New(4)
	g.MustAddLink(0, 1, 1)
	if _, err := OnNOW(g, Options{Rows: 2, Steps: 2}); err == nil {
		t.Fatal("disconnected host accepted")
	}
	g2 := network.Line(16, network.Unit, 1)
	if _, err := OnNOW(g2, Options{Rows: 0, Steps: 2}); err == nil {
		t.Fatal("rows=0 accepted")
	}
}

func TestMeshOwnedClipping(t *testing.T) {
	ids := meshOwned(3, 5, -2, 99)
	if len(ids) != 15 {
		t.Fatalf("clipped expansion has %d ids", len(ids))
	}
	ids = meshOwned(2, 4, 1, 3)
	want := []int{1, 2, 5, 6}
	if len(ids) != len(want) {
		t.Fatalf("ids %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids %v want %v", ids, want)
		}
	}
}

func TestParallelEngineOnMesh(t *testing.T) {
	seq, err := OnUniformLine(8, 8, 8, Options{Rows: 8, Steps: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	par, err := OnUniformLine(8, 8, 8, Options{Rows: 8, Steps: 6, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Sim.HostSteps != par.Sim.HostSteps {
		t.Fatalf("engines disagree: %d vs %d", seq.Sim.HostSteps, par.Sim.HostSteps)
	}
}

func TestSingleRowMesh(t *testing.T) {
	// a 1-row mesh degenerates to a linear array guest
	r, err := OnUniformLine(4, 4, 8, Options{Rows: 1, Steps: 5, Seed: 1, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Checked {
		t.Fatal("unchecked")
	}
}

func TestMeshBandwidthOverride(t *testing.T) {
	a, err := OnUniformLine(4, 8, 8, Options{Rows: 16, Steps: 4, Seed: 2, Bandwidth: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := OnUniformLine(4, 8, 8, Options{Rows: 16, Steps: 4, Seed: 2, Bandwidth: 32})
	if err != nil {
		t.Fatal(err)
	}
	// narrow bandwidth can only slow things down (equal in steady state)
	if a.Sim.HostSteps < b.Sim.HostSteps {
		t.Fatalf("B=1 faster (%d) than B=32 (%d)", a.Sim.HostSteps, b.Sim.HostSteps)
	}
	if a.Sim.Bandwidth != 1 || b.Sim.Bandwidth != 32 {
		t.Fatal("bandwidth not recorded")
	}
}
