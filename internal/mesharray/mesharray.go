// Package mesharray implements Section 5: simulating an m x m unit-delay
// guest array on hosts with high-latency links.
//
// Theorem 7 simulates the mesh on an intermediate uniform-delay linear array
// H0 by giving each host processor a block of full mesh columns — one column
// each when m <= n0 (case 1, slowdown O(m)), m/n0 consecutive columns when
// m > n0 (case 2, slowdown O(m^2/n0)). No redundancy is needed: a whole
// column's worth of local work already hides the link delay.
//
// Theorem 8 runs the same column-block decomposition through the OVERLAP
// machinery on an arbitrary host: the interval tree's abstract units become
// blocks of mesh columns (overlapping at sibling boundaries exactly as in
// Section 3.2), so the combined slowdown is O(m log^3 n + m^2/n).
package mesharray

import (
	"fmt"
	"math"

	"latencyhide/internal/assign"
	"latencyhide/internal/embedding"
	"latencyhide/internal/guest"
	"latencyhide/internal/network"
	"latencyhide/internal/obs"
	"latencyhide/internal/sim"
	"latencyhide/internal/tree"
)

// Options configures a mesh simulation.
type Options struct {
	Rows  int // guest mesh height (pebbles per column)
	Steps int
	Seed  int64
	// C is the tree constant for OnNOW; zero means 4.
	C int
	// ColsPerUnit is the number of mesh columns per tree unit in OnNOW;
	// zero means 1.
	ColsPerUnit int
	Bandwidth   int
	Workers     int
	Check       bool
	// ComputePerStep and Recorder pass through to the engine.
	ComputePerStep int
	Recorder       obs.Recorder
}

// Result is a mesh simulation outcome.
type Result struct {
	Rows, Cols int
	HostN      int
	Sim        *sim.Result
	// PredictedSlowdown is the theorem's bound without constants:
	// m + m^2/n0 on a uniform line (Theorem 7), (m + m^2/n) log^3 n on a
	// NOW (Theorem 8), with m = Cols here.
	PredictedSlowdown float64
	// ObsInfo carries the run facts for package obs instruments when
	// Options.Recorder was set; nil otherwise.
	ObsInfo *obs.RunInfo
}

// meshOwned expands "host p owns mesh columns [lo, hi)" into guest node ids.
func meshOwned(rows, totalCols, lo, hi int) []int {
	if lo < 0 {
		lo = 0
	}
	if hi > totalCols {
		hi = totalCols
	}
	out := make([]int, 0, rows*(hi-lo))
	for r := 0; r < rows; r++ {
		for c := lo; c < hi; c++ {
			out = append(out, r*totalCols+c)
		}
	}
	return out
}

// OnUniformLine is Theorem 7: simulate a Rows x cols mesh on a hostN-node
// linear array whose every link has delay d. cols is split into contiguous
// single-copy blocks of ceil(cols/hostN) columns (one column per processor
// when cols <= hostN).
func OnUniformLine(hostN, d, cols int, opt Options) (*Result, error) {
	if hostN < 2 || cols < 1 || opt.Rows < 1 {
		return nil, fmt.Errorf("mesharray: hostN=%d cols=%d rows=%d", hostN, cols, opt.Rows)
	}
	owned := make([][]int, hostN)
	if cols <= hostN {
		for p := 0; p < cols; p++ {
			owned[p] = meshOwned(opt.Rows, cols, p, p+1)
		}
	} else {
		for p := 0; p < hostN; p++ {
			lo := p * cols / hostN
			hi := (p + 1) * cols / hostN
			owned[p] = meshOwned(opt.Rows, cols, lo, hi)
		}
	}
	a, err := assign.FromOwned(hostN, opt.Rows*cols, owned)
	if err != nil {
		return nil, err
	}
	delays := make([]int, hostN-1)
	for i := range delays {
		delays[i] = d
	}
	res, err := runMesh(delays, a, cols, opt)
	if err != nil {
		return nil, err
	}
	m := float64(cols)
	res.PredictedSlowdown = m + float64(d) + m*m/float64(hostN)
	return res, nil
}

// OnNOW is Theorem 8: simulate a Rows x (n'*ColsPerUnit) mesh on an
// arbitrary connected host network, via the dilation-3 line embedding and
// the OVERLAP interval tree over the embedded line.
func OnNOW(g *network.Network, opt Options) (*Result, error) {
	line, err := embedding.Embed(g, 0)
	if err != nil {
		return nil, err
	}
	return OnLine(line.Delays, opt)
}

// OnLine is OnNOW for a host that is already a line with the given delays.
func OnLine(delays []int, opt Options) (*Result, error) {
	c := opt.C
	if c == 0 {
		c = 4
	}
	cpu := opt.ColsPerUnit
	if cpu == 0 {
		cpu = 1
	}
	if opt.Rows < 1 {
		return nil, fmt.Errorf("mesharray: rows %d < 1", opt.Rows)
	}
	t := tree.Build(delays, c)
	if err := t.CheckLemmas(); err != nil {
		return nil, err
	}
	units, nUnits := assign.TreeUnits(t)
	if nUnits == 0 {
		return nil, fmt.Errorf("mesharray: no live host processors")
	}
	cols := nUnits * cpu
	n := len(delays) + 1
	owned := make([][]int, n)
	for p, us := range units {
		seen := make(map[int]bool)
		for _, u := range us {
			for _, id := range meshOwned(opt.Rows, cols, u*cpu, (u+1)*cpu) {
				if !seen[id] {
					seen[id] = true
					owned[p] = append(owned[p], id)
				}
			}
		}
	}
	a, err := assign.FromOwned(n, opt.Rows*cols, owned)
	if err != nil {
		return nil, err
	}
	res, err := runMesh(delays, a, cols, opt)
	if err != nil {
		return nil, err
	}
	m := float64(cols)
	logn := float64(network.Log2Ceil(n))
	res.PredictedSlowdown = (m + m*m/float64(n)) * math.Pow(logn, 3)
	return res, nil
}

func runMesh(delays []int, a *assign.Assignment, cols int, opt Options) (*Result, error) {
	rows := opt.Rows
	mesh := guest.NewMesh(rows, cols)
	cfg := sim.Config{
		Delays: delays,
		Guest: guest.Spec{
			Graph: mesh,
			Steps: opt.Steps,
			Seed:  opt.Seed,
		},
		Assign:         a,
		Bandwidth:      opt.Bandwidth,
		ComputePerStep: opt.ComputePerStep,
		Workers:        opt.Workers,
		Check:          opt.Check,
		Recorder:       opt.Recorder,
	}
	r, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{Rows: rows, Cols: cols, HostN: a.HostN, Sim: r}
	if opt.Recorder != nil {
		info := cfg.ObsInfo(r)
		out.ObsInfo = &info
	}
	return out, nil
}
