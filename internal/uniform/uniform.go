// Package uniform implements Theorem 4: a guest linear array of n*sqrt(d)
// unit-delay processors is simulated on a host linear array H0 of n
// processors whose every link has delay d, with slowdown O(sqrt(d)) — 5d
// host steps per sqrt(d) guest steps (Figure 4).
//
// Each host processor j is responsible for the region of 3s guest columns
// [j*s-2s, j*s+s-1] (s = floor(sqrt(d))), overlapping each neighbor by 2s —
// every column is replicated three times. A batch simulates s guest steps in
// three phases:
//
//  1. Trapezium: compute the 2d pebbles that depend only on the region's
//     base row — row t covers columns [js-2s+t, js+s-1-t].
//  2. Exchange: send column js-s (rows 0..s-1) to the left neighbor and
//     column js-s-1 to the right neighbor; both are computed inside the
//     trapezium. This takes d + ceil(s/B) - 1 steps, pipelined.
//  3. Triangles: fill the left triangle (columns < js-2s+t) using the
//     column received from the left, and the right triangle symmetrically:
//     s^2+s more pebbles.
//
// The package executes the protocol at full value fidelity — every pebble is
// computed with the real guest semantics and every database replica is
// updated in order — while charging steps analytically per phase, and
// verifies the result against the sequential reference executor. It is the
// schedule whose existence Theorem 1's greedy counterpart only bounds; the
// greedy engine (package sim) runs the same assignment dynamically for
// comparison.
package uniform

import (
	"fmt"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
	"latencyhide/internal/network"
	"latencyhide/internal/sim"
)

// Result reports one phase-scheduled run.
type Result struct {
	HostN, D, S int
	GuestCols   int
	Batches     int
	GuestSteps  int

	TrapeziumSteps int // 2d
	ExchangeSteps  int // d + ceil(s/B) - 1
	TriangleSteps  int // s^2 + s
	StepsPerBatch  int
	HostSteps      int64
	Slowdown       float64

	PebblesComputed int64
	Load            int
	Checked         bool
}

// Run executes the Theorem 4 protocol: hostN processors, uniform link delay
// d, for the given number of batches (each batch simulates s = floor(sqrt d)
// guest steps). bandwidth <= 0 means the paper's log n default.
func Run(hostN, d, batches int, bandwidth int, seed int64) (*Result, error) {
	if hostN < 2 {
		return nil, fmt.Errorf("uniform: hostN %d < 2", hostN)
	}
	if d < 1 {
		return nil, fmt.Errorf("uniform: delay %d < 1", d)
	}
	if batches < 1 {
		return nil, fmt.Errorf("uniform: batches %d < 1", batches)
	}
	s := network.ISqrt(d)
	if s < 1 {
		s = 1
	}
	if bandwidth <= 0 {
		bandwidth = network.Log2Ceil(hostN)
		if bandwidth < 1 {
			bandwidth = 1
		}
	}
	m := hostN * s
	T := batches * s

	res := &Result{
		HostN: hostN, D: d, S: s, GuestCols: m, Batches: batches, GuestSteps: T,
		TrapeziumSteps: 2 * d,
		ExchangeSteps:  d + (s+bandwidth-1)/bandwidth - 1,
		TriangleSteps:  s*s + s,
	}
	res.StepsPerBatch = res.TrapeziumSteps + res.ExchangeSteps + res.TriangleSteps
	res.HostSteps = int64(res.StepsPerBatch) * int64(batches)
	res.Slowdown = float64(res.HostSteps) / float64(T)

	// --- Full-fidelity execution of the schedule. ---
	type region struct {
		lo, hi int // guest columns [lo, hi)
		// vals[x-lo][t] for t in 0..s of the current batch
		vals [][]uint64
		dbs  []guest.Database
	}
	ga := guest.NewLinearArray(m)
	factory := guest.NewMixDB
	procs := make([]*region, hostN)
	maxLoad := 0
	for j := 0; j < hostN; j++ {
		lo, hi := j*s-2*s, j*s+s
		if lo < 0 {
			lo = 0
		}
		if hi > m {
			hi = m
		}
		r := &region{lo: lo, hi: hi}
		r.vals = make([][]uint64, hi-lo)
		r.dbs = make([]guest.Database, hi-lo)
		for x := lo; x < hi; x++ {
			r.vals[x-lo] = make([]uint64, s+1)
			r.vals[x-lo][0] = guest.InitValue(x, seed)
			r.dbs[x-lo] = factory(x, seed)
		}
		procs[j] = r
		if hi-lo > maxLoad {
			maxLoad = hi - lo
		}
	}
	res.Load = maxLoad

	// compute evaluates pebble (x, t0+t) inside region r given row t-1 of
	// the batch; left and right supply out-of-region dependency values
	// (or nil at array ends / when the column is interior).
	compute := func(r *region, x, t, absStep int, leftVal, rightVal *uint64) {
		var nv [2]uint64
		deps := nv[:0]
		if x > 0 {
			if x-1 >= r.lo {
				deps = append(deps, r.vals[x-1-r.lo][t-1])
			} else if leftVal != nil {
				deps = append(deps, *leftVal)
			} else {
				panic(fmt.Sprintf("uniform: missing left dep for col %d", x))
			}
		}
		if x+1 < m {
			if x+1 < r.hi {
				deps = append(deps, r.vals[x+1-r.lo][t-1])
			} else if rightVal != nil {
				deps = append(deps, *rightVal)
			} else {
				panic(fmt.Sprintf("uniform: missing right dep for col %d", x))
			}
		}
		db := r.dbs[x-r.lo]
		v := guest.ComputeValue(db.Digest(), x, absStep, r.vals[x-r.lo][t-1], deps)
		db.Apply(guest.Update{Node: x, Step: absStep, Val: v})
		r.vals[x-r.lo][t] = v
		res.PebblesComputed++
	}

	for b := 0; b < batches; b++ {
		base := b * s
		// Phase 1: trapezium rows. Row t of region [lo,hi) covers
		// [max(lo, j*s-2*s+t), min(hi, j*s+s)-t) — clipped at array ends
		// where there is no outside dependency at all.
		for _, r := range procs {
			for t := 1; t <= s; t++ {
				clo, chi := r.lo, r.hi
				if r.lo > 0 {
					clo = r.lo + t
				}
				if r.hi < m {
					chi = r.hi - t
				}
				for x := clo; x < chi; x++ {
					compute(r, x, t, base+t, nil, nil)
				}
			}
		}
		// Phase 2: exchange. Processor j sends column j*s-s (rows
		// 0..s-1) leftward and column j*s-s-1 rightward; receivers index
		// them when filling triangles. We hand the values over directly;
		// the time cost is charged in ExchangeSteps.
		fromLeft := make([][]uint64, hostN)  // fromLeft[j]: rows 0..s-1 of column procs[j].lo-1
		fromRight := make([][]uint64, hostN) // rows 0..s-1 of column procs[j].hi
		for j, r := range procs {
			if r.lo > 0 {
				src := procs[j-1]
				col := r.lo - 1
				rows := make([]uint64, s)
				for t := 0; t < s; t++ {
					rows[t] = src.vals[col-src.lo][t]
				}
				fromLeft[j] = rows
			}
			if r.hi < m {
				src := procs[j+1]
				col := r.hi
				rows := make([]uint64, s)
				for t := 0; t < s; t++ {
					rows[t] = src.vals[col-src.lo][t]
				}
				fromRight[j] = rows
			}
		}
		// Phase 3: triangles, row by row so in-row dependencies resolve.
		for j, r := range procs {
			for t := 1; t <= s; t++ {
				if r.lo > 0 {
					// left triangle: columns [lo, lo+t)
					for x := r.lo + t - 1; x >= r.lo; x-- {
						if r.vals[x-r.lo][t] != 0 {
							continue
						}
						var lv *uint64
						if x-1 < r.lo {
							lv = &fromLeft[j][t-1]
						}
						compute(r, x, t, base+t, lv, nil)
					}
				}
				if r.hi < m {
					for x := r.hi - t; x < r.hi; x++ {
						if r.vals[x-r.lo][t] != 0 {
							continue
						}
						var rv *uint64
						if x+1 >= r.hi {
							rv = &fromRight[j][t-1]
						}
						compute(r, x, t, base+t, nil, rv)
					}
				}
			}
		}
		// Roll the batch window: row s becomes row 0.
		for _, r := range procs {
			for x := range r.vals {
				r.vals[x][0] = r.vals[x][s]
				for t := 1; t <= s; t++ {
					r.vals[x][t] = 0
				}
			}
		}
	}

	// Verify all replicas against the reference executor.
	oracle, err := guest.RunDigest(guest.Spec{Graph: ga, Steps: T, Seed: seed})
	if err != nil {
		return nil, err
	}
	for j, r := range procs {
		for x := r.lo; x < r.hi; x++ {
			db := r.dbs[x-r.lo]
			if db.Version() != T {
				return nil, fmt.Errorf("uniform: proc %d col %d at version %d, want %d", j, x, db.Version(), T)
			}
			if db.Digest() != oracle.FinalDigests[x] {
				return nil, fmt.Errorf("uniform: proc %d col %d digest mismatch", j, x)
			}
		}
	}
	res.Checked = true
	return res, nil
}

// Greedy runs the same Theorem 4 configuration on the dynamic engine
// (package sim) for comparison with the explicit schedule.
func Greedy(hostN, d, batches int, bandwidth int, seed int64, workers int) (*sim.Result, error) {
	s := network.ISqrt(d)
	if s < 1 {
		s = 1
	}
	a, err := assign.UniformBlocks(hostN, s, 2*s, 0)
	if err != nil {
		return nil, err
	}
	delays := make([]int, hostN-1)
	for i := range delays {
		delays[i] = d
	}
	return sim.Run(sim.Config{
		Delays: delays,
		Guest: guest.Spec{
			Graph: guest.NewLinearArray(a.Columns),
			Steps: batches * s,
			Seed:  seed,
		},
		Assign:    a,
		Bandwidth: bandwidth,
		Workers:   workers,
		Check:     true,
	})
}
