package uniform

import (
	"testing"

	"latencyhide/internal/network"
)

func TestRunVerifiesValues(t *testing.T) {
	for _, d := range []int{1, 4, 9, 16, 64, 100, 144} {
		r, err := Run(12, d, 3, 0, 7)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !r.Checked {
			t.Fatalf("d=%d: unchecked", d)
		}
		if r.S != network.ISqrt(d) {
			t.Fatalf("d=%d: s=%d", d, r.S)
		}
		if r.GuestCols != 12*r.S || r.GuestSteps != 3*r.S {
			t.Fatalf("d=%d: guest %dx%d", d, r.GuestCols, r.GuestSteps)
		}
	}
}

func TestFiveDBound(t *testing.T) {
	// Theorem 4: each batch of sqrt(d) guest steps fits in 5d host steps
	// (up to the sqrt(d) pipelining term the paper folds into "< 2d").
	for _, d := range []int{16, 64, 256, 1024, 4096} {
		r, err := Run(8, d, 1, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if r.StepsPerBatch > 5*d {
			t.Fatalf("d=%d: %d steps/batch > 5d=%d", d, r.StepsPerBatch, 5*d)
		}
		if r.TrapeziumSteps != 2*d {
			t.Fatalf("d=%d: trapezium %d != 2d", d, r.TrapeziumSteps)
		}
		if r.TriangleSteps != r.S*r.S+r.S {
			t.Fatalf("d=%d: triangles %d", d, r.TriangleSteps)
		}
	}
}

func TestSlowdownIsThetaSqrtD(t *testing.T) {
	var prev float64
	for _, d := range []int{16, 64, 256, 1024} {
		r, err := Run(8, d, 2, 0, 5)
		if err != nil {
			t.Fatal(err)
		}
		s := float64(r.S)
		if r.Slowdown < s || r.Slowdown > 6*s {
			t.Fatalf("d=%d: slowdown %.1f not Theta(sqrt d)=%.0f", d, r.Slowdown, s)
		}
		if r.Slowdown <= prev {
			t.Fatalf("slowdown not increasing with d at %d", d)
		}
		prev = r.Slowdown
	}
}

func TestExchangeBandwidth(t *testing.T) {
	d := 256 // s = 16
	wide, err := Run(8, d, 1, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Run(8, d, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wide.ExchangeSteps != d+0 { // ceil(16/16)-1 = 0
		t.Fatalf("wide exchange %d", wide.ExchangeSteps)
	}
	if narrow.ExchangeSteps != d+15 {
		t.Fatalf("narrow exchange %d", narrow.ExchangeSteps)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(1, 4, 1, 0, 1); err == nil {
		t.Fatal("hostN=1 accepted")
	}
	if _, err := Run(4, 0, 1, 0, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := Run(4, 4, 0, 0, 1); err == nil {
		t.Fatal("batches=0 accepted")
	}
}

func TestWorkAccounting(t *testing.T) {
	r, err := Run(8, 16, 2, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	// every processor computes its whole (clipped) region every batch;
	// total = sum over procs of |region| * steps = replicas * steps
	if r.PebblesComputed <= int64(r.GuestCols)*int64(r.GuestSteps) {
		t.Fatal("no redundant work measured")
	}
	if r.Load != 3*r.S {
		t.Fatalf("load %d != 3s", r.Load)
	}
}

func TestGreedyMatchesSemantics(t *testing.T) {
	// greedy engine on the same assignment verifies values too and is
	// never slower than ~the explicit schedule
	for _, d := range []int{16, 64} {
		p, err := Run(8, d, 2, 0, 11)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Greedy(8, d, 2, 0, 11, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Checked {
			t.Fatal("greedy unchecked")
		}
		if g.Slowdown > p.Slowdown*1.5 {
			t.Fatalf("d=%d: greedy %.1f much slower than schedule %.1f", d, g.Slowdown, p.Slowdown)
		}
	}
}

func TestGreedyParallelEngine(t *testing.T) {
	seq, err := Greedy(8, 25, 2, 0, 13, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Greedy(8, 25, 2, 0, 13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.HostSteps != par.HostSteps {
		t.Fatalf("engines disagree %d vs %d", seq.HostSteps, par.HostSteps)
	}
}

func TestTinyHostAndRowGuests(t *testing.T) {
	// smallest legal host
	r, err := Run(2, 9, 2, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checked || r.GuestCols != 6 {
		t.Fatalf("%+v", r)
	}
	// d = 1: s = 1, degenerate batches of one step
	r1, err := Run(4, 1, 5, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Checked || r1.GuestSteps != 5 {
		t.Fatalf("%+v", r1)
	}
}
