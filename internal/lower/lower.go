// Package lower implements the paper's lower-bound machinery (Section 6 and
// the Section 4 counterexample):
//
//   - Theorem 9: on host H1 (every sqrt(n)-th link has delay sqrt(n)), any
//     single-copy assignment forces slowdown d_max = sqrt(n). The package
//     certifies the bound for concrete assignments by the paper's dichotomy
//     (work bound vs adjacent-column delay) and cross-checks it on the
//     engine.
//
//   - Theorem 10: on host H2 (the recursive level-box construction,
//     Figure 5), any assignment with at most two copies per database and
//     constant load has slowdown Omega(log n). CertifyTwoCopy implements
//     the proof's case analysis over segments, using the Fact 4 delay
//     bound, which itself is verified against Dijkstra distances in tests.
//
//   - Section 4: the clique-chain host shows Theorem 6 fails for unbounded
//     degree: every simulation pays at least n^(1/4) even though d_ave is
//     constant.
//
//   - PropagationLB: the Theorem 9 ping-pong argument generalized to any
//     multi-copy placement and any column distance — a universal certified
//     floor that every measured simulation must respect (and does; fuzz
//     tests assert it).
package lower

import (
	"fmt"
	"math"

	"latencyhide/internal/assign"
	"latencyhide/internal/network"
)

// linePrefix returns prefix delay sums of a host line: delay between
// positions p < q is prefix[q] - prefix[p].
func linePrefix(delays []int) []int64 {
	prefix := make([]int64, len(delays)+1)
	for i, d := range delays {
		prefix[i+1] = prefix[i] + int64(d)
	}
	return prefix
}

func lineDelay(prefix []int64, p, q int) int64 {
	if p > q {
		p, q = q, p
	}
	return prefix[q] - prefix[p]
}

// SingleCopyLB returns the certified slowdown lower bound of Theorem 9's
// argument for one concrete single-copy assignment on a host line: the
// maximum of the work bound m/used and the largest delay between holders of
// adjacent guest columns. It errors if any database has more than one copy
// (the argument does not apply then).
func SingleCopyLB(delays []int, a *assign.Assignment) (int64, error) {
	if a.MaxCopies() > 1 {
		return 0, fmt.Errorf("lower: assignment has %d copies of some database; Theorem 9 needs one", a.MaxCopies())
	}
	prefix := linePrefix(delays)
	used := a.UsedHosts()
	if used == 0 {
		return 0, fmt.Errorf("lower: empty assignment")
	}
	lb := int64((a.Columns + used - 1) / used) // work bound
	for c := 0; c+1 < a.Columns; c++ {
		p := a.Holders[c][0]
		q := a.Holders[c+1][0]
		if p == q {
			continue
		}
		if d := lineDelay(prefix, p, q); d > lb {
			lb = d
		}
	}
	return lb, nil
}

// H1Adversary evaluates Theorem 9 over a family of single-copy placement
// strategies on H1 and returns the smallest certified lower bound any of
// them achieves — the theorem predicts it never drops below sqrt(n).
// Strategies: contiguous blocks over all processors, blocks over every k-th
// processor, and blocks aligned to H1's unit-delay segments.
func H1Adversary(n, m int) (minLB int64, details []AdversaryCase, err error) {
	h1 := network.H1(n)
	delays := make([]int, 0, n-1)
	for _, e := range h1.Edges() {
		delays = append(delays, e.Delay)
	}
	s := network.ISqrt(n)
	minLB = math.MaxInt64

	try := func(name string, a *assign.Assignment, e error) error {
		if e != nil {
			return e
		}
		lb, e := SingleCopyLB(delays, a)
		if e != nil {
			return e
		}
		details = append(details, AdversaryCase{Name: name, LB: lb, Used: a.UsedHosts()})
		if lb < minLB {
			minLB = lb
		}
		return nil
	}

	a, e := assign.SingleCopyBlocks(n, m)
	if err = try("blocks-all", a, e); err != nil {
		return 0, nil, err
	}
	for _, gap := range []int{2, s / 2, s, 2 * s} {
		if gap < 1 || gap >= n {
			continue
		}
		a, e = assign.Contraction(n, m, gap)
		if err = try(fmt.Sprintf("every-%d", gap), a, e); err != nil {
			return 0, nil, err
		}
	}
	// Segment-aligned: use only processors within one unit-delay segment
	// (at most s of them) — triggers the work bound instead.
	var hosts []int
	for p := 0; p < s && p < n; p++ {
		hosts = append(hosts, p)
	}
	a, e = assign.SingleCopyOnHosts(n, m, hosts)
	if err = try("one-segment", a, e); err != nil {
		return 0, nil, err
	}
	return minLB, details, nil
}

// AdversaryCase records one strategy's certified bound.
type AdversaryCase struct {
	Name string
	LB   int64
	Used int
}

// TwoCopyCertificate is the outcome of the Theorem 10 case analysis.
type TwoCopyCertificate struct {
	// SlowdownLB is the certified lower bound on the slowdown.
	SlowdownLB float64
	// Case is "disjoint-segments" (the proof's case 2: adjacent columns
	// whose copies share no segment, paying an inter-segment delay every
	// other step) or "overlap-zigzag" (case 1: the 4j-pebble zigzag path,
	// paying at least (j/c) log n per 4j steps).
	Case string
	// Column is the witness column index (case 2) or the start of the
	// overlap run (case 1).
	Column int
	// RunLen is j, the overlap length, for case 1.
	RunLen int
}

// CertifyTwoCopy runs the Theorem 10 adversary against a concrete
// assignment on the H2 host. Every database must have at most two copies and
// the load at most loadC. The returned certificate's SlowdownLB is
// Omega(log n) for every valid assignment; tests sweep strategies to
// confirm.
func CertifyTwoCopy(spec *network.H2Spec, a *assign.Assignment, loadC int) (*TwoCopyCertificate, error) {
	if a.MaxCopies() > 2 {
		return nil, fmt.Errorf("lower: assignment has %d copies; Theorem 10 allows two", a.MaxCopies())
	}
	if l := a.Load(); l > loadC {
		return nil, fmt.Errorf("lower: load %d exceeds declared constant %d", l, loadC)
	}
	segOf := segmentMap(spec)
	logn := float64(network.Log2Ceil(spec.N))

	// segs(i): segments holding copies of column i.
	segsOf := func(col int) map[int]bool {
		out := make(map[int]bool, 2)
		for _, p := range a.Holders[col] {
			out[segOf[p]] = true
		}
		return out
	}

	prefix := make([]int64, 0)
	{
		delays := make([]int, 0, spec.Net.NumNodes()-1)
		for _, e := range spec.Net.Edges() {
			delays = append(delays, e.Delay)
		}
		prefix = linePrefix(delays)
	}

	// Case 2 scan: adjacent columns with segment-disjoint holder sets pay
	// the full inter-segment delay on every information transfer between
	// them, i.e. at least once per two guest steps.
	for c := 0; c+1 < a.Columns; c++ {
		si, sj := segsOf(c), segsOf(c+1)
		disjoint := true
		for s := range si {
			if sj[s] {
				disjoint = false
				break
			}
		}
		if !disjoint {
			continue
		}
		// Minimum delay between any holder of c and any holder of c+1.
		min := int64(math.MaxInt64)
		for _, p := range a.Holders[c] {
			for _, q := range a.Holders[c+1] {
				if d := lineDelay(prefix, p, q); d < min {
					min = d
				}
			}
		}
		return &TwoCopyCertificate{
			SlowdownLB: float64(min) / 2,
			Case:       "disjoint-segments",
			Column:     c,
		}, nil
	}

	// Case 1: every adjacent pair shares a segment, so overlapping runs
	// exist. Find a maximal run of consecutive columns sharing a common
	// segment; the zigzag path over a run of length j costs at least
	// (j/loadC) * log n host steps per 4j guest steps.
	bestLB, bestCol, bestRun := 0.0, -1, 0
	c := 0
	for c+1 < a.Columns {
		shared := intersect(segsOf(c), segsOf(c+1))
		if len(shared) == 0 {
			c++
			continue
		}
		// extend the run while a common segment persists
		j := 1
		for c+j+1 < a.Columns {
			next := intersect(shared, segsOf(c+j+1))
			if len(next) == 0 {
				break
			}
			shared = next
			j++
		}
		lb := (float64(j) / float64(loadC)) * logn / (4 * float64(j))
		if lb > bestLB {
			bestLB, bestCol, bestRun = lb, c, j
		}
		c += j
	}
	if bestCol < 0 {
		return nil, fmt.Errorf("lower: no case matched (empty assignment?)")
	}
	return &TwoCopyCertificate{
		SlowdownLB: bestLB,
		Case:       "overlap-zigzag",
		Column:     bestCol,
		RunLen:     bestRun,
	}, nil
}

func intersect(a, b map[int]bool) map[int]bool {
	out := make(map[int]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// segmentMap assigns every H2 processor a segment: its own, or for level-0
// box endpoints the nearest segment along the line by total delay.
func segmentMap(spec *network.H2Spec) []int {
	n := len(spec.Segment)
	out := make([]int, n)
	type near struct {
		seg  int
		dist int64
	}
	// sweep left to right, then right to left, tracking nearest segment.
	delays := make([]int, 0, n-1)
	for _, e := range spec.Net.Edges() {
		delays = append(delays, e.Delay)
	}
	left := make([]near, n)
	cur := near{seg: -1, dist: math.MaxInt64 / 2}
	for p := 0; p < n; p++ {
		if p > 0 {
			cur.dist += int64(delays[p-1])
		}
		if spec.Segment[p] >= 0 {
			cur = near{seg: spec.Segment[p], dist: 0}
		}
		left[p] = cur
	}
	cur = near{seg: -1, dist: math.MaxInt64 / 2}
	for p := n - 1; p >= 0; p-- {
		if p < n-1 {
			cur.dist += int64(delays[p])
		}
		if spec.Segment[p] >= 0 {
			cur = near{seg: spec.Segment[p], dist: 0}
		}
		if spec.Segment[p] >= 0 {
			out[p] = spec.Segment[p]
		} else if cur.dist < left[p].dist {
			out[p] = cur.seg
		} else {
			out[p] = left[p].seg
		}
	}
	return out
}

// CliqueChainLB is the Section 4 argument: if a simulation of an n-step
// guest on the clique-chain host uses m connected cliques, the slowdown is
// at least max(sqrt(n)/m, m); minimised over m this is n^(1/4). k is the
// clique count (n = k*k).
func CliqueChainLB(k, cliquesUsed int) float64 {
	n := float64(k * k)
	m := float64(cliquesUsed)
	if m < 1 {
		m = 1
	}
	work := math.Sqrt(n) / m
	if work > m {
		return work
	}
	return m
}

// CliqueChainBestLB is min over m of CliqueChainLB: n^(1/4).
func CliqueChainBestLB(k int) float64 {
	return math.Pow(float64(k*k), 0.25)
}
