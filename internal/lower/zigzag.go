package lower

import "fmt"

// PathStep is one triple (col, step) of the Theorem 10 proof's dependency
// path: pebble tau_k must be known before tau_{k-1} can be computed.
type PathStep struct {
	Col  int
	Step int
}

// ZigzagPath constructs the 4j-pebble path of Figure 6 for an overlap run
// starting at column i with length j, anchored at guest step t (the paper's
// tau_1..tau_4j, in order — the path runs backwards in time). The six
// segments are:
//
//	A: (i+k,     t-k)  for k in 1..j          — diagonal into the run
//	B: (i+j+1,   t-k)  for odd  k in j+1..2j  — zigzag on the right edge
//	C: (i+j,     t-k)  for even k in j+1..2j
//	D: (i-k+3j,  t-k)  for k in 2j+1..3j      — diagonal back across
//	E: (i+1,     t-k)  for even k in 3j+1..4j — zigzag on the left edge
//	F: (i,       t-k)  for odd  k in 3j+1..4j
//
// Each consecutive pair differs by one guest step and at most one column,
// i.e. tau_k is a dependency of tau_{k-1} in the pebble grid; Verify checks
// it. The proof charges either an inter-segment delay to each zigzag hop or
// one long traversal, yielding the Omega(log n) bound that CertifyTwoCopy
// computes.
func ZigzagPath(i, j, t int) ([]PathStep, error) {
	if j < 1 || j%2 != 0 {
		return nil, fmt.Errorf("lower: zigzag length j=%d must be positive and even", j)
	}
	if t < 4*j {
		return nil, fmt.Errorf("lower: anchor step %d too small for 4j=%d", t, 4*j)
	}
	var path []PathStep
	for k := 1; k <= 4*j; k++ {
		var col int
		switch {
		case k <= j: // A
			col = i + k
		case k <= 2*j && k%2 == 1: // B
			col = i + j + 1
		case k <= 2*j: // C
			col = i + j
		case k <= 3*j: // D
			col = i - k + 3*j
		case k%2 == 0: // E
			col = i + 1
		default: // F
			col = i
		}
		path = append(path, PathStep{Col: col, Step: t - k})
	}
	return path, nil
}

// VerifyZigzag checks the path is dependency-consistent: tau_{k+1} must be
// one of tau_k's pebble dependencies, i.e. one step earlier and at most one
// column away. Returns the first violation.
func VerifyZigzag(path []PathStep) error {
	for k := 0; k+1 < len(path); k++ {
		a, b := path[k], path[k+1]
		if b.Step != a.Step-1 {
			return fmt.Errorf("lower: tau_%d step %d -> tau_%d step %d is not one guest step",
				k+1, a.Step, k+2, b.Step)
		}
		d := a.Col - b.Col
		if d < -1 || d > 1 {
			return fmt.Errorf("lower: tau_%d col %d -> tau_%d col %d is not a pebble dependency",
				k+1, a.Col, k+2, b.Col)
		}
	}
	return nil
}

// ZigzagColumns reports the distinct columns a path touches, ascending.
func ZigzagColumns(path []PathStep) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range path {
		if !seen[p.Col] {
			seen[p.Col] = true
			out = append(out, p.Col)
		}
	}
	sortInts2(out)
	return out
}

func sortInts2(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
