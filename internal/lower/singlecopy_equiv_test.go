package lower

import (
	"testing"

	"latencyhide/internal/assign"
	"latencyhide/internal/guest"
	"latencyhide/internal/sim"
)

// Table-driven SingleCopyLB cases with hand-computed floors: the bound is
// the max of the work bound m/hosts-used and the largest delay between
// holders of adjacent guest columns.
func TestSingleCopyLBTable(t *testing.T) {
	cases := []struct {
		name   string
		delays []int
		hostN  int
		m      int
		want   int64
	}{
		{"adjacent split over slow link", []int{5}, 2, 2, 5},
		{"unit line", []int{1, 1}, 3, 3, 1},
		{"single host is pure work", nil, 1, 4, 4},
		{"work bound dominates", []int{1}, 2, 10, 5},
		{"far split dominates work", []int{9, 9}, 3, 3, 9},
	}
	for _, tc := range cases {
		a, err := assign.SingleCopyBlocks(tc.hostN, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := SingleCopyLB(tc.delays, a)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if lb != tc.want {
			t.Errorf("%s: LB %d, want %d", tc.name, lb, tc.want)
		}
	}
}

// Engine equivalence meets the certified floor: both engines must agree on
// the schedule for a single-copy line run, and the measured slowdown can
// never fall below SingleCopyLB (modulo one round of startup slack).
func TestSingleCopyLBEngineEquivalence(t *testing.T) {
	delays := []int{4, 1, 6}
	hostN, m, steps := len(delays)+1, 12, 8
	a, err := assign.SingleCopyBlocks(hostN, m)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := SingleCopyLB(delays, a)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{
		Delays: delays,
		Guest:  guest.Spec{Graph: guest.NewLinearArray(m), Steps: steps, Seed: 3},
		Assign: a,
		Check:  true,
	}
	seq, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 2
	par, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.HostSteps != par.HostSteps || seq.PebblesComputed != par.PebblesComputed ||
		seq.Messages != par.Messages {
		t.Fatalf("engines disagree: seq %+v par %+v", seq, par)
	}
	if seq.Slowdown < float64(lb)/2-1 {
		t.Fatalf("measured slowdown %.2f below certified floor %d", seq.Slowdown, lb)
	}
}
