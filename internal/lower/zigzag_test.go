package lower

import (
	"testing"
	"testing/quick"
)

func TestZigzagPathShape(t *testing.T) {
	i, j, anchor := 10, 4, 100
	path, err := ZigzagPath(i, j, anchor)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4*j {
		t.Fatalf("path length %d want %d", len(path), 4*j)
	}
	if err := VerifyZigzag(path); err != nil {
		t.Fatal(err)
	}
	// the path visits exactly the columns i..i+j+1 (the run plus its two
	// flanking columns)
	cols := ZigzagColumns(path)
	if cols[0] != i || cols[len(cols)-1] != i+j+1 {
		t.Fatalf("columns %v", cols)
	}
	if len(cols) != j+2 {
		t.Fatalf("%d distinct columns, want j+2=%d", len(cols), j+2)
	}
	// first pebble one step below the anchor, last 4j below
	if path[0].Step != anchor-1 || path[len(path)-1].Step != anchor-4*j {
		t.Fatalf("steps %d..%d", path[0].Step, path[len(path)-1].Step)
	}
	// segment checks: B pebbles sit on column i+j+1, E on i+1, F on i
	countAt := func(col int) int {
		n := 0
		for _, p := range path {
			if p.Col == col {
				n++
			}
		}
		return n
	}
	if countAt(i+j+1) != j/2 {
		t.Fatalf("B segment size %d", countAt(i+j+1))
	}
	// F contributes j/2 visits to column i and segment D one more
	if countAt(i) != j/2+1 {
		t.Fatalf("F+D visits to column i: %d", countAt(i))
	}
}

func TestZigzagErrors(t *testing.T) {
	if _, err := ZigzagPath(0, 3, 100); err == nil {
		t.Fatal("odd j accepted")
	}
	if _, err := ZigzagPath(0, 0, 100); err == nil {
		t.Fatal("j=0 accepted")
	}
	if _, err := ZigzagPath(0, 4, 10); err == nil {
		t.Fatal("anchor below 4j accepted")
	}
}

func TestVerifyZigzagCatchesBreaks(t *testing.T) {
	path, _ := ZigzagPath(5, 4, 64)
	bad := append([]PathStep(nil), path...)
	bad[3].Col += 5
	if VerifyZigzag(bad) == nil {
		t.Fatal("column jump not caught")
	}
	bad = append([]PathStep(nil), path...)
	bad[7].Step++
	if VerifyZigzag(bad) == nil {
		t.Fatal("step break not caught")
	}
}

// Property: the construction is dependency-consistent for every valid
// (i, j, t).
func TestZigzagProperty(t *testing.T) {
	f := func(iSel, jSel uint8, tSel uint16) bool {
		i := int(iSel)
		j := 2 * (1 + int(jSel%20))
		anchor := 4*j + int(tSel%1000)
		path, err := ZigzagPath(i, j, anchor)
		if err != nil {
			return false
		}
		return VerifyZigzag(path) == nil && len(path) == 4*j
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
